(** The distributed coordinator: one TCP port serving both the work
    protocol ({!Proto}) and plain HTTP ([GET /metrics] Prometheus text,
    [GET /status] JSON), distinguished by sniffing the first eight bytes
    of each connection.

    The coordinator owns the strategy instance and the master collector;
    each round it cuts the sorted frontier into contiguous batches (so a
    worker's consecutive batches share schedule prefixes and hit its
    replay cache), leases them out, and — exactly like the in-process
    parallel driver's per-bound barrier — merges the reports back {i in
    batch-id order}, making the bug set, per-bound execution counts and
    telemetry stream of a distributed run identical to a serial run of
    the same search.

    Failure model: a lease is voided when its connection drops or its
    {!create} [lease_timeout] passes, and the batch returns to the
    pending queue for re-issue — a killed worker loses nothing.  A report
    whose lease was voided is answered [Stale] and discarded, so every
    batch is absorbed at most once.  With [checkpoint_out] set, the
    coordinator itself is kill/resumable: periodic saves go through the
    same checkpoint machinery as the serial driver (absorbed batches in
    the collector, unabsorbed ones in the work list). *)

type t

val create :
  ?host:string ->
  ?port:int ->
  ?lease_timeout:float ->
  ?batch_size:int ->
  ?telemetry:Icb_obs.Telemetry.t ->
  unit ->
  t
(** Bind and start accepting on [host] (default ["127.0.0.1"]; an IP or
    resolvable name) and [port] (default [0] = ephemeral — read it back
    with {!port}).  [lease_timeout] (default [30.] seconds) is how long a
    batch may stay leased before it is re-issued; [batch_size] (default
    [32]) the maximum work items per lease.  [telemetry] defaults to a
    private handle; either way it gains the [icb_dist_*] metrics (so one
    handle cannot serve two coordinators) and the standard event
    projection, all rendered by [GET /metrics]. *)

val port : t -> int
val telemetry : t -> Icb_obs.Telemetry.t

val run :
  t ->
  (module Icb_search.Engine.S with type state = 's) ->
  ?options:Icb_search.Collector.options ->
  ?checkpoint_out:string ->
  ?checkpoint_every:int ->
  ?checkpoint_meta:(string * string) list ->
  ?resume_from:Icb_search.Checkpoint.t ->
  ?env:Icb_search.Strategy.env ->
  ?cache:bool ->
  Icb_search.Explore.strategy ->
  Icb_search.Sresult.t
(** Serve the search to completion (or until a limit in [options] stops
    it) and return the same result a serial {!Icb_search.Explore.run}
    would.  Blocks the calling thread; connection handling runs on
    background threads.  The coordinator's own engine only roots the
    search and fingerprints the program — [checkpoint_meta] travels to
    workers as the job's provenance so they can rebuild the engine
    ([kind]/[target], as in checkpoints).  [cache] (default [true])
    gates the workers' replay caches.  Limits are enforced at batch
    granularity: like the parallel driver, everything absorbed before
    the stop is merged.  Raises [Invalid_argument] for a strategy that
    is not shardable and checkpointable, or if [t] already ran. *)

val shutdown : t -> unit
(** Stop accepting, wake the acceptor and release the port.  Idempotent.
    Does not interrupt a concurrent {!run} mid-round — stop that with
    [options] limits. *)
