module Json = Icb_obs.Json
module Collector = Icb_search.Collector
module Strategy = Icb_search.Strategy
module Driver = Icb_search.Driver
module Explore = Icb_search.Explore
module Checkpoint = Icb_search.Checkpoint
module Search_core = Icb_search.Search_core

type packed_engine =
  | Packed :
      (module Icb_search.Engine.S with type state = 's)
      -> packed_engine

(* One batch: build a fresh strategy instance positioned at the batch's
   round via [of_prefixes] (the work list is always non-empty, so the
   randomized strategies never mint fresh walks here), drain the local
   deque exactly like a parallel worker — own items pop front-first,
   [c_push] follow-ups run depth-first — and serialize everything the
   coordinator's barrier needs.  The collector carries no limits:
   batches are the unit of both work and accounting, and stopping is the
   coordinator's call. *)
let process_batch (type s) (module E : Icb_search.Engine.S with type state = s)
    ~(rp : s Search_core.replayer) ~(job : Proto.job) ~clock
    (b : Proto.batch) : (Proto.report, string) result =
  let v3 =
    {
      Checkpoint.v3_tag = b.Proto.b_tag;
      v3_params = b.Proto.b_params;
      v3_round = b.Proto.b_round;
      v3_work = b.Proto.b_items;
      v3_next = [];
    }
  in
  match Explore.strategy_of_v3 v3 with
  | exception Invalid_argument msg -> Error msg
  | strat ->
    let (module S : Strategy.S with type state = s) =
      Explore.instantiate (module E) strat
    in
    let buf = ref [] in
    let emit =
      Icb_obs.Emit.live ~worker:job.Proto.j_worker ~clock ~push:(fun env ->
          buf := env :: !buf)
    in
    let lcol =
      Collector.create
        {
          Collector.default_options with
          Collector.deadlock_is_error = job.Proto.j_deadlock_is_error;
          terminal_states_only = job.Proto.j_terminal_states_only;
          events = emit;
        }
    in
    let work, _carry = S.of_prefixes lcol v3 in
    let w = S.wstate () in
    let queue = ref (List.map Driver.of_prefix work) in
    let deferred = ref [] in
    let materialize it =
      match rp.Search_core.rp_run it with
      | Ok st -> Some st
      | Error (st, t, exn) ->
        Search_core.record_crash (module E) lcol st t exn;
        None
    in
    let ctx =
      {
        Strategy.c_col = lcol;
        c_push = (fun it -> queue := it :: !queue);
        c_defer =
          (fun it ->
            deferred := { it with Strategy.i_state = None } :: !deferred);
        c_materialize = materialize;
      }
    in
    let rec loop () =
      match !queue with
      | [] -> ()
      | it :: rest ->
        queue := rest;
        let execs0 = Collector.executions lcol in
        let steps0 = Collector.total_steps lcol in
        let item_t0 = Unix.gettimeofday () in
        Icb_obs.Emit.emit emit
          (Icb_obs.Event.Item_started
             {
               prefix = List.length it.Strategy.i_sched;
               payload = it.Strategy.i_payload;
             });
        S.expand (module E) w ctx it;
        Icb_obs.Emit.emit emit
          (Icb_obs.Event.Item_finished
             {
               seconds = Unix.gettimeofday () -. item_t0;
               executions = Collector.executions lcol - execs0;
               steps = Collector.total_steps lcol - steps0;
             });
        loop ()
    in
    (match loop () with
    | () -> ()
    | exception Collector.Stop -> ()
      (* local collectors carry no limits, but a strategy may still raise *));
    let params =
      (S.to_prefixes ~wstates:[| w |] ~work:[] ~next:[]).Checkpoint.v3_params
    in
    Ok
      {
        Proto.r_params = params;
        r_snapshot = Collector.snapshot_to_json (Collector.snapshot lcol);
        r_deferred = List.rev_map Strategy.prefix_of !deferred;
        r_events = List.rev_map Icb_obs.Event.to_json !buf;
      }

let connect ~host ~port =
  match Unix.getaddrinfo host (string_of_int port)
          [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
  with
  | [] -> Error (Printf.sprintf "cannot resolve %s:%d" host port)
  | ai :: _ -> (
    let fd = Unix.socket ai.Unix.ai_family ai.Unix.ai_socktype 0 in
    match Unix.connect fd ai.Unix.ai_addr with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s:%d: %s" host port
           (Unix.error_message e)))

let recv_s2c ic =
  match Proto.recv ic with
  | Error `Closed -> Error "coordinator closed the connection"
  | Error (`Malformed m) -> Error ("protocol error: " ^ m)
  | Ok j -> Proto.s2c_of_json j

let run ?(cache = true) ~host ~port ~resolve () =
  let ( let* ) = Result.bind in
  let* fd = connect ~host ~port in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  set_binary_mode_in ic true;
  set_binary_mode_out oc true;
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (* hello until the coordinator has a job to describe *)
      let rec handshake () =
        Proto.send oc (Proto.c2s_to_json Proto.Hello);
        let* reply = recv_s2c ic in
        match reply with
        | Proto.Job job -> Ok job
        | Proto.Wait { ms } ->
          Unix.sleepf (float_of_int ms /. 1000.);
          handshake ()
        | Proto.Done -> Error "coordinator has no job for this worker"
        | _ -> Error "protocol error: expected a job"
      in
      let* job = handshake () in
      let* (Packed (module E)) = resolve job.Proto.j_meta in
      let fp = Driver.fingerprint (module E) in
      let* () =
        if fp <> job.Proto.j_root_sig then
          Error
            "the job belongs to a different program (initial-state \
             fingerprint mismatch)"
        else Ok ()
      in
      (* the replay cache persists across batches: consecutive batches of
         a sorted frontier share schedule prefixes *)
      let rp =
        Search_core.replayer
          (module E)
          ~cache:(cache && job.Proto.j_cache) ()
      in
      let epoch = Unix.gettimeofday () in
      let clock () = Unix.gettimeofday () -. epoch in
      let rec serve batches =
        Proto.send oc (Proto.c2s_to_json Proto.Request);
        let* reply = recv_s2c ic in
        match reply with
        | Proto.Batch b ->
          let* report = process_batch (module E) ~rp ~job ~clock b in
          Proto.send oc
            (Proto.c2s_to_json
               (Proto.Result { lease = b.Proto.b_lease; report }));
          let* ack = recv_s2c ic in
          (match ack with
          | Proto.Accepted | Proto.Stale -> serve (batches + 1)
          | _ -> Error "protocol error: expected an accept/stale ack")
        | Proto.Wait { ms } ->
          Unix.sleepf (float_of_int ms /. 1000.);
          serve batches
        | Proto.Done -> Ok batches
        | _ -> Error "protocol error: expected batch/wait/done"
      in
      serve 0)
