(** The coordinator/worker wire protocol.

    Transport: framed JSON over a byte stream — each message is one
    {!Icb_util.Framing} frame (magic, version, MD5 digest, length,
    payload) whose payload is a single {!Icb_obs.Json} object carrying a
    ["type"] tag.  The framing is the checkpoint file discipline reused
    verbatim, so a torn or corrupted message is rejected with a clear
    error instead of a JSON parse crash; see docs/DISTRIBUTED.md for the
    message flows. *)

val magic : string
(** ["ICBDIST\x01"] — distinguishes protocol clients from HTTP requests
    on the coordinator's shared listening port (the first 8 bytes are
    sniffed). *)

val version : int

type job = {
  j_meta : (string * string) list;
      (** checkpoint-style provenance (["kind"], ["target"], ...); the
          worker resolves its engine from these *)
  j_root_sig : string;
      (** {!Icb_search.Driver.fingerprint} of the coordinator's initial
          state; the worker verifies its own engine matches *)
  j_deadlock_is_error : bool;
  j_terminal_states_only : bool;
  j_cache : bool;  (** whether workers should enable their replay caches *)
  j_worker : int;  (** this worker's id (1-based; 0 is the coordinator) *)
}

type batch = {
  b_lease : int;  (** opaque lease token; echoed in the result *)
  b_id : int;     (** batch index within the round, 0-based *)
  b_tag : string; (** strategy tag, {!Icb_search.Checkpoint.v3.v3_tag} *)
  b_params : (string * string) list;
      (** the round's serialized strategy parameters, as sent to every
          worker of the round *)
  b_round : int;
  b_items : (int list * int) list;  (** the work items, stripped *)
}

type report = {
  r_params : (string * string) list;
      (** the worker instance's parameters after the batch
          ({!Icb_search.Strategy.S.to_prefixes}); the coordinator merges
          the per-batch deltas with
          {!Icb_search.Strategy.merge_params} *)
  r_snapshot : Icb_obs.Json.t;
      (** the batch collector's snapshot
          ({!Icb_search.Collector.snapshot_to_json}) *)
  r_deferred : (int list * int) list;  (** items deferred to the next round *)
  r_events : Icb_obs.Json.t list;
      (** the batch's buffered telemetry envelopes, in emission order *)
}

type c2s =
  | Hello
  | Request  (** ask for a batch *)
  | Result of { lease : int; report : report }

type s2c =
  | Job of job
  | Batch of batch
  | Wait of { ms : int }  (** nothing to lease right now; retry after [ms] *)
  | Done  (** the run is over (or was never started on this socket) *)
  | Accepted  (** result absorbed *)
  | Stale
      (** result rejected: the lease expired and was re-issued, the
          report arrived twice, or the round already closed — the batch's
          outcome was (or will be) absorbed exactly once elsewhere *)

val send : out_channel -> Icb_obs.Json.t -> unit
val recv : in_channel -> (Icb_obs.Json.t, [ `Closed | `Malformed of string ]) result

val c2s_to_json : c2s -> Icb_obs.Json.t
val c2s_of_json : Icb_obs.Json.t -> (c2s, string) result
val s2c_to_json : s2c -> Icb_obs.Json.t
val s2c_of_json : Icb_obs.Json.t -> (s2c, string) result
