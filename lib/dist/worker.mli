(** The distributed worker: connects to a coordinator, leases work-item
    batches and runs each through the generic driver item path
    ({!Icb_search.Search_core}) with a local replay cache, reporting
    back counters, bugs, deferred items and buffered telemetry.

    A worker is stateless between batches except for its replay cache:
    killing one at any point loses nothing — the coordinator re-issues
    the batch's lease and absorbs each batch exactly once. *)

type packed_engine =
  | Packed :
      (module Icb_search.Engine.S with type state = 's)
      -> packed_engine

val run :
  ?cache:bool ->
  host:string ->
  port:int ->
  resolve:((string * string) list -> (packed_engine, string) result) ->
  unit ->
  (int, string) result
(** Serve one coordinator until it reports the run is over.  [resolve]
    builds the engine from the job's provenance metadata (the
    checkpoint-style ["kind"]/["target"] pairs); the worker then verifies
    the engine's initial-state fingerprint against the coordinator's
    before touching any work.  [cache] (default [true]) gates the local
    replay cache on top of the job's own cache flag.

    Returns the number of batches processed, or an error on connection
    failure, protocol violation, or a program mismatch. *)
