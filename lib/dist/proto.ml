module Json = Icb_obs.Json
module Framing = Icb_util.Framing

let magic = "ICBDIST\x01"
let version = 1

type job = {
  j_meta : (string * string) list;
  j_root_sig : string;
  j_deadlock_is_error : bool;
  j_terminal_states_only : bool;
  j_cache : bool;
  j_worker : int;
}

type batch = {
  b_lease : int;
  b_id : int;
  b_tag : string;
  b_params : (string * string) list;
  b_round : int;
  b_items : (int list * int) list;
}

type report = {
  r_params : (string * string) list;
  r_snapshot : Json.t;
  r_deferred : (int list * int) list;
  r_events : Json.t list;
}

type c2s = Hello | Request | Result of { lease : int; report : report }

type s2c =
  | Job of job
  | Batch of batch
  | Wait of { ms : int }
  | Done
  | Accepted
  | Stale

(* --- transport ------------------------------------------------------------ *)

let send oc j =
  Framing.write_frame oc ~magic ~version ~payload:(Json.to_string j);
  flush oc

let recv ic =
  match
    Framing.read_frame ~check_version:(fun v -> v = version) ic ~magic
  with
  | Error (Framing.Truncated Framing.Magic) ->
    (* EOF on a frame boundary: the peer hung up cleanly *)
    Error `Closed
  | Error (Framing.Truncated _) -> Error (`Malformed "truncated frame")
  | Error Framing.Bad_magic -> Error (`Malformed "bad frame magic")
  | Error (Framing.Bad_version v) ->
    Error (`Malformed (Printf.sprintf "unsupported protocol version %d" v))
  | Error Framing.Negative_length -> Error (`Malformed "negative frame length")
  | Error Framing.Digest_mismatch -> Error (`Malformed "frame digest mismatch")
  | Error (Framing.Cannot_open _) -> Error (`Malformed "unreadable stream")
  | Ok (_, payload) -> (
    match Json.parse payload with
    | j -> Ok j
    | exception Json.Parse_error m -> Error (`Malformed ("bad JSON: " ^ m)))

(* --- field codecs --------------------------------------------------------- *)

let ( let* ) = Result.bind

let field j key =
  match Json.find j key with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "message: missing field %S" key)

let int_field j key =
  let* v = field j key in
  match Json.to_int v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "message: field %S is not an int" key)

let str_field j key =
  let* v = field j key in
  match Json.to_str v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "message: field %S is not a string" key)

let bool_field j key =
  let* v = field j key in
  match Json.to_bool v with
  | Some b -> Ok b
  | None -> Error (Printf.sprintf "message: field %S is not a bool" key)

let list_field j key =
  let* v = field j key in
  match v with
  | Json.List l -> Ok l
  | _ -> Error (Printf.sprintf "message: field %S is not a list" key)

let map_result f l =
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    (Ok []) l
  |> Result.map List.rev

let params_to_json ps =
  Json.List
    (List.map (fun (k, v) -> Json.List [ Json.String k; Json.String v ]) ps)

let params_of_json key j =
  let* l =
    match j with
    | Json.List l -> Ok l
    | _ -> Error (Printf.sprintf "message: field %S is not a list" key)
  in
  map_result
    (function
      | Json.List [ Json.String k; Json.String v ] -> Ok (k, v)
      | _ ->
        Error (Printf.sprintf "message: field %S holds a bad param pair" key))
    l

let items_to_json items =
  Json.List
    (List.map
       (fun (sched, payload) ->
         Json.List
           [
             Json.List (List.map (fun t -> Json.Int t) sched);
             Json.Int payload;
           ])
       items)

let items_of_json key j =
  let* l =
    match j with
    | Json.List l -> Ok l
    | _ -> Error (Printf.sprintf "message: field %S is not a list" key)
  in
  map_result
    (function
      | Json.List [ Json.List sched; Json.Int payload ] ->
        let* sched =
          map_result
            (function
              | Json.Int t -> Ok t
              | _ ->
                Error
                  (Printf.sprintf "message: field %S holds a bad schedule" key))
            sched
        in
        Ok (sched, payload)
      | _ -> Error (Printf.sprintf "message: field %S holds a bad item" key))
    l

(* --- messages ------------------------------------------------------------- *)

let report_to_json r =
  Json.Obj
    [
      ("params", params_to_json r.r_params);
      ("snapshot", r.r_snapshot);
      ("deferred", items_to_json r.r_deferred);
      ("events", Json.List r.r_events);
    ]

let report_of_json j =
  let* params = field j "params" in
  let* r_params = params_of_json "params" params in
  let* r_snapshot = field j "snapshot" in
  let* deferred = field j "deferred" in
  let* r_deferred = items_of_json "deferred" deferred in
  let* r_events = list_field j "events" in
  Ok { r_params; r_snapshot; r_deferred; r_events }

let c2s_to_json = function
  | Hello -> Json.Obj [ ("type", Json.String "hello") ]
  | Request -> Json.Obj [ ("type", Json.String "request") ]
  | Result { lease; report } ->
    Json.Obj
      [
        ("type", Json.String "result");
        ("lease", Json.Int lease);
        ("report", report_to_json report);
      ]

let c2s_of_json j =
  let* ty = str_field j "type" in
  match ty with
  | "hello" -> Ok Hello
  | "request" -> Ok Request
  | "result" ->
    let* lease = int_field j "lease" in
    let* rj = field j "report" in
    let* report = report_of_json rj in
    Ok (Result { lease; report })
  | ty -> Error (Printf.sprintf "message: unknown client type %S" ty)

let s2c_to_json = function
  | Job job ->
    Json.Obj
      [
        ("type", Json.String "job");
        ("meta", params_to_json job.j_meta);
        ("root_sig", Json.String job.j_root_sig);
        ("deadlock_is_error", Json.Bool job.j_deadlock_is_error);
        ("terminal_states_only", Json.Bool job.j_terminal_states_only);
        ("cache", Json.Bool job.j_cache);
        ("worker", Json.Int job.j_worker);
      ]
  | Batch b ->
    Json.Obj
      [
        ("type", Json.String "batch");
        ("lease", Json.Int b.b_lease);
        ("id", Json.Int b.b_id);
        ("tag", Json.String b.b_tag);
        ("params", params_to_json b.b_params);
        ("round", Json.Int b.b_round);
        ("items", items_to_json b.b_items);
      ]
  | Wait { ms } ->
    Json.Obj [ ("type", Json.String "wait"); ("ms", Json.Int ms) ]
  | Done -> Json.Obj [ ("type", Json.String "done") ]
  | Accepted -> Json.Obj [ ("type", Json.String "accepted") ]
  | Stale -> Json.Obj [ ("type", Json.String "stale") ]

let s2c_of_json j =
  let* ty = str_field j "type" in
  match ty with
  | "job" ->
    let* meta = field j "meta" in
    let* j_meta = params_of_json "meta" meta in
    let* j_root_sig = str_field j "root_sig" in
    let* j_deadlock_is_error = bool_field j "deadlock_is_error" in
    let* j_terminal_states_only = bool_field j "terminal_states_only" in
    let* j_cache = bool_field j "cache" in
    let* j_worker = int_field j "worker" in
    Ok
      (Job
         {
           j_meta;
           j_root_sig;
           j_deadlock_is_error;
           j_terminal_states_only;
           j_cache;
           j_worker;
         })
  | "batch" ->
    let* b_lease = int_field j "lease" in
    let* b_id = int_field j "id" in
    let* b_tag = str_field j "tag" in
    let* params = field j "params" in
    let* b_params = params_of_json "params" params in
    let* b_round = int_field j "round" in
    let* items = field j "items" in
    let* b_items = items_of_json "items" items in
    Ok (Batch { b_lease; b_id; b_tag; b_params; b_round; b_items })
  | "wait" ->
    let* ms = int_field j "ms" in
    Ok (Wait { ms })
  | "done" -> Ok Done
  | "accepted" -> Ok Accepted
  | "stale" -> Ok Stale
  | ty -> Error (Printf.sprintf "message: unknown server type %S" ty)
