module Json = Icb_obs.Json
module Telemetry = Icb_obs.Telemetry
module Metrics = Icb_obs.Metrics
module Http = Icb_obs.Http
module Collector = Icb_search.Collector
module Strategy = Icb_search.Strategy
module Driver = Icb_search.Driver
module Explore = Icb_search.Explore
module Checkpoint = Icb_search.Checkpoint
module Search_core = Icb_search.Search_core
module Sresult = Icb_search.Sresult

let with_lock m f =
  Mutex.lock m;
  match f () with
  | v ->
    Mutex.unlock m;
    v
  | exception e ->
    Mutex.unlock m;
    raise e

(* --- state ---------------------------------------------------------------- *)

type lease = { l_token : int; l_batch : int; l_conn : int; l_issued : float }

(* One round of the search, while it is being served.  [rs_items.(b)] is
   batch [b]'s work slice; a batch is always in exactly one place —
   pending, leased (at most one live lease), or completed
   ([rs_reports.(b) = Some _]) — which is what makes absorption
   at-most-once. *)
type round_state = {
  rs_round : int;
  rs_tag : string;
  rs_params : (string * string) list;
  rs_items : (int list * int) list array;
  rs_reports : (Proto.report * Collector.snapshot) option array;
  mutable rs_pending : int list; (* sorted batch ids *)
  mutable rs_leases : lease list;
  mutable rs_completed : int;
}

(* Limit accounting, batch-granular: counters absorbed this round stack
   on the master's round-start baseline, mirroring the parallel driver's
   per-execution hook at its coarser granularity. *)
type limits = {
  li_options : Collector.options;
  mutable li_base_execs : int;
  mutable li_base_states : int;
  mutable li_base_steps : int;
  mutable li_base_bugs : int;
  mutable li_acc_execs : int;
  mutable li_acc_states : int;
  mutable li_acc_steps : int;
  mutable li_acc_bugs : int;
}

type phase = Starting | Serving | Finished

type mx = {
  mx_workers : Metrics.gauge;
  mx_leased : Metrics.counter;
  mx_completed : Metrics.counter;
  mx_reissued : Metrics.counter;
  mx_stale : Metrics.counter;
  mx_rounds : Metrics.counter;
}

type t = {
  sock : Unix.file_descr;
  sock_port : int;
  wake_addr : Unix.sockaddr; (* self-connect target to unblock accept *)
  m : Mutex.t;
  cv : Condition.t;
  tel : Telemetry.t;
  lease_timeout : float;
  batch_size : int;
  mx : mx;
  mutable phase : phase;
  mutable strat_name : string;
  mutable job : Proto.job option; (* [j_worker] re-stamped per hello *)
  mutable round : round_state option;
  mutable limits : limits option;
  mutable stop_requested : Sresult.stop_reason option;
  mutable ck_wanted : bool;
  mutable ck_every : int;
  mutable ck_last : int; (* executions at the last checkpoint *)
  mutable next_worker : int;
  mutable next_token : int;
  mutable workers : int;
  mutable next_conn : int;
  mutable closed : bool;
  mutable acceptor : Thread.t option;
}

let port t = t.sock_port
let telemetry t = t.tel

(* Metric updates run while holding [t.m]; the registry itself is only
   safe under the telemetry consumer lock, so the order is always
   [t.m] then [Telemetry.locked] — the HTTP handlers take one or the
   other, never both. *)
let m_inc t c = Telemetry.locked t.tel (fun () -> Metrics.inc c 1.)
let m_add t c n = Telemetry.locked t.tel (fun () -> Metrics.inc c (float_of_int n))
let m_set t g v = Telemetry.locked t.tel (fun () -> Metrics.set g (float_of_int v))

(* --- lease bookkeeping (all under [t.m]) ---------------------------------- *)

let requeue t rs batches =
  if batches <> [] then begin
    rs.rs_pending <- List.sort compare (batches @ rs.rs_pending);
    m_add t t.mx.mx_reissued (List.length batches)
  end

let void_conn_leases t conn =
  match t.round with
  | None -> ()
  | Some rs ->
    let mine, rest = List.partition (fun l -> l.l_conn = conn) rs.rs_leases in
    rs.rs_leases <- rest;
    requeue t rs (List.map (fun l -> l.l_batch) mine)

let reclaim_expired t rs =
  let now = Unix.gettimeofday () in
  let dead, live =
    List.partition (fun l -> now -. l.l_issued > t.lease_timeout) rs.rs_leases
  in
  rs.rs_leases <- live;
  requeue t rs (List.map (fun l -> l.l_batch) dead)

let request_stop t r =
  if t.stop_requested = None then t.stop_requested <- Some r

(* Limit checks, in the parallel driver's order so the recorded
   stop_reason matches when several limits trip in one batch. *)
let check_limits t snap =
  match t.limits with
  | None -> ()
  | Some li ->
    li.li_acc_execs <- li.li_acc_execs + Collector.snapshot_executions snap;
    li.li_acc_states <- li.li_acc_states + Collector.snapshot_states snap;
    li.li_acc_steps <- li.li_acc_steps + Collector.snapshot_steps snap;
    li.li_acc_bugs <-
      li.li_acc_bugs + List.length (Collector.snapshot_bugs snap);
    let o = li.li_options in
    let execs = li.li_base_execs + li.li_acc_execs in
    (match o.Collector.max_executions with
    | Some l when execs >= l -> request_stop t Sresult.Execution_limit
    | Some _ | None -> ());
    (match o.Collector.max_states with
    | Some l when li.li_base_states + li.li_acc_states >= l ->
      request_stop t Sresult.State_limit
    | Some _ | None -> ());
    (match o.Collector.max_total_steps with
    | Some l when li.li_base_steps + li.li_acc_steps >= l ->
      request_stop t Sresult.Step_limit
    | Some _ | None -> ());
    (match o.Collector.deadline with
    | Some d when Unix.gettimeofday () >= d ->
      request_stop t Sresult.Deadline_exceeded
    | Some _ | None -> ());
    if o.Collector.stop_at_first_bug && li.li_base_bugs + li.li_acc_bugs > 0
    then request_stop t Sresult.First_bug;
    if execs - t.ck_last >= t.ck_every then t.ck_wanted <- true

(* --- protocol handling ---------------------------------------------------- *)

let absorb t ~lease ~(report : Proto.report) =
  let stale () =
    m_inc t t.mx.mx_stale;
    Proto.Stale
  in
  match t.round with
  | Some rs when t.phase = Serving -> (
    match List.find_opt (fun l -> l.l_token = lease) rs.rs_leases with
    | None -> stale ()
    | Some l -> (
      match Collector.snapshot_of_json report.Proto.r_snapshot with
      | Error _ -> stale ()
      | Ok snap ->
        rs.rs_leases <- List.filter (fun x -> x.l_token <> lease) rs.rs_leases;
        rs.rs_reports.(l.l_batch) <- Some (report, snap);
        rs.rs_completed <- rs.rs_completed + 1;
        m_inc t t.mx.mx_completed;
        check_limits t snap;
        Condition.broadcast t.cv;
        Proto.Accepted))
  | _ -> stale ()

(* [greeted] is per connection: the worker gauge counts connections that
   completed a hello, and is decremented when they drop. *)
let reply_to t ~conn ~greeted msg =
  match msg with
  | Proto.Hello -> (
    match t.job with
    | None -> Proto.Wait { ms = 50 }
    | Some job ->
      if not !greeted then begin
        greeted := true;
        t.workers <- t.workers + 1;
        m_set t t.mx.mx_workers t.workers
      end;
      let wid = t.next_worker in
      t.next_worker <- t.next_worker + 1;
      Proto.Job { job with Proto.j_worker = wid })
  | Proto.Request -> (
    match t.round with
    | Some rs when t.phase = Serving && t.stop_requested = None -> (
      reclaim_expired t rs;
      match rs.rs_pending with
      | [] -> Proto.Wait { ms = 50 }
      | b :: rest ->
        rs.rs_pending <- rest;
        let token = t.next_token in
        t.next_token <- t.next_token + 1;
        rs.rs_leases <-
          {
            l_token = token;
            l_batch = b;
            l_conn = conn;
            l_issued = Unix.gettimeofday ();
          }
          :: rs.rs_leases;
        m_inc t t.mx.mx_leased;
        Proto.Batch
          {
            Proto.b_lease = token;
            b_id = b;
            b_tag = rs.rs_tag;
            b_params = rs.rs_params;
            b_round = rs.rs_round;
            b_items = rs.rs_items.(b);
          })
    | _ -> if t.phase = Finished then Proto.Done else Proto.Wait { ms = 50 })
  | Proto.Result { lease; report } -> absorb t ~lease ~report

let serve_protocol t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  set_binary_mode_in ic true;
  set_binary_mode_out oc true;
  let conn = with_lock t.m (fun () ->
      let c = t.next_conn in
      t.next_conn <- t.next_conn + 1;
      c)
  in
  let greeted = ref false in
  Fun.protect
    ~finally:(fun () ->
      with_lock t.m (fun () ->
          void_conn_leases t conn;
          if !greeted then begin
            t.workers <- t.workers - 1;
            m_set t t.mx.mx_workers t.workers
          end;
          Condition.broadcast t.cv))
    (fun () ->
      let rec loop () =
        match Proto.recv ic with
        | Error (`Closed | `Malformed _) -> ()
        | Ok j -> (
          match Proto.c2s_of_json j with
          | Error _ -> ()
          | Ok msg ->
            let reply = with_lock t.m (fun () -> reply_to t ~conn ~greeted msg) in
            (match Proto.send oc (Proto.s2c_to_json reply) with
            | () -> loop ()
            | exception Sys_error _ -> ()))
      in
      loop ())

(* --- HTTP handling -------------------------------------------------------- *)

let phase_string = function
  | Starting -> "starting"
  | Serving -> "serving"
  | Finished -> "finished"

let status_json t =
  with_lock t.m (fun () ->
      let batches =
        match t.round with
        | None -> []
        | Some rs ->
          [
            ( "batches",
              Json.Obj
                [
                  ("total", Json.Int (Array.length rs.rs_items));
                  ("completed", Json.Int rs.rs_completed);
                  ("pending", Json.Int (List.length rs.rs_pending));
                  ("leased", Json.Int (List.length rs.rs_leases));
                ] );
            ("round", Json.Int rs.rs_round);
          ]
      in
      let counters =
        match t.limits with
        | None -> []
        | Some li ->
          [
            ("executions", Json.Int (li.li_base_execs + li.li_acc_execs));
            ("total_steps", Json.Int (li.li_base_steps + li.li_acc_steps));
            ("bugs", Json.Int (li.li_base_bugs + li.li_acc_bugs));
          ]
      in
      Json.Obj
        ([
           ("phase", Json.String (phase_string t.phase));
           ("strategy", Json.String t.strat_name);
           ("port", Json.Int t.sock_port);
           ("workers", Json.Int t.workers);
           ( "stop_reason",
             match t.stop_requested with
             | None -> Json.Null
             | Some r -> Json.String (Sresult.stop_reason_string r) );
         ]
        @ batches @ counters))

let serve_http t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  set_binary_mode_in ic true;
  set_binary_mode_out oc true;
  match Http.read_request ic with
  | Error _ -> ()
  | Ok { Http.meth; path } -> (
    match (meth, path) with
    | ("GET" | "HEAD"), "/metrics" ->
      let body =
        Telemetry.locked t.tel (fun () ->
            Metrics.to_prometheus (Telemetry.metrics t.tel))
      in
      Http.respond oc ~content_type:"text/plain; version=0.0.4" body
    | ("GET" | "HEAD"), "/status" ->
      Http.respond oc ~content_type:"application/json"
        (Json.to_string (status_json t))
    | ("GET" | "HEAD"), _ -> Http.not_found oc
    | _ -> Http.method_not_allowed oc)

(* --- accept loop ---------------------------------------------------------- *)

(* The two protocols share the port; the first eight bytes distinguish
   them ({!Proto.magic} vs an HTTP request line) without consuming
   anything either parser needs. *)
let peek8 fd =
  let buf = Bytes.create 8 in
  let rec go () =
    match Unix.recv fd buf 0 8 [ Unix.MSG_PEEK ] with
    | 0 -> None
    | n when n >= 8 -> Some (Bytes.sub_string buf 0 8)
    | _ ->
      Unix.sleepf 0.002;
      go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ -> None
  in
  go ()

let handle_conn t fd =
  let close () = try Unix.close fd with Unix.Unix_error _ -> () in
  match peek8 fd with
  | None -> close ()
  | Some prefix ->
    Fun.protect ~finally:close (fun () ->
        if String.equal prefix Proto.magic then serve_protocol t fd
        else serve_http t fd)

let acceptor t () =
  let rec loop () =
    match Unix.accept t.sock with
    | fd, _ ->
      if with_lock t.m (fun () -> t.closed) then begin
        (try Unix.close fd with Unix.Unix_error _ -> ());
        try Unix.close t.sock with Unix.Unix_error _ -> ()
      end
      else begin
        ignore (Thread.create (fun () -> handle_conn t fd) ());
        loop ()
      end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error _ -> (
      try Unix.close t.sock with Unix.Unix_error _ -> ())
  in
  loop ()

(* --- construction --------------------------------------------------------- *)

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } ->
      invalid_arg (Printf.sprintf "Coord.create: cannot resolve host %s" host)
    | h -> h.Unix.h_addr_list.(0)
    | exception Not_found ->
      invalid_arg (Printf.sprintf "Coord.create: cannot resolve host %s" host))

let create ?(host = "127.0.0.1") ?(port = 0) ?(lease_timeout = 30.)
    ?(batch_size = 32) ?telemetry () =
  if batch_size < 1 then invalid_arg "Coord.create: batch_size must be >= 1";
  if lease_timeout <= 0. then
    invalid_arg "Coord.create: lease_timeout must be positive";
  let tel =
    match telemetry with Some t -> t | None -> Telemetry.create ()
  in
  Telemetry.track_metrics tel;
  let mx =
    Telemetry.locked tel (fun () ->
        let m = Telemetry.metrics tel in
        {
          mx_workers =
            Metrics.gauge m ~help:"Connected distributed workers"
              "icb_dist_workers";
          mx_leased =
            Metrics.counter m ~help:"Work-item batches leased to workers"
              "icb_dist_batches_leased";
          mx_completed =
            Metrics.counter m ~help:"Batches absorbed into the master"
              "icb_dist_batches_completed";
          mx_reissued =
            Metrics.counter m
              ~help:"Leases voided (expiry or disconnect) and re-queued"
              "icb_dist_leases_reissued";
          mx_stale =
            Metrics.counter m ~help:"Reports rejected for a voided lease"
              "icb_dist_stale_reports";
          mx_rounds =
            Metrics.counter m ~help:"Completed distributed rounds"
              "icb_dist_rounds";
        })
  in
  let addr = resolve_host host in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let sock_port =
    try
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock (Unix.ADDR_INET (addr, port));
      Unix.listen sock 64;
      match Unix.getsockname sock with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> assert false
    with e ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      raise e
  in
  let wake_addr =
    let a =
      if addr = Unix.inet_addr_any then Unix.inet_addr_loopback else addr
    in
    Unix.ADDR_INET (a, sock_port)
  in
  let t =
    {
      sock;
      sock_port;
      wake_addr;
      m = Mutex.create ();
      cv = Condition.create ();
      tel;
      lease_timeout;
      batch_size;
      mx;
      phase = Starting;
      strat_name = "";
      job = None;
      round = None;
      limits = None;
      stop_requested = None;
      ck_wanted = false;
      ck_every = max_int;
      ck_last = 0;
      next_worker = 0;
      next_token = 0;
      workers = 0;
      next_conn = 0;
      closed = false;
      acceptor = None;
    }
  in
  t.acceptor <- Some (Thread.create (acceptor t) ());
  t

let shutdown t =
  let was_closed = with_lock t.m (fun () ->
      let c = t.closed in
      t.closed <- true;
      if t.phase <> Serving then t.phase <- Finished;
      Condition.broadcast t.cv;
      c)
  in
  if not was_closed then begin
    (* unblock [accept]: the acceptor sees [closed] and closes the
       listening socket itself *)
    (try
       let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       (try Unix.connect fd t.wake_addr with Unix.Unix_error _ -> ());
       try Unix.close fd with Unix.Unix_error _ -> ()
     with Unix.Unix_error _ -> ());
    match t.acceptor with None -> () | Some th -> Thread.join th
  end

(* --- the search loop ------------------------------------------------------ *)

let rec chunk n acc l =
  match l with
  | [] -> List.rev acc
  | _ ->
    let rec take k xs =
      match (k, xs) with
      | 0, _ | _, [] -> ([], xs)
      | k, x :: rest ->
        let b, r = take (k - 1) rest in
        (x :: b, r)
    in
    let b, rest = take n l in
    chunk n (b :: acc) rest

let run (type s) t (module E : Icb_search.Engine.S with type state = s)
    ?(options = Collector.default_options) ?checkpoint_out
    ?(checkpoint_every = Search_core.default_checkpoint_every)
    ?(checkpoint_meta = []) ?resume_from ?env ?(cache = true) strategy :
    Sresult.t =
  let (module S : Strategy.S with type state = s) =
    Explore.instantiate ?env (module E) strategy
  in
  if not (S.shardable && S.checkpointable) then
    invalid_arg
      (Printf.sprintf
         "Coord.run: the %s frontier does not distribute (it must shard \
          and serialize; strategies that do: icb, dfs, db:N, idfs:N, \
          random, pct:N, vb:N, tb:N, icb-vb:N)"
         S.name);
  let emit = Telemetry.emitter t.tel ~worker:0 in
  let options = { options with Collector.events = emit } in
  let fp = Driver.fingerprint (module E) in
  let resume_v3 =
    Option.map
      (fun (c : Checkpoint.t) ->
        let f = Checkpoint.to_v3 c in
        if f.Checkpoint.v3_tag <> S.tag then
          invalid_arg
            (Printf.sprintf
               "Coord.run: checkpoint was written by a %s search, not %s"
               f.Checkpoint.v3_tag S.tag);
        (match List.assoc_opt Driver.fingerprint_key f.Checkpoint.v3_params with
        | Some s when s <> fp ->
          invalid_arg
            "Coord.run: the checkpoint belongs to a different program \
             (initial-state fingerprint mismatch)"
        | Some _ | None -> ());
        f)
      resume_from
  in
  let master =
    match resume_from with
    | None -> Collector.create options
    | Some (c : Checkpoint.t) -> Collector.restore options c.Checkpoint.collector
  in
  (* wall-clock accounting across interruptions, exactly as in
     [Driver.run]: seed from the resumed params, charge each completed
     round, stamp fingerprint + timing into every save *)
  let run_started_at = Unix.gettimeofday () in
  let param key =
    Option.bind resume_v3 (fun (f : Checkpoint.v3) ->
        List.assoc_opt key f.Checkpoint.v3_params)
  in
  let base_elapsed =
    Option.value
      (Option.bind (param Checkpoint.elapsed_key) float_of_string_opt)
      ~default:0.0
  in
  let bound_times =
    ref
      (match param Checkpoint.bound_times_key with
      | Some s -> Checkpoint.decode_bound_times s
      | None -> [])
  in
  let round_started = ref run_started_at in
  let add_bound_time bt (b, d) =
    if List.mem_assoc b bt then
      List.map (fun (b', s) -> if b' = b then (b', s +. d) else (b', s)) bt
    else if d < 0.0005 then bt
    else bt @ [ (b, d) ]
  in
  let note_round_done r =
    let now = Unix.gettimeofday () in
    bound_times := add_bound_time !bound_times (r, now -. !round_started);
    round_started := now
  in
  let stamp (f : Checkpoint.v3) =
    let now = Unix.gettimeofday () in
    let bt =
      add_bound_time !bound_times (S.round (), now -. !round_started)
    in
    {
      f with
      Checkpoint.v3_params =
        f.Checkpoint.v3_params
        @ [
            (Driver.fingerprint_key, fp);
            ( Checkpoint.elapsed_key,
              Printf.sprintf "%.3f" (base_elapsed +. now -. run_started_at) );
            (Checkpoint.bound_times_key, Checkpoint.encode_bound_times bt);
          ];
    }
  in
  let ckpt =
    Option.map
      (fun path ->
        {
          Search_core.ck_path = path;
          ck_every = max 1 checkpoint_every;
          ck_meta = checkpoint_meta;
          ck_last = Collector.executions master;
          ck_events = emit;
        })
      checkpoint_out
  in
  let stripped =
    {
      options with
      Collector.max_executions = None;
      max_states = None;
      max_total_steps = None;
      deadline = None;
      stop_at_first_bug = false;
      on_progress = None;
      events = Icb_obs.Emit.null;
    }
  in
  let wstates = [| S.wstate () |] in
  (* publish the job: from here on, hellos are answered *)
  with_lock t.m (fun () ->
      if t.closed then invalid_arg "Coord.run: the coordinator was shut down";
      if t.job <> None then
        invalid_arg "Coord.run: the coordinator already ran a search";
      t.strat_name <- S.name;
      t.job <-
        Some
          {
            Proto.j_meta = checkpoint_meta;
            j_root_sig = fp;
            j_deadlock_is_error = options.Collector.deadlock_is_error;
            j_terminal_states_only = options.Collector.terminal_states_only;
            j_cache = cache;
            j_worker = 0;
          };
      t.limits <-
        Some
          {
            li_options = options;
            li_base_execs = Collector.executions master;
            li_base_states = Collector.seen_states master;
            li_base_steps = Collector.total_steps master;
            li_base_bugs = Collector.bug_count master;
            li_acc_execs = 0;
            li_acc_states = 0;
            li_acc_steps = 0;
            li_acc_bugs = 0;
          };
      t.ck_every <- (match ckpt with Some c -> c.Search_core.ck_every | None -> max_int);
      t.ck_last <- Collector.executions master);
  (* a ticker so a deadline fires and leases expire even while no worker
     is talking to us; it also wakes the round loop below *)
  let ticker =
    Thread.create
      (fun () ->
        let rec tick () =
          Unix.sleepf 0.05;
          let live = with_lock t.m (fun () ->
              (match (t.limits, t.stop_requested) with
              | Some li, None -> (
                match li.li_options.Collector.deadline with
                | Some d when Unix.gettimeofday () >= d ->
                  request_stop t Sresult.Deadline_exceeded
                | Some _ | None -> ())
              | _ -> ());
              (match t.round with
              | Some rs when t.phase = Serving -> reclaim_expired t rs
              | _ -> ());
              Condition.broadcast t.cv;
              t.phase <> Finished)
          in
          if live then tick ()
        in
        tick ())
      ()
  in
  Icb_obs.Emit.emit emit
    (Icb_obs.Event.Run_started
       { strategy = S.name; domains = 0; resumed = resume_from <> None });
  let save_with col ~work ~next =
    match ckpt with
    | None -> ()
    | Some ctl ->
      Search_core.save_checkpoint col ctl ~strategy:S.name
        ~frontier:(Checkpoint.V3 (stamp (S.to_prefixes ~wstates ~work ~next)));
      with_lock t.m (fun () -> t.ck_last <- ctl.Search_core.ck_last)
  in
  (* Mid-round checkpoint: a scratch collector over the round-start
     snapshot plus every batch absorbed so far (in batch-id order, like
     the barrier), unabsorbed batches as the work list.  Runs in this
     thread with [t.m] released, over a capture taken under the lock. *)
  let mid_save ~master_snap ~sent_params ~round_no ~arr ~carry =
    match ckpt with
    | None -> ()
    | Some ctl ->
      let reports =
        with_lock t.m (fun () ->
            match t.round with
            | Some rs -> Array.copy rs.rs_reports
            | None -> [||])
      in
      let scratch = Collector.restore stripped master_snap in
      let candidates = ref [] in
      Array.iter
        (fun r ->
          match r with
          | None -> ()
          | Some (_, sn) ->
            Collector.merge_stats scratch sn;
            candidates := Collector.snapshot_bugs sn @ !candidates)
        reports;
      Driver.absorb_bugs scratch !candidates;
      let work = ref [] and deferred = ref [] and reported = ref [] in
      Array.iteri
        (fun b r ->
          match r with
          | None -> work := !work @ arr.(b)
          | Some ((rep : Proto.report), _) ->
            deferred := !deferred @ rep.Proto.r_deferred;
            reported := rep.Proto.r_params :: !reported)
        reports;
      let params =
        Strategy.merge_params ~sent:sent_params ~reported:(List.rev !reported)
      in
      let next =
        Driver.strip_items
          (Driver.sorted_items
             (carry @ List.map Driver.of_prefix !deferred))
      in
      Search_core.save_checkpoint scratch ctl ~strategy:S.name
        ~frontier:
          (Checkpoint.V3
             (stamp
                {
                  Checkpoint.v3_tag = S.tag;
                  v3_params = params;
                  v3_round = round_no;
                  v3_work = !work;
                  v3_next = next;
                }));
      with_lock t.m (fun () -> t.ck_last <- ctl.Search_core.ck_last)
  in
  let rec drive work carry =
    let work = Driver.sorted_items work in
    let prefixes = Driver.strip_items work in
    let f0 = S.to_prefixes ~wstates ~work:prefixes ~next:[] in
    let sent_params = f0.Checkpoint.v3_params in
    let round_no = f0.Checkpoint.v3_round in
    let n_work = List.length prefixes in
    let arr = Array.of_list (chunk t.batch_size [] prefixes) in
    let nb = Array.length arr in
    Collector.note_frontier master n_work;
    Icb_obs.Emit.emit emit
      (Icb_obs.Event.Bound_started { bound = S.round (); items = n_work });
    let master_snap = Collector.snapshot master in
    with_lock t.m (fun () ->
        (match t.limits with
        | Some li ->
          li.li_base_execs <- Collector.executions master;
          li.li_base_states <- Collector.seen_states master;
          li.li_base_steps <- Collector.total_steps master;
          li.li_base_bugs <- Collector.bug_count master;
          li.li_acc_execs <- 0;
          li.li_acc_states <- 0;
          li.li_acc_steps <- 0;
          li.li_acc_bugs <- 0
        | None -> ());
        t.ck_wanted <- false;
        t.round <-
          Some
            {
              rs_round = round_no;
              rs_tag = S.tag;
              rs_params = sent_params;
              rs_items = arr;
              rs_reports = Array.make nb None;
              rs_pending = List.init nb Fun.id;
              rs_leases = [];
              rs_completed = 0;
            };
        t.phase <- Serving;
        Condition.broadcast t.cv);
    let rec wait () =
      let what = with_lock t.m (fun () ->
          let rs = Option.get t.round in
          if rs.rs_completed >= nb || t.stop_requested <> None then `Barrier
          else if t.ck_wanted then begin
            t.ck_wanted <- false;
            `Ckpt
          end
          else begin
            Condition.wait t.cv t.m;
            `Again
          end)
      in
      match what with
      | `Barrier -> ()
      | `Ckpt ->
        mid_save ~master_snap ~sent_params ~round_no ~arr ~carry;
        wait ()
      | `Again -> wait ()
    in
    wait ();
    (* retire the round before merging: late reports turn stale *)
    let rs, stop = with_lock t.m (fun () ->
        let rs = Option.get t.round in
        t.round <- None;
        t.phase <- Starting;
        (rs, t.stop_requested))
    in
    (* the deterministic barrier merge, in batch-id order *)
    let candidates = ref [] in
    Array.iter
      (fun r ->
        match r with
        | None -> ()
        | Some (_, sn) ->
          Collector.merge_stats master sn;
          candidates := Collector.snapshot_bugs sn @ !candidates)
      rs.rs_reports;
    Driver.absorb_bugs master !candidates;
    (* telemetry: replay each batch's buffered events in batch-id order —
       the merged trace is deterministic up to timestamps — then stamp
       the batch totals *)
    Array.iteri
      (fun b r ->
        match r with
        | None -> ()
        | Some ((rep : Proto.report), sn) ->
          Telemetry.inject t.tel
            (List.filter_map
               (fun ej -> Result.to_option (Icb_obs.Event.of_json ej))
               rep.Proto.r_events);
          Icb_obs.Emit.emit emit
            (Icb_obs.Event.Worker_stats
               {
                 stats_for = b;
                 executions = Collector.snapshot_executions sn;
                 steps = Collector.snapshot_steps sn;
                 bugs = List.length (Collector.snapshot_bugs sn);
               }))
      rs.rs_reports;
    let completed = ref [] in
    Array.iter
      (fun r -> match r with None -> () | Some (rep, _) -> completed := rep :: !completed)
      rs.rs_reports;
    let completed = List.rev !completed in
    let next_items =
      Driver.sorted_items
        (carry
        @ List.concat_map
            (fun (rep : Proto.report) ->
              List.map Driver.of_prefix rep.Proto.r_deferred)
            completed)
    in
    (* fold the workers' round-local params (truncation counts, sealing
       counts, PCT's step estimate) back into this instance, as if one
       [to_prefixes] had seen the union of their worker states; the
       non-empty work list keeps the randomized strategies from minting *)
    if completed <> [] then
      ignore
        (S.of_prefixes master
           {
             Checkpoint.v3_tag = S.tag;
             v3_params =
               Strategy.merge_params ~sent:sent_params
                 ~reported:(List.map (fun (r : Proto.report) -> r.Proto.r_params) completed);
             v3_round = round_no;
             v3_work = prefixes;
             v3_next = [];
           });
    m_inc t t.mx.mx_rounds;
    note_round_done (S.round ());
    match stop with
    | Some r ->
      Collector.note_stop master r;
      let unabsorbed = ref [] in
      Array.iteri
        (fun b rep -> if rep = None then unabsorbed := !unabsorbed @ arr.(b))
        rs.rs_reports;
      save_with master ~work:!unabsorbed
        ~next:(Driver.strip_items next_items)
    | None -> (
      Collector.mark_growth master;
      match S.after_round master ~wstates ~deferred:next_items with
      | `Complete ->
        Collector.set_complete master;
        save_with master ~work:[] ~next:[]
      | `Bounded -> save_with master ~work:[] ~next:(Driver.strip_items next_items)
      | `Round items -> drive items [])
  in
  (try
     match resume_v3 with
     | Some f ->
       let work, carry = S.of_prefixes master f in
       drive
         (List.map Driver.of_prefix work)
         (List.map Driver.of_prefix carry)
     | None ->
       let items = S.roots (module E) wstates.(0) master in
       if items = [] then Collector.set_complete master else drive items []
   with Collector.Stop -> ());
  with_lock t.m (fun () ->
      t.phase <- Finished;
      t.round <- None;
      Condition.broadcast t.cv);
  Thread.join ticker;
  (* Give connected workers a moment to poll once more and receive
     [Done], so their processes exit cleanly before the caller tears the
     port down; a worker that lingers past the grace is simply dropped. *)
  let grace = Unix.gettimeofday () +. 5.0 in
  let rec drain () =
    if with_lock t.m (fun () -> t.workers) > 0
       && Unix.gettimeofday () < grace
    then begin
      Unix.sleepf 0.02;
      drain ()
    end
  in
  drain ();
  let res = Collector.result master ~strategy:S.name in
  Icb_obs.Emit.emit emit
    (Icb_obs.Event.Run_finished
       {
         executions = res.Sresult.executions;
         states = res.Sresult.distinct_states;
         bugs = List.length res.Sresult.bugs;
         complete = res.Sresult.complete;
         stop_reason =
           Option.map Sresult.stop_reason_string res.Sresult.stop_reason;
       });
  res
