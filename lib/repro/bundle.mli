(** On-disk repro bundles: one versioned, checksummed, atomically-written
    file per deduplicated bug, carrying everything needed to rebuild the
    program and replay the witness.

    The framing follows the checkpoint format (magic, big-endian format
    version, MD5 digest of the payload, payload length, Marshal payload;
    writes go to a temp file in the same directory followed by an atomic
    rename), so a killed writer never leaves a half-written bundle and
    truncation or corruption is rejected with a clear {!Corrupt} error.
    See docs/REPRO.md for the workflow. *)

type t = {
  kind : string;     (** program provenance, the checkpoint convention:
                         ["model"] (a bundled-model name) or ["file"] *)
  target : string;   (** the {!Icb_models.Registry.addressable} name, or
                         the source path *)
  strategy : string; (** the strategy that found the bug, e.g. "random" *)
  seed : int64;
  bug_key : string;
  bug_msg : string;
  schedule : int list;          (** current witness (minimized when
                                    [minimized]) *)
  preemptions : int;            (** of [schedule], engine-measured *)
  context_switches : int;
  depth : int;
  found_schedule : int list;    (** the witness as originally found *)
  found_preemptions : int;
  found_depth : int;
  minimized : bool;
  proven_minimal : bool;        (** see {!Minimize.stats} *)
  deadlocks_are_errors : bool;  (** the finding search's
                                    [deadlock_is_error]; replays must
                                    match it *)
  fingerprint : string;         (** {!Triage.fingerprint} of [schedule] *)
  meta : (string * string) list;
      (** free-form provenance: granularity, executions, ... *)
}

exception Corrupt of string

val save : path:string -> t -> unit
val load : string -> t
(** Raises {!Corrupt} on wrong magic, unsupported version, digest
    mismatch or truncation. *)

val verify :
  (module Icb_search.Engine.S with type state = 's) ->
  t ->
  (Sched.witness, string) result
(** Replay the bundle's schedule on a freshly-built engine for its
    program and check full agreement: same bug key at the end of the
    schedule (not earlier, not later) and the recorded
    preemption/switch/depth counts.  [Error] describes the first
    disagreement — the program changed, the wrong variant was rebuilt,
    or the body is nondeterministic. *)

val describe : t -> string
(** One line: target, strategy, key, schedule size. *)
