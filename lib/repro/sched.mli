(** Schedule surgery and replay probing — the primitives {!Minimize} is
    built from.

    Everything here works through the engine abstraction
    ({!Icb_search.Engine.S}), so both the stateful machine engine and the
    stateless CHESS engine are supported.  All replays are {e defensive}:
    a candidate schedule that names a disabled thread, diverges
    ({!Icb_search.Engine.Nondeterministic_program}) or reaches a
    different outcome is reported as "does not reproduce" rather than
    raised out of the minimizer. *)

(** A replay-verified execution exposing a bug: the schedule consumed up
    to the first terminal state, with the engine's own measurements. *)
type witness = {
  schedule : int list;
  preemptions : int;
  context_switches : int;
  depth : int;
}

val better : witness -> witness -> bool
(** [better a b]: is [a] a strictly smaller witness than [b]?
    Lexicographic on (preemptions, depth, schedule) — the last component
    makes the order total, so "keep the best seen" is deterministic. *)

val count_switches : int list -> int
(** Total context switches (preempting or not): adjacent pairs of
    differing thread ids. *)

exception Budget
(** Raised by {!probe} and {!bounded_find} when the shared engine-step
    budget runs out; {!Minimize} converts it into a
    [proven_minimal = false] result. *)

val crash_key : exn -> string
(** The bug key crash containment gives an exception escaping an engine
    step ("nondeterministic-program" or "engine-crash:<constructor>"),
    mirrored from the search library so crash bugs minimize too. *)

val probe :
  (module Icb_search.Engine.S with type state = 's) ->
  deadlock_is_error:bool ->
  key:string ->
  steps:int ref ->
  int list ->
  witness option
(** Replay a schedule from the initial state, stopping at the first
    terminal state (built-in tail truncation: trailing steps past the
    bug never make it into the witness), and report whether that state
    exposes the bug [key].  A schedule step naming a disabled thread, an
    engine exception with a different {!crash_key}, or a terminal state
    with a different outcome all yield [None].  Decrements [steps] once
    per engine step; raises {!Budget} when it hits zero. *)

val preemption_stack :
  (module Icb_search.Engine.S with type state = 's) ->
  int list ->
  (int * int * int) list
(** The preempting context switches of a replayable schedule, oldest
    first, as [(step index, preempted tid, chosen tid)] triples — the
    "preemption stack" that fingerprints a minimized witness.  Raises
    [Invalid_argument] if the schedule does not replay. *)

val remove_preemption : int list -> at:int -> int list option
(** Delay-merge transformation: drop the preemption whose switch happens
    at step index [at] by delaying the preempted thread's next run to
    immediately after its interrupted run (the intervening segments slide
    later, adjacent same-thread runs merge).  Purely syntactic — the
    result must still be validated by {!probe}.  [None] when the
    preempted thread never runs again, or [at] does not start a new
    thread's run. *)

val remove_preemptions : int list -> at:int list -> int list option
(** Apply {!remove_preemption} at each given step index, latest first
    (the transformation preserves the schedule prefix before the removed
    switch, so earlier indices stay valid); [None] as soon as one removal
    is impossible. *)

val bounded_find :
  (module Icb_search.Engine.S with type state = 's) ->
  deadlock_is_error:bool ->
  key:string ->
  max_preemptions:int ->
  steps:int ref ->
  tried:int ref ->
  prefix:int list ->
  unit ->
  witness option
(** Exhaustive depth-first search for an execution exposing [key] with at
    most [max_preemptions] preemptions, rooted at the state reached by
    replaying [prefix] (the empty prefix searches the whole bounded
    space).  The visit order is deterministic and input-independent —
    continue the running thread first, then the other enabled threads in
    increasing tid order — so the first witness found is a {e canonical}
    representative for [(key, max_preemptions)].  [tried] counts terminal
    states visited (candidate executions); [steps] is the shared engine
    budget ({!Budget} when exhausted).  [None] when the bounded space
    holds no such execution (or the prefix itself does not replay). *)
