(** The [--repro-dir] writer: one bundle file per deduplicated bug.

    Filenames are content-derived
    (["<key>.<strategy>.<schedule-hash>.repro"], sanitized), so the same
    bug found again by the same strategy with the same witness is
    skipped, while different strategies' (or differently-scheduled)
    findings of one bug coexist in the directory and {!Triage} clusters
    them. *)

val bundle_filename : Bundle.t -> string

val drop :
  (module Icb_search.Engine.S with type state = 's) ->
  dir:string ->
  deadlock_is_error:bool ->
  kind:string ->
  target:string ->
  strategy:string ->
  seed:int64 ->
  ?meta:(string * string) list ->
  Icb_search.Sresult.bug list ->
  (string list, string) result
(** Write one (unminimized) bundle per bug into [dir], creating the
    directory if missing; returns the paths actually written (existing
    files are silently skipped).  The engine is only used to fingerprint
    each witness.  [Error] when the directory cannot be created or a
    write fails. *)
