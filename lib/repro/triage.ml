(* Bug fingerprints and bundle-directory clustering. *)

module Json = Icb_obs.Json
module Fnv = Icb_util.Fnv

let fingerprint (type s) (module E : Icb_search.Engine.S with type state = s)
    ~key schedule =
  match Sched.preemption_stack (module E) schedule with
  | stack ->
    let h =
      List.fold_left
        (fun h (i, from_tid, to_tid) ->
          Fnv.int (Fnv.int (Fnv.int h i) from_tid) to_tid)
        (Fnv.string Fnv.basis key)
        stack
    in
    Printf.sprintf "%s@%s" key (Fnv.to_hex h)
  | exception _ -> key ^ "@unreplayable"

type cluster = {
  cl_key : string;
  cl_bundles : (string * Bundle.t) list;
  cl_fingerprints : string list;
  cl_targets : string list;
  cl_strategies : string list;
  cl_min_preemptions : int;
  cl_min_length : int;
  cl_minimized : bool;
  cl_new : bool;
}

type report = {
  dir : string;
  clusters : cluster list;
  total : int;
  corrupt : (string * string) list;
}

let scan ?(known = []) dir =
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".repro")
    |> List.sort compare
  in
  let loaded, corrupt =
    List.fold_left
      (fun (ok, bad) f ->
        match Bundle.load (Filename.concat dir f) with
        | b -> ((f, b) :: ok, bad)
        | exception Bundle.Corrupt msg -> (ok, (f, msg) :: bad))
      ([], []) files
  in
  let loaded = List.rev loaded and corrupt = List.rev corrupt in
  let keys =
    List.sort_uniq compare
      (List.map (fun (_, b) -> b.Bundle.bug_key) loaded)
  in
  let clusters =
    List.map
      (fun key ->
        let members =
          List.filter (fun (_, b) -> b.Bundle.bug_key = key) loaded
        in
        let distinct f = List.sort_uniq compare (List.map f members) in
        let fingerprints = distinct (fun (_, b) -> b.Bundle.fingerprint) in
        let minimum f =
          List.fold_left
            (fun acc (_, b) -> min acc (f b))
            max_int members
        in
        {
          cl_key = key;
          cl_bundles = members;
          cl_fingerprints = fingerprints;
          cl_targets =
            distinct (fun (_, b) -> b.Bundle.kind ^ ":" ^ b.Bundle.target);
          cl_strategies = distinct (fun (_, b) -> b.Bundle.strategy);
          cl_min_preemptions = minimum (fun b -> b.Bundle.preemptions);
          cl_min_length = minimum (fun b -> List.length b.Bundle.schedule);
          cl_minimized =
            List.exists (fun (_, b) -> b.Bundle.minimized) members;
          cl_new =
            not (List.exists (fun fp -> List.mem fp known) fingerprints);
        })
      keys
  in
  { dir; clusters; total = List.length loaded; corrupt }

let known_fingerprints json =
  match Json.find json "clusters" with
  | Some (Json.List cs) ->
    List.concat_map
      (fun c ->
        match Json.find c "fingerprints" with
        | Some (Json.List fps) -> List.filter_map Json.to_str fps
        | _ -> [])
      cs
  | _ -> []

let to_json r =
  Json.Obj
    [
      ("dir", Json.String r.dir);
      ("total", Json.Int r.total);
      ( "corrupt",
        Json.List
          (List.map
             (fun (f, msg) ->
               Json.Obj
                 [ ("file", Json.String f); ("error", Json.String msg) ])
             r.corrupt) );
      ( "clusters",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("key", Json.String c.cl_key);
                   ("bundles", Json.Int (List.length c.cl_bundles));
                   ( "fingerprints",
                     Json.List
                       (List.map (fun f -> Json.String f) c.cl_fingerprints)
                   );
                   ( "targets",
                     Json.List
                       (List.map (fun t -> Json.String t) c.cl_targets) );
                   ( "strategies",
                     Json.List
                       (List.map (fun s -> Json.String s) c.cl_strategies)
                   );
                   ("min_preemptions", Json.Int c.cl_min_preemptions);
                   ("min_length", Json.Int c.cl_min_length);
                   ("minimized", Json.Bool c.cl_minimized);
                   ("new", Json.Bool c.cl_new);
                 ])
             r.clusters) );
    ]

let pp ppf r =
  let new_count = List.length (List.filter (fun c -> c.cl_new) r.clusters) in
  Format.fprintf ppf "%s: %d bundle(s), %d distinct bug(s) (%d new, %d known)"
    r.dir r.total (List.length r.clusters) new_count
    (List.length r.clusters - new_count);
  if r.corrupt <> [] then
    Format.fprintf ppf ", %d corrupt file(s) skipped"
      (List.length r.corrupt);
  Format.fprintf ppf "@.";
  if r.clusters <> [] then begin
    Format.fprintf ppf "@.%-32s %7s %8s %7s %6s  %s@." "KEY" "BUNDLES"
      "MIN PRE" "MIN LEN" "STATE" "STRATEGIES / TARGETS";
    List.iter
      (fun c ->
        Format.fprintf ppf "%-32s %7d %8d %7d %6s  %s; %s@." c.cl_key
          (List.length c.cl_bundles)
          c.cl_min_preemptions c.cl_min_length
          (if c.cl_new then "new" else "known")
          (String.concat "," c.cl_strategies)
          (String.concat "," c.cl_targets))
      r.clusters
  end;
  List.iter
    (fun (f, msg) -> Format.fprintf ppf "corrupt: %s: %s@." f msg)
    r.corrupt
