(* Schedule minimization: tail truncation + ddmin over preemption points
   + bounded canonical search.  See the .mli for the phase structure and
   the canonicality argument. *)

module Emit = Icb_obs.Emit
module Event = Icb_obs.Event

type budget = { max_engine_steps : int; canonicalize : bool }

(* Roomy: the bundled models' bounded spaces at small bounds are a few
   thousand executions of a few hundred steps each; proving minimality
   needs one full sweep at (c - 1) per improvement. *)
let default_budget = { max_engine_steps = 50_000_000; canonicalize = true }

type stats = {
  original : Sched.witness;
  minimized : Sched.witness;
  candidates : int;
  proven_minimal : bool;
}

let take n l = List.filteri (fun i _ -> i < n) l

(* Zeller's ddmin, phrased over the KEPT subset: [test kept] asks whether
   the bug still reproduces after removing every boundary not in [kept].
   Returns a kept set that passes and is 1-minimal (no single element can
   be dropped).  [test universe] must hold. *)
let ddmin test universe =
  let partition xs n =
    let len = List.length xs in
    let base = len / n and extra = len mod n in
    let rec go i xs acc =
      if i >= n then List.rev acc
      else
        let size = base + if i < extra then 1 else 0 in
        let chunk = take size xs in
        let rest = List.filteri (fun j _ -> j >= size) xs in
        go (i + 1) rest (chunk :: acc)
    in
    List.filter (fun c -> c <> []) (go 0 xs [])
  in
  if universe = [] || test [] then []
  else
    let rec go kept n =
      let len = List.length kept in
      if len <= 1 then kept
      else
        let chunks = partition kept n in
        match List.find_opt test chunks with
        | Some chunk -> go chunk 2 (* reduced to one chunk *)
        | None -> (
          let complement chunk =
            List.filter (fun x -> not (List.mem x chunk)) kept
          in
          match
            List.find_opt (fun c -> test (complement c)) chunks
          with
          | Some chunk -> go (complement chunk) (max (n - 1) 2)
          | None -> if n >= len then kept else go kept (min (2 * n) len))
    in
    go universe 2

let run (type s) (module E : Icb_search.Engine.S with type state = s)
    ?(budget = default_budget) ?(deadlock_is_error = true)
    ?(emit = Emit.null) ~key schedule =
  let steps = ref budget.max_engine_steps in
  let tried = ref 0 in
  let probe sched =
    incr tried;
    Sched.probe (module E) ~deadlock_is_error ~key ~steps sched
  in
  match probe schedule with
  | None ->
    Error
      (Printf.sprintf
         "schedule does not reproduce bug %S (wrong program, options, or a \
          nondeterministic test body?)"
         key)
  | Some original ->
    if Emit.enabled emit then
      Emit.emit emit
        (Event.Minimize_started
           { key; length = original.Sched.depth;
             preemptions = original.Sched.preemptions });
    let best = ref original in
    let improved phase w =
      best := w;
      if Emit.enabled emit then
        Emit.emit emit
          (Event.Minimize_improved
             { phase; candidates = !tried; length = w.Sched.depth;
               preemptions = w.Sched.preemptions })
    in
    (* probe already truncated the tail; surface it as a first improvement
       so the trace shows the trajectory from the raw input *)
    if original.Sched.depth < List.length schedule then
      improved "truncate" original;
    let proven = ref true in
    (* one ddmin sweep over the current witness's preemption points *)
    let ddmin_pass () =
      let base = !best.Sched.schedule in
      let bounds =
        List.map (fun (i, _, _) -> i)
          (Sched.preemption_stack (module E) base)
      in
      let test kept =
        let removed = List.filter (fun b -> not (List.mem b kept)) bounds in
        removed = []
        ||
        match Sched.remove_preemptions base ~at:removed with
        | None -> false
        | Some cand -> (
          match probe cand with
          | None -> false
          | Some w ->
            if Sched.better w !best then improved "ddmin" w;
            true)
      in
      ignore (ddmin test bounds)
    in
    (* try to beat the current preemption count outright: exhaustive
       canonical search at (c - 1), seeded at the surviving preemption
       prefixes (deepest first — cheap, often hits), then the whole
       bounded space (which proves minimality when it comes up empty) *)
    let search_pass () =
      let c = !best.Sched.preemptions in
      if c = 0 then `Minimal
      else begin
        let sched = !best.Sched.schedule in
        let prefixes =
          List.rev_map (fun (i, _, _) -> take i sched)
            (Sched.preemption_stack (module E) sched)
          @ [ [] ]
        in
        let rec attempt = function
          | [] -> `Minimal
          | prefix :: rest -> (
            match
              Sched.bounded_find (module E) ~deadlock_is_error ~key
                ~max_preemptions:(c - 1) ~steps ~tried ~prefix ()
            with
            | Some w ->
              improved "search" w;
              `Improved
            | None -> attempt rest)
        in
        attempt prefixes
      end
    in
    (try
       let rec loop () =
         ddmin_pass ();
         match search_pass () with `Improved -> loop () | `Minimal -> ()
       in
       loop ()
     with Sched.Budget -> proven := false);
    (* canonicalization: adopt the deterministic search's first witness at
       the final bound, making the result input-independent *)
    (if budget.canonicalize then
       try
         match
           Sched.bounded_find (module E) ~deadlock_is_error ~key
             ~max_preemptions:!best.Sched.preemptions ~steps ~tried
             ~prefix:[] ()
         with
         | Some w ->
           if w.Sched.schedule <> !best.Sched.schedule then
             improved "canonical" w
         | None -> ()
       with Sched.Budget -> proven := false);
    if Emit.enabled emit then
      Emit.emit emit
        (Event.Minimize_finished
           { key; candidates = !tried; length = !best.Sched.depth;
             preemptions = !best.Sched.preemptions; proven = !proven });
    Ok
      {
        original;
        minimized = !best;
        candidates = !tried;
        proven_minimal = !proven;
      }

let bug (type s) (module E : Icb_search.Engine.S with type state = s)
    ?budget ?deadlock_is_error ?emit (b : Icb_search.Sresult.bug) =
  run (module E) ?budget ?deadlock_is_error ?emit ~key:b.key b.schedule
