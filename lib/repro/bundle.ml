(* Repro bundle files.  Same framing discipline as Checkpoint (v3):

     bytes 0..7    magic "ICBREPR\x01"
     bytes 8..11   format version (big-endian int, output_binary_int)
     bytes 12..27  MD5 digest of the payload
     bytes 28..31  payload length
     bytes 32..    payload (Marshal of [t])

   Temp-file write + atomic rename; the digest rejects truncated or
   bit-rotted files with a clear error instead of a Marshal crash. *)

type t = {
  kind : string;
  target : string;
  strategy : string;
  seed : int64;
  bug_key : string;
  bug_msg : string;
  schedule : int list;
  preemptions : int;
  context_switches : int;
  depth : int;
  found_schedule : int list;
  found_preemptions : int;
  found_depth : int;
  minimized : bool;
  proven_minimal : bool;
  deadlocks_are_errors : bool;
  fingerprint : string;
  meta : (string * string) list;
}

exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt
let magic = "ICBREPR\x01"
let version = 1

let save ~path t =
  Icb_util.Framing.write_file ~path ~magic ~version
    ~payload:(Marshal.to_string t [])

let load path =
  match
    Icb_util.Framing.read_file
      ~check_version:(fun v -> v = version)
      ~path ~magic ()
  with
  | Error (Cannot_open msg) -> corrupt "cannot open repro bundle: %s" msg
  | Error (Truncated section) ->
    corrupt "repro bundle %s is truncated (while reading %s)" path
      (match section with
      | Magic -> "the magic number"
      | Version -> "the version"
      | Digest -> "the digest"
      | Length -> "the length"
      | Payload -> "the payload")
  | Error Bad_magic -> corrupt "%s is not a repro bundle (bad magic)" path
  | Error (Bad_version v) ->
    corrupt "repro bundle %s has unsupported format version %d (this \
             build reads version %d)"
      path v version
  | Error Negative_length ->
    corrupt "repro bundle %s has a negative length" path
  | Error Digest_mismatch ->
    corrupt "repro bundle %s is corrupt (digest mismatch)" path
  | Ok (_, payload) -> (Marshal.from_string payload 0 : t)

let verify (type s) (module E : Icb_search.Engine.S with type state = s) t =
  match
    Sched.probe (module E)
      ~deadlock_is_error:t.deadlocks_are_errors ~key:t.bug_key
      ~steps:(ref max_int) t.schedule
  with
  | None ->
    Error
      (Printf.sprintf
         "schedule does not reproduce bug %S — the program changed, the \
          wrong variant was rebuilt, or the test body is nondeterministic"
         t.bug_key)
  | Some w ->
    if w.Sched.schedule <> t.schedule then
      Error
        (Printf.sprintf
           "bug %S reproduces %d step(s) early — the recorded schedule has \
            trailing steps the bundle's writer did not see"
           t.bug_key
           (List.length t.schedule - w.Sched.depth))
    else if
      w.Sched.preemptions <> t.preemptions
      || w.Sched.context_switches <> t.context_switches
      || w.Sched.depth <> t.depth
    then
      Error
        (Printf.sprintf
           "bug %S reproduces but the measurements moved: recorded %d \
            preemptions / %d switches / depth %d, replay got %d / %d / %d"
           t.bug_key t.preemptions t.context_switches t.depth
           w.Sched.preemptions w.Sched.context_switches w.Sched.depth)
    else Ok w

let describe t =
  Printf.sprintf
    "%s %s (%s, strategy %s): %d step(s), %d preemption(s)%s"
    t.kind t.target t.bug_key t.strategy (List.length t.schedule)
    t.preemptions
    (if t.minimized then
       if t.proven_minimal then ", minimized (proven)" else ", minimized"
     else "")
