(** Replay-verified schedule minimization.

    Shrinks any schedule exposing a bug — typically a long,
    preemption-heavy one found by [random] or [pct:N] — to a
    locally-minimal witness for the same bug key, in three phases:

    + {b tail truncation}: the witness ends at the earliest step that
      exposes the bug (built into every replay, {!Sched.probe});
    + {b ddmin over preemption points}: delta debugging over the
      schedule's preempting context switches, each removal realized by
      the delay-merge transformation ({!Sched.remove_preemption}) and
      validated by replay, until the kept set is 1-minimal;
    + {b bounded ICB-style local search}: an exhaustive canonical search
      of the space with [current preemptions - 1] preemptions, seeded at
      the surviving preemption points (deepest first) and falling back
      to the whole bounded space — when it finds a witness the phases
      repeat, when it exhausts the space the current preemption count is
      {e proven} minimal for the bug key.

    A final canonicalization pass ({!budget.canonicalize}, on by
    default) replaces the witness by the first one the deterministic
    bounded search finds at the proven-minimal bound: the result then
    depends only on [(program, key, minimal bound)], so the same bug
    found by different strategies minimizes to the {e same} schedule and
    {!Triage} fingerprints deduplicate across runs.

    Works for any {!Icb_search.Engine.S} — the stateful machine engine
    and the stateless CHESS engine alike.  Deterministic: no randomness,
    no timing dependence, telemetry-neutral (the [emit] hook observes
    the trajectory but never changes it). *)

(** Work limits.  [max_engine_steps] bounds the total engine steps spent
    across all phases (replays and bounded searches); when it runs out
    the best witness so far is returned with [proven_minimal = false].
    The default is generous enough to prove minimality on all bundled
    models. *)
type budget = { max_engine_steps : int; canonicalize : bool }

val default_budget : budget

type stats = {
  original : Sched.witness;   (** the input schedule, replay-verified
                                  (and tail-truncated if it had steps
                                  past the bug) *)
  minimized : Sched.witness;
  candidates : int;           (** candidate executions replayed *)
  proven_minimal : bool;
      (** the bounded search exhausted the space with one preemption
          fewer — no witness for this key has fewer preemptions *)
}

val run :
  (module Icb_search.Engine.S with type state = 's) ->
  ?budget:budget ->
  ?deadlock_is_error:bool ->
  ?emit:Icb_obs.Emit.t ->
  key:string ->
  int list ->
  (stats, string) result
(** Minimize a schedule exposing the bug [key].  [deadlock_is_error]
    (default [true]) must match the options of the search that found the
    bug, or a "deadlock"-keyed bug cannot reproduce.  [emit] receives
    [Minimize_started] / [Minimize_improved] / [Minimize_finished]
    events (candidate counts, length/preemption trajectory).  [Error]
    when the input schedule does not reproduce the bug at all. *)

val bug :
  (module Icb_search.Engine.S with type state = 's) ->
  ?budget:budget ->
  ?deadlock_is_error:bool ->
  ?emit:Icb_obs.Emit.t ->
  Icb_search.Sresult.bug ->
  (stats, string) result
(** [run] on a collected bug's key and schedule. *)
