(* Schedule surgery and replay probing.

   The minimizer's contract rests on two properties of the engines:
   replay determinism (the same schedule reaches the same terminal state
   — guaranteed for the machine engine, and checked by the stateless
   engine's divergence detection) and the shared preemption-accounting
   rule [Engine.preempting].  Everything here replays defensively: a
   schedule produced by syntactic surgery may name a disabled thread or
   reach a different outcome, and that simply means "candidate
   rejected", never an exception escaping to the caller. *)

open Icb_search

type witness = {
  schedule : int list;
  preemptions : int;
  context_switches : int;
  depth : int;
}

(* The schedule component makes the order total: two witnesses with equal
   counts but different schedules never compare equal, so "keep the best
   seen so far" picks the same one on every run. *)
let better a b =
  compare
    (a.preemptions, a.depth, a.schedule)
    (b.preemptions, b.depth, b.schedule)
  < 0

let count_switches schedule =
  let rec go n = function
    | a :: (b :: _ as rest) -> go (if a <> b then n + 1 else n) rest
    | _ -> n
  in
  go 0 schedule

exception Budget

let tick steps =
  if !steps <= 0 then raise Budget;
  decr steps

(* Mirrors [Search_core.record_crash]'s keying, so a crash-contained bug
   ("engine-crash:Stack_overflow", "nondeterministic-program") matches
   the replayed exception during minimization. *)
let crash_key = function
  | Engine.Nondeterministic_program _ -> "nondeterministic-program"
  | exn -> "engine-crash:" ^ Printexc.exn_slot_name exn

(* The terminal-status counterpart: the collector keys deadlock bugs
   "deadlock" and assertion/race failures by their own key. *)
let status_matches ~deadlock_is_error ~key = function
  | Engine.Failed { key = k; _ } -> k = key
  | Engine.Deadlock _ -> deadlock_is_error && key = "deadlock"
  | Engine.Terminated | Engine.Running -> false

let witness_of (type s) (module E : Engine.S with type state = s) st =
  let schedule = E.schedule st in
  {
    schedule;
    preemptions = E.preemptions st;
    context_switches = count_switches schedule;
    depth = E.depth st;
  }

(* A crashing step never completes, so the witness is assembled from the
   pre-crash state plus the provoking tid — the same shape crash
   containment records. *)
let crash_witness (type s) (module E : Engine.S with type state = s) st t =
  let schedule = E.schedule st @ [ t ] in
  {
    schedule;
    preemptions = E.preemptions st;
    context_switches = count_switches schedule;
    depth = E.depth st + 1;
  }

let probe (type s) (module E : Engine.S with type state = s)
    ~deadlock_is_error ~key ~steps sched =
  let rec go st sched =
    let status = E.status st in
    if Engine.is_terminal status then
      if status_matches ~deadlock_is_error ~key status then
        Some (witness_of (module E) st)
      else None
    else
      match sched with
      | [] -> None
      | t :: rest ->
        if not (List.mem t (E.enabled st)) then None
        else begin
          tick steps;
          match E.step st t with
          | st' -> go st' rest
          | exception exn ->
            if crash_key exn = key then Some (crash_witness (module E) st t)
            else None
        end
  in
  go (E.initial ()) sched

let preemption_stack (type s) (module E : Engine.S with type state = s)
    sched =
  let rec go st last i acc = function
    | [] -> List.rev acc
    | t :: rest ->
      let en = E.enabled st in
      if not (List.mem t en) then
        invalid_arg
          (Printf.sprintf
             "Sched.preemption_stack: thread %d not enabled at step %d" t i);
      let acc =
        if Engine.preempting ~last_tid:last ~enabled:en ~chosen:t then
          (i, last, t) :: acc
        else acc
      in
      (match E.step st t with
      | st' -> go st' t (i + 1) acc rest
      | exception _ when rest = [] ->
        (* the final step of a crash-contained bug schedule: the switch's
           preempting-ness was decided above, the step itself never
           completes *)
        List.rev acc
      | exception exn ->
        invalid_arg
          (Printf.sprintf
             "Sched.preemption_stack: engine raised at step %d: %s" i
             (Printexc.to_string exn)))
  in
  go (E.initial ()) (-1) 0 [] sched

(* --- delay-merge surgery ------------------------------------------------- *)

(* Schedules are manipulated as runs: maximal same-tid segments with
   their flat start index. *)
let runs sched =
  let rec go acc = function
    | [] -> List.rev acc
    | t :: rest -> (
      match acc with
      | (t', n) :: tl when t' = t -> go ((t', n + 1) :: tl) rest
      | _ -> go ((t, 1) :: acc) rest)
  in
  go [] sched

let merge rs =
  List.rev
    (List.fold_left
       (fun acc (t, n) ->
         match acc with
         | (t', n') :: tl when t' = t -> (t', n' + n) :: tl
         | _ -> (t, n) :: acc)
       [] rs)

let flatten rs = List.concat_map (fun (t, n) -> List.init n (fun _ -> t)) rs

let remove_preemption sched ~at =
  let with_starts =
    let _, acc =
      List.fold_left
        (fun (pos, acc) (t, n) -> (pos + n, (pos, t, n) :: acc))
        (0, []) (runs sched)
    in
    List.rev acc
  in
  (* split at the run starting exactly at [at]; the run before it belongs
     to the preempted thread *)
  let rec split before = function
    | (start, _, _) :: _ as after when start = at && before <> [] ->
      Some (List.rev before, after)
    | r :: rest -> split (r :: before) rest
    | [] -> None
  in
  match split [] with_starts with
  | None -> None
  | Some (before, after) ->
    let _, preempted, _ = List.nth before (List.length before - 1) in
    (* pull the preempted thread's next run forward to just after its
       interrupted run; everything in between slides later *)
    let rec extract skipped = function
      | (_, t, n) :: rest when t = preempted ->
        Some ((t, n), List.rev skipped, rest)
      | r :: rest -> extract (r :: skipped) rest
      | [] -> None
    in
    (match extract [] after with
    | None -> None
    | Some (resumed, between, rest) ->
      let strip = List.map (fun (_, t, n) -> (t, n)) in
      Some
        (flatten
           (merge (strip before @ (resumed :: strip between) @ strip rest))))

let remove_preemptions sched ~at =
  (* latest first: the transformation leaves the prefix before the removed
     switch untouched, so earlier step indices keep their meaning *)
  let at = List.sort_uniq (fun a b -> compare b a) at in
  List.fold_left
    (fun acc i ->
      match acc with
      | None -> None
      | Some s -> remove_preemption s ~at:i)
    (Some sched) at

(* --- bounded canonical search -------------------------------------------- *)

let bounded_find (type s) (module E : Engine.S with type state = s)
    ~deadlock_is_error ~key ~max_preemptions ~steps ~tried ~prefix () =
  let exception Found of witness in
  let rec dfs st last =
    let status = E.status st in
    if Engine.is_terminal status then begin
      incr tried;
      if status_matches ~deadlock_is_error ~key status then
        raise (Found (witness_of (module E) st))
    end
    else begin
      let en = E.enabled st in
      (* canonical visit order: continue the running thread (free), then
         the others by increasing tid — input-independent, so the first
         hit is the same whatever schedule seeded the minimization *)
      let order =
        if List.mem last en then last :: List.filter (fun t -> t <> last) en
        else en
      in
      let p = E.preemptions st in
      List.iter
        (fun t ->
          let cost =
            if Engine.preempting ~last_tid:last ~enabled:en ~chosen:t then 1
            else 0
          in
          if p + cost <= max_preemptions then begin
            tick steps;
            (* the exception clause catches only [E.step]'s own raises;
               [Found] and [Budget] from the recursive call propagate *)
            match E.step st t with
            | st' -> dfs st' t
            | exception exn ->
              incr tried;
              if crash_key exn = key then
                raise (Found (crash_witness (module E) st t))
          end)
        order
    end
  in
  let rec replay st last = function
    | [] -> Some (st, last)
    | t :: rest ->
      if Engine.is_terminal (E.status st) then None
      else if not (List.mem t (E.enabled st)) then None
      else begin
        tick steps;
        match E.step st t with
        | st' -> replay st' t rest
        | exception _ -> None
      end
  in
  match replay (E.initial ()) (-1) prefix with
  | None -> None
  | Some (st, last) -> ( try dfs st last; None with Found w -> Some w)
