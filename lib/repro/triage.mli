(** Cross-run bug triage: stable fingerprints for minimized witnesses
    and clustering over a directory of repro bundles.

    The fingerprint of a witness is its bug key plus the hash of its
    preemption stack (step index, preempted tid, chosen tid of every
    preempting switch).  Minimization canonicalizes witnesses (see
    {!Minimize}), so the same bug found by different strategies — or on
    different days — lands on the same fingerprint, and a directory of
    bundles accumulated across runs triages into one cluster per
    distinct bug. *)

val fingerprint :
  (module Icb_search.Engine.S with type state = 's) ->
  key:string ->
  int list ->
  string
(** ["<key>@<fnv64 of key + preemption stack>"]; a schedule that does not
    replay yields the sentinel ["<key>@unreplayable"] instead of
    raising. *)

type cluster = {
  cl_key : string;                       (** the bug key *)
  cl_bundles : (string * Bundle.t) list; (** filename × bundle, sorted *)
  cl_fingerprints : string list;         (** distinct, sorted *)
  cl_targets : string list;              (** distinct "kind:target" *)
  cl_strategies : string list;
  cl_min_preemptions : int;
  cl_min_length : int;
  cl_minimized : bool;  (** at least one member is a minimized witness *)
  cl_new : bool;        (** no fingerprint appears in the [known] set *)
}

type report = {
  dir : string;
  clusters : cluster list;        (** sorted by bug key *)
  total : int;                    (** readable bundles *)
  corrupt : (string * string) list;  (** filename × load error *)
}

val scan : ?known:string list -> string -> report
(** Read every [*.repro] file in the directory.  [known] is a set of
    fingerprints from earlier triage output ({!known_fingerprints});
    clusters whose fingerprints all miss it are flagged [cl_new].
    Raises [Sys_error] if the directory cannot be read; unreadable
    bundles land in [corrupt], never abort the scan. *)

val known_fingerprints : Icb_obs.Json.t -> string list
(** Extract the fingerprints from a previous [icb triage --json] output,
    for {!scan}'s [known]. *)

val to_json : report -> Icb_obs.Json.t
val pp : Format.formatter -> report -> unit
