(* Bundle naming and the --repro-dir writer. *)

module Fnv = Icb_util.Fnv

let sanitize s =
  let b = Bytes.of_string s in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> ()
      | _ -> Bytes.set b i '-')
    b;
  let s = Bytes.to_string b in
  if String.length s > 64 then String.sub s 0 64 else s

let schedule_hash schedule =
  let h = List.fold_left Fnv.int Fnv.basis schedule in
  String.sub (Fnv.to_hex h) 0 8

let bundle_filename (t : Bundle.t) =
  Printf.sprintf "%s.%s.%s.repro" (sanitize t.bug_key) (sanitize t.strategy)
    (schedule_hash t.schedule)

let drop (type s) (module E : Icb_search.Engine.S with type state = s) ~dir
    ~deadlock_is_error ~kind ~target ~strategy ~seed ?(meta = []) bugs =
  match
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
    else if not (Sys.is_directory dir) then
      failwith (dir ^ " exists and is not a directory")
  with
  | exception Unix.Unix_error (e, _, _) ->
    Error
      (Printf.sprintf "cannot create repro directory %s: %s" dir
         (Unix.error_message e))
  | exception Failure msg -> Error msg
  | () -> (
    try
      Ok
        (List.filter_map
        (fun (b : Icb_search.Sresult.bug) ->
          let t =
            {
              Bundle.kind;
              target;
              strategy;
              seed;
              bug_key = b.key;
              bug_msg = b.msg;
              schedule = b.schedule;
              preemptions = b.preemptions;
              context_switches = b.context_switches;
              depth = b.depth;
              found_schedule = b.schedule;
              found_preemptions = b.preemptions;
              found_depth = b.depth;
              minimized = false;
              proven_minimal = false;
              deadlocks_are_errors = deadlock_is_error;
              fingerprint = Triage.fingerprint (module E) ~key:b.key b.schedule;
              meta;
            }
          in
          let path = Filename.concat dir (bundle_filename t) in
          if Sys.file_exists path then None
          else begin
            Bundle.save ~path t;
            Some path
          end)
          bugs)
    with Sys_error msg ->
      Error (Printf.sprintf "cannot write repro bundle: %s" msg))
