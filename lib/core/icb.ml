module Machine = Icb_machine
module Zlang = Icb_zlang
module Race = Icb_race
module Search = Icb_search
module Obs = Icb_obs
module Util = Icb_util

type prog = Icb_machine.Prog.t
type bug = Icb_search.Sresult.bug
type result = Icb_search.Sresult.t

exception Compile_error of string

let compile src =
  try Icb_zlang.Zl.compile_source src
  with Icb_zlang.Zl.Error msg -> raise (Compile_error msg)

let compile_file path =
  try Icb_zlang.Zl.compile_file path
  with Icb_zlang.Zl.Error msg -> raise (Compile_error msg)

let engine ?(config = Icb_search.Mach_engine.default_config) prog =
  (module Icb_search.Mach_engine.Make (struct
    let config = config
    let prog = prog
  end) : Icb_search.Engine.S
    with type state = Icb_search.Mach_engine.state)

let run ?config ?options ?checkpoint_out ?checkpoint_every ?checkpoint_meta
    ?resume_from ?telemetry ?domains ?cache ?on_cache_stats ~strategy prog =
  (* the variable-bounding strategies consume the program's static
     shared-variable ranking; deriving it is cheap, so it rides along on
     every run and the other strategies simply ignore it *)
  Icb_search.Explore.run (engine ?config prog) ?options ?checkpoint_out
    ?checkpoint_every ?checkpoint_meta ?resume_from ?telemetry ?domains
    ?cache ?on_cache_stats
    ~env:(Icb_search.Strategy.env_of_prog prog)
    strategy

let run_parallel ?config ?options ?checkpoint_out ?checkpoint_every
    ?checkpoint_meta ?resume_from ?telemetry ?max_bound ?(cache = false)
    ?replay_cache ?on_cache_stats ~domains prog =
  (* Each worker gets its own machine-engine instance, and machine states
     are persistent plain data any instance can step, so deferred work
     items carry their live states across the barrier instead of being
     replayed. *)
  Icb_search.Parallel.run
    (fun _ -> engine ?config prog)
    ?options ?checkpoint_out ?checkpoint_every ?checkpoint_meta ?resume_from
    ?telemetry ~share_states:true ?replay_cache ?on_cache_stats ~domains
    ~max_bound ~cache ()

let resume ?config ?options ?checkpoint_out ?checkpoint_every ?checkpoint_meta
    ?telemetry ?domains ?cache prog ckpt =
  Icb_search.Explore.resume (engine ?config prog) ?options ?checkpoint_out
    ?checkpoint_every ?checkpoint_meta ?telemetry ?domains ?cache
    ~env:(Icb_search.Strategy.env_of_prog prog)
    ckpt

module Dist = Icb_dist

let serve ?config ?options ?checkpoint_out ?checkpoint_every ?checkpoint_meta
    ?resume_from ?host ?port ?lease_timeout ?batch_size ?telemetry ?cache
    ?on_coordinator ~strategy prog =
  let coord =
    Icb_dist.Coord.create ?host ?port ?lease_timeout ?batch_size ?telemetry ()
  in
  (match on_coordinator with None -> () | Some f -> f coord);
  Fun.protect
    ~finally:(fun () -> Icb_dist.Coord.shutdown coord)
    (fun () ->
      Icb_dist.Coord.run coord (engine ?config prog) ?options ?checkpoint_out
        ?checkpoint_every ?checkpoint_meta ?resume_from
        ~env:(Icb_search.Strategy.env_of_prog prog)
        ?cache strategy)

let worker ?config ?cache ?resolve ~host ~port () =
  (* the default resolver only knows file provenance; callers with a
     model registry (the CLI) pass their own *)
  let default_resolve meta =
    match
      (List.assoc_opt "kind" meta, List.assoc_opt "target" meta)
    with
    | Some "file", Some path -> (
      match compile_file path with
      | prog -> Ok (Icb_dist.Worker.Packed (engine ?config prog))
      | exception Compile_error m -> Error m
      | exception Sys_error m -> Error m)
    | _ ->
      Error
        "the job's provenance metadata names no model file (need \
         kind=file with a target path; pass ~resolve for other kinds)"
  in
  Icb_dist.Worker.run ?cache ~host ~port
    ~resolve:(Option.value resolve ~default:default_resolve)
    ()

let check ?config ?options ?(max_bound = 3) ?telemetry ?domains ?cache prog =
  Icb_search.Explore.check (engine ?config prog) ?options ~max_bound
    ?telemetry ?domains ?cache ()

let pp_bug fmt (b : bug) =
  Format.fprintf fmt
    "@[<v>%s@ preemptions: %d, context switches: %d, steps: %d@ schedule: %s@]"
    b.msg b.preemptions b.context_switches b.depth
    (String.concat " " (List.map string_of_int b.schedule))

let explain ?(config = Icb_search.Mach_engine.default_config) prog (b : bug) =
  let module E = (val engine ~config prog) in
  let lines = ref [] in
  let add fmt = Format.kasprintf (fun s -> lines := s :: !lines) fmt in
  let st = ref (E.initial ()) in
  List.iter
    (fun tid ->
      let before = E.enabled !st in
      let preempting =
        Engine_helpers.preempting_of_schedule ~enabled:before
          ~last:(Icb_search.Mach_engine.machine_state !st).Icb_machine.State
           .last_tid ~chosen:tid
      in
      st := E.step !st tid;
      let m = Icb_search.Mach_engine.machine_state !st in
      let th = Icb_machine.State.thread_get m tid in
      add "thread %d ran%s (now at %s pc=%d)%s" tid
        (if preempting then " [preemption]" else "")
        m.Icb_machine.State.prog.procs.(th.proc).pname th.pc
        (match E.status !st with
        | Icb_search.Engine.Failed { msg; _ } -> ": " ^ msg
        | Icb_search.Engine.Deadlock _ -> ": deadlock"
        | Icb_search.Engine.Terminated -> ": all threads finished"
        | Icb_search.Engine.Running -> ""))
    b.schedule;
  List.rev !lines
