(** Iterative context bounding for systematic testing of multithreaded
    programs — public facade.

    This library reproduces Musuvathi & Qadeer (PLDI 2007).  A model is a
    program in the bundled modeling language (or a hand-built
    {!Machine.Prog.t}); {!check} systematically explores its thread
    schedules in increasing order of preempting context switches and
    reports the first bug with a replayable schedule.  {!run} gives full
    control over strategy, limits and coverage accounting.

    {[
      let prog = Icb.compile {| ...model source... |} in
      match Icb.check prog with
      | Some bug -> Format.printf "bug with %d preemptions: %s@." bug.preemptions bug.msg
      | None -> print_endline "no bug up to the default bound"
    ]} *)

module Machine = Icb_machine
module Zlang = Icb_zlang
module Race = Icb_race
module Search = Icb_search
module Obs = Icb_obs
module Util = Icb_util

type prog = Icb_machine.Prog.t
type bug = Icb_search.Sresult.bug
type result = Icb_search.Sresult.t

exception Compile_error of string

val compile : string -> prog
(** Compile modeling-language source.  Raises {!Compile_error}. *)

val compile_file : string -> prog

val engine :
  ?config:Icb_search.Mach_engine.config ->
  prog ->
  (module Icb_search.Engine.S with type state = Icb_search.Mach_engine.state)
(** The machine engine for a program, ready to pass to the search
    strategies. *)

val run :
  ?config:Icb_search.Mach_engine.config ->
  ?options:Icb_search.Collector.options ->
  ?checkpoint_out:string ->
  ?checkpoint_every:int ->
  ?checkpoint_meta:(string * string) list ->
  ?resume_from:Icb_search.Checkpoint.t ->
  ?telemetry:Icb_obs.Telemetry.t ->
  ?domains:int ->
  ?cache:bool ->
  ?on_cache_stats:(Icb_search.Replay_cache.stats -> unit) ->
  strategy:Icb_search.Explore.strategy ->
  prog ->
  result
(** See {!Icb_search.Explore.run}: all limits (including the wall-clock
    [deadline] in options) yield partial results rather than raising, and
    [checkpoint_out]/[resume_from] make every strategy but [Sleep_dfs]
    interruptible and resumable.  [domains] shards any strategy whose
    frontier shards ([Icb], the DFS family, [Random_walk], [Pct]) across
    OCaml domains; for ICB specifically, {!run_parallel} additionally
    shares engine states across workers instead of replaying prefixes.
    [cache] (default [true]) is the prefix-snapshot replay cache
    (docs/REPLAY_CACHE.md); [~cache:false] forces every schedule prefix to
    replay from the initial state, with identical results.
    [telemetry] streams structured run events (and derived metrics) to
    that hub's sinks without changing what the search explores — see
    docs/OBSERVABILITY.md. *)

val run_parallel :
  ?config:Icb_search.Mach_engine.config ->
  ?options:Icb_search.Collector.options ->
  ?checkpoint_out:string ->
  ?checkpoint_every:int ->
  ?checkpoint_meta:(string * string) list ->
  ?resume_from:Icb_search.Checkpoint.t ->
  ?telemetry:Icb_obs.Telemetry.t ->
  ?max_bound:int ->
  ?cache:bool ->
  ?replay_cache:bool ->
  ?on_cache_stats:(Icb_search.Replay_cache.stats -> unit) ->
  domains:int ->
  prog ->
  result
(** Parallel iterative context bounding: shard each context bound's work
    queue across [domains] OCaml domains, each with its own engine
    instance, and merge deterministically at a per-bound barrier — the
    result (bug set, per-bound execution counts, states, steps) matches a
    serial [run ~strategy:(Icb ...)] of the same program when
    [cache = false] (the default; see {!Icb_search.Parallel} for the
    cached caveat).  [cache] is the strategy's seen-state pruning cache;
    [replay_cache] (default [true]) is the orthogonal prefix-snapshot
    replay cache of docs/REPLAY_CACHE.md, which never changes what is
    explored.  Checkpoints written here are resumable both serially
    ({!resume}) and in parallel ({!resume} with [~domains], or
    [run_parallel ~resume_from]). *)

module Dist = Icb_dist

val serve :
  ?config:Icb_search.Mach_engine.config ->
  ?options:Icb_search.Collector.options ->
  ?checkpoint_out:string ->
  ?checkpoint_every:int ->
  ?checkpoint_meta:(string * string) list ->
  ?resume_from:Icb_search.Checkpoint.t ->
  ?host:string ->
  ?port:int ->
  ?lease_timeout:float ->
  ?batch_size:int ->
  ?telemetry:Icb_obs.Telemetry.t ->
  ?cache:bool ->
  ?on_coordinator:(Icb_dist.Coord.t -> unit) ->
  strategy:Icb_search.Explore.strategy ->
  prog ->
  result
(** Coordinate a distributed search of [prog]: listen on [host]:[port]
    (default loopback, ephemeral), lease work-item batches to [icb
    worker] processes and merge their reports at the same deterministic
    per-bound barrier the in-process parallel driver uses, so the result
    (bug set, per-bound execution counts) equals a serial {!run} of the
    same search — see docs/DISTRIBUTED.md.  [on_coordinator] runs before
    blocking (read the bound {!Icb_dist.Coord.port} there);
    [checkpoint_meta] doubles as the job provenance workers use to
    rebuild the program.  The coordinator is shut down (port released)
    when the search returns. *)

val worker :
  ?config:Icb_search.Mach_engine.config ->
  ?cache:bool ->
  ?resolve:
    ((string * string) list ->
    (Icb_dist.Worker.packed_engine, string) Stdlib.result) ->
  host:string ->
  port:int ->
  unit ->
  (int, string) Stdlib.result
(** Serve one coordinator as a worker until its run finishes; returns the
    number of batches processed.  The default resolver compiles the job's
    [kind=file]/[target] provenance with {!compile_file}; pass [resolve]
    to support other kinds (the CLI adds the bundled model registry). *)

val resume :
  ?config:Icb_search.Mach_engine.config ->
  ?options:Icb_search.Collector.options ->
  ?checkpoint_out:string ->
  ?checkpoint_every:int ->
  ?checkpoint_meta:(string * string) list ->
  ?telemetry:Icb_obs.Telemetry.t ->
  ?domains:int ->
  ?cache:bool ->
  prog ->
  Icb_search.Checkpoint.t ->
  result
(** Continue a checkpointed search of [prog]; see
    {!Icb_search.Explore.resume}.  The checkpoint must have been written
    for the same program (a fingerprint mismatch raises
    [Invalid_argument]).  [domains] resumes any shardable strategy's
    checkpoint in parallel, whichever driver wrote it. *)

val check :
  ?config:Icb_search.Mach_engine.config ->
  ?options:Icb_search.Collector.options ->
  ?max_bound:int ->
  ?telemetry:Icb_obs.Telemetry.t ->
  ?domains:int ->
  ?cache:bool ->
  prog ->
  bug option
(** Iterative context bounding, stopping at the first bug.  The returned
    bug carries the minimal number of preemptions needed to expose any bug
    of its kind (the ICB guarantee).  Default bound: 3, matching the range
    within which every bug in the paper's evaluation was found; pass
    [~max_bound] to widen. *)

val pp_bug : Format.formatter -> bug -> unit

val explain : ?config:Icb_search.Mach_engine.config -> prog -> bug ->
  string list
(** Replay a bug's schedule and narrate each step: which thread ran and
    what the machine state looked like when the bug fired. *)
