(* A small handle-based metrics registry: counters, gauges and
   fixed-bucket histograms, rendered as Prometheus text exposition or a
   JSON snapshot.  Handles are returned at registration so the update
   path is a ref bump, not a name lookup.  The registry itself is not
   thread-safe; the telemetry layer funnels all updates through its
   consumer lock. *)

type counter = float ref
type gauge = float ref

type histogram = {
  buckets : float array;      (* upper bounds, ascending; +Inf implicit *)
  counts : int array;         (* length = Array.length buckets + 1 *)
  mutable sum : float;
  mutable total : int;
}

type value = Counter of counter | Gauge of gauge | Histogram of histogram
type entry = { name : string; help : string; v : value }
type t = { mutable entries : entry list (* reversed registration order *) }

let create () = { entries = [] }

let register t name help v =
  if List.exists (fun e -> e.name = name) t.entries then
    invalid_arg (Printf.sprintf "Metrics: %s registered twice" name);
  t.entries <- { name; help; v } :: t.entries

let counter t ~help name =
  let c = ref 0.0 in
  register t name help (Counter c);
  c

let inc c by = c := !c +. by

let gauge t ~help name =
  let g = ref 0.0 in
  register t name help (Gauge g);
  g

let set g v = g := v
let value r = !r

let histogram t ~help ~buckets name =
  let buckets = Array.of_list (List.sort_uniq compare buckets) in
  let h = { buckets; counts = Array.make (Array.length buckets + 1) 0; sum = 0.0; total = 0 } in
  register t name help (Histogram h);
  h

let observe h v =
  let n = Array.length h.buckets in
  let rec slot i = if i >= n || v <= h.buckets.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. v;
  h.total <- h.total + 1

let histogram_count h = h.total
let histogram_sum h = h.sum

let find t name =
  List.find_map
    (fun e ->
      if e.name <> name then None
      else match e.v with Counter c | Gauge c -> Some !c | Histogram _ -> None)
    t.entries

(* --- rendering ----------------------------------------------------------- *)

(* Prometheus sample values: counters are exact when integral, floats
   keep enough digits to round-trip for our purposes. *)
let num f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let to_prometheus t =
  let b = Buffer.create 1024 in
  List.iter
    (fun { name; help; v } ->
      Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
      match v with
      | Counter c ->
        Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" name);
        Buffer.add_string b (Printf.sprintf "%s %s\n" name (num !c))
      | Gauge g ->
        Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" name);
        Buffer.add_string b (Printf.sprintf "%s %s\n" name (num !g))
      | Histogram h ->
        Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" name);
        let cum = ref 0 in
        Array.iteri
          (fun i le ->
            cum := !cum + h.counts.(i);
            Buffer.add_string b
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name (num le) !cum))
          h.buckets;
        Buffer.add_string b
          (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name h.total);
        Buffer.add_string b (Printf.sprintf "%s_sum %s\n" name (num h.sum));
        Buffer.add_string b (Printf.sprintf "%s_count %d\n" name h.total))
    (List.rev t.entries);
  Buffer.contents b

let to_json t =
  Json.Obj
    (List.rev_map
       (fun { name; help; v } ->
         let fields =
           match v with
           | Counter c -> [ ("type", Json.String "counter"); ("value", Json.Float !c) ]
           | Gauge g -> [ ("type", Json.String "gauge"); ("value", Json.Float !g) ]
           | Histogram h ->
             [
               ("type", Json.String "histogram");
               ( "buckets",
                 Json.List
                   (List.concat
                      [
                        Array.to_list
                          (Array.mapi
                             (fun i le ->
                               Json.Obj
                                 [ ("le", Json.Float le); ("count", Json.Int h.counts.(i)) ])
                             h.buckets);
                        [
                          Json.Obj
                            [
                              ("le", Json.String "+Inf");
                              ("count", Json.Int h.counts.(Array.length h.buckets));
                            ];
                        ];
                      ]) );
               ("sum", Json.Float h.sum);
               ("count", Json.Int h.total);
             ]
         in
         (name, Json.Obj (("help", Json.String help) :: fields)))
       t.entries)
