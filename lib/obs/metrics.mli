(** A handle-based metrics registry: counters, gauges and fixed-bucket
    histograms, rendered as Prometheus text exposition or a JSON
    snapshot.

    Handles are returned at registration so updates are ref bumps, not
    name lookups.  Rendering preserves registration order.  The registry
    itself is not thread-safe: {!Telemetry} funnels every update through
    its consumer lock. *)

type t
type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> help:string -> string -> counter
(** Raises [Invalid_argument] when the name is already registered (same
    for {!gauge} and {!histogram}). *)

val inc : counter -> float -> unit
val gauge : t -> help:string -> string -> gauge
val set : gauge -> float -> unit

val value : counter -> float
(** Also reads gauges — the two share a representation. *)

val histogram : t -> help:string -> buckets:float list -> string -> histogram
(** [buckets] are upper bounds (sorted and deduplicated internally); an
    implicit [+Inf] bucket catches the rest. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val find : t -> string -> float option
(** Current value of a counter or gauge by name; [None] for histograms
    and unknown names.  For tests and file validation. *)

val to_prometheus : t -> string
(** Text exposition format: [# HELP]/[# TYPE] comments, cumulative
    [_bucket{le="..."}] samples plus [_sum]/[_count] for histograms. *)

val to_json : t -> Json.t
