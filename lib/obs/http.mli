(** Just enough HTTP/1.1 to serve [GET /metrics] and [GET /status] from
    the distributed coordinator's listening socket — request-line plus
    headers in, one [Connection: close] response out.  Not a web server:
    no keep-alive, no chunking, no body parsing. *)

type request = {
  meth : string;  (** upper-cased, e.g. ["GET"] *)
  path : string;  (** as sent, query string included *)
}

val read_request : in_channel -> (request, string) result
(** Parse the request line and consume the header block.  [Error] on
    malformed or truncated input. *)

val respond :
  out_channel ->
  ?status:int * string ->
  content_type:string ->
  string ->
  unit
(** Write a complete response (default status [200 OK]) with
    [Content-Length] and [Connection: close], then flush.  The caller
    closes the socket. *)

val not_found : out_channel -> unit
val method_not_allowed : out_channel -> unit
