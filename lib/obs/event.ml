(* The typed telemetry event stream.  Payloads are plain ints, strings
   and options — never search-library types — so the dependency runs
   [icb_search -> icb_obs] and a trace file is self-describing.

   An envelope stamps each event with a monotonic timestamp (seconds
   since the telemetry handle was created, so merged parallel streams
   share one clock) and the id of the worker domain that recorded it. *)

type t =
  | Run_started of { strategy : string; domains : int; resumed : bool }
  | Bound_started of { bound : int; items : int }
      (** a strategy round begins; for ICB [bound] is the context bound,
          [items] the frontier size seeding the round *)
  | Item_started of { prefix : int; payload : int }
      (** a work item dequeued: schedule-prefix length and payload *)
  | Item_finished of { seconds : float; executions : int; steps : int }
      (** the matching completion, with per-item deltas *)
  | Execution_done of {
      bound : int option;  (** ICB's current bound; [None] otherwise *)
      steps : int;         (** depth of the finished execution *)
      preemptions : int;
      status : string;     (** terminated | deadlock | failed | truncated *)
      executions : int;    (** the recording collector's running count *)
    }
  | Bug_found of { key : string; preemptions : int; execution : int }
  | Checkpoint_written of { path : string; executions : int }
  | Worker_stats of {
      stats_for : int;  (** worker the numbers describe (the envelope's
                            [worker] is whoever merged them) *)
      executions : int;
      steps : int;
      bugs : int;
    }
  | Cache_stats of {
      hits : int;           (** materializations served from a snapshot *)
      misses : int;         (** materializations replayed from the root *)
      steps_saved : int;    (** engine steps avoided via snapshots *)
      steps_replayed : int; (** engine steps re-executed to rebuild prefixes *)
    }
      (** end-of-run totals of the prefix-snapshot replay cache, summed
          over all workers; emitted only when the engine offers the
          snapshot capability and caching is enabled *)
  | Run_finished of {
      executions : int;
      states : int;
      bugs : int;
      complete : bool;
      stop_reason : string option;
    }
  | Minimize_started of { key : string; length : int; preemptions : int }
  | Minimize_improved of {
      phase : string;  (** truncate | ddmin | search | canonical *)
      candidates : int;
      length : int;
      preemptions : int;
    }
  | Minimize_finished of {
      key : string;
      candidates : int;
      length : int;
      preemptions : int;
      proven : bool;
    }

type envelope = { ts : float; worker : int; ev : t }

let name = function
  | Run_started _ -> "run-started"
  | Bound_started _ -> "bound-started"
  | Item_started _ -> "item-started"
  | Item_finished _ -> "item-finished"
  | Execution_done _ -> "execution-done"
  | Bug_found _ -> "bug-found"
  | Checkpoint_written _ -> "checkpoint-written"
  | Worker_stats _ -> "worker-stats"
  | Cache_stats _ -> "cache-stats"
  | Run_finished _ -> "run-finished"
  | Minimize_started _ -> "minimize-started"
  | Minimize_improved _ -> "minimize-improved"
  | Minimize_finished _ -> "minimize-finished"

(* --- JSON ---------------------------------------------------------------- *)

let fields_of = function
  | Run_started { strategy; domains; resumed } ->
    [
      ("strategy", Json.String strategy);
      ("domains", Json.Int domains);
      ("resumed", Json.Bool resumed);
    ]
  | Bound_started { bound; items } ->
    [ ("bound", Json.Int bound); ("items", Json.Int items) ]
  | Item_started { prefix; payload } ->
    [ ("prefix", Json.Int prefix); ("payload", Json.Int payload) ]
  | Item_finished { seconds; executions; steps } ->
    [
      ("seconds", Json.Float seconds);
      ("executions", Json.Int executions);
      ("steps", Json.Int steps);
    ]
  | Execution_done { bound; steps; preemptions; status; executions } ->
    (match bound with Some b -> [ ("bound", Json.Int b) ] | None -> [])
    @ [
        ("steps", Json.Int steps);
        ("preemptions", Json.Int preemptions);
        ("status", Json.String status);
        ("executions", Json.Int executions);
      ]
  | Bug_found { key; preemptions; execution } ->
    [
      ("key", Json.String key);
      ("preemptions", Json.Int preemptions);
      ("execution", Json.Int execution);
    ]
  | Checkpoint_written { path; executions } ->
    [ ("path", Json.String path); ("executions", Json.Int executions) ]
  | Worker_stats { stats_for; executions; steps; bugs } ->
    [
      ("stats_for", Json.Int stats_for);
      ("executions", Json.Int executions);
      ("steps", Json.Int steps);
      ("bugs", Json.Int bugs);
    ]
  | Cache_stats { hits; misses; steps_saved; steps_replayed } ->
    [
      ("hits", Json.Int hits);
      ("misses", Json.Int misses);
      ("steps_saved", Json.Int steps_saved);
      ("steps_replayed", Json.Int steps_replayed);
    ]
  | Run_finished { executions; states; bugs; complete; stop_reason } ->
    [
      ("executions", Json.Int executions);
      ("states", Json.Int states);
      ("bugs", Json.Int bugs);
      ("complete", Json.Bool complete);
    ]
    @ (match stop_reason with
      | Some r -> [ ("stop_reason", Json.String r) ]
      | None -> [])
  | Minimize_started { key; length; preemptions } ->
    [
      ("key", Json.String key);
      ("length", Json.Int length);
      ("preemptions", Json.Int preemptions);
    ]
  | Minimize_improved { phase; candidates; length; preemptions } ->
    [
      ("phase", Json.String phase);
      ("candidates", Json.Int candidates);
      ("length", Json.Int length);
      ("preemptions", Json.Int preemptions);
    ]
  | Minimize_finished { key; candidates; length; preemptions; proven } ->
    [
      ("key", Json.String key);
      ("candidates", Json.Int candidates);
      ("length", Json.Int length);
      ("preemptions", Json.Int preemptions);
      ("proven", Json.Bool proven);
    ]

let to_json { ts; worker; ev } =
  Json.Obj
    (("ts", Json.Float ts)
    :: ("worker", Json.Int worker)
    :: ("ev", Json.String (name ev))
    :: fields_of ev)

let of_json j =
  let str k = Option.bind (Json.find j k) Json.to_str in
  let int k = Option.bind (Json.find j k) Json.to_int in
  let num k = Option.bind (Json.find j k) Json.to_float in
  let bool k = Option.bind (Json.find j k) Json.to_bool in
  let req what = function
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or ill-typed field %S" what)
  in
  let ( let* ) = Result.bind in
  let* ts = req "ts" (num "ts") in
  let* worker = req "worker" (int "worker") in
  let* kind = req "ev" (str "ev") in
  let* ev =
    match kind with
    | "run-started" ->
      let* strategy = req "strategy" (str "strategy") in
      let* domains = req "domains" (int "domains") in
      let* resumed = req "resumed" (bool "resumed") in
      Ok (Run_started { strategy; domains; resumed })
    | "bound-started" ->
      let* bound = req "bound" (int "bound") in
      let* items = req "items" (int "items") in
      Ok (Bound_started { bound; items })
    | "item-started" ->
      let* prefix = req "prefix" (int "prefix") in
      let* payload = req "payload" (int "payload") in
      Ok (Item_started { prefix; payload })
    | "item-finished" ->
      let* seconds = req "seconds" (num "seconds") in
      let* executions = req "executions" (int "executions") in
      let* steps = req "steps" (int "steps") in
      Ok (Item_finished { seconds; executions; steps })
    | "execution-done" ->
      let* steps = req "steps" (int "steps") in
      let* preemptions = req "preemptions" (int "preemptions") in
      let* status = req "status" (str "status") in
      let* executions = req "executions" (int "executions") in
      Ok (Execution_done { bound = int "bound"; steps; preemptions; status; executions })
    | "bug-found" ->
      let* key = req "key" (str "key") in
      let* preemptions = req "preemptions" (int "preemptions") in
      let* execution = req "execution" (int "execution") in
      Ok (Bug_found { key; preemptions; execution })
    | "checkpoint-written" ->
      let* path = req "path" (str "path") in
      let* executions = req "executions" (int "executions") in
      Ok (Checkpoint_written { path; executions })
    | "worker-stats" ->
      let* stats_for = req "stats_for" (int "stats_for") in
      let* executions = req "executions" (int "executions") in
      let* steps = req "steps" (int "steps") in
      let* bugs = req "bugs" (int "bugs") in
      Ok (Worker_stats { stats_for; executions; steps; bugs })
    | "cache-stats" ->
      let* hits = req "hits" (int "hits") in
      let* misses = req "misses" (int "misses") in
      let* steps_saved = req "steps_saved" (int "steps_saved") in
      let* steps_replayed = req "steps_replayed" (int "steps_replayed") in
      Ok (Cache_stats { hits; misses; steps_saved; steps_replayed })
    | "run-finished" ->
      let* executions = req "executions" (int "executions") in
      let* states = req "states" (int "states") in
      let* bugs = req "bugs" (int "bugs") in
      let* complete = req "complete" (bool "complete") in
      Ok (Run_finished { executions; states; bugs; complete; stop_reason = str "stop_reason" })
    | "minimize-started" ->
      let* key = req "key" (str "key") in
      let* length = req "length" (int "length") in
      let* preemptions = req "preemptions" (int "preemptions") in
      Ok (Minimize_started { key; length; preemptions })
    | "minimize-improved" ->
      let* phase = req "phase" (str "phase") in
      let* candidates = req "candidates" (int "candidates") in
      let* length = req "length" (int "length") in
      let* preemptions = req "preemptions" (int "preemptions") in
      Ok (Minimize_improved { phase; candidates; length; preemptions })
    | "minimize-finished" ->
      let* key = req "key" (str "key") in
      let* candidates = req "candidates" (int "candidates") in
      let* length = req "length" (int "length") in
      let* preemptions = req "preemptions" (int "preemptions") in
      let* proven = req "proven" (bool "proven") in
      Ok (Minimize_finished { key; candidates; length; preemptions; proven })
    | other -> Error (Printf.sprintf "unknown event kind %S" other)
  in
  Ok { ts; worker; ev }
