type request = { meth : string; path : string }

let read_line_crlf ic =
  match input_line ic with
  | line ->
    let len = String.length line in
    if len > 0 && line.[len - 1] = '\r' then Some (String.sub line 0 (len - 1))
    else Some line
  | exception End_of_file -> None

let read_request ic =
  match read_line_crlf ic with
  | None -> Error "connection closed before a request line"
  | Some line -> (
    match String.split_on_char ' ' line with
    | [ meth; path; _version ] ->
      (* drain the header block; we act on the request line alone *)
      let rec drain () =
        match read_line_crlf ic with
        | None | Some "" -> ()
        | Some _ -> drain ()
      in
      drain ();
      Ok { meth = String.uppercase_ascii meth; path }
    | _ -> Error (Printf.sprintf "malformed request line %S" line))

let respond oc ?(status = (200, "OK")) ~content_type body =
  let code, reason = status in
  Printf.fprintf oc
    "HTTP/1.1 %d %s\r\n\
     Content-Type: %s\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n"
    code reason content_type (String.length body);
  output_string oc body;
  flush oc

let not_found oc =
  respond oc ~status:(404, "Not Found") ~content_type:"text/plain"
    "not found\n"

let method_not_allowed oc =
  respond oc ~status:(405, "Method Not Allowed") ~content_type:"text/plain"
    "method not allowed\n"
