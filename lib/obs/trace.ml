(* Replay a JSONL trace file into a run summary: per-bound execution
   and bug counts (the shape of the paper's Table 2), totals, and the
   run's outcome.  This is the read side of [Telemetry.add_trace] and
   the engine of `icb report`.

   Per-bound execution counts come from the [Execution_done] events'
   [bound] field; bugs are bucketed by their preemption count, which
   under ICB is exactly the context bound that exposed them (a round-c
   work item carries c preempting switches in its prefix and its
   continuations add none). *)

type bug = { bg_key : string; bg_preemptions : int; bg_execution : int }

type summary = {
  strategy : string option;
  domains : int;
  resumed : bool;
  finished : bool;       (* a Run_finished event is present *)
  complete : bool;
  stop_reason : string option;
  executions : int;      (* Execution_done events *)
  states : int option;   (* only Run_finished knows the distinct total *)
  bugs : bug list;       (* first sighting of each key, in stream order *)
  bounds : (int option * int) list;
      (* executions per bound, ascending, the unbounded bucket last *)
  checkpoints : int;
  workers : int;         (* distinct worker ids seen *)
  wall : float;          (* largest timestamp *)
}

let read path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go n acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | "" -> go (n + 1) acc
        | line -> (
          match Event.of_json (Json.parse line) with
          | Ok env -> go (n + 1) (env :: acc)
          | Error msg -> failwith (Printf.sprintf "%s:%d: %s" path n msg)
          | exception Json.Parse_error msg ->
            failwith (Printf.sprintf "%s:%d: %s" path n msg))
      in
      go 1 [])

let summarize events =
  let strategy = ref None in
  let domains = ref 1 in
  let resumed = ref false in
  let finished = ref false in
  let complete = ref false in
  let stop_reason = ref None in
  let executions = ref 0 in
  let states = ref None in
  let bugs = ref [] in
  let seen_keys = Hashtbl.create 8 in
  let per_bound : (int option, int ref) Hashtbl.t = Hashtbl.create 8 in
  let checkpoints = ref 0 in
  let workers = Hashtbl.create 8 in
  let wall = ref 0.0 in
  List.iter
    (fun { Event.ts; worker; ev } ->
      if ts > !wall then wall := ts;
      Hashtbl.replace workers worker ();
      match ev with
      | Event.Run_started r ->
        strategy := Some r.strategy;
        domains := r.domains;
        resumed := r.resumed
      | Event.Execution_done e ->
        incr executions;
        let cell =
          match Hashtbl.find_opt per_bound e.bound with
          | Some c -> c
          | None ->
            let c = ref 0 in
            Hashtbl.add per_bound e.bound c;
            c
        in
        incr cell
      | Event.Bug_found b ->
        if not (Hashtbl.mem seen_keys b.key) then begin
          Hashtbl.add seen_keys b.key ();
          bugs :=
            { bg_key = b.key; bg_preemptions = b.preemptions; bg_execution = b.execution }
            :: !bugs
        end
      | Event.Checkpoint_written _ -> incr checkpoints
      | Event.Run_finished r ->
        finished := true;
        complete := r.complete;
        stop_reason := r.stop_reason;
        states := Some r.states
      | Event.Bound_started _ | Event.Item_started _ | Event.Item_finished _
      | Event.Worker_stats _ | Event.Cache_stats _ | Event.Minimize_started _
      | Event.Minimize_improved _ | Event.Minimize_finished _ -> ())
    events;
  let bounds =
    Hashtbl.fold (fun b c acc -> (b, !c) :: acc) per_bound []
    |> List.sort (fun (a, _) (b, _) ->
           match (a, b) with
           | Some x, Some y -> compare x y
           | Some _, None -> -1
           | None, Some _ -> 1
           | None, None -> 0)
  in
  {
    strategy = !strategy;
    domains = !domains;
    resumed = !resumed;
    finished = !finished;
    complete = !complete;
    stop_reason = !stop_reason;
    executions = !executions;
    states = !states;
    bugs = List.rev !bugs;
    bounds;
    checkpoints = !checkpoints;
    workers = Hashtbl.length workers;
    wall = !wall;
  }

(* Cumulative per-bound counts in [Sresult.bound_executions] shape.
   Rounds run in bound order (the barrier drains bound c before c+1
   starts), so cumulating the ascending per-bound counts reproduces the
   collector's curve exactly. *)
let bound_executions s =
  let cum = ref 0 in
  List.filter_map
    (fun (b, n) ->
      match b with
      | Some b ->
        cum := !cum + n;
        Some (b, !cum)
      | None -> None)
    s.bounds

let pp_report ppf s =
  let bug_count = List.length s.bugs in
  Format.fprintf ppf "run: %s, %d domain(s)%s, %s@."
    (Option.value s.strategy ~default:"(no run-started event)")
    s.domains
    (if s.resumed then ", resumed" else "")
    (if not s.finished then "interrupted trace (no run-finished event)"
     else if s.complete then "complete"
     else
       match s.stop_reason with
       | Some r -> "stopped: " ^ r
       | None -> "stopped");
  Format.fprintf ppf "totals: %d executions%s, %d bug%s, %d checkpoint%s, %.2fs@.@."
    s.executions
    (match s.states with
    | Some n -> Printf.sprintf ", %d states" n
    | None -> "")
    bug_count
    (if bug_count = 1 then "" else "s")
    s.checkpoints
    (if s.checkpoints = 1 then "" else "s")
    s.wall;
  Format.fprintf ppf "%8s %12s %12s %6s@." "bound" "executions" "cumulative" "bugs";
  let cum = ref 0 in
  List.iter
    (fun (b, n) ->
      cum := !cum + n;
      let bugs_here =
        match b with
        | Some b ->
          List.length (List.filter (fun bg -> bg.bg_preemptions = b) s.bugs)
        | None ->
          (* the unbounded bucket: bugs whose preemption count is not a
             listed bound row (non-ICB strategies have only this row) *)
          let bounded = List.filter_map fst s.bounds in
          List.length
            (List.filter
               (fun bg -> not (List.mem bg.bg_preemptions bounded))
               s.bugs)
      in
      Format.fprintf ppf "%8s %12d %12d %6d@."
        (match b with Some b -> string_of_int b | None -> "-")
        n !cum bugs_here)
    s.bounds;
  if s.bugs <> [] then begin
    Format.fprintf ppf "@.";
    List.iter
      (fun bg ->
        Format.fprintf ppf "bug: %s (%d preemption%s, execution %d)@."
          bg.bg_key bg.bg_preemptions
          (if bg.bg_preemptions = 1 then "" else "s")
          bg.bg_execution)
      s.bugs
  end

let to_json s =
  let opt f = function Some v -> f v | None -> Json.Null in
  Json.Obj
    [
      ("strategy", opt (fun v -> Json.String v) s.strategy);
      ("domains", Json.Int s.domains);
      ("resumed", Json.Bool s.resumed);
      ("finished", Json.Bool s.finished);
      ("complete", Json.Bool s.complete);
      ("stop_reason", opt (fun v -> Json.String v) s.stop_reason);
      ("executions", Json.Int s.executions);
      ("states", opt (fun v -> Json.Int v) s.states);
      ( "bugs",
        Json.List
          (List.map
             (fun bg ->
               Json.Obj
                 [
                   ("key", Json.String bg.bg_key);
                   ("preemptions", Json.Int bg.bg_preemptions);
                   ("execution", Json.Int bg.bg_execution);
                 ])
             s.bugs) );
      ( "bounds",
        Json.List
          (List.map
             (fun (b, n) ->
               Json.Obj
                 [
                   ("bound", opt (fun v -> Json.Int v) b);
                   ("executions", Json.Int n);
                 ])
             s.bounds) );
      ("checkpoints", Json.Int s.checkpoints);
      ("workers", Json.Int s.workers);
      ("wall_seconds", Json.Float s.wall);
    ]
