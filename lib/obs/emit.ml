(* The emission guard the search hot path holds on to.  [Null] is the
   disabled sink: [emit] on it is a single match and an immediate
   return, with the event payload never allocated when call sites guard
   construction with [enabled] — that is the whole zero-cost-when-off
   contract. *)

type t =
  | Null
  | Live of {
      worker : int;
      clock : unit -> float;          (* run-relative monotonic seconds *)
      push : Event.envelope -> unit;
    }

let null = Null
let live ~worker ~clock ~push = Live { worker; clock; push }
let enabled = function Null -> false | Live _ -> true

let emit t ev =
  match t with
  | Null -> ()
  | Live { worker; clock; push } -> push { Event.ts = clock (); worker; ev }

let with_worker t worker =
  match t with Null -> Null | Live l -> Live { l with worker }
