(** The typed telemetry event stream emitted by the search driver.

    Payloads are plain ints, strings and options — never search-library
    types — so the dependency runs [icb_search -> icb_obs] and a trace
    file is self-describing.  See docs/OBSERVABILITY.md for the schema
    and the exact emission points. *)

type t =
  | Run_started of { strategy : string; domains : int; resumed : bool }
  | Bound_started of { bound : int; items : int }
      (** a strategy round begins; for ICB [bound] is the context bound,
          [items] the frontier size seeding the round *)
  | Item_started of { prefix : int; payload : int }
      (** a work item dequeued: schedule-prefix length and payload *)
  | Item_finished of { seconds : float; executions : int; steps : int }
      (** the matching completion, with per-item deltas *)
  | Execution_done of {
      bound : int option;  (** ICB's current bound; [None] otherwise *)
      steps : int;         (** depth of the finished execution *)
      preemptions : int;
      status : string;     (** terminated | deadlock | failed | truncated *)
      executions : int;    (** the recording collector's running count *)
    }
  | Bug_found of { key : string; preemptions : int; execution : int }
      (** a {e new} bug key on the recording collector; parallel barrier
          merges do not re-emit, so distinct keys count bugs exactly *)
  | Checkpoint_written of { path : string; executions : int }
  | Worker_stats of {
      stats_for : int;  (** worker the numbers describe (the envelope's
                            [worker] is whoever merged them) *)
      executions : int;
      steps : int;
      bugs : int;
    }  (** per-worker totals for one round, emitted at the barrier *)
  | Cache_stats of {
      hits : int;           (** materializations served from a snapshot *)
      misses : int;         (** materializations replayed from the root *)
      steps_saved : int;    (** engine steps avoided via snapshots *)
      steps_replayed : int; (** engine steps re-executed to rebuild prefixes *)
    }
      (** end-of-run totals of the prefix-snapshot replay cache (see
          docs/REPLAY_CACHE.md), summed over all workers; emitted only
          when the engine offers the snapshot capability and caching is
          enabled *)
  | Run_finished of {
      executions : int;
      states : int;
      bugs : int;
      complete : bool;
      stop_reason : string option;
    }
  | Minimize_started of { key : string; length : int; preemptions : int }
      (** {!Icb_repro.Minimize} verified its input witness and is
          shrinking it *)
  | Minimize_improved of {
      phase : string;  (** truncate | ddmin | search | canonical *)
      candidates : int;  (** candidate executions replayed so far *)
      length : int;      (** of the new best witness *)
      preemptions : int;
    }  (** one point of the minimization trajectory *)
  | Minimize_finished of {
      key : string;
      candidates : int;
      length : int;
      preemptions : int;
      proven : bool;  (** minimality proven, not budget-limited *)
    }

(** [ts] is seconds since the run's telemetry handle was created — one
    monotonic clock shared by all workers — and [worker] the domain that
    recorded the event (0 for the serial driver and the master). *)
type envelope = { ts : float; worker : int; ev : t }

val name : t -> string
(** The kind tag used in the JSON encoding ("execution-done", ...). *)

val to_json : envelope -> Json.t
(** One flat object: [ts], [worker], [ev] (the kind tag), then the
    payload fields. *)

val of_json : Json.t -> (envelope, string) result
