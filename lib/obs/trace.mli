(** Read side of the JSONL trace: replay a file written by
    {!Telemetry.add_trace} into a run summary — per-bound execution and
    bug counts (the shape of the paper's Table 2), totals and outcome.
    Drives [icb report]. *)

type bug = { bg_key : string; bg_preemptions : int; bg_execution : int }

type summary = {
  strategy : string option;
  domains : int;
  resumed : bool;
  finished : bool;       (** a [Run_finished] event is present *)
  complete : bool;
  stop_reason : string option;
  executions : int;      (** [Execution_done] events in the trace *)
  states : int option;   (** only [Run_finished] knows the distinct total *)
  bugs : bug list;       (** first sighting of each key, stream order *)
  bounds : (int option * int) list;
      (** executions per bound, ascending; the [None] bucket (non-ICB
          strategies tag no bound) last *)
  checkpoints : int;
  workers : int;         (** distinct worker ids seen *)
  wall : float;          (** largest timestamp, seconds *)
}

val read : string -> Event.envelope list
(** Raises [Failure] with file:line on a malformed line, [Sys_error] on
    an unreadable file. *)

val summarize : Event.envelope list -> summary

val bound_executions : summary -> (int * int) list
(** Cumulative per-bound counts in the exact shape of
    {!Sresult.t.bound_executions} — rounds run in bound order, so
    cumulating the ascending per-bound totals reproduces the collector's
    curve.  The [None] bucket is excluded. *)

val pp_report : Format.formatter -> summary -> unit
(** The Table-2-shaped per-bound coverage table plus totals and bugs. *)

val to_json : summary -> Json.t
