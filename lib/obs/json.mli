(** A minimal JSON tree with a printer and parser — the closed loop
    behind the JSONL telemetry trace, the metrics snapshot and the bench
    output files.  Everything {!to_string} produces, {!parse} reads
    back; surrogate-pair escapes and other exotica are out of scope. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact single-line rendering (no spaces, no trailing newline).
    Non-finite floats degrade to [null]. *)

val parse : string -> t
(** Raises {!Parse_error} with an offset on malformed input. *)

val find : t -> string -> t option
(** Field lookup on an [Obj]; [None] on anything else. *)

val to_int : t -> int option
(** Also accepts integral floats. *)

val to_float : t -> float option
(** Also accepts ints. *)

val to_str : t -> string option
val to_bool : t -> bool option
