(** The stderr progress line — one renderer for every CLI subcommand,
    replacing the old ad-hoc heartbeat: current bound, frontier size,
    executions/second, states, bugs, elapsed and an ETA when a limit
    makes one computable. *)

type stat = {
  executions : int;
  states : int;
  bugs : int;
  elapsed : float;
  bound : int option;
  frontier : int option;  (** items seeding the current round *)
  eta : float option;     (** seconds to the nearest limit *)
}

type t

val create : ?ppf:Format.formatter -> ?interval:float -> unit -> t
(** Defaults: stderr, at most one line per second. *)

val line : ?final:bool -> stat -> string
(** The rendered line (exposed for tests). *)

val report : t -> stat -> unit
(** Throttled: prints at most once per interval. *)

val finish : t -> stat -> unit
(** Unconditional final summary line — a run finishing inside one
    interval still leaves output. *)
