(* A minimal JSON tree, printer and parser — just enough for the
   telemetry trace (JSONL), the metrics snapshot, the bench output and
   the distributed wire protocol.  The project deliberately has no
   external JSON dependency.  Strings are byte strings: the printer
   escapes only what JSON forces it to (quotes, backslash, control
   characters) and passes other bytes through verbatim, and the parser
   reverses both that and the escapes other producers use (strict
   4-hex-digit \uXXXX, surrogate pairs) — so [parse (to_string v) = v]
   for every value, a property test_obs.ml checks. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- printing ------------------------------------------------------------ *)

let add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Floats must stay valid JSON ("1." or "nan" are not): integers render
   with a forced decimal point, non-finite values degrade to null. *)
let add_float b f =
  if not (Float.is_finite f) then Buffer.add_string b "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.1f" f)
  else Buffer.add_string b (Printf.sprintf "%.12g" f)

let rec add b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> add_float b f
  | String s -> add_escaped b s
  | List xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        add b x)
      xs;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        add_escaped b k;
        Buffer.add_char b ':';
        add b v)
      fields;
    Buffer.add_char b '}'

let to_string t =
  let b = Buffer.create 256 in
  add b t;
  Buffer.contents b

(* --- parsing ------------------------------------------------------------- *)

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt =
    Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "%s at offset %d" m !pos))) fmt
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail "expected %c" c
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail "bad literal"
  in
  (* UTF-8 of a \uXXXX scalar (or a surrogate-pair supplement) *)
  let add_scalar b u =
    if u < 0x80 then Buffer.add_char b (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
    end
    else if u < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (u lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  (* strict 4-hex-digit parse: [int_of_string_opt ("0x" ^ hex)] would
     accept signs and underscores JSON forbids *)
  let hex4 off =
    let digit i =
      match s.[off + i] with
      | '0' .. '9' as c -> Char.code c - Char.code '0'
      | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
      | _ -> raise Exit
    in
    match (digit 0, digit 1, digit 2, digit 3) with
    | d0, d1, d2, d3 -> Some ((d0 lsl 12) lor (d1 lsl 8) lor (d2 lsl 4) lor d3)
    | exception Exit -> None
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char b '"'; incr pos
             | '\\' -> Buffer.add_char b '\\'; incr pos
             | '/' -> Buffer.add_char b '/'; incr pos
             | 'n' -> Buffer.add_char b '\n'; incr pos
             | 'r' -> Buffer.add_char b '\r'; incr pos
             | 't' -> Buffer.add_char b '\t'; incr pos
             | 'b' -> Buffer.add_char b '\b'; incr pos
             | 'f' -> Buffer.add_char b '\012'; incr pos
             | 'u' ->
               if !pos + 4 >= n then fail "truncated \\u escape";
               (match hex4 (!pos + 1) with
               | None -> fail "bad \\u escape %S" (String.sub s (!pos + 1) 4)
               | Some u when u >= 0xD800 && u <= 0xDBFF ->
                 (* high surrogate: a following \uDC00..\uDFFF escape
                    combines into one supplementary-plane scalar (the
                    only way JSON spells characters above U+FFFF);
                    unpaired surrogates fall through as-is, keeping the
                    parser total on anything [to_string] emits *)
                 let lo =
                   if
                     !pos + 10 < n
                     && s.[!pos + 5] = '\\'
                     && s.[!pos + 6] = 'u'
                   then hex4 (!pos + 7)
                   else None
                 in
                 (match lo with
                 | Some l when l >= 0xDC00 && l <= 0xDFFF ->
                   add_scalar b
                     (0x10000 + (((u - 0xD800) lsl 10) lor (l - 0xDC00)));
                   pos := !pos + 11
                 | _ ->
                   add_scalar b u;
                   pos := !pos + 5)
               | Some u ->
                 add_scalar b u;
                 pos := !pos + 5)
             | c -> fail "bad escape \\%c" c);
          go ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' -> true
      | '.' | 'e' | 'E' ->
        is_float := true;
        true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number %S" tok
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        List []
      end
      else begin
        let acc = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          incr pos;
          acc := parse_value () :: !acc;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !acc)
      end
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let acc = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          incr pos;
          acc := field () :: !acc;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !acc)
      end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* --- accessors ----------------------------------------------------------- *)

let find t key = match t with Obj fields -> List.assoc_opt key fields | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
