(** The emission guard held by search hot paths.

    A disabled emitter ({!null}) makes {!emit} a single pattern match;
    call sites that would allocate an event payload guard construction
    with {!enabled} first, so disabled telemetry costs one branch per
    potential event — the zero-cost-when-off contract. *)

type t

val null : t
(** The disabled sink (the default everywhere). *)

val live : worker:int -> clock:(unit -> float) -> push:(Event.envelope -> unit) -> t
(** An emitter stamping events with [worker] and [clock ()] (seconds on
    the run's shared monotonic clock) before handing them to [push].
    Usually built by {!Telemetry.emitter} / {!Telemetry.buffered}. *)

val enabled : t -> bool

val emit : t -> Event.t -> unit

val with_worker : t -> int -> t
(** Same clock and sink, different worker stamp. *)
