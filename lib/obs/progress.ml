(* The stderr progress line: one renderer shared by every CLI
   subcommand, replacing the old ad-hoc heartbeat.  [report] throttles
   to one line per interval; [finish] prints unconditionally, so even a
   run that completes inside one interval leaves a summary line. *)

type stat = {
  executions : int;
  states : int;
  bugs : int;
  elapsed : float;
  bound : int option;
  frontier : int option;  (* items seeding the current round *)
  eta : float option;     (* seconds to the nearest limit, if computable *)
}

type t = {
  ppf : Format.formatter;
  interval : float;
  mutable last : float;   (* wall clock of the last line *)
}

let create ?(ppf = Format.err_formatter) ?(interval = 1.0) () =
  { ppf; interval; last = 0.0 }

let line ?(final = false) s =
  let b = Buffer.create 96 in
  Buffer.add_string b (if final then "[icb] done:" else "[icb]");
  (match s.bound with
  | Some bound -> Buffer.add_string b (Printf.sprintf " bound %d |" bound)
  | None -> ());
  (match s.frontier with
  | Some n -> Buffer.add_string b (Printf.sprintf " %d items |" n)
  | None -> ());
  let rate =
    if s.elapsed > 1e-9 then float_of_int s.executions /. s.elapsed else 0.0
  in
  Buffer.add_string b
    (Printf.sprintf " %d execs (%.0f/s) | %d states | %d bug%s | %.1fs"
       s.executions rate s.states s.bugs
       (if s.bugs = 1 then "" else "s")
       s.elapsed);
  (match s.eta with
  | Some eta when not final ->
    Buffer.add_string b (Printf.sprintf " | ~%.0fs left" (Float.max 0.0 eta))
  | Some _ | None -> ());
  Buffer.contents b

let report t s =
  let now = Unix.gettimeofday () in
  if now -. t.last >= t.interval then begin
    t.last <- now;
    Format.fprintf t.ppf "%s@." (line s)
  end

let finish t s = Format.fprintf t.ppf "%s@." (line ~final:true s)
