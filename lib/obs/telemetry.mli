(** The per-run telemetry handle: one shared monotonic clock, a
    mutex-guarded fan-out of {!Event.envelope}s to registered sinks, and
    a {!Metrics} registry kept current by the standard event projection.

    Lifecycle: {!create}, register sinks ({!add_trace},
    {!add_metrics_dump}, {!add_consumer}), hand the handle to the search
    driver ([?telemetry]), and {!close} when the run returns (final
    metrics dump, file flush).

    Concurrency: sinks run under one lock.  Direct {!emitter}s take it
    per event and belong on single-writer paths (the serial driver, the
    master at a barrier); parallel workers use {!buffered} emitters —
    private buffers flushed in worker order at the round barrier, so the
    merged stream is deterministic up to timestamps and the hot path
    never contends. *)

type t

val create : unit -> t
(** Starts the run clock ({!Event.envelope}[.ts] is seconds since this
    call). *)

val clock : t -> unit -> float
val metrics : t -> Metrics.t

val emitter : t -> worker:int -> Emit.t
(** A direct emitter: each event takes the lock and fans out
    immediately. *)

val buffered : t -> worker:int -> Emit.t * (unit -> unit)
(** [(emit, flush)]: events accumulate in a private buffer (no lock,
    single writer) until [flush], which delivers them in emission
    order.  One per worker per round; flush at the barrier. *)

val add_consumer : t -> (Event.envelope -> unit) -> unit
(** Sinks observe every event, in registration order. *)

val locked : t -> (unit -> 'a) -> 'a
(** Run a thunk under the consumer lock, mutually excluded from every
    fan-out: the distributed coordinator's HTTP handlers render the
    {!metrics} registry this way so a scrape never reads a half-applied
    update.  Do not emit from inside the thunk. *)

val inject : t -> Event.envelope list -> unit
(** Deliver pre-built envelopes in list order under the lock — the
    cross-process analogue of a {!buffered} flush, used by the
    distributed coordinator to replay a worker's event stream decoded
    off the wire. *)

val on_close : t -> (unit -> unit) -> unit

val add_trace : t -> string -> unit
(** JSONL trace sink: one {!Event.to_json} object per line.  The file is
    truncated at registration and flushed/closed by {!close}. *)

val track_metrics : t -> unit
(** Install the standard event → metrics projection (executions, steps,
    items, distinct bugs, checkpoints, current bound, frontier size,
    executions/second, steps/preemptions/item-seconds/step-latency
    histograms) into {!metrics}.  Idempotent. *)

val add_metrics_dump : t -> ?every:float -> string -> unit
(** Periodically (default every 5 event-clock seconds; [every <= 0.] =
    final dump only) write the metrics snapshot to the file — Prometheus
    text, or a JSON snapshot when the path ends in [.json] — with an
    atomic tmp-rename, plus a final dump at {!close}.  Implies
    {!track_metrics}. *)

val dump_metrics : t -> string -> unit

val close : t -> unit
(** Run the close hooks (final dump, trace flush).  Idempotent. *)
