(* The per-run telemetry handle: one shared monotonic clock, a
   mutex-guarded fan-out to consumers (trace writer, metrics updater,
   periodic dump), and the two emitter shapes the driver uses — a direct
   emitter for single-writer paths (serial collector, the master at a
   barrier) and a buffered emitter per parallel worker, whose private
   buffer is flushed in worker order at the round barrier so the merged
   stream is deterministic up to timestamps.

   The consumer lock serializes fan-out; workers only take it at flush
   time (and for the rare checkpoint event written mid-round from a
   worker domain), so the search hot path never contends on it. *)

type t = {
  epoch : float;
  lock : Mutex.t;
  metrics : Metrics.t;
  mutable consumers : (Event.envelope -> unit) list;  (* reversed *)
  mutable closers : (unit -> unit) list;              (* reversed *)
  mutable tracking : bool;   (* metrics updater installed *)
  mutable closed : bool;
}

let create () =
  {
    epoch = Unix.gettimeofday ();
    lock = Mutex.create ();
    metrics = Metrics.create ();
    consumers = [];
    closers = [];
    tracking = false;
    closed = false;
  }

let clock t () = Unix.gettimeofday () -. t.epoch
let metrics t = t.metrics

let with_lock m f =
  Mutex.lock m;
  match f () with
  | v ->
    Mutex.unlock m;
    v
  | exception e ->
    Mutex.unlock m;
    raise e

let add_consumer t f = t.consumers <- f :: t.consumers
let on_close t f = t.closers <- f :: t.closers

let deliver t env =
  List.iter (fun f -> f env) (List.rev t.consumers)

let publish t env = with_lock t.lock (fun () -> deliver t env)

let emitter t ~worker = Emit.live ~worker ~clock:(clock t) ~push:(publish t)

(* Run [f] under the consumer lock: an HTTP handler rendering the metrics
   registry must not interleave with a concurrent fan-out updating it. *)
let locked t f = with_lock t.lock (fun () -> f ())

(* Deliver pre-built envelopes (a distributed worker's buffered stream,
   decoded off the wire) in order, under the lock — the cross-process
   analogue of a [buffered] emitter's flush. *)
let inject t envs = with_lock t.lock (fun () -> List.iter (deliver t) envs)

let buffered t ~worker =
  let buf = ref [] in
  let e =
    Emit.live ~worker ~clock:(clock t) ~push:(fun env -> buf := env :: !buf)
  in
  let flush () =
    match !buf with
    | [] -> ()
    | pending ->
      buf := [];
      let pending = List.rev pending in
      with_lock t.lock (fun () -> List.iter (deliver t) pending)
  in
  (e, flush)

(* --- sinks ---------------------------------------------------------------- *)

let add_trace t path =
  let oc = open_out path in
  add_consumer t (fun env ->
      output_string oc (Json.to_string (Event.to_json env));
      output_char oc '\n');
  on_close t (fun () -> close_out oc)

(* The standard event -> metrics projection.  Distinct bug keys are
   counted exactly because [Bug_found] fires only on a collector that
   had not seen the key (barrier merges never re-emit), but a serial +
   parallel mix could still repeat a key across collectors — dedup
   here. *)
let track_metrics t =
  if not t.tracking then begin
    t.tracking <- true;
    let m = t.metrics in
    let executions = Metrics.counter m ~help:"Completed executions" "icb_executions_total" in
    let steps = Metrics.counter m ~help:"Engine steps, summed over work items" "icb_steps_total" in
    let items = Metrics.counter m ~help:"Work items expanded" "icb_items_total" in
    let bugs = Metrics.counter m ~help:"Distinct bug keys discovered" "icb_bugs_total" in
    let checkpoints = Metrics.counter m ~help:"Checkpoints written" "icb_checkpoints_total" in
    let bound = Metrics.gauge m ~help:"Current strategy round (ICB: context bound)" "icb_current_bound" in
    let frontier = Metrics.gauge m ~help:"Work items seeding the current round" "icb_frontier_items" in
    let rate = Metrics.gauge m ~help:"Completed executions per wall-clock second" "icb_executions_per_second" in
    let h_steps =
      Metrics.histogram m ~help:"Steps (depth) per completed execution"
        ~buckets:[ 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000. ]
        "icb_steps_per_execution"
    in
    let h_preempt =
      Metrics.histogram m ~help:"Preemptions per completed execution"
        ~buckets:[ 0.; 1.; 2.; 3.; 4.; 5.; 8.; 16. ]
        "icb_preemptions_per_execution"
    in
    let h_item =
      Metrics.histogram m ~help:"Wall-clock seconds per work item"
        ~buckets:[ 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.; 10. ]
        "icb_item_seconds"
    in
    let h_step =
      Metrics.histogram m ~help:"Mean engine-step latency per work item, seconds"
        ~buckets:[ 1e-8; 1e-7; 1e-6; 1e-5; 1e-4; 1e-3; 1e-2 ]
        "icb_step_seconds"
    in
    let cache_hits = Metrics.counter m ~help:"Replay-cache materializations served from a snapshot" "icb_replay_cache_hits_total" in
    let cache_misses = Metrics.counter m ~help:"Replay-cache materializations replayed from the root" "icb_replay_cache_misses_total" in
    let cache_saved = Metrics.counter m ~help:"Engine steps avoided by the replay cache" "icb_replay_cache_steps_saved_total" in
    let cache_replayed = Metrics.counter m ~help:"Engine steps re-executed to rebuild schedule prefixes" "icb_replay_cache_steps_replayed_total" in
    let seen_bugs = Hashtbl.create 8 in
    add_consumer t (fun { Event.ts; ev; _ } ->
        match ev with
        | Event.Execution_done e ->
          Metrics.inc executions 1.0;
          Metrics.observe h_steps (float_of_int e.steps);
          Metrics.observe h_preempt (float_of_int e.preemptions);
          if ts > 1e-9 then Metrics.set rate (Metrics.value executions /. ts)
        | Event.Item_finished i ->
          Metrics.inc items 1.0;
          Metrics.inc steps (float_of_int i.steps);
          Metrics.observe h_item i.seconds;
          if i.steps > 0 then
            Metrics.observe h_step (i.seconds /. float_of_int i.steps)
        | Event.Bug_found b ->
          if not (Hashtbl.mem seen_bugs b.key) then begin
            Hashtbl.add seen_bugs b.key ();
            Metrics.inc bugs 1.0
          end
        | Event.Bound_started b ->
          Metrics.set bound (float_of_int b.bound);
          Metrics.set frontier (float_of_int b.items)
        | Event.Checkpoint_written _ -> Metrics.inc checkpoints 1.0
        | Event.Cache_stats c ->
          Metrics.inc cache_hits (float_of_int c.hits);
          Metrics.inc cache_misses (float_of_int c.misses);
          Metrics.inc cache_saved (float_of_int c.steps_saved);
          Metrics.inc cache_replayed (float_of_int c.steps_replayed)
        | Event.Run_started _ | Event.Item_started _ | Event.Worker_stats _
        | Event.Run_finished _ | Event.Minimize_started _
        | Event.Minimize_improved _ | Event.Minimize_finished _ -> ())
  end

let dump_metrics t path =
  let data =
    if Filename.check_suffix path ".json" then
      Json.to_string (Metrics.to_json t.metrics) ^ "\n"
    else Metrics.to_prometheus t.metrics
  in
  (* atomic like checkpoints: a reader never sees a half-written dump *)
  let tmp =
    Filename.temp_file ~temp_dir:(Filename.dirname path)
      (Filename.basename path) ".tmp"
  in
  let oc = open_out tmp in
  (try
     output_string oc data;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let add_metrics_dump t ?(every = 5.0) path =
  track_metrics t;
  let last = ref neg_infinity in
  add_consumer t (fun { Event.ts; _ } ->
      if every > 0.0 && ts -. !last >= every then begin
        last := ts;
        dump_metrics t path
      end);
  on_close t (fun () -> dump_metrics t path)

let close t =
  if not t.closed then begin
    t.closed <- true;
    with_lock t.lock (fun () ->
        List.iter (fun f -> f ()) (List.rev t.closers))
  end
