(* The one generic search driver: [run] executes any {!Strategy.S} over
   any {!Engine.S}, serially ([domains = 1]) or across OCaml domains,
   with checkpoint/resume for every strategy whose frontier serializes.
   [Explore.run] and [Parallel.run] are thin wrappers over this module.

   Serial mode processes the round's items through a queue honouring the
   strategy's discipline (FIFO, LIFO or best-first).  Limits fire as
   [Collector.Stop] from inside an expansion; the driver then checkpoints
   the remaining frontier, conservatively re-queuing the interrupted item
   (and rolling back the follow-up items it already deferred, so resume
   explores nothing twice) — except for strategies with atomic items
   interrupted exactly at their execution's end, whose resume is exact.

   Parallel mode is the determinism-preserving executor that previously
   lived in [Parallel] (see docs/PARALLEL.md), generalized from ICB's
   bounds to strategy rounds.  A round's items are sharded round-robin
   over per-worker deques; idle workers steal from random victims;
   current-round follow-ups ([c_push]) go to the front of the pushing
   worker's own deque, next-round items accumulate per worker.  At the
   round barrier the master folds worker statistics with commutative
   operations, absorbs bug candidates in sorted order with forged
   discovery stamps, sorts the next round's items, and asks the strategy
   what to do next — so the merged result is independent of worker count
   and timing for any strategy whose per-item work is a function of the
   item alone.  Stopping is cooperative and item-granular (workers carry
   no limits; a per-execution hook aggregates global counters and sets a
   stop flag), which keeps the no-duplicate resume guarantee.  Mid-round
   periodic checkpoints use the pause protocol: every live worker parks
   at its next item boundary and the last one to park assembles the
   checkpoint from the quiescent state. *)

let with_lock m f =
  Mutex.lock m;
  match f () with
  | v ->
    Mutex.unlock m;
    v
  | exception e ->
    Mutex.unlock m;
    raise e

(* A mutex-protected deque: the owner pushes and pops at the front (so a
   strategy's own follow-ups pop depth-first, keeping the frontier
   small), thieves steal from the back.  Contention is per-item and items
   are subtrees or whole walks, so a lock-free structure would buy
   nothing here. *)
module Dq = struct
  type 'a t = {
    m : Mutex.t;
    mutable front : 'a list;          (* head = next item for the owner *)
    mutable back : 'a list;           (* head = next item for a thief *)
  }

  let create () = { m = Mutex.create (); front = []; back = [] }

  let clear q =
    with_lock q.m (fun () ->
        q.front <- [];
        q.back <- [])

  let push_back q x = with_lock q.m (fun () -> q.back <- x :: q.back)
  let push_front q x = with_lock q.m (fun () -> q.front <- x :: q.front)

  let pop q =
    with_lock q.m (fun () ->
        match q.front with
        | x :: rest ->
          q.front <- rest;
          Some x
        | [] -> (
          match List.rev q.back with
          | [] -> None
          | x :: rest ->
            q.front <- rest;
            q.back <- [];
            Some x))

  let steal q =
    with_lock q.m (fun () ->
        match q.back with
        | x :: rest ->
          q.back <- rest;
          Some x
        | [] -> (
          match List.rev q.front with
          | [] -> None
          | x :: rest ->
            q.front <- [];
            q.back <- rest;
            Some x))

  (* Non-destructive read, for checkpoint assembly while workers are
     parked. *)
  let snapshot q = with_lock q.m (fun () -> q.front @ List.rev q.back)
end

(* The serial round queue: one in-process queue honouring the strategy's
   discipline. *)
type 'a squeue = {
  sq_push : 'a -> unit;
  sq_seed : 'a list -> unit;  (* round items, in order *)
  sq_pop : unit -> 'a option;
  sq_items : unit -> 'a list; (* non-destructive, in pop order *)
}

let fifo_queue () =
  let q = Queue.create () in
  {
    sq_push = (fun x -> Queue.add x q);
    sq_seed = List.iter (fun x -> Queue.add x q);
    sq_pop = (fun () -> Queue.take_opt q);
    sq_items = (fun () -> List.rev (Queue.fold (fun acc x -> x :: acc) [] q));
  }

let lifo_queue () =
  let stack = ref [] in
  {
    sq_push = (fun x -> stack := x :: !stack);
    sq_seed = (fun xs -> stack := xs @ !stack);
    sq_pop =
      (fun () ->
        match !stack with
        | [] -> None
        | x :: rest ->
          stack := rest;
          Some x);
    sq_items = (fun () -> !stack);
  }

(* Best-first as a bucket queue (ranks are small non-negative ints —
   enabled-thread counts); highest bucket first, FIFO within a bucket. *)
let rank_queue (type a) ~(rank : a -> int) =
  let buckets : (int, a Queue.t) Hashtbl.t = Hashtbl.create 8 in
  let max_bucket = ref 0 in
  let push x =
    let n = max 0 (rank x) in
    let q =
      match Hashtbl.find_opt buckets n with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.add buckets n q;
        q
    in
    Queue.add x q;
    max_bucket := max !max_bucket n
  in
  let pop () =
    let rec from n =
      if n < 0 then None
      else
        match Hashtbl.find_opt buckets n with
        | Some q when not (Queue.is_empty q) -> Some (Queue.pop q)
        | Some _ | None -> from (n - 1)
    in
    from !max_bucket
  in
  let items () =
    let acc = ref [] in
    for n = !max_bucket downto 0 do
      match Hashtbl.find_opt buckets n with
      | None -> ()
      | Some q -> Queue.iter (fun x -> acc := x :: !acc) q
    done;
    List.rev !acc
  in
  { sq_push = push; sq_seed = List.iter push; sq_pop = pop; sq_items = items }

(* Deterministic bug merge: sort candidates so the surviving
   representative of each key is independent of which worker found it
   first, and forge the discovery stamp to the cumulative execution count
   at the merge point. *)
let absorb_bugs col candidates =
  let candidates =
    List.sort
      (fun (a : Sresult.bug) (b : Sresult.bug) ->
        compare (a.preemptions, a.schedule, a.key)
          (b.preemptions, b.schedule, b.key))
      candidates
  in
  let stamp = Collector.executions col in
  List.iter
    (fun (b : Sresult.bug) ->
      if not (Collector.has_bug col b.Sresult.key) then
        Collector.absorb_bug col { b with Sresult.execution = stamp })
    candidates

let of_prefix (sched, payload) =
  { Strategy.i_sched = sched; i_payload = payload; i_state = None }

(* A cheap program fingerprint stamped into every checkpoint (param
   "root_sig") and verified on resume: schedule prefixes alone cannot
   always betray a foreign program (an empty prefix replays anywhere), but
   the initial state's signature, thread count and enabled set can.
   Best-effort — v1/v2 checkpoints carry no fingerprint. *)
let fingerprint_key = "root_sig"

let fingerprint (type s) (module E : Engine.S with type state = s) =
  let s0 = E.initial () in
  Printf.sprintf "%Lx/%d/%s" (E.signature s0) (E.thread_count s0)
    (String.concat "," (List.map string_of_int (E.enabled s0)))

(* [stamp] (built in [run]) appends the fingerprint and the cumulative
   wall-clock timing params to every checkpoint's [v3_params]. *)

let cmp_item a b =
  compare
    (a.Strategy.i_sched, a.Strategy.i_payload)
    (b.Strategy.i_sched, b.Strategy.i_payload)

let sorted_items its = List.sort cmp_item its
let strip_items its = List.map Strategy.prefix_of its

(* --- serial execution ---------------------------------------------------- *)

let run_serial (type s) (module E : Engine.S with type state = s)
    (module S : Strategy.S with type state = s) ~stamp ~note_round_done ~emit
    ~(rp : s Search_core.replayer) ~retain master
    (ckpt : Search_core.ckpt_ctl option) resume_v3 =
  let w = S.wstate () in
  let wstates = [| w |] in
  (* Strict replay: a prefix that no longer replays means the checkpoint
     belongs to a different (or nondeterministic) program — surface it,
     don't guess.  (Prefixes generated by this very run always replay on a
     deterministic engine: they only contain steps that already succeeded
     once.) *)
  let materialize it =
    match rp.Search_core.rp_run it with
    | Ok st -> Some st
    | Error (_, _, exn) ->
      invalid_arg
        (Printf.sprintf
           "Explore.resume: a checkpointed schedule no longer replays \
            (%s); the checkpoint belongs to a different or \
            nondeterministic program"
           (Printexc.to_string exn))
  in
  (* [--no-cache]: drop the snapshot slot at every hand-off, restoring the
     pure stateless discipline — every item pays the full prefix replay. *)
  let keep it = if retain then it else { it with Strategy.i_state = None } in
  (* Under the [`Rank] discipline an item's priority needs its state;
     materialize before insertion. *)
  let prep it =
    match S.discipline with
    | `Rank when it.Strategy.i_state = None ->
      { it with Strategy.i_state = materialize it }
    | _ -> it
  in
  let sq =
    match S.discipline with
    | `Fifo -> fifo_queue ()
    | `Lifo -> lifo_queue ()
    | `Rank -> rank_queue ~rank:(fun it -> S.rank (module E) it)
  in
  let deferred = ref [] in
  let defer_len = ref 0 in
  let ctx =
    {
      Strategy.c_col = master;
      c_push = (fun it -> sq.sq_push (prep (keep it)));
      c_defer =
        (fun it ->
          deferred := keep it :: !deferred;
          incr defer_len);
      c_materialize = materialize;
    }
  in
  let save ?(extra = []) ?next () =
    match ckpt with
    | None -> ()
    | Some ctl ->
      let next =
        match next with Some n -> n | None -> List.rev !deferred
      in
      let f =
        S.to_prefixes ~wstates
          ~work:(strip_items extra @ strip_items (sq.sq_items ()))
          ~next:(strip_items next)
      in
      Search_core.save_checkpoint master ctl ~strategy:S.name
        ~frontier:(Checkpoint.V3 (stamp f))
  in
  let periodic () =
    match ckpt with
    | None -> ()
    | Some ctl ->
      if Collector.executions master - ctl.ck_last >= ctl.ck_every then
        save ()
  in
  let rec drain () =
    match sq.sq_pop () with
    | None -> ()
    | Some it ->
      let execs0 = Collector.executions master in
      let steps0 = Collector.total_steps master in
      let defers0 = !defer_len in
      let item_t0 =
        if Icb_obs.Emit.enabled emit then begin
          Icb_obs.Emit.emit emit
            (Icb_obs.Event.Item_started
               {
                 prefix = List.length it.Strategy.i_sched;
                 payload = it.Strategy.i_payload;
               });
          Unix.gettimeofday ()
        end
        else 0.0
      in
      (try S.expand (module E) w ctx it
       with Collector.Stop ->
         (* An item that records exactly one execution, interrupted at
            that execution's end, is already done: resume repeats
            nothing.  Otherwise re-queue it — and roll back the items it
            already deferred, which its re-run will defer again. *)
         let exact =
           S.atomic_items && Collector.executions master > execs0
         in
         if not exact then begin
           let rec drop n l =
             if n <= 0 then l
             else match l with [] -> [] | _ :: tl -> drop (n - 1) tl
           in
           deferred := drop (!defer_len - defers0) !deferred;
           defer_len := defers0
         end;
         save ~extra:(if exact then [] else [ it ]) ();
         raise Collector.Stop);
      if Icb_obs.Emit.enabled emit then
        Icb_obs.Emit.emit emit
          (Icb_obs.Event.Item_finished
             {
               seconds = Unix.gettimeofday () -. item_t0;
               executions = Collector.executions master - execs0;
               steps = Collector.total_steps master - steps0;
             });
      periodic ();
      drain ()
  in
  let rec rounds items =
    Collector.note_frontier master (List.length items);
    if Icb_obs.Emit.enabled emit then
      Icb_obs.Emit.emit emit
        (Icb_obs.Event.Bound_started
           { bound = S.round (); items = List.length items });
    sq.sq_seed (List.map (fun it -> prep (keep it)) items);
    drain ();
    let d = List.rev !deferred in
    deferred := [];
    defer_len := 0;
    note_round_done (S.round ());
    match S.after_round master ~wstates ~deferred:d with
    | `Complete ->
      Collector.set_complete master;
      save ~next:[] ()
    | `Bounded ->
      (* the strategy's own horizon: save the deferred frontier so a
         later resume (e.g. with a higher bound) can pick it up *)
      save ~next:d ()
    | `Round items' -> rounds items'
  in
  match resume_v3 with
  | Some f ->
    let work, carry = S.of_prefixes master f in
    List.iter (fun p -> ctx.Strategy.c_defer (of_prefix p)) carry;
    (* Even an empty frontier goes through the round loop: a kill can
       land exactly at a round boundary, where work and deferred are
       both drained but the strategy still owes rounds (iterative
       deepening with truncations pending, a sealed bound owing its
       `Bounded verdict).  [after_round] re-derives the verdict from
       the restored params, so a genuinely finished checkpoint still
       concludes immediately.

       The batched-replay round: restored items carry no states, so sort
       them — lexicographic order groups the frontier by longest common
       prefix, and consecutive materializations hit the snapshot cache.
       The round's result is a multiset, insensitive to this order. *)
    rounds (sorted_items (List.map of_prefix work))
  | None ->
    let items = S.roots (module E) w master in
    if items = [] then
      (* a trivial program: [roots] recorded its only execution *)
      Collector.set_complete master
    else rounds items

(* --- parallel execution -------------------------------------------------- *)

let run_parallel (type s)
    (engs : (module Engine.S with type state = s) array)
    (module S : Strategy.S with type state = s) ~stamp ~note_round_done ~tel
    ~emit ~options master (ckpt : Search_core.ckpt_ctl option) resume_v3
    ~(rps : s Search_core.replayer array) ~retain ~domains =
  (* Local collectors carry no limits and never raise [Collector.Stop]:
     stopping is decided globally by the progress hook below and honoured
     by workers at item boundaries.  Semantic options (deadlock_is_error,
     terminal_states_only) are kept.  Telemetry is re-installed per
     worker as a buffered emitter (below), never the master's direct
     one. *)
  let stripped =
    {
      options with
      Collector.max_executions = None;
      max_states = None;
      max_total_steps = None;
      deadline = None;
      stop_at_first_bug = false;
      on_progress = None;
      events = Icb_obs.Emit.null;
    }
  in
  let deques : s Strategy.item Dq.t array =
    Array.init domains (fun _ -> Dq.create ())
  in
  let wstates = Array.init domains (fun _ -> S.wstate ()) in
  let rngs =
    let base = Icb_util.Rng.create 0x1CBD0E5L in
    Array.init domains (fun _ -> Icb_util.Rng.split base)
  in
  let stop : Sresult.stop_reason option Atomic.t = Atomic.make None in
  let failed : exn option Atomic.t = Atomic.make None in
  let request_stop r = ignore (Atomic.compare_and_set stop None (Some r)) in
  (* Per-round global counters for limit enforcement and user progress;
     states and steps are sums of per-worker increments, so the state
     count over-approximates the distinct total (duplicates across
     workers) — the exact union is computed at the barrier. *)
  let g_execs = Atomic.make 0
  and g_states = Atomic.make 0
  and g_steps = Atomic.make 0
  and g_bugs = Atomic.make 0 in
  (* Workers whose deque drained spin while a peer still expands an item:
     the peer may push more current-round work their way. *)
  let busy = Atomic.make 0 in
  (* Pause/checkpoint protocol state; [parked] and [running] are guarded
     by [pm]. *)
  let pause = Atomic.make false in
  let pm = Mutex.create () in
  let pc = Condition.create () in
  let parked = ref 0 in
  let running = ref 0 in
  let user_cb_m = Mutex.create () in
  (* Per-round context, published to workers before each spawn (and read
     back after join, or under [pm] during checkpoint assembly). *)
  let cur_lcols : Collector.t array ref = ref [||] in
  let cur_nexts : s Strategy.item list ref array ref = ref [||] in
  let cur_emits : (Icb_obs.Emit.t * (unit -> unit)) array ref = ref [||] in
  let cur_carry : s Strategy.item list ref = ref [] in
  let master_snap = ref (Collector.snapshot master) in
  let remaining_items () =
    Array.fold_left (fun acc q -> acc @ Dq.snapshot q) [] deques
  in
  let deferred_items () =
    Array.fold_left (fun acc r -> acc @ !r) [] !cur_nexts
  in
  let save_with col ~work ~next =
    match ckpt with
    | None -> ()
    | Some ctl ->
      Search_core.save_checkpoint col ctl ~strategy:S.name
        ~frontier:(Checkpoint.V3 (stamp (S.to_prefixes ~wstates ~work ~next)))
  in
  (* Mid-round checkpoint, run by the last worker to park (all other live
     workers are blocked on [pc], so their collectors, next-lists, deques
     and worker states are quiescent; the mutex hand-offs make their
     writes visible). *)
  let assemble_and_save () =
    match ckpt with
    | None -> ()
    | Some _ ->
      let scratch = Collector.restore stripped !master_snap in
      let candidates = ref [] in
      Array.iter
        (fun lcol ->
          let sn = Collector.snapshot lcol in
          Collector.merge_stats scratch sn;
          candidates := Collector.snapshot_bugs sn @ !candidates)
        !cur_lcols;
      absorb_bugs scratch !candidates;
      let work = strip_items (sorted_items (remaining_items ())) in
      let next =
        strip_items (sorted_items (!cur_carry @ deferred_items ()))
      in
      save_with scratch ~work ~next
  in
  let park () =
    with_lock pm (fun () ->
        if Atomic.get pause then begin
          incr parked;
          if !parked = !running then begin
            assemble_and_save ();
            Atomic.set pause false;
            Condition.broadcast pc
          end
          else
            while Atomic.get pause do
              Condition.wait pc pm
            done;
          decr parked
        end)
  in
  (* A worker that runs out of work may be the one whose parking the
     others are waiting for; complete the quorum on the way out. *)
  let retire () =
    with_lock pm (fun () ->
        decr running;
        if Atomic.get pause && !parked = !running then begin
          assemble_and_save ();
          Atomic.set pause false;
          Condition.broadcast pc
        end)
  in
  let maybe_request_ckpt () =
    match ckpt with
    | None -> ()
    | Some ctl ->
      let total =
        Collector.snapshot_executions !master_snap + Atomic.get g_execs
      in
      if total - ctl.ck_last >= ctl.ck_every then
        with_lock pm (fun () ->
            (* only between pauses: [parked] must have drained *)
            if (not (Atomic.get pause)) && !parked = 0 then
              Atomic.set pause true)
  in
  (* The per-execution hook installed in every worker's collector: bump
     the global counters, enforce the caller's limits by setting the stop
     flag, and relay aggregated progress to the caller's own hook. *)
  let mk_hook cell ~base_execs ~base_states ~base_steps ~base_bugs ~frontier =
    let prev_states = ref 0 and prev_steps = ref 0 and prev_bugs = ref 0 in
    fun (p : Collector.progress) ->
      let lcol = Option.get !cell in
      let execs = 1 + Atomic.fetch_and_add g_execs 1 in
      let ds = p.Collector.p_states - !prev_states in
      prev_states := p.Collector.p_states;
      let states = ds + Atomic.fetch_and_add g_states ds in
      let steps_now = Collector.total_steps lcol in
      let dst = steps_now - !prev_steps in
      prev_steps := steps_now;
      let steps = dst + Atomic.fetch_and_add g_steps dst in
      let db = p.Collector.p_bugs - !prev_bugs in
      prev_bugs := p.Collector.p_bugs;
      let bugs = db + Atomic.fetch_and_add g_bugs db in
      let total_execs = base_execs + execs in
      (match options.Collector.max_executions with
      | Some l when total_execs >= l -> request_stop Sresult.Execution_limit
      | Some _ | None -> ());
      (match options.Collector.max_states with
      | Some l when base_states + states >= l ->
        request_stop Sresult.State_limit
      | Some _ | None -> ());
      (match options.Collector.max_total_steps with
      | Some l when base_steps + steps >= l -> request_stop Sresult.Step_limit
      | Some _ | None -> ());
      (match options.Collector.deadline with
      | Some d when Unix.gettimeofday () >= d ->
        request_stop Sresult.Deadline_exceeded
      | Some _ | None -> ());
      if options.Collector.stop_at_first_bug && base_bugs + bugs > 0 then
        request_stop Sresult.First_bug;
      match options.Collector.on_progress with
      | None -> ()
      | Some f ->
        with_lock user_cb_m (fun () ->
            f
              {
                Collector.p_executions = total_execs;
                p_states = base_states + states;
                p_bugs = base_bugs + bugs;
                p_elapsed = Collector.elapsed master;
                p_bound = Some (S.round ());
                p_frontier = Some frontier;
              })
  in
  let worker i () =
    let (module E : Engine.S with type state = s) = engs.(i) in
    let lcol = !cur_lcols.(i) in
    let w_emit = fst !cur_emits.(i) in
    let next = !cur_nexts.(i) in
    let w = wstates.(i) in
    let rng = rngs.(i) in
    (* Materialization goes through the worker's replayer (snapshot cache
       when the engine offers it, from-the-root replay otherwise) and
       never touches the collector: the prefix's states were already
       counted by whoever deferred or checkpointed this item.  A prefix
       that no longer replays means the program is nondeterministic (or
       the checkpoint is foreign); contain it as a replayable bug, like
       any other engine crash. *)
    let materialize it =
      match rps.(i).Search_core.rp_run it with
      | Ok st -> Some st
      | Error (st, t, exn) ->
        Search_core.record_crash (module E) lcol st t exn;
        None
    in
    let ctx =
      {
        Strategy.c_col = lcol;
        (* own current-round follow-ups run depth-first from the front;
           their states stay attached — they never leave this domain
           except via [steal], which strips them *)
        c_push = (fun it -> Dq.push_front deques.(i) it);
        c_defer =
          (fun it ->
            next :=
              (if retain then it
               else { it with Strategy.i_state = None })
              :: !next);
        c_materialize = materialize;
      }
    in
    let take () =
      match Dq.pop deques.(i) with
      | Some _ as r -> r
      | None ->
        if domains = 1 then None
        else begin
          let start = Icb_util.Rng.int rng domains in
          let rec go k =
            if k >= domains then None
            else
              let j = (start + k) mod domains in
              if j = i then go (k + 1)
              else
                match Dq.steal deques.(j) with
                | Some it ->
                  Some
                    (if retain then it
                     else { it with Strategy.i_state = None })
                | None -> go (k + 1)
          in
          go 0
        end
    in
    let rec loop () =
      if Atomic.get stop <> None || Atomic.get failed <> None then ()
      else begin
        if Atomic.get pause then park ();
        match take () with
        | Some it ->
          Atomic.incr busy;
          let execs0 = Collector.executions lcol in
          let steps0 = Collector.total_steps lcol in
          let item_t0 =
            if Icb_obs.Emit.enabled w_emit then begin
              Icb_obs.Emit.emit w_emit
                (Icb_obs.Event.Item_started
                   {
                     prefix = List.length it.Strategy.i_sched;
                     payload = it.Strategy.i_payload;
                   });
              Unix.gettimeofday ()
            end
            else 0.0
          in
          (match S.expand (module E) w ctx it with
          | () -> Atomic.decr busy
          | exception e ->
            Atomic.decr busy;
            raise e);
          if Icb_obs.Emit.enabled w_emit then
            Icb_obs.Emit.emit w_emit
              (Icb_obs.Event.Item_finished
                 {
                   seconds = Unix.gettimeofday () -. item_t0;
                   executions = Collector.executions lcol - execs0;
                   steps = Collector.total_steps lcol - steps0;
                 });
          maybe_request_ckpt ();
          loop ()
        | None ->
          if Atomic.get busy > 0 then begin
            (* a peer is mid-item and may push work this way *)
            Domain.cpu_relax ();
            loop ()
          end
      end
    in
    (try loop ()
     with exn -> ignore (Atomic.compare_and_set failed None (Some exn)));
    retire ()
  in
  (* Drain one round; returns the (sorted) next round's items and the
     stop flag as observed after the barrier. *)
  let run_round ~work ~carry =
    Array.iter Dq.clear deques;
    let work = sorted_items work in
    let work =
      if retain then work
      else List.map (fun it -> { it with Strategy.i_state = None }) work
    in
    (* Batched replay: the sort above is lexicographic on schedules, i.e.
       the round is grouped by longest common prefix.  Shard it in
       contiguous chunks (not round-robin) so each worker's run of items
       shares prefixes and consecutive materializations hit its snapshot
       cache; the barrier merge is independent of the assignment, and the
       assignment itself stays deterministic. *)
    let n_work = List.length work in
    let chunk = max 1 ((n_work + domains - 1) / domains) in
    List.iteri
      (fun k it -> Dq.push_back deques.(min (domains - 1) (k / chunk)) it)
      work;
    Collector.note_frontier master n_work;
    if Icb_obs.Emit.enabled emit then
      Icb_obs.Emit.emit emit
        (Icb_obs.Event.Bound_started { bound = S.round (); items = n_work });
    cur_carry := carry;
    master_snap := Collector.snapshot master;
    let base_execs = Collector.executions master in
    let base_states = Collector.seen_states master in
    let base_steps = Collector.total_steps master in
    let base_bugs = Collector.bug_count master in
    Atomic.set g_execs 0;
    Atomic.set g_states 0;
    Atomic.set g_steps 0;
    Atomic.set g_bugs 0;
    Atomic.set busy 0;
    Atomic.set pause false;
    parked := 0;
    running := domains;
    let emits =
      Array.init domains (fun i ->
          match tel with
          | None -> (Icb_obs.Emit.null, fun () -> ())
          | Some t -> Icb_obs.Telemetry.buffered t ~worker:i)
    in
    cur_emits := emits;
    let lcols =
      Array.init domains (fun i ->
          let cell = ref None in
          let hook =
            mk_hook cell ~base_execs ~base_states ~base_steps ~base_bugs
              ~frontier:n_work
          in
          let c =
            Collector.create
              {
                stripped with
                Collector.on_progress = Some hook;
                events = fst emits.(i);
              }
          in
          cell := Some c;
          c)
    in
    cur_lcols := lcols;
    let nexts = Array.init domains (fun _ -> ref []) in
    cur_nexts := nexts;
    let doms = Array.init domains (fun i -> Domain.spawn (worker i)) in
    Array.iter Domain.join doms;
    (match Atomic.get failed with Some exn -> raise exn | None -> ());
    (* the deterministic barrier merge *)
    let snaps = Array.map Collector.snapshot lcols in
    let candidates = ref [] in
    Array.iter
      (fun sn ->
        Collector.merge_stats master sn;
        candidates := Collector.snapshot_bugs sn @ !candidates)
      snaps;
    absorb_bugs master !candidates;
    (* telemetry: flush the worker streams in worker order — the merged
       trace is deterministic up to timestamps — then stamp each
       worker's round totals *)
    Array.iteri
      (fun i (_, flush) ->
        flush ();
        if Icb_obs.Emit.enabled emit then
          Icb_obs.Emit.emit emit
            (Icb_obs.Event.Worker_stats
               {
                 stats_for = i;
                 executions = Collector.snapshot_executions snaps.(i);
                 steps = Collector.snapshot_steps snaps.(i);
                 bugs = List.length (Collector.snapshot_bugs snaps.(i));
               }))
      emits;
    let next_items =
      sorted_items (carry @ Array.fold_left (fun acc r -> acc @ !r) [] nexts)
    in
    (next_items, Atomic.get stop)
  in
  let rec drive work carry =
    (* An empty frontier still runs the (trivial) round: a resumed
       checkpoint killed exactly at a round boundary owes [after_round]
       the decision — deepen, seal off as `Bounded, or conclude. *)
    let next_items, stop_r = run_round ~work ~carry in
    note_round_done (S.round ());
    match stop_r with
    | Some r ->
      Collector.note_stop master r;
      let remaining = strip_items (sorted_items (remaining_items ())) in
      save_with master ~work:remaining ~next:(strip_items next_items)
    | None -> (
      Collector.mark_growth master;
      match S.after_round master ~wstates ~deferred:next_items with
      | `Complete ->
        Collector.set_complete master;
        save_with master ~work:[] ~next:[]
      | `Bounded -> save_with master ~work:[] ~next:(strip_items next_items)
      | `Round items -> drive items [])
  in
  match resume_v3 with
  | Some f ->
    let work, carry = S.of_prefixes master f in
    drive (List.map of_prefix work) (List.map of_prefix carry)
  | None ->
    let (module E0 : Engine.S with type state = s) = engs.(0) in
    let items = S.roots (module E0) wstates.(0) master in
    if items = [] then Collector.set_complete master else drive items []

(* --- entry --------------------------------------------------------------- *)

let default_checkpoint_every = Search_core.default_checkpoint_every

let run (type s) (engines : int -> (module Engine.S with type state = s))
    ?(options = Collector.default_options) ?checkpoint_out
    ?(checkpoint_every = default_checkpoint_every) ?(checkpoint_meta = [])
    ?resume_from ?telemetry ?(share_states = false) ?(replay_cache = true)
    ?on_cache_stats ~domains
    (module S : Strategy.S with type state = s) : Sresult.t =
  if domains < 1 then invalid_arg "Driver.run: domains must be at least 1";
  if domains > 1 && not S.shardable then
    invalid_arg
      (Printf.sprintf
         "Driver.run: ~domains:%d — the %s frontier does not shard across \
          domains; strategies that do: icb, dfs, db:N, idfs:N, random, \
          pct:N, vb:N, tb:N, icb-vb:N"
         domains S.name);
  if (checkpoint_out <> None || resume_from <> None) && not S.checkpointable
  then
    invalid_arg
      (Printf.sprintf
         "Driver.run: strategy %s does not support checkpoint/resume \
          (supported: icb, dfs, db:N, idfs:N, random, pct:N, \
          most-enabled, vb:N, tb:N, icb-vb:N)"
         S.name);
  let emit =
    match telemetry with
    | None -> Icb_obs.Emit.null
    | Some t -> Icb_obs.Telemetry.emitter t ~worker:0
  in
  (* the telemetry handle owns event wiring; a caller-supplied
     [options.events] is only honoured when no handle is given *)
  let options =
    if Icb_obs.Emit.enabled emit then { options with Collector.events = emit }
    else options
  in
  (* Engine instances are created sequentially here, before any domain
     exists, and each is thereafter used by a single worker at a time. *)
  let engs = Array.init domains engines in
  let has_snap =
    let (module E0 : Engine.S with type state = s) = engs.(0) in
    Option.is_some E0.snapshot
  in
  (* Replay-cache policy.  Serial mode retains the snapshot slot on every
     hand-off exactly as before (for any engine — the stateless engine's
     states hand their live run forward); parallel mode additionally
     shares states across domains whenever the engine certifies them as
     restorable snapshots (or the caller opted in explicitly).
     [replay_cache = false] is the debugging escape hatch: drop every
     snapshot, disable the per-worker caches, replay everything. *)
  let retain =
    replay_cache && (domains = 1 || share_states || has_snap)
  in
  let rps =
    Array.map
      (fun e -> Search_core.replayer e ~cache:replay_cache ())
      engs
  in
  let fp =
    (* only needed when a checkpoint is read or written *)
    if checkpoint_out <> None || resume_from <> None then
      fingerprint engs.(0)
    else ""
  in
  let resume_v3 =
    Option.map
      (fun (c : Checkpoint.t) ->
        let f = Checkpoint.to_v3 c in
        if f.Checkpoint.v3_tag <> S.tag then
          invalid_arg
            (Printf.sprintf
               "Explore.resume: checkpoint was written by a %s search, not \
                %s"
               f.Checkpoint.v3_tag S.tag);
        (match List.assoc_opt fingerprint_key f.Checkpoint.v3_params with
        | Some s when s <> fp ->
          invalid_arg
            "Explore.resume: the checkpoint belongs to a different program \
             (initial-state fingerprint mismatch)"
        | Some _ | None -> ());
        f)
      resume_from
  in
  let master =
    match resume_from with
    | None -> Collector.create options
    | Some (c : Checkpoint.t) -> Collector.restore options c.collector
  in
  (* Cumulative wall-clock accounting, carried across interruptions via
     checkpoint params: [base_elapsed]/[bound_times] seed from the
     resumed file, [note_round_done] charges each completed round, and
     [stamp] writes fingerprint + timing into every save (charging the
     current partial round without closing it). *)
  let run_started_at = Unix.gettimeofday () in
  let param key =
    Option.bind resume_v3 (fun (f : Checkpoint.v3) ->
        List.assoc_opt key f.Checkpoint.v3_params)
  in
  let base_elapsed =
    Option.value
      (Option.bind (param Checkpoint.elapsed_key) float_of_string_opt)
      ~default:0.0
  in
  let bound_times =
    ref
      (match param Checkpoint.bound_times_key with
      | Some s -> Checkpoint.decode_bound_times s
      | None -> [])
  in
  let round_started = ref run_started_at in
  let add_bound_time bt (b, d) =
    if List.mem_assoc b bt then
      List.map (fun (b', s) -> if b' = b then (b', s +. d) else (b', s)) bt
    else if d < 0.0005 then bt (* no entries for rounds never explored *)
    else bt @ [ (b, d) ]
  in
  let note_round_done r =
    let now = Unix.gettimeofday () in
    bound_times := add_bound_time !bound_times (r, now -. !round_started);
    round_started := now
  in
  let stamp (f : Checkpoint.v3) =
    let now = Unix.gettimeofday () in
    let bt = add_bound_time !bound_times (S.round (), now -. !round_started) in
    {
      f with
      Checkpoint.v3_params =
        f.Checkpoint.v3_params
        @ [
            (fingerprint_key, fp);
            ( Checkpoint.elapsed_key,
              Printf.sprintf "%.3f" (base_elapsed +. now -. run_started_at) );
            (Checkpoint.bound_times_key, Checkpoint.encode_bound_times bt);
          ];
    }
  in
  let ckpt =
    Option.map
      (fun path ->
        {
          Search_core.ck_path = path;
          ck_every = max 1 checkpoint_every;
          ck_meta = checkpoint_meta;
          ck_last = Collector.executions master;
          ck_events = emit;
        })
      checkpoint_out
  in
  if Icb_obs.Emit.enabled emit then
    Icb_obs.Emit.emit emit
      (Icb_obs.Event.Run_started
         { strategy = S.name; domains; resumed = resume_from <> None });
  (try
     if domains = 1 then
       run_serial engs.(0) (module S) ~stamp ~note_round_done ~emit
         ~rp:rps.(0) ~retain master ckpt resume_v3
     else
       run_parallel engs (module S) ~stamp ~note_round_done ~tel:telemetry
         ~emit ~options master ckpt resume_v3 ~rps ~retain ~domains
   with Collector.Stop -> ());
  let cstats = Replay_cache.zero () in
  Array.iter
    (fun rp -> Replay_cache.accum ~into:cstats rp.Search_core.rp_stats)
    rps;
  (match on_cache_stats with None -> () | Some f -> f cstats);
  if Icb_obs.Emit.enabled emit && replay_cache && has_snap then
    Icb_obs.Emit.emit emit
      (Icb_obs.Event.Cache_stats
         {
           hits = cstats.Replay_cache.hits;
           misses = cstats.Replay_cache.misses;
           steps_saved = cstats.Replay_cache.steps_saved;
           steps_replayed = cstats.Replay_cache.steps_replayed;
         });
  let res = Collector.result master ~strategy:S.name in
  if Icb_obs.Emit.enabled emit then
    Icb_obs.Emit.emit emit
      (Icb_obs.Event.Run_finished
         {
           executions = res.Sresult.executions;
           states = res.Sresult.distinct_states;
           bugs = List.length res.Sresult.bugs;
           complete = res.Sresult.complete;
           stop_reason =
             Option.map Sresult.stop_reason_string res.Sresult.stop_reason;
         });
  res
