(* On-disk checkpoints for interruptible exploration.

   A checkpoint is portable across processes but tied to one program: the
   search frontier is stored as replayable schedule prefixes (plain int
   lists), never as marshaled engine states — engine states hold
   continuations (the CHESS engine) or large persistent structures, and
   replaying a prefix through [Engine.S.step] rebuilds them exactly.

   File layout:
     bytes 0..7    magic "ICBCKPT\x01"
     bytes 8..11   format version (big-endian int, output_binary_int)
     bytes 12..27  MD5 digest of the payload
     bytes 28..31  payload length
     bytes 32..    payload (Marshal of [t])

   Writes go to a temporary file in the same directory followed by an
   atomic rename, so a killed writer can never leave a half-written file
   under the checkpoint's name; the digest additionally rejects files
   truncated or corrupted by other means with a clear error instead of a
   crash or a silently wrong resume.

   Version history:
     v1  ICB/random-walk frontiers; collector snapshots without the
         per-bound execution counts.
     v2  collector snapshots grew [s_bound_executions] (appended last, so
         v2 payloads still unmarshal at the current layouts).
     v3  the strategy-agnostic frontier: a strategy tag, its parameters
         as strings, the round counter and the work/deferred prefix
         lists.  Any checkpointable strategy serializes to it.
   v1 and v2 files are read (the legacy frontier constructors below keep
   their Marshal tags) and upgraded in memory via [to_v3]; files are
   always written at the current version. *)

type v3 = {
  v3_tag : string;       (* strategy family, e.g. "icb", "random" *)
  v3_params : (string * string) list;
      (* enough to rebuild the strategy: max_bound/cache/seed/...; may
         also carry round-local progress (e.g. idfs truncation count) *)
  v3_round : int;        (* strategy-interpreted: ICB bound, iterative
                            depth, next walk index, ... *)
  v3_work : (int list * int) list;
      (* (schedule prefix, payload) — the current round's pending items;
         payload is the thread to run, [-1] for "visit the replayed
         state", or a walk index for randomized strategies *)
  v3_next : (int list * int) list;  (* deferred to the next round *)
}

type frontier =
  | Icb_frontier of {
      bound : int;
      work : (int list * int) list;
      next : (int list * int) list;
      max_bound : int option;
      cache : bool;
      cache_keys : (int64 * int) list;
    }  (* legacy: read from v1/v2 files only, upgraded by [to_v3] *)
  | Random_frontier of { seed : int64; rng_state : int64 }  (* legacy *)
  | V3 of v3

type t = {
  strategy : string;
  meta : (string * string) list;
  collector : Collector.snapshot;
  frontier : frontier;
}

exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

let magic = "ICBCKPT\x01"

(* v3: the strategy-agnostic frontier. *)
let version = 3

(* The v1 payload layout: same record, but the collector snapshot lacks
   its (last) per-bound execution field.  The frontier type is unchanged
   between v1 and v2, and appending [V3] keeps the legacy constructors'
   Marshal tags stable, so [frontier] itself still matches. *)
type t_v1 = {
  v1_strategy : string;
  v1_meta : (string * string) list;
  v1_collector : Collector.snapshot_v1;
  v1_frontier : frontier;
}

let save ~path t =
  Icb_util.Framing.write_file ~path ~magic ~version
    ~payload:(Marshal.to_string t [])

let load path =
  match
    Icb_util.Framing.read_file
      ~check_version:(fun v -> v >= 1 && v <= version)
      ~path ~magic ()
  with
  | Error (Cannot_open msg) -> corrupt "cannot open checkpoint: %s" msg
  | Error (Truncated section) ->
    corrupt "checkpoint %s is truncated (while reading %s)" path
      (match section with
      | Magic -> "the magic header"
      | Version -> "the version"
      | Digest -> "the payload digest"
      | Length -> "the length"
      | Payload -> "the payload")
  | Error Bad_magic ->
    corrupt "%s is not an icb checkpoint (bad magic header)" path
  | Error (Bad_version v) ->
    corrupt
      "checkpoint %s has format version %d but this build reads only \
       versions 1..%d; re-run the original search"
      path v version
  | Error Negative_length ->
    corrupt "checkpoint %s declares a negative length" path
  | Error Digest_mismatch ->
    corrupt
      "checkpoint %s is corrupted (payload checksum mismatch); it was \
       probably damaged after being written"
      path
  | Ok (1, payload) -> (
    match (Marshal.from_string payload 0 : t_v1) with
    | old ->
      {
        strategy = old.v1_strategy;
        meta = old.v1_meta;
        collector = Collector.snapshot_of_v1 old.v1_collector;
        frontier = old.v1_frontier;
      }
    | exception Failure msg ->
      corrupt "checkpoint %s payload does not unmarshal: %s" path msg)
  | Ok (_, payload) -> (
    match (Marshal.from_string payload 0 : t) with
    | t -> t
    | exception Failure msg ->
      corrupt "checkpoint %s payload does not unmarshal: %s" path msg)

(* Upgrade a legacy frontier in memory.  The random-walk conversion drops
   the saved sequential RNG state: walks are now derived from (seed, walk
   index), so the collector's execution count tells the resume where the
   stream stands. *)
let to_v3 (t : t) : v3 =
  match t.frontier with
  | V3 f -> f
  | Icb_frontier { bound; work; next; max_bound; cache; cache_keys = _ } ->
    {
      v3_tag = "icb";
      v3_params =
        (match max_bound with
        | None -> [ ("cache", string_of_bool cache) ]
        | Some b ->
          [ ("max_bound", string_of_int b); ("cache", string_of_bool cache) ]);
      v3_round = bound;
      v3_work = work;
      v3_next = next;
    }
  | Random_frontier { seed; rng_state = _ } ->
    {
      v3_tag = "random";
      v3_params = [ ("seed", Int64.to_string seed) ];
      v3_round = Collector.snapshot_executions t.collector;
      v3_work = [];
      v3_next = [];
    }

let meta_find t key = List.assoc_opt key t.meta

(* --- wall-clock timing params ------------------------------------------- *)

(* Cumulative timing the driver stamps into [v3_params] at every save.
   Being string params, they extend the v3 format compatibly: older
   builds ignore unknown keys, files without them simply report no
   timing.  These are the only nondeterministic fields a checkpoint
   carries — telemetry-neutrality comparisons normalize them away. *)
let elapsed_key = "elapsed_s"
let bound_times_key = "bound_times_s"

let encode_bound_times bt =
  String.concat ","
    (List.map (fun (b, s) -> Printf.sprintf "%d:%.3f" b s) bt)

let decode_bound_times s =
  if s = "" then []
  else
    List.filter_map
      (fun tok ->
        match String.index_opt tok ':' with
        | Some i -> (
          match
            ( int_of_string_opt (String.sub tok 0 i),
              float_of_string_opt
                (String.sub tok (i + 1) (String.length tok - i - 1)) )
          with
          | Some b, Some sec -> Some (b, sec)
          | _ -> None)
        | None -> None)
      (String.split_on_char ',' s)

let elapsed t =
  Option.bind
    (List.assoc_opt elapsed_key (to_v3 t).v3_params)
    float_of_string_opt

let bound_times t =
  match List.assoc_opt bound_times_key (to_v3 t).v3_params with
  | Some s -> decode_bound_times s
  | None -> []

let describe t =
  let frontier =
    let f = to_v3 t in
    Printf.sprintf "%s at round %d (%d work items, %d deferred)" f.v3_tag
      f.v3_round (List.length f.v3_work)
      (List.length f.v3_next)
  in
  Printf.sprintf "%s: %s%s%s" t.strategy frontier
    (match elapsed t with
    | Some s -> Printf.sprintf " — %.1fs explored so far" s
    | None -> "")
    (if Collector.snapshot_complete t.collector then " — already complete"
     else "")
