(* On-disk checkpoints for interruptible exploration.

   A checkpoint is portable across processes but tied to one program: the
   search frontier is stored as replayable schedule prefixes (plain int
   lists), never as marshaled engine states — engine states hold
   continuations (the CHESS engine) or large persistent structures, and
   replaying a prefix through [Engine.S.step] rebuilds them exactly.

   File layout:
     bytes 0..7    magic "ICBCKPT\x01"
     bytes 8..11   format version (big-endian int, output_binary_int)
     bytes 12..27  MD5 digest of the payload
     bytes 28..31  payload length
     bytes 32..    payload (Marshal of [t])

   Writes go to a temporary file in the same directory followed by an
   atomic rename, so a killed writer can never leave a half-written file
   under the checkpoint's name; the digest additionally rejects files
   truncated or corrupted by other means with a clear error instead of a
   crash or a silently wrong resume. *)

type frontier =
  | Icb_frontier of {
      bound : int;           (* the context bound being drained *)
      work : (int list * int) list;
          (* (schedule prefix, tid to run next), current bound's queue *)
      next : (int list * int) list;  (* deferred to bound + 1 *)
      max_bound : int option;
      cache : bool;
      cache_keys : (int64 * int) list;
          (* the state-caching table's keys, when [cache] *)
    }
  | Random_frontier of { seed : int64; rng_state : int64 }

type t = {
  strategy : string;
  meta : (string * string) list;
  collector : Collector.snapshot;
  frontier : frontier;
}

exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

let magic = "ICBCKPT\x01"

(* v2: Collector snapshots grew the per-bound execution counts. *)
let version = 2

let save ~path t =
  let payload = Marshal.to_string t [] in
  let digest = Digest.string payload in
  let tmp =
    Filename.temp_file
      ~temp_dir:(Filename.dirname path)
      (Filename.basename path) ".tmp"
  in
  let oc = open_out_bin tmp in
  (try
     output_string oc magic;
     output_binary_int oc version;
     output_string oc digest;
     output_binary_int oc (String.length payload);
     output_string oc payload;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let load path =
  let ic =
    try open_in_bin path
    with Sys_error msg -> corrupt "cannot open checkpoint: %s" msg
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let read_exactly n what =
        try really_input_string ic n
        with End_of_file ->
          corrupt "checkpoint %s is truncated (while reading %s)" path what
      in
      let m = read_exactly (String.length magic) "the magic header" in
      if m <> magic then
        corrupt "%s is not an icb checkpoint (bad magic header)" path;
      let v =
        try input_binary_int ic
        with End_of_file ->
          corrupt "checkpoint %s is truncated (while reading the version)"
            path
      in
      if v <> version then
        corrupt
          "checkpoint %s has format version %d but this build reads only \
           version %d; re-run the original search"
          path v version;
      let digest = read_exactly 16 "the payload digest" in
      let len =
        try input_binary_int ic
        with End_of_file ->
          corrupt "checkpoint %s is truncated (while reading the length)"
            path
      in
      if len < 0 then corrupt "checkpoint %s declares a negative length" path;
      let payload = read_exactly len "the payload" in
      if Digest.string payload <> digest then
        corrupt
          "checkpoint %s is corrupted (payload checksum mismatch); it was \
           probably damaged after being written"
          path;
      match (Marshal.from_string payload 0 : t) with
      | t -> t
      | exception Failure msg ->
        corrupt "checkpoint %s payload does not unmarshal: %s" path msg)

let meta_find t key = List.assoc_opt key t.meta

let describe t =
  let frontier =
    match t.frontier with
    | Icb_frontier { bound; work; next; max_bound; _ } ->
      Printf.sprintf "icb at bound %d (%d work items, %d deferred%s)" bound
        (List.length work) (List.length next)
        (match max_bound with
        | Some b -> Printf.sprintf ", max bound %d" b
        | None -> "")
    | Random_frontier _ -> "random walk"
  in
  Printf.sprintf "%s: %s%s" t.strategy frontier
    (if Collector.snapshot_complete t.collector then " — already complete"
     else "")
