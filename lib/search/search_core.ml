(* Machinery shared by the serial search strategies ([Explore]) and the
   parallel ICB executor ([Parallel]): execution accounting, crash
   containment, checkpoint write control and — most importantly — the
   per-work-item ICB exploration.

   The parallel executor replays the very same code path per work item as
   the serial driver, so the two provably explore identical subtrees; the
   equivalence test suite (test/test_parallel.ml) checks exactly that. *)

let finish (type s) (module E : Engine.S with type state = s) col (st : s)
    status =
  Collector.end_execution col
    {
      Collector.depth = E.depth st;
      blocks = E.blocking_ops st;
      preemptions = E.preemptions st;
      threads = E.thread_count st;
      schedule = E.schedule st;
      signature = E.signature st;
      status;
    }

(* --- crash containment -------------------------------------------------- *)

(* An exception escaping an engine step (including Stack_overflow and
   Out_of_memory when the runtime lets us catch them) must not abort the
   whole search: the schedule prefix that provoked it is a perfectly
   replayable bug report.  [Engine.Nondeterministic_program] gets its own
   key and an actionable message; everything else is keyed by the
   exception's constructor so repeated crashes deduplicate. *)
let record_crash (type s) (module E : Engine.S with type state = s) col
    (st : s) tid exn =
  let key, msg =
    match exn with
    | Engine.Nondeterministic_program detail ->
      ( "nondeterministic-program",
        Printf.sprintf
          "the test body is nondeterministic: %s; make the body \
           deterministic (no timing, Random or I/O dependence, no state \
           leaking across executions) so schedules replay faithfully"
          detail )
    | exn ->
      ( "engine-crash:" ^ Printexc.exn_slot_name exn,
        Printf.sprintf
          "exception escaped the engine step (thread %d at depth %d): %s"
          tid (E.depth st) (Printexc.to_string exn) )
  in
  Collector.end_execution col
    {
      Collector.depth = E.depth st + 1;
      blocks = E.blocking_ops st;
      preemptions = E.preemptions st;
      threads = E.thread_count st;
      schedule = E.schedule st @ [ tid ];
      signature = E.signature st;
      status = Engine.Failed { key; msg };
    }

(* Step the engine, containing crashes: [None] means the step blew up and
   was recorded as a bug — the strategy simply abandons that branch. *)
let step_guarded (type s) (module E : Engine.S with type state = s) col
    (st : s) tid =
  match E.step st tid with
  | st' -> Some st'
  | exception Collector.Stop -> raise Collector.Stop
  | exception exn ->
    record_crash (module E) col st tid exn;
    None

(* --- the ICB work item -------------------------------------------------- *)

(* Algorithm 1's inner loop: explore from [st] by running [tid] and then
   every continuation that costs no preemption; a switch away from a
   still-enabled running thread costs one preemption, so those branches are
   handed to [defer] for the next context bound.  [seen] is the optional
   state cache keyed on (signature, tid).

   [admit st' tid] decides whether the preemption point reached at [st']
   (the running thread [tid] still enabled, about to be switched away
   from) admits preemptions at all: the variable- and thread-bounding
   strategies seal points outside their bound.  A sealed point's
   preempting branches are dropped — [seal] is called once per sealed
   point so the strategy can report the search as bounded rather than
   complete.  The default admits everything, which is exactly ICB.

   This closure is the unit of work of both the serial driver and the
   parallel executor: its subtree is fully determined by (schedule prefix,
   tid) plus the strategy's deterministic [admit], independent of who runs
   it or when. *)
let icb_item (type s) (module E : Engine.S with type state = s) col ~seen
    ?(admit = fun _ _ -> true) ?(seal = fun () -> ()) ~defer (st0, tid0) =
  let rec search (st, tid) =
    if not (seen st tid) then begin
      match step_guarded (module E) col st tid with
      | None -> ()
      | Some st' -> (
        Collector.touch col (E.signature st');
        match E.status st' with
        | Engine.Running ->
          let en = E.enabled st' in
          if List.mem tid en then begin
            (* running thread still enabled: continue it without a context
               switch; scheduling anyone else here costs a preemption, so
               defer those work items to the next bound — unless the
               bounding discipline seals this preemption point *)
            search (st', tid);
            if List.exists (fun t -> t <> tid) en then
              if admit st' tid then
                List.iter (fun t -> if t <> tid then defer st' t) en
              else seal ()
          end
          else
            (* the running thread blocked or finished: switching is free *)
            List.iter (fun t -> search (st', t)) en
        | status -> finish (module E) col st' status)
    end
  in
  search (st0, tid0)

(* --- cache-aware prefix materialization ---------------------------------- *)

(* One per worker: turns a work item back into an engine state.  The
   retained state slot ([i_state]) always wins; a stateless item is
   rebuilt either through the per-worker prefix-snapshot cache (engines
   with the snapshot capability, cache enabled) or by the classic
   from-the-root replay.  Both paths share one [Replay_cache.stats]
   record, so cached and uncached runs report comparable step counts.

   Replays never touch the collector: the prefix's states were already
   counted by whoever deferred or checkpointed the item.  [Error
   (st, tid, exn)] surfaces a step that raised, for the caller to either
   contain (parallel workers) or reject (serial resume). *)
type 's replayer = {
  rp_run : 's Strategy.item -> ('s, 's * int * exn) result;
  rp_stats : Replay_cache.stats;
}

let replayer (type s) ((module E) : (module Engine.S with type state = s))
    ?(cache = true) ?(capacity = Replay_cache.default_capacity) () :
    s replayer =
  let stats = Replay_cache.zero () in
  let plain sched =
    (match sched with
    | [] -> ()
    | _ :: _ -> stats.Replay_cache.misses <- stats.Replay_cache.misses + 1);
    let rec go st = function
      | [] -> Ok st
      | t :: rest -> (
        match E.step st t with
        | st' ->
          stats.Replay_cache.steps_replayed <-
            stats.Replay_cache.steps_replayed + 1;
          go st' rest
        | exception exn -> Error (st, t, exn))
    in
    go (E.initial ()) sched
  in
  let rebuild =
    match (if cache then E.snapshot else None) with
    | None -> plain
    | Some capture ->
      let rc : E.snap Replay_cache.t = Replay_cache.create ~capacity () in
      fun sched ->
        Replay_cache.replay rc ~stats ~sched ~init:E.initial ~step:E.step
          ~capture ~restore:E.restore
  in
  let run it =
    match it.Strategy.i_state with
    | Some st ->
      (* the snapshot slot taken at the item's fork point *)
      (match it.Strategy.i_sched with
      | [] -> ()
      | sched ->
        stats.Replay_cache.hits <- stats.Replay_cache.hits + 1;
        stats.Replay_cache.steps_saved <-
          stats.Replay_cache.steps_saved + List.length sched);
      Ok st
    | None -> rebuild it.Strategy.i_sched
  in
  { rp_run = run; rp_stats = stats }

let icb_strategy_name ~max_bound =
  match max_bound with
  | None -> "icb"
  | Some b -> Printf.sprintf "icb:%d" b

(* --- checkpoint write control ------------------------------------------- *)

let default_checkpoint_every = 500

type ckpt_ctl = {
  ck_path : string;
  ck_every : int;               (* executions between periodic saves *)
  ck_meta : (string * string) list;
  mutable ck_last : int;        (* executions at the last save *)
  ck_events : Icb_obs.Emit.t;   (* telemetry for Checkpoint_written *)
}

let save_checkpoint col ctl ~strategy ~frontier =
  Checkpoint.save ~path:ctl.ck_path
    {
      Checkpoint.strategy;
      meta = ctl.ck_meta;
      collector = Collector.snapshot col;
      frontier;
    };
  ctl.ck_last <- Collector.executions col;
  if Icb_obs.Emit.enabled ctl.ck_events then
    Icb_obs.Emit.emit ctl.ck_events
      (Icb_obs.Event.Checkpoint_written
         { path = ctl.ck_path; executions = Collector.executions col })
