(* Parallel iterative context bounding across OCaml domains.

   The unit of work is the same as a serial ICB checkpoint entry: a
   replayable schedule prefix plus the thread to run next.  Each context
   bound's queue is sharded round-robin over [domains] workers, each with
   its own engine instance, collector and work-stealing deque; a worker
   that drains its deque steals from a random victim.  Within a bound a
   work item only ever defers new items to the *next* bound (Algorithm 1),
   so the current bound's deques strictly shrink — termination of a bound
   is simply "every deque is empty".

   Determinism: the merged result is independent of worker timing.  At the
   per-bound barrier the coordinator folds per-worker statistics with
   commutative operations (set union, saturating sums, maxima), absorbs
   bug candidates in sorted order (preemptions, schedule, key) with their
   [execution] stamp forged to the bound's cumulative execution count, and
   sorts the next bound's frontier by (schedule, tid).  Together with the
   fact that each item's subtree depends only on the item itself, two runs
   with any worker counts — including one — produce the same bug set,
   per-bound execution counts, distinct-state count and step totals as the
   serial driver (the equivalence suite in test/test_parallel.ml checks
   this against [Explore.run]).

   Stopping is cooperative and item-granular: workers never raise
   [Collector.Stop] (their collectors carry no limits); global limits, the
   deadline and stop-at-first-bug are enforced by a per-execution progress
   hook that sets an atomic stop flag, and workers finish their in-flight
   item before exiting.  A checkpoint written on stop therefore contains
   exactly the unprocessed items — resuming never re-explores a schedule,
   unlike the serial driver's conservative re-queue of the interrupted
   item.

   Mid-bound periodic checkpoints use a pause protocol: when enough
   executions have accumulated a worker requests a pause, every live
   worker parks at its next item boundary, and the last one to park (or
   exit) assembles the checkpoint from the master snapshot, the parked
   workers' collectors and the deques' remaining items, then resumes
   everyone.  Parking at item boundaries keeps the no-duplicate resume
   guarantee. *)

type 's work = {
  w_sched : int list;   (* replayable schedule prefix *)
  w_tid : int;          (* thread to run from the replayed state *)
  w_state : 's option;  (* fast path: the replayed state itself, when the
                           engine's states may cross domains *)
}

let with_lock m f =
  Mutex.lock m;
  match f () with
  | v ->
    Mutex.unlock m;
    v
  | exception e ->
    Mutex.unlock m;
    raise e

(* A mutex-protected deque: the owner pops from the front, thieves steal
   from the back.  Contention is per-item and items are whole subtrees, so
   a lock-free structure would buy nothing here. *)
module Dq = struct
  type 'a t = {
    m : Mutex.t;
    mutable front : 'a list;          (* head = next item for the owner *)
    mutable back : 'a list;           (* head = next item for a thief *)
  }

  let create () = { m = Mutex.create (); front = []; back = [] }

  let clear q =
    with_lock q.m (fun () ->
        q.front <- [];
        q.back <- [])

  let push_back q x = with_lock q.m (fun () -> q.back <- x :: q.back)

  let pop q =
    with_lock q.m (fun () ->
        match q.front with
        | x :: rest ->
          q.front <- rest;
          Some x
        | [] -> (
          match List.rev q.back with
          | [] -> None
          | x :: rest ->
            q.front <- rest;
            q.back <- [];
            Some x))

  let steal q =
    with_lock q.m (fun () ->
        match q.back with
        | x :: rest ->
          q.back <- rest;
          Some x
        | [] -> (
          match List.rev q.front with
          | [] -> None
          | x :: rest ->
            q.front <- [];
            q.back <- rest;
            Some x))

  (* Non-destructive read, for checkpoint assembly while workers are
     parked. *)
  let snapshot q = with_lock q.m (fun () -> q.front @ List.rev q.back)
end

let run (type s) (engines : int -> (module Engine.S with type state = s))
    ?(options = Collector.default_options) ?checkpoint_out
    ?(checkpoint_every = Search_core.default_checkpoint_every)
    ?(checkpoint_meta = []) ?resume_from ?(share_states = false) ~domains
    ~max_bound ~cache () : Sresult.t =
  if domains < 1 then invalid_arg "Parallel.run: domains must be at least 1";
  let strategy = Search_core.icb_strategy_name ~max_bound in
  let master =
    match resume_from with
    | None -> Collector.create options
    | Some (c : Checkpoint.t) -> Collector.restore options c.collector
  in
  let ckpt =
    Option.map
      (fun path ->
        {
          Search_core.ck_path = path;
          ck_every = max 1 checkpoint_every;
          ck_meta = checkpoint_meta;
          ck_last = Collector.executions master;
        })
      checkpoint_out
  in
  (* Local collectors carry no limits and never raise [Collector.Stop]:
     stopping is decided globally by the progress hook below and honoured
     by workers at item boundaries.  Semantic options (deadlock_is_error,
     terminal_states_only) are kept. *)
  let stripped =
    {
      options with
      Collector.max_executions = None;
      max_states = None;
      max_total_steps = None;
      deadline = None;
      stop_at_first_bug = false;
      on_progress = None;
    }
  in
  (* Engine instances are created sequentially here, before any domain
     exists, and each is thereafter used by a single worker at a time. *)
  let engs = Array.init domains engines in
  let deques : s work Dq.t array = Array.init domains (fun _ -> Dq.create ()) in
  (* The optional state cache, per worker: each table prunes only the
     subtrees its own worker revisits, so caching stays sound (a cached
     (signature, tid) pair was fully explored by that same worker) but a
     parallel cached run may explore more executions than a serial one. *)
  let tables : (int64 * int, unit) Hashtbl.t array =
    Array.init domains (fun _ -> Hashtbl.create 4096)
  in
  let rngs =
    let base = Icb_util.Rng.create 0x1CBD0E5L in
    Array.init domains (fun _ -> Icb_util.Rng.split base)
  in
  let stop : Sresult.stop_reason option Atomic.t = Atomic.make None in
  let failed : exn option Atomic.t = Atomic.make None in
  let request_stop r = ignore (Atomic.compare_and_set stop None (Some r)) in
  (* Per-bound global counters for limit enforcement and user progress;
     states and steps are sums of per-worker increments, so the state
     count over-approximates the distinct total (duplicates across
     workers) — the exact union is computed at the barrier. *)
  let g_execs = Atomic.make 0
  and g_states = Atomic.make 0
  and g_steps = Atomic.make 0
  and g_bugs = Atomic.make 0 in
  (* Pause/checkpoint protocol state; [parked] and [running] are guarded
     by [pm]. *)
  let pause = Atomic.make false in
  let pm = Mutex.create () in
  let pc = Condition.create () in
  let parked = ref 0 in
  let running = ref 0 in
  let user_cb_m = Mutex.create () in
  (* Per-bound context, published to workers before each spawn (and read
     back after join, or under [pm] during checkpoint assembly). *)
  let cur_bound = ref 0 in
  let cur_lcols : Collector.t array ref = ref [||] in
  let cur_nexts : s work list ref array ref = ref [||] in
  let cur_carry : (int list * int) list ref = ref [] in
  let master_snap = ref (Collector.snapshot master) in
  let cmp_work a b = compare (a.w_sched, a.w_tid) (b.w_sched, b.w_tid) in
  let sorted_works ws = List.sort cmp_work ws in
  let strip ws = List.map (fun w -> (w.w_sched, w.w_tid)) ws in
  let of_prefix (sched, tid) = { w_sched = sched; w_tid = tid; w_state = None } in
  (* Deterministic bug merge: sort candidates so the surviving
     representative of each key is independent of which worker found it
     first, and forge the discovery stamp to the cumulative execution
     count at the merge point. *)
  let absorb_bugs col candidates =
    let candidates =
      List.sort
        (fun (a : Sresult.bug) (b : Sresult.bug) ->
          compare (a.preemptions, a.schedule, a.key)
            (b.preemptions, b.schedule, b.key))
        candidates
    in
    let stamp = Collector.executions col in
    List.iter
      (fun (b : Sresult.bug) ->
        if not (Collector.has_bug col b.Sresult.key) then
          Collector.absorb_bug col { b with Sresult.execution = stamp })
      candidates
  in
  let remaining_items () =
    Array.fold_left (fun acc q -> acc @ Dq.snapshot q) [] deques
  in
  let deferred_items () =
    Array.fold_left (fun acc r -> acc @ !r) [] !cur_nexts
  in
  let save_with col ~work ~next =
    match ckpt with
    | None -> ()
    | Some ctl ->
      Search_core.save_checkpoint col ctl ~strategy
        ~frontier:
          (Checkpoint.Icb_frontier
             {
               bound = !cur_bound;
               work;
               next;
               max_bound;
               cache;
               (* per-worker caches are not checkpointed: a resume starts
                  them empty and merely re-explores a little more *)
               cache_keys = [];
             })
  in
  (* Mid-bound checkpoint, run by the last worker to park (all other live
     workers are blocked on [pc], so their collectors, next-lists and
     deques are quiescent; the mutex hand-offs make their writes
     visible). *)
  let assemble_and_save () =
    match ckpt with
    | None -> ()
    | Some _ ->
      let scratch = Collector.restore stripped !master_snap in
      let candidates = ref [] in
      Array.iter
        (fun lcol ->
          let sn = Collector.snapshot lcol in
          Collector.merge_stats scratch sn;
          candidates := Collector.snapshot_bugs sn @ !candidates)
        !cur_lcols;
      absorb_bugs scratch !candidates;
      let work = strip (sorted_works (remaining_items ())) in
      let next =
        strip
          (sorted_works
             (List.map of_prefix !cur_carry @ deferred_items ()))
      in
      save_with scratch ~work ~next
  in
  let park () =
    with_lock pm (fun () ->
        if Atomic.get pause then begin
          incr parked;
          if !parked = !running then begin
            assemble_and_save ();
            Atomic.set pause false;
            Condition.broadcast pc
          end
          else
            while Atomic.get pause do
              Condition.wait pc pm
            done;
          decr parked
        end)
  in
  (* A worker that runs out of work may be the one whose parking the
     others are waiting for; complete the quorum on the way out. *)
  let retire () =
    with_lock pm (fun () ->
        decr running;
        if Atomic.get pause && !parked = !running then begin
          assemble_and_save ();
          Atomic.set pause false;
          Condition.broadcast pc
        end)
  in
  let maybe_request_ckpt () =
    match ckpt with
    | None -> ()
    | Some ctl ->
      let total =
        Collector.snapshot_executions !master_snap + Atomic.get g_execs
      in
      if total - ctl.ck_last >= ctl.ck_every then
        with_lock pm (fun () ->
            (* only between rounds: [parked] must have drained *)
            if (not (Atomic.get pause)) && !parked = 0 then
              Atomic.set pause true)
  in
  (* The per-execution hook installed in every worker's collector: bump
     the global counters, enforce the caller's limits by setting the stop
     flag, and relay aggregated progress to the caller's own hook. *)
  let mk_hook cell ~base_execs ~base_states ~base_steps ~base_bugs =
    let prev_states = ref 0 and prev_steps = ref 0 and prev_bugs = ref 0 in
    fun (p : Collector.progress) ->
      let lcol = Option.get !cell in
      let execs = 1 + Atomic.fetch_and_add g_execs 1 in
      let ds = p.Collector.p_states - !prev_states in
      prev_states := p.Collector.p_states;
      let states = ds + Atomic.fetch_and_add g_states ds in
      let steps_now = Collector.total_steps lcol in
      let dst = steps_now - !prev_steps in
      prev_steps := steps_now;
      let steps = dst + Atomic.fetch_and_add g_steps dst in
      let db = p.Collector.p_bugs - !prev_bugs in
      prev_bugs := p.Collector.p_bugs;
      let bugs = db + Atomic.fetch_and_add g_bugs db in
      let total_execs = base_execs + execs in
      (match options.Collector.max_executions with
      | Some l when total_execs >= l -> request_stop Sresult.Execution_limit
      | Some _ | None -> ());
      (match options.Collector.max_states with
      | Some l when base_states + states >= l ->
        request_stop Sresult.State_limit
      | Some _ | None -> ());
      (match options.Collector.max_total_steps with
      | Some l when base_steps + steps >= l -> request_stop Sresult.Step_limit
      | Some _ | None -> ());
      (match options.Collector.deadline with
      | Some d when Unix.gettimeofday () >= d ->
        request_stop Sresult.Deadline_exceeded
      | Some _ | None -> ());
      if options.Collector.stop_at_first_bug && base_bugs + bugs > 0 then
        request_stop Sresult.First_bug;
      match options.Collector.on_progress with
      | None -> ()
      | Some f ->
        with_lock user_cb_m (fun () ->
            f
              {
                Collector.p_executions = total_execs;
                p_states = base_states + states;
                p_bugs = base_bugs + bugs;
                p_elapsed = Collector.elapsed master;
                p_bound = Some !cur_bound;
              })
  in
  let worker i () =
    let (module E : Engine.S with type state = s) = engs.(i) in
    let lcol = !cur_lcols.(i) in
    let next = !cur_nexts.(i) in
    let table = tables.(i) in
    let rng = rngs.(i) in
    let seen st tid =
      cache
      &&
      let k = (E.signature st, tid) in
      Hashtbl.mem table k || (Hashtbl.add table k (); false)
    in
    let defer st t =
      next :=
        {
          w_sched = E.schedule st;
          w_tid = t;
          w_state = (if share_states then Some st else None);
        }
        :: !next
    in
    let take () =
      match Dq.pop deques.(i) with
      | Some _ as r -> r
      | None ->
        if domains = 1 then None
        else begin
          let start = Icb_util.Rng.int rng domains in
          let rec go k =
            if k >= domains then None
            else
              let j = (start + k) mod domains in
              if j = i then go (k + 1)
              else
                match Dq.steal deques.(j) with
                | Some _ as r -> r
                | None -> go (k + 1)
          in
          go 0
        end
    in
    let process it =
      let start =
        match it.w_state with
        | Some st -> Some st
        | None ->
          (* Replays never touch the collector: the prefix's states were
             already counted by whoever deferred or checkpointed this
             item.  A prefix that no longer replays means the program is
             nondeterministic (or the checkpoint is foreign); contain it
             as a replayable bug, like any other engine crash. *)
          let rec go st = function
            | [] -> Some st
            | t :: rest -> (
              match E.step st t with
              | st' -> go st' rest
              | exception exn ->
                Search_core.record_crash (module E) lcol st t exn;
                None)
          in
          go (E.initial ()) it.w_sched
      in
      match start with
      | None -> ()
      | Some st ->
        Search_core.icb_item (module E) lcol ~seen ~defer (st, it.w_tid)
    in
    let rec loop () =
      if Atomic.get stop <> None || Atomic.get failed <> None then ()
      else begin
        if Atomic.get pause then park ();
        match take () with
        | None -> ()
        | Some it ->
          process it;
          maybe_request_ckpt ();
          loop ()
      end
    in
    (try loop ()
     with exn -> ignore (Atomic.compare_and_set failed None (Some exn)));
    retire ()
  in
  (* Drain one context bound; returns the (sorted) next bound's items and
     the stop flag as observed after the barrier. *)
  let run_bound ~work ~carry =
    Array.iter Dq.clear deques;
    List.iteri (fun k it -> Dq.push_back deques.(k mod domains) it) work;
    cur_carry := carry;
    master_snap := Collector.snapshot master;
    let base_execs = Collector.executions master in
    let base_states = Collector.seen_states master in
    let base_steps = Collector.total_steps master in
    let base_bugs = Collector.bug_count master in
    Atomic.set g_execs 0;
    Atomic.set g_states 0;
    Atomic.set g_steps 0;
    Atomic.set g_bugs 0;
    Atomic.set pause false;
    parked := 0;
    running := domains;
    let lcols =
      Array.init domains (fun _ ->
          let cell = ref None in
          let hook = mk_hook cell ~base_execs ~base_states ~base_steps ~base_bugs in
          let c =
            Collector.create { stripped with Collector.on_progress = Some hook }
          in
          cell := Some c;
          c)
    in
    cur_lcols := lcols;
    let nexts = Array.init domains (fun _ -> ref []) in
    cur_nexts := nexts;
    let doms = Array.init domains (fun i -> Domain.spawn (worker i)) in
    Array.iter Domain.join doms;
    (match Atomic.get failed with Some exn -> raise exn | None -> ());
    (* the deterministic barrier merge *)
    let candidates = ref [] in
    Array.iter
      (fun lcol ->
        let sn = Collector.snapshot lcol in
        Collector.merge_stats master sn;
        candidates := Collector.snapshot_bugs sn @ !candidates)
      lcols;
    absorb_bugs master !candidates;
    let next_items =
      sorted_works
        (List.map of_prefix carry
        @ Array.fold_left (fun acc r -> acc @ !r) [] nexts)
    in
    (next_items, Atomic.get stop)
  in
  let rec drive work carry =
    if work = [] && carry = [] then
      (* a trivial program, or a resumed checkpoint of a finished search *)
      Collector.set_complete master
    else begin
      Collector.note_bound master !cur_bound;
      let next_items, stop_r = run_bound ~work:(sorted_works work) ~carry in
      match stop_r with
      | Some r ->
        Collector.note_stop master r;
        let remaining = strip (sorted_works (remaining_items ())) in
        save_with master ~work:remaining ~next:(strip next_items)
      | None -> (
        Collector.mark_growth master;
        Collector.record_bound master !cur_bound;
        if next_items = [] then begin
          Collector.set_complete master;
          save_with master ~work:[] ~next:[]
        end
        else
          match max_bound with
          | Some b when !cur_bound >= b ->
            (* every execution with <= b preemptions has been explored *)
            save_with master ~work:[] ~next:(strip next_items)
          | Some _ | None ->
            incr cur_bound;
            drive next_items [])
    end
  in
  (try
     match resume_from with
     | Some
         {
           Checkpoint.frontier =
             Checkpoint.Icb_frontier { bound; work; next; _ };
           _;
         } ->
       cur_bound := bound;
       drive (List.map of_prefix work) next
     | Some { Checkpoint.frontier = Checkpoint.Random_frontier _; _ } ->
       invalid_arg "Parallel.run: checkpoint was written by a random walk"
     | None -> (
       let (module E : Engine.S with type state = s) = engs.(0) in
       let s0 = E.initial () in
       Collector.touch master (E.signature s0);
       match E.status s0 with
       | Engine.Running ->
         drive
           (List.map
              (fun t ->
                {
                  w_sched = [];
                  w_tid = t;
                  w_state = (if share_states then Some s0 else None);
                })
              (E.enabled s0))
           []
       | status ->
         Search_core.finish (module E) master s0 status;
         Collector.set_complete master)
   with Collector.Stop -> ());
  Collector.result master ~strategy
