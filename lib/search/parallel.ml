(* Parallel iterative context bounding across OCaml domains — kept as the
   ICB-shaped entry point.  The executor itself (work-stealing deques,
   deterministic barrier merge, cooperative stopping, the mid-round pause
   protocol for checkpoints) lives in [Driver], generalized over
   [Strategy.S]; this wrapper instantiates the ICB strategy and
   delegates.  [engines 0] is additionally used as the strategy's type
   witness, so the factory is called once more than there are domains. *)

let run (type s) (engines : int -> (module Engine.S with type state = s))
    ?options ?checkpoint_out ?checkpoint_every ?checkpoint_meta ?resume_from
    ?telemetry ?share_states ?replay_cache ?on_cache_stats ~domains ~max_bound
    ~cache () : Sresult.t =
  let (module E0 : Engine.S with type state = s) = engines 0 in
  Driver.run engines ?options ?checkpoint_out ?checkpoint_every
    ?checkpoint_meta ?resume_from ?telemetry ?share_states ?replay_cache
    ?on_cache_stats ~domains
    (Strategies.icb (module E0) ~max_bound ~cache)
