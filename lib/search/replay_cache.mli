(** Prefix-snapshot replay cache.

    A work item in the stateless search discipline is a replayable schedule
    prefix; a round's frontier is a {e tree} of shared prefixes.  Engines
    with the snapshot capability ({!Engine.S.snapshot}) let the driver
    memoize the state reached at every prefix it replays, so materializing
    the next item costs only the steps past its longest cached ancestor —
    execution scales with new steps, not prefix length.

    One cache per worker (no locking); bounded LRU ({!Icb_util.Lru}) keyed
    by the FNV-1a hash of the prefix, with the prefix itself stored and
    compared on lookup so hash collisions degrade to misses, never to wrong
    states.  Entries are only ever created from states the current run
    actually reached, so there is no invalidation problem: a snapshot for a
    prefix is eternally valid for this engine instance.

    See docs/REPLAY_CACHE.md. *)

(** Replay accounting, shared by cached and uncached materialization so the
    two modes can be compared ([bench/main.exe replaycache]). *)
type stats = {
  mutable hits : int;       (** materializations served at least partly from a snapshot *)
  mutable misses : int;     (** materializations replayed entirely from the initial state *)
  mutable steps_saved : int;     (** engine steps avoided via snapshots *)
  mutable steps_replayed : int;  (** engine steps re-executed to rebuild prefixes *)
}

val zero : unit -> stats

val accum : into:stats -> stats -> unit
(** Saturation-free accumulation of one worker's counters into a total. *)

type 'v t
(** A cache holding snapshots of type ['v]. *)

val default_capacity : int

val create : ?capacity:int -> unit -> 'v t
val length : 'v t -> int
val clear : 'v t -> unit

val replay :
  'v t ->
  stats:stats ->
  sched:int list ->
  init:(unit -> 'a) ->
  step:('a -> int -> 'a) ->
  capture:('a -> 'v) ->
  restore:('v -> 'a) ->
  ('a, 'a * int * exn) result
(** Materialize the state reached by [sched]: restore the longest cached
    prefix of [sched] (verified element-wise, not just by hash) and replay
    only the remaining suffix, inserting a snapshot after every new step so
    the next item sharing this prefix starts further along.  [Error
    (st, tid, exn)] reports a step that raised, with the state and thread
    at the point of failure — the caller decides between crash containment
    (parallel workers) and strict rejection (serial resume). *)
