type progress = {
  p_executions : int;
  p_states : int;
  p_bugs : int;
  p_elapsed : float;
  p_bound : int option;
  p_frontier : int option;
}

type options = {
  max_executions : int option;
  max_states : int option;
  max_total_steps : int option;
  deadline : float option;
  deadlock_is_error : bool;
  stop_at_first_bug : bool;
  terminal_states_only : bool;
  on_progress : (progress -> unit) option;
  events : Icb_obs.Emit.t;
}

let default_options =
  {
    max_executions = None;
    max_states = None;
    max_total_steps = None;
    deadline = None;
    deadlock_is_error = true;
    stop_at_first_bug = false;
    terminal_states_only = false;
    on_progress = None;
    events = Icb_obs.Emit.null;
  }

let deadline_in secs = Unix.gettimeofday () +. secs

exception Stop

type t = {
  opts : options;
  visited : (int64, unit) Hashtbl.t;
  bugs : (string, Sresult.bug) Hashtbl.t;
  mutable bug_order : string list;  (* reversed *)
  mutable executions : int;
  mutable total_steps : int;
  mutable max_steps : int;
  mutable max_blocks : int;
  mutable max_preemptions : int;
  mutable max_threads : int;
  mutable complete : bool;
  mutable stop_reason : Sresult.stop_reason option;
  mutable current_bound : int option;
  mutable frontier : int option;
  started : float;
  mutable growth : (int * int) list;          (* reversed *)
  mutable bound_coverage : (int * int) list;  (* reversed *)
  mutable bound_executions : (int * int) list;(* reversed *)
}

let create opts =
  {
    opts;
    visited = Hashtbl.create 4096;
    bugs = Hashtbl.create 16;
    bug_order = [];
    executions = 0;
    total_steps = 0;
    max_steps = 0;
    max_blocks = 0;
    max_preemptions = 0;
    max_threads = 0;
    complete = false;
    stop_reason = None;
    current_bound = None;
    frontier = None;
    started = Unix.gettimeofday ();
    growth = [];
    bound_coverage = [];
    bound_executions = [];
  }

let over limit n = match limit with Some l -> n >= l | None -> false

let stop t reason =
  t.stop_reason <- Some reason;
  raise Stop

(* A gettimeofday syscall per step would dominate tight search loops, so
   the deadline is polled every 32 steps (and at every execution end). *)
let check_deadline t =
  match t.opts.deadline with
  | Some d when Unix.gettimeofday () >= d -> stop t Sresult.Deadline_exceeded
  | Some _ | None -> ()

let touch t signature =
  t.total_steps <- t.total_steps + 1;
  if
    (not t.opts.terminal_states_only)
    && not (Hashtbl.mem t.visited signature)
  then Hashtbl.add t.visited signature ();
  if over t.opts.max_states (Hashtbl.length t.visited) then
    stop t Sresult.State_limit;
  if over t.opts.max_total_steps t.total_steps then stop t Sresult.Step_limit;
  if t.total_steps land 31 = 0 then check_deadline t

let seen_states t = Hashtbl.length t.visited

let executions t = t.executions

let note_bound t bound = t.current_bound <- Some bound

let note_frontier t n = t.frontier <- Some n

type execution_end = {
  depth : int;
  blocks : int;
  preemptions : int;
  threads : int;
  schedule : int list;
  signature : int64;
  status : Engine.status;
}

(* Context switches in a schedule: positions where the thread changes. *)
let count_switches schedule =
  match schedule with
  | [] -> 0
  | first :: rest ->
    let switches, _ =
      List.fold_left
        (fun (n, prev) tid -> ((n + if tid <> prev then 1 else 0), tid))
        (0, first) rest
    in
    switches

(* Telemetry names for {!Engine.status}; [Running] at execution end means
   the execution was truncated by a depth bound. *)
let status_string : Engine.status -> string = function
  | Engine.Running -> "truncated"
  | Engine.Terminated -> "terminated"
  | Engine.Deadlock _ -> "deadlock"
  | Engine.Failed _ -> "failed"

let end_execution t (e : execution_end) =
  t.executions <- t.executions + 1;
  if t.opts.terminal_states_only && not (Hashtbl.mem t.visited e.signature)
  then Hashtbl.add t.visited e.signature ();
  t.max_steps <- max t.max_steps e.depth;
  t.max_blocks <- max t.max_blocks e.blocks;
  t.max_preemptions <- max t.max_preemptions e.preemptions;
  t.max_threads <- max t.max_threads e.threads;
  t.growth <- (t.executions, Hashtbl.length t.visited) :: t.growth;
  (* before bug handling: [stop_at_first_bug] raises from [bug_of], and
     the execution that exposed the bug must already be in the stream *)
  if Icb_obs.Emit.enabled t.opts.events then
    Icb_obs.Emit.emit t.opts.events
      (Icb_obs.Event.Execution_done
         {
           bound = t.current_bound;
           steps = e.depth;
           preemptions = e.preemptions;
           status = status_string e.status;
           executions = t.executions;
         });
  let bug_of key msg =
    if not (Hashtbl.mem t.bugs key) then begin
      Hashtbl.add t.bugs key
        {
          Sresult.key;
          msg;
          schedule = e.schedule;
          preemptions = e.preemptions;
          context_switches = count_switches e.schedule;
          depth = e.depth;
          execution = t.executions;
        };
      t.bug_order <- key :: t.bug_order;
      if Icb_obs.Emit.enabled t.opts.events then
        Icb_obs.Emit.emit t.opts.events
          (Icb_obs.Event.Bug_found
             { key; preemptions = e.preemptions; execution = t.executions });
      if t.opts.stop_at_first_bug then stop t Sresult.First_bug
    end
  in
  (match e.status with
  | Engine.Failed { key; msg } -> bug_of key msg
  | Engine.Deadlock blocked when t.opts.deadlock_is_error ->
    bug_of "deadlock"
      (Format.asprintf "deadlock; blocked threads: %s"
         (String.concat ", " (List.map string_of_int blocked)))
  | Engine.Deadlock _ | Engine.Terminated | Engine.Running -> ());
  (match t.opts.on_progress with
  | None -> ()
  | Some f ->
    f
      {
        p_executions = t.executions;
        p_states = Hashtbl.length t.visited;
        p_bugs = Hashtbl.length t.bugs;
        p_elapsed = Unix.gettimeofday () -. t.started;
        p_bound = t.current_bound;
        p_frontier = t.frontier;
      });
  if over t.opts.max_executions t.executions then
    stop t Sresult.Execution_limit;
  check_deadline t

let record_bound t bound =
  t.bound_coverage <- (bound, Hashtbl.length t.visited) :: t.bound_coverage;
  t.bound_executions <- (bound, t.executions) :: t.bound_executions

let set_complete t = t.complete <- true

let note_stop t reason =
  if t.stop_reason = None then t.stop_reason <- Some reason

let total_steps t = t.total_steps

let elapsed t = Unix.gettimeofday () -. t.started

let bug_count t = Hashtbl.length t.bugs

let has_bug t key = Hashtbl.mem t.bugs key

let absorb_bug t (b : Sresult.bug) =
  if not (Hashtbl.mem t.bugs b.Sresult.key) then begin
    Hashtbl.add t.bugs b.Sresult.key b;
    t.bug_order <- b.Sresult.key :: t.bug_order
  end

(* --- checkpointable snapshot ------------------------------------------- *)

(* Everything the accumulator has learned, as plain marshal-safe data (no
   closures, no hashtables with undefined iteration order at restore).
   Options are deliberately NOT part of the snapshot: the resuming caller
   supplies fresh limits. *)
type snapshot = {
  s_visited : int64 array;
  s_bugs : Sresult.bug list;  (* discovery order *)
  s_executions : int;
  s_total_steps : int;
  s_max_steps : int;
  s_max_blocks : int;
  s_max_preemptions : int;
  s_max_threads : int;
  s_complete : bool;
  s_growth : (int * int) list;          (* reversed, newest first *)
  s_bound_coverage : (int * int) list;  (* reversed, newest first *)
  s_bound_executions : (int * int) list;(* reversed, newest first *)
}

let snapshot t =
  {
    s_visited =
      (let a = Array.make (Hashtbl.length t.visited) 0L in
       let i = ref 0 in
       Hashtbl.iter
         (fun sig_ () ->
           a.(!i) <- sig_;
           incr i)
         t.visited;
       a);
    s_bugs = List.rev_map (fun key -> Hashtbl.find t.bugs key) t.bug_order;
    s_executions = t.executions;
    s_total_steps = t.total_steps;
    s_max_steps = t.max_steps;
    s_max_blocks = t.max_blocks;
    s_max_preemptions = t.max_preemptions;
    s_max_threads = t.max_threads;
    s_complete = t.complete;
    s_growth = t.growth;
    s_bound_coverage = t.bound_coverage;
    s_bound_executions = t.bound_executions;
  }

let restore opts s =
  let t = create opts in
  Array.iter (fun sig_ -> Hashtbl.replace t.visited sig_ ()) s.s_visited;
  List.iter
    (fun (b : Sresult.bug) ->
      Hashtbl.replace t.bugs b.Sresult.key b;
      t.bug_order <- b.Sresult.key :: t.bug_order)
    s.s_bugs;
  t.executions <- s.s_executions;
  t.total_steps <- s.s_total_steps;
  t.max_steps <- s.s_max_steps;
  t.max_blocks <- s.s_max_blocks;
  t.max_preemptions <- s.s_max_preemptions;
  t.max_threads <- s.s_max_threads;
  t.complete <- s.s_complete;
  t.growth <- s.s_growth;
  t.bound_coverage <- s.s_bound_coverage;
  t.bound_executions <- s.s_bound_executions;
  t

let snapshot_complete s = s.s_complete

let snapshot_bugs s = s.s_bugs

let snapshot_executions s = s.s_executions

let snapshot_steps s = s.s_total_steps

let snapshot_states s = Array.length s.s_visited

(* The format-v1 snapshot layout (before the per-bound execution counts
   grew the record): identical except for the missing final
   [s_bound_executions] field.  [Checkpoint.load] unmarshals v1 payloads
   at this type — structural layout is all [Marshal] cares about — and
   upgrades them here. *)
type snapshot_v1 = {
  v1_visited : int64 array;
  v1_bugs : Sresult.bug list;
  v1_executions : int;
  v1_total_steps : int;
  v1_max_steps : int;
  v1_max_blocks : int;
  v1_max_preemptions : int;
  v1_max_threads : int;
  v1_complete : bool;
  v1_growth : (int * int) list;
  v1_bound_coverage : (int * int) list;
}

let snapshot_of_v1 v =
  {
    s_visited = v.v1_visited;
    s_bugs = v.v1_bugs;
    s_executions = v.v1_executions;
    s_total_steps = v.v1_total_steps;
    s_max_steps = v.v1_max_steps;
    s_max_blocks = v.v1_max_blocks;
    s_max_preemptions = v.v1_max_preemptions;
    s_max_threads = v.v1_max_threads;
    s_complete = v.v1_complete;
    s_growth = v.v1_growth;
    s_bound_coverage = v.v1_bound_coverage;
    s_bound_executions = [];
  }

(* --- parallel merge ------------------------------------------------------ *)

(* Counter sums saturate at [max_int]: a long parallel campaign summing
   per-worker totals must degrade to a pinned counter, never wrap to a
   negative count (both operands are known non-negative). *)
let sat_add a b =
  let s = a + b in
  if s < 0 then max_int else s

(* Fold one worker's learning into the master accumulator: union of visited
   states, saturating sums of the execution/step counters, max of the
   maxima.  Bugs, growth curves and bound curves are deliberately NOT
   merged here — the parallel executor owns those, because making them
   deterministic requires sorting across all workers of a bound, not
   pairwise folding.  Limits are not re-checked: merging happens at a
   barrier, where the caller decides whether to stop. *)
let merge_stats t (s : snapshot) =
  Array.iter (fun sig_ -> Hashtbl.replace t.visited sig_ ()) s.s_visited;
  t.executions <- sat_add t.executions s.s_executions;
  t.total_steps <- sat_add t.total_steps s.s_total_steps;
  t.max_steps <- max t.max_steps s.s_max_steps;
  t.max_blocks <- max t.max_blocks s.s_max_blocks;
  t.max_preemptions <- max t.max_preemptions s.s_max_preemptions;
  t.max_threads <- max t.max_threads s.s_max_threads

let mark_growth t =
  t.growth <- (t.executions, Hashtbl.length t.visited) :: t.growth

let forge_counts s ~executions ~total_steps =
  { s with s_executions = executions; s_total_steps = total_steps }

let result t ~strategy =
  {
    Sresult.strategy;
    executions = t.executions;
    distinct_states = Hashtbl.length t.visited;
    bugs = List.rev_map (fun key -> Hashtbl.find t.bugs key) t.bug_order;
    max_steps = t.max_steps;
    max_blocks = t.max_blocks;
    max_preemptions = t.max_preemptions;
    max_threads = t.max_threads;
    complete = t.complete;
    stop_reason = (if t.complete then None else t.stop_reason);
    growth = Array.of_list (List.rev t.growth);
    bound_coverage = Array.of_list (List.rev t.bound_coverage);
    bound_executions = Array.of_list (List.rev t.bound_executions);
    total_steps = t.total_steps;
  }

(* --- wire codec ----------------------------------------------------------- *)

(* JSON for the distributed protocol: a worker ships its whole snapshot —
   including the visited-signature set, so the coordinator's
   [merge_stats] computes the same distinct-state union a shared-memory
   barrier would.  Signatures are 64-bit, JSON numbers are not, so they
   travel as decimal strings. *)

module J = Icb_obs.Json

let bug_to_json (b : Sresult.bug) =
  J.Obj
    [
      ("key", J.String b.Sresult.key);
      ("msg", J.String b.Sresult.msg);
      ("schedule", J.List (List.map (fun t -> J.Int t) b.Sresult.schedule));
      ("preemptions", J.Int b.Sresult.preemptions);
      ("context_switches", J.Int b.Sresult.context_switches);
      ("depth", J.Int b.Sresult.depth);
      ("execution", J.Int b.Sresult.execution);
    ]

let pairs_to_json l =
  J.List (List.map (fun (a, b) -> J.List [ J.Int a; J.Int b ]) l)

let snapshot_to_json (s : snapshot) =
  J.Obj
    [
      ( "visited",
        J.List
          (Array.to_list
             (Array.map (fun v -> J.String (Int64.to_string v)) s.s_visited))
      );
      ("bugs", J.List (List.map bug_to_json s.s_bugs));
      ("executions", J.Int s.s_executions);
      ("total_steps", J.Int s.s_total_steps);
      ("max_steps", J.Int s.s_max_steps);
      ("max_blocks", J.Int s.s_max_blocks);
      ("max_preemptions", J.Int s.s_max_preemptions);
      ("max_threads", J.Int s.s_max_threads);
      ("complete", J.Bool s.s_complete);
      ("growth", pairs_to_json s.s_growth);
      ("bound_coverage", pairs_to_json s.s_bound_coverage);
      ("bound_executions", pairs_to_json s.s_bound_executions);
    ]

let ( let* ) = Result.bind

let field j key =
  match J.find j key with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "snapshot: missing field %S" key)

let as_int key = function
  | J.Int i -> Ok i
  | _ -> Error (Printf.sprintf "snapshot: field %S is not an int" key)

let int_field j key =
  let* v = field j key in
  as_int key v

let as_list key = function
  | J.List l -> Ok l
  | _ -> Error (Printf.sprintf "snapshot: field %S is not a list" key)

let list_field j key =
  let* v = field j key in
  as_list key v

let map_result f l =
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    (Ok []) l
  |> Result.map List.rev

let pairs_of_json key j =
  let* l = as_list key j in
  map_result
    (function
      | J.List [ J.Int a; J.Int b ] -> Ok (a, b)
      | _ -> Error (Printf.sprintf "snapshot: field %S is not int pairs" key))
    l

let bug_of_json j =
  let str key =
    let* v = field j key in
    match v with
    | J.String s -> Ok s
    | _ -> Error (Printf.sprintf "snapshot: bug field %S is not a string" key)
  in
  let* key = str "key" in
  let* msg = str "msg" in
  let* sched = list_field j "schedule" in
  let* schedule = map_result (as_int "schedule") sched in
  let* preemptions = int_field j "preemptions" in
  let* context_switches = int_field j "context_switches" in
  let* depth = int_field j "depth" in
  let* execution = int_field j "execution" in
  Ok
    {
      Sresult.key;
      msg;
      schedule;
      preemptions;
      context_switches;
      depth;
      execution;
    }

let snapshot_of_json j : (snapshot, string) result =
  let* visited = list_field j "visited" in
  let* visited =
    map_result
      (function
        | J.String s -> (
          match Int64.of_string_opt s with
          | Some v -> Ok v
          | None -> Error "snapshot: bad visited signature")
        | _ -> Error "snapshot: visited entries must be strings")
      visited
  in
  let* bugs = list_field j "bugs" in
  let* bugs = map_result bug_of_json bugs in
  let* executions = int_field j "executions" in
  let* total_steps = int_field j "total_steps" in
  let* max_steps = int_field j "max_steps" in
  let* max_blocks = int_field j "max_blocks" in
  let* max_preemptions = int_field j "max_preemptions" in
  let* max_threads = int_field j "max_threads" in
  let* complete =
    let* v = field j "complete" in
    match v with
    | J.Bool b -> Ok b
    | _ -> Error "snapshot: field \"complete\" is not a bool"
  in
  let* growth = field j "growth" in
  let* growth = pairs_of_json "growth" growth in
  let* bound_coverage = field j "bound_coverage" in
  let* bound_coverage = pairs_of_json "bound_coverage" bound_coverage in
  let* bound_executions = field j "bound_executions" in
  let* bound_executions = pairs_of_json "bound_executions" bound_executions in
  Ok
    {
      s_visited = Array.of_list visited;
      s_bugs = bugs;
      s_executions = executions;
      s_total_steps = total_steps;
      s_max_steps = max_steps;
      s_max_blocks = max_blocks;
      s_max_preemptions = max_preemptions;
      s_max_threads = max_threads;
      s_complete = complete;
      s_growth = growth;
      s_bound_coverage = bound_coverage;
      s_bound_executions = bound_executions;
    }
