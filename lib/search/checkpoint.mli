(** On-disk checkpoints: everything needed to stop an exploration and
    resume it in another process.

    The search frontier is stored as replayable schedule prefixes rather
    than marshaled engine states, so a checkpoint works for both the
    stateful machine engine and the continuation-based CHESS engine — the
    resuming strategy replays each prefix through [Engine.S.step].
    Checkpoints are therefore tied to the program being tested: resuming
    against a different (or nondeterministically changed) program is
    detected when a prefix fails to replay.

    Files carry a magic header, a format version and a payload digest;
    writes are atomic (temp file + rename), so a killed writer never
    leaves a corrupt file under the checkpoint's name, and any truncated
    or damaged file is rejected with {!Corrupt} rather than a crash or a
    silently wrong resume.

    The current format is v3: a strategy-agnostic frontier — a strategy
    tag, its parameters, a round counter and the work/deferred schedule
    prefixes ({!v3}).  v1 and v2 files (ICB and random-walk only) are
    still read and upgraded in memory ({!to_v3}); future versions are
    rejected, never guessed at. *)

type v3 = {
  v3_tag : string;
      (** strategy family: ["icb"], ["dfs"], ["db"], ["idfs"],
          ["random"], ["pct"], ["most-enabled"], ["vb"], ["tb"],
          ["icb-vb"] *)
  v3_params : (string * string) list;
      (** the strategy's parameters as strings (["max_bound"], ["cache"],
          ["seed"], ...), plus any round-local progress it must carry
          across a kill *)
  v3_round : int;
      (** strategy-interpreted: ICB's context bound, iterative DFS's
          current depth bound, a random walk's next walk index, ... *)
  v3_work : (int list * int) list;
      (** (schedule prefix, payload) — the current round's pending items.
          The payload is the thread to run from the replayed state, [-1]
          for "visit the replayed state itself", or a walk index for
          randomized strategies. *)
  v3_next : (int list * int) list;  (** deferred to the next round *)
}

type frontier =
  | Icb_frontier of {
      bound : int;
      work : (int list * int) list;
      next : (int list * int) list;
      max_bound : int option;
      cache : bool;
      cache_keys : (int64 * int) list;
    }
      (** legacy: only read back from v1/v2 files, upgraded by {!to_v3} *)
  | Random_frontier of { seed : int64; rng_state : int64 }  (** legacy *)
  | V3 of v3

type t = {
  strategy : string;                (** [Explore.strategy_name] at save time *)
  meta : (string * string) list;
      (** caller-owned provenance (the CLI stores how to rebuild the
          program: model name or source path, granularity, bound) *)
  collector : Collector.snapshot;
  frontier : frontier;
}

exception Corrupt of string
(** The file is not a checkpoint, is a future format version, is
    truncated, or fails its checksum.  The message says which and names
    the file. *)

val save : path:string -> t -> unit
(** Atomic write: marshal to a temp file in the same directory, then
    rename over [path].  Always writes the current format version. *)

val load : string -> t
(** Raises {!Corrupt} on anything that is not a complete, intact
    checkpoint of a readable format version (1, 2 or 3).  v1/v2 payloads
    are upgraded in memory; the returned frontier may still be a legacy
    constructor — call {!to_v3} before interpreting it. *)

val to_v3 : t -> v3
(** The frontier in current form, upgrading the legacy constructors: an
    ICB frontier maps bound/work/next across directly (dropping the cache
    keys — a resumed cache starts cold and merely re-explores a little);
    a random-walk frontier drops the sequential RNG state and positions
    the per-walk stream at the collector's execution count. *)

val meta_find : t -> string -> string option

(** {2 Wall-clock timing}

    The driver stamps cumulative timing into [v3_params] at every save:
    [elapsed_key] maps to total exploration seconds summed across every
    interrupted run of the search, [bound_times_key] to a per-round
    breakdown.  Being string params they extend v3 compatibly (no
    format bump; older readers ignore them, older files report none) —
    and they are the only nondeterministic fields a checkpoint carries,
    so telemetry-neutrality comparisons normalize exactly these two
    keys away. *)

val elapsed_key : string
val bound_times_key : string

val elapsed : t -> float option
(** Cumulative exploration seconds across interruptions, when the
    writer recorded them. *)

val bound_times : t -> (int * float) list
(** Seconds spent per strategy round (ICB: per context bound). *)

val encode_bound_times : (int * float) list -> string
(** The ["round:secs,..."] param encoding ({!decode_bound_times} reads
    it back; seconds carry millisecond precision). *)

val decode_bound_times : string -> (int * float) list

val describe : t -> string
(** One human-readable line: strategy, round, frontier sizes, and
    cumulative exploration time when recorded. *)
