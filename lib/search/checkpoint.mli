(** On-disk checkpoints: everything needed to stop an exploration and
    resume it in another process.

    The search frontier is stored as replayable schedule prefixes rather
    than marshaled engine states, so a checkpoint works for both the
    stateful machine engine and the continuation-based CHESS engine — the
    resuming strategy replays each prefix through [Engine.S.step].
    Checkpoints are therefore tied to the program being tested: resuming
    against a different (or nondeterministically changed) program is
    detected when a prefix fails to replay.

    Files carry a magic header, a format version and a payload digest;
    writes are atomic (temp file + rename), so a killed writer never
    leaves a corrupt file under the checkpoint's name, and any truncated
    or damaged file is rejected with {!Corrupt} rather than a crash or a
    silently wrong resume.  The format version is bumped on any
    incompatible change; older versions are rejected, never guessed at. *)

type frontier =
  | Icb_frontier of {
      bound : int;                    (** the context bound being drained *)
      work : (int list * int) list;
          (** (schedule prefix, tid to run next) — this bound's queue *)
      next : (int list * int) list;   (** deferred to [bound + 1] *)
      max_bound : int option;
      cache : bool;
      cache_keys : (int64 * int) list;
    }
  | Random_frontier of { seed : int64; rng_state : int64 }

type t = {
  strategy : string;                (** [Explore.strategy_name] at save time *)
  meta : (string * string) list;
      (** caller-owned provenance (the CLI stores how to rebuild the
          program: model name or source path, granularity, bound) *)
  collector : Collector.snapshot;
  frontier : frontier;
}

exception Corrupt of string
(** The file is not a checkpoint, is a future format version, is
    truncated, or fails its checksum.  The message says which and names
    the file. *)

val save : path:string -> t -> unit
(** Atomic write: marshal to a temp file in the same directory, then
    rename over [path]. *)

val load : string -> t
(** Raises {!Corrupt} on anything that is not a complete, intact
    checkpoint of the current format version. *)

val meta_find : t -> string -> string option

val describe : t -> string
(** One human-readable line: strategy, bound, frontier sizes. *)
