(** Mutable accumulator shared by all search strategies: distinct-state
    accounting, execution counting, bug deduplication, growth curves and
    limit enforcement. *)

(** A live snapshot of the search, handed to [on_progress] after every
    completed execution; drive heartbeat displays from it. *)
type progress = {
  p_executions : int;
  p_states : int;
  p_bugs : int;
  p_elapsed : float;   (** seconds since the collector was created *)
  p_bound : int option;(** ICB's current context bound, when applicable *)
  p_frontier : int option;
      (** work items seeding the current round, when the driver noted it
          ({!note_frontier}) *)
}

type options = {
  max_executions : int option;
  max_states : int option;
  max_total_steps : int option;
  deadline : float option;
      (** absolute wall-clock deadline ([Unix.gettimeofday] scale); when it
          passes, the search stops with a partial result rather than
          running unbounded — see {!deadline_in} *)
  deadlock_is_error : bool;
  stop_at_first_bug : bool;
  terminal_states_only : bool;
      (** count only the state at the end of each execution (the paper's
          Section 4.3 stateless-coverage convention for Figures 2, 5 and
          6) instead of every visited state *)
  on_progress : (progress -> unit) option;
      (** called after every completed execution; throttle on the caller's
          side if the display is expensive *)
  events : Icb_obs.Emit.t;
      (** telemetry emitter for [Execution_done]/[Bug_found]; the default
          {!Icb_obs.Emit.null} costs one branch per execution.  Callers
          normally leave this alone and pass [?telemetry] to the search
          entry points, which install per-worker emitters here. *)
}

val default_options : options
(** No limits, deadlocks are errors, keep searching after a bug. *)

val deadline_in : float -> float
(** [deadline_in secs] is the absolute deadline [secs] seconds from now,
    ready to store in [options.deadline]. *)

exception Stop
(** Raised when a limit fires or [stop_at_first_bug] triggers; strategies
    let it propagate to their driver, which converts it into a
    [complete = false] result carrying the {!Sresult.stop_reason}. *)

type t

val create : options -> t

val touch : t -> int64 -> unit
(** Record a reached state by signature.  Raises {!Stop} when the state or
    step limit is hit, or (polled every 32 steps) the deadline passed. *)

val seen_states : t -> int

val executions : t -> int

val note_bound : t -> int -> unit
(** ICB: the bound now being explored, surfaced in {!progress} and
    stamped on [Execution_done] telemetry events. *)

val note_frontier : t -> int -> unit
(** The number of items seeding the current round, surfaced as
    [progress.p_frontier]; the driver notes it at each round start. *)

(** End-of-execution record: engine measurements of the finished (or
    truncated) execution. *)
type execution_end = {
  depth : int;
  blocks : int;
  preemptions : int;
  threads : int;
  schedule : int list;
  signature : int64;
  status : Engine.status;   (** [Running] means truncated by a depth bound *)
}

val end_execution : t -> execution_end -> unit

val record_bound : t -> int -> unit
(** ICB: snapshot coverage (distinct states and cumulative executions)
    after completing the given context bound. *)

val set_complete : t -> unit

val note_stop : t -> Sresult.stop_reason -> unit
(** Record why the search stopped without raising {!Stop} — the parallel
    executor stops cooperatively at work-item boundaries instead of
    unwinding.  The first recorded reason wins. *)

val total_steps : t -> int

val elapsed : t -> float
(** Seconds since the collector was created (or restored). *)

val bug_count : t -> int

val has_bug : t -> string -> bool

val absorb_bug : t -> Sresult.bug -> unit
(** Add a bug found by another collector (a parallel worker), deduplicating
    by key; never raises {!Stop} — the caller enforces
    [stop_at_first_bug] at its own granularity. *)

val mark_growth : t -> unit
(** Append a (executions so far, distinct states) point to the growth
    curve; the parallel executor calls this at each bound barrier, where
    the serial collector would have recorded per-execution points. *)

(** {2 Checkpointable state}

    Everything the accumulator has learned, as plain marshal-safe data.
    Options (limits, callbacks) are not part of a snapshot: the resuming
    caller supplies fresh ones. *)

type snapshot

val snapshot : t -> snapshot

val restore : options -> snapshot -> t
(** A collector that continues exactly where the snapshotted one stopped:
    same visited set, bug list, counters and curves. *)

val snapshot_complete : snapshot -> bool
(** The snapshotted search had already exhausted its space. *)

val snapshot_bugs : snapshot -> Sresult.bug list
(** Bugs in discovery order. *)

val snapshot_executions : snapshot -> int

val snapshot_steps : snapshot -> int

val snapshot_states : snapshot -> int
(** Distinct states the snapshotted collector recorded. *)

val snapshot_to_json : snapshot -> Icb_obs.Json.t
(** The wire form used by the distributed protocol: everything the
    snapshot holds — including the visited-signature set, as decimal
    strings (JSON numbers are not 64-bit) — so the receiving side's
    {!merge_stats} computes the same distinct-state union a
    shared-memory barrier would. *)

val snapshot_of_json : Icb_obs.Json.t -> (snapshot, string) result

type snapshot_v1
(** The snapshot layout written by format-v1 checkpoints (no per-bound
    execution counts).  Only {!Checkpoint.load} unmarshals values at this
    type. *)

val snapshot_of_v1 : snapshot_v1 -> snapshot
(** Upgrade a v1 snapshot; the missing per-bound execution curve becomes
    empty. *)

val merge_stats : t -> snapshot -> unit
(** Fold a parallel worker's snapshot into this (master) collector: union
    of visited states, saturating sums of the execution and step counters
    (they pin at [max_int] rather than wrapping negative), max of the
    per-execution maxima.  Bugs and the growth/bound curves are NOT
    merged: deterministic bug merging needs a sort across all workers of a
    bound, which the parallel executor owns ({!absorb_bug},
    {!mark_growth}, {!record_bound}).  No limit is re-checked and {!Stop}
    is never raised. *)

val forge_counts : snapshot -> executions:int -> total_steps:int -> snapshot
(** A copy of the snapshot with the summed counters replaced; test support
    for the saturation behaviour of {!merge_stats}. *)

val result : t -> strategy:string -> Sresult.t
