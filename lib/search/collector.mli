(** Mutable accumulator shared by all search strategies: distinct-state
    accounting, execution counting, bug deduplication, growth curves and
    limit enforcement. *)

(** A live snapshot of the search, handed to [on_progress] after every
    completed execution; drive heartbeat displays from it. *)
type progress = {
  p_executions : int;
  p_states : int;
  p_bugs : int;
  p_elapsed : float;   (** seconds since the collector was created *)
  p_bound : int option;(** ICB's current context bound, when applicable *)
}

type options = {
  max_executions : int option;
  max_states : int option;
  max_total_steps : int option;
  deadline : float option;
      (** absolute wall-clock deadline ([Unix.gettimeofday] scale); when it
          passes, the search stops with a partial result rather than
          running unbounded — see {!deadline_in} *)
  deadlock_is_error : bool;
  stop_at_first_bug : bool;
  terminal_states_only : bool;
      (** count only the state at the end of each execution (the paper's
          Section 4.3 stateless-coverage convention for Figures 2, 5 and
          6) instead of every visited state *)
  on_progress : (progress -> unit) option;
      (** called after every completed execution; throttle on the caller's
          side if the display is expensive *)
}

val default_options : options
(** No limits, deadlocks are errors, keep searching after a bug. *)

val deadline_in : float -> float
(** [deadline_in secs] is the absolute deadline [secs] seconds from now,
    ready to store in [options.deadline]. *)

exception Stop
(** Raised when a limit fires or [stop_at_first_bug] triggers; strategies
    let it propagate to their driver, which converts it into a
    [complete = false] result carrying the {!Sresult.stop_reason}. *)

type t

val create : options -> t

val touch : t -> int64 -> unit
(** Record a reached state by signature.  Raises {!Stop} when the state or
    step limit is hit, or (polled every 32 steps) the deadline passed. *)

val seen_states : t -> int

val executions : t -> int

val note_bound : t -> int -> unit
(** ICB: the bound now being explored, surfaced in {!progress}. *)

(** End-of-execution record: engine measurements of the finished (or
    truncated) execution. *)
type execution_end = {
  depth : int;
  blocks : int;
  preemptions : int;
  threads : int;
  schedule : int list;
  signature : int64;
  status : Engine.status;   (** [Running] means truncated by a depth bound *)
}

val end_execution : t -> execution_end -> unit

val record_bound : t -> int -> unit
(** ICB: snapshot coverage after completing the given context bound. *)

val set_complete : t -> unit

(** {2 Checkpointable state}

    Everything the accumulator has learned, as plain marshal-safe data.
    Options (limits, callbacks) are not part of a snapshot: the resuming
    caller supplies fresh ones. *)

type snapshot

val snapshot : t -> snapshot

val restore : options -> snapshot -> t
(** A collector that continues exactly where the snapshotted one stopped:
    same visited set, bug list, counters and curves. *)

val snapshot_complete : snapshot -> bool
(** The snapshotted search had already exhausted its space. *)

val result : t -> strategy:string -> Sresult.t
