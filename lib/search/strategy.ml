(* The first-class strategy interface: every search strategy — ICB, the
   DFS family, sleep sets, PCT, most-enabled, random walk — is a module
   of type [S], and one generic driver ([Driver.run]) executes any of
   them, serially or across OCaml domains, with checkpoint/resume.

   The core idea is an explicit frontier of *items*.  An item is a
   replayable schedule prefix plus a small payload — the same
   representation checkpoints and the parallel executor have always used
   for ICB work items — optionally carrying the live engine state so the
   in-process fast path skips the replay.  A strategy seeds the frontier
   ([roots]), consumes one item at a time ([expand], pushing follow-up
   items into the current round or deferring them to the next), and
   decides at each round barrier whether to stop or continue
   ([after_round]).  Serialization is [to_prefixes]/[of_prefixes]: the
   frontier as plain (schedule prefix, payload) pairs inside a
   {!Checkpoint.v3} record.

   Rounds are the generalization of ICB's context bounds: ICB defers
   preempting branches to the next round, iterative deepening starts a
   fresh root per depth bound, randomized strategies hand out batches of
   walk indices.  Single-phase strategies (plain DFS, most-enabled) run
   as one round.  The driver guarantees a barrier between rounds — in
   parallel mode that is the determinism barrier where worker results
   merge. *)

type 's item = {
  i_sched : int list;  (* replayable schedule prefix *)
  i_payload : int;     (* tid to run, [visit], or a walk index *)
  i_state : 's option;
      (* the prefix's state, when already materialized; never serialized,
         and stripped when an item crosses domains without
         [share_states] *)
}

(* Payload marker: don't step anywhere — expand the replayed state
   itself.  Used for DFS-family nodes and search roots. *)
let visit = -1

let prefix_of it = (it.i_sched, it.i_payload)

(* --- shared-variable metadata ------------------------------------------- *)

(* The variable-bounding strategies need to know which shared variables a
   model has and how hot each one is.  Engines do not expose that — their
   states only surface variables through step footprints — so the caller
   supplies it out of band as a small context record: [Icb.run] derives
   it statically from the compiled program ([Varmeta]), the CHESS engine
   from one profiling execution of the test body.  Strategies that do not
   bound variables ignore it entirely. *)

type svar = {
  sv_key : string;   (* stable encoding of the variable, see [key_of_var] *)
  sv_name : string;  (* human name for reports and docs *)
  sv_weight : int;   (* ranking weight; higher = hotter *)
}

type env = { env_svars : svar list }  (* ranked, heaviest first *)

let empty_env = { env_svars = [] }

(* Element-index-insensitive so an array is one variable and the heap's
   object-wide [Hcell (addr, -1)] pseudo-variable matches its cells. *)
let key_of_var : Icb_machine.Interp.var_id -> string = function
  | Icb_machine.Interp.Gvar (gid, _) -> Printf.sprintf "g%d" gid
  | Icb_machine.Interp.Svar (sid, _) -> Printf.sprintf "s%d" sid
  | Icb_machine.Interp.Hcell (addr, _) -> Printf.sprintf "h%d" addr

let env_of_prog prog =
  {
    env_svars =
      List.map
        (fun (v : Icb_machine.Varmeta.svar) ->
          {
            sv_key = key_of_var v.Icb_machine.Varmeta.v_var;
            sv_name = v.Icb_machine.Varmeta.v_name;
            sv_weight = v.Icb_machine.Varmeta.v_count;
          })
        (Icb_machine.Varmeta.ranked prog);
  }

(* What [expand] may do, wired up by the driver per worker. *)
type 's ctx = {
  c_col : Collector.t;  (* this worker's collector *)
  c_push : 's item -> unit;
      (* more work for the *current* round (this worker's queue) *)
  c_defer : 's item -> unit;  (* work for the *next* round *)
  c_materialize : 's item -> 's option;
      (* the item's state: carried live, or its prefix replayed.  [None]
         means the prefix no longer replays and the failure was already
         handled (contained as a bug in parallel mode; in serial mode the
         driver raises [Invalid_argument] instead of returning). *)
}

module type S = sig
  type state

  val name : string
  (** For {!Sresult.t.strategy}, e.g. ["icb:3"]. *)

  val tag : string
  (** Stable checkpoint tag, e.g. ["icb"]; see {!Checkpoint.v3}. *)

  val checkpointable : bool
  (** Whether the frontier serializes.  [false] (sleep-set DFS: the sleep
      sets are footprint closures of the path) makes the driver reject
      [checkpoint_out]/[resume_from] up front. *)

  val shardable : bool
  (** Whether items may be distributed across domains.  [false]
      (most-enabled's global priority queue, sleep-set DFS) makes the
      driver reject [domains > 1]. *)

  val discipline : [ `Fifo | `Lifo | `Rank ]
  (** Serial pop order within a round: queue (ICB, randomized batches),
      stack (the DFS family — preserves the recursive exploration order
      exactly), or best-first by {!rank} (most-enabled).  Parallel
      workers always pop their own deque front-first and steal from
      victims' backs; strategies that need a global order are not
      shardable. *)

  val atomic_items : bool
  (** An item records at most one execution and is finished once it has
      recorded it.  Lets the serial driver skip the conservative
      re-enqueue of the in-flight item when a limit fires exactly at that
      execution's end — a resumed randomized walk then repeats no walk. *)

  type wstate
  (** Per-worker scratch state: cache tables, truncation counters,
      per-round maxima.  Created once per run and per worker; merged or
      reset by {!after_round}. *)

  val wstate : unit -> wstate

  val roots :
    (module Engine.S with type state = state) ->
    wstate ->
    Collector.t ->
    state item list
  (** Seed a fresh search (not called on resume): touch the initial
      state, finish trivially terminal programs, return round 0.  An
      empty list means the space is already exhausted.  The [wstate] is
      worker 0's (most-enabled seeds its cache with the root); shardable
      strategies must not depend on it. *)

  val expand :
    (module Engine.S with type state = state) ->
    wstate ->
    state ctx ->
    state item ->
    unit
  (** Process one item: materialize, step/walk, record executions via the
      ctx collector, push or defer follow-ups.  [Collector.Stop] may
      escape (serial mode — the driver checkpoints and stops); any other
      exception escaping is a driver-level failure, engine crashes having
      already been contained by [Search_core.step_guarded]. *)

  val rank : (module Engine.S with type state = state) -> state item -> int
  (** Priority under the [`Rank] discipline — higher pops first; ties pop
      FIFO.  Items are materialized before insertion, so [i_state] is
      available. *)

  val round : unit -> int
  (** The current round counter, for progress display and
      {!Checkpoint.v3.v3_round}. *)

  val after_round :
    Collector.t ->
    wstates:wstate array ->
    deferred:state item list ->
    [ `Round of state item list | `Complete | `Bounded ]
  (** The round barrier: every item of the round was processed (no limit
      fired), [deferred] holds the items handed to {!ctx.c_defer} (plus a
      resumed checkpoint's carried-over deferred items, first).  Merge or
      reset the worker states, record per-round coverage, and either
      continue with the next round's items, declare the space exhausted
      ([`Complete]), or stop at the strategy's own horizon ([`Bounded]:
      ICB's max bound, a depth bound that truncated paths, a randomized
      strategy's execution cap — [complete] stays false, with no stop
      reason). *)

  val to_prefixes :
    wstates:wstate array ->
    work:(int list * int) list ->
    next:(int list * int) list ->
    Checkpoint.v3
  (** Serialize the frontier: [work] and [next] are the stripped pending
      and deferred items (the driver includes the in-flight item when a
      limit interrupted an expansion mid-way).  [wstates] lets a strategy
      persist round-local progress that lives per worker (iterative
      DFS's truncation count, PCT's depth estimate); per-worker caches
      are deliberately not persisted. *)

  val of_prefixes :
    Collector.t -> Checkpoint.v3 -> (int list * int) list * (int list * int) list
  (** Restore internal state (round counter, parameters persisted by
      {!to_prefixes}) from a checkpoint frontier and return the (work,
      deferred-carry) prefixes to seed the driver with.  The collector is
      the restored master — strategies position themselves off its
      counters where the frontier alone is not enough (a v2 random-walk
      frontier carries no walk index). *)
end

(* --- distributed round-local parameter merge ----------------------------- *)

(* A distributed coordinator serializes the round's frontier once
   ([to_prefixes] -> [sent]) and each worker reports its slice back as
   another parameter list.  Configuration keys are identical everywhere;
   the only keys that move during a round are the round-local progress
   counters, and each has one merge law:

     "truncated", "sealed"  per-worker *additive* counters folded into the
                            serialized value on top of a shared base —
                            each report's delta against [sent] sums;
     "k"                    PCT's depth high-water mark — a maximum.

   Any other key keeps the coordinator's sent value, which also covers the
   nondeterministic timing params ([Checkpoint.elapsed_key]) the driver
   stamps after serialization.  The result is exactly the parameter list a
   single [to_prefixes] over the union of the workers' wstates would have
   produced, ready for [of_prefixes] on the coordinator's instance. *)
let merge_params ~sent ~reported =
  let int_of key l ~default =
    match List.assoc_opt key l with
    | Some s -> ( match int_of_string_opt s with Some i -> i | None -> default)
    | None -> default
  in
  List.map
    (fun (key, v) ->
      match key with
      | "truncated" | "sealed" ->
        let base = match int_of_string_opt v with Some i -> i | None -> 0 in
        let total =
          List.fold_left
            (fun acc r -> acc + (int_of key r ~default:base - base))
            base reported
        in
        (key, string_of_int total)
      | "k" ->
        let top =
          List.fold_left
            (fun acc r -> max acc (int_of key r ~default:0))
            (match int_of_string_opt v with Some i -> i | None -> 0)
            reported
        in
        (key, string_of_int top)
      | _ -> (key, v))
    sent
