(** Outcome of one exploration run: the numbers every table and figure of
    the paper is built from. *)

type bug = {
  key : string;          (** stable identity for deduplication *)
  msg : string;
  schedule : int list;   (** replayable schedule exposing the bug *)
  preemptions : int;     (** preemptions in the exposing execution *)
  context_switches : int;(** total context switches (preempting or not) *)
  depth : int;
  execution : int;       (** index of the execution that exposed it *)
}

(** Why an incomplete search stopped early; [None] on a result that simply
    reached its strategy's natural end (or its configured [max_bound]). *)
type stop_reason =
  | Deadline_exceeded    (** [Collector.options.deadline] passed *)
  | State_limit
  | Step_limit
  | Execution_limit
  | First_bug            (** [stop_at_first_bug] fired *)

val stop_reason_string : stop_reason -> string

type t = {
  strategy : string;
  executions : int;           (** completed (or truncated) executions *)
  distinct_states : int;
  bugs : bug list;            (** deduplicated, in discovery order *)
  max_steps : int;            (** paper's K: max execution length seen *)
  max_blocks : int;           (** paper's B: max blocking ops in one execution *)
  max_preemptions : int;      (** paper's c: max preemptions in one execution *)
  max_threads : int;
  complete : bool;            (** the strategy exhausted its search space *)
  stop_reason : stop_reason option;
      (** why the search stopped before exhausting its space *)
  growth : (int * int) array; (** (executions so far, distinct states) after each execution *)
  bound_coverage : (int * int) array;
      (** ICB only: (context bound, distinct states) after completing each bound *)
  bound_executions : (int * int) array;
      (** ICB only: (context bound, cumulative executions) after completing
          each bound — identical between a serial run and a parallel run of
          the same search, which the equivalence tests exploit *)
  total_steps : int;
}

val pp_summary : Format.formatter -> t -> unit
