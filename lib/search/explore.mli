(** The search strategies.

    {!Icb} is the paper's Algorithm 1; the others are the baselines its
    evaluation compares against (unbounded depth-first search,
    depth-bounded DFS, iterative depth-bounding, uniform random walk).

    {2 Resilience}

    Every strategy degrades gracefully: any limit in
    {!Collector.options} — including the wall-clock [deadline] — stops the
    search with a partial result ([complete = false] and a
    {!Sresult.stop_reason}) instead of raising.  An exception escaping an
    engine step (including [Stack_overflow], [Out_of_memory] and
    {!Engine.Nondeterministic_program}) is contained as a replayable
    {!Sresult.bug} carrying the provoking schedule prefix; the search
    continues on the remaining branches.

    Every strategy except {!Sleep_dfs} additionally supports
    checkpoint/resume: pass [?checkpoint_out] to {!run} and the frontier
    (work items as replayable schedule prefixes, the strategy's round
    counter and parameters) plus all coverage counters are written
    atomically every [?checkpoint_every] executions and whenever a limit
    stops the search; {!resume} continues from a loaded {!Checkpoint.t},
    reaching the same bug set an uninterrupted run would.  Requesting
    checkpointing for {!Sleep_dfs} raises [Invalid_argument].

    Each strategy variant selects a {!Strategies} instance (a first-class
    module of type {!Strategy.S}); {!Driver.run} executes it. *)

type strategy =
  | Icb of { max_bound : int option; cache : bool }
      (** iterative context bounding; [max_bound = Some c] stops after
          exploring every execution with at most [c] preemptions *)
  | Dfs of { cache : bool }
  | Bounded_dfs of { depth : int; cache : bool }
      (** the paper's db:N baseline *)
  | Iterative_dfs of { start : int; incr : int; max_depth : int; cache : bool }
      (** iterative deepening over depth bounds *)
  | Random_walk of { seed : int64 }
  | Sleep_dfs
      (** depth-first search with Godefroid-style sleep sets over dynamic
          step footprints — the partial-order reduction the paper names as
          the natural complement to context bounding.  Explores the same
          reachable states as {!Dfs} with (often far) fewer executions. *)
  | Pct of { change_points : int; seed : int64 }
      (** probabilistic concurrency testing (Burckhardt et al., ASPLOS
          2010): randomized priorities with [change_points - 1] random
          demotion points per execution; needs an execution limit *)
  | Most_enabled of { cache : bool }
      (** best-first search preferring states with more enabled threads
          (Groce & Visser's heuristic, cited by the paper) *)
  | Variable_bound of { n : int; cache : bool }
      (** variable bounding (Bindal-Bansal-Lal, see docs/BOUNDS.md): only
          preemption points around the [n] hottest shared variables admit
          preemptions; the preemption *count* is unbounded.  Needs the
          variable ranking from {!run}'s [?env] (resumes restore it from
          the checkpoint) *)
  | Thread_bound of { n : int; cache : bool }
      (** thread bounding: only the [n] lowest-numbered threads (creation
          order, main = 0) may be preempted *)
  | Icb_vb of { n : int; max_bound : int option; cache : bool }
      (** iterated preemption bound composed with variable sealing: ICB's
          round structure, but deferrals only at preemption points around
          the [n] hottest variables — strictly fewer executions per bound
          than {!Icb} *)

val strategy_name : strategy -> string

val needs_env : strategy -> bool
(** Whether the strategy consumes {!Strategy.env}'s shared-variable
    ranking ({!Variable_bound} and {!Icb_vb}).  Callers for which building
    an env costs something (the CHESS engine profiles an execution) gate
    on this. *)

val default_checkpoint_every : int

val run :
  (module Engine.S with type state = 's) ->
  ?options:Collector.options ->
  ?checkpoint_out:string ->
  ?checkpoint_every:int ->
  ?checkpoint_meta:(string * string) list ->
  ?resume_from:Checkpoint.t ->
  ?telemetry:Icb_obs.Telemetry.t ->
  ?domains:int ->
  ?env:Strategy.env ->
  ?cache:bool ->
  ?on_cache_stats:(Replay_cache.stats -> unit) ->
  strategy ->
  Sresult.t
(** Explore the engine's transition system with the given strategy.
    [env] supplies the shared-variable ranking consumed by
    {!Variable_bound} and {!Icb_vb} ({!Strategy.env_of_prog} derives it
    from a compiled program; [Icb.run] passes it automatically); with no
    env a fresh variable-bounded search seals every preemption point.
    Never raises on limit exhaustion — limits simply yield a result with
    [complete = false] and a [stop_reason].

    [domains] (default 1) shards the search across that many OCaml
    domains via {!Driver.run}, sharing this engine module across workers.
    States cross domains only when the engine certifies them as
    restorable snapshots ({!Engine.S.snapshot}, e.g. the persistent
    machine engine); otherwise each worker replays schedule prefixes on
    its own states.  The result is deterministic
    and matches the serial search — see docs/PARALLEL.md for the exact
    guarantees and the [cache] caveat.  Every strategy whose frontier
    shards accepts [domains > 1]: {!Icb}, the DFS family, {!Random_walk},
    {!Pct}, {!Variable_bound}, {!Thread_bound} and {!Icb_vb};
    {!Sleep_dfs} and {!Most_enabled} raise [Invalid_argument].

    [checkpoint_out] (every strategy but {!Sleep_dfs}) writes a
    checkpoint to that path every [checkpoint_every] (default
    {!default_checkpoint_every}) executions, when any limit stops the
    search, and at the end of the run; [checkpoint_meta] is stored
    verbatim for the caller (the CLI records program provenance there).
    [resume_from] restores the collector and frontier of a loaded
    checkpoint; the given strategy must be the checkpoint's own (use
    {!resume} to derive it).  Raises [Invalid_argument] if the strategy
    does not match or does not support checkpointing, or if the
    checkpointed frontier no longer replays on this engine (wrong or
    nondeterministic program).

    [cache] (default [true]) enables the prefix-snapshot replay cache
    (docs/REPLAY_CACHE.md): engines with the {!Engine.S.snapshot}
    capability memoize the state reached at every replayed prefix, states
    ride along on work items across rounds and domains, and
    materializing an item costs only the steps past its longest cached
    ancestor.  [~cache:false] restores the pure stateless discipline —
    every item replays its full prefix from the initial state — which is
    the one-flag way to check a suspected cache divergence; bug sets,
    execution counts and checkpoints are identical either way.
    [on_cache_stats] receives the run's replay accounting (hits, misses,
    steps saved/replayed, summed over workers) in both modes. *)

val resume :
  (module Engine.S with type state = 's) ->
  ?options:Collector.options ->
  ?checkpoint_out:string ->
  ?checkpoint_every:int ->
  ?checkpoint_meta:(string * string) list ->
  ?telemetry:Icb_obs.Telemetry.t ->
  ?domains:int ->
  ?env:Strategy.env ->
  ?cache:bool ->
  Checkpoint.t ->
  Sresult.t
(** Continue a checkpointed search: derives the strategy from the
    checkpoint and calls {!run} with [resume_from].  When
    [checkpoint_meta] is omitted the checkpoint's own metadata is carried
    forward.  [domains] parallelizes the resumed search; serial and
    parallel checkpoints are mutually resumable. *)

val strategy_of_checkpoint : Checkpoint.t -> strategy

val strategy_of_v3 : Checkpoint.v3 -> strategy
(** Rebuild a strategy value from a serialized v3 frontier's tag and
    parameters alone — what {!strategy_of_checkpoint} does after
    upgrading, and what a distributed worker does with the frontier
    slice it receives over the wire.  Raises [Invalid_argument] on an
    unknown tag. *)

val instantiate :
  ?env:Strategy.env ->
  (module Engine.S with type state = 's) ->
  strategy ->
  (module Strategy.S with type state = 's)
(** Build the strategy instance {!run} would execute.  Instances are
    single-use (they hold the run's round state): build one per search.
    Exposed for drivers outside this module — the distributed
    coordinator/worker pair positions instances directly via
    {!Strategy.S.of_prefixes}. *)

val check :
  (module Engine.S with type state = 's) ->
  ?options:Collector.options ->
  ?max_bound:int ->
  ?telemetry:Icb_obs.Telemetry.t ->
  ?domains:int ->
  ?cache:bool ->
  unit ->
  Sresult.bug option
(** Convenience one-call checker: ICB with [stop_at_first_bug]; returns the
    first bug (which ICB guarantees has the minimal number of preemptions
    among all bugs of its kind reachable within the bound). *)

val replay :
  (module Engine.S with type state = 's) -> int list -> 's
(** Run a recorded schedule from the initial state; used to reproduce a
    bug trace.  Raises [Invalid_argument] if the schedule names a thread
    that is not enabled at some point, and lets
    {!Engine.Nondeterministic_program} propagate when a stateless engine
    detects that the program diverged from the recording. *)

val replay_prefix :
  (module Engine.S with type state = 's) -> int list -> 's * int list
(** Like {!replay}, but stops at the first terminal state and returns it
    together with the unconsumed schedule suffix ([[]] when every step
    was taken) — the replay hook behind the repro subsystem's tail
    truncation ({!Icb_repro.Minimize}): the earliest prefix exposing a
    bug is the witness, anything after it is noise.  Raises like
    {!replay} if a pre-terminal step names a disabled thread. *)

(** {2 The textual strategy catalogue}

    One list every accepted [--strategy] spelling comes from: the CLI help
    text, the parse errors and the docs all render it, so they cannot
    drift apart. *)

val strategy_forms : (string * string * string option) list
(** (form, description, argument range), e.g.
    [("vb:N", "variable bounding: ...", Some "N>=1")]. *)

val parse_strategy : seed:int64 -> string -> (strategy, string) result
(** Parse a [--strategy] spelling.  [seed] seeds the randomized
    strategies.  Rejections name the offending spelling and either the
    violated range (["bad strategy: vb:0 — vb:N takes N>=1, got 0"]) or
    the full list of accepted forms with their ranges. *)

(** {2 The strategy registry}

    One representative instance per strategy family, with the properties
    the cross-strategy property suites need — kill/resume equivalence and
    replay determinism iterate this list, so a new strategy added here is
    covered automatically (and one missing from here silently escapes
    them). *)

type registered = {
  reg_name : string;
  reg_strategy : strategy;
  reg_checkpointable : bool;
  reg_shardable : bool;
  reg_exact : bool;
      (** atomic items: kill/resume preserves the execution {e multiset};
          inexact strategies guarantee the bug/state {e sets} only *)
  reg_bounded : bool;
      (** no natural termination: the caller must cap executions *)
}

val registry : ?seed:int64 -> unit -> registered list
