(* The concrete strategies, as first-class {!Strategy.S} instances.

   Each constructor takes the engine module purely as a type witness (the
   instance never steps it — the driver passes each worker's own engine to
   [roots]/[expand]/[rank]) and returns a fresh instance holding that
   run's round state, so instances are single-use.

   Faithfulness notes, enforced by the test suite:
   - ICB reproduces Algorithm 1 exactly: FIFO work queue, preempting
     branches deferred to the next round (= context bound), the optional
     (signature, tid) work-item cache per worker.
   - The DFS family runs as one-step-per-item under the LIFO discipline,
     which replays the recursive implementation's event order exactly
     (step, touch, seen-check, recurse) — growth curves and execution
     counts are identical to the old recursion.
   - Randomized strategies derive an independent SplitMix64 stream per
     walk index from (seed, index), so a walk's schedule depends only on
     its index — that is what makes them shardable and exactly
     resumable. *)

let item ~sched ~payload ~state =
  { Strategy.i_sched = sched; i_payload = payload; i_state = state }

let of_prefix (sched, payload) = item ~sched ~payload ~state:None

let int_param params key ~default =
  match List.assoc_opt key params with
  | Some s -> ( try int_of_string s with Failure _ -> default)
  | None -> default

let bool_param params key ~default =
  match List.assoc_opt key params with
  | Some s -> ( try bool_of_string s with Invalid_argument _ -> default)
  | None -> default

(* One independent, reproducible stream per walk index: SplitMix64 seeded
   by a golden-ratio mix of the user seed and the index.  Walk [i]'s
   schedule is a pure function of (seed, i) — independent of which worker
   runs it, in what order, or across a kill/resume. *)
let walk_rng seed i =
  Icb_util.Rng.create
    (Int64.add seed (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (i + 1))))

(* --- Algorithm 1: iterative context bounding ---------------------------- *)

let icb (type s) (module _ : Engine.S with type state = s) ~max_bound ~cache :
    (module Strategy.S with type state = s) =
  (module struct
    type state = s

    let name = Search_core.icb_strategy_name ~max_bound
    let tag = "icb"
    let checkpointable = true
    let shardable = true
    let discipline = `Fifo
    let atomic_items = false  (* one item explores a whole subtree *)

    (* the paper's optional state-caching table, keyed on the work item;
       per worker, so parallel caching prunes only a worker's own
       revisits (sound, but a cached parallel run may explore more) *)
    type wstate = (int64 * int, unit) Hashtbl.t

    let wstate () = Hashtbl.create 4096
    let bound = ref 0

    let roots (module E : Engine.S with type state = state) _w col =
      Collector.note_bound col !bound;
      let s0 = E.initial () in
      Collector.touch col (E.signature s0);
      match E.status s0 with
      | Engine.Running ->
        List.map
          (fun t -> item ~sched:[] ~payload:t ~state:(Some s0))
          (E.enabled s0)
      | status ->
        Search_core.finish (module E) col s0 status;
        []

    let expand (module E : Engine.S with type state = state) table ctx it =
      (* also on the expanding collector: a parallel worker's local
         collector never sees [roots]/[after_round], and its telemetry
         events must still carry the bound being explored *)
      Collector.note_bound ctx.Strategy.c_col !bound;
      match ctx.Strategy.c_materialize it with
      | None -> ()
      | Some st ->
        let seen st tid =
          cache
          &&
          let k = (E.signature st, tid) in
          Hashtbl.mem table k || (Hashtbl.add table k (); false)
        in
        Search_core.icb_item
          (module E)
          ctx.Strategy.c_col ~seen
          ~defer:(fun st' t ->
            ctx.Strategy.c_defer
              (item ~sched:(E.schedule st') ~payload:t ~state:(Some st')))
          (st, it.Strategy.i_payload)

    let rank _ _ = 0
    let round () = !bound

    let after_round col ~wstates:_ ~deferred =
      Collector.record_bound col !bound;
      if deferred = [] then `Complete
      else
        match max_bound with
        | Some b when !bound >= b ->
          (* every execution with <= b preemptions has been explored *)
          `Bounded
        | Some _ | None ->
          incr bound;
          Collector.note_bound col !bound;
          `Round deferred

    let to_prefixes ~wstates:_ ~work ~next =
      {
        Checkpoint.v3_tag = tag;
        v3_params =
          (match max_bound with
          | None -> [ ("cache", string_of_bool cache) ]
          | Some b ->
            [ ("max_bound", string_of_int b); ("cache", string_of_bool cache) ]);
        v3_round = !bound;
        v3_work = work;
        v3_next = next;
      }

    let of_prefixes col (f : Checkpoint.v3) =
      bound := f.Checkpoint.v3_round;
      Collector.note_bound col !bound;
      (f.Checkpoint.v3_work, f.Checkpoint.v3_next)
  end)

(* --- the depth-first family --------------------------------------------- *)

(* DFS, depth-bounded DFS and iterative deepening share one instance: a
   round explores everything under the current depth bound; the barrier
   decides whether truncation demands a deeper round.  Items are single
   steps — (parent prefix, tid), or [visit] for the root — popped LIFO,
   so the event order matches the recursive formulation exactly. *)
let dfs_family (type s) (module _ : Engine.S with type state = s) ~tag_ ~name_
    ~static ~cache ~first ~next_depth :
    (module Strategy.S with type state = s) =
  (module struct
    type state = s

    let name = name_
    let tag = tag_
    let checkpointable = true
    let shardable = true
    let discipline = `Lifo
    let atomic_items = true  (* at most one [finish] per item, as its
                                last collector-visible action *)

    type wstate = {
      w_seen : (int64, unit) Hashtbl.t;
      mutable w_truncated : int;
    }

    let wstate () = { w_seen = Hashtbl.create 4096; w_truncated = 0 }
    let cur_bound = ref first

    (* truncations observed this round in checkpointed-away phases of the
       run; [after_round] folds the live worker counters on top *)
    let trunc_base = ref 0
    let root = item ~sched:[] ~payload:Strategy.visit ~state:None

    let roots (module _ : Engine.S with type state = state) _w _col = [ root ]

    let seen w st_sig =
      cache
      && (Hashtbl.mem w.w_seen st_sig
         ||
         (Hashtbl.add w.w_seen st_sig ();
          false))

    let expand (module E : Engine.S with type state = state) w ctx it =
      let col = ctx.Strategy.c_col in
      (* visit a newly reached state: finish terminal or truncated
         executions, otherwise push one item per enabled thread (reversed,
         so the first enabled thread pops first under LIFO) *)
      let enter st =
        match E.status st with
        | Engine.Running ->
          if
            match !cur_bound with
            | Some b -> E.depth st >= b
            | None -> false
          then begin
            w.w_truncated <- w.w_truncated + 1;
            Search_core.finish (module E) col st Engine.Running
          end
          else
            List.iter
              (fun t ->
                ctx.Strategy.c_push
                  (item ~sched:(E.schedule st) ~payload:t ~state:(Some st)))
              (List.rev (E.enabled st))
        | status -> Search_core.finish (module E) col st status
      in
      match ctx.Strategy.c_materialize it with
      | None -> ()
      | Some st ->
        if it.Strategy.i_payload = Strategy.visit then begin
          Collector.touch col (E.signature st);
          if not (seen w (E.signature st)) then enter st
        end
        else begin
          match
            Search_core.step_guarded (module E) col st it.Strategy.i_payload
          with
          | None -> ()
          | Some st' ->
            Collector.touch col (E.signature st');
            if not (seen w (E.signature st')) then enter st'
        end

    let rank _ _ = 0
    let round () = match !cur_bound with None -> 0 | Some d -> d

    let after_round _col ~wstates ~deferred:_ =
      let truncated =
        Array.fold_left
          (fun acc w ->
            let n = w.w_truncated in
            w.w_truncated <- 0;
            acc + n)
          !trunc_base wstates
      in
      trunc_base := 0;
      if truncated = 0 then `Complete
      else
        match Option.bind !cur_bound next_depth with
        | Some d' ->
          cur_bound := Some d';
          (* each round gets fresh caches: a state first reached near the
             old bound may have unexplored descendants below the new one *)
          Array.iter (fun w -> Hashtbl.reset w.w_seen) wstates;
          `Round [ root ]
        | None ->
          (* keep the count in the final checkpoint: resuming it must
             re-derive `Bounded, not conclude `Complete *)
          trunc_base := truncated;
          `Bounded

    let to_prefixes ~wstates ~work ~next =
      let truncated =
        Array.fold_left (fun acc w -> acc + w.w_truncated) !trunc_base wstates
      in
      {
        Checkpoint.v3_tag = tag;
        v3_params =
          static
          @ [
              ("cache", string_of_bool cache);
              ("truncated", string_of_int truncated);
            ];
        v3_round = round ();
        v3_work = work;
        v3_next = next;
      }

    let of_prefixes _col (f : Checkpoint.v3) =
      (match !cur_bound with
      | Some _ -> cur_bound := Some f.Checkpoint.v3_round
      | None -> ());
      trunc_base := int_param f.Checkpoint.v3_params "truncated" ~default:0;
      (f.Checkpoint.v3_work, f.Checkpoint.v3_next)
  end)

let dfs (type s) (module E : Engine.S with type state = s) ~cache =
  dfs_family (module E) ~tag_:"dfs" ~name_:"dfs" ~static:[] ~cache ~first:None
    ~next_depth:(fun _ -> None)

let bounded_dfs (type s) (module E : Engine.S with type state = s) ~depth
    ~cache =
  dfs_family (module E)
    ~tag_:"db"
    ~name_:(Printf.sprintf "db:%d" depth)
    ~static:[ ("depth", string_of_int depth) ]
    ~cache ~first:(Some depth)
    ~next_depth:(fun _ -> None)

let iterative_dfs (type s) (module E : Engine.S with type state = s) ~start
    ~incr ~max_depth ~cache =
  dfs_family (module E)
    ~tag_:"idfs"
    ~name_:(Printf.sprintf "idfs:%d" max_depth)
    ~static:
      [
        ("start", string_of_int start);
        ("incr", string_of_int incr);
        ("max_depth", string_of_int max_depth);
      ]
    ~cache ~first:(Some start)
    ~next_depth:(fun d -> if d + incr <= max_depth then Some (d + incr) else None)

(* --- depth-first search with sleep sets --------------------------------- *)

(* Godefroid's sleep sets over dynamic footprints: after fully exploring a
   sibling transition t, later siblings carry t in their sleep set and skip
   it until some dependent step wakes it.  Because the footprints are
   computed by speculative execution at the very state where the sleeping
   step would run, disjointness implies true commutation there (a step
   whose variables the other step does not touch reads the same values and
   takes the same path in either order).  Sleep sets prune redundant
   interleavings only, so the set of reachable states is preserved — a
   property the test suite checks against plain DFS.

   The sleep sets are footprint closures of the whole path, so the
   frontier does not serialize to schedule prefixes and the whole search
   runs as a single item: serial-only, no checkpointing. *)
let sleep_dfs (type s) (module _ : Engine.S with type state = s) :
    (module Strategy.S with type state = s) =
  (module struct
    type state = s

    let name = "sleep-dfs"
    let tag = "sleep-dfs"
    let checkpointable = false
    let shardable = false
    let discipline = `Lifo
    let atomic_items = false

    type wstate = unit

    let wstate () = ()

    let roots (module E : Engine.S with type state = state) _w col =
      let s0 = E.initial () in
      Collector.touch col (E.signature s0);
      [ item ~sched:[] ~payload:Strategy.visit ~state:(Some s0) ]

    let expand (module E : Engine.S with type state = state) () ctx it =
      let col = ctx.Strategy.c_col in
      let rec dfs st (sleep : (int * Engine.Footprint.t) list) =
        match E.status st with
        | Engine.Running ->
          let explored = ref [] in
          List.iter
            (fun t ->
              if not (List.mem_assoc t sleep) then begin
                match E.step_footprint st t with
                | exception Collector.Stop -> raise Collector.Stop
                | exception exn -> Search_core.record_crash (module E) col st t exn
                | fp -> (
                  match Search_core.step_guarded (module E) col st t with
                  | None -> ()
                  | Some st' ->
                    Collector.touch col (E.signature st');
                    let sleep' =
                      List.filter
                        (fun (_, fp_u) -> Engine.Footprint.independent fp fp_u)
                        (sleep @ !explored)
                    in
                    dfs st' sleep';
                    explored := (t, fp) :: !explored)
              end)
            (E.enabled st)
        | status -> Search_core.finish (module E) col st status
      in
      match ctx.Strategy.c_materialize it with
      | None -> ()
      | Some st -> dfs st []

    let rank _ _ = 0
    let round () = 0
    let after_round _col ~wstates:_ ~deferred:_ = `Complete

    let to_prefixes ~wstates:_ ~work:_ ~next:_ =
      invalid_arg "sleep-dfs frontiers do not serialize"

    let of_prefixes _ _ = invalid_arg "sleep-dfs frontiers do not serialize"
  end)

(* --- best-first search by enabled-thread count --------------------------- *)

(* Groce & Visser's structural heuristic (ISSTA 2002), cited by the paper
   as prior heuristic search: prefer frontier states with more enabled
   threads.  The [`Rank] discipline gives the bucket-queue order; the
   global priority queue is what keeps this strategy serial-only. *)
let most_enabled (type s) (module _ : Engine.S with type state = s) ~cache :
    (module Strategy.S with type state = s) =
  (module struct
    type state = s

    let name = "most-enabled"
    let tag = "most-enabled"
    let checkpointable = true
    let shardable = false
    let discipline = `Rank
    let atomic_items = false

    type wstate = (int64, unit) Hashtbl.t

    let wstate () = Hashtbl.create 4096

    let seen table (module E : Engine.S with type state = state) st =
      cache
      &&
      let k = E.signature st in
      Hashtbl.mem table k || (Hashtbl.add table k (); false)

    let roots (module E : Engine.S with type state = state) w col =
      let s0 = E.initial () in
      Collector.touch col (E.signature s0);
      if not (seen w (module E) s0) then
        [ item ~sched:[] ~payload:Strategy.visit ~state:(Some s0) ]
      else []

    let expand (module E : Engine.S with type state = state) w ctx it =
      let col = ctx.Strategy.c_col in
      match ctx.Strategy.c_materialize it with
      | None -> ()
      | Some st -> (
        match E.status st with
        | Engine.Running ->
          List.iter
            (fun t ->
              match Search_core.step_guarded (module E) col st t with
              | None -> ()
              | Some st' ->
                Collector.touch col (E.signature st');
                if not (seen w (module E) st') then
                  ctx.Strategy.c_push
                    (item ~sched:(E.schedule st') ~payload:Strategy.visit
                       ~state:(Some st')))
            (E.enabled st)
        | status -> Search_core.finish (module E) col st status)

    let rank (module E : Engine.S with type state = state) it =
      match it.Strategy.i_state with
      | Some st -> List.length (E.enabled st)
      | None -> 0

    let round () = 0

    let after_round _col ~wstates:_ ~deferred:_ = `Complete

    let to_prefixes ~wstates:_ ~work ~next =
      {
        Checkpoint.v3_tag = tag;
        v3_params = [ ("cache", string_of_bool cache) ];
        v3_round = 0;
        v3_work = work;
        v3_next = next;
      }

    let of_prefixes _col (f : Checkpoint.v3) =
      (f.Checkpoint.v3_work, f.Checkpoint.v3_next)
  end)

(* --- random walk --------------------------------------------------------- *)

(* Uniform restart sampling.  Walks are numbered; walk [i] draws from
   [walk_rng seed i], and a round is a batch of indices — so the walk
   multiset is a pure function of (seed, walk count), shardable across
   domains and exactly resumable.  Without an execution or step limit a
   random walk never stops; the caller's options must bound it, but a
   large default cap guards against looping forever on a
   misconfiguration. *)
let walk_batch = 64

let walk_hard_cap = 1_000_000

let random_walk (type s) (module _ : Engine.S with type state = s) ~seed :
    (module Strategy.S with type state = s) =
  (module struct
    type state = s

    let name = "random"
    let tag = "random"
    let checkpointable = true
    let shardable = true
    let discipline = `Fifo
    let atomic_items = true  (* one walk = one execution *)

    type wstate = unit

    let wstate () = ()
    let next_index = ref 0

    let take_batch () =
      let lo = !next_index in
      let hi = min (lo + walk_batch) walk_hard_cap in
      next_index := hi;
      List.init (hi - lo) (fun k ->
          item ~sched:[] ~payload:(lo + k) ~state:None)

    let roots (module _ : Engine.S with type state = state) _w _col =
      take_batch ()

    let expand (module E : Engine.S with type state = state) () ctx it =
      let col = ctx.Strategy.c_col in
      let rng = walk_rng seed it.Strategy.i_payload in
      let st = ref (E.initial ()) in
      Collector.touch col (E.signature !st);
      let rec walk () =
        match E.status !st with
        | Engine.Running -> (
          let t = Icb_util.Rng.pick rng (E.enabled !st) in
          match Search_core.step_guarded (module E) col !st t with
          | None -> ()
          | Some st' ->
            st := st';
            Collector.touch col (E.signature !st);
            walk ())
        | status -> Search_core.finish (module E) col !st status
      in
      walk ()

    let rank _ _ = 0
    let round () = !next_index

    let after_round col ~wstates:_ ~deferred:_ =
      if Collector.executions col >= walk_hard_cap || !next_index >= walk_hard_cap
      then `Bounded
      else `Round (take_batch ())

    let to_prefixes ~wstates:_ ~work ~next =
      {
        Checkpoint.v3_tag = tag;
        v3_params = [ ("seed", Int64.to_string seed) ];
        v3_round = !next_index;
        v3_work = work;
        v3_next = next;
      }

    let of_prefixes _col (f : Checkpoint.v3) =
      next_index := f.Checkpoint.v3_round;
      if f.Checkpoint.v3_work = [] then
        (* a legacy (v2) frontier carries no walk indices — the collector
           execution count positioned [v3_round]; start the next batch *)
        (List.map Strategy.prefix_of (take_batch ()), [])
      else (f.Checkpoint.v3_work, f.Checkpoint.v3_next)
  end)

(* --- PCT: probabilistic concurrency testing ------------------------------ *)

(* Burckhardt, Kothari, Musuvathi, Nagarakatte (ASPLOS 2010), the
   randomized successor of iterative context bounding from the same group:
   each execution runs threads by randomly assigned priorities, lowering
   the running thread's priority at [change_points - 1] uniformly chosen
   steps.  Any bug of preemption depth d is found with probability at
   least 1/(n * k^(d-1)) per execution.  Like the random walk, execution
   [i] draws from its own derived stream; the step-count estimate [k] that
   scales the change-point distribution updates at round barriers (a
   deterministic max over workers), keeping parallel runs reproducible. *)
let pct (type s) (module _ : Engine.S with type state = s) ~change_points
    ~seed : (module Strategy.S with type state = s) =
  (module struct
    type state = s

    let name = Printf.sprintf "pct:%d" change_points
    let tag = "pct"
    let checkpointable = true
    let shardable = true
    let discipline = `Fifo
    let atomic_items = true

    type wstate = { mutable w_kmax : int }

    let wstate () = { w_kmax = 0 }
    let next_index = ref 0
    let k_estimate = ref 32

    let take_batch () =
      let lo = !next_index in
      let hi = min (lo + walk_batch) walk_hard_cap in
      next_index := hi;
      List.init (hi - lo) (fun k ->
          item ~sched:[] ~payload:(lo + k) ~state:None)

    let roots (module _ : Engine.S with type state = state) _w _col =
      take_batch ()

    let expand (module E : Engine.S with type state = state) w ctx it =
      let col = ctx.Strategy.c_col in
      let rng = walk_rng seed it.Strategy.i_payload in
      let priorities : (int, int) Hashtbl.t = Hashtbl.create 8 in
      (* initial and spawned threads draw a random high priority; change
         points later demote to the low band 1..d-1 *)
      let d = max 1 change_points in
      let priority_of t =
        match Hashtbl.find_opt priorities t with
        | Some p -> p
        | None ->
          let p = d + Icb_util.Rng.int rng 1000 in
          Hashtbl.add priorities t p;
          p
      in
      let change_steps =
        List.init (d - 1) (fun i ->
            (i + 1, 1 + Icb_util.Rng.int rng (max 1 !k_estimate)))
      in
      let st = ref (E.initial ()) in
      Collector.touch col (E.signature !st);
      let steps = ref 0 in
      let rec walk () =
        match E.status !st with
        | Engine.Running -> (
          let en = E.enabled !st in
          let t =
            List.fold_left
              (fun best t ->
                match best with
                | None -> Some t
                | Some b ->
                  if priority_of t > priority_of b then Some t else best)
              None en
            |> Option.get
          in
          incr steps;
          List.iter
            (fun (low, at) ->
              if at = !steps then Hashtbl.replace priorities t low)
            change_steps;
          match Search_core.step_guarded (module E) col !st t with
          | None -> ()  (* crash recorded; this execution is over *)
          | Some st' ->
            st := st';
            Collector.touch col (E.signature !st);
            walk ())
        | status -> Search_core.finish (module E) col !st status
      in
      walk ();
      w.w_kmax <- max w.w_kmax (E.depth !st)

    let rank _ _ = 0
    let round () = !next_index

    let kmax wstates =
      Array.fold_left (fun acc w -> max acc w.w_kmax) !k_estimate wstates

    let after_round col ~wstates ~deferred:_ =
      k_estimate := kmax wstates;
      if Collector.executions col >= walk_hard_cap || !next_index >= walk_hard_cap
      then `Bounded
      else `Round (take_batch ())

    let to_prefixes ~wstates ~work ~next =
      {
        Checkpoint.v3_tag = tag;
        v3_params =
          [
            ("change_points", string_of_int change_points);
            ("seed", Int64.to_string seed);
            ("k", string_of_int (kmax wstates));
          ];
        v3_round = !next_index;
        v3_work = work;
        v3_next = next;
      }

    let of_prefixes _col (f : Checkpoint.v3) =
      next_index := f.Checkpoint.v3_round;
      k_estimate := int_param f.Checkpoint.v3_params "k" ~default:32;
      if f.Checkpoint.v3_work = [] then
        (List.map Strategy.prefix_of (take_batch ()), [])
      else (f.Checkpoint.v3_work, f.Checkpoint.v3_next)
  end)

(* --- variable and thread bounding ---------------------------------------- *)

(* Bindal, Bansal & Lal: instead of bounding *how many* preemptions an
   execution may contain, bound *where* preemptions may happen — only
   around the N hottest shared variables (vb:N), or only against the N
   designated threads (tb:N).  Both reuse Algorithm 1's inner loop with an
   [admit] predicate: a preemption point outside the bound is sealed (its
   preempting branches dropped and counted) instead of deferred.

   [vb]/[tb] explore the whole sealed subspace in one round, depth-first,
   with no limit on the preemption count — the bound is the *where*, not
   the *how many*.  [icb_vb] composes both: ICB's round structure (round =
   context bound) with variable sealing applied to every deferral, so each
   bound costs strictly fewer executions than raw ICB's. *)

let top_var_keys (env : Strategy.env) n =
  List.filteri (fun i _ -> i < n) env.Strategy.env_svars
  |> List.map (fun sv -> sv.Strategy.sv_key)

(* A preemption point admits preemptions iff the thread being switched
   away from would next touch an admitted variable.  Speculative execution
   via the engine's footprint hook; if the engine cannot speculate here we
   conservatively admit (never miss a bug to an optimization). *)
let var_admit (type s) (module E : Engine.S with type state = s) keys st tid =
  match E.step_footprint st tid with
  | exception Collector.Stop -> raise Collector.Stop
  | exception _ -> true
  | fp ->
    Engine.Footprint.Var_set.exists
      (fun v -> List.mem (Strategy.key_of_var v) keys)
      fp.Engine.Footprint.vars

(* vb:N and tb:N share this instance: one round over the sealed subspace.
   Preempting branches go into the *current* round's queue (LIFO: depth
   first), sealed points bump a per-worker counter — folded at the round
   barrier and persisted through checkpoints ("sealed") so exhaustion is
   reported as [`Bounded] whenever anything was sealed, [`Complete] only
   when the bound turned out not to bound anything.  The counter is
   advisory (a killed-and-resumed run may recount seals of re-run items);
   only its zeroness is ever interpreted. *)
let sealed_space (type s) (module _ : Engine.S with type state = s) ~tag_
    ~name_ ~static ~cache ~uses_vars ~init_keys
    ~(mk_admit :
       (module Engine.S with type state = s) ->
       string list ->
       s ->
       int ->
       bool) : (module Strategy.S with type state = s) =
  (module struct
    type state = s

    let name = name_
    let tag = tag_
    let checkpointable = true
    let shardable = true
    let discipline = `Lifo
    let atomic_items = false

    type wstate = {
      w_cache : (int64 * int, unit) Hashtbl.t;
      mutable w_sealed : int;
    }

    let wstate () = { w_cache = Hashtbl.create 4096; w_sealed = 0 }

    (* the admitted variable keys; checkpoints persist them ("vars"), and
       a resume restores them — authoritative over the constructor's,
       so resuming does not need the original env *)
    let keys = ref init_keys
    let sealed_base = ref 0

    let roots (module E : Engine.S with type state = state) _w col =
      let s0 = E.initial () in
      Collector.touch col (E.signature s0);
      match E.status s0 with
      | Engine.Running ->
        List.map
          (fun t -> item ~sched:[] ~payload:t ~state:(Some s0))
          (E.enabled s0)
      | status ->
        Search_core.finish (module E) col s0 status;
        []

    let expand (module E : Engine.S with type state = state) w ctx it =
      match ctx.Strategy.c_materialize it with
      | None -> ()
      | Some st ->
        let seen st tid =
          cache
          &&
          let k = (E.signature st, tid) in
          Hashtbl.mem w.w_cache k || (Hashtbl.add w.w_cache k (); false)
        in
        Search_core.icb_item
          (module E)
          ctx.Strategy.c_col ~seen
          ~admit:(mk_admit (module E : Engine.S with type state = state) !keys)
          ~seal:(fun () -> w.w_sealed <- w.w_sealed + 1)
          ~defer:(fun st' t ->
            ctx.Strategy.c_push
              (item ~sched:(E.schedule st') ~payload:t ~state:(Some st')))
          (st, it.Strategy.i_payload)

    let rank _ _ = 0
    let round () = 0

    let sealed_total wstates =
      Array.fold_left (fun acc w -> acc + w.w_sealed) !sealed_base wstates

    let after_round col ~wstates ~deferred:_ =
      Collector.record_bound col 0;
      let sealed = sealed_total wstates in
      Array.iter (fun w -> w.w_sealed <- 0) wstates;
      sealed_base := sealed;
      if sealed = 0 then `Complete else `Bounded

    let to_prefixes ~wstates ~work ~next =
      {
        Checkpoint.v3_tag = tag;
        v3_params =
          static
          @ (if uses_vars then [ ("vars", String.concat "," !keys) ] else [])
          @ [
              ("cache", string_of_bool cache);
              ("sealed", string_of_int (sealed_total wstates));
            ];
        v3_round = 0;
        v3_work = work;
        v3_next = next;
      }

    let of_prefixes _col (f : Checkpoint.v3) =
      (if uses_vars then
         match List.assoc_opt "vars" f.Checkpoint.v3_params with
         | Some "" -> keys := []
         | Some s -> keys := String.split_on_char ',' s
         | None -> ());
      sealed_base := int_param f.Checkpoint.v3_params "sealed" ~default:0;
      (f.Checkpoint.v3_work, f.Checkpoint.v3_next)
  end)

let variable_bound (type s) (module E : Engine.S with type state = s) ~n
    ~cache ~env : (module Strategy.S with type state = s) =
  sealed_space
    (module E)
    ~tag_:"vb"
    ~name_:(Printf.sprintf "vb:%d" n)
    ~static:[ ("n", string_of_int n) ]
    ~cache ~uses_vars:true
    ~init_keys:(top_var_keys env n)
    ~mk_admit:(fun (module E : Engine.S with type state = s) keys st tid ->
      var_admit (module E) keys st tid)

(* Designated threads are the N lowest tids (creation order, main = 0):
   deterministic, env-free, and matching how the benchmarks spawn their
   contending workers first. *)
let thread_bound (type s) (module E : Engine.S with type state = s) ~n ~cache :
    (module Strategy.S with type state = s) =
  sealed_space
    (module E)
    ~tag_:"tb"
    ~name_:(Printf.sprintf "tb:%d" n)
    ~static:[ ("n", string_of_int n) ]
    ~cache ~uses_vars:false ~init_keys:[]
    ~mk_admit:(fun _ _ _ tid -> tid < n)

(* ICB with variable sealing: identical round structure to [icb] (round =
   context bound, preempting branches deferred), but deferrals only happen
   at admitted preemption points.  Per bound it explores a subset of raw
   ICB's executions, so a bug whose preemptions sit on hot variables is
   found strictly cheaper; the price is completeness — exhaustion with
   sealed points is [`Bounded], not [`Complete]. *)
let icb_vb (type s) (module _ : Engine.S with type state = s) ~n ~max_bound
    ~cache ~env : (module Strategy.S with type state = s) =
  (module struct
    type state = s

    let name = Printf.sprintf "icb-vb:%d" n
    let tag = "icb-vb"
    let checkpointable = true
    let shardable = true
    let discipline = `Fifo
    let atomic_items = false

    type wstate = {
      w_cache : (int64 * int, unit) Hashtbl.t;
      mutable w_sealed : int;
    }

    let wstate () = { w_cache = Hashtbl.create 4096; w_sealed = 0 }
    let bound = ref 0
    let keys = ref (top_var_keys env n)
    let sealed_base = ref 0

    let roots (module E : Engine.S with type state = state) _w col =
      Collector.note_bound col !bound;
      let s0 = E.initial () in
      Collector.touch col (E.signature s0);
      match E.status s0 with
      | Engine.Running ->
        List.map
          (fun t -> item ~sched:[] ~payload:t ~state:(Some s0))
          (E.enabled s0)
      | status ->
        Search_core.finish (module E) col s0 status;
        []

    let expand (module E : Engine.S with type state = state) w ctx it =
      Collector.note_bound ctx.Strategy.c_col !bound;
      match ctx.Strategy.c_materialize it with
      | None -> ()
      | Some st ->
        let seen st tid =
          cache
          &&
          let k = (E.signature st, tid) in
          Hashtbl.mem w.w_cache k || (Hashtbl.add w.w_cache k (); false)
        in
        Search_core.icb_item
          (module E)
          ctx.Strategy.c_col ~seen
          ~admit:(var_admit (module E : Engine.S with type state = state) !keys)
          ~seal:(fun () -> w.w_sealed <- w.w_sealed + 1)
          ~defer:(fun st' t ->
            ctx.Strategy.c_defer
              (item ~sched:(E.schedule st') ~payload:t ~state:(Some st')))
          (st, it.Strategy.i_payload)

    let rank _ _ = 0
    let round () = !bound

    let sealed_total wstates =
      Array.fold_left (fun acc w -> acc + w.w_sealed) !sealed_base wstates

    let after_round col ~wstates ~deferred =
      Collector.record_bound col !bound;
      (* sealing spans rounds: carry the cumulative count *)
      sealed_base := sealed_total wstates;
      Array.iter (fun w -> w.w_sealed <- 0) wstates;
      if deferred = [] then
        if !sealed_base = 0 then `Complete else `Bounded
      else
        match max_bound with
        | Some b when !bound >= b -> `Bounded
        | Some _ | None ->
          incr bound;
          Collector.note_bound col !bound;
          `Round deferred

    let to_prefixes ~wstates ~work ~next =
      {
        Checkpoint.v3_tag = tag;
        v3_params =
          [ ("n", string_of_int n) ]
          @ (match max_bound with
            | None -> []
            | Some b -> [ ("max_bound", string_of_int b) ])
          @ [
              ("vars", String.concat "," !keys);
              ("cache", string_of_bool cache);
              ("sealed", string_of_int (sealed_total wstates));
            ];
        v3_round = !bound;
        v3_work = work;
        v3_next = next;
      }

    let of_prefixes col (f : Checkpoint.v3) =
      bound := f.Checkpoint.v3_round;
      Collector.note_bound col !bound;
      (match List.assoc_opt "vars" f.Checkpoint.v3_params with
      | Some "" -> keys := []
      | Some s -> keys := String.split_on_char ',' s
      | None -> ());
      sealed_base := int_param f.Checkpoint.v3_params "sealed" ~default:0;
      (f.Checkpoint.v3_work, f.Checkpoint.v3_next)
  end)

let _ = bool_param
