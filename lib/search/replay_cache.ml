type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable steps_saved : int;
  mutable steps_replayed : int;
}

let zero () = { hits = 0; misses = 0; steps_saved = 0; steps_replayed = 0 }

let accum ~into s =
  into.hits <- into.hits + s.hits;
  into.misses <- into.misses + s.misses;
  into.steps_saved <- into.steps_saved + s.steps_saved;
  into.steps_replayed <- into.steps_replayed + s.steps_replayed

(* An entry remembers the exact (reversed) prefix it snapshots, so a
   lookup that matches by hash is verified element-wise before the
   snapshot is trusted: collisions degrade to misses. *)
type 'v entry = { e_rev : int list; e_snap : 'v }

type 'v t = { lru : (int * int64, 'v entry) Icb_util.Lru.t }

let default_capacity = 4096

let create ?(capacity = default_capacity) () =
  { lru = Icb_util.Lru.create ~capacity }

let length t = Icb_util.Lru.length t.lru
let clear t = Icb_util.Lru.clear t.lru

let replay (type v a) (t : v t) ~stats ~sched ~(init : unit -> a)
    ~(step : a -> int -> a) ~(capture : a -> v) ~(restore : v -> a) :
    (a, a * int * exn) result =
  match sched with
  | [] -> Ok (init ())
  | _ ->
    (* Rolling FNV-1a hash and reversed prefix for every cut point; the
       reversed prefixes share structure, so this is O(n) allocation. *)
    let n = List.length sched in
    let hashes = Array.make (n + 1) Icb_util.Fnv.basis in
    let revs = Array.make (n + 1) [] in
    List.iteri
      (fun i tid ->
        hashes.(i + 1) <- Icb_util.Fnv.int hashes.(i) tid;
        revs.(i + 1) <- tid :: revs.(i))
      sched;
    (* Longest verified cached prefix, probing longest first. *)
    let rec probe k =
      if k <= 0 then None
      else
        match Icb_util.Lru.find t.lru (k, hashes.(k)) with
        | Some e when e.e_rev = revs.(k) -> Some (k, e)
        | Some _ | None -> probe (k - 1)
    in
    let base, st0 =
      match probe n with
      | Some (k, e) ->
        stats.hits <- stats.hits + 1;
        stats.steps_saved <- stats.steps_saved + k;
        (k, restore e.e_snap)
      | None ->
        stats.misses <- stats.misses + 1;
        (0, init ())
    in
    (* Replay the suffix, snapshotting after every new step so the next
       item sharing this prefix resumes further along. *)
    let rec go st k rest =
      match rest with
      | [] -> Ok st
      | tid :: rest -> (
        match step st tid with
        | st' ->
          stats.steps_replayed <- stats.steps_replayed + 1;
          let k = k + 1 in
          Icb_util.Lru.add t.lru (k, hashes.(k))
            { e_rev = revs.(k); e_snap = capture st' };
          go st' k rest
        | exception exn -> Error (st, tid, exn))
    in
    let rec drop n l =
      if n <= 0 then l
      else match l with [] -> [] | _ :: tl -> drop (n - 1) tl
    in
    go st0 base (drop base sched)
