(* The strategy catalogue and the public search entry points.

   This module no longer contains any search loop: each strategy variant
   selects a {!Strategies} instance (a first-class module of type
   {!Strategy.S}) and [Driver.run] executes it — serially when
   [domains = 1], across OCaml domains otherwise — with checkpoint and
   resume handled uniformly for every strategy whose frontier
   serializes. *)

type strategy =
  | Icb of { max_bound : int option; cache : bool }
  | Dfs of { cache : bool }
  | Bounded_dfs of { depth : int; cache : bool }
  | Iterative_dfs of { start : int; incr : int; max_depth : int; cache : bool }
  | Random_walk of { seed : int64 }
  | Sleep_dfs
  | Pct of { change_points : int; seed : int64 }
  | Most_enabled of { cache : bool }
  | Variable_bound of { n : int; cache : bool }
  | Thread_bound of { n : int; cache : bool }
  | Icb_vb of { n : int; max_bound : int option; cache : bool }

let strategy_name = function
  | Icb { max_bound; _ } -> Search_core.icb_strategy_name ~max_bound
  | Dfs _ -> "dfs"
  | Bounded_dfs { depth; _ } -> Printf.sprintf "db:%d" depth
  | Iterative_dfs { max_depth; _ } -> Printf.sprintf "idfs:%d" max_depth
  | Random_walk _ -> "random"
  | Sleep_dfs -> "sleep-dfs"
  | Pct { change_points; _ } -> Printf.sprintf "pct:%d" change_points
  | Most_enabled _ -> "most-enabled"
  | Variable_bound { n; _ } -> Printf.sprintf "vb:%d" n
  | Thread_bound { n; _ } -> Printf.sprintf "tb:%d" n
  | Icb_vb { n; _ } -> Printf.sprintf "icb-vb:%d" n

(* The variable-bounding strategies rank shared variables; everything else
   runs env-free.  Callers that must pay to build an env (the CHESS engine
   profiles an execution) gate on this. *)
let needs_env = function
  | Variable_bound _ | Icb_vb _ -> true
  | Icb _ | Dfs _ | Bounded_dfs _ | Iterative_dfs _ | Random_walk _
  | Sleep_dfs | Pct _ | Most_enabled _ | Thread_bound _ -> false

(* Strategy instances are single-use (they hold the run's round state), so
   one is built per [run] call. *)
let instantiate (type s) ?(env = Strategy.empty_env)
    (module E : Engine.S with type state = s) strategy :
    (module Strategy.S with type state = s) =
  match strategy with
  | Icb { max_bound; cache } -> Strategies.icb (module E) ~max_bound ~cache
  | Dfs { cache } -> Strategies.dfs (module E) ~cache
  | Bounded_dfs { depth; cache } ->
    Strategies.bounded_dfs (module E) ~depth ~cache
  | Iterative_dfs { start; incr; max_depth; cache } ->
    Strategies.iterative_dfs (module E) ~start ~incr ~max_depth ~cache
  | Random_walk { seed } -> Strategies.random_walk (module E) ~seed
  | Sleep_dfs -> Strategies.sleep_dfs (module E)
  | Pct { change_points; seed } ->
    Strategies.pct (module E) ~change_points ~seed
  | Most_enabled { cache } -> Strategies.most_enabled (module E) ~cache
  | Variable_bound { n; cache } ->
    Strategies.variable_bound (module E) ~n ~cache ~env
  | Thread_bound { n; cache } -> Strategies.thread_bound (module E) ~n ~cache
  | Icb_vb { n; max_bound; cache } ->
    Strategies.icb_vb (module E) ~n ~max_bound ~cache ~env

let default_checkpoint_every = Search_core.default_checkpoint_every

(* The single engine module is shared by every worker when [domains > 1],
   which is safe for modules without module-level mutable state (the
   machine engine; the CHESS engine's only module-level mutable is a
   stats counter).  States are never shared across domains on this path —
   workers replay schedule prefixes on their own states — so engines with
   domain-bound state internals still work. *)
let run (type s) (module E : Engine.S with type state = s) ?options
    ?checkpoint_out ?checkpoint_every ?checkpoint_meta ?resume_from
    ?telemetry ?(domains = 1) ?env ?cache ?on_cache_stats strategy =
  Driver.run
    (fun _ -> (module E : Engine.S with type state = s))
    ?options ?checkpoint_out ?checkpoint_every ?checkpoint_meta ?resume_from
    ?telemetry ?replay_cache:cache ?on_cache_stats ~domains
    (instantiate ?env (module E) strategy)

let strategy_of_v3 (f : Checkpoint.v3) =
  let p = f.Checkpoint.v3_params in
  let int_p key ~default =
    match List.assoc_opt key p with
    | Some s -> ( try int_of_string s with Failure _ -> default)
    | None -> default
  in
  let bool_p key =
    match List.assoc_opt key p with Some "true" -> true | _ -> false
  in
  let i64_p key ~default =
    match List.assoc_opt key p with
    | Some s -> ( try Int64.of_string s with Failure _ -> default)
    | None -> default
  in
  match f.Checkpoint.v3_tag with
  | "icb" ->
    Icb
      {
        max_bound =
          Option.map int_of_string (List.assoc_opt "max_bound" p);
        cache = bool_p "cache";
      }
  | "dfs" -> Dfs { cache = bool_p "cache" }
  | "db" -> Bounded_dfs { depth = int_p "depth" ~default:1; cache = bool_p "cache" }
  | "idfs" ->
    Iterative_dfs
      {
        start = int_p "start" ~default:1;
        incr = int_p "incr" ~default:1;
        max_depth = int_p "max_depth" ~default:1;
        cache = bool_p "cache";
      }
  | "random" -> Random_walk { seed = i64_p "seed" ~default:2007L }
  | "pct" ->
    Pct
      {
        change_points = int_p "change_points" ~default:2;
        seed = i64_p "seed" ~default:2007L;
      }
  | "most-enabled" -> Most_enabled { cache = bool_p "cache" }
  | "vb" -> Variable_bound { n = int_p "n" ~default:1; cache = bool_p "cache" }
  | "tb" -> Thread_bound { n = int_p "n" ~default:1; cache = bool_p "cache" }
  | "icb-vb" ->
    Icb_vb
      {
        n = int_p "n" ~default:1;
        max_bound = Option.map int_of_string (List.assoc_opt "max_bound" p);
        cache = bool_p "cache";
      }
  | tag ->
    invalid_arg
      (Printf.sprintf
         "Explore.strategy_of_checkpoint: unknown strategy tag %S" tag)

let strategy_of_checkpoint (c : Checkpoint.t) =
  strategy_of_v3 (Checkpoint.to_v3 c)

let resume (type s) (module E : Engine.S with type state = s) ?options
    ?checkpoint_out ?checkpoint_every ?checkpoint_meta ?telemetry ?domains
    ?env ?cache (c : Checkpoint.t) =
  let checkpoint_meta =
    match checkpoint_meta with Some m -> m | None -> c.meta
  in
  run
    (module E)
    ?options ?checkpoint_out ?checkpoint_every ~checkpoint_meta
    ~resume_from:c ?telemetry ?domains ?env ?cache
    (strategy_of_checkpoint c)

let check (type s) (module E : Engine.S with type state = s)
    ?(options = Collector.default_options) ?max_bound ?telemetry ?domains
    ?cache () =
  let options = { options with Collector.stop_at_first_bug = true } in
  let r =
    run (module E) ~options ?telemetry ?domains ?cache
      (Icb { max_bound; cache = false })
  in
  match r.Sresult.bugs with
  | bug :: _ -> Some bug
  | [] -> None

let replay_prefix (type s) (module E : Engine.S with type state = s) schedule
    =
  let rec go st = function
    | [] -> (st, [])
    | rest when Engine.is_terminal (E.status st) -> (st, rest)
    | tid :: rest ->
      if not (List.mem tid (E.enabled st)) then
        invalid_arg
          (Printf.sprintf
             "Explore.replay_prefix: thread %d not enabled at step %d" tid
             (E.depth st))
      else go (E.step st tid) rest
  in
  go (E.initial ()) schedule

let replay (type s) (module E : Engine.S with type state = s) schedule =
  List.fold_left
    (fun st tid ->
      if not (List.mem tid (E.enabled st)) then
        invalid_arg
          (Printf.sprintf "Explore.replay: thread %d not enabled at step %d"
             tid (E.depth st))
      else E.step st tid)
    (E.initial ()) schedule

(* --- the textual strategy catalogue ------------------------------------- *)

(* The one list every accepted spelling comes from; the CLI help, the
   parse error and the docs all render it so they cannot drift apart.
   (form, description, argument range). *)
let strategy_forms =
  [
    ("icb", "iterative context bounding, unbounded", None);
    ("icb:N", "iterative context bounding up to N preemptions", Some "N>=0");
    ("dfs", "plain depth-first search", None);
    ("db:N", "depth-bounded DFS", Some "N>=1");
    ("idfs:N", "iterative deepening DFS to depth N", Some "N>=1");
    ("random", "random walks (see --seed)", None);
    ("sleep", "DFS with sleep-set partial-order reduction", None);
    ("pct:N", "probabilistic concurrency testing, N change points", Some "N>=1");
    ("most-enabled", "best-first by enabled-thread count", None);
    ( "vb:N",
      "variable bounding: preemptions only around the N hottest shared \
       variables",
      Some "N>=1" );
    ( "tb:N",
      "thread bounding: only the N lowest-numbered threads get preempted",
      Some "N>=1" );
    ( "icb-vb:N",
      "iterated preemption bound with non-bounded variables sealed",
      Some "N>=1" );
  ]

let render_forms () =
  String.concat ", "
    (List.map
       (fun (form, _, range) ->
         match range with
         | None -> form
         | Some r -> Printf.sprintf "%s (%s)" form r)
       strategy_forms)

let parse_strategy ~seed s =
  let starts_with prefix =
    String.length s > String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  let suffix_int prefix =
    int_of_string_opt
      (String.sub s (String.length prefix)
         (String.length s - String.length prefix))
  in
  let bad () =
    Error (Printf.sprintf "bad strategy: %s (accepted: %s)" s (render_forms ()))
  in
  (* parameterized form: parse the suffix, enforce the range, and say
     which range was violated — never just "bad strategy" for a
     well-formed number outside its range *)
  let ranged prefix form ~min_n k =
    match suffix_int prefix with
    | Some n when n >= min_n -> Ok (k n)
    | Some n ->
      Error
        (Printf.sprintf "bad strategy: %s — %s takes N>=%d, got %d" s form
           min_n n)
    | None -> bad ()
  in
  match s with
  | "icb" -> Ok (Icb { max_bound = None; cache = true })
  | "dfs" -> Ok (Dfs { cache = true })
  | "random" -> Ok (Random_walk { seed })
  | "sleep" -> Ok Sleep_dfs
  | "most-enabled" -> Ok (Most_enabled { cache = true })
  | _ when starts_with "icb-vb:" ->
    ranged "icb-vb:" "icb-vb:N" ~min_n:1 (fun n ->
        Icb_vb { n; max_bound = None; cache = true })
  | _ when starts_with "icb:" ->
    ranged "icb:" "icb:N" ~min_n:0 (fun b ->
        Icb { max_bound = Some b; cache = true })
  | _ when starts_with "db:" ->
    ranged "db:" "db:N" ~min_n:1 (fun depth ->
        Bounded_dfs { depth; cache = true })
  | _ when starts_with "pct:" ->
    ranged "pct:" "pct:N" ~min_n:1 (fun change_points ->
        Pct { change_points; seed })
  | _ when starts_with "idfs:" ->
    ranged "idfs:" "idfs:N" ~min_n:1 (fun max_depth ->
        Iterative_dfs { start = 10; incr = 10; max_depth; cache = true })
  | _ when starts_with "vb:" ->
    ranged "vb:" "vb:N" ~min_n:1 (fun n -> Variable_bound { n; cache = true })
  | _ when starts_with "tb:" ->
    ranged "tb:" "tb:N" ~min_n:1 (fun n -> Thread_bound { n; cache = true })
  | _ -> bad ()

(* --- the strategy registry ---------------------------------------------- *)

(* One representative instance per strategy family, with the properties
   the cross-strategy property tests need.  New strategies added here are
   picked up automatically by the kill/resume and replay-determinism
   suites — a strategy missing from this list escapes them, so additions
   to [strategy] should always come with a registry entry. *)
type registered = {
  reg_name : string;
  reg_strategy : strategy;
  reg_checkpointable : bool;
  reg_shardable : bool;
  reg_exact : bool;
      (* atomic items: kill/resume preserves the execution *multiset*;
         inexact strategies guarantee the bug/state *sets* only *)
  reg_bounded : bool;  (* no natural termination: needs an execution cap *)
}

let registry ?(seed = 2007L) () =
  [
    {
      reg_name = "icb";
      reg_strategy = Icb { max_bound = None; cache = false };
      reg_checkpointable = true;
      reg_shardable = true;
      reg_exact = false;
      reg_bounded = false;
    };
    {
      reg_name = "dfs";
      reg_strategy = Dfs { cache = false };
      reg_checkpointable = true;
      reg_shardable = true;
      reg_exact = true;
      reg_bounded = false;
    };
    {
      reg_name = "db:40";
      reg_strategy = Bounded_dfs { depth = 40; cache = false };
      reg_checkpointable = true;
      reg_shardable = true;
      reg_exact = true;
      reg_bounded = false;
    };
    {
      reg_name = "idfs:48";
      reg_strategy =
        Iterative_dfs { start = 16; incr = 16; max_depth = 48; cache = false };
      reg_checkpointable = true;
      reg_shardable = true;
      reg_exact = true;
      reg_bounded = false;
    };
    {
      reg_name = "random";
      reg_strategy = Random_walk { seed };
      reg_checkpointable = true;
      reg_shardable = true;
      reg_exact = true;
      reg_bounded = true;
    };
    {
      reg_name = "pct:3";
      reg_strategy = Pct { change_points = 3; seed };
      reg_checkpointable = true;
      reg_shardable = true;
      reg_exact = true;
      reg_bounded = true;
    };
    {
      reg_name = "sleep-dfs";
      reg_strategy = Sleep_dfs;
      reg_checkpointable = false;
      reg_shardable = false;
      reg_exact = false;
      reg_bounded = false;
    };
    {
      reg_name = "most-enabled";
      reg_strategy = Most_enabled { cache = false };
      reg_checkpointable = true;
      reg_shardable = false;
      reg_exact = false;
      reg_bounded = false;
    };
    {
      reg_name = "vb:2";
      reg_strategy = Variable_bound { n = 2; cache = false };
      reg_checkpointable = true;
      reg_shardable = true;
      reg_exact = false;
      reg_bounded = false;
    };
    {
      reg_name = "tb:2";
      reg_strategy = Thread_bound { n = 2; cache = false };
      reg_checkpointable = true;
      reg_shardable = true;
      reg_exact = false;
      reg_bounded = false;
    };
    {
      reg_name = "icb-vb:2";
      reg_strategy = Icb_vb { n = 2; max_bound = None; cache = false };
      reg_checkpointable = true;
      reg_shardable = true;
      reg_exact = false;
      reg_bounded = false;
    };
  ]
