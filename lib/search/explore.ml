type strategy =
  | Icb of { max_bound : int option; cache : bool }
  | Dfs of { cache : bool }
  | Bounded_dfs of { depth : int; cache : bool }
  | Iterative_dfs of { start : int; incr : int; max_depth : int; cache : bool }
  | Random_walk of { seed : int64 }
  | Sleep_dfs
  | Pct of { change_points : int; seed : int64 }
  | Most_enabled of { cache : bool }

let strategy_name = function
  | Icb { max_bound; _ } -> Search_core.icb_strategy_name ~max_bound
  | Dfs _ -> "dfs"
  | Bounded_dfs { depth; _ } -> Printf.sprintf "db:%d" depth
  | Iterative_dfs { max_depth; _ } -> Printf.sprintf "idfs:%d" max_depth
  | Random_walk _ -> "random"
  | Sleep_dfs -> "sleep-dfs"
  | Pct { change_points; _ } -> Printf.sprintf "pct:%d" change_points
  | Most_enabled _ -> "most-enabled"

(* Execution accounting, crash containment and checkpoint write control
   live in [Search_core], shared with the parallel executor. *)

let finish = Search_core.finish
let record_crash = Search_core.record_crash
let step_guarded = Search_core.step_guarded
let save_checkpoint = Search_core.save_checkpoint

(* --- Algorithm 1: iterative context bounding -------------------------- *)

let run_icb (type s) (module E : Engine.S with type state = s) col ~max_bound
    ~cache ~ckpt ~resume =
  let strategy =
    strategy_name (Icb { max_bound; cache })
  in
  let work : (s * int) Queue.t = Queue.create () in
  let next : (s * int) Queue.t = Queue.create () in
  (* the paper's optional state-caching table, keyed on the work item *)
  let table : (int64 * int, unit) Hashtbl.t = Hashtbl.create 4096 in
  let seen st tid =
    cache
    &&
    let k = (E.signature st, tid) in
    Hashtbl.mem table k || (Hashtbl.add table k (); false)
  in
  let search item =
    Search_core.icb_item
      (module E)
      col ~seen
      ~defer:(fun st t -> Queue.add (st, t) next)
      item
  in
  let bound = ref 0 in
  (* Serialize the frontier as replayable schedule prefixes; [extra] holds
     the work item being searched when a limit fired, re-queued so resume
     loses nothing (it may re-complete a few executions — bug and state
     deduplication make that harmless). *)
  let frontier ?(extra = []) () =
    let items q =
      List.rev (Queue.fold (fun acc (st, t) -> (E.schedule st, t) :: acc) [] q)
    in
    Checkpoint.Icb_frontier
      {
        bound = !bound;
        work = List.map (fun (st, t) -> (E.schedule st, t)) extra @ items work;
        next = items next;
        max_bound;
        cache;
        cache_keys =
          (if cache then Hashtbl.fold (fun k () acc -> k :: acc) table []
           else []);
      }
  in
  let save ?extra () =
    match ckpt with
    | None -> ()
    | Some ctl -> save_checkpoint col ctl ~strategy ~frontier:(frontier ?extra ())
  in
  let periodic () =
    match ckpt with
    | None -> ()
    | Some ctl ->
      if Collector.executions col - ctl.ck_last >= ctl.ck_every then
        save_checkpoint col ctl ~strategy ~frontier:(frontier ())
  in
  let replay_item (sched, tid) =
    let st =
      try List.fold_left E.step (E.initial ()) sched
      with exn ->
        invalid_arg
          (Printf.sprintf
             "Explore.resume: a checkpointed schedule no longer replays \
              (%s); the checkpoint belongs to a different or \
              nondeterministic program"
             (Printexc.to_string exn))
    in
    (st, tid)
  in
  (match resume with
  | Some
      (Checkpoint.Icb_frontier
         { bound = b; work = w; next = n; cache_keys; _ }) ->
    bound := b;
    List.iter (fun it -> Queue.add (replay_item it) work) w;
    List.iter (fun it -> Queue.add (replay_item it) next) n;
    if cache then List.iter (fun k -> Hashtbl.replace table k ()) cache_keys
  | Some (Checkpoint.Random_frontier _) ->
    invalid_arg "Explore.resume: checkpoint was written by a random walk"
  | None -> (
    let s0 = E.initial () in
    Collector.touch col (E.signature s0);
    match E.status s0 with
    | Engine.Running ->
      List.iter (fun t -> Queue.add (s0, t) work) (E.enabled s0)
    | status -> finish (module E) col s0 status));
  Collector.note_bound col !bound;
  if Queue.is_empty work && Queue.is_empty next then
    (* either a trivial program or a resumed checkpoint of a finished
       search: the space is exhausted *)
    Collector.set_complete col
  else begin
    let continue = ref true in
    while !continue do
      while not (Queue.is_empty work) do
        let item = Queue.pop work in
        (try search item
         with Collector.Stop ->
           save ~extra:[ item ] ();
           raise Collector.Stop);
        periodic ()
      done;
      Collector.record_bound col !bound;
      if Queue.is_empty next then begin
        Collector.set_complete col;
        continue := false
      end
      else begin
        match max_bound with
        | Some b when !bound >= b ->
          (* every execution with <= b preemptions has been explored *)
          continue := false
        | Some _ | None ->
          incr bound;
          Collector.note_bound col !bound;
          Queue.transfer next work
      end
    done;
    (* final save: lets a later resume pick up where a max_bound run left
       off, and records completion *)
    save ()
  end

(* --- depth-first search ----------------------------------------------- *)

let run_dfs (type s) (module E : Engine.S with type state = s) col ~bound
    ~cache ~table =
  let seen st =
    cache
    &&
    let k = E.signature st in
    Hashtbl.mem table k || (Hashtbl.add table k (); false)
  in
  let truncated = ref 0 in
  let rec dfs st =
    match E.status st with
    | Engine.Running ->
      if (match bound with Some b -> E.depth st >= b | None -> false) then begin
        incr truncated;
        finish (module E) col st Engine.Running
      end
      else
        List.iter
          (fun t ->
            match step_guarded (module E) col st t with
            | None -> ()
            | Some st' ->
              Collector.touch col (E.signature st');
              if not (seen st') then dfs st')
          (E.enabled st)
    | status -> finish (module E) col st status
  in
  let s0 = E.initial () in
  Collector.touch col (E.signature s0);
  if not (seen s0) then dfs s0;
  !truncated

(* --- depth-first search with sleep sets --------------------------------- *)

(* Godefroid's sleep sets over dynamic footprints: after fully exploring a
   sibling transition t, later siblings carry t in their sleep set and skip
   it until some dependent step wakes it.  Because the footprints are
   computed by speculative execution at the very state where the sleeping
   step would run, disjointness implies true commutation there (a step
   whose variables the other step does not touch reads the same values and
   takes the same path in either order).  Sleep sets prune redundant
   interleavings only, so the set of reachable states is preserved — a
   property the test suite checks against plain DFS. *)
let run_sleep_dfs (type s) (module E : Engine.S with type state = s) col =
  let rec dfs st (sleep : (int * Engine.Footprint.t) list) =
    match E.status st with
    | Engine.Running ->
      let explored = ref [] in
      List.iter
        (fun t ->
          if not (List.mem_assoc t sleep) then begin
            match E.step_footprint st t with
            | exception Collector.Stop -> raise Collector.Stop
            | exception exn -> record_crash (module E) col st t exn
            | fp -> (
              match step_guarded (module E) col st t with
              | None -> ()
              | Some st' ->
                Collector.touch col (E.signature st');
                let sleep' =
                  List.filter
                    (fun (_, fp_u) -> Engine.Footprint.independent fp fp_u)
                    (sleep @ !explored)
                in
                dfs st' sleep';
                explored := (t, fp) :: !explored)
          end)
        (E.enabled st)
    | status -> finish (module E) col st status
  in
  let s0 = E.initial () in
  Collector.touch col (E.signature s0);
  dfs s0 []

(* --- PCT: probabilistic concurrency testing ------------------------------ *)

(* Burckhardt, Kothari, Musuvathi, Nagarakatte (ASPLOS 2010), the
   randomized successor of iterative context bounding from the same group:
   each execution runs threads by randomly assigned priorities, lowering
   the running thread's priority at [change_points - 1] uniformly chosen
   steps.  Any bug of preemption depth d is found with probability at
   least 1/(n * k^(d-1)) per execution. *)
let run_pct (type s) (module E : Engine.S with type state = s) col
    ~change_points ~seed =
  let rng = Icb_util.Rng.create seed in
  let k_estimate = ref 32 in
  let hard_cap = 1_000_000 in
  for _ = 1 to hard_cap do
    let priorities : (int, int) Hashtbl.t = Hashtbl.create 8 in
    (* initial and spawned threads draw a random high priority; change
       points later demote to the low band 1..d-1 *)
    let d = max 1 change_points in
    let priority_of t =
      match Hashtbl.find_opt priorities t with
      | Some p -> p
      | None ->
        let p = d + Icb_util.Rng.int rng 1000 in
        Hashtbl.add priorities t p;
        p
    in
    let change_steps =
      List.init (d - 1) (fun i ->
          (i + 1, 1 + Icb_util.Rng.int rng (max 1 !k_estimate)))
    in
    let st = ref (E.initial ()) in
    Collector.touch col (E.signature !st);
    let steps = ref 0 in
    let rec walk () =
      match E.status !st with
      | Engine.Running -> (
        let en = E.enabled !st in
        let t =
          List.fold_left
            (fun best t ->
              match best with
              | None -> Some t
              | Some b -> if priority_of t > priority_of b then Some t else best)
            None en
          |> Option.get
        in
        incr steps;
        List.iter
          (fun (low, at) ->
            if at = !steps then Hashtbl.replace priorities t low)
          change_steps;
        match step_guarded (module E) col !st t with
        | None -> ()  (* crash recorded; this execution is over *)
        | Some st' ->
          st := st';
          Collector.touch col (E.signature !st);
          walk ())
      | status -> finish (module E) col !st status
    in
    walk ();
    k_estimate := max !k_estimate (E.depth !st)
  done

(* --- best-first search by enabled-thread count --------------------------- *)

(* Groce & Visser's structural heuristic (ISSTA 2002), cited by the paper
   as prior heuristic search: prefer frontier states with more enabled
   threads.  Implemented as best-first with a bucket queue (enabled counts
   are small). *)
let run_most_enabled (type s) (module E : Engine.S with type state = s) col
    ~cache =
  let table = Hashtbl.create 4096 in
  let seen st =
    cache
    &&
    let k = E.signature st in
    Hashtbl.mem table k || (Hashtbl.add table k (); false)
  in
  let buckets : (int, s Queue.t) Hashtbl.t = Hashtbl.create 8 in
  let max_bucket = ref 0 in
  let push st =
    let n = List.length (E.enabled st) in
    let q =
      match Hashtbl.find_opt buckets n with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.add buckets n q;
        q
    in
    Queue.add st q;
    max_bucket := max !max_bucket n
  in
  let rec pop () =
    let rec from n =
      if n < 0 then None
      else
        match Hashtbl.find_opt buckets n with
        | Some q when not (Queue.is_empty q) -> Some (Queue.pop q)
        | Some _ | None -> from (n - 1)
    in
    match from !max_bucket with
    | Some st -> Some st
    | None -> ignore pop; None
  in
  let s0 = E.initial () in
  Collector.touch col (E.signature s0);
  if not (seen s0) then push s0;
  let rec loop () =
    match pop () with
    | None -> Collector.set_complete col
    | Some st ->
      (match E.status st with
      | Engine.Running ->
        List.iter
          (fun t ->
            match step_guarded (module E) col st t with
            | None -> ()
            | Some st' ->
              Collector.touch col (E.signature st');
              if not (seen st') then push st')
          (E.enabled st)
      | status -> finish (module E) col st status);
      loop ()
  in
  loop ()

(* --- random walk ------------------------------------------------------- *)

let run_random (type s) (module E : Engine.S with type state = s) col ~seed
    ~ckpt ~resume =
  let rng =
    match resume with
    | Some (Checkpoint.Random_frontier { rng_state; _ }) ->
      Icb_util.Rng.of_state rng_state
    | Some (Checkpoint.Icb_frontier _) ->
      invalid_arg "Explore.resume: checkpoint was written by an ICB search"
    | None -> Icb_util.Rng.create seed
  in
  let strategy = strategy_name (Random_walk { seed }) in
  let frontier () =
    Checkpoint.Random_frontier { seed; rng_state = Icb_util.Rng.state rng }
  in
  let save () =
    match ckpt with
    | None -> ()
    | Some ctl -> save_checkpoint col ctl ~strategy ~frontier:(frontier ())
  in
  (* without an execution or step limit a random walk never stops; the
     caller's options must bound it, but guard against looping forever on a
     misconfiguration by capping at a large default *)
  let hard_cap = 1_000_000 in
  (try
     while Collector.executions col < hard_cap do
       let st = ref (E.initial ()) in
       Collector.touch col (E.signature !st);
       let rec walk () =
         match E.status !st with
         | Engine.Running -> (
           let t = Icb_util.Rng.pick rng (E.enabled !st) in
           match step_guarded (module E) col !st t with
           | None -> ()
           | Some st' ->
             st := st';
             Collector.touch col (E.signature !st);
             walk ())
         | status -> finish (module E) col !st status
       in
       walk ();
       (match ckpt with
       | None -> ()
       | Some ctl ->
         if Collector.executions col - ctl.ck_last >= ctl.ck_every then
           save_checkpoint col ctl ~strategy ~frontier:(frontier ()))
     done
   with Collector.Stop ->
     save ();
     raise Collector.Stop);
  save ()

(* --- driver ------------------------------------------------------------ *)

let default_checkpoint_every = Search_core.default_checkpoint_every

let run_serial (type s) (module E : Engine.S with type state = s)
    ?(options = Collector.default_options) ?checkpoint_out
    ?(checkpoint_every = default_checkpoint_every)
    ?(checkpoint_meta = []) ?resume_from strategy =
  let col =
    match resume_from with
    | None -> Collector.create options
    | Some (c : Checkpoint.t) -> Collector.restore options c.collector
  in
  let ckpt =
    Option.map
      (fun path ->
        {
          Search_core.ck_path = path;
          ck_every = max 1 checkpoint_every;
          ck_meta = checkpoint_meta;
          ck_last = Collector.executions col;
        })
      checkpoint_out
  in
  let resume = Option.map (fun (c : Checkpoint.t) -> c.frontier) resume_from in
  let reject_checkpointing () =
    if ckpt <> None || resume <> None then
      invalid_arg
        (Printf.sprintf
           "Explore.run: strategy %s does not support checkpoint/resume \
            (supported: icb, random)"
           (strategy_name strategy))
  in
  (try
     match strategy with
     | Icb { max_bound; cache } ->
       run_icb (module E) col ~max_bound ~cache ~ckpt ~resume
     | Random_walk { seed } -> run_random (module E) col ~seed ~ckpt ~resume
     | Dfs { cache } ->
       reject_checkpointing ();
       let table = Hashtbl.create 4096 in
       let truncated = run_dfs (module E) col ~bound:None ~cache ~table in
       if truncated = 0 then Collector.set_complete col
     | Bounded_dfs { depth; cache } ->
       reject_checkpointing ();
       let table = Hashtbl.create 4096 in
       let truncated =
         run_dfs (module E) col ~bound:(Some depth) ~cache ~table
       in
       if truncated = 0 then Collector.set_complete col
     | Iterative_dfs { start; incr = inc; max_depth; cache } ->
       reject_checkpointing ();
       let d = ref start in
       let stop = ref false in
       while (not !stop) && !d <= max_depth do
         (* each round gets a fresh cache: a state first reached at depth
            d-1 may have unexplored descendants below the deeper bound *)
         let table = Hashtbl.create 4096 in
         let truncated =
           run_dfs (module E) col ~bound:(Some !d) ~cache ~table
         in
         if truncated = 0 then begin
           Collector.set_complete col;
           stop := true
         end
         else d := !d + inc
       done
     | Sleep_dfs ->
       reject_checkpointing ();
       run_sleep_dfs (module E) col;
       Collector.set_complete col
     | Pct { change_points; seed } ->
       reject_checkpointing ();
       run_pct (module E) col ~change_points ~seed
     | Most_enabled { cache } ->
       reject_checkpointing ();
       run_most_enabled (module E) col ~cache
   with Collector.Stop -> ());
  Collector.result col ~strategy:(strategy_name strategy)

(* [~domains] hands ICB searches to the parallel executor.  The single
   engine module is shared by every worker, which is safe for modules
   without module-level mutable state (the machine engine; the CHESS
   engine's only module-level mutable is a stats counter).  States are
   never shared across domains on this path — workers replay schedule
   prefixes on their own states — so engines with domain-bound state
   internals still work. *)
let run (type s) (module E : Engine.S with type state = s) ?options
    ?checkpoint_out ?checkpoint_every ?checkpoint_meta ?resume_from
    ?(domains = 1) strategy =
  if domains > 1 then
    match strategy with
    | Icb { max_bound; cache } ->
      Parallel.run
        (fun _ -> (module E : Engine.S with type state = s))
        ?options ?checkpoint_out ?checkpoint_every ?checkpoint_meta
        ?resume_from ~share_states:false ~domains ~max_bound ~cache ()
    | _ ->
      invalid_arg
        (Printf.sprintf
           "Explore.run: ~domains:%d applies only to the Icb strategy (got \
            %s)"
           domains (strategy_name strategy))
  else
    run_serial
      (module E)
      ?options ?checkpoint_out ?checkpoint_every ?checkpoint_meta ?resume_from
      strategy

let strategy_of_checkpoint (c : Checkpoint.t) =
  match c.frontier with
  | Checkpoint.Icb_frontier { max_bound; cache; _ } -> Icb { max_bound; cache }
  | Checkpoint.Random_frontier { seed; _ } -> Random_walk { seed }

let resume (type s) (module E : Engine.S with type state = s) ?options
    ?checkpoint_out ?checkpoint_every ?checkpoint_meta ?domains
    (c : Checkpoint.t) =
  let checkpoint_meta =
    match checkpoint_meta with Some m -> m | None -> c.meta
  in
  run
    (module E)
    ?options ?checkpoint_out ?checkpoint_every ~checkpoint_meta
    ~resume_from:c ?domains
    (strategy_of_checkpoint c)

let check (type s) (module E : Engine.S with type state = s)
    ?(options = Collector.default_options) ?max_bound ?domains () =
  let options = { options with Collector.stop_at_first_bug = true } in
  let r = run (module E) ~options ?domains (Icb { max_bound; cache = false }) in
  match r.Sresult.bugs with
  | bug :: _ -> Some bug
  | [] -> None

let replay (type s) (module E : Engine.S with type state = s) schedule =
  List.fold_left
    (fun st tid ->
      if not (List.mem tid (E.enabled st)) then
        invalid_arg
          (Printf.sprintf "Explore.replay: thread %d not enabled at step %d"
             tid (E.depth st));
      E.step st tid)
    (E.initial ()) schedule
