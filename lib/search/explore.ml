(* The strategy catalogue and the public search entry points.

   This module no longer contains any search loop: each strategy variant
   selects a {!Strategies} instance (a first-class module of type
   {!Strategy.S}) and [Driver.run] executes it — serially when
   [domains = 1], across OCaml domains otherwise — with checkpoint and
   resume handled uniformly for every strategy whose frontier
   serializes. *)

type strategy =
  | Icb of { max_bound : int option; cache : bool }
  | Dfs of { cache : bool }
  | Bounded_dfs of { depth : int; cache : bool }
  | Iterative_dfs of { start : int; incr : int; max_depth : int; cache : bool }
  | Random_walk of { seed : int64 }
  | Sleep_dfs
  | Pct of { change_points : int; seed : int64 }
  | Most_enabled of { cache : bool }

let strategy_name = function
  | Icb { max_bound; _ } -> Search_core.icb_strategy_name ~max_bound
  | Dfs _ -> "dfs"
  | Bounded_dfs { depth; _ } -> Printf.sprintf "db:%d" depth
  | Iterative_dfs { max_depth; _ } -> Printf.sprintf "idfs:%d" max_depth
  | Random_walk _ -> "random"
  | Sleep_dfs -> "sleep-dfs"
  | Pct { change_points; _ } -> Printf.sprintf "pct:%d" change_points
  | Most_enabled _ -> "most-enabled"

(* Strategy instances are single-use (they hold the run's round state), so
   one is built per [run] call. *)
let instantiate (type s) (module E : Engine.S with type state = s) strategy :
    (module Strategy.S with type state = s) =
  match strategy with
  | Icb { max_bound; cache } -> Strategies.icb (module E) ~max_bound ~cache
  | Dfs { cache } -> Strategies.dfs (module E) ~cache
  | Bounded_dfs { depth; cache } ->
    Strategies.bounded_dfs (module E) ~depth ~cache
  | Iterative_dfs { start; incr; max_depth; cache } ->
    Strategies.iterative_dfs (module E) ~start ~incr ~max_depth ~cache
  | Random_walk { seed } -> Strategies.random_walk (module E) ~seed
  | Sleep_dfs -> Strategies.sleep_dfs (module E)
  | Pct { change_points; seed } ->
    Strategies.pct (module E) ~change_points ~seed
  | Most_enabled { cache } -> Strategies.most_enabled (module E) ~cache

let default_checkpoint_every = Search_core.default_checkpoint_every

(* The single engine module is shared by every worker when [domains > 1],
   which is safe for modules without module-level mutable state (the
   machine engine; the CHESS engine's only module-level mutable is a
   stats counter).  States are never shared across domains on this path —
   workers replay schedule prefixes on their own states — so engines with
   domain-bound state internals still work. *)
let run (type s) (module E : Engine.S with type state = s) ?options
    ?checkpoint_out ?checkpoint_every ?checkpoint_meta ?resume_from
    ?telemetry ?(domains = 1) strategy =
  Driver.run
    (fun _ -> (module E : Engine.S with type state = s))
    ?options ?checkpoint_out ?checkpoint_every ?checkpoint_meta ?resume_from
    ?telemetry ~domains
    (instantiate (module E) strategy)

let strategy_of_checkpoint (c : Checkpoint.t) =
  let f = Checkpoint.to_v3 c in
  let p = f.Checkpoint.v3_params in
  let int_p key ~default =
    match List.assoc_opt key p with
    | Some s -> ( try int_of_string s with Failure _ -> default)
    | None -> default
  in
  let bool_p key =
    match List.assoc_opt key p with Some "true" -> true | _ -> false
  in
  let i64_p key ~default =
    match List.assoc_opt key p with
    | Some s -> ( try Int64.of_string s with Failure _ -> default)
    | None -> default
  in
  match f.Checkpoint.v3_tag with
  | "icb" ->
    Icb
      {
        max_bound =
          Option.map int_of_string (List.assoc_opt "max_bound" p);
        cache = bool_p "cache";
      }
  | "dfs" -> Dfs { cache = bool_p "cache" }
  | "db" -> Bounded_dfs { depth = int_p "depth" ~default:1; cache = bool_p "cache" }
  | "idfs" ->
    Iterative_dfs
      {
        start = int_p "start" ~default:1;
        incr = int_p "incr" ~default:1;
        max_depth = int_p "max_depth" ~default:1;
        cache = bool_p "cache";
      }
  | "random" -> Random_walk { seed = i64_p "seed" ~default:2007L }
  | "pct" ->
    Pct
      {
        change_points = int_p "change_points" ~default:2;
        seed = i64_p "seed" ~default:2007L;
      }
  | "most-enabled" -> Most_enabled { cache = bool_p "cache" }
  | tag ->
    invalid_arg
      (Printf.sprintf
         "Explore.strategy_of_checkpoint: unknown strategy tag %S" tag)

let resume (type s) (module E : Engine.S with type state = s) ?options
    ?checkpoint_out ?checkpoint_every ?checkpoint_meta ?telemetry ?domains
    (c : Checkpoint.t) =
  let checkpoint_meta =
    match checkpoint_meta with Some m -> m | None -> c.meta
  in
  run
    (module E)
    ?options ?checkpoint_out ?checkpoint_every ~checkpoint_meta
    ~resume_from:c ?telemetry ?domains
    (strategy_of_checkpoint c)

let check (type s) (module E : Engine.S with type state = s)
    ?(options = Collector.default_options) ?max_bound ?telemetry ?domains () =
  let options = { options with Collector.stop_at_first_bug = true } in
  let r =
    run (module E) ~options ?telemetry ?domains
      (Icb { max_bound; cache = false })
  in
  match r.Sresult.bugs with
  | bug :: _ -> Some bug
  | [] -> None

let replay_prefix (type s) (module E : Engine.S with type state = s) schedule
    =
  let rec go st = function
    | [] -> (st, [])
    | rest when Engine.is_terminal (E.status st) -> (st, rest)
    | tid :: rest ->
      if not (List.mem tid (E.enabled st)) then
        invalid_arg
          (Printf.sprintf
             "Explore.replay_prefix: thread %d not enabled at step %d" tid
             (E.depth st))
      else go (E.step st tid) rest
  in
  go (E.initial ()) schedule

let replay (type s) (module E : Engine.S with type state = s) schedule =
  List.fold_left
    (fun st tid ->
      if not (List.mem tid (E.enabled st)) then
        invalid_arg
          (Printf.sprintf "Explore.replay: thread %d not enabled at step %d"
             tid (E.depth st))
      else E.step st tid)
    (E.initial ()) schedule
