type bug = {
  key : string;
  msg : string;
  schedule : int list;
  preemptions : int;
  context_switches : int;
  depth : int;
  execution : int;
}

type stop_reason =
  | Deadline_exceeded
  | State_limit
  | Step_limit
  | Execution_limit
  | First_bug

let stop_reason_string = function
  | Deadline_exceeded -> "wall-clock deadline exceeded"
  | State_limit -> "state limit reached"
  | Step_limit -> "step limit reached"
  | Execution_limit -> "execution limit reached"
  | First_bug -> "stopped at first bug"

type t = {
  strategy : string;
  executions : int;
  distinct_states : int;
  bugs : bug list;
  max_steps : int;
  max_blocks : int;
  max_preemptions : int;
  max_threads : int;
  complete : bool;
  stop_reason : stop_reason option;
  growth : (int * int) array;
  bound_coverage : (int * int) array;
  bound_executions : (int * int) array;
  total_steps : int;
}

let pp_summary fmt t =
  Format.fprintf fmt
    "@[<v>%s: %d executions, %d states, %d bugs%s@ K=%d B=%d c=%d threads=%d@]"
    t.strategy t.executions t.distinct_states (List.length t.bugs)
    (if t.complete then " (complete)"
     else
       match t.stop_reason with
       | Some r -> Printf.sprintf " (%s)" (stop_reason_string r)
       | None -> "")
    t.max_steps t.max_blocks t.max_preemptions t.max_threads
