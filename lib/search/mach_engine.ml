module Interp = Icb_machine.Interp
module State = Icb_machine.State
module Merr = Icb_machine.Merr

type signature_mode =
  | Canonical_state
  | Hb_signature

type config = {
  granularity : Interp.granularity;
  check_races : bool;
  detector : [ `Vclock | `Goldilocks ];
  signature_mode : signature_mode;
}

let default_config =
  {
    granularity = Interp.Sync_only;
    check_races = true;
    detector = `Vclock;
    signature_mode = Canonical_state;
  }

let zing_config =
  {
    granularity = Interp.Every_access;
    check_races = false;
    detector = `Vclock;
    signature_mode = Canonical_state;
  }

let chess_config =
  {
    granularity = Interp.Sync_only;
    check_races = true;
    detector = `Goldilocks;
    signature_mode = Hb_signature;
  }

type detector_state =
  | Det_none
  | Det_vclock of Icb_race.Vcdetect.t
  | Det_gold of Icb_race.Goldilocks.t

type state = {
  mstate : State.t;
  hbs : Icb_race.Hbsig.t;
  det : detector_state;
  race : Icb_race.Report.race option;  (* sticky: a detected race ends the run *)
  depth : int;
  blocks : int;
  npreempt : int;
  sched_rev : int list;
  last_events : Interp.event list;
}

let machine_state s = s.mstate

let events_of_last_step s = s.last_events

module Make (Cfg : sig
  val config : config
  val prog : Icb_machine.Prog.t
end) : Engine.S with type state = state = struct
  type nonrec state = state

  let cfg = Cfg.config

  let init_detector () =
    if not cfg.check_races then Det_none
    else
      match cfg.detector with
      | `Vclock -> Det_vclock Icb_race.Vcdetect.empty
      | `Goldilocks -> Det_gold Icb_race.Goldilocks.empty

  let run_detector det events =
    match det with
    | Det_none -> (Det_none, None)
    | Det_vclock d -> (
      match Icb_race.Vcdetect.observe d events with
      | Ok d -> (Det_vclock d, None)
      | Error r -> (det, Some r))
    | Det_gold d -> (
      match Icb_race.Goldilocks.observe d events with
      | Ok d -> (Det_gold d, None)
      | Error r -> (det, Some r))

  let initial () =
    let r = Interp.start cfg.granularity Cfg.prog in
    let det, race = run_detector (init_detector ()) r.events in
    {
      mstate = r.state;
      hbs = Icb_race.Hbsig.observe Icb_race.Hbsig.empty r.events;
      det;
      race;
      depth = 0;
      blocks = 0;
      npreempt = 0;
      sched_rev = [];
      last_events = r.events;
    }

  let enabled s = if s.race <> None then [] else Interp.enabled s.mstate

  let status s =
    match s.race with
    | Some r ->
      let e = Icb_race.Report.to_merr Cfg.prog r in
      Engine.Failed { key = Merr.key e; msg = Merr.to_string e }
    | None -> (
      match Interp.status s.mstate with
      | Interp.Running -> Engine.Running
      | Interp.Terminated -> Engine.Terminated
      | Interp.Deadlock blocked -> Engine.Deadlock blocked
      | Interp.Error e ->
        Engine.Failed { key = Merr.key e; msg = Merr.to_string e })

  let step s tid =
    let en = enabled s in
    let preempting =
      Engine.preempting ~last_tid:s.mstate.State.last_tid ~enabled:en
        ~chosen:tid
    in
    let r = Interp.step cfg.granularity s.mstate tid in
    let det, race = run_detector s.det r.events in
    {
      mstate = r.state;
      hbs = Icb_race.Hbsig.observe s.hbs r.events;
      det;
      race;
      depth = s.depth + 1;
      blocks = (s.blocks + if r.blocking_op then 1 else 0);
      npreempt = (s.npreempt + if preempting then 1 else 0);
      sched_rev = tid :: s.sched_rev;
      last_events = r.events;
    }

  let signature s =
    match cfg.signature_mode with
    | Canonical_state ->
      (* fold the sticky race flag in so a raced state is distinct *)
      let base = State.signature s.mstate in
      if s.race = None then base else Icb_util.Fnv.int base 1
    | Hb_signature -> Icb_race.Hbsig.signature s.hbs

  let depth s = s.depth
  let blocking_ops s = s.blocks
  let preemptions s = s.npreempt
  let schedule s = List.rev s.sched_rev
  let thread_count s = State.thread_count s.mstate

  (* Persistent states make speculation free: execute the step on the
     side and discard the result.  A step is pinned (dependent on
     everything) when it yields — it perturbs every thread's scheduling —
     or when it does not leave the program running: an erroring step
     truncates the execution, so the commuting square partial-order
     reduction relies on loses a corner. *)
  let step_footprint s tid =
    let s' = step s tid in
    let pinned =
      (State.thread_get s'.mstate tid).State.yielded
      || (match status s' with Engine.Running -> false | _ -> true)
    in
    Engine.Footprint.of_events ~pinned s'.last_events

  (* Every component of [state] is persistent (copy-on-write [State.t],
     immutable detector and happens-before values), so a snapshot is the
     state itself: retaining and restoring it any number of times is
     free and exact. *)
  type snap = state

  let snapshot = Some (fun (s : state) -> s)
  let restore (s : snap) = s
end
