(** The abstract transition system the search strategies explore.

    The paper's algorithm is defined over [enabled] and [execute]; this
    signature adds the bookkeeping the evaluation needs (depth, blocking
    operations, preemptions, signatures for state counting).  Two engines
    implement it: {!Mach_engine} (persistent states of the guest machine —
    the ZING configuration) and [Icb_chess.Engine] (schedule-prefix replay
    of real OCaml code — the CHESS configuration). *)

type status =
  | Running
  | Terminated                              (** every thread finished *)
  | Deadlock of int list                    (** nobody enabled, listed threads blocked *)
  | Failed of { key : string; msg : string }

let is_terminal = function
  | Running -> false
  | Terminated | Deadlock _ | Failed _ -> true

exception Nondeterministic_program of string
(** Raised by stateless (replay-based) engines when re-executing a
    recorded schedule observes a different sequence of synchronization
    operations than the recording — the test body is nondeterministic
    (timing, [Random], I/O or ambient-state leakage).  The search
    strategies contain it as a dedicated, actionable diagnostic instead of
    letting a confusing [Invalid_argument] abort the whole run. *)

(** The variables a single step would touch, for independence checks in
    partial-order reduction.  Two steps commute when their footprints are
    disjoint and neither spawns a thread. *)
module Footprint = struct
  module Var_set = Set.Make (struct
    type t = Icb_machine.Interp.var_id

    let compare = Stdlib.compare
  end)

  type t = {
    vars : Var_set.t;
    pinned : bool;
        (* the step spawns a thread or yields: either changes global
           scheduling state (the enabled set, the yield flags), so it is
           conservatively dependent on everything *)
  }

  (* Heap accesses additionally claim an object-wide pseudo-variable
     [Hcell (addr, -1)], which allocation and deallocation claim too: a
     [free] must conflict with every access to the object even when they
     touch different cells. *)
  let of_events ?(pinned = false) events =
    List.fold_left
      (fun fp (ev : Icb_machine.Interp.event) ->
        match ev with
        | Ev_sync { var; _ } | Ev_data { var; _ } ->
          let vars = Var_set.add var fp.vars in
          let vars =
            match var with
            | Icb_machine.Interp.Hcell (addr, _) ->
              Var_set.add (Icb_machine.Interp.Hcell (addr, -1)) vars
            | Icb_machine.Interp.Gvar _ | Icb_machine.Interp.Svar _ -> vars
          in
          { fp with vars }
        | Ev_lifetime { addr; _ } ->
          { fp with vars = Var_set.add (Icb_machine.Interp.Hcell (addr, -1)) fp.vars }
        | Ev_fork _ -> { fp with pinned = true })
      { vars = Var_set.empty; pinned }
      events

  (* Conservative commutativity: disjoint variable sets, neither step
     pinned. *)
  let independent a b =
    (not a.pinned) && (not b.pinned) && Var_set.disjoint a.vars b.vars
end

module type S = sig
  type state

  val initial : unit -> state

  val enabled : state -> int list
  (** Scheduler-visible enabled threads, in increasing tid order.  Threads
      that just yielded are excluded unless that would empty the set. *)

  val step : state -> int -> state
  (** Execute one scheduling step of the given (enabled) thread.  The
      engine updates its own preemption count: the switch is preempting iff
      the previously running thread is still in [enabled] and differs from
      the chosen thread. *)

  val status : state -> status

  val signature : state -> int64
  (** State identity for coverage counting and caching: the canonical
      machine-state fingerprint for stateful engines, the happens-before
      signature for stateless ones. *)

  val depth : state -> int
  (** Steps executed so far (the paper's K at terminal states). *)

  val blocking_ops : state -> int
  (** Potentially-blocking instructions executed so far (the paper's B). *)

  val preemptions : state -> int
  (** Preempting context switches so far (the paper's c). *)

  val schedule : state -> int list
  (** The schedule so far, oldest first; replaying it from [initial]
      reproduces this state. *)

  val thread_count : state -> int

  val step_footprint : state -> int -> Footprint.t
  (** The footprint of the step the given (enabled) thread would take
      from this state, computed by speculative execution; used by the
      partial-order-reducing strategies.  Persistent-state engines compute
      this cheaply; the stateless engine pays a replay. *)

  type snap
  (** An engine-defined snapshot of a [state], cheap to retain and valid to
      [restore] any number of times.  For persistent-state engines the
      snapshot {e is} the state; engines whose states carry one-shot
      resources (a live effects run) cannot offer this. *)

  val snapshot : (state -> snap) option
  (** [Some capture] when the engine supports prefix-snapshot caching:
      [restore (capture st)] must behave exactly like [st] under every
      operation of this signature, arbitrarily many times.  [None] declines
      the capability — the search then rebuilds states by replaying
      schedule prefixes from [initial] (the CHESS stateless discipline). *)

  val restore : snap -> state
  (** Rehydrate a snapshot.  Never called when [snapshot] is [None]. *)
end

(** Shared preemption-accounting rule (paper, Appendix A): the switch to
    [chosen] at a state whose last step was by [last_tid] is preempting iff
    [last_tid] ran before, is different from [chosen], and is still
    schedulable. *)
let preempting ~last_tid ~enabled ~chosen =
  last_tid >= 0 && chosen <> last_tid && List.mem last_tid enabled
