(** Parallel iterative context bounding across OCaml domains — the
    ICB-shaped entry point over the generic executor.

    The executor itself lives in {!Driver}, generalized over
    {!Strategy.S}; this wrapper instantiates the ICB strategy and
    delegates, keeping the historical [Icb.run_parallel] signature.  Each
    context bound's work queue — replayable schedule prefixes, the same
    representation checkpoints use — is sharded over a pool of worker
    domains with work-stealing deques, merging per-worker statistics and
    bugs at a per-bound barrier.  The ICB invariant is preserved: bound
    [c] is fully drained before any bound [c+1] item runs, so the first
    bug found under [stop_at_first_bug] still carries a minimal preemption
    count.  (Other strategies shard the same way through
    [Explore.run ?domains].)

    {2 Determinism}

    The merge is independent of worker timing: statistics fold with
    commutative operations, bug candidates are absorbed in sorted
    (preemptions, schedule, key) order with their [execution] stamps
    forged to the bound's cumulative count, and the next frontier is
    sorted by (schedule, tid).  A parallel run reports the same bug set,
    per-bound cumulative execution counts ({!Sresult.t.bound_executions}),
    distinct states and total steps as [Explore.run] with the serial
    {!Explore.Icb} strategy — with two caveats: the growth curve has one
    point per bound instead of one per execution, and with [cache = true]
    the cache prunes per worker, so a parallel cached run may explore more
    executions than a serial one (equivalence holds for [cache = false]).

    {2 Limits and checkpoints}

    Limits, the deadline and [stop_at_first_bug] are enforced at work-item
    granularity: workers finish their in-flight item before stopping, so
    final counts can overshoot a limit slightly, and a checkpoint written
    on stop (or periodically, mid-bound, via a worker pause protocol)
    contains exactly the unprocessed items — resuming re-explores no
    schedule.  Checkpoints are cross-resumable: a parallel checkpoint
    resumes serially and vice versa (per-worker caches are not stored; a
    cached resume merely re-explores a little).  Unlike the serial driver,
    a checkpointed prefix that no longer replays is contained as a
    replayable bug on the worker that hit it, not raised as
    [Invalid_argument].

    [options.on_progress] is called with aggregated counts from whichever
    worker finished an execution (serialized by an internal lock, but
    concurrent with other workers' searching); [p_states] between barriers
    is an over-approximation summing per-worker counts. *)

val run :
  (int -> (module Engine.S with type state = 's)) ->
  ?options:Collector.options ->
  ?checkpoint_out:string ->
  ?checkpoint_every:int ->
  ?checkpoint_meta:(string * string) list ->
  ?resume_from:Checkpoint.t ->
  ?telemetry:Icb_obs.Telemetry.t ->
  ?share_states:bool ->
  ?replay_cache:bool ->
  ?on_cache_stats:(Replay_cache.stats -> unit) ->
  domains:int ->
  max_bound:int option ->
  cache:bool ->
  unit ->
  Sresult.t
(** [run engines ~domains ~max_bound ~cache ()] explores with [domains]
    worker domains; worker [i] uses the engine [engines i], so every
    worker gets its own instance (the factory is called once per index,
    sequentially, before any domain is spawned).  For an engine module
    with no module-level mutable state the factory may return the same
    module every time.

    [share_states] (default [false]) lets a deferred work item carry its
    live engine state across the barrier into another worker, skipping the
    prefix replay.  Enable it only when states are plain data that any
    instance can step (the machine engine); engines whose states own
    single-domain resources — the CHESS engine's states hold a live
    run — must leave it off and pay the replay.  Engines advertising the
    {!Engine.S.snapshot} capability get this automatically whenever
    [replay_cache] is on.

    [replay_cache] (default [true]) enables the prefix-snapshot replay
    cache (docs/REPLAY_CACHE.md) for snapshot-capable engines: states
    ride along on work items and each worker keeps a bounded LRU of
    prefix snapshots, so materializing an item costs only the steps past
    its longest cached ancestor.  [~replay_cache:false] restores the pure
    stateless discipline (every prefix replays from the initial state,
    overriding [share_states]); the explored executions, bug set and
    checkpoints are identical either way.  [on_cache_stats] receives the
    run's replay accounting (summed over workers) in both modes.

    Raises [Invalid_argument] if [domains < 1] or [resume_from] holds a
    checkpoint written by a non-ICB strategy (resume those through
    [Explore.resume], which re-derives the strategy from the file). *)
