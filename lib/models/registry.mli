(** Central index of the benchmark suite: every model, its correct and
    buggy variants, and the bound at which the paper (and our
    reproduction) expects each bug — the data behind Tables 1 and 2. *)

type bug_spec = {
  bug_name : string;
  expected_bound : int;   (** Table 2: exact preemption bound exposing it *)
  previously_known : bool; (** the 7 seeded vs the 9 newly found bugs *)
  bug_program : unit -> Icb_machine.Prog.t;
}

type entry = {
  model_name : string;
  paper_threads : int;        (** Table 1's "Max Num Threads" *)
  correct_program : (unit -> Icb_machine.Prog.t) option;
      (** None when the paper's benchmark has no bug-free variant in our
          suite *)
  correct_source : string option;
  bugs : bug_spec list;
  in_table1 : bool;           (** the transaction manager is ZING-only and
                                  absent from Table 1 *)
}

val all : entry list
(** Bluetooth, file system model, work-stealing queue, transaction
    manager, APE, Dryad channels — in the paper's order. *)

val find : string -> entry
(** Raises [Not_found]. *)

val total_bugs : int

val addressable : unit -> (string * (unit -> Icb_machine.Prog.t)) list
(** Every program the CLI can address, with guaranteed-unique names:
    ["<model>"] for a correct variant, ["<model>:<bug>"] for a bug (the
    first token of its display name, index-suffixed when two variants
    would collide), plus a ["<model>:bug"] alias when the model has
    exactly one bug.  Includes the extra Peterson model. *)

val disambiguate : string list -> string list
(** Append a 1-based index to every name that occurs more than once, in
    order of appearance; names already unique pass through unchanged.
    Exposed for the address-collision tests. *)

val loc_of_source : string -> int
(** Non-blank, non-comment-only lines — the LOC counting used for
    Table 1. *)
