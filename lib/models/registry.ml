type bug_spec = {
  bug_name : string;
  expected_bound : int;
  previously_known : bool;
  bug_program : unit -> Icb_machine.Prog.t;
}

type entry = {
  model_name : string;
  paper_threads : int;
  correct_program : (unit -> Icb_machine.Prog.t) option;
  correct_source : string option;
  bugs : bug_spec list;
  in_table1 : bool;
}

let bluetooth =
  {
    model_name = "Bluetooth";
    paper_threads = 3;
    correct_program = Some (fun () -> Bluetooth.program ~bug:false);
    correct_source = Some (Bluetooth.source ~bug:false);
    bugs =
      [
        {
          bug_name = "check-then-add-reference";
          expected_bound = 1;
          previously_known = true;
          bug_program = (fun () -> Bluetooth.program ~bug:true);
        };
      ];
    in_table1 = true;
  }

let filesystem =
  {
    model_name = "File System Model";
    paper_threads = 4;
    correct_program =
      Some (fun () -> Filesystem.program ~threads:Filesystem.default_threads);
    correct_source =
      Some (Filesystem.source ~threads:Filesystem.default_threads);
    bugs = [];
    in_table1 = true;
  }

let wsq_bug name expected variant =
  {
    bug_name = name;
    expected_bound = expected;
    previously_known = true;
    bug_program = (fun () -> Workstealing.program variant);
  }

let workstealing =
  {
    model_name = "Work Stealing Queue";
    paper_threads = 3;
    correct_program = Some (fun () -> Workstealing.program Workstealing.Correct);
    correct_source = Some (Workstealing.source Workstealing.Correct);
    bugs =
      [
        wsq_bug "pop-reads-head-first" 1 Workstealing.Bug_pop_reads_head_first;
        wsq_bug "unlocked-steal" 2 Workstealing.Bug_unlocked_steal;
        wsq_bug "steal-missing-wraparound" 2
          Workstealing.Bug_steal_missing_wraparound;
      ];
    in_table1 = true;
  }

let tx_bug name expected variant =
  {
    bug_name = name;
    expected_bound = expected;
    previously_known = true;
    bug_program = (fun () -> Transaction.program variant);
  }

let transaction =
  {
    model_name = "Transaction Manager";
    paper_threads = 3;
    correct_program = Some (fun () -> Transaction.program Transaction.Correct);
    correct_source = Some (Transaction.source Transaction.Correct);
    bugs =
      [
        tx_bug "split-flush" 2 Transaction.Bug_split_flush;
        tx_bug "stale-entry" 2 Transaction.Bug_stale_entry;
        tx_bug "deferred-flush" 3 Transaction.Bug_deferred_flush;
      ];
    in_table1 = false;
  }

let ape_bug name expected variant =
  {
    bug_name = name;
    expected_bound = expected;
    previously_known = false;
    bug_program = (fun () -> Ape.program variant);
  }

let ape =
  {
    model_name = "APE";
    paper_threads = 4;
    correct_program = Some (fun () -> Ape.program Ape.Correct);
    correct_source = Some (Ape.source Ape.Correct);
    bugs =
      [
        ape_bug "missing-join" 0 Ape.Bug_missing_join;
        ape_bug "auto-reset-start" 0 Ape.Bug_auto_reset_start;
        ape_bug "lost-completion" 1 Ape.Bug_lost_completion;
        ape_bug "unlocked-claim" 2 Ape.Bug_unlocked_claim;
      ];
    in_table1 = true;
  }

let dryad_bug name expected variant =
  {
    bug_name = name;
    expected_bound = expected;
    previously_known = false;
    bug_program = (fun () -> Dryad.program variant);
  }

let dryad =
  {
    model_name = "Dryad Channels";
    paper_threads = 5;
    correct_program = Some (fun () -> Dryad.program Dryad.Correct);
    correct_source = Some (Dryad.source Dryad.Correct);
    bugs =
      [
        dryad_bug "auto-reset-stop" 0 Dryad.Bug_auto_reset_stop;
        dryad_bug "close-waits-ack (Fig 3 use-after-free)" 1
          Dryad.Bug_close_waits_ack;
        dryad_bug "nonatomic-refcount" 1 Dryad.Bug_nonatomic_refcount;
        dryad_bug "double-release" 1 Dryad.Bug_double_release;
        dryad_bug "unlocked-send" 1 Dryad.Bug_unlocked_send;
      ];
    in_table1 = true;
  }

let all = [ bluetooth; filesystem; workstealing; transaction; ape; dryad ]

(* --- CLI addressing ------------------------------------------------------ *)

(* Bugs are addressed by the first token of their display name, which can
   collide when two variants share it ("lost-update (reader)" /
   "lost-update (writer)" would both shorten to "lost-update" and the
   second would silently shadow the first in an assoc list).  Disambiguate
   at build time: every name involved in a collision gets a 1-based index
   suffix, so no addressable name is ever ambiguous. *)
let disambiguate names =
  let count name =
    List.length (List.filter (String.equal name) names)
  in
  let seen = Hashtbl.create 8 in
  List.map
    (fun name ->
      if count name <= 1 then name
      else begin
        let i = 1 + Option.value ~default:0 (Hashtbl.find_opt seen name) in
        Hashtbl.replace seen name i;
        Printf.sprintf "%s-%d" name i
      end)
    names

let first_token s =
  match String.index_opt s ' ' with
  | Some i -> String.sub s 0 i
  | None -> s

let addressable () =
  let of_entry (e : entry) =
    let base = String.lowercase_ascii e.model_name in
    let base = String.map (fun c -> if c = ' ' then '-' else c) base in
    let correct =
      match e.correct_program with
      | Some p -> [ (base, p) ]
      | None -> []
    in
    let shorts =
      disambiguate
        (List.map (fun (b : bug_spec) -> first_token b.bug_name) e.bugs)
    in
    let bugs =
      List.map2
        (fun short (b : bug_spec) -> (base ^ ":" ^ short, b.bug_program))
        shorts e.bugs
    in
    (* a model with exactly one bug also answers to "<model>:bug" *)
    let alias =
      match e.bugs with
      | [ b ] -> [ (base ^ ":bug", b.bug_program) ]
      | _ -> []
    in
    correct @ bugs @ alias
  in
  List.concat_map of_entry all
  @ (* Peterson is an extra model beyond the paper's suite (kept out of
       [all] so the Table 1/2 reproductions stay faithful), but the CLI
       should still reach it *)
  List.map
    (fun v ->
      let name =
        match v with
        | Peterson.Correct -> "peterson"
        | v -> "peterson:" ^ Peterson.variant_name v
      in
      (name, fun () -> Peterson.program v))
    Peterson.variants

let find name =
  List.find (fun e -> String.equal e.model_name name) all

let total_bugs = List.fold_left (fun n e -> n + List.length e.bugs) 0 all

let loc_of_source src =
  let lines = String.split_on_char '\n' src in
  let is_code line =
    let t = String.trim line in
    t <> "" && not (String.length t >= 2 && t.[0] = '/' && t.[1] = '/')
  in
  List.length (List.filter is_code lines)
