type t = { mutable state : int64 }

let golden_gamma = 0x9e3779b97f4a7c15L

let create seed = { state = seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  (* keep 62 bits so the value fits OCaml's native int non-negatively *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let split t = create (next_int64 t)

let state t = t.state

let of_state s = { state = s }
