type section = Magic | Version | Digest | Length | Payload

type error =
  | Cannot_open of string
  | Truncated of section
  | Bad_magic
  | Bad_version of int
  | Negative_length
  | Digest_mismatch

let write_frame oc ~magic ~version ~payload =
  output_string oc magic;
  output_binary_int oc version;
  output_string oc (Digest.string payload);
  output_binary_int oc (String.length payload);
  output_string oc payload

let read_frame ?(check_version = fun _ -> true) ic ~magic =
  let ( let* ) = Result.bind in
  let read_exactly n section =
    match really_input_string ic n with
    | s -> Ok s
    | exception End_of_file -> Error (Truncated section)
  in
  let read_int section =
    match input_binary_int ic with
    | v -> Ok v
    | exception End_of_file -> Error (Truncated section)
  in
  let* m = read_exactly (String.length magic) Magic in
  if m <> magic then Error Bad_magic
  else
    let* v = read_int Version in
    if not (check_version v) then Error (Bad_version v)
    else
      let* digest = read_exactly 16 Digest in
      let* len = read_int Length in
      if len < 0 then Error Negative_length
      else
        let* payload = read_exactly len Payload in
        if Stdlib.Digest.string payload <> digest then Error Digest_mismatch
        else Ok (v, payload)

let write_file ~path ~magic ~version ~payload =
  let tmp =
    Filename.temp_file
      ~temp_dir:(Filename.dirname path)
      (Filename.basename path) ".tmp"
  in
  let oc = open_out_bin tmp in
  (try
     write_frame oc ~magic ~version ~payload;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let read_file ?check_version ~path ~magic () =
  match open_in_bin path with
  | exception Sys_error msg -> Error (Cannot_open msg)
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> read_frame ?check_version ic ~magic)
