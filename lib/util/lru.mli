(** A bounded least-recently-used map.

    Plain single-owner mutable structure: the search driver keeps one per
    worker, so no locking.  [find] refreshes recency; [add] inserts or
    replaces and evicts the least recently used binding when the capacity
    is exceeded. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** [capacity] must be at least 1. *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Marks the binding most recently used. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace; the new binding is most recently used.  Evicts the
    least recently used binding when the map is over capacity. *)

val clear : ('k, 'v) t -> unit
