(* Hash table + intrusive doubly-linked recency list; every operation is
   O(1) amortized. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;  (* towards most recent *)
  mutable next : ('k, 'v) node option;  (* towards least recent *)
}

type ('k, 'v) t = {
  cap : int;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable first : ('k, 'v) node option;  (* most recently used *)
  mutable last : ('k, 'v) node option;   (* least recently used *)
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be positive";
  { cap = capacity; tbl = Hashtbl.create (min capacity 64); first = None; last = None }

let capacity t = t.cap
let length t = Hashtbl.length t.tbl

let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.first <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.last <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.first;
  n.prev <- None;
  (match t.first with Some f -> f.prev <- Some n | None -> t.last <- Some n);
  t.first <- Some n

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some n ->
    (match t.first with
    | Some f when f == n -> ()
    | _ ->
      unlink t n;
      push_front t n);
    Some n.value

let evict t =
  match t.last with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.tbl n.key

let add t k v =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
    n.value <- v;
    unlink t n;
    push_front t n
  | None ->
    let n = { key = k; value = v; prev = None; next = None } in
    Hashtbl.replace t.tbl k n;
    push_front t n;
    if Hashtbl.length t.tbl > t.cap then evict t

let clear t =
  Hashtbl.reset t.tbl;
  t.first <- None;
  t.last <- None
