(** MD5-checksum + length framing shared by checkpoint files, repro
    bundles and the distributed wire protocol.

    A frame is
    {v
      bytes 0..m-1   caller-chosen magic (m = String.length magic)
      bytes m..m+3   format version (big-endian int, output_binary_int)
      next 16        MD5 digest of the payload
      next 4         payload length (big-endian int)
      rest           payload bytes
    v}

    Errors are structured so each caller keeps its own message wording;
    [read_frame]/[read_file] never raise on malformed input. *)

type section = Magic | Version | Digest | Length | Payload

type error =
  | Cannot_open of string  (** [Sys_error] message from [open_in_bin] *)
  | Truncated of section   (** input ended while reading this section *)
  | Bad_magic
  | Bad_version of int     (** rejected by [check_version] *)
  | Negative_length
  | Digest_mismatch

(** Append one frame to [oc] (set to binary mode by the caller). *)
val write_frame :
  out_channel -> magic:string -> version:int -> payload:string -> unit

(** Read one frame, validating magic and digest.  [check_version]
    (default: accept all) rejects unsupported versions before the
    payload is read, so a bad version is reported even on a file whose
    payload is also damaged.  Returns [(version, payload)]. *)
val read_frame :
  ?check_version:(int -> bool) ->
  in_channel ->
  magic:string ->
  (int * string, error) result

(** Write a single-frame file: temp file in the target's directory,
    then atomic rename, so a killed writer never leaves a half-written
    file under [path]. *)
val write_file :
  path:string -> magic:string -> version:int -> payload:string -> unit

val read_file :
  ?check_version:(int -> bool) ->
  path:string ->
  magic:string ->
  unit ->
  (int * string, error) result
