(** Deterministic pseudo-random numbers (SplitMix64).

    The random-walk search strategy and the property-test generators must be
    reproducible from a seed independently of any global [Random] state, so
    the checker carries its own small generator. *)

type t

val create : int64 -> t
(** A generator seeded with the given value.  Equal seeds yield equal
    streams. *)

val next_int64 : t -> int64
(** Advances the generator and returns 64 fresh bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list.  Raises [Invalid_argument] on an
    empty list. *)

val split : t -> t
(** A new generator whose stream is independent of the parent's subsequent
    output. *)

val state : t -> int64
(** The generator's current internal state.  Together with {!of_state} this
    lets a long-running search checkpoint its random stream and resume it in
    another process at exactly the point it left off. *)

val of_state : int64 -> t
(** Rebuild a generator from a {!state} snapshot; the rebuilt generator
    produces the same stream the snapshotted one would have. *)
