(* Static shared-variable metadata for bounding strategies.

   Variable bounding (Bindal-Bansal-Lal) needs a deterministic ranking of
   a program's shared variables so "the N hottest variables" means the
   same thing on every run, every worker and every resume.  We rank by
   static access count: the number of instructions anywhere in the
   program that touch the variable.  This over-approximates dynamic
   heat (an access inside a loop counts once) but is a pure function of
   the compiled program, which is exactly what checkpoint/resume and
   parallel determinism require.

   Heap cells are excluded: their addresses are dynamic, so no static
   ranking exists for them — a variable bound simply never admits
   preemptions around heap-only accesses. *)

type svar = {
  v_var : Interp.var_id;  (* element index 0; bounding is per-variable *)
  v_name : string;
  v_count : int;          (* static shared-access sites *)
}

let ranked (p : Prog.t) =
  let g = Array.make (Array.length p.Prog.globals) 0 in
  let s = Array.make (Array.length p.Prog.syncs) 0 in
  let bump a i = a.(i) <- a.(i) + 1 in
  Array.iter
    (fun (proc : Prog.proc) ->
      Array.iter
        (fun (i : Instr.t) ->
          match i with
          | Instr.Load { gid; _ }
          | Instr.Store { gid; _ }
          | Instr.Cas { gid; _ }
          | Instr.Fetch_add { gid; _ } -> bump g gid
          | Instr.Lock o
          | Instr.Unlock o
          | Instr.Wait o
          | Instr.Signal o
          | Instr.Reset o
          | Instr.Sem_acquire o
          | Instr.Sem_release o -> bump s o.Instr.sid
          | _ -> ())
        proc.Prog.code)
    p.Prog.procs;
  let globals =
    List.init (Array.length g) (fun i ->
        {
          v_var = Interp.Gvar (i, 0);
          v_name = p.Prog.globals.(i).Prog.gname;
          v_count = g.(i);
        })
  in
  let syncs =
    List.init (Array.length s) (fun i ->
        {
          v_var = Interp.Svar (i, 0);
          v_name = p.Prog.syncs.(i).Prog.sname;
          v_count = s.(i);
        })
  in
  (* stable sort: ties keep declaration order, globals before syncs *)
  globals @ syncs
  |> List.filter (fun v -> v.v_count > 0)
  |> List.stable_sort (fun a b -> compare b.v_count a.v_count)
