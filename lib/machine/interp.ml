type granularity =
  | Every_access
  | Sync_only

type var_id =
  | Gvar of int * int
  | Hcell of int * int
  | Svar of int * int

type event =
  | Ev_data of { tid : int; var : var_id; write : bool }
  | Ev_sync of { tid : int; var : var_id }
  | Ev_fork of { parent : int; child : int }
  | Ev_lifetime of { tid : int; addr : int; freed : bool }

type step_result = {
  state : State.t;
  events : event list;
  blocking_op : bool;
}

(* Bound on thread-local instructions executed inside one step; a thread
   spinning without touching shared state would otherwise hang the
   checker. *)
let local_fuel = 20_000

let var_name (prog : Prog.t) = function
  | Gvar (gid, idx) ->
    let g = prog.globals.(gid) in
    if g.gsize = 1 then g.gname else Printf.sprintf "%s[%d]" g.gname idx
  | Hcell (addr, idx) -> Printf.sprintf "&%d.[%d]" addr idx
  | Svar (sid, idx) ->
    let s = prog.syncs.(sid) in
    if s.ssize = 1 then s.sname else Printf.sprintf "%s[%d]" s.sname idx

(* --- small-step execution machinery ---------------------------------- *)

exception Model_error of Merr.t

type ctx = {
  mutable st : State.t;
  mutable evs : event list;  (* reversed *)
  gran : granularity;
}

let eval_operand (th : State.thread) = function
  | Instr.Reg r -> th.regs.(r)
  | Instr.Imm v -> v

let eval_int tid th op =
  match eval_operand th op with
  | Value.Int n -> n
  | v ->
    ignore tid;
    invalid_arg ("Interp: expected int, got " ^ Value.to_string v)

let set_reg (th : State.thread) r v =
  let regs = Array.copy th.regs in
  regs.(r) <- v;
  { th with regs }

let is_volatile (prog : Prog.t) gid = prog.globals.(gid).gvolatile

let classify_here (st : State.t) i = Instr.classify ~volatile:(is_volatile st.prog) i

(* Is instruction [i] a scheduling point under granularity [gran]? *)
let is_sched_point gran cls =
  match cls, gran with
  | Instr.Class_sync, _ -> true
  | Instr.Class_data, Every_access -> true
  | Instr.Class_data, Sync_only -> false
  | Instr.Class_local, _ -> false

(* Evaluates operands straight from the thread's registers — no
   materialized argument-value list on this per-step path. *)
let eval_prim tid (th : State.thread) op (args : Instr.operand list) =
  let value1 () =
    match args with
    | [ a ] -> eval_operand th a
    | _ -> invalid_arg "Interp: prim arity"
  in
  let value2 () =
    match args with
    | [ a; b ] -> (eval_operand th a, eval_operand th b)
    | _ -> invalid_arg "Interp: prim arity"
  in
  let int1 () =
    match value1 () with
    | Value.Int a -> a
    | _ -> invalid_arg "Interp: prim arity/type"
  in
  let int2 () =
    match value2 () with
    | Value.Int a, Value.Int b -> (a, b)
    | _ -> invalid_arg "Interp: prim arity/type"
  in
  let bool_of_cmp c = Value.Bool c in
  match (op : Instr.prim) with
  | Add -> let a, b = int2 () in Value.Int (a + b)
  | Sub -> let a, b = int2 () in Value.Int (a - b)
  | Mul -> let a, b = int2 () in Value.Int (a * b)
  | Div ->
    let a, b = int2 () in
    if b = 0 then raise (Model_error (Merr.Division_by_zero { tid }))
    else Value.Int (a / b)
  | Mod ->
    let a, b = int2 () in
    if b = 0 then raise (Model_error (Merr.Division_by_zero { tid }))
    else Value.Int (a mod b)
  | Neg -> Value.Int (-int1 ())
  | Min -> let a, b = int2 () in Value.Int (min a b)
  | Max -> let a, b = int2 () in Value.Int (max a b)
  | Eq -> let a, b = value2 () in bool_of_cmp (Value.equal a b)
  | Ne -> let a, b = value2 () in bool_of_cmp (not (Value.equal a b))
  | Lt -> let a, b = int2 () in bool_of_cmp (a < b)
  | Le -> let a, b = int2 () in bool_of_cmp (a <= b)
  | Gt -> let a, b = int2 () in bool_of_cmp (a > b)
  | Ge -> let a, b = int2 () in bool_of_cmp (a >= b)
  | And -> let a, b = value2 () in Value.Bool (Value.truthy a && Value.truthy b)
  | Or -> let a, b = value2 () in Value.Bool (Value.truthy a || Value.truthy b)
  | Not -> Value.Bool (not (Value.truthy (value1 ())))

let resolve_objref (st : State.t) tid th ({ sid; sidx } : Instr.objref) =
  let idx = eval_int tid th sidx in
  let size = State.sync_size st ~sid in
  if idx < 0 || idx >= size then
    raise
      (Model_error
         (Merr.Out_of_bounds
            { tid; what = st.prog.syncs.(sid).sname; idx; size }));
  (sid, idx)

let global_idx (st : State.t) tid th gid idx_op =
  let idx = eval_int tid th idx_op in
  let size = State.global_size st ~gid in
  if idx < 0 || idx >= size then
    raise
      (Model_error
         (Merr.Out_of_bounds
            { tid; what = st.prog.globals.(gid).gname; idx; size }));
  idx

let heap_cell (st : State.t) tid h_op th =
  match eval_operand th h_op with
  | Value.Handle addr ->
    if addr < 0 then raise (Model_error (Merr.Invalid_handle { tid; addr }));
    (match State.Heap_map.find_opt addr st.heap with
    | None -> raise (Model_error (Merr.Invalid_handle { tid; addr }))
    | Some cell ->
      if cell.freed then
        raise (Model_error (Merr.Use_after_free { tid; addr }));
      (addr, cell))
  | v -> invalid_arg ("Interp: expected handle, got " ^ Value.to_string v)

let heap_idx tid addr (cell : State.heap_cell) idx =
  let size = Array.length cell.data in
  if idx < 0 || idx >= size then
    raise
      (Model_error
         (Merr.Out_of_bounds
            { tid; what = Printf.sprintf "&%d" addr; idx; size }))

let emit ctx ev = ctx.evs <- ev :: ctx.evs

let emit_global_access ctx tid gid idx ~write =
  if is_volatile ctx.st.prog gid then
    emit ctx (Ev_sync { tid; var = Gvar (gid, idx) })
  else emit ctx (Ev_data { tid; var = Gvar (gid, idx); write })

let instr_enabled (st : State.t) (th : State.thread) =
  let code = st.prog.procs.(th.proc).code in
  if th.pc >= Array.length code then true
  else
    let resolve ({ sid; sidx } : Instr.objref) =
      match eval_operand th sidx with
      | Value.Int idx when idx >= 0 && idx < State.sync_size st ~sid ->
        Some (State.sync_get st ~sid ~idx)
      | Value.Int _ -> None (* out of bounds: let step report the error *)
      | Value.Bool _ | Value.Handle _ -> None
    in
    match code.(th.pc) with
    | Lock o -> (
      match resolve o with Some (Mutex_cell owner) -> owner = -1 | _ -> true)
    | Wait o -> (
      match resolve o with Some (Event_cell s) -> s | _ -> true)
    | Sem_acquire o -> (
      match resolve o with Some (Sem_cell n) -> n > 0 | _ -> true)
    | _ -> true

(* Execute the single instruction at [tid]'s pc.  Updates [ctx.st] (pc
   advanced, effects applied) and appends events.  Raises [Model_error] on
   model bugs. *)
let rec exec_instr ctx tid =
  let st = ctx.st in
  let th = State.thread_get st tid in
  let code = st.prog.procs.(th.proc).code in
  let advance_pc (th : State.thread) = { th with pc = th.pc + 1 } in
  match code.(th.pc) with
  | Load { dst; gid; idx } ->
    let i = global_idx st tid th gid idx in
    emit_global_access ctx tid gid i ~write:false;
    let v = State.global_get st ~gid ~idx:i in
    ctx.st <- State.thread_set st tid (advance_pc (set_reg th dst v))
  | Store { gid; idx; src } ->
    let i = global_idx st tid th gid idx in
    emit_global_access ctx tid gid i ~write:true;
    let v = eval_operand th src in
    let st = State.global_set st ~gid ~idx:i v in
    ctx.st <- State.thread_set st tid (advance_pc th)
  | Cas { dst; gid; idx; expect; update } ->
    let i = global_idx st tid th gid idx in
    emit ctx (Ev_sync { tid; var = Gvar (gid, i) });
    let old = State.global_get st ~gid ~idx:i in
    let st =
      if Value.equal old (eval_operand th expect) then
        State.global_set st ~gid ~idx:i (eval_operand th update)
      else st
    in
    ctx.st <- State.thread_set st tid (advance_pc (set_reg th dst old))
  | Fetch_add { dst; gid; idx; delta } ->
    let i = global_idx st tid th gid idx in
    emit ctx (Ev_sync { tid; var = Gvar (gid, i) });
    let old = State.global_get st ~gid ~idx:i in
    let st =
      State.global_set st ~gid ~idx:i
        (Value.Int (Value.as_int old + eval_int tid th delta))
    in
    ctx.st <- State.thread_set st tid (advance_pc (set_reg th dst old))
  | Load_heap { dst; h; idx } ->
    let addr, cell = heap_cell st tid h th in
    let i = eval_int tid th idx in
    heap_idx tid addr cell i;
    emit ctx (Ev_data { tid; var = Hcell (addr, i); write = false });
    ctx.st <- State.thread_set st tid (advance_pc (set_reg th dst cell.data.(i)))
  | Store_heap { h; idx; src } ->
    let addr, cell = heap_cell st tid h th in
    let i = eval_int tid th idx in
    heap_idx tid addr cell i;
    emit ctx (Ev_data { tid; var = Hcell (addr, i); write = true });
    let data = Array.copy cell.data in
    data.(i) <- eval_operand th src;
    let heap = State.Heap_map.add addr { cell with data } st.heap in
    ctx.st <- State.thread_set { st with heap } tid (advance_pc th)
  | Alloc { dst; size } ->
    let n = eval_int tid th size in
    if n < 0 then
      raise
        (Model_error (Merr.Out_of_bounds { tid; what = "alloc"; idx = n; size = n }));
    let addr = st.next_addr in
    let heap =
      State.Heap_map.add addr
        ({ data = Array.make n Value.zero; freed = false } : State.heap_cell)
        st.heap
    in
    let st = { st with heap; next_addr = addr + 1 } in
    emit ctx (Ev_lifetime { tid; addr; freed = false });
    ctx.st <- State.thread_set st tid (advance_pc (set_reg th dst (Value.Handle addr)))
  | Free { h } -> (
    match eval_operand th h with
    | Value.Handle addr ->
      if addr < 0 then raise (Model_error (Merr.Invalid_handle { tid; addr }));
      (match State.Heap_map.find_opt addr st.heap with
      | None -> raise (Model_error (Merr.Invalid_handle { tid; addr }))
      | Some cell ->
        if cell.freed then raise (Model_error (Merr.Double_free { tid; addr }));
        emit ctx (Ev_lifetime { tid; addr; freed = true });
        let heap = State.Heap_map.add addr { cell with freed = true } st.heap in
        ctx.st <- State.thread_set { st with heap } tid (advance_pc th))
    | v -> invalid_arg ("Interp: free of non-handle " ^ Value.to_string v))
  | Prim { dst; op; args } ->
    let v = eval_prim tid th op args in
    ctx.st <- State.thread_set st tid (advance_pc (set_reg th dst v))
  | Mov { dst; src } ->
    ctx.st <- State.thread_set st tid (advance_pc (set_reg th dst (eval_operand th src)))
  | Jump l -> ctx.st <- State.thread_set st tid { th with pc = l }
  | Jump_if_zero { cond; target } ->
    let taken = not (Value.truthy (eval_operand th cond)) in
    ctx.st <-
      State.thread_set st tid
        (if taken then { th with pc = target } else advance_pc th)
  | Assert { cond; msg } ->
    if not (Value.truthy (eval_operand th cond)) then
      raise (Model_error (Merr.Assert_failure { tid; msg }));
    ctx.st <- State.thread_set st tid (advance_pc th)
  | Lock o ->
    let sid, i = resolve_objref st tid th o in
    emit ctx (Ev_sync { tid; var = Svar (sid, i) });
    (match State.sync_get st ~sid ~idx:i with
    | Mutex_cell -1 ->
      let st = State.sync_set st ~sid ~idx:i (Mutex_cell tid) in
      ctx.st <- State.thread_set st tid (advance_pc th)
    | Mutex_cell _ -> invalid_arg "Interp: lock of held mutex (not enabled)"
    | Event_cell _ | Sem_cell _ -> invalid_arg "Interp: lock of non-mutex")
  | Unlock o ->
    let sid, i = resolve_objref st tid th o in
    emit ctx (Ev_sync { tid; var = Svar (sid, i) });
    (match State.sync_get st ~sid ~idx:i with
    | Mutex_cell owner when owner = tid ->
      let st = State.sync_set st ~sid ~idx:i (Mutex_cell (-1)) in
      ctx.st <- State.thread_set st tid (advance_pc th)
    | Mutex_cell _ ->
      raise
        (Model_error
           (Merr.Unlock_not_held { tid; sync = st.prog.syncs.(sid).sname }))
    | Event_cell _ | Sem_cell _ -> invalid_arg "Interp: unlock of non-mutex")
  | Wait o ->
    let sid, i = resolve_objref st tid th o in
    emit ctx (Ev_sync { tid; var = Svar (sid, i) });
    (match State.sync_get st ~sid ~idx:i, st.prog.syncs.(sid).skind with
    | Event_cell true, Prog.Event { manual; _ } ->
      let st =
        if manual then st else State.sync_set st ~sid ~idx:i (Event_cell false)
      in
      ctx.st <- State.thread_set st tid (advance_pc th)
    | Event_cell false, _ -> invalid_arg "Interp: wait on unsignaled (not enabled)"
    | (Mutex_cell _ | Sem_cell _), _ | Event_cell _, (Prog.Mutex | Prog.Semaphore _)
      -> invalid_arg "Interp: wait on non-event")
  | Signal o ->
    let sid, i = resolve_objref st tid th o in
    emit ctx (Ev_sync { tid; var = Svar (sid, i) });
    (match State.sync_get st ~sid ~idx:i with
    | Event_cell _ ->
      let st = State.sync_set st ~sid ~idx:i (Event_cell true) in
      ctx.st <- State.thread_set st tid (advance_pc th)
    | Mutex_cell _ | Sem_cell _ -> invalid_arg "Interp: signal of non-event")
  | Reset o ->
    let sid, i = resolve_objref st tid th o in
    emit ctx (Ev_sync { tid; var = Svar (sid, i) });
    (match State.sync_get st ~sid ~idx:i with
    | Event_cell _ ->
      let st = State.sync_set st ~sid ~idx:i (Event_cell false) in
      ctx.st <- State.thread_set st tid (advance_pc th)
    | Mutex_cell _ | Sem_cell _ -> invalid_arg "Interp: reset of non-event")
  | Sem_acquire o ->
    let sid, i = resolve_objref st tid th o in
    emit ctx (Ev_sync { tid; var = Svar (sid, i) });
    (match State.sync_get st ~sid ~idx:i with
    | Sem_cell n when n > 0 ->
      let st = State.sync_set st ~sid ~idx:i (Sem_cell (n - 1)) in
      ctx.st <- State.thread_set st tid (advance_pc th)
    | Sem_cell _ -> invalid_arg "Interp: sem_acquire at zero (not enabled)"
    | Mutex_cell _ | Event_cell _ -> invalid_arg "Interp: sem op on non-semaphore")
  | Sem_release o ->
    let sid, i = resolve_objref st tid th o in
    emit ctx (Ev_sync { tid; var = Svar (sid, i) });
    (match State.sync_get st ~sid ~idx:i with
    | Sem_cell n ->
      let st = State.sync_set st ~sid ~idx:i (Sem_cell (n + 1)) in
      ctx.st <- State.thread_set st tid (advance_pc th)
    | Mutex_cell _ | Event_cell _ -> invalid_arg "Interp: sem op on non-semaphore")
  | Spawn { proc; args } ->
    let p = ctx.st.prog.procs.(proc) in
    let regs = Array.make p.nregs Value.zero in
    List.iteri (fun i a -> regs.(i) <- eval_operand th a) args;
    let child : State.thread =
      {
        proc;
        pc = 0;
        regs;
        finished = Array.length p.code = 0;
        yielded = false;
        atomic = 0;
      }
    in
    let st = State.thread_set st tid (advance_pc th) in
    let st, child_tid = State.add_thread st child in
    emit ctx (Ev_fork { parent = tid; child = child_tid });
    ctx.st <- st;
    (* park the child at its first scheduling point *)
    park ctx child_tid
  | Yield ->
    ctx.st <- State.thread_set st tid (advance_pc { th with yielded = true })
  | Atomic_begin ->
    ctx.st <- State.thread_set st tid (advance_pc { th with atomic = th.atomic + 1 })
  | Atomic_end ->
    if th.atomic <= 0 then invalid_arg "Interp: atomic_end without atomic_begin";
    ctx.st <- State.thread_set st tid (advance_pc { th with atomic = th.atomic - 1 })
  | Halt ->
    (* a finished thread's yield flag is scheduling residue; clear it so
       equivalent executions reach identical terminal states *)
    ctx.st <- State.thread_set st tid { th with finished = true; yielded = false }

(* Run [tid] forward through non-scheduling instructions until it is parked
   at a scheduling point or finished.  Inside an atomic section every
   instruction is non-scheduling; the thread only parks where it would
   block (ZING semantics: atomicity is released at blocking points). *)
and park ctx tid =
  let fuel = ref local_fuel in
  let rec go () =
    let th = State.thread_get ctx.st tid in
    if not th.finished then begin
      let code = ctx.st.prog.procs.(th.proc).code in
      if th.pc >= Array.length code then
        ctx.st <-
          State.thread_set ctx.st tid { th with finished = true; yielded = false }
      else begin
        let i = code.(th.pc) in
        let stop =
          if th.atomic > 0 then
            Instr.is_potentially_blocking i && not (instr_enabled ctx.st th)
          else is_sched_point ctx.gran (classify_here ctx.st i)
        in
        if stop then ()
        else begin
          decr fuel;
          if !fuel <= 0 then raise (Model_error (Merr.Local_divergence { tid }));
          exec_instr ctx tid;
          go ()
        end
      end
    end
  in
  go ()

let finish_result ctx =
  { state = ctx.st; events = List.rev ctx.evs; blocking_op = false }

let with_error ctx e = { ctx.st with error = Some e }

let start gran prog =
  (match Prog.validate prog with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Interp.start: invalid program: " ^ msg));
  let ctx = { st = State.initial prog; evs = []; gran } in
  try
    park ctx 0;
    finish_result ctx
  with Model_error e ->
    { state = with_error ctx e; events = List.rev ctx.evs; blocking_op = false }

(* --- enabledness and status ------------------------------------------ *)

let enabled_raw (st : State.t) =
  match st.error with
  | Some _ -> []
  | None ->
    let r = ref [] in
    for tid = Array.length st.threads - 1 downto 0 do
      let th = st.threads.(tid) in
      if (not th.finished) && instr_enabled st th then r := tid :: !r
    done;
    !r

(* Per-domain scratch holding one enabledness byte per thread, so the
   search hot path allocates exactly the list it returns: enabledness is
   decided in one forward pass over the scratch (which also learns
   whether any enabled thread is awake), then the list is built backward
   without re-running [instr_enabled] or filtering a copy.  Domain-local,
   so parallel workers never contend. *)
let enabled_scratch : Bytes.t ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref (Bytes.create 16))

let enabled (st : State.t) =
  match st.error with
  | Some _ -> []
  | None ->
    let n = Array.length st.threads in
    let cell = Domain.DLS.get enabled_scratch in
    if Bytes.length !cell < n then cell := Bytes.create (max n (2 * Bytes.length !cell));
    let bits = !cell in
    let any = ref false in
    let any_awake = ref false in
    for tid = 0 to n - 1 do
      let th = Array.unsafe_get st.threads tid in
      let on = (not th.finished) && instr_enabled st th in
      Bytes.unsafe_set bits tid (if on then '\001' else '\000');
      if on then begin
        any := true;
        if not th.yielded then any_awake := true
      end
    done;
    if not !any then []
    else begin
      (* yield flags hide a thread only while some awake thread remains:
         a yielding thread cannot disable the whole program *)
      let keep_yielded = not !any_awake in
      let r = ref [] in
      for tid = n - 1 downto 0 do
        if
          Bytes.unsafe_get bits tid = '\001'
          && (keep_yielded || not (Array.unsafe_get st.threads tid).yielded)
        then r := tid :: !r
      done;
      !r
    end

type status =
  | Running
  | Terminated
  | Deadlock of int list
  | Error of Merr.t

(* Existence check behind [status]: allocation-free, unlike building the
   full enabled list just to test it for emptiness. *)
let has_enabled (st : State.t) =
  let n = Array.length st.threads in
  let rec go tid =
    tid < n
    &&
    let th = Array.unsafe_get st.threads tid in
    ((not th.finished) && instr_enabled st th) || go (tid + 1)
  in
  go 0

let status (st : State.t) =
  match st.error with
  | Some e -> Error e
  | None ->
    if has_enabled st then Running
    else if State.all_finished st then Terminated
    else begin
      let blocked = ref [] in
      Array.iteri
        (fun tid (th : State.thread) ->
          if not th.finished then blocked := tid :: !blocked)
        st.threads;
      Deadlock (List.rev !blocked)
    end

let clear_yields (st : State.t) =
  if Array.exists (fun (th : State.thread) -> th.yielded) st.threads then
    {
      st with
      threads =
        Array.map (fun (th : State.thread) -> { th with yielded = false }) st.threads;
    }
  else st

let step gran (st : State.t) tid =
  (match st.error with
  | Some _ -> invalid_arg "Interp.step: error state"
  | None -> ());
  let th = State.thread_get st tid in
  if th.finished then invalid_arg "Interp.step: finished thread";
  if not (instr_enabled st th) then invalid_arg "Interp.step: blocked thread";
  let st = clear_yields st in
  let st = { st with last_tid = tid } in
  let ctx = { st; evs = []; gran } in
  let th = State.thread_get st tid in
  let code = st.prog.procs.(th.proc).code in
  let blocking_op =
    th.pc < Array.length code && Instr.is_potentially_blocking code.(th.pc)
  in
  try
    (if th.pc >= Array.length code then
       ctx.st <-
         State.thread_set ctx.st tid { th with finished = true; yielded = false }
     else exec_instr ctx tid);
    park ctx tid;
    { state = ctx.st; events = List.rev ctx.evs; blocking_op }
  with Model_error e ->
    { state = with_error ctx e; events = List.rev ctx.evs; blocking_op }
