(** Static shared-variable metadata: the deterministic variable ranking
    behind the variable-bounding search strategies (docs/BOUNDS.md).

    [ranked p] lists every global and synchronization object of [p] with
    at least one static access site, heaviest first (access-site count
    descending, ties in declaration order, globals before synchronization
    objects).  The ranking is a pure function of the compiled program, so
    "the N hottest variables" is identical across runs, parallel workers
    and checkpoint resumes.  Heap cells are excluded — their addresses
    are dynamic, so they cannot be ranked statically. *)

type svar = {
  v_var : Interp.var_id;
      (** [Gvar (id, 0)] or [Svar (id, 0)]; bounding treats a whole array
          as one variable, so the element index is irrelevant *)
  v_name : string;
  v_count : int;  (** static shared-access sites *)
}

val ranked : Prog.t -> svar list
