module Engine = Icb_search.Engine
module Hbsig = Icb_race.Hbsig
module Vcdetect = Icb_race.Vcdetect

let replay_count = ref 0

let replays () = !replay_count

type state = {
  sched_rev : int list;
  depth : int;
  blocks : int;
  npre : int;
  nthreads : int;
  enabled : int list;          (* cached at creation: pure data *)
  status : Engine.status;
  hbs : Hbsig.t;
  det : Vcdetect.t;
  mutable live : Api.Run.t option;
      (* an execution positioned exactly here, if this state still owns
         one; consumed by the first [step] from this state *)
}

module Make (T : sig
  val test : unit -> unit
end) : Icb_search.Engine.S with type state = state = struct
  type nonrec state = state

  let status_of_run r race =
    match race with
    | Some (key, msg) -> Engine.Failed { key; msg }
    | None -> (
      match Api.Run.status r with
      | Api.Run.Running -> Engine.Running
      | Api.Run.Terminated -> Engine.Terminated
      | Api.Run.Deadlock blocked -> Engine.Deadlock blocked
      | Api.Run.Failed msg -> Engine.Failed { key = msg; msg })

  let initial () =
    let r = Api.Run.create T.test in
    {
      sched_rev = [];
      depth = 0;
      blocks = 0;
      npre = 0;
      nthreads = Api.Run.thread_count r;
      enabled = Api.Run.enabled r;
      status = status_of_run r None;
      hbs = Hbsig.empty;
      det = Vcdetect.empty;
      live = Some r;
    }

  (* Replay a recorded schedule prefix on a fresh run, checking at every
     step that the test body takes the same synchronization path it took
     when the prefix was recorded.  A mismatch means the body is
     nondeterministic (timing, [Random], I/O, or state leaking across
     executions): report that directly instead of letting [Api.Run.step]
     die with a bewildering [Invalid_argument]. *)
  let diverged fmt = Format.kasprintf (fun detail ->
      raise (Engine.Nondeterministic_program detail)) fmt

  let replay_prefix s =
    incr replay_count;
    let r = Api.Run.create T.test in
    let stepno = ref 0 in
    List.iter
      (fun t ->
        (match Api.Run.status r with
        | Api.Run.Running -> ()
        | Api.Run.Terminated | Api.Run.Deadlock _ | Api.Run.Failed _ ->
          diverged
            "replay of the recorded schedule ended after %d of %d steps \
             (the body finished earlier than when the schedule was \
             recorded)"
            !stepno (List.length s.sched_rev));
        if not (List.mem t (Api.Run.enabled r)) then
          diverged
            "at replay step %d thread %d was recorded as running but is \
             not enabled this time"
            !stepno t;
        ignore (Api.Run.step r t);
        incr stepno)
      (List.rev s.sched_rev);
    (* the rebuilt run must look exactly like the recorded state did *)
    (match s.status with
    | Engine.Running ->
      if Api.Run.enabled r <> s.enabled then
        diverged
          "after replaying %d steps the enabled threads are [%s] but [%s] \
           were recorded"
          !stepno
          (String.concat " " (List.map string_of_int (Api.Run.enabled r)))
          (String.concat " " (List.map string_of_int s.enabled))
    | _ -> ());
    r

  (* Rebuild a live run positioned at [s] by replaying its schedule. *)
  let materialize s =
    match s.live with
    | Some r ->
      s.live <- None;
      r
    | None -> replay_prefix s

  let step s t =
    if not (List.mem t s.enabled) then
      invalid_arg "Chess_engine.step: thread not enabled";
    let r = materialize s in
    let preempting =
      Engine.preempting
        ~last_tid:(match s.sched_rev with last :: _ -> last | [] -> -1)
        ~enabled:s.enabled ~chosen:t
    in
    let events, blocking = Api.Run.step r t in
    let det, race =
      match Vcdetect.observe s.det events with
      | Ok det -> (det, None)
      | Error race ->
        let cell =
          match race.Icb_race.Report.var with
          | Icb_machine.Interp.Gvar (id, _) -> Printf.sprintf "cell %d" id
          | Icb_machine.Interp.Svar (id, _) -> Printf.sprintf "object %d" id
          | Icb_machine.Interp.Hcell (a, _) -> Printf.sprintf "heap &%d" a
        in
        ( s.det,
          Some
            ( "race:" ^ cell,
              Printf.sprintf "data race on %s between threads %d and %d" cell
                race.Icb_race.Report.tid1 race.Icb_race.Report.tid2 ) )
    in
    {
      sched_rev = t :: s.sched_rev;
      depth = s.depth + 1;
      blocks = (s.blocks + if blocking then 1 else 0);
      npre = (s.npre + if preempting then 1 else 0);
      nthreads = Api.Run.thread_count r;
      enabled = (if race = None then Api.Run.enabled r else []);
      status = status_of_run r race;
      hbs = Hbsig.observe s.hbs events;
      det;
      live = (if race = None then Some r else None);
    }

  let enabled s = s.enabled
  let status s = s.status

  (* Speculation on the stateless engine costs a replay: rebuild a run at
     [s] without consuming [s]'s own live run, step it, read the events.
     Yielding steps and steps that stop the run (errors, races, the final
     termination) are pinned — see Mach_engine.step_footprint. *)
  let step_footprint s tid =
    if not (List.mem tid s.enabled) then
      invalid_arg "Chess_engine.step_footprint: thread not enabled";
    let r = replay_prefix s in
    let events, _ = Api.Run.step r tid in
    let pinned =
      Api.Run.yielded r tid
      || (match Api.Run.status r with Api.Run.Running -> false | _ -> true)
      || Result.is_error (Vcdetect.observe s.det events)
    in
    Engine.Footprint.of_events ~pinned events
  let signature s = Hbsig.signature s.hbs
  let depth s = s.depth
  let blocking_ops s = s.blocks
  let preemptions s = s.npre
  let schedule s = List.rev s.sched_rev
  let thread_count s = s.nthreads

  (* No snapshot capability: a state's [live] run is a one-shot effects
     continuation consumed by the first step taken from it, so a retained
     copy cannot be re-stepped without replaying — which is exactly what
     declining buys us: the search keeps the stateless replay discipline. *)
  type snap = |

  let snapshot = None
  let restore (_ : snap) : state = assert false
end

let engine test =
  (module Make (struct
    let test = test
  end) : Icb_search.Engine.S
    with type state = state)

let check ?options ?(max_bound = 3) test =
  Icb_search.Explore.check (engine test) ?options ~max_bound ()

(* The variable-bounding strategies need a ranking of the test body's
   shared variables, which only exist dynamically (shims are created
   inside the body).  One profiling execution — always the first enabled
   thread, i.e. ICB's round-0 non-preemptive schedule — counts the
   accesses each variable sees.  Deterministic bodies (a requirement of
   this engine anyway) make the ranking reproducible. *)
let shared_env ?(max_steps = 4096) test =
  let r = Api.Run.create test in
  let counts : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let order : string list ref = ref [] in  (* first-seen order for ties *)
  let note var =
    let k = Icb_search.Strategy.key_of_var var in
    (match Hashtbl.find_opt counts k with
    | None -> order := k :: !order
    | Some _ -> ());
    Hashtbl.replace counts k
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  in
  let steps = ref 0 in
  (try
     let continue = ref true in
     while !continue && !steps < max_steps do
       match Api.Run.status r with
       | Api.Run.Running -> (
         match Api.Run.enabled r with
         | [] -> continue := false
         | t :: _ ->
           let events, _ = Api.Run.step r t in
           List.iter
             (fun (ev : Icb_machine.Interp.event) ->
               match ev with
               | Icb_machine.Interp.Ev_sync { var; _ }
               | Icb_machine.Interp.Ev_data { var; _ } -> note var
               | Icb_machine.Interp.Ev_fork _
               | Icb_machine.Interp.Ev_lifetime _ -> ())
             events;
           incr steps)
       | _ -> continue := false
     done
   with _ -> () (* a crashing body still yields the counts seen so far *));
  let svars =
    List.rev !order
    |> List.map (fun k ->
           {
             Icb_search.Strategy.sv_key = k;
             sv_name = k;
             sv_weight = Hashtbl.find counts k;
           })
    |> List.stable_sort (fun a b ->
           compare b.Icb_search.Strategy.sv_weight
             a.Icb_search.Strategy.sv_weight)
  in
  { Icb_search.Strategy.env_svars = svars }

let run ?options ?env ~strategy test =
  let env =
    match env with
    | Some _ -> env
    | None ->
      (* profiling costs one execution of the body, so only pay it for
         the strategies that consume the ranking — existing replay-count
         assertions stay untouched *)
      if Icb_search.Explore.needs_env strategy then Some (shared_env test)
      else None
  in
  Icb_search.Explore.run (engine test) ?options ?env strategy
