(** The stateless CHESS engine: an {!Icb_search.Engine.S} whose states are
    schedule prefixes of a real OCaml test body.

    Stepping a state that still owns a live execution advances it in
    place; stepping a state whose execution has moved on (because the
    search branched) transparently replays the prefix from the start —
    the Verisoft/CHESS architecture.  Coverage signatures are
    happens-before signatures; every execution is race-checked.

    Replays verify at every step that the test body takes the same
    synchronization path it took when the schedule was recorded; a
    divergence (a nondeterministic body — timing, [Random], I/O or state
    leaking across executions) raises
    {!Icb_search.Engine.Nondeterministic_program} with an actionable
    message, which the search strategies contain as a dedicated
    [nondeterministic-program] bug instead of aborting the run. *)

type state

module Make (_ : sig
  val test : unit -> unit
end) : Icb_search.Engine.S with type state = state

val engine :
  (unit -> unit) ->
  (module Icb_search.Engine.S with type state = state)
(** First-class engine for a test body, ready to pass to the search
    strategies (and to [Explore.run]'s checkpoint/resume machinery). *)

val check :
  ?options:Icb_search.Collector.options ->
  ?max_bound:int ->
  (unit -> unit) ->
  Icb_search.Sresult.bug option
(** One-call ICB checking of a test body, stopping at the first bug
    (default bound 3, like [Icb.check]). *)

val run :
  ?options:Icb_search.Collector.options ->
  ?env:Icb_search.Strategy.env ->
  strategy:Icb_search.Explore.strategy ->
  (unit -> unit) ->
  Icb_search.Sresult.t
(** When the strategy consumes a shared-variable ranking
    ([Explore.needs_env]) and no [env] is given, one is built with
    {!shared_env} — at the cost of one profiling execution of the body. *)

val shared_env : ?max_steps:int -> (unit -> unit) -> Icb_search.Strategy.env
(** Rank the test body's shared variables by access count along one
    profiling execution (the non-preemptive first-enabled schedule, ICB's
    round 0; [max_steps], default 4096, bounds it).  Deterministic bodies
    — a requirement of this engine anyway — make the ranking
    reproducible.  Variables only touched under other schedules are
    absent, i.e. never admitted by a variable bound built from this
    env. *)

val replays : unit -> int
(** Number of from-scratch replays performed since the program started —
    exposed so tests and benchmarks can report the stateless exploration's
    replay overhead. *)
