(* The experiment harness: regenerates every table and figure of the
   paper's evaluation (Musuvathi & Qadeer, PLDI 2007).

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe table2 fig1  -- run selected experiments

   Absolute numbers differ from the paper's (their benchmarks are closed
   Microsoft systems; ours are faithful models — see DESIGN.md), but each
   experiment reproduces the paper's qualitative claim, recorded in
   EXPERIMENTS.md. *)

module Explore = Icb_search.Explore
module Collector = Icb_search.Collector
module Sresult = Icb_search.Sresult
module Mach_engine = Icb_search.Mach_engine
module Registry = Icb_models.Registry
module Json = Icb_obs.Json

(* --- machine-readable results -------------------------------------------- *)

(* Every experiment also writes BENCH_<name>.json (into $BENCH_OUT_DIR,
   default the working directory): the experiment name, its wall time,
   and every table it printed keyed by the heading it appeared under —
   so CI can archive and diff runs without scraping the text output. *)

let bench_data : (string * Json.t) list ref = ref []
let last_heading = ref ""

let record key j =
  let key =
    if not (List.mem_assoc key !bench_data) then key
    else
      let rec free n =
        let k = Printf.sprintf "%s#%d" key n in
        if List.mem_assoc k !bench_data then free (n + 1) else k
      in
      free 2
  in
  bench_data := (key, j) :: !bench_data

let write_bench_json ~dir ~name ~wall =
  let j =
    Json.Obj
      [
        ("experiment", Json.String name);
        ("wall_seconds", Json.Float wall);
        ("data", Json.Obj (List.rev !bench_data));
      ]
  in
  let path = Filename.concat dir ("BENCH_" ^ name ^ ".json") in
  let oc = open_out path in
  output_string oc (Json.to_string j);
  output_char oc '\n';
  close_out oc

let section title =
  last_heading := title;
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title =
  last_heading := title;
  Printf.printf "\n--- %s ---\n" title

(* --- text tables ---------------------------------------------------------- *)

let print_table headers rows =
  record !last_heading
    (Json.Obj
       [
         ("headers", Json.List (List.map (fun h -> Json.String h) headers));
         ( "rows",
           Json.List
             (List.map
                (fun r -> Json.List (List.map (fun c -> Json.String c) r))
                rows) );
       ]);
  let ncols = List.length headers in
  let widths = Array.make ncols 0 in
  List.iteri (fun i h -> widths.(i) <- String.length h) headers;
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    rows;
  let line c =
    print_string "+";
    Array.iter (fun w -> print_string (String.make (w + 2) c); print_string "+") widths;
    print_newline ()
  in
  let row cells =
    print_string "|";
    List.iteri
      (fun i cell -> Printf.printf " %-*s |" widths.(i) cell)
      cells;
    print_newline ()
  in
  line '-';
  row headers;
  line '-';
  List.iter row rows;
  line '-'

(* Downsample a growth curve to at most [n] geometrically spaced points. *)
let downsample n (curve : (int * int) array) =
  let len = Array.length curve in
  if len <= n then Array.to_list curve
  else begin
    let picks = ref [] in
    let last = ref (-1) in
    for i = 0 to n - 1 do
      let idx =
        int_of_float (float_of_int (len - 1) ** (float_of_int i /. float_of_int (n - 1)))
      in
      let idx = min (len - 1) idx in
      if idx <> !last then picks := idx :: !picks;
      last := idx
    done;
    let picks = List.sort_uniq compare ((len - 1) :: !picks) in
    List.map (fun i -> curve.(i)) picks
  end

let run_capped ?(config = Mach_engine.default_config) ~cap prog strategy =
  Icb.run ~config
    ~options:{ Collector.default_options with max_executions = Some cap }
    ~strategy prog

(* ------------------------------------------------------------------------- *)
(* Table 1: benchmark characteristics                                         *)
(* ------------------------------------------------------------------------- *)

let table1 () =
  section "Table 1: characteristics of the benchmarks";
  print_endline
    "(LOC of the model source; K = max steps, B = max blocking ops, c = max\n\
     preemptions observed while exploring up to 2000 executions per program)";
  let rows =
    List.filter_map
      (fun (e : Registry.entry) ->
        if not e.in_table1 then None
        else
          match e.correct_program, e.correct_source with
          | Some prog, Some src ->
            let r = run_capped ~cap:2000 (prog ()) (Explore.Dfs { cache = false }) in
            Some
              [
                e.model_name;
                string_of_int (Registry.loc_of_source src);
                string_of_int r.Sresult.max_threads;
                string_of_int r.max_steps;
                string_of_int r.max_blocks;
                string_of_int r.max_preemptions;
              ]
          | _ -> None)
      Registry.all
  in
  print_table [ "Program"; "LOC"; "Threads"; "Max K"; "Max B"; "Max c" ] rows

(* ------------------------------------------------------------------------- *)
(* Table 2: bugs per context bound                                            *)
(* ------------------------------------------------------------------------- *)

let table2 () =
  section "Table 2: bugs exposed at each context bound";
  let per_model = Hashtbl.create 8 in
  let detail = ref [] in
  List.iter
    (fun (e : Registry.entry) ->
      List.iter
        (fun (b : Registry.bug_spec) ->
          let prog = b.bug_program () in
          let measured =
            match Icb.check prog ~max_bound:(b.expected_bound + 1) with
            | Some bug -> bug.Sresult.preemptions
            | None -> -1
          in
          let hist =
            match Hashtbl.find_opt per_model e.model_name with
            | Some h -> h
            | None ->
              let h = Array.make 4 0 in
              Hashtbl.add per_model e.model_name h;
              h
          in
          if measured >= 0 && measured < 4 then
            hist.(measured) <- hist.(measured) + 1;
          detail :=
            [
              e.model_name;
              b.bug_name;
              string_of_int b.expected_bound;
              (if measured < 0 then "NOT FOUND" else string_of_int measured);
              (if measured = b.expected_bound then "ok" else "MISMATCH");
              (if b.previously_known then "known" else "new");
            ]
            :: !detail)
        e.bugs)
    Registry.all;
  subsection "per-program histogram (paper's Table 2 format)";
  let rows =
    List.filter_map
      (fun (e : Registry.entry) ->
        match Hashtbl.find_opt per_model e.model_name with
        | None -> None
        | Some h ->
          Some
            ([ e.model_name; string_of_int (List.length e.bugs) ]
            @ Array.to_list (Array.map string_of_int h)))
      Registry.all
  in
  print_table [ "Program"; "Bugs"; "c=0"; "c=1"; "c=2"; "c=3" ] rows;
  subsection "per-bug detail (measured = minimal bound found by ICB)";
  print_table
    [ "Program"; "Bug"; "Paper bound"; "Measured"; "Check"; "Status" ]
    (List.rev !detail)

(* ------------------------------------------------------------------------- *)
(* Figures 1 and 4: state-space coverage per context bound                    *)
(* ------------------------------------------------------------------------- *)

let coverage_series name prog =
  let r =
    Icb.run ~strategy:(Explore.Icb { max_bound = None; cache = true }) prog
  in
  let total = r.Sresult.distinct_states in
  (name, total, r.bound_coverage)

let print_coverage (name, total, cov) =
  subsection (Printf.sprintf "%s (%d reachable states)" name total);
  print_table
    [ "Context bound"; "States covered"; "% of state space" ]
    (Array.to_list cov
    |> List.map (fun (b, n) ->
           [
             string_of_int b;
             string_of_int n;
             Printf.sprintf "%.1f" (100.0 *. float_of_int n /. float_of_int total);
           ]))

let fig1 () =
  section "Figure 1: coverage vs context bound (work-stealing queue)";
  print_coverage
    (coverage_series "Work Stealing Queue"
       (Icb_models.Workstealing.program Icb_models.Workstealing.Correct))

let fig4 () =
  section "Figure 4: % of state space covered per context bound";
  List.iter print_coverage
    [
      coverage_series "Bluetooth" (Icb_models.Bluetooth.program ~bug:false);
      coverage_series "File System Model"
        (Icb_models.Filesystem.program
           ~threads:Icb_models.Filesystem.default_threads);
      coverage_series "Transaction Manager"
        (Icb_models.Transaction.program Icb_models.Transaction.Correct);
      coverage_series "Work Stealing Queue"
        (Icb_models.Workstealing.program Icb_models.Workstealing.Correct);
    ]

(* ------------------------------------------------------------------------- *)
(* Figures 2, 5, 6: coverage growth per executions, strategy comparison       *)
(* ------------------------------------------------------------------------- *)

let growth_experiment title prog strategies ~cap =
  section title;
  Printf.printf
    "(distinct states vs executions explored, capped at %d executions; a\n\
     state is the happens-before signature at the end of an execution, the\n\
     paper's Section 4.3 convention)\n"
    cap;
  let config =
    { Mach_engine.default_config with signature_mode = Mach_engine.Hb_signature }
  in
  let options =
    {
      Collector.default_options with
      max_executions = Some cap;
      terminal_states_only = true;
    }
  in
  let results =
    List.map
      (fun strategy ->
        let r = Icb.run ~config ~options ~strategy prog in
        (Explore.strategy_name strategy, r))
      strategies
  in
  List.iter
    (fun (name, (r : Sresult.t)) ->
      subsection
        (Printf.sprintf "%s: %d executions, %d states%s" name r.executions
           r.distinct_states
           (if r.complete then " (complete)" else ""));
      print_table
        [ "Executions"; "States" ]
        (downsample 12 r.growth
        |> List.map (fun (e, n) -> [ string_of_int e; string_of_int n ])))
    results;
  subsection "summary (states reached by each strategy)";
  print_table
    [ "Strategy"; "Executions"; "Distinct states"; "Complete" ]
    (List.map
       (fun (name, (r : Sresult.t)) ->
         [
           name;
           string_of_int r.executions;
           string_of_int r.distinct_states;
           (if r.complete then "yes" else "no");
         ])
       results)

let fig2 () =
  growth_experiment
    "Figure 2: coverage growth on the work-stealing queue"
    (Icb_models.Workstealing.program Icb_models.Workstealing.Correct)
    [
      Explore.Icb { max_bound = None; cache = false };
      Explore.Dfs { cache = false };
      Explore.Random_walk { seed = 2007L };
      Explore.Bounded_dfs { depth = 40; cache = false };
      Explore.Bounded_dfs { depth = 20; cache = false };
    ]
    ~cap:4000

(* The same experiment on the scaled driver, where the deviation from the
   paper's random-vs-icb ordering is measured and documented
   (EXPERIMENTS.md): neither strategy approaches saturation, so uniform
   restart sampling keeps near-perfect novelty. *)
let fig2_scaled () =
  growth_experiment
    "Figure 2 (scaled driver): coverage growth on the larger queue"
    (Icb_models.Workstealing.scaled_program ())
    [
      Explore.Icb { max_bound = None; cache = false };
      Explore.Random_walk { seed = 2007L };
      Explore.Dfs { cache = false };
      Explore.Bounded_dfs { depth = 40; cache = false };
    ]
    ~cap:8000

let fig5 () =
  growth_experiment "Figure 5: coverage growth for APE"
    (Icb_models.Ape.program Icb_models.Ape.Correct)
    [
      Explore.Icb { max_bound = None; cache = false };
      Explore.Dfs { cache = false };
      Explore.Bounded_dfs { depth = 30; cache = false };
      Explore.Bounded_dfs { depth = 24; cache = false };
      Explore.Bounded_dfs { depth = 18; cache = false };
    ]
    ~cap:3000

let fig6 () =
  growth_experiment "Figure 6: coverage growth for Dryad channels"
    (Icb_models.Dryad.program Icb_models.Dryad.Correct)
    [
      Explore.Icb { max_bound = None; cache = false };
      Explore.Dfs { cache = false };
      Explore.Bounded_dfs { depth = 45; cache = false };
      Explore.Bounded_dfs { depth = 35; cache = false };
      Explore.Bounded_dfs { depth = 25; cache = false };
    ]
    ~cap:3000

(* ------------------------------------------------------------------------- *)
(* Figure 3: the Dryad use-after-free                                         *)
(* ------------------------------------------------------------------------- *)

let fig3 () =
  section "Figure 3: the Dryad channel use-after-free";
  let prog = Icb_models.Dryad.program Icb_models.Dryad.Bug_close_waits_ack in
  match Icb.check prog ~max_bound:1 with
  | None -> print_endline "UNEXPECTED: bug not found at bound 1"
  | Some bug ->
    Printf.printf
      "bug: %s\n\
       preempting context switches: %d (the paper: exactly 1)\n\
       non-preempting context switches: %d (the paper: 6)\n\
       total scheduling steps: %d\n\ntrace narrative:\n"
      bug.Sresult.msg bug.preemptions
      (bug.context_switches - bug.preemptions)
      bug.depth;
    List.iter (fun line -> Printf.printf "  %s\n" line) (Icb.explain prog bug)

(* ------------------------------------------------------------------------- *)
(* Theorem 1: executions per preemption count vs the combinatorial bound      *)
(* ------------------------------------------------------------------------- *)

let theorem1_for name prog =
  subsection name;
  let module E = (val Icb.engine prog) in
  let counts = Hashtbl.create 8 in
  let max_k = ref 0 and max_b = ref 0 and max_n = ref 0 in
  let total = ref 0 in
  let rec dfs st =
    match E.status st with
    | Icb_search.Engine.Running ->
      List.iter (fun t -> dfs (E.step st t)) (E.enabled st)
    | Icb_search.Engine.Terminated | Icb_search.Engine.Deadlock _
    | Icb_search.Engine.Failed _ ->
      incr total;
      max_k := max !max_k (E.depth st);
      max_b := max !max_b (E.blocking_ops st);
      max_n := max !max_n (E.thread_count st);
      let c = E.preemptions st in
      Hashtbl.replace counts c
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts c))
  in
  dfs (E.initial ());
  Printf.printf "n = %d threads, k <= %d steps, b <= %d blocking ops; %d executions total\n"
    !max_n !max_k !max_b !total;
  Printf.printf "unbounded-search explosion (nk)!/(k!)^n = %s\n"
    (Icb_util.Bignat.to_string
       (Icb_util.Combin.total_executions_upper ~n:!max_n ~k:!max_k));
  let cs = Hashtbl.fold (fun c _ acc -> c :: acc) counts [] |> List.sort compare in
  print_table
    [ "c (preemptions)"; "Executions measured"; "Theorem 1 bound C(nk,c)*(nb+c)!" ]
    (List.map
       (fun c ->
         [
           string_of_int c;
           string_of_int (Hashtbl.find counts c);
           Icb_util.Bignat.to_string
             (Icb_util.Combin.theorem1_bound ~n:!max_n ~k:!max_k ~b:!max_b ~c);
         ])
       cs)

let theorem1 () =
  section "Theorem 1: executions with c preemptions are polynomially many";
  theorem1_for "two guarded increments"
    (Icb.compile
       {|
var g: int;
mutex m;
proc w() { lock(m); g = g + 1; unlock(m); }
main { spawn w(); spawn w(); }
|});
  theorem1_for "Bluetooth (fixed)" (Icb_models.Bluetooth.program ~bug:false)

(* ------------------------------------------------------------------------- *)
(* Bechamel micro-timings of the strategies                                   *)
(* ------------------------------------------------------------------------- *)

let timings () =
  section "Timings: one Bechamel benchmark per reproduced table/figure workload";
  let open Bechamel in
  let open Toolkit in
  let make_bench name f = Test.make ~name (Staged.stage f) in
  let bluetooth_bug = Icb_models.Bluetooth.program ~bug:true in
  let bluetooth_ok = Icb_models.Bluetooth.program ~bug:false in
  let wsq = Icb_models.Workstealing.program Icb_models.Workstealing.Correct in
  let dryad = Icb_models.Dryad.program Icb_models.Dryad.Bug_close_waits_ack in
  let tests =
    [
      (* Table 2 workload: ICB bug finding *)
      make_bench "table2/icb-find-bluetooth-bug" (fun () ->
          ignore (Icb.check bluetooth_bug));
      make_bench "fig3/icb-find-dryad-uaf" (fun () ->
          ignore (Icb.check dryad ~max_bound:1));
      (* Figures 1/4 workload: complete ICB with state caching *)
      make_bench "fig1/icb-complete-wsq" (fun () ->
          ignore
            (Icb.run ~strategy:(Explore.Icb { max_bound = None; cache = true })
               wsq));
      make_bench "fig4/icb-complete-bluetooth" (fun () ->
          ignore
            (Icb.run ~strategy:(Explore.Icb { max_bound = None; cache = true })
               bluetooth_ok));
      (* Figure 2 workload: capped stateless strategies *)
      make_bench "fig2/dfs-500-execs-wsq" (fun () ->
          ignore (run_capped ~cap:500 wsq (Explore.Dfs { cache = false })));
      make_bench "fig2/random-500-execs-wsq" (fun () ->
          ignore (run_capped ~cap:500 wsq (Explore.Random_walk { seed = 1L })));
      (* Table 1 workload: the guest-machine interpreter itself *)
      make_bench "table1/interp-one-execution-wsq" (fun () ->
          let module E = (val Icb.engine wsq) in
          let st = ref (E.initial ()) in
          let rec go () =
            match E.enabled !st with
            | [] -> ()
            | t :: _ ->
              st := E.step !st t;
              go ()
          in
          go ());
      make_bench "zlang/compile-dryad-source" (fun () ->
          ignore (Icb.compile (Icb_models.Dryad.source Icb_models.Dryad.Correct)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  let raw = List.map (fun test -> Benchmark.all cfg instances test) tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let rows =
    List.concat_map
      (fun tbl ->
        let results = Analyze.all ols Instance.monotonic_clock tbl in
        Hashtbl.fold
          (fun name result acc ->
            let est =
              match Analyze.OLS.estimates result with
              | Some [ e ] -> e
              | _ -> nan
            in
            let r2 =
              match Analyze.OLS.r_square result with Some r -> r | None -> nan
            in
            [ name; Printf.sprintf "%.0f" est; Printf.sprintf "%.4f" r2 ] :: acc)
          results [])
      raw
  in
  print_table [ "Benchmark"; "ns/run"; "r^2" ] (List.sort compare rows)

(* ------------------------------------------------------------------------- *)
(* Ablations: design choices DESIGN.md calls out                              *)
(* ------------------------------------------------------------------------- *)

(* The paper's Section 3.1 reduction: scheduling points at synchronization
   accesses only, with per-execution race checking, versus scheduling
   points at every shared access. *)
let ablation_reduction () =
  section "Ablation: sync-only scheduling points vs every shared access";
  print_endline
    "(reachable states under cached DFS; the Section 3.1 reduction is sound
     because every execution is additionally race-checked)";
  let rows =
    List.filter_map
      (fun (e : Registry.entry) ->
        match e.correct_program with
        | None -> None
        | Some p ->
          let states config =
            (Icb.run ~config ~strategy:(Explore.Dfs { cache = true }) (p ()))
              .Sresult.distinct_states
          in
          let fine = states Mach_engine.zing_config in
          let coarse = states Mach_engine.default_config in
          Some
            [
              e.model_name;
              string_of_int fine;
              string_of_int coarse;
              Printf.sprintf "%.1fx" (float_of_int fine /. float_of_int coarse);
            ])
      Registry.all
  in
  print_table
    [ "Program"; "Every access"; "Sync only"; "Reduction" ]
    rows

(* The paper's future-work claim: partial-order reduction composed with
   systematic search pays off.  Sleep sets preserve the reachable states
   (test-verified) while pruning redundant interleavings. *)
let ablation_por () =
  section "Ablation: sleep-set partial-order reduction";
  print_endline
    "(executions needed to cover the full reachable state space: plain DFS vs
     DFS with sleep sets over dynamic footprints — same states, fewer runs)";
  let rows =
    List.filter_map
      (fun (name, prog) ->
        let dfs = run_capped ~cap:50_000 prog (Explore.Dfs { cache = false }) in
        let sleep = Icb.run prog ~strategy:Explore.Sleep_dfs in
        Some
          [
            name;
            string_of_int dfs.Sresult.distinct_states;
            (if dfs.complete then string_of_int dfs.executions
             else Printf.sprintf ">=%d (capped)" dfs.executions);
            string_of_int sleep.Sresult.distinct_states;
            string_of_int sleep.executions;
            (if sleep.executions > 0 then
               Printf.sprintf "%s%.0fx"
                 (if dfs.complete then "" else ">=")
                 (float_of_int dfs.executions /. float_of_int sleep.executions)
             else "n/a");
          ])
      [
        ("Bluetooth", Icb_models.Bluetooth.program ~bug:false);
        ("File System Model", Icb_models.Filesystem.program ~threads:3);
        ( "Transaction Manager",
          Icb_models.Transaction.program Icb_models.Transaction.Correct );
        ("Peterson", Icb_models.Peterson.program Icb_models.Peterson.Correct);
      ]
  in
  print_table
    [ "Program"; "DFS states"; "DFS execs"; "Sleep states"; "Sleep execs";
      "Speedup" ]
    rows

(* Algorithm 1's optional work-item cache. *)
let ablation_cache () =
  section "Ablation: ICB with and without the work-item cache";
  let rows =
    List.filter_map
      (fun (name, prog) ->
        let run cache =
          run_capped ~cap:500_000 prog (Explore.Icb { max_bound = None; cache })
        in
        let without = run false in
        let with_ = run true in
        Some
          [
            name;
            string_of_int without.Sresult.executions;
            (if without.complete then "yes" else "capped");
            string_of_int with_.Sresult.executions;
            (if with_.complete then "yes" else "capped");
            string_of_int with_.distinct_states;
          ])
      [
        ("Bluetooth", Icb_models.Bluetooth.program ~bug:false);
        ("File System Model", Icb_models.Filesystem.program ~threads:3);
        ( "Work Stealing Queue",
          Icb_models.Workstealing.program Icb_models.Workstealing.Correct );
      ]
  in
  print_table
    [ "Program"; "Execs (no cache)"; "Done"; "Execs (cache)"; "Done"; "States" ]
    rows

(* Bug-finding shootout: executions until the first bug, per strategy. *)
let ablation_find () =
  section "Ablation: executions until the first bug, per strategy";
  print_endline
    "(- means not found within 20000 executions; icb also certifies
     minimality of the preemption count, the others do not)";
  let strategies =
    [
      Explore.Icb { max_bound = None; cache = false };
      Explore.Sleep_dfs;
      Explore.Pct { change_points = 2; seed = 1L };
      Explore.Pct { change_points = 3; seed = 1L };
      Explore.Random_walk { seed = 1L };
      Explore.Dfs { cache = false };
      Explore.Most_enabled { cache = true };
    ]
  in
  let header_row =
    "Bug" :: List.map Explore.strategy_name strategies
  in
  let rows =
    List.concat_map
      (fun (e : Registry.entry) ->
        List.filter_map
          (fun (b : Registry.bug_spec) ->
            (* one representative bug per model keeps the table readable *)
            if b.expected_bound < 1 then None
            else if
              List.exists
                (fun (b' : Registry.bug_spec) ->
                  b'.expected_bound >= 1 && b'.bug_name < b.bug_name)
                e.bugs
            then None
            else
              Some
                (Printf.sprintf "%s/%s" e.model_name b.bug_name
                :: List.map
                     (fun strategy ->
                       let r =
                         Icb.run (b.bug_program ()) ~strategy
                           ~options:
                             {
                               Collector.default_options with
                               max_executions = Some 20_000;
                               stop_at_first_bug = true;
                             }
                       in
                       match r.Sresult.bugs with
                       | bug :: _ -> string_of_int bug.Sresult.execution
                       | [] -> "-")
                     strategies))
          e.bugs)
      Registry.all
  in
  print_table header_row rows

(* ------------------------------------------------------------------------- *)
(* Parallel ICB: serial-equivalence and speedup harness                        *)
(* ------------------------------------------------------------------------- *)

(* set by --jobs on the command line *)
let parallel_jobs = ref 4

(* Runs the buggy work-stealing queue to preemption bound 3 serially, on 1
   domain and on [--jobs] domains, then asserts that all three report the
   same bug set, per-bound cumulative execution counts and totals (the
   determinism contract of Icb.run_parallel), and — when the machine
   actually has at least 4 cores — that the domain pool explores at least
   2x executions/second.  Exits non-zero if any assertion fails. *)
let parallel_bench () =
  let jobs = max 1 !parallel_jobs in
  section
    (Printf.sprintf "Parallel ICB: 1 vs %d domains on the work-stealing queue"
       jobs);
  let entry = Registry.find "Work Stealing Queue" in
  let bug_spec = List.hd entry.bugs in
  let max_bound = 3 in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let serial, t_serial =
    time (fun () ->
        Icb.run
          ~strategy:(Explore.Icb { max_bound = Some max_bound; cache = false })
          (bug_spec.bug_program ()))
  in
  let one, t_one =
    time (fun () ->
        Icb.run_parallel ~max_bound ~domains:1 (bug_spec.bug_program ()))
  in
  let par, t_par =
    time (fun () ->
        Icb.run_parallel ~max_bound ~domains:jobs (bug_spec.bug_program ()))
  in
  let rate (r : Sresult.t) t = float_of_int r.executions /. max t 1e-9 in
  let keys (r : Sresult.t) =
    List.sort compare (List.map (fun (b : Sresult.bug) -> b.Sresult.key) r.bugs)
  in
  let bexec (r : Sresult.t) = Array.to_list r.bound_executions in
  print_table
    [ "Run"; "Executions"; "States"; "Bugs"; "Seconds"; "Execs/sec" ]
    (List.map
       (fun (name, (r : Sresult.t), t) ->
         [
           name;
           string_of_int r.executions;
           string_of_int r.distinct_states;
           string_of_int (List.length r.bugs);
           Printf.sprintf "%.2f" t;
           Printf.sprintf "%.0f" (rate r t);
         ])
       [
         ("serial", serial, t_serial);
         ("1 domain", one, t_one);
         (Printf.sprintf "%d domains" jobs, par, t_par);
       ]);
  let failed = ref false in
  let check what ok =
    if not ok then begin
      failed := true;
      Printf.printf "FAILED: %s\n" what
    end
  in
  check "bug sets identical (serial, 1 domain, N domains)"
    (keys serial = keys one && keys one = keys par);
  check "per-bound cumulative execution counts identical"
    (bexec serial = bexec one && bexec one = bexec par);
  check "execution and state totals identical"
    (serial.executions = one.executions
    && one.executions = par.executions
    && serial.distinct_states = one.distinct_states
    && one.distinct_states = par.distinct_states);
  let speedup = rate par t_par /. rate one t_one in
  Printf.printf "\nspeedup (%d domains vs 1): %.2fx\n" jobs speedup;
  record "speedup"
    (Json.Obj [ ("domains", Json.Int jobs); ("vs_1_domain", Json.Float speedup) ]);
  let cores = Domain.recommended_domain_count () in
  if jobs >= 4 && cores >= 4 then
    check
      (Printf.sprintf "parallel throughput >= 2x (%d domains, %d cores)" jobs
         cores)
      (speedup >= 2.0)
  else
    Printf.printf
      "speedup assertion skipped: %d core(s) available (needs >= 4 cores and \
       --jobs >= 4)\n"
      cores;
  if !failed then exit 1 else print_endline "parallel equivalence: OK"

(* ------------------------------------------------------------------------- *)
(* Repro: minimization of random-found witnesses                             *)
(* ------------------------------------------------------------------------- *)

(* For every registry model: find a bug with a seed-fixed random walk (a
   long, preemption-heavy witness), minimize it with the repro
   subsystem, replay-verify the result, and compare its preemption count
   against the ICB witness for the same bug key — minimization must do
   at least as well as ICB's bound guarantee.  Exit code 1 if any
   witness fails to verify or beats no ICB witness. *)
let repro_bench () =
  section "Repro: schedule minimization of random-found bugs";
  let failed = ref false in
  let check what ok =
    Printf.printf "  %-64s %s\n" what (if ok then "OK" else "FAIL");
    if not ok then failed := true
  in
  (* every registry model that has a bug variant, plus Peterson (the
     extra model beyond the paper's suite) — six buggy programs *)
  let targets =
    List.filter_map
      (fun (e : Registry.entry) ->
        match e.bugs with
        | [] -> None
        | (b : Registry.bug_spec) :: _ -> Some (e.model_name, b.bug_program))
      Registry.all
    @ [
        ( "Peterson",
          fun () ->
            Icb_models.Peterson.program
              Icb_models.Peterson.Bug_check_before_set );
      ]
  in
  let rows =
    List.filter_map
      (fun (model_name, bug_program) ->
          let prog = bug_program () in
          let rw =
            Icb.run
              ~options:
                {
                  Collector.default_options with
                  stop_at_first_bug = true;
                  max_executions = Some 50_000;
                }
              ~strategy:(Explore.Random_walk { seed = 2007L })
              prog
          in
          (match rw.Sresult.bugs with
          | [] ->
            check (model_name ^ ": random walk finds a bug") false;
            None
          | bug :: _ ->
            let module E = (val Icb.engine prog) in
            (match Icb_repro.Minimize.bug (module E) bug with
            | Error msg ->
              check
                (Printf.sprintf "%s: witness minimizes (%s)" model_name msg)
                false;
              None
            | Ok s ->
              let m = s.Icb_repro.Minimize.minimized in
              let verified =
                Icb_repro.Sched.probe
                  (module E)
                  ~deadlock_is_error:true ~key:bug.Sresult.key
                  ~steps:(ref max_int) m.Icb_repro.Sched.schedule
                <> None
              in
              check
                (Printf.sprintf "%s: minimized witness replays (%s)"
                   model_name bug.Sresult.key)
                verified;
              (* ICB's witness for the same key: the full bounded search
                 at the minimized preemption count must contain it *)
              let icb =
                Icb.run
                  ~strategy:
                    (Explore.Icb
                       {
                         max_bound = Some m.Icb_repro.Sched.preemptions;
                         cache = true;
                       })
                  prog
              in
              let icb_preemptions =
                match
                  List.find_opt
                    (fun (x : Sresult.bug) -> x.key = bug.Sresult.key)
                    icb.Sresult.bugs
                with
                | Some x -> x.Sresult.preemptions
                | None -> -1
              in
              check
                (Printf.sprintf "%s: minimized preemptions <= ICB witness"
                   model_name)
                (icb_preemptions >= 0
                && m.Icb_repro.Sched.preemptions <= icb_preemptions);
              Some
                [
                  model_name;
                  bug.Sresult.key;
                  string_of_int bug.Sresult.depth;
                  string_of_int bug.Sresult.preemptions;
                  string_of_int m.Icb_repro.Sched.depth;
                  string_of_int m.Icb_repro.Sched.preemptions;
                  string_of_int icb_preemptions;
                  (if s.Icb_repro.Minimize.proven_minimal then "yes"
                   else "no");
                  string_of_int s.Icb_repro.Minimize.candidates;
                ]))
          )
      targets
  in
  subsection "random-found witness vs. minimized witness";
  print_table
    [
      "Program";
      "Bug key";
      "Found len";
      "Found pre";
      "Min len";
      "Min pre";
      "ICB pre";
      "Proven";
      "Replays";
    ]
    rows;
  if !failed then exit 1 else print_endline "repro minimization: OK"

(* ------------------------------------------------------------------------- *)
(* Bounds head-to-head: variable/thread bounding vs raw ICB                   *)
(* ------------------------------------------------------------------------- *)

(* Bindal-Bansal-Lal's claim, on our models: bounding *where* preemptions
   may happen (the N hottest variables, the N lowest threads) finds bugs
   in fewer executions than bounding only *how many* (raw ICB).  Two
   parts: a Fig-5-shaped coverage-vs-executions table per model, and a
   per-Table-2-bug "which bound finds it cheapest" ranking.

   BENCH_BOUNDS_MODELS (comma-separated lowercase model names, e.g.
   "bluetooth,work-stealing-queue") restricts the run for CI smoke; the
   full-suite assertions only fire on an unrestricted run. *)

let bounds_strategies =
  [
    ("icb", Explore.Icb { max_bound = None; cache = false });
    ("vb:1", Explore.Variable_bound { n = 1; cache = false });
    ("vb:2", Explore.Variable_bound { n = 2; cache = false });
    ("tb:2", Explore.Thread_bound { n = 2; cache = false });
    ("icb-vb:2", Explore.Icb_vb { n = 2; max_bound = None; cache = false });
  ]

let bounds_bench () =
  section "Bounds head-to-head: variable and thread bounding vs raw ICB";
  let failed = ref false in
  let check name ok =
    if not ok then begin
      Printf.printf "FAIL %s\n" name;
      failed := true
    end
  in
  let base_name (e : Registry.entry) =
    String.map
      (fun c -> if c = ' ' then '-' else c)
      (String.lowercase_ascii e.model_name)
  in
  let restricted, models =
    match Sys.getenv_opt "BENCH_BOUNDS_MODELS" with
    | None | Some "" -> (false, Registry.all)
    | Some s ->
      let names = List.map String.trim (String.split_on_char ',' s) in
      (true, List.filter (fun e -> List.mem (base_name e) names) Registry.all)
  in
  (* part 1: coverage growth per model, all bounding strategies head to
     head (the Fig 5 shape) *)
  List.iter
    (fun (e : Registry.entry) ->
      match e.correct_program with
      | None -> ()
      | Some prog ->
        growth_experiment
          (Printf.sprintf "bounds coverage vs executions: %s" e.model_name)
          (prog ())
          (List.map snd bounds_strategies)
          ~cap:2000)
    models;
  (* part 2: executions to first bug, per Table-2 bug *)
  section "executions to the first bug, per Table 2 bug";
  let cap = 20_000 in
  Printf.printf
    "(stop at first bug, capped at %d executions; '-' = not found within\n\
     the cap — a bound that excludes the bug's preemption points)\n"
    cap;
  let results =
    List.concat_map
      (fun (e : Registry.entry) ->
        List.map
          (fun (b : Registry.bug_spec) ->
            let per =
              List.map
                (fun (sname, strategy) ->
                  let r =
                    Icb.run
                      ~options:
                        {
                          Collector.default_options with
                          max_executions = Some cap;
                          stop_at_first_bug = true;
                        }
                      ~strategy (b.bug_program ())
                  in
                  ( sname,
                    if r.Sresult.bugs <> [] then Some r.Sresult.executions
                    else None ))
                bounds_strategies
            in
            (e, b, per))
          e.bugs)
      models
  in
  subsection "executions to bug, per strategy";
  print_table
    ([ "Program"; "Bug" ] @ List.map fst bounds_strategies)
    (List.map
       (fun ((e : Registry.entry), (b : Registry.bug_spec), per) ->
         [ e.model_name; b.bug_name ]
         @ List.map
             (fun (_, x) ->
               match x with Some n -> string_of_int n | None -> "-")
             per)
       results);
  subsection "cheapest bound per bug (ranked)";
  let cheapest per =
    List.fold_left
      (fun best (sname, x) ->
        match (best, x) with
        | None, Some n -> Some (sname, n)
        | Some (_, bn), Some n when n < bn -> Some (sname, n)
        | _ -> best)
      None per
  in
  let ranked =
    List.map
      (fun (e, b, per) ->
        let icb_execs = List.assoc "icb" per in
        (e, b, cheapest per, icb_execs))
      results
    |> List.stable_sort (fun (_, _, a, _) (_, _, b, _) ->
           match (a, b) with
           | Some (_, x), Some (_, y) -> compare x y
           | Some _, None -> -1
           | None, Some _ -> 1
           | None, None -> 0)
  in
  print_table
    [ "Program"; "Bug"; "Cheapest"; "Executions"; "icb"; "Beats icb" ]
    (List.map
       (fun ((e : Registry.entry), (b : Registry.bug_spec), best, icb_execs) ->
         let sname, n =
           match best with
           | Some (s, n) -> (s, string_of_int n)
           | None -> ("NOT FOUND", "-")
         in
         [
           e.model_name;
           b.bug_name;
           sname;
           n;
           (match icb_execs with Some n -> string_of_int n | None -> "-");
           (match (best, icb_execs) with
           | Some (s, n), Some i when n < i && s <> "icb" -> "yes"
           | _ -> "no");
         ])
       ranked);
  (* the paper-conformance assertions (full suite only) *)
  List.iter
    (fun ((e : Registry.entry), (b : Registry.bug_spec), best, _) ->
      check
        (Printf.sprintf "%s/%s: found by at least one bound" e.model_name
           b.bug_name)
        (best <> None))
    ranked;
  if not restricted then begin
    check
      (Printf.sprintf "all %d Table 2 bugs ranked" Registry.total_bugs)
      (List.length ranked = Registry.total_bugs);
    (* variable bounding must beat raw ICB on executions-to-bug somewhere:
       the Bindal-Bansal-Lal headline, and this PR's acceptance bar *)
    let beats =
      List.filter
        (fun (_, _, best, icb_execs) ->
          match (best, icb_execs) with
          | Some (s, n), Some i ->
            (s = "vb:1" || s = "vb:2" || s = "icb-vb:2") && n < i
          | _ -> false)
        ranked
    in
    check "vb:N or icb-vb:N beats raw ICB on executions-to-bug somewhere"
      (beats <> []);
    List.iter
      (fun ((e : Registry.entry), (b : Registry.bug_spec), best, icb_execs) ->
        match (best, icb_execs) with
        | Some (s, n), Some i ->
          Printf.printf "  %s/%s: %s in %d vs icb in %d\n" e.model_name
            b.bug_name s n i
        | _ -> ())
      beats
  end;
  if !failed then exit 1 else print_endline "bounds conformance: OK"

(* ------------------------------------------------------------------------- *)
(* Replay cache: cached vs stateless machine steps executed                   *)
(* ------------------------------------------------------------------------- *)

(* Runs the full ICB search twice per model — prefix-snapshot replay
   cache on (the default) and off (the --no-cache stateless discipline,
   where every work item replays its schedule prefix from the initial
   state) — and reports executions/second plus total machine steps
   executed: the collector's expansion steps, which are identical in
   both modes, plus the replay steps the cache exists to avoid.
   Asserts:
   - the two runs are observationally identical (bug sets, execution
     counts, per-bound curves, states, expansion steps) — the
     correctness bar of docs/REPLAY_CACHE.md;
   - on the deep models the stateless discipline executes at least 3x
     the machine steps of the cached run;
   - each steps ratio stays within 0.8x of the committed baseline
     (bench/replay_cache_baseline.json), so a change that silently stops
     caching fails CI — the ratio is deterministic, so the tolerance
     only absorbs deliberate exploration-order changes;
   - with >= 4 cores, the cached runs are also faster on wall clock
     (the steps ratio alone is immune to machine noise, so only this
     assertion is core-gated).
   BENCH_REPLAY_CACHE_MODELS (comma-separated lowercase names, e.g.
   "work-stealing-queue,transaction-manager") restricts the list for CI
   smoke. *)

let replay_cache_models :
    (string * (unit -> Icb.prog) * int * bool) list =
  [
    (* model, program, ICB preemption bound, deep (3x floor asserted).
       The replay tax [1 + replayed/expanded] grows with the bound only
       while executions keep lengthening under contention; models whose
       executions have a fixed length (Work-Stealing Queue, Bluetooth)
       saturate near 2x and are kept here as reference points, not gated.
       Peterson (spin loops) and the transaction manager (retry loops)
       keep climbing, so they carry the >= 3x acceptance floor. *)
    ( "Peterson",
      (fun () -> Icb_models.Peterson.program Icb_models.Peterson.Correct),
      7,
      true );
    ( "Transaction Manager",
      (fun () -> Icb_models.Transaction.program Icb_models.Transaction.Correct),
      5,
      true );
    ( "Work Stealing Queue",
      (fun () -> Icb_models.Workstealing.program Icb_models.Workstealing.Correct),
      3,
      false );
    ("Bluetooth", (fun () -> Icb_models.Bluetooth.program ~bug:false), 3, false);
    ( "File System Model",
      (fun () -> Icb_models.Filesystem.program ~threads:3),
      2,
      false );
  ]

let replay_cache_bench () =
  section "Replay cache: cached vs stateless machine steps executed";
  let failed = ref false in
  let check what ok =
    if not ok then begin
      failed := true;
      Printf.printf "FAILED: %s\n" what
    end
  in
  let models =
    match Sys.getenv_opt "BENCH_REPLAY_CACHE_MODELS" with
    | None | Some "" -> replay_cache_models
    | Some s ->
      let names = List.map String.trim (String.split_on_char ',' s) in
      List.filter
        (fun (name, _, _, _) ->
          List.mem
            (String.map
               (fun c -> if c = ' ' then '-' else c)
               (String.lowercase_ascii name))
            names)
        replay_cache_models
  in
  let baseline =
    let path =
      Option.value
        (Sys.getenv_opt "REPLAY_CACHE_BASELINE")
        ~default:"bench/replay_cache_baseline.json"
    in
    if not (Sys.file_exists path) then None
    else
      let ic = open_in path in
      let src =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Json.parse src with
      | Json.Obj fields ->
        Some
          (List.filter_map
             (fun (k, v) ->
               match v with
               | Json.Float f -> Some (k, f)
               | Json.Int i -> Some (k, float_of_int i)
               | _ -> None)
             fields)
      | _ | (exception Json.Parse_error _) -> None
  in
  if baseline = None then
    print_endline
      "(no committed baseline found; the ratio-vs-baseline gate is skipped)";
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let results =
    List.map
      (fun (name, prog_of, bound, deep) ->
        let prog = prog_of () in
        let run cache =
          let stats = ref (Icb_search.Replay_cache.zero ()) in
          let r, t =
            time (fun () ->
                Icb.run ~cache
                  ~on_cache_stats:(fun s -> stats := s)
                  ~strategy:(Explore.Icb { max_bound = Some bound; cache = false })
                  prog)
          in
          (r, t, !stats)
        in
        let rc, tc, sc = run true in
        let ru, tu, su = run false in
        let keys (r : Sresult.t) =
          List.sort compare
            (List.map (fun (b : Sresult.bug) -> b.Sresult.key) r.bugs)
        in
        check (name ^ ": cached and uncached runs observationally identical")
          (keys rc = keys ru
          && rc.Sresult.executions = ru.Sresult.executions
          && rc.distinct_states = ru.distinct_states
          && rc.bound_executions = ru.bound_executions
          && rc.total_steps = ru.total_steps);
        let steps_of (r : Sresult.t) (s : Icb_search.Replay_cache.stats) =
          r.Sresult.total_steps + s.Icb_search.Replay_cache.steps_replayed
        in
        let cached_steps = steps_of rc sc in
        let uncached_steps = steps_of ru su in
        let ratio =
          float_of_int uncached_steps /. float_of_int (max 1 cached_steps)
        in
        if deep then
          check
            (Printf.sprintf "%s: stateless replay tax >= 3x (got %.2fx)" name
               ratio)
            (ratio >= 3.0);
        (match Option.bind baseline (List.assoc_opt name) with
        | Some base ->
          check
            (Printf.sprintf "%s: steps ratio %.2fx within 0.8x of baseline %.2fx"
               name ratio base)
            (ratio >= 0.8 *. base)
        | None -> ());
        record name
          (Json.Obj
             [
               ("bound", Json.Int bound);
               ("executions", Json.Int rc.Sresult.executions);
               ("cached_steps_executed", Json.Int cached_steps);
               ("uncached_steps_executed", Json.Int uncached_steps);
               ("steps_ratio", Json.Float ratio);
               ("cached_execs_per_sec", Json.Float (float_of_int rc.executions /. max tc 1e-9));
               ("uncached_execs_per_sec", Json.Float (float_of_int ru.executions /. max tu 1e-9));
               ("cached_seconds", Json.Float tc);
               ("uncached_seconds", Json.Float tu);
               ("cache_hits", Json.Int sc.Icb_search.Replay_cache.hits);
               ("cache_misses", Json.Int sc.Icb_search.Replay_cache.misses);
               ("steps_saved", Json.Int sc.Icb_search.Replay_cache.steps_saved);
             ]);
        (name, bound, rc, tc, ru, tu, cached_steps, uncached_steps, ratio))
      models
  in
  subsection "total machine steps executed, cached vs stateless";
  print_table
    [
      "Program"; "Bound"; "Execs"; "Steps (cached)"; "Steps (stateless)";
      "Ratio"; "Execs/s (cached)"; "Execs/s (stateless)";
    ]
    (List.map
       (fun (name, bound, (rc : Sresult.t), tc, (ru : Sresult.t), tu, cs, us, ratio) ->
         [
           name;
           string_of_int bound;
           string_of_int rc.executions;
           string_of_int cs;
           string_of_int us;
           Printf.sprintf "%.2fx" ratio;
           Printf.sprintf "%.0f" (float_of_int rc.executions /. max tc 1e-9);
           Printf.sprintf "%.0f" (float_of_int ru.executions /. max tu 1e-9);
         ])
       results);
  let t_cached =
    List.fold_left (fun a (_, _, _, tc, _, _, _, _, _) -> a +. tc) 0.0 results
  in
  let t_uncached =
    List.fold_left (fun a (_, _, _, _, _, tu, _, _, _) -> a +. tu) 0.0 results
  in
  let speedup = t_uncached /. max t_cached 1e-9 in
  Printf.printf "\nwall clock: cached %.2fs, stateless %.2fs (%.2fx)\n" t_cached
    t_uncached speedup;
  record "wall_clock"
    (Json.Obj
       [
         ("cached_seconds", Json.Float t_cached);
         ("uncached_seconds", Json.Float t_uncached);
         ("speedup", Json.Float speedup);
       ]);
  let cores = Domain.recommended_domain_count () in
  if cores >= 4 then
    check
      (Printf.sprintf "cached wall clock at least as fast (%d cores)" cores)
      (speedup >= 1.0)
  else
    Printf.printf
      "wall-clock assertion skipped: %d core(s) available (needs >= 4)\n" cores;
  if !failed then exit 1 else print_endline "replay cache: OK"

(* ------------------------------------------------------------------------- *)
(* Distributed: loopback coordinator + socket workers vs the serial driver   *)
(* ------------------------------------------------------------------------- *)

(* Runs the buggy work-stealing queue to preemption bound 3 serially,
   then through the coordinator with 1 and with 2 worker threads over
   loopback sockets, asserting the distributed contract: identical bug
   sets, per-bound cumulative execution counts and totals.  The workers
   here are OS threads sharing this process's runtime lock, so the
   execs/sec column measures protocol and merge overhead, not
   parallelism — real speedup needs worker processes on separate
   machines (docs/DISTRIBUTED.md). *)
let distributed_bench () =
  section "Distributed ICB: serial vs loopback coordinator/workers";
  let entry = Registry.find "Work Stealing Queue" in
  let bug_spec = List.hd entry.bugs in
  let strategy = Explore.Icb { max_bound = Some 3; cache = false } in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let dist workers =
    let p = bug_spec.bug_program () in
    let coord = Icb.Dist.Coord.create ~batch_size:16 () in
    let port = Icb.Dist.Coord.port coord in
    let ws =
      List.init workers (fun _ ->
          Thread.create
            (fun () ->
              ignore
                (Icb.Dist.Worker.run ~host:"127.0.0.1" ~port
                   ~resolve:(fun _ ->
                     Ok (Icb.Dist.Worker.Packed (Icb.engine p)))
                   ()))
            ())
    in
    Fun.protect
      ~finally:(fun () ->
        List.iter Thread.join ws;
        Icb.Dist.Coord.shutdown coord)
      (fun () ->
        Icb.Dist.Coord.run coord (Icb.engine p)
          ~env:(Icb_search.Strategy.env_of_prog p)
          strategy)
  in
  let serial, t_serial = time (fun () -> Icb.run ~strategy (bug_spec.bug_program ())) in
  let one, t_one = time (fun () -> dist 1) in
  let two, t_two = time (fun () -> dist 2) in
  let rate (r : Sresult.t) t = float_of_int r.executions /. max t 1e-9 in
  let keys (r : Sresult.t) =
    List.sort compare (List.map (fun (b : Sresult.bug) -> b.Sresult.key) r.bugs)
  in
  let bexec (r : Sresult.t) = Array.to_list r.bound_executions in
  print_table
    [ "Run"; "Executions"; "States"; "Bugs"; "Seconds"; "Execs/sec" ]
    (List.map
       (fun (name, (r : Sresult.t), t) ->
         [
           name;
           string_of_int r.executions;
           string_of_int r.distinct_states;
           string_of_int (List.length r.bugs);
           Printf.sprintf "%.2f" t;
           Printf.sprintf "%.0f" (rate r t);
         ])
       [
         ("serial", serial, t_serial);
         ("1 worker", one, t_one);
         ("2 workers", two, t_two);
       ]);
  let failed = ref false in
  let check what ok =
    if not ok then begin
      failed := true;
      Printf.printf "FAILED: %s\n" what
    end
  in
  check "bug sets identical (serial, 1 worker, 2 workers)"
    (keys serial = keys one && keys one = keys two);
  check "per-bound cumulative execution counts identical"
    (bexec serial = bexec one && bexec one = bexec two);
  check "execution and state totals identical"
    (serial.executions = one.executions
    && one.executions = two.executions
    && serial.distinct_states = one.distinct_states
    && one.distinct_states = two.distinct_states);
  if !failed then exit 1 else print_endline "distributed equivalence: OK"

let experiments =
  [
    ("table1", table1);
    ("table2", table2);
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig2-scaled", fig2_scaled);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("theorem1", theorem1);
    ("ablation-reduction", ablation_reduction);
    ("ablation-por", ablation_por);
    ("ablation-cache", ablation_cache);
    ("ablation-find", ablation_find);
    ("timings", timings);
    ("parallel", parallel_bench);
    ("repro", repro_bench);
    ("bounds", bounds_bench);
    ("replay_cache", replay_cache_bench);
    ("distributed", distributed_bench);
  ]

let () =
  (* pull --jobs N (or --jobs=N) out of argv; the rest are experiment
     names *)
  let rec parse_args acc = function
    | [] -> List.rev acc
    | "--jobs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
        parallel_jobs := n;
        parse_args acc rest
      | _ ->
        Printf.eprintf "bad --jobs value %S\n" n;
        exit 2)
    | arg :: rest
      when String.length arg > 7 && String.sub arg 0 7 = "--jobs=" -> (
      match int_of_string_opt (String.sub arg 7 (String.length arg - 7)) with
      | Some n when n >= 1 ->
        parallel_jobs := n;
        parse_args acc rest
      | _ ->
        Printf.eprintf "bad %s\n" arg;
        exit 2)
    | name :: rest -> parse_args (name :: acc) rest
  in
  let requested =
    match parse_args [] (List.tl (Array.to_list Sys.argv)) with
    | [] -> List.map fst experiments
    | names -> names
  in
  let out_dir =
    match Sys.getenv_opt "BENCH_OUT_DIR" with
    | Some d when d <> "" -> d
    | _ -> "."
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      (* the CLI spelling `replaycache` is an alias; the canonical name
         keeps the BENCH_replay_cache.json artifact readable *)
      let name = if name = "replaycache" then "replay_cache" else name in
      match List.assoc_opt name experiments with
      | Some f ->
        bench_data := [];
        last_heading := name;
        let e0 = Unix.gettimeofday () in
        f ();
        write_bench_json ~dir:out_dir ~name
          ~wall:(Unix.gettimeofday () -. e0)
      | None ->
        Printf.printf "unknown experiment %S; available: %s\n" name
          (String.concat ", " (List.map fst experiments)))
    requested;
  Printf.printf "\ntotal wall time: %.1fs\n" (Unix.gettimeofday () -. t0)
