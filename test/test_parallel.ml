(* The parallel ICB executor: equivalence with the serial search,
   determinism across runs, interrupt/resume without duplicated work, and
   the saturating statistics merge. *)

module Explore = Icb_search.Explore
module Collector = Icb_search.Collector
module Checkpoint = Icb_search.Checkpoint
module Sresult = Icb_search.Sresult
module Engine = Icb_search.Engine
module Parallel = Icb_search.Parallel

let check = Alcotest.check

let tmp_ckpt () = Filename.temp_file "icb-par" ".ckpt"

(* (key, preemptions) pairs, sorted: the deduplicated bug set plus the
   preemption count each bug was exposed with — both must match between a
   serial and a parallel run (the parallel merge absorbs a bound's
   candidates in sorted order, and within the first bound exposing a bug
   every candidate of that kind carries the same, minimal count). *)
let bug_set (r : Sresult.t) =
  List.sort compare
    (List.map
       (fun (b : Sresult.bug) -> (b.Sresult.key, b.Sresult.preemptions))
       r.Sresult.bugs)

let bexec (r : Sresult.t) = Array.to_list r.Sresult.bound_executions

let serial ?(options = Collector.default_options) ~max_bound prog =
  Icb.run ~options
    ~strategy:(Explore.Icb { max_bound = Some max_bound; cache = false })
    prog

let assert_equivalent what (s : Sresult.t) (p : Sresult.t) =
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    (what ^ ": bug set") (bug_set s) (bug_set p);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    (what ^ ": executions per bound") (bexec s) (bexec p);
  check Alcotest.int (what ^ ": executions") s.Sresult.executions
    p.Sresult.executions;
  check Alcotest.int (what ^ ": states") s.Sresult.distinct_states
    p.Sresult.distinct_states;
  check Alcotest.int (what ^ ": steps") s.Sresult.total_steps
    p.Sresult.total_steps;
  check Alcotest.bool (what ^ ": complete") s.Sresult.complete
    p.Sresult.complete

let equivalence_case name ~max_bound prog =
  Alcotest.test_case name `Quick (fun () ->
      let s = serial ~max_bound prog in
      let p = Icb.run_parallel ~max_bound ~domains:4 prog in
      assert_equivalent "4 domains vs serial" s p;
      (* a 1-domain pool must agree too: same merge code, no concurrency *)
      let one = Icb.run_parallel ~max_bound ~domains:1 prog in
      assert_equivalent "1 domain vs serial" s one)

let equivalence_tests =
  [
    equivalence_case "peterson (check-before-set) matches serially"
      ~max_bound:3
      (Icb_models.Peterson.program Icb_models.Peterson.Bug_check_before_set);
    equivalence_case "work-stealing queue (unlocked steal) matches serially"
      ~max_bound:2
      (Icb_models.Workstealing.program
         Icb_models.Workstealing.Bug_unlocked_steal);
    equivalence_case "bluetooth driver (buggy) matches serially" ~max_bound:3
      (Icb_models.Bluetooth.program ~bug:true);
    Alcotest.test_case "first bug carries the same preemption bound" `Quick
      (fun () ->
        let prog =
          Icb_models.Peterson.program Icb_models.Peterson.Bug_check_before_set
        in
        match (Icb.check prog, Icb.check ~domains:4 prog) with
        | Some s, Some p ->
          check Alcotest.string "same bug" s.Sresult.key p.Sresult.key;
          check Alcotest.int "same minimal preemption count"
            s.Sresult.preemptions p.Sresult.preemptions
        | _ -> Alcotest.fail "both checkers must find the bug");
    Alcotest.test_case "--jobs is refused for non-shardable strategies"
      `Quick (fun () ->
        List.iter
          (fun strategy ->
            match
              Icb.run ~domains:2 ~strategy
                (Icb_models.Bluetooth.program ~bug:false)
            with
            | exception Invalid_argument msg ->
              check Alcotest.bool "non-empty diagnostic" true
                (String.length msg > 0)
            | _ -> Alcotest.fail "expected Invalid_argument")
          [ Explore.Sleep_dfs; Explore.Most_enabled { cache = true } ]);
  ]

(* --- determinism across identical parallel runs --------------------------- *)

(* Everything observable, including each bug's schedule and execution
   stamp, rendered to one string; two runs of the same parallel search
   must produce byte-identical renderings regardless of worker timing. *)
let render (r : Sresult.t) =
  let bug (b : Sresult.bug) =
    Printf.sprintf "%s@%d p%d cs%d d%d <%s>" b.Sresult.key b.Sresult.execution
      b.Sresult.preemptions b.Sresult.context_switches b.Sresult.depth
      (String.concat "," (List.map string_of_int b.Sresult.schedule))
  in
  Printf.sprintf "%s|execs=%d|states=%d|steps=%d|complete=%b|bexec=%s|bugs=%s"
    r.Sresult.strategy r.Sresult.executions r.Sresult.distinct_states
    r.Sresult.total_steps r.Sresult.complete
    (String.concat ";"
       (List.map
          (fun (b, e) -> Printf.sprintf "%d:%d" b e)
          (Array.to_list r.Sresult.bound_executions)))
    (String.concat ";" (List.map bug (List.sort compare r.Sresult.bugs)))

let determinism_tests =
  [
    Alcotest.test_case "two 4-domain runs are byte-identical" `Quick
      (fun () ->
        let prog =
          Icb_models.Workstealing.program
            Icb_models.Workstealing.Bug_pop_reads_head_first
        in
        let run () =
          render (Icb.run_parallel ~max_bound:2 ~domains:4 prog)
        in
        check Alcotest.string "identical rendering" (run ()) (run ()));
  ]

(* --- interrupt mid-search, resume without re-exploring -------------------- *)

(* The machine engine wrapped so that every completed execution's schedule
   lands on a shared tape; the wrapper is shared by all workers, so the
   tape is the exact multiset of executions the whole pool explored. *)
let recording_engine prog tape :
    (module Engine.S
       with type state = Icb_search.Mach_engine.state * int list) =
  let module Base = (val Icb.engine prog) in
  let m = Mutex.create () in
  (module struct
    type state = Base.state * int list (* reversed schedule *)

    let initial () = (Base.initial (), [])
    let enabled (s, _) = Base.enabled s
    let status (s, _) = Base.status s
    let signature (s, _) = Base.signature s
    let depth (s, _) = Base.depth s
    let blocking_ops (s, _) = Base.blocking_ops s
    let preemptions (s, _) = Base.preemptions s
    let schedule (s, _) = Base.schedule s
    let thread_count (s, _) = Base.thread_count s
    let step_footprint (s, _) t = Base.step_footprint s t

    (* the pair is as persistent as the underlying machine state, so the
       wrapper keeps the snapshot capability *)
    type snap = state

    let snapshot = Some (fun (s : state) -> s)
    let restore (s : snap) = s

    let step (s, sched) t =
      let s' = Base.step s t in
      let sched' = t :: sched in
      (if Engine.is_terminal (Base.status s') then begin
         Mutex.lock m;
         tape := List.rev sched' :: !tape;
         Mutex.unlock m
       end);
      (s', sched')
  end)

let sorted_tape tape = List.sort compare !tape

let assert_no_duplicates what schedules =
  let rec dup = function
    | a :: (b :: _ as rest) -> if a = b then true else dup rest
    | _ -> false
  in
  check Alcotest.bool (what ^ ": no schedule explored twice") false
    (dup schedules)

let stress_tests =
  [
    Alcotest.test_case
      "a killed parallel run resumes (serially and in parallel) with no \
       duplicated work"
      `Quick (fun () ->
        let prog =
          Icb_models.Workstealing.program
            Icb_models.Workstealing.Bug_pop_reads_head_first
        in
        let max_bound = 3 in
        (* uninterrupted reference: the full tape and final result *)
        let full_tape = ref [] in
        let full =
          Explore.run
            (recording_engine prog full_tape)
            (Explore.Icb { max_bound = Some max_bound; cache = false })
        in
        assert_no_duplicates "reference run" (sorted_tape full_tape);
        (* kill a 4-domain run mid-search: a short wall-clock deadline,
           backed by an execution limit so the interruption survives
           arbitrarily fast hardware *)
        let path = tmp_ckpt () in
        let t1 = ref [] in
        let interrupted =
          Parallel.run
            (fun _ -> recording_engine prog t1)
            ~options:
              {
                Collector.default_options with
                deadline = Some (Collector.deadline_in 0.15);
                max_executions = Some (full.Sresult.executions / 4);
              }
            ~checkpoint_out:path ~checkpoint_every:max_int ~domains:4
            ~max_bound:(Some max_bound) ~cache:false ()
        in
        check Alcotest.bool "was interrupted" false
          interrupted.Sresult.complete;
        check Alcotest.bool "a stop reason is recorded" true
          (interrupted.Sresult.stop_reason <> None);
        (* resume the checkpoint to the end, serially... *)
        let t_serial = ref [] in
        let resumed_serial =
          Explore.resume
            (recording_engine prog t_serial)
            (Checkpoint.load path)
        in
        (* ...and in parallel, from the same checkpoint *)
        let t_par = ref [] in
        let resumed_par =
          Explore.resume
            (recording_engine prog t_par)
            ~domains:4 (Checkpoint.load path)
        in
        Sys.remove path;
        (* no execution is explored twice across the kill... *)
        let union_serial = List.sort compare (!t1 @ !t_serial) in
        let union_par = List.sort compare (!t1 @ !t_par) in
        assert_no_duplicates "interrupted + serial resume" union_serial;
        assert_no_duplicates "interrupted + parallel resume" union_par;
        (* ...and nothing is missed either: both unions are exactly the
           uninterrupted run's execution multiset *)
        let schedules = Alcotest.list (Alcotest.list Alcotest.int) in
        check schedules "serial resume covers the full space"
          (sorted_tape full_tape) union_serial;
        check schedules "parallel resume covers the full space"
          (sorted_tape full_tape) union_par;
        assert_equivalent "serial resume result" full resumed_serial;
        assert_equivalent "parallel resume result" full resumed_par);
  ]

(* --- the statistics merge saturates --------------------------------------- *)

let saturation_tests =
  [
    Alcotest.test_case "merge_stats pins counters at max_int" `Quick
      (fun () ->
        let snap_with ~executions ~total_steps =
          let c = Collector.create Collector.default_options in
          Collector.touch c 1L;
          Collector.forge_counts (Collector.snapshot c) ~executions
            ~total_steps
        in
        (* two near-max_int workers: a wrapping sum would go negative *)
        let near =
          snap_with ~executions:(max_int - 5) ~total_steps:(max_int - 3)
        in
        let master = Collector.create Collector.default_options in
        Collector.merge_stats master near;
        Collector.merge_stats master near;
        check Alcotest.int "executions saturate" max_int
          (Collector.executions master);
        check Alcotest.int "steps saturate" max_int
          (Collector.total_steps master);
        (* ordinary counts still add exactly *)
        let small = snap_with ~executions:10 ~total_steps:20 in
        let m2 = Collector.create Collector.default_options in
        Collector.merge_stats m2 small;
        Collector.merge_stats m2 small;
        check Alcotest.int "small sums are exact" 20
          (Collector.executions m2);
        check Alcotest.int "small step sums are exact" 40
          (Collector.total_steps m2));
  ]

let () =
  Alcotest.run "parallel"
    [
      ("equivalence", equivalence_tests);
      ("determinism", determinism_tests);
      ("stress", stress_tests);
      ("saturation", saturation_tests);
    ]
