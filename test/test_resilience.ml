(* The resilience layer: wall-clock budgets, checkpoint/resume, crash
   containment and divergence detection. *)

module Explore = Icb_search.Explore
module Collector = Icb_search.Collector
module Checkpoint = Icb_search.Checkpoint
module Sresult = Icb_search.Sresult
module Engine = Icb_search.Engine
module Registry = Icb_models.Registry
module Api = Icb_chess.Api
module CE = Icb_chess.Chess_engine

let check = Alcotest.check

let icb_unbounded = Explore.Icb { max_bound = None; cache = false }

let tmp_ckpt () = Filename.temp_file "icb-test" ".ckpt"

let bug_keys (r : Sresult.t) =
  List.sort_uniq String.compare
    (List.map (fun (b : Sresult.bug) -> b.Sresult.key) r.Sresult.bugs)

(* --- wall-clock budgets -------------------------------------------------- *)

let deadline_tests =
  [
    Alcotest.test_case "an expired deadline stops the search with coverage"
      `Quick (fun () ->
        (* huge space, deadline already in the past: the search must stop
           almost immediately yet still report the states it did reach *)
        let r =
          Icb.run
            ~options:
              {
                Collector.default_options with
                deadline = Some (Unix.gettimeofday () -. 1.0);
              }
            ~strategy:icb_unbounded
            (Icb_models.Dryad.program Icb_models.Dryad.Correct)
        in
        check Alcotest.bool "not complete" false r.Sresult.complete;
        check Alcotest.bool "deadline reason" true
          (r.stop_reason = Some Sresult.Deadline_exceeded);
        check Alcotest.bool "non-empty coverage" true (r.distinct_states > 0));
    Alcotest.test_case "a short deadline yields a partial result" `Quick
      (fun () ->
        let r =
          Icb.run
            ~options:
              {
                Collector.default_options with
                deadline = Some (Collector.deadline_in 0.2);
              }
            ~strategy:icb_unbounded
            (Icb_models.Dryad.program Icb_models.Dryad.Correct)
        in
        check Alcotest.bool "not complete" false r.Sresult.complete;
        check Alcotest.bool "made progress" true (r.executions > 0);
        check Alcotest.bool "deadline reason" true
          (r.stop_reason = Some Sresult.Deadline_exceeded));
    Alcotest.test_case "other limits report their own stop reason" `Quick
      (fun () ->
        let r =
          Icb.run
            ~options:
              { Collector.default_options with max_states = Some 10 }
            ~strategy:(Explore.Dfs { cache = false })
            (Icb_models.Workstealing.program Icb_models.Workstealing.Correct)
        in
        check Alcotest.bool "state-limit reason" true
          (r.Sresult.stop_reason = Some Sresult.State_limit);
        let r =
          Icb.run
            ~options:
              { Collector.default_options with max_executions = Some 3 }
            ~strategy:icb_unbounded
            (Icb_models.Peterson.program Icb_models.Peterson.Correct)
        in
        check Alcotest.bool "execution-limit reason" true
          (r.Sresult.stop_reason = Some Sresult.Execution_limit));
    Alcotest.test_case "on_progress fires once per execution" `Quick
      (fun () ->
        let calls = ref 0 in
        let last = ref 0 in
        let r =
          Icb.run
            ~options:
              {
                Collector.default_options with
                on_progress =
                  Some
                    (fun p ->
                      incr calls;
                      check Alcotest.bool "executions increase" true
                        (p.Collector.p_executions > !last);
                      last := p.Collector.p_executions);
              }
            ~strategy:icb_unbounded
            (Icb_models.Bluetooth.program ~bug:false)
        in
        check Alcotest.int "one call per execution" r.Sresult.executions
          !calls);
  ]

(* --- checkpoint / resume -------------------------------------------------- *)

(* Interrupt the search every [chunk] executions (a deterministic stand-in
   for kill -9: the checkpoint written when the limit fires is exactly what
   a killed process leaves behind, thanks to atomic write-rename), then
   resume from disk until the search runs to its natural end. *)
let run_in_chunks ?max_bound ~chunk prog =
  let path = tmp_ckpt () in
  let options lim =
    { Collector.default_options with max_executions = Some lim }
  in
  let strategy = Explore.Icb { max_bound; cache = false } in
  let r =
    ref
      (Icb.run ~options:(options chunk) ~checkpoint_out:path
         ~checkpoint_every:max_int ~strategy prog)
  in
  let rounds = ref 1 in
  while !r.Sresult.stop_reason = Some Sresult.Execution_limit do
    incr rounds;
    if !rounds > 500 then Alcotest.fail "resume loop did not converge";
    let ckpt = Checkpoint.load path in
    r :=
      Icb.resume
        ~options:(options (!r.Sresult.executions + chunk))
        ~checkpoint_out:path prog ckpt
  done;
  Sys.remove path;
  (!r, !rounds)

let same_outcome_as_uninterrupted ?max_bound ~chunk prog () =
  let full = Icb.run ~strategy:(Explore.Icb { max_bound; cache = false }) prog in
  let resumed, rounds = run_in_chunks ?max_bound ~chunk prog in
  check Alcotest.bool "was actually interrupted" true (rounds > 1);
  check (Alcotest.list Alcotest.string) "same bug set" (bug_keys full)
    (bug_keys resumed);
  check Alcotest.int "same states" full.Sresult.distinct_states
    resumed.Sresult.distinct_states;
  check Alcotest.bool "same completion" full.Sresult.complete
    resumed.Sresult.complete;
  (* the ICB guarantee survives interruption: the minimal preemption
     count over all bugs is unchanged *)
  let min_preemptions (r : Sresult.t) =
    List.fold_left
      (fun m (b : Sresult.bug) -> min m b.Sresult.preemptions)
      max_int r.Sresult.bugs
  in
  check Alcotest.int "same minimal preemptions" (min_preemptions full)
    (min_preemptions resumed)

let checkpoint_tests =
  [
    Alcotest.test_case "interrupt/resume matches an uninterrupted run (peterson)"
      `Quick
      (same_outcome_as_uninterrupted ~chunk:200
         (Icb_models.Peterson.program Icb_models.Peterson.Bug_check_before_set));
    Alcotest.test_case
      "interrupt/resume matches an uninterrupted run (workstealing bug)"
      `Quick
      (same_outcome_as_uninterrupted ~max_bound:2 ~chunk:50
         (Icb_models.Workstealing.program
            Icb_models.Workstealing.Bug_unlocked_steal));
    Alcotest.test_case "random walk resumes its RNG stream" `Quick (fun () ->
        let prog = Icb_models.Bluetooth.program ~bug:false in
        let options lim =
          { Collector.default_options with max_executions = Some lim }
        in
        let strategy = Explore.Random_walk { seed = 42L } in
        let full = Icb.run ~options:(options 40) ~strategy prog in
        let path = tmp_ckpt () in
        let half =
          Icb.run ~options:(options 20) ~checkpoint_out:path
            ~checkpoint_every:max_int ~strategy prog
        in
        check Alcotest.int "stopped halfway" 20 half.Sresult.executions;
        let resumed =
          Icb.resume ~options:(options 40) prog (Checkpoint.load path)
        in
        Sys.remove path;
        (* the resumed walk continues the very same random stream, so the
           two-phase run covers exactly what the one-shot run covers *)
        check Alcotest.int "same executions" full.Sresult.executions
          resumed.Sresult.executions;
        check Alcotest.int "same states" full.Sresult.distinct_states
          resumed.Sresult.distinct_states);
    Alcotest.test_case "checkpointing a chess-engine search resumes too"
      `Quick (fun () ->
        (* the stateless engine rebuilds frontier states by replaying
           schedule prefixes — exactly the checkpoint representation *)
        let body () =
          let m = Api.Mutex.create () in
          let c = Api.Data.make 0 in
          for _ = 1 to 2 do
            Api.spawn (fun () ->
                Api.Mutex.lock m;
                Api.Data.set c (Api.Data.get c + 1);
                Api.Mutex.unlock m)
          done
        in
        let e = CE.engine body in
        let full = Explore.run e icb_unbounded in
        let path = tmp_ckpt () in
        let options lim =
          { Collector.default_options with max_executions = Some lim }
        in
        let r =
          ref
            (Explore.run e ~options:(options 3) ~checkpoint_out:path
               ~checkpoint_every:max_int icb_unbounded)
        in
        let rounds = ref 1 in
        while !r.Sresult.stop_reason = Some Sresult.Execution_limit do
          incr rounds;
          if !rounds > 200 then Alcotest.fail "resume loop did not converge";
          r :=
            Explore.resume e
              ~options:(options (!r.Sresult.executions + 3))
              ~checkpoint_out:path (Checkpoint.load path)
        done;
        Sys.remove path;
        check Alcotest.bool "was interrupted" true (!rounds > 1);
        check Alcotest.bool "complete" true !r.Sresult.complete;
        check Alcotest.int "same states" full.Sresult.distinct_states
          !r.Sresult.distinct_states);
    Alcotest.test_case "strategies without checkpoint support say so" `Quick
      (fun () ->
        let prog = Icb_models.Bluetooth.program ~bug:false in
        match
          Icb.run ~checkpoint_out:"/tmp/never-written.ckpt"
            ~strategy:Explore.Sleep_dfs prog
        with
        | exception Invalid_argument msg ->
          check Alcotest.bool "non-empty diagnostic" true
            (String.length msg > 0)
        | _ -> Alcotest.fail "expected Invalid_argument");
  ]

(* --- checkpoint file robustness ------------------------------------------ *)

let write_file path bytes =
  let oc = open_out_bin path in
  output_string oc bytes;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let expect_corrupt path =
  match Checkpoint.load path with
  | exception Checkpoint.Corrupt msg ->
    check Alcotest.bool "message names the file" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "expected Checkpoint.Corrupt"

let format_tests =
  [
    Alcotest.test_case "round trip preserves strategy and metadata" `Quick
      (fun () ->
        let path = tmp_ckpt () in
        let prog =
          Icb_models.Peterson.program Icb_models.Peterson.Bug_check_before_set
        in
        let _ =
          Icb.run
            ~options:
              { Collector.default_options with max_executions = Some 10 }
            ~checkpoint_out:path
            ~checkpoint_meta:[ ("kind", "model"); ("target", "peterson") ]
            ~strategy:icb_unbounded prog
        in
        let ckpt = Checkpoint.load path in
        check Alcotest.string "strategy" "icb" ckpt.Checkpoint.strategy;
        check
          (Alcotest.option Alcotest.string)
          "meta" (Some "peterson")
          (Checkpoint.meta_find ckpt "target");
        check Alcotest.bool "describes itself" true
          (String.length (Checkpoint.describe ckpt) > 0);
        Sys.remove path);
    Alcotest.test_case "a truncated checkpoint is rejected, never resumed"
      `Quick (fun () ->
        let path = tmp_ckpt () in
        let _ =
          Icb.run
            ~options:
              { Collector.default_options with max_executions = Some 10 }
            ~checkpoint_out:path ~strategy:icb_unbounded
            (Icb_models.Peterson.program
               Icb_models.Peterson.Bug_check_before_set)
        in
        let whole = read_file path in
        (* a mid-write kill can leave any prefix: try several cut points *)
        List.iter
          (fun frac ->
            let cut = String.length whole * frac / 100 in
            write_file path (String.sub whole 0 cut);
            expect_corrupt path)
          [ 3; 20; 50; 99 ];
        Sys.remove path);
    Alcotest.test_case "garbage and future versions are rejected" `Quick
      (fun () ->
        let path = tmp_ckpt () in
        write_file path "this is not a checkpoint at all";
        expect_corrupt path;
        (* right magic, future version *)
        write_file path "ICBCKPT\x01\x00\x00\x00\x63then-anything";
        expect_corrupt path;
        (* flipped payload byte: checksum must catch it *)
        let good = tmp_ckpt () in
        let _ =
          Icb.run
            ~options:
              { Collector.default_options with max_executions = Some 5 }
            ~checkpoint_out:good ~strategy:icb_unbounded
            (Icb_models.Peterson.program Icb_models.Peterson.Correct)
        in
        let whole = Bytes.of_string (read_file good) in
        let last = Bytes.length whole - 1 in
        Bytes.set whole last
          (Char.chr (Char.code (Bytes.get whole last) lxor 0xff));
        write_file path (Bytes.to_string whole);
        expect_corrupt path;
        Sys.remove path;
        Sys.remove good);
    Alcotest.test_case "a checkpoint never resumes the wrong program" `Quick
      (fun () ->
        let path = tmp_ckpt () in
        let _ =
          Icb.run
            ~options:
              { Collector.default_options with max_executions = Some 50 }
            ~checkpoint_out:path ~strategy:icb_unbounded
            (Icb_models.Dryad.program Icb_models.Dryad.Correct)
        in
        let ckpt = Checkpoint.load path in
        (match
           Icb.resume (Icb_models.Bluetooth.program ~bug:false) ckpt
         with
        | exception Invalid_argument _ -> ()
        | _ ->
          (* a tiny program can legitimately replay a prefix of a bigger
             one only if every scheduled thread exists and is enabled;
             reaching here silently would be the dangerous outcome *)
          Alcotest.fail "resume against the wrong program must not succeed");
        Sys.remove path);
  ]

(* --- crash containment ---------------------------------------------------- *)

(* A real engine wrapped so that stepping thread [tid] at depth [at]
   explodes — simulating an interpreter bug or resource blow-up. *)
let crashy prog ~at ~tid:crash_tid exn =
  let module Base = (val Icb.engine prog) in
  (module struct
    include Base

    let step st t =
      if Base.depth st = at && t = crash_tid then raise exn
      else Base.step st t
  end : Engine.S
    with type state = Icb_search.Mach_engine.state)

let crash_tests =
  [
    Alcotest.test_case "an engine crash becomes a replayable bug" `Quick
      (fun () ->
        let prog = Icb_models.Bluetooth.program ~bug:false in
        let e = crashy prog ~at:2 ~tid:0 (Failure "injected engine crash") in
        let r = Explore.run e icb_unbounded in
        let crash =
          List.find_opt
            (fun (b : Sresult.bug) ->
              String.length b.key >= 12
              && String.sub b.key 0 12 = "engine-crash")
            r.Sresult.bugs
        in
        match crash with
        | None -> Alcotest.fail "expected a contained engine-crash bug"
        | Some b ->
          check Alcotest.string "keyed by the exception" "engine-crash:Failure"
            b.Sresult.key;
          check Alcotest.bool "search went on past the crash" true
            (r.Sresult.executions > 1);
          (* the recorded schedule replays straight into the crash *)
          (match Explore.replay e b.Sresult.schedule with
          | exception Failure msg ->
            check Alcotest.string "same crash" "injected engine crash" msg
          | _ -> Alcotest.fail "replay should reproduce the crash"));
    Alcotest.test_case "Stack_overflow in a step is contained too" `Quick
      (fun () ->
        let prog = Icb_models.Bluetooth.program ~bug:false in
        let e = crashy prog ~at:3 ~tid:0 Stack_overflow in
        let r = Explore.run e icb_unbounded in
        check Alcotest.bool "contained" true
          (List.exists
             (fun (b : Sresult.bug) ->
               b.Sresult.key = "engine-crash:Stack_overflow")
             r.Sresult.bugs));
    Alcotest.test_case "crashes do not abort dfs, sleep-dfs or random" `Quick
      (fun () ->
        let prog = Icb_models.Bluetooth.program ~bug:false in
        List.iter
          (fun strategy ->
            let e = crashy prog ~at:2 ~tid:0 (Failure "boom") in
            let r =
              Explore.run e
                ~options:
                  {
                    Collector.default_options with
                    max_executions = Some 200;
                  }
                strategy
            in
            check Alcotest.bool
              (Explore.strategy_name strategy ^ " contained the crash")
              true
              (List.exists
                 (fun (b : Sresult.bug) ->
                   b.Sresult.key = "engine-crash:Failure")
                 r.Sresult.bugs))
          [
            Explore.Dfs { cache = false };
            Explore.Sleep_dfs;
            Explore.Random_walk { seed = 1L };
            Explore.Most_enabled { cache = false };
          ]);
  ]

(* --- divergence detection -------------------------------------------------- *)

let divergence_tests =
  [
    Alcotest.test_case
      "a nondeterministic chess body is reported, not a crash" `Quick
      (fun () ->
        (* state leaks across executions through [flip], so the body takes
           a different number of synchronization steps on every run — the
           classic nondeterminism CHESS must call out *)
        let flip = ref false in
        let body () =
          flip := not !flip;
          let c = Api.Shared.make 0 in
          Api.spawn (fun () -> Api.Shared.set c 1);
          ignore (Api.Shared.get c);
          if !flip then ignore (Api.Shared.get c)
        in
        let r =
          CE.run
            ~options:
              { Collector.default_options with max_executions = Some 2000 }
            ~strategy:icb_unbounded body
        in
        match
          List.find_opt
            (fun (b : Sresult.bug) ->
              b.Sresult.key = "nondeterministic-program")
            r.Sresult.bugs
        with
        | None ->
          Alcotest.fail "expected a nondeterministic-program diagnostic"
        | Some b ->
          check Alcotest.bool "actionable message" true
            (String.length b.Sresult.msg > 40));
    Alcotest.test_case "deterministic bodies never trigger the detector"
      `Quick (fun () ->
        let body () =
          let m = Api.Mutex.create () in
          for _ = 1 to 2 do
            Api.spawn (fun () ->
                Api.Mutex.lock m;
                Api.Mutex.unlock m)
          done
        in
        let r = CE.run ~strategy:icb_unbounded body in
        check Alcotest.bool "no false positive" false
          (List.exists
             (fun (b : Sresult.bug) ->
               b.Sresult.key = "nondeterministic-program")
             r.Sresult.bugs);
        check Alcotest.bool "complete" true r.Sresult.complete);
  ]

(* --- CLI model addressing -------------------------------------------------- *)

let addressing_tests =
  [
    Alcotest.test_case "addressable names are collision-free" `Quick
      (fun () ->
        let names = List.map fst (Registry.addressable ()) in
        let sorted = List.sort String.compare names in
        let dedup = List.sort_uniq String.compare names in
        check Alcotest.int "no duplicates" (List.length dedup)
          (List.length sorted));
    Alcotest.test_case "single-bug models answer to the :bug alias" `Quick
      (fun () ->
        check Alcotest.bool "bluetooth:bug" true
          (List.mem_assoc "bluetooth:bug" (Registry.addressable ())));
    Alcotest.test_case "disambiguation suffixes colliding names" `Quick
      (fun () ->
        check
          (Alcotest.list Alcotest.string)
          "suffixed in order"
          [ "a-1"; "b"; "a-2" ]
          (Registry.disambiguate [ "a"; "b"; "a" ]);
        check
          (Alcotest.list Alcotest.string)
          "unique names untouched" [ "x"; "y" ]
          (Registry.disambiguate [ "x"; "y" ]));
  ]

let () =
  Alcotest.run "resilience"
    [
      ("deadline", deadline_tests);
      ("checkpoint", checkpoint_tests);
      ("format", format_tests);
      ("crash", crash_tests);
      ("divergence", divergence_tests);
      ("addressing", addressing_tests);
    ]
