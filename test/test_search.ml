module Explore = Icb_search.Explore
module Collector = Icb_search.Collector
module Sresult = Icb_search.Sresult
module Engine = Icb_search.Engine
module Combin = Icb_util.Combin
module Bignat = Icb_util.Bignat

let check = Alcotest.check

let compile = Icb.compile

(* Two threads, each one lock-protected increment: the archetypal tiny
   state space. *)
let tiny =
  {|
var g: int;
mutex m;
proc w() { lock(m); g = g + 1; unlock(m); }
main { spawn w(); spawn w(); }
|}

let run ?config ?options src strategy =
  Icb.run ?config ?options ~strategy (compile src)

let strategy_tests =
  [
    Alcotest.test_case "icb explores the tiny space completely" `Quick
      (fun () ->
        let r = run tiny (Explore.Icb { max_bound = None; cache = false }) in
        check Alcotest.bool "complete" true r.Sresult.complete;
        check Alcotest.int "no bugs" 0 (List.length r.bugs);
        check Alcotest.bool "several executions" true (r.executions > 1));
    Alcotest.test_case "icb and dfs agree on the reachable states" `Quick
      (fun () ->
        let a = run tiny (Explore.Icb { max_bound = None; cache = false }) in
        let b = run tiny (Explore.Dfs { cache = true }) in
        let c = run tiny (Explore.Dfs { cache = false }) in
        check Alcotest.int "icb = cached dfs" a.Sresult.distinct_states
          b.Sresult.distinct_states;
        check Alcotest.int "icb = uncached dfs" a.Sresult.distinct_states
          c.Sresult.distinct_states);
    Alcotest.test_case "icb with caching also agrees" `Quick (fun () ->
        let a = run tiny (Explore.Icb { max_bound = None; cache = true }) in
        let b = run tiny (Explore.Dfs { cache = true }) in
        check Alcotest.int "states" a.Sresult.distinct_states
          b.Sresult.distinct_states);
    Alcotest.test_case "models: icb, dfs and idfs converge on state counts"
      `Quick (fun () ->
        List.iter
          (fun prog ->
            let e = Icb.engine prog in
            let a =
              Explore.run e (Explore.Icb { max_bound = None; cache = true })
            in
            let b = Explore.run e (Explore.Dfs { cache = true }) in
            let c =
              Explore.run e
                (Explore.Iterative_dfs
                   { start = 5; incr = 5; max_depth = 1000; cache = true })
            in
            check Alcotest.int "icb = dfs" a.Sresult.distinct_states
              b.Sresult.distinct_states;
            check Alcotest.int "idfs = dfs" c.Sresult.distinct_states
              b.Sresult.distinct_states;
            check Alcotest.bool "all complete" true
              (a.complete && b.complete && c.complete))
          [
            Icb_models.Bluetooth.program ~bug:false;
            Icb_models.Filesystem.program ~threads:2;
          ]);
    Alcotest.test_case "bound coverage is monotone and saturates" `Quick
      (fun () ->
        let r =
          Icb.run
            ~strategy:(Explore.Icb { max_bound = None; cache = true })
            (Icb_models.Bluetooth.program ~bug:false)
        in
        let cov = r.Sresult.bound_coverage in
        Array.iteri
          (fun i (_, n) ->
            if i > 0 then
              check Alcotest.bool "non-decreasing" true (n >= snd cov.(i - 1)))
          cov;
        check Alcotest.int "last bound covers everything"
          r.Sresult.distinct_states
          (snd cov.(Array.length cov - 1)));
    Alcotest.test_case "bounded dfs visits no deeper than its bound" `Quick
      (fun () ->
        let r = run tiny (Explore.Bounded_dfs { depth = 3; cache = false }) in
        check Alcotest.bool "not complete (truncated)" true
          ((not r.Sresult.complete) || r.max_steps <= 3);
        check Alcotest.bool "depth respected" true (r.max_steps <= 3));
    Alcotest.test_case "random walk respects the execution limit" `Quick
      (fun () ->
        let options =
          { Collector.default_options with max_executions = Some 17 }
        in
        let r = run ~options tiny (Explore.Random_walk { seed = 5L }) in
        check Alcotest.int "executions" 17 r.Sresult.executions);
    Alcotest.test_case "random walk is deterministic per seed" `Quick
      (fun () ->
        let options =
          { Collector.default_options with max_executions = Some 20 }
        in
        let a = run ~options tiny (Explore.Random_walk { seed = 9L }) in
        let b = run ~options tiny (Explore.Random_walk { seed = 9L }) in
        check Alcotest.int "same states" a.Sresult.distinct_states
          b.Sresult.distinct_states;
        check
          (Alcotest.array (Alcotest.pair Alcotest.int Alcotest.int))
          "same growth" a.Sresult.growth b.Sresult.growth);
    Alcotest.test_case "random walk states are a subset of dfs's" `Quick
      (fun () ->
        let options =
          { Collector.default_options with max_executions = Some 50 }
        in
        let rw = run ~options tiny (Explore.Random_walk { seed = 3L }) in
        let dfs = run tiny (Explore.Dfs { cache = true }) in
        check Alcotest.bool "subset cardinality" true
          (rw.Sresult.distinct_states <= dfs.Sresult.distinct_states));
  ]

(* --- ICB guarantees ---------------------------------------------------- *)

let icb_tests =
  [
    Alcotest.test_case "first bug has minimal preemptions" `Quick (fun () ->
        (* exhaustively enumerate all executions and find the true minimum
           preemption count over buggy executions; ICB's first bug must
           match it *)
        let prog = Icb_models.Bluetooth.program ~bug:true in
        let module E = (val Icb.engine prog) in
        let min_preempt = ref max_int in
        let rec dfs st =
          match E.status st with
          | Engine.Running ->
            List.iter (fun t -> dfs (E.step st t)) (E.enabled st)
          | Engine.Failed _ ->
            min_preempt := min !min_preempt (E.preemptions st)
          | Engine.Terminated | Engine.Deadlock _ -> ()
        in
        dfs (E.initial ());
        match Icb.check prog with
        | Some bug ->
          check Alcotest.int "minimal" !min_preempt
            bug.Sresult.preemptions
        | None -> Alcotest.fail "expected a bug");
    Alcotest.test_case "icb bounded at c-1 misses a c-preemption bug" `Quick
      (fun () ->
        let prog = Icb_models.Workstealing.program
            Icb_models.Workstealing.Bug_unlocked_steal in
        check Alcotest.bool "not at bound 1" true
          (Icb.check prog ~max_bound:1 = None);
        match Icb.check prog ~max_bound:2 with
        | Some b -> check Alcotest.int "found at 2" 2 b.Sresult.preemptions
        | None -> Alcotest.fail "expected the bug at bound 2");
    Alcotest.test_case "executions with c preemptions obey Theorem 1" `Quick
      (fun () ->
        let prog = compile tiny in
        let module E = (val Icb.engine prog) in
        (* count executions per preemption count, and measure n, k, b *)
        let counts = Hashtbl.create 8 in
        let max_k = ref 0 and max_b = ref 0 and max_n = ref 0 in
        let execs = ref 0 in
        let rec dfs st =
          match E.status st with
          | Engine.Running ->
            List.iter (fun t -> dfs (E.step st t)) (E.enabled st)
          | Engine.Terminated | Engine.Deadlock _ | Engine.Failed _ ->
            incr execs;
            max_k := max !max_k (E.depth st);
            max_b := max !max_b (E.blocking_ops st);
            max_n := max !max_n (E.thread_count st);
            let c = E.preemptions st in
            Hashtbl.replace counts c
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts c))
        in
        dfs (E.initial ());
        check Alcotest.bool "searched something" true (!execs > 1);
        Hashtbl.iter
          (fun c observed ->
            let bound =
              Combin.theorem1_bound ~n:!max_n ~k:!max_k ~b:!max_b ~c
            in
            check Alcotest.bool
              (Printf.sprintf "count(%d)=%d within bound %s" c observed
                 (Bignat.to_string bound))
              true
              (Bignat.compare (Bignat.of_int observed) bound <= 0))
          counts);
    Alcotest.test_case "icb without cache enumerates each execution once"
      `Quick (fun () ->
        (* on a two-step two-thread program the executions are exactly the
           interleavings: count them against the closed form *)
        let prog =
          compile
            {|
volatile var a: int; volatile var b: int;
proc w1() { a = 1; a = 2; }
proc w2() { b = 1; b = 2; }
main { spawn w1(); spawn w2(); }
|}
        in
        let r =
          Icb.run ~strategy:(Explore.Icb { max_bound = None; cache = false })
            prog
        in
        check Alcotest.bool "complete" true r.Sresult.complete;
        (* main: 2 spawn steps then halt-step; workers 2 steps each.
           every maximal execution is counted exactly once; just sanity
           bound it by the total interleaving count of the 2x2 core *)
        check Alcotest.bool "at least the 6 core interleavings" true
          (r.executions >= 6));
  ]

(* --- collector, limits, replay ------------------------------------------ *)

let infra_tests =
  [
    Alcotest.test_case "stop at first bug" `Quick (fun () ->
        let options =
          { Collector.default_options with stop_at_first_bug = true }
        in
        let r =
          Icb.run ~options
            ~strategy:(Explore.Icb { max_bound = None; cache = false })
            (Icb_models.Bluetooth.program ~bug:true)
        in
        check Alcotest.int "one bug" 1 (List.length r.Sresult.bugs);
        check Alcotest.bool "not complete" true (not r.complete));
    Alcotest.test_case "max_states stops the search" `Quick (fun () ->
        let options =
          { Collector.default_options with max_states = Some 10 }
        in
        let r =
          Icb.run ~options ~strategy:(Explore.Dfs { cache = false })
            (Icb_models.Workstealing.program Icb_models.Workstealing.Correct)
        in
        check Alcotest.bool "stopped early" true (not r.Sresult.complete);
        check Alcotest.bool "around the limit" true (r.distinct_states <= 11));
    Alcotest.test_case "deadlock_is_error can be disabled" `Quick (fun () ->
        let prog =
          compile {|
event e;
main { wait(e); }
|}
        in
        let options =
          { Collector.default_options with deadlock_is_error = false }
        in
        let r =
          Icb.run ~options
            ~strategy:(Explore.Icb { max_bound = None; cache = false })
            prog
        in
        check Alcotest.int "no bug" 0 (List.length r.Sresult.bugs);
        let r2 =
          Icb.run ~strategy:(Explore.Icb { max_bound = None; cache = false })
            prog
        in
        check Alcotest.int "bug by default" 1 (List.length r2.Sresult.bugs));
    Alcotest.test_case "replay reproduces the bug" `Quick (fun () ->
        let prog = Icb_models.Bluetooth.program ~bug:true in
        match Icb.check prog with
        | None -> Alcotest.fail "expected a bug"
        | Some bug ->
          let module E = (val Icb.engine prog) in
          let final = Explore.replay (module E) bug.Sresult.schedule in
          (match E.status final with
          | Engine.Failed { key; _ } ->
            check Alcotest.string "same bug" bug.key key
          | _ -> Alcotest.fail "replay did not fail");
          check Alcotest.int "same preemption count" bug.preemptions
            (E.preemptions final));
    Alcotest.test_case "replay rejects bogus schedules" `Quick (fun () ->
        let prog = compile tiny in
        let module E = (val Icb.engine prog) in
        match Explore.replay (module E) [ 7 ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected rejection");
    Alcotest.test_case "growth curve is consistent" `Quick (fun () ->
        let r =
          Icb.run ~strategy:(Explore.Dfs { cache = false })
            (Icb_models.Bluetooth.program ~bug:false)
        in
        let g = r.Sresult.growth in
        check Alcotest.int "one point per execution" r.executions
          (Array.length g);
        Array.iteri
          (fun i (e, n) ->
            check Alcotest.int "execution index" (i + 1) e;
            if i > 0 then
              check Alcotest.bool "states non-decreasing" true
                (n >= snd g.(i - 1)))
          g);
  ]

(* --- configurations ------------------------------------------------------- *)

let config_tests =
  [
    Alcotest.test_case "zing and chess configs find the same bluetooth bug"
      `Quick (fun () ->
        let prog = Icb_models.Bluetooth.program ~bug:true in
        let find config =
          match Icb.check ~config prog with
          | Some b -> (b.Sresult.key, b.preemptions)
          | None -> ("none", -1)
        in
        let k1, c1 = find Icb_search.Mach_engine.zing_config in
        let k2, c2 = find Icb_search.Mach_engine.chess_config in
        check Alcotest.string "same key" k1 k2;
        check Alcotest.int "same bound" c1 c2);
    Alcotest.test_case "sync-only explores far fewer states than every-access"
      `Quick (fun () ->
        let prog = Icb_models.Bluetooth.program ~bug:false in
        let states config =
          (Icb.run ~config ~strategy:(Explore.Dfs { cache = true }) prog)
            .Sresult.distinct_states
        in
        let fine = states Icb_search.Mach_engine.zing_config in
        let coarse = states Icb_search.Mach_engine.default_config in
        check Alcotest.bool
          (Printf.sprintf "reduction works (%d < %d)" coarse fine)
          true (coarse < fine));
    Alcotest.test_case "hb signatures never exceed canonical states" `Quick
      (fun () ->
        let prog = Icb_models.Filesystem.program ~threads:2 in
        let states signature_mode =
          let config =
            { Icb_search.Mach_engine.default_config with signature_mode }
          in
          (Icb.run ~config ~strategy:(Explore.Dfs { cache = false }) prog)
            .Sresult.distinct_states
        in
        check Alcotest.bool "hb <= canonical" true
          (states Icb_search.Mach_engine.Hb_signature
          <= states Icb_search.Mach_engine.Canonical_state));
  ]

(* --- partial-order reduction and the extension strategies ---------------- *)

let extension_tests =
  [
    Alcotest.test_case "sleep sets preserve the reachable state set" `Quick
      (fun () ->
        List.iter
          (fun prog ->
            let dfs = Icb.run prog ~strategy:(Explore.Dfs { cache = false }) in
            let sleep = Icb.run prog ~strategy:Explore.Sleep_dfs in
            check Alcotest.int "same states" dfs.Sresult.distinct_states
              sleep.Sresult.distinct_states;
            check Alcotest.bool
              (Printf.sprintf "fewer executions (%d <= %d)" sleep.executions
                 dfs.executions)
              true
              (sleep.executions <= dfs.executions))
          [
            Icb.compile tiny;
            Icb_models.Bluetooth.program ~bug:false;
            Icb_models.Filesystem.program ~threads:2;
          ]);
    Alcotest.test_case "sleep sets keep finding every model bug" `Slow
      (fun () ->
        List.iter
          (fun (e : Icb_models.Registry.entry) ->
            List.iter
              (fun (b : Icb_models.Registry.bug_spec) ->
                let r =
                  Icb.run (b.bug_program ()) ~strategy:Explore.Sleep_dfs
                    ~options:
                      {
                        Collector.default_options with
                        stop_at_first_bug = true;
                      }
                in
                check Alcotest.bool
                  (e.model_name ^ "/" ^ b.bug_name ^ " found")
                  true
                  (r.Sresult.bugs <> []))
              e.bugs)
          Icb_models.Registry.all);
    Alcotest.test_case "sleep sets on yield-heavy programs stay exact" `Quick
      (fun () ->
        (* yields pin steps in the footprint; this program interleaves
           yields with independent work, a natural trap for unsound
           commutation *)
        let prog =
          Icb.compile
            {|
var a: int; var b: int;
proc w1() { a = 1; yield; a = 2; }
proc w2() { b = 1; yield; b = 2; }
main { spawn w1(); spawn w2(); }
|}
        in
        let dfs = Icb.run prog ~strategy:(Explore.Dfs { cache = false }) in
        let sleep = Icb.run prog ~strategy:Explore.Sleep_dfs in
        check Alcotest.int "same states" dfs.Sresult.distinct_states
          sleep.Sresult.distinct_states);
    Alcotest.test_case "pct finds the bluetooth bug" `Quick (fun () ->
        let options =
          {
            Collector.default_options with
            max_executions = Some 5000;
            stop_at_first_bug = true;
          }
        in
        let r =
          Icb.run ~options
            ~strategy:(Explore.Pct { change_points = 2; seed = 7L })
            (Icb_models.Bluetooth.program ~bug:true)
        in
        check Alcotest.bool "found" true (r.Sresult.bugs <> []));
    Alcotest.test_case "pct is deterministic per seed" `Quick (fun () ->
        let options =
          { Collector.default_options with max_executions = Some 50 }
        in
        let run () =
          (Icb.run ~options
             ~strategy:(Explore.Pct { change_points = 3; seed = 11L })
             (Icb_models.Bluetooth.program ~bug:false))
            .Sresult.distinct_states
        in
        check Alcotest.int "same" (run ()) (run ()));
    Alcotest.test_case "most-enabled completes and agrees with dfs" `Quick
      (fun () ->
        List.iter
          (fun prog ->
            let dfs = Icb.run prog ~strategy:(Explore.Dfs { cache = true }) in
            let me =
              Icb.run prog ~strategy:(Explore.Most_enabled { cache = true })
            in
            check Alcotest.int "same states" dfs.Sresult.distinct_states
              me.Sresult.distinct_states;
            check Alcotest.bool "complete" true me.complete)
          [
            Icb.compile tiny;
            Icb_models.Bluetooth.program ~bug:false;
          ]);
    Alcotest.test_case "footprints: independent steps commute" `Quick
      (fun () ->
        let prog =
          Icb.compile
            {|
mutex m1; mutex m2;
proc w1() { lock(m1); unlock(m1); }
proc w2() { lock(m2); unlock(m2); }
main { spawn w1(); spawn w2(); }
|}
        in
        let module E = (val Icb.engine prog) in
        (* drive past the spawns so both workers are parked at their locks *)
        let st = E.step (E.step (E.initial ()) 0) 0 in
        let fp1 = E.step_footprint st 1 in
        let fp2 = E.step_footprint st 2 in
        check Alcotest.bool "locks on distinct mutexes are independent" true
          (Icb_search.Engine.Footprint.independent fp1 fp2);
        (* and the states actually commute *)
        let a = E.step (E.step st 1) 2 in
        let b = E.step (E.step st 2) 1 in
        check Alcotest.int64 "commuting square" (E.signature a) (E.signature b));
    Alcotest.test_case "footprints: conflicting steps are dependent" `Quick
      (fun () ->
        let prog =
          Icb.compile
            {|
mutex m;
proc w1() { lock(m); unlock(m); }
proc w2() { lock(m); unlock(m); }
main { spawn w1(); spawn w2(); }
|}
        in
        let module E = (val Icb.engine prog) in
        let st = E.step (E.step (E.initial ()) 0) 0 in
        let fp1 = E.step_footprint st 1 in
        let fp2 = E.step_footprint st 2 in
        check Alcotest.bool "same mutex is dependent" false
          (Icb_search.Engine.Footprint.independent fp1 fp2));
  ]

(* --- every known bug, across strategies ---------------------------------- *)

(* The property behind the paper's Table 2, generalized: every bug in the
   registry is found by ICB within its expected bound, by plain DFS, and
   by a seeded random walk — and ICB's witness schedule replays straight
   into the same failure. *)
let cross_strategy_tests =
  [
    Alcotest.test_case "every registry bug: icb, dfs and random walk find it"
      `Slow (fun () ->
        List.iter
          (fun (e : Icb_models.Registry.entry) ->
            List.iter
              (fun (b : Icb_models.Registry.bug_spec) ->
                let name = e.model_name ^ "/" ^ b.bug_name in
                let prog = b.bug_program () in
                let first =
                  {
                    Collector.default_options with
                    stop_at_first_bug = true;
                  }
                in
                let bound = max 3 b.expected_bound in
                let icb =
                  Icb.run ~options:first
                    ~strategy:
                      (Explore.Icb { max_bound = Some bound; cache = false })
                    prog
                in
                check Alcotest.bool
                  (Printf.sprintf "%s: icb finds a bug within bound %d" name
                     bound)
                  true (icb.Sresult.bugs <> []);
                let dfs =
                  Icb.run
                    ~options:{ first with max_executions = Some 200_000 }
                    ~strategy:(Explore.Dfs { cache = true })
                    prog
                in
                check Alcotest.bool (name ^ ": dfs finds a bug") true
                  (dfs.Sresult.bugs <> []);
                let rw =
                  Icb.run
                    ~options:{ first with max_executions = Some 50_000 }
                    ~strategy:(Explore.Random_walk { seed = 2007L })
                    prog
                in
                check Alcotest.bool (name ^ ": random walk finds a bug") true
                  (rw.Sresult.bugs <> []);
                (* the ICB witness is not just a claim: replaying its
                   schedule reproduces the very same failure *)
                let bug = List.hd icb.Sresult.bugs in
                let module E = (val Icb.engine prog) in
                let final = Explore.replay (module E) bug.Sresult.schedule in
                let replayed =
                  match E.status final with
                  | Engine.Failed { key; _ } -> key
                  | Engine.Deadlock _ -> "deadlock"
                  | Engine.Terminated | Engine.Running -> "no-failure"
                in
                check Alcotest.string
                  (name ^ ": witness replays to the same failure")
                  bug.Sresult.key replayed)
              e.bugs)
          Icb_models.Registry.all);
    Alcotest.test_case
      "replay determinism: every witness replays with identical measurements"
      `Slow (fun () ->
        (* The repro subsystem (minimization, bundle verification, triage
           fingerprints) rests on this property: a bug's recorded schedule
           replayed on a fresh engine ends exactly at the failure and the
           engine's own counters agree with what the collector recorded —
           for every registry model and every strategy that found it. *)
        List.iter
          (fun (e : Icb_models.Registry.entry) ->
            List.iter
              (fun (b : Icb_models.Registry.bug_spec) ->
                let name = e.model_name ^ "/" ^ b.bug_name in
                let prog = b.bug_program () in
                (* Every registered strategy family, not a hand list: a
                   new strategy registered in [Explore.registry] is held
                   to this property automatically.  No bug found under
                   the caps is fine — the property quantifies over found
                   bugs.  The total-steps cap is what actually bounds
                   the sweep: best-first strategies can grow a frontier
                   of millions of internal states while completing few
                   executions, so an execution cap alone bounds neither
                   time nor memory. *)
                let options =
                  {
                    Collector.default_options with
                    stop_at_first_bug = true;
                    max_executions = Some 20_000;
                    max_total_steps = Some 200_000;
                  }
                in
                List.iter
                  (fun (reg : Explore.registered) ->
                    let sname = reg.Explore.reg_name in
                    let strategy = reg.Explore.reg_strategy in
                    let r = Icb.run ~options ~strategy prog in
                    List.iter
                      (fun (bug : Sresult.bug) ->
                        let here what =
                          Printf.sprintf "%s/%s/%s: %s" name sname
                            bug.Sresult.key what
                        in
                        let module E = (val Icb.engine prog) in
                        let final, rest =
                          Explore.replay_prefix (module E) bug.schedule
                        in
                        check
                          (Alcotest.list Alcotest.int)
                          (here "schedule ends at the failure") [] rest;
                        let replayed =
                          match E.status final with
                          | Engine.Failed { key; _ } -> key
                          | Engine.Deadlock _ -> "deadlock"
                          | Engine.Terminated | Engine.Running -> "no-failure"
                        in
                        check Alcotest.string (here "key") bug.key replayed;
                        check Alcotest.int (here "preemptions")
                          bug.preemptions (E.preemptions final);
                        check Alcotest.int (here "depth") bug.depth
                          (E.depth final);
                        check Alcotest.int (here "context switches")
                          bug.context_switches
                          (Icb_repro.Sched.count_switches (E.schedule final)))
                      r.Sresult.bugs)
                  (Explore.registry ()))
              e.bugs)
          Icb_models.Registry.all);
  ]

(* --- strategy spelling: every rejection says why -------------------------- *)

let parse_reject_tests =
  let seed = 2007L in
  let rejects input expected =
    Alcotest.test_case (Printf.sprintf "rejects %S" input) `Quick (fun () ->
        match Explore.parse_strategy ~seed input with
        | Ok _ -> Alcotest.failf "%S unexpectedly parsed" input
        | Error msg -> Alcotest.check Alcotest.string "message" expected msg)
  in
  let accepted =
    "icb, icb:N (N>=0), dfs, db:N (N>=1), idfs:N (N>=1), random, sleep, \
     pct:N (N>=1), most-enabled, vb:N (N>=1), tb:N (N>=1), icb-vb:N (N>=1)"
  in
  let unknown input =
    rejects input
      (Printf.sprintf "bad strategy: %s (accepted: %s)" input accepted)
  in
  let out_of_range input form min_n got =
    rejects input
      (Printf.sprintf "bad strategy: %s — %s takes N>=%d, got %d" input form
         min_n got)
  in
  [
    (* malformed: not a known form at all *)
    unknown "bogus";
    unknown "icb:x";
    unknown "vb:";
    unknown "icb-vb:two";
    (* well-formed number outside its range: the error names the range,
       never just "bad strategy" *)
    out_of_range "icb:-1" "icb:N" 0 (-1);
    out_of_range "db:0" "db:N" 1 0;
    out_of_range "idfs:0" "idfs:N" 1 0;
    out_of_range "pct:0" "pct:N" 1 0;
    out_of_range "vb:0" "vb:N" 1 0;
    out_of_range "tb:0" "tb:N" 1 0;
    out_of_range "icb-vb:0" "icb-vb:N" 1 0;
    (* the accepted list itself is rendered from [strategy_forms], so the
       round-trip of every listed base form must parse *)
    Alcotest.test_case "every listed form parses at its minimum" `Quick
      (fun () ->
        List.iter
          (fun (form, _, range) ->
            let spelling =
              match range with
              | None -> form
              | Some r ->
                let min_n =
                  Scanf.sscanf r "N>=%d" (fun n -> n)
                in
                (* "vb:N" -> "vb:<min>" *)
                String.sub form 0 (String.length form - 1)
                ^ string_of_int min_n
            in
            match Explore.parse_strategy ~seed spelling with
            | Ok _ -> ()
            | Error msg ->
              Alcotest.failf "%S (from listed form %S) rejected: %s" spelling
                form msg)
          Explore.strategy_forms);
  ]

let () =
  Alcotest.run "search"
    [
      ("strategies", strategy_tests);
      ("icb", icb_tests);
      ("infra", infra_tests);
      ("config", config_tests);
      ("extensions", extension_tests);
      ("cross-strategy", cross_strategy_tests);
      ("strategy-parse", parse_reject_tests);
    ]
