(* The unified driver's frontier contract, strategy by strategy: a run
   killed mid-search and resumed from its checkpoint — serially or
   sharded across domains — must reach the same outcome as an
   uninterrupted run, and checkpoints written in the older v2 format
   must still load and continue. *)

module Explore = Icb_search.Explore
module Collector = Icb_search.Collector
module Checkpoint = Icb_search.Checkpoint
module Sresult = Icb_search.Sresult
module Engine = Icb_search.Engine

let check = Alcotest.check
let tmp_ckpt () = Filename.temp_file "icb-frontier" ".ckpt"
let schedules = Alcotest.list (Alcotest.list Alcotest.int)

let bug_keys (r : Sresult.t) =
  List.sort_uniq String.compare
    (List.map (fun (b : Sresult.bug) -> b.Sresult.key) r.Sresult.bugs)

let subset small big = List.for_all (fun k -> List.mem k big) small

(* Multiset inclusion over sorted lists: every schedule occurs in [big]
   at least as often as in [small]. *)
let rec multiset_le small big =
  match (small, big) with
  | [], _ -> true
  | _, [] -> false
  | a :: s, b :: bg ->
    let c = compare a b in
    if c = 0 then multiset_le s bg
    else if c > 0 then multiset_le small bg
    else false

let opts lim = { Collector.default_options with Collector.max_executions = lim }

(* The machine engine wrapped so every completed execution's schedule
   lands on a shared tape (same idiom as test_parallel): the tape is the
   exact multiset of executions a run explored, which is what
   kill/resume must preserve. *)
let recording_engine prog tape :
    (module Engine.S
       with type state = Icb_search.Mach_engine.state * int list) =
  let module Base = (val Icb.engine prog) in
  let m = Mutex.create () in
  (module struct
    type state = Base.state * int list (* reversed schedule *)

    let initial () = (Base.initial (), [])
    let enabled (s, _) = Base.enabled s
    let status (s, _) = Base.status s
    let signature (s, _) = Base.signature s
    let depth (s, _) = Base.depth s
    let blocking_ops (s, _) = Base.blocking_ops s
    let preemptions (s, _) = Base.preemptions s
    let schedule (s, _) = Base.schedule s
    let thread_count (s, _) = Base.thread_count s
    let step_footprint (s, _) t = Base.step_footprint s t

    (* the pair is as persistent as the underlying machine state, so the
       wrapper keeps the snapshot capability *)
    type snap = state

    let snapshot = Some (fun (s : state) -> s)
    let restore (s : snap) = s

    let step (s, sched) t =
      let s' = Base.step s t in
      let sched' = t :: sched in
      (if Engine.is_terminal (Base.status s') then begin
         Mutex.lock m;
         tape := List.rev sched' :: !tape;
         Mutex.unlock m
       end);
      (s', sched')
  end)

let sorted tape = List.sort compare !tape

(* --- kill / resume, for every checkpointable strategy --------------------- *)

type case = {
  c_name : string;
  c_strategy : Explore.strategy;
  c_horizon : int option;
      (* execution cap standing in for "to completion" when the strategy
         has no natural end on this model (the randomized walkers) *)
  c_exact : bool;
      (* atomic-item strategies resume exactly: the kill+resume tape is
         the uninterrupted run's execution multiset.  ICB, most-enabled
         and the sealed-space bounds conservatively re-run the
         interrupted item, so for them only the de-duplicated schedule
         set is invariant. *)
  c_shardable : bool; (* also resume the same checkpoint with --jobs 2 *)
}

(* Derived from the strategy registry, so a newly registered strategy is
   covered by this suite automatically — the hand-maintained list this
   replaces silently missed additions. *)
let cases =
  List.filter_map
    (fun (r : Explore.registered) ->
      if not r.Explore.reg_checkpointable then None
      else
        Some
          {
            c_name = r.Explore.reg_name;
            c_strategy = r.Explore.reg_strategy;
            c_horizon = (if r.Explore.reg_bounded then Some 400 else None);
            c_exact = r.Explore.reg_exact;
            c_shardable = r.Explore.reg_shardable;
          })
    (Explore.registry ~seed:11L ())

let kill_resume_case c () =
  let prog =
    Icb_models.Peterson.program Icb_models.Peterson.Bug_check_before_set
  in
  let msg s = Printf.sprintf "%s: %s" c.c_name s in
  (* vb/icb-vb consume the program's shared-variable ranking.  Fresh runs
     get it explicitly; the resumes below deliberately do NOT, exercising
     the checkpoint's authoritative restoration of the ranked keys. *)
  let env = Icb_search.Strategy.env_of_prog prog in
  (* uninterrupted reference run *)
  let full_tape = ref [] in
  let full =
    Explore.run
      (recording_engine prog full_tape)
      ~options:(opts c.c_horizon) ~env c.c_strategy
  in
  (match c.c_horizon with
  | Some h -> check Alcotest.int (msg "full run hits its horizon") h
                full.Sresult.executions
  | None ->
    (* naturally terminated: either `Complete or `Bounded (the sealed
       bounds exhaust their subspace without covering everything) — in
       both cases no stop reason is recorded *)
    check Alcotest.bool (msg "full run terminates naturally") true
      (full.Sresult.stop_reason = None));
  (* kill mid-search.  An execution limit is a deterministic stand-in
     for an arbitrary deadline or kill -9: the checkpoint on disk when
     the limit fires is exactly what a killed process leaves behind
     (atomic write-rename), only the interruption point is
     reproducible. *)
  let kill_at =
    max 1
      ((match c.c_horizon with
       | Some h -> h
       | None -> full.Sresult.executions)
      / 2)
  in
  let path = tmp_ckpt () in
  let kill_tape = ref [] in
  let killed =
    Explore.run
      (recording_engine prog kill_tape)
      ~options:(opts (Some kill_at))
      ~checkpoint_out:path ~checkpoint_every:max_int ~env c.c_strategy
  in
  check Alcotest.bool (msg "was interrupted") true
    (killed.Sresult.stop_reason = Some Sresult.Execution_limit);
  (* resume serially to the reference horizon *)
  let t_serial = ref [] in
  let resumed =
    Explore.resume
      (recording_engine prog t_serial)
      ~options:(opts c.c_horizon) (Checkpoint.load path)
  in
  check (Alcotest.list Alcotest.string) (msg "serial resume: same bug set")
    (bug_keys full) (bug_keys resumed);
  check Alcotest.int (msg "serial resume: same states")
    full.Sresult.distinct_states resumed.Sresult.distinct_states;
  check Alcotest.bool (msg "serial resume: same completion")
    full.Sresult.complete resumed.Sresult.complete;
  if c.c_exact then begin
    check Alcotest.int (msg "serial resume: same executions")
      full.Sresult.executions resumed.Sresult.executions;
    check schedules (msg "serial resume: same execution multiset")
      (sorted full_tape)
      (List.sort compare (!kill_tape @ !t_serial))
  end
  else
    (* the interrupted item is conservatively re-queued, so its partial
       subtree may run twice — but nothing outside the uninterrupted
       run's schedule set ever appears, and nothing is missed *)
    check schedules (msg "serial resume: same schedule set")
      (List.sort_uniq compare !full_tape)
      (List.sort_uniq compare (!kill_tape @ !t_serial));
  (* resume the very same checkpoint sharded over 2 domains *)
  (if c.c_shardable then
     let t_par = ref [] in
     let resumed_par =
       Explore.resume
         (recording_engine prog t_par)
         ~options:(opts c.c_horizon) ~domains:2 (Checkpoint.load path)
     in
     match c.c_horizon with
     | None ->
       check (Alcotest.list Alcotest.string)
         (msg "parallel resume: same bug set") (bug_keys full)
         (bug_keys resumed_par);
       check Alcotest.int (msg "parallel resume: same states")
         full.Sresult.distinct_states resumed_par.Sresult.distinct_states;
       check Alcotest.bool (msg "parallel resume: same completion")
         full.Sresult.complete resumed_par.Sresult.complete;
       if c.c_exact then
         check schedules (msg "parallel resume: same execution multiset")
           (sorted full_tape)
           (List.sort compare (!kill_tape @ !t_par))
       else
         check schedules (msg "parallel resume: same schedule set")
           (List.sort_uniq compare !full_tape)
           (List.sort_uniq compare (!kill_tape @ !t_par))
     | Some h ->
       (* Parallel stopping is cooperative at item boundaries, so an
          execution limit may overshoot by the items in flight, and the
          walks actually executed need not be the first [h] indices —
          only a subset of the indices the round handed out.  The sharp
          invariant is that no walk ever runs twice: the union tape must
          embed, as a multiset, in a serial reference wide enough to
          cover every index the interrupted round could have reached
          (one 64-walk batch plus the in-flight slack). *)
       let wide_tape = ref [] in
       let wide =
         Explore.run
           (recording_engine prog wide_tape)
           ~options:(opts (Some (h + 72)))
           ~env c.c_strategy
       in
       check Alcotest.bool (msg "parallel resume: reached the horizon") true
         (resumed_par.Sresult.executions >= h);
       check Alcotest.bool (msg "parallel resume: bounded overshoot") true
         (resumed_par.Sresult.executions <= h + 8);
       check Alcotest.bool
         (msg "parallel resume: every walk ran at most once") true
         (multiset_le
            (List.sort compare (!kill_tape @ !t_par))
            (sorted wide_tape));
       check Alcotest.bool (msg "parallel resume: no bug outside the space")
         true
         (subset (bug_keys resumed_par) (bug_keys wide));
       check Alcotest.bool (msg "parallel resume: progressed past the kill")
         true
         (resumed_par.Sresult.distinct_states
         >= killed.Sresult.distinct_states));
  Sys.remove path

let kill_resume_tests =
  List.map
    (fun c ->
      Alcotest.test_case
        (Printf.sprintf "kill/resume round-trips (%s)" c.c_name)
        `Quick (kill_resume_case c))
    cases

(* --- v2 checkpoint read-compat ------------------------------------------- *)

(* Committed fixtures written by the pre-v3 checkpoint code (see
   test/fixtures/): an ICB run and a random walk over the peterson bug
   model, both interrupted mid-search.  `dune runtest` runs in the test
   directory (the fixtures are declared deps); `dune exec` from the
   project root needs the test/ prefix. *)
let fixture name =
  let candidates =
    [ Filename.concat "fixtures" name;
      Filename.concat (Filename.concat "test" "fixtures") name ]
  in
  try List.find Sys.file_exists candidates
  with Not_found -> List.hd candidates

let v2_compat_tests =
  [
    Alcotest.test_case "a v2 ICB checkpoint resumes to the full result"
      `Quick (fun () ->
        let prog =
          Icb_models.Peterson.program Icb_models.Peterson.Bug_check_before_set
        in
        let fresh =
          Icb.run
            ~strategy:(Explore.Icb { max_bound = Some 4; cache = false })
            prog
        in
        let resume domains =
          Icb.resume ~domains prog (Checkpoint.load (fixture "v2-icb.ckpt"))
        in
        List.iter
          (fun domains ->
            let r = resume domains in
            check Alcotest.string "same strategy" fresh.Sresult.strategy
              r.Sresult.strategy;
            check Alcotest.bool "same completion" fresh.Sresult.complete
              r.Sresult.complete;
            check (Alcotest.list Alcotest.string) "same bug set"
              (bug_keys fresh) (bug_keys r);
            check Alcotest.int "same states" fresh.Sresult.distinct_states
              r.Sresult.distinct_states)
          [ 1; 2 ])
    ;
    Alcotest.test_case "a v2 random-walk checkpoint resumes its walk index"
      `Quick (fun () ->
        (* v2 random-walk frontiers carry no walk index: the strategy
           re-positions itself off the restored execution counter (25
           executions in the fixture) and continues from walk 25 *)
        let prog =
          Icb_models.Peterson.program Icb_models.Peterson.Bug_check_before_set
        in
        let r =
          Icb.resume ~options:(opts (Some 60)) prog
            (Checkpoint.load (fixture "v2-random.ckpt"))
        in
        check Alcotest.string "random strategy" "random" r.Sresult.strategy;
        check Alcotest.int "continues to the execution limit" 60
          r.Sresult.executions;
        check Alcotest.bool "interrupted, not complete" false
          r.Sresult.complete;
        check Alcotest.bool "execution-limit stop reason" true
          (r.Sresult.stop_reason = Some Sresult.Execution_limit);
        check Alcotest.bool "made progress past the fixture" true
          (r.Sresult.distinct_states > 0))
    ;
  ]

(* --- v3 string-param round-trip ------------------------------------------- *)

(* A committed v3 checkpoint of a vb:2 run killed mid-search (3 of 6
   executions on the peterson bug model, written by the CLI — which
   defaults the state cache on).  Exercises the sealed-space bounds'
   string params: the ranked variable keys are restored from the
   checkpoint, so resuming needs no Strategy.env. *)
let v3_fixture_tests =
  [
    Alcotest.test_case "a v3 vb checkpoint carries and round-trips its params"
      `Quick (fun () ->
        let ck = Checkpoint.load (fixture "v3-vb.ckpt") in
        check Alcotest.string "strategy name" "vb:2" ck.Checkpoint.strategy;
        let v3 = Checkpoint.to_v3 ck in
        check Alcotest.string "v3 tag" "vb" v3.Checkpoint.v3_tag;
        let param k = List.assoc_opt k v3.Checkpoint.v3_params in
        check (Alcotest.option Alcotest.string) "n param" (Some "2")
          (param "n");
        check Alcotest.bool "vars param present (ranked keys travel)" true
          (match param "vars" with Some v -> v <> "" | None -> false);
        check Alcotest.bool "sealed param present" true (param "sealed" <> None);
        (* save/load preserves every v3 field bit-for-bit (modulo the
           nondeterministic timing params, which save re-stamps) *)
        let path = tmp_ckpt () in
        Checkpoint.save ~path ck;
        let ck' = Checkpoint.load path in
        Sys.remove path;
        let v3' = Checkpoint.to_v3 ck' in
        let strip ps =
          List.filter
            (fun (k, _) ->
              k <> Checkpoint.elapsed_key && k <> Checkpoint.bound_times_key)
            ps
        in
        check
          (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
          "params survive the round-trip"
          (strip v3.Checkpoint.v3_params)
          (strip v3'.Checkpoint.v3_params);
        check Alcotest.int "round survives" v3.Checkpoint.v3_round
          v3'.Checkpoint.v3_round;
        check Alcotest.int "work survives"
          (List.length v3.Checkpoint.v3_work)
          (List.length v3'.Checkpoint.v3_work);
        check Alcotest.int "deferred survives"
          (List.length v3.Checkpoint.v3_next)
          (List.length v3'.Checkpoint.v3_next))
    ;
    Alcotest.test_case "a v3 vb checkpoint resumes to the full result"
      `Quick (fun () ->
        let prog =
          Icb_models.Peterson.program Icb_models.Peterson.Bug_check_before_set
        in
        (* the fixture was written by the CLI, whose parsed vb:2 has the
           state cache on — match it for a comparable fresh run *)
        let fresh =
          Icb.run
            ~strategy:(Explore.Variable_bound { n = 2; cache = true })
            prog
        in
        List.iter
          (fun domains ->
            let r =
              Icb.resume ~domains prog
                (Checkpoint.load (fixture "v3-vb.ckpt"))
            in
            check Alcotest.string "same strategy" fresh.Sresult.strategy
              r.Sresult.strategy;
            check (Alcotest.list Alcotest.string) "same bug set"
              (bug_keys fresh) (bug_keys r);
            check Alcotest.int "same states" fresh.Sresult.distinct_states
              r.Sresult.distinct_states;
            check Alcotest.bool "naturally terminated" true
              (r.Sresult.stop_reason = None))
          [ 1; 2 ])
    ;
  ]

let () =
  Alcotest.run "frontier"
    [
      ("kill-resume", kill_resume_tests);
      ("v2-compat", v2_compat_tests);
      ("v3-fixture", v3_fixture_tests);
    ]
