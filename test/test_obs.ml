(* The telemetry subsystem: JSON and event round-trips, the metrics
   registry, trace summaries matching the collector's own curves,
   serial-vs-parallel telemetry equivalence, and — the load-bearing
   contract — that attaching sinks changes nothing about what the search
   explores, finds or checkpoints. *)

module Obs = Icb_obs
module Json = Icb_obs.Json
module Event = Icb_obs.Event
module Metrics = Icb_obs.Metrics
module Telemetry = Icb_obs.Telemetry
module Trace = Icb_obs.Trace
module Progress = Icb_obs.Progress
module Explore = Icb_search.Explore
module Collector = Icb_search.Collector
module Checkpoint = Icb_search.Checkpoint
module Sresult = Icb_search.Sresult

let check = Alcotest.check

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let tmp ext = Filename.temp_file "icb-obs" ext

let peterson_bug =
  Icb_models.Peterson.program Icb_models.Peterson.Bug_check_before_set

let wsq_bug =
  Icb_models.Workstealing.program Icb_models.Workstealing.Bug_unlocked_steal

(* --- Json ------------------------------------------------------------------ *)

let json_tests =
  [
    Alcotest.test_case "print/parse round-trip" `Quick (fun () ->
        let samples =
          [
            Json.Null;
            Json.Bool true;
            Json.Int (-42);
            Json.Float 1.5;
            Json.String "a \"quoted\"\n\ttab \\ slash";
            Json.List [ Json.Int 1; Json.Null; Json.String "x" ];
            Json.Obj
              [
                ("a", Json.Int 1);
                ("nested", Json.Obj [ ("b", Json.List []) ]);
                ("s", Json.String "");
              ];
          ]
        in
        List.iter
          (fun j ->
            let s = Json.to_string j in
            check Alcotest.string "stable through reparse" s
              (Json.to_string (Json.parse s)))
          samples);
    Alcotest.test_case "malformed input raises Parse_error" `Quick (fun () ->
        List.iter
          (fun s ->
            match Json.parse s with
            | exception Json.Parse_error _ -> ()
            | _ -> Alcotest.failf "parse %S should have failed" s)
          [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "\"unterminated"; "1 2" ]);
    Alcotest.test_case "malformed \\u escapes raise Parse_error" `Quick
      (fun () ->
        List.iter
          (fun s ->
            match Json.parse s with
            | exception Json.Parse_error _ -> ()
            | _ -> Alcotest.failf "parse %S should have failed" s)
          (* int_of_string-style leniency (underscores, signs) is not JSON *)
          [ {|"\u00_1"|}; {|"\u+123"|}; {|"\u12g4"|}; {|"\u12|} ]);
    Alcotest.test_case "surrogate pairs decode to one UTF-8 scalar" `Quick
      (fun () ->
        let str s =
          match Json.parse s with
          | Json.String v -> v
          | _ -> Alcotest.failf "parse %S: expected a string" s
        in
        check Alcotest.string "U+1F600" "\xF0\x9F\x98\x80"
          (str "\"\\ud83d\\ude00\"");
        check Alcotest.string "U+10000" "\xF0\x90\x80\x80"
          (str "\"\\ud800\\udc00\"");
        (* unpaired surrogates decode best-effort rather than failing *)
        check Alcotest.string "lone high surrogate" "\xED\xA0\xBD!"
          (str {|"\ud83d!"|});
        check Alcotest.string "high + non-surrogate escape" "\xED\xA0\xBDA"
          (str {|"\ud83dA"|}));
    (let byte =
       QCheck.Gen.(
         frequency
           [
             (2, map Char.chr (int_range 0x00 0x1F));
             (4, printable);
             (3, map Char.chr (int_range 0x80 0xFF));
             (1, oneofl [ '"'; '\\'; '/'; '\x7f'; '\xc3'; '\xf0'; '\x9f' ]);
           ])
     in
     let arb =
       QCheck.make
         ~print:(fun s -> Printf.sprintf "%S" s)
         QCheck.Gen.(string_size ~gen:byte (int_bound 48))
     in
     QCheck_alcotest.to_alcotest
       (QCheck.Test.make ~count:2000
          ~name:"arbitrary byte strings survive print/parse" arb (fun s ->
            Json.parse (Json.to_string (Json.String s)) = Json.String s)));
    Alcotest.test_case "accessors" `Quick (fun () ->
        let j = Json.parse {|{"i":3,"f":2.5,"s":"x","b":false,"n":null}|} in
        check (Alcotest.option Alcotest.int) "int" (Some 3)
          (Option.bind (Json.find j "i") Json.to_int);
        check
          (Alcotest.option (Alcotest.float 0.0))
          "float" (Some 2.5)
          (Option.bind (Json.find j "f") Json.to_float);
        check (Alcotest.option Alcotest.string) "str" (Some "x")
          (Option.bind (Json.find j "s") Json.to_str);
        check (Alcotest.option Alcotest.bool) "bool" (Some false)
          (Option.bind (Json.find j "b") Json.to_bool);
        check (Alcotest.option Alcotest.int) "missing" None
          (Option.bind (Json.find j "zz") Json.to_int));
  ]

(* --- events ---------------------------------------------------------------- *)

let all_events : Event.t list =
  [
    Event.Run_started { strategy = "icb:3"; domains = 4; resumed = true };
    Event.Bound_started { bound = 2; items = 37 };
    Event.Item_started { prefix = 5; payload = -1 };
    Event.Item_finished { seconds = 0.125; executions = 3; steps = 41 };
    Event.Execution_done
      {
        bound = Some 2;
        steps = 17;
        preemptions = 2;
        status = "terminated";
        executions = 123;
      };
    Event.Execution_done
      {
        bound = None;
        steps = 9;
        preemptions = 0;
        status = "deadlock";
        executions = 1;
      };
    Event.Bug_found { key = "assert:x"; preemptions = 1; execution = 7 };
    Event.Checkpoint_written { path = "/tmp/c.ckpt"; executions = 500 };
    Event.Worker_stats { stats_for = 3; executions = 11; steps = 200; bugs = 1 };
    Event.Run_finished
      {
        executions = 1678;
        states = 1269;
        bugs = 0;
        complete = false;
        stop_reason = Some "execution limit reached";
      };
    Event.Run_finished
      {
        executions = 1;
        states = 1;
        bugs = 1;
        complete = true;
        stop_reason = None;
      };
    Event.Minimize_started { key = "assert:x"; length = 212; preemptions = 9 };
    Event.Minimize_improved
      { phase = "ddmin"; candidates = 14; length = 40; preemptions = 2 };
    Event.Minimize_finished
      {
        key = "assert:x";
        candidates = 192;
        length = 23;
        preemptions = 1;
        proven = true;
      };
  ]

let event_tests =
  [
    Alcotest.test_case "every event JSON round-trips" `Quick (fun () ->
        List.iteri
          (fun i ev ->
            let env = { Event.ts = float_of_int i *. 0.5; worker = i; ev } in
            let line = Json.to_string (Event.to_json env) in
            match Event.of_json (Json.parse line) with
            | Ok env' ->
              if env <> env' then
                Alcotest.failf "event %d changed through JSON: %s" i line
            | Error msg -> Alcotest.failf "event %d rejected: %s" i msg)
          all_events);
    Alcotest.test_case "unknown event kind is rejected" `Quick (fun () ->
        match
          Event.of_json (Json.parse {|{"ts":0.0,"worker":0,"ev":"nope"}|})
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected an error");
  ]

(* --- metrics --------------------------------------------------------------- *)

let metrics_tests =
  [
    Alcotest.test_case "counters, gauges and rendering" `Quick (fun () ->
        let m = Metrics.create () in
        let c = Metrics.counter m ~help:"execs" "t_executions_total" in
        let g = Metrics.gauge m ~help:"bound" "t_current_bound" in
        Metrics.inc c 3.0;
        Metrics.inc c 2.0;
        Metrics.set g 7.0;
        check (Alcotest.option (Alcotest.float 0.0)) "counter" (Some 5.0)
          (Metrics.find m "t_executions_total");
        check (Alcotest.option (Alcotest.float 0.0)) "gauge" (Some 7.0)
          (Metrics.find m "t_current_bound");
        let text = Metrics.to_prometheus m in
        List.iter
          (fun needle ->
            if
              not
                (contains ~needle text)
            then Alcotest.failf "missing %S in:\n%s" needle text)
          [
            "# TYPE t_executions_total counter";
            "t_executions_total 5";
            "# TYPE t_current_bound gauge";
            "t_current_bound 7";
          ];
        (* the JSON snapshot parses back *)
        ignore (Json.parse (Json.to_string (Metrics.to_json m))));
    Alcotest.test_case "histogram buckets are cumulative" `Quick (fun () ->
        let m = Metrics.create () in
        let h =
          Metrics.histogram m ~help:"steps" ~buckets:[ 1.0; 10.0 ] "t_steps"
        in
        List.iter (Metrics.observe h) [ 0.5; 5.0; 50.0 ];
        check Alcotest.int "count" 3 (Metrics.histogram_count h);
        check (Alcotest.float 1e-9) "sum" 55.5 (Metrics.histogram_sum h);
        let text = Metrics.to_prometheus m in
        List.iter
          (fun needle ->
            if
              not
                (contains ~needle text)
            then Alcotest.failf "missing %S in:\n%s" needle text)
          [
            {|t_steps_bucket{le="1"} 1|};
            {|t_steps_bucket{le="10"} 2|};
            {|t_steps_bucket{le="+Inf"} 3|};
            "t_steps_count 3";
          ]);
    Alcotest.test_case "duplicate names are rejected" `Quick (fun () ->
        let m = Metrics.create () in
        ignore (Metrics.counter m ~help:"" "dup");
        match Metrics.counter m ~help:"" "dup" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
  ]

(* --- trace round-trip against the collector's own numbers ------------------ *)

let run_traced ?(domains = 1) ?max_bound ?options prog =
  let path = tmp ".jsonl" in
  let tel = Telemetry.create () in
  Telemetry.add_trace tel path;
  let r =
    if domains = 1 then
      Icb.run ?options ~telemetry:tel
        ~strategy:(Explore.Icb { max_bound; cache = false })
        prog
    else Icb.run_parallel ?options ?max_bound ~telemetry:tel ~domains prog
  in
  Telemetry.close tel;
  let events = Trace.read path in
  Sys.remove path;
  (r, events)

let trace_tests =
  [
    Alcotest.test_case "per-bound counts equal Sresult.bound_executions"
      `Quick (fun () ->
        let r, events = run_traced ~max_bound:3 peterson_bug in
        let s = Trace.summarize events in
        check
          (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
          "cumulative curve"
          (Array.to_list r.Sresult.bound_executions)
          (Trace.bound_executions s);
        check Alcotest.int "executions" r.Sresult.executions s.Trace.executions;
        check (Alcotest.option Alcotest.int) "states"
          (Some r.Sresult.distinct_states) s.Trace.states;
        check Alcotest.int "bugs" (List.length r.Sresult.bugs)
          (List.length s.Trace.bugs);
        check Alcotest.bool "finished" true s.Trace.finished);
    Alcotest.test_case "a 4-domain trace replays the serial curve" `Quick
      (fun () ->
        let r, _ = run_traced ~max_bound:2 wsq_bug in
        let p, events = run_traced ~domains:4 ~max_bound:2 wsq_bug in
        let s = Trace.summarize events in
        check Alcotest.int "same executions" r.Sresult.executions
          p.Sresult.executions;
        check
          (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
          "parallel trace matches the serial collector"
          (Array.to_list r.Sresult.bound_executions)
          (Trace.bound_executions s);
        check Alcotest.bool "several workers seen" true (s.Trace.workers >= 2);
        (* distinct bug keys in the trace = deduplicated result bugs *)
        check
          (Alcotest.list Alcotest.string)
          "bug keys"
          (List.sort compare
             (List.map (fun (b : Sresult.bug) -> b.Sresult.key) p.Sresult.bugs))
          (List.sort compare
             (List.map (fun (b : Trace.bug) -> b.Trace.bg_key) s.Trace.bugs)));
    Alcotest.test_case "serial and 2-domain metrics agree" `Quick (fun () ->
        let totals domains prog =
          let tel = Telemetry.create () in
          Telemetry.track_metrics tel;
          let r =
            if domains = 1 then
              Icb.run ~telemetry:tel
                ~strategy:(Explore.Icb { max_bound = Some 2; cache = false })
                prog
            else Icb.run_parallel ~max_bound:2 ~telemetry:tel ~domains prog
          in
          Telemetry.close tel;
          let m = Telemetry.metrics tel in
          let get k =
            match Metrics.find m k with
            | Some v -> int_of_float v
            | None -> Alcotest.failf "metric %s missing" k
          in
          ( r,
            ( get "icb_executions_total",
              get "icb_bugs_total",
              get "icb_steps_total" ) )
        in
        List.iter
          (fun prog ->
            let r1, m1 = totals 1 prog in
            let r2, m2 = totals 2 prog in
            check
              (Alcotest.triple Alcotest.int Alcotest.int Alcotest.int)
              "merged counters" m1 m2;
            let exec, bugs, steps = m1 in
            check Alcotest.int "counter = result executions"
              r1.Sresult.executions exec;
            check Alcotest.int "counter = result bugs"
              (List.length r1.Sresult.bugs) bugs;
            (* icb_steps_total sums per-item deltas, so the strategy's
               root seeding (one touch outside any item) is not in it *)
            check Alcotest.bool "steps counter within one root of the result"
              true
              (steps <= r1.Sresult.total_steps
              && r1.Sresult.total_steps - steps <= 1);
            check Alcotest.int "parallel result agrees" r1.Sresult.executions
              r2.Sresult.executions)
          [ peterson_bug; wsq_bug ]);
  ]

(* --- neutrality: sinks change nothing -------------------------------------- *)

(* Everything observable about a result, rendered to one string. *)
let render (r : Sresult.t) =
  let bug (b : Sresult.bug) =
    Printf.sprintf "%s@%d p%d cs%d d%d <%s>" b.Sresult.key b.Sresult.execution
      b.Sresult.preemptions b.Sresult.context_switches b.Sresult.depth
      (String.concat "," (List.map string_of_int b.Sresult.schedule))
  in
  Printf.sprintf "%s|execs=%d|states=%d|steps=%d|complete=%b|bexec=%s|bugs=%s"
    r.Sresult.strategy r.Sresult.executions r.Sresult.distinct_states
    r.Sresult.total_steps r.Sresult.complete
    (String.concat ";"
       (List.map
          (fun (b, e) -> Printf.sprintf "%d:%d" b e)
          (Array.to_list r.Sresult.bound_executions)))
    (String.concat ";" (List.map bug r.Sresult.bugs))

let neutral_strategies =
  [
    Explore.Icb { max_bound = Some 3; cache = false };
    Explore.Dfs { cache = true };
    Explore.Random_walk { seed = 2007L };
    Explore.Pct { change_points = 2; seed = 1L };
  ]

(* The timing params are the only nondeterministic bytes in a checkpoint;
   strip exactly those two keys before comparing files
   (checkpoint.mli documents this contract). *)
let normalized_checkpoint path =
  let c = Checkpoint.load path in
  let f = Checkpoint.to_v3 c in
  let v3_params =
    List.filter
      (fun (k, _) ->
        k <> Checkpoint.elapsed_key && k <> Checkpoint.bound_times_key)
      f.Checkpoint.v3_params
  in
  Marshal.to_string
    { c with Checkpoint.frontier = Checkpoint.V3 { f with v3_params } }
    []

let neutrality_tests =
  [
    Alcotest.test_case "tracing leaves every strategy's result unchanged"
      `Quick (fun () ->
        let options =
          {
            Collector.default_options with
            max_executions = Some 400;
            deadlock_is_error = true;
          }
        in
        List.iter
          (fun strategy ->
            let bare = Icb.run ~options ~strategy peterson_bug in
            let path = tmp ".jsonl" in
            let tel = Telemetry.create () in
            Telemetry.add_trace tel path;
            Telemetry.track_metrics tel;
            let traced =
              Icb.run ~options ~telemetry:tel ~strategy peterson_bug
            in
            Telemetry.close tel;
            Sys.remove path;
            check Alcotest.string
              (Explore.strategy_name strategy ^ " unchanged") (render bare)
              (render traced))
          neutral_strategies);
    Alcotest.test_case "tracing leaves checkpoint bytes unchanged" `Quick
      (fun () ->
        let run telemetry path =
          let options =
            { Collector.default_options with max_executions = Some 150 }
          in
          ignore
            (Icb.run ~options ?telemetry ~checkpoint_out:path
               ~checkpoint_every:50
               ~strategy:(Explore.Icb { max_bound = Some 3; cache = false })
               wsq_bug)
        in
        let p_bare = tmp ".ckpt" and p_traced = tmp ".ckpt" in
        run None p_bare;
        let trace = tmp ".jsonl" in
        let tel = Telemetry.create () in
        Telemetry.add_trace tel trace;
        run (Some tel) p_traced;
        Telemetry.close tel;
        let same =
          normalized_checkpoint p_bare = normalized_checkpoint p_traced
        in
        Sys.remove p_bare;
        Sys.remove p_traced;
        Sys.remove trace;
        check Alcotest.bool "identical after normalizing timing params" true
          same);
  ]

(* --- cumulative wall-clock timing in checkpoints --------------------------- *)

let timing_tests =
  [
    Alcotest.test_case "checkpoints carry cumulative elapsed time" `Quick
      (fun () ->
        let path = tmp ".ckpt" in
        let options =
          { Collector.default_options with max_executions = Some 100 }
        in
        ignore
          (Icb.run ~options ~checkpoint_out:path ~checkpoint_every:10_000
             ~strategy:(Explore.Icb { max_bound = Some 3; cache = false })
             wsq_bug);
        let c1 = Checkpoint.load path in
        let e1 =
          match Checkpoint.elapsed c1 with
          | Some e -> e
          | None -> Alcotest.fail "no elapsed_s param in the checkpoint"
        in
        check Alcotest.bool "elapsed is sane" true (e1 >= 0.0 && e1 < 60.0);
        check Alcotest.bool "describe mentions the time" true
          (contains ~needle:"explored" (Checkpoint.describe c1));
        (* resuming accumulates: the second leg's stamp includes the first *)
        let options =
          { Collector.default_options with max_executions = Some 200 }
        in
        ignore
          (Icb.resume ~options ~checkpoint_out:path ~checkpoint_every:10_000
             wsq_bug c1);
        let c2 = Checkpoint.load path in
        (match Checkpoint.elapsed c2 with
        | Some e2 ->
          check Alcotest.bool "cumulative across resume" true (e2 >= e1)
        | None -> Alcotest.fail "resumed checkpoint lost elapsed_s");
        (* per-bound times decode and stay non-negative *)
        List.iter
          (fun (b, s) ->
            check Alcotest.bool
              (Printf.sprintf "bound %d time sane" b)
              true
              (s >= 0.0 && s < 60.0))
          (Checkpoint.bound_times c2);
        Sys.remove path);
    Alcotest.test_case "bound-times encoding round-trips" `Quick (fun () ->
        let bt = [ (0, 0.001); (1, 1.25); (3, 12.125) ] in
        check
          (Alcotest.list (Alcotest.pair Alcotest.int (Alcotest.float 1e-9)))
          "decode . encode = id" bt
          (Checkpoint.decode_bound_times (Checkpoint.encode_bound_times bt));
        check
          (Alcotest.list (Alcotest.pair Alcotest.int (Alcotest.float 0.0)))
          "empty" []
          (Checkpoint.decode_bound_times ""));
  ]

(* --- the progress line ------------------------------------------------------ *)

let progress_tests =
  [
    Alcotest.test_case "line renders every field" `Quick (fun () ->
        let s =
          {
            Progress.executions = 1234;
            states = 89;
            bugs = 1;
            elapsed = 12.3;
            bound = Some 2;
            frontier = Some 37;
            eta = Some 34.0;
          }
        in
        let line = Progress.line s in
        List.iter
          (fun needle ->
            if
              not
                (contains ~needle line)
            then Alcotest.failf "missing %S in %S" needle line)
          [ "bound 2"; "37 items"; "1234 execs"; "1 bug"; "left" ]);
    Alcotest.test_case "finish prints even inside one interval" `Quick
      (fun () ->
        let buf = Buffer.create 64 in
        let ppf = Format.formatter_of_buffer buf in
        let p = Progress.create ~ppf ~interval:3600.0 () in
        let s =
          {
            Progress.executions = 10;
            states = 5;
            bugs = 0;
            elapsed = 0.01;
            bound = None;
            frontier = None;
            eta = None;
          }
        in
        (* throttled: the very first report prints, an immediate second
           one does not *)
        Progress.report p s;
        Progress.report p { s with Progress.executions = 11 };
        Progress.finish p { s with Progress.executions = 12 };
        Format.pp_print_flush ppf ();
        let out = Buffer.contents buf in
        let count_lines =
          List.length
            (List.filter (fun l -> l <> "") (String.split_on_char '\n' out))
        in
        check Alcotest.int "one report + one final line" 2 count_lines;
        check Alcotest.bool "final line marked" true
          (contains ~needle:"done:" out));
  ]

let () =
  Alcotest.run "obs"
    [
      ("json", json_tests);
      ("events", event_tests);
      ("metrics", metrics_tests);
      ("trace", trace_tests);
      ("neutrality", neutrality_tests);
      ("timing", timing_tests);
      ("progress", progress_tests);
    ]
