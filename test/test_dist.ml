(* The distributed coordinator/worker pair: exact equivalence with the
   serial search for every shardable strategy, lease re-issue after a
   worker dies mid-batch, stale-report rejection, coordinator
   interrupt/resume through its checkpoint, and the HTTP observability
   endpoints — all over real loopback sockets. *)

module Explore = Icb_search.Explore
module Collector = Icb_search.Collector
module Checkpoint = Icb_search.Checkpoint
module Sresult = Icb_search.Sresult
module Strategy = Icb_search.Strategy
module Coord = Icb_dist.Coord
module Worker = Icb_dist.Worker
module Proto = Icb_dist.Proto
module Json = Icb_obs.Json
module Telemetry = Icb_obs.Telemetry
module Metrics = Icb_obs.Metrics

let check = Alcotest.check

let prog () =
  Icb_models.Peterson.program Icb_models.Peterson.Bug_check_before_set

let bug_set (r : Sresult.t) =
  List.sort compare
    (List.map
       (fun (b : Sresult.bug) -> (b.Sresult.key, b.Sresult.preemptions))
       r.Sresult.bugs)

let bexec (r : Sresult.t) = Array.to_list r.Sresult.bound_executions

let assert_equivalent what (s : Sresult.t) (d : Sresult.t) =
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    (what ^ ": bug set") (bug_set s) (bug_set d);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    (what ^ ": executions per bound") (bexec s) (bexec d);
  check Alcotest.int (what ^ ": executions") s.Sresult.executions
    d.Sresult.executions;
  check Alcotest.int (what ^ ": states") s.Sresult.distinct_states
    d.Sresult.distinct_states;
  check Alcotest.int (what ^ ": steps") s.Sresult.total_steps
    d.Sresult.total_steps;
  check Alcotest.bool (what ^ ": complete") s.Sresult.complete
    d.Sresult.complete

let serial ?options p strategy = Icb.run ?options ~strategy p

let spawn_worker ~port p =
  Thread.create
    (fun () ->
      ignore
        (Worker.run ~host:"127.0.0.1" ~port
           ~resolve:(fun _ -> Ok (Worker.Packed (Icb.engine p)))
           ()))
    ()

(* Coordinator in this thread, [workers] in-process worker threads over
   loopback.  [keep] leaves the port up (and skips shutdown) so a test
   can poke the HTTP endpoints after the run. *)
let distributed ?(workers = 2) ?(batch_size = 4) ?(lease_timeout = 5.0)
    ?options ?checkpoint_out ?resume_from ?(keep = false) p strategy =
  let coord = Coord.create ~batch_size ~lease_timeout () in
  let port = Coord.port coord in
  let ws = List.init workers (fun _ -> spawn_worker ~port p) in
  match
    Coord.run coord (Icb.engine p) ?options ?checkpoint_out ?resume_from
      ~env:(Strategy.env_of_prog p)
      strategy
  with
  | r ->
    List.iter Thread.join ws;
    if not keep then Coord.shutdown coord;
    (r, coord)
  | exception e ->
    Coord.shutdown coord;
    raise e

let dist_metric coord name =
  let tel = Coord.telemetry coord in
  Telemetry.locked tel (fun () ->
      Option.value (Metrics.find (Telemetry.metrics tel) name) ~default:0.0)

(* --- exact equivalence, registry-driven ----------------------------------- *)

(* Every unbounded shardable strategy must produce identical results
   (bug set, per-bound execution counts, states, steps, completeness)
   distributed over workers vs serially; driving the cases off the
   registry keeps newly added strategies covered.  The registry's
   instances carry [cache = false]: as with the in-process parallel
   driver, per-worker seen-caches prune differently and only the
   uncached search is batch-for-batch exact. *)
let equivalence_case (r : Explore.registered) =
  Alcotest.test_case r.Explore.reg_name `Quick (fun () ->
      let p = prog () in
      let s = serial p r.Explore.reg_strategy in
      let d2, _ = distributed p r.Explore.reg_strategy in
      assert_equivalent "2 workers vs serial" s d2;
      let d1, _ = distributed ~workers:1 p r.Explore.reg_strategy in
      assert_equivalent "1 worker vs serial" s d1)

(* The bounded strategies (random, pct) never exhaust their space, and
   the coordinator enforces limits at batch granularity — so an
   execution cap is a lower bound, not an exact count.  What must hold:
   a single-worker run is deterministic (the one worker drains batches
   in id order, so the stop lands after the same batch every time), and
   the cap actually stops the run. *)
let bounded_case (r : Explore.registered) =
  Alcotest.test_case r.Explore.reg_name `Quick (fun () ->
      let p = prog () in
      let options =
        { Collector.default_options with Collector.max_executions = Some 200 }
      in
      let a, _ = distributed ~workers:1 p r.Explore.reg_strategy ~options in
      let b, _ = distributed ~workers:1 p r.Explore.reg_strategy ~options in
      check Alcotest.bool
        (r.Explore.reg_name ^ ": hit the execution cap")
        true
        (a.Sresult.stop_reason = Some Sresult.Execution_limit
        && a.Sresult.executions >= 200);
      assert_equivalent "single-worker determinism" a b)

let equivalence_tests =
  List.filter_map
    (fun (r : Explore.registered) ->
      if not (r.Explore.reg_shardable && r.Explore.reg_checkpointable) then
        None
      else if r.Explore.reg_bounded then Some (bounded_case r)
      else Some (equivalence_case r))
    (Explore.registry ~seed:11L ())

let transaction_tests =
  [
    Alcotest.test_case "transaction manager: 2 workers vs serial" `Quick
      (fun () ->
        let p =
          Icb_models.Transaction.program Icb_models.Transaction.Bug_stale_entry
        in
        let strategy = Explore.Icb { max_bound = Some 2; cache = false } in
        let s = serial p strategy in
        check Alcotest.bool "the serial run finds the stale-entry bug" true
          (s.Sresult.bugs <> []);
        let d, _ = distributed p strategy in
        assert_equivalent "2 workers vs serial" s d);
  ]

(* --- a raw protocol client, for misbehaving on purpose --------------------- *)

let raw_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  set_binary_mode_in ic true;
  set_binary_mode_out oc true;
  (fd, ic, oc)

let rpc ic oc msg =
  Proto.send oc (Proto.c2s_to_json msg);
  match Proto.recv ic with
  | Ok j -> (
    match Proto.s2c_of_json j with
    | Ok reply -> reply
    | Error m -> Alcotest.failf "undecodable server message: %s" m)
  | Error `Closed -> Alcotest.fail "the coordinator closed the connection"
  | Error (`Malformed m) -> Alcotest.failf "malformed frame: %s" m

let rec wait_for_job ic oc =
  match rpc ic oc Proto.Hello with
  | Proto.Job j -> j
  | Proto.Wait { ms } ->
    Unix.sleepf (float_of_int ms /. 1000.);
    wait_for_job ic oc
  | _ -> Alcotest.fail "expected Job or Wait after Hello"

let rec lease_batch ic oc =
  match rpc ic oc Proto.Request with
  | Proto.Batch b -> b
  | Proto.Wait { ms } ->
    Unix.sleepf (float_of_int ms /. 1000.);
    lease_batch ic oc
  | _ -> Alcotest.fail "expected Batch or Wait after Request"

(* Run the coordinator on a background thread so the test thread can
   play the client side deterministically. *)
let coord_in_background coord p strategy =
  let cell = ref None in
  let th =
    Thread.create
      (fun () ->
        cell :=
          Some
            (Coord.run coord (Icb.engine p)
               ~env:(Strategy.env_of_prog p)
               strategy))
      ()
  in
  fun () ->
    Thread.join th;
    match !cell with
    | Some r -> r
    | None -> Alcotest.fail "the coordinator run raised"

let lease_tests =
  [
    (* A worker killed mid-batch: lease round 0's only batch on a raw
       connection, drop the connection without reporting.  The
       coordinator must void the lease on disconnect, re-issue the
       batch, and the final result must still be exactly serial. *)
    Alcotest.test_case "a killed worker's lease is re-issued" `Quick
      (fun () ->
        let p = prog () in
        let strategy = Explore.Icb { max_bound = Some 3; cache = false } in
        let s = serial p strategy in
        let coord = Coord.create ~batch_size:1 ~lease_timeout:30.0 () in
        let port = Coord.port coord in
        let finish = coord_in_background coord p strategy in
        let fd, ic, oc = raw_connect port in
        let _job = wait_for_job ic oc in
        let b = lease_batch ic oc in
        check Alcotest.int "round 0 starts at batch 0" 0 b.Proto.b_id;
        (* die holding the lease *)
        Unix.close fd;
        let w = spawn_worker ~port p in
        let d = finish () in
        Thread.join w;
        check Alcotest.bool "the re-issue was counted" true
          (dist_metric coord "icb_dist_leases_reissued" >= 1.0);
        Coord.shutdown coord;
        assert_equivalent "after a mid-batch worker kill" s d);
    (* A zombie worker: its lease expires (it never disconnects, just
       stalls), the batch is re-issued, and its late report must be
       answered [Stale] and never double-counted. *)
    Alcotest.test_case "a late report on an expired lease is Stale" `Quick
      (fun () ->
        let p = prog () in
        let strategy = Explore.Icb { max_bound = Some 3; cache = false } in
        let s = serial p strategy in
        let coord = Coord.create ~batch_size:1 ~lease_timeout:0.2 () in
        let port = Coord.port coord in
        let finish = coord_in_background coord p strategy in
        let fd, ic, oc = raw_connect port in
        let _job = wait_for_job ic oc in
        let b = lease_batch ic oc in
        (* stall past the lease timeout; the ticker reclaims the batch *)
        Unix.sleepf 0.6;
        let report =
          {
            Proto.r_params = b.Proto.b_params;
            r_snapshot =
              Collector.snapshot_to_json
                (Collector.snapshot
                   (Collector.create Collector.default_options));
            r_deferred = [];
            r_events = [];
          }
        in
        (match rpc ic oc (Proto.Result { lease = b.Proto.b_lease; report })
         with
        | Proto.Stale -> ()
        | _ -> Alcotest.fail "expected Stale for the expired lease");
        Unix.close fd;
        let w = spawn_worker ~port p in
        let d = finish () in
        Thread.join w;
        check Alcotest.bool "the expiry was counted as a re-issue" true
          (dist_metric coord "icb_dist_leases_reissued" >= 1.0);
        check Alcotest.bool "the stale report was counted" true
          (dist_metric coord "icb_dist_stale_reports" >= 1.0);
        Coord.shutdown coord;
        assert_equivalent "the zombie never double-counts" s d);
  ]

(* --- coordinator interrupt/resume ------------------------------------------ *)

let resume_tests =
  [
    (* The execution cap is the deterministic stand-in for kill -9: the
       checkpoint on disk is exactly what a killed coordinator leaves
       behind (absorbed batches in the collector, unabsorbed ones in the
       work list).  Resuming on a fresh coordinator — new port, new
       workers — must land on the full serial result. *)
    Alcotest.test_case "an interrupted coordinator resumes exactly" `Quick
      (fun () ->
        let p = prog () in
        let strategy = Explore.Icb { max_bound = Some 3; cache = false } in
        let full = serial p strategy in
        let cap = max 1 (full.Sresult.executions / 2) in
        let path = Filename.temp_file "icb-dist" ".ckpt" in
        let killed, _ =
          distributed p strategy ~checkpoint_out:path
            ~options:
              {
                Collector.default_options with
                Collector.max_executions = Some cap;
              }
        in
        check Alcotest.bool "was interrupted" true
          (killed.Sresult.stop_reason = Some Sresult.Execution_limit);
        let resumed, _ =
          distributed p strategy ~resume_from:(Checkpoint.load path)
        in
        Sys.remove path;
        assert_equivalent "kill + distributed resume vs uninterrupted serial"
          full resumed);
    (* The same checkpoint must also resume serially: the distributed
       and serial drivers share one checkpoint format. *)
    Alcotest.test_case "a serial resume reads a distributed checkpoint"
      `Quick (fun () ->
        let p = prog () in
        let strategy = Explore.Icb { max_bound = Some 3; cache = false } in
        let full = serial p strategy in
        let cap = max 1 (full.Sresult.executions / 2) in
        let path = Filename.temp_file "icb-dist" ".ckpt" in
        let killed, _ =
          distributed p strategy ~checkpoint_out:path
            ~options:
              {
                Collector.default_options with
                Collector.max_executions = Some cap;
              }
        in
        check Alcotest.bool "was interrupted" true
          (killed.Sresult.stop_reason <> None);
        let resumed = Icb.resume p (Checkpoint.load path) in
        Sys.remove path;
        assert_equivalent "kill + serial resume vs uninterrupted serial" full
          resumed);
  ]

(* --- HTTP endpoints on the protocol port ----------------------------------- *)

let http_get port path =
  let fd, ic, oc = raw_connect port in
  output_string oc
    (Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\n\r\n" path);
  flush oc;
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Buffer.contents buf

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let http_tests =
  [
    Alcotest.test_case "/metrics and /status share the protocol port" `Quick
      (fun () ->
        let p = prog () in
        let strategy = Explore.Icb { max_bound = Some 3; cache = false } in
        let d, coord = distributed p strategy ~keep:true in
        let port = Coord.port coord in
        let metrics = http_get port "/metrics" in
        let status = http_get port "/status" in
        let missing = http_get port "/nope" in
        check Alcotest.bool "batches were completed" true
          (dist_metric coord "icb_dist_batches_completed" >= 1.0);
        Coord.shutdown coord;
        check Alcotest.bool "200 on /metrics" true
          (contains metrics "HTTP/1.1 200 OK");
        check Alcotest.bool "coordinator metrics in prometheus exposition"
          true
          (contains metrics "icb_dist_batches_completed");
        check Alcotest.bool "search metrics projected too" true
          (contains metrics "icb_executions_total");
        check Alcotest.bool "/status is json with a phase" true
          (contains status "\"phase\"" && contains status "finished");
        check Alcotest.bool "404 on unknown paths" true
          (contains missing "404");
        check Alcotest.bool "the served run still found the bug" true
          (d.Sresult.bugs <> []));
  ]

(* --- wire encoding --------------------------------------------------------- *)

let proto_tests =
  [
    Alcotest.test_case "protocol messages survive a json round trip" `Quick
      (fun () ->
        let c2s =
          [
            Proto.Hello;
            Proto.Request;
            Proto.Result
              {
                lease = 7;
                report =
                  {
                    Proto.r_params =
                      [ ("max_bound", "3"); ("cache", "false") ];
                    r_snapshot = Json.Obj [ ("x", Json.Int 1) ];
                    r_deferred = [ ([ 0; 1; 2 ], 1); ([], 0) ];
                    r_events = [ Json.String "e" ];
                  };
              };
          ]
        in
        List.iter
          (fun m ->
            match
              Proto.c2s_of_json
                (Json.parse (Json.to_string (Proto.c2s_to_json m)))
            with
            | Ok m' -> check Alcotest.bool "c2s round trip" true (m = m')
            | Error e -> Alcotest.fail e)
          c2s;
        let s2c =
          [
            Proto.Job
              {
                Proto.j_meta = [ ("kind", "model"); ("target", "peterson") ];
                j_root_sig = "abc/3/010";
                j_deadlock_is_error = true;
                j_terminal_states_only = false;
                j_cache = true;
                j_worker = 4;
              };
            Proto.Batch
              {
                Proto.b_lease = 9;
                b_id = 2;
                b_tag = "icb";
                b_params = [ ("cache", "false") ];
                b_round = 1;
                b_items = [ ([ 1; 2 ], 0); ([], -1) ];
              };
            Proto.Wait { ms = 50 };
            Proto.Done;
            Proto.Accepted;
            Proto.Stale;
          ]
        in
        List.iter
          (fun m ->
            match
              Proto.s2c_of_json
                (Json.parse (Json.to_string (Proto.s2c_to_json m)))
            with
            | Ok m' -> check Alcotest.bool "s2c round trip" true (m = m')
            | Error e -> Alcotest.fail e)
          s2c);
    Alcotest.test_case "a collector snapshot survives the wire" `Quick
      (fun () ->
        let col = Collector.create Collector.default_options in
        let snap = Collector.snapshot col in
        match Collector.snapshot_of_json (Collector.snapshot_to_json snap) with
        | Error e -> Alcotest.fail e
        | Ok snap' ->
          check Alcotest.int "executions"
            (Collector.snapshot_executions snap)
            (Collector.snapshot_executions snap');
          check Alcotest.int "states"
            (Collector.snapshot_states snap)
            (Collector.snapshot_states snap'));
  ]

let () =
  Alcotest.run "dist"
    [
      ("equivalence", equivalence_tests);
      ("transaction", transaction_tests);
      ("leases", lease_tests);
      ("resume", resume_tests);
      ("http", http_tests);
      ("proto", proto_tests);
    ]
