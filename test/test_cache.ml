(* The prefix-snapshot replay cache (docs/REPLAY_CACHE.md) must be
   invisible: a cached run explores exactly what the stateless run
   explores, for every strategy in the registry, serially and sharded
   across domains, fresh or resumed from a checkpoint of any format
   version.  These suites pin that contract, plus the engine capability
   it rests on — snapshot/restore round-tripping the machine engine's
   states exactly. *)

module Explore = Icb_search.Explore
module Collector = Icb_search.Collector
module Checkpoint = Icb_search.Checkpoint
module Sresult = Icb_search.Sresult
module Engine = Icb_search.Engine
module Replay_cache = Icb_search.Replay_cache

let check = Alcotest.check

let bug_keys (r : Sresult.t) =
  List.sort_uniq String.compare
    (List.map (fun (b : Sresult.bug) -> b.Sresult.key) r.Sresult.bugs)

let fixture name =
  let candidates =
    [ Filename.concat "fixtures" name;
      Filename.concat (Filename.concat "test" "fixtures") name ]
  in
  try List.find Sys.file_exists candidates
  with Not_found -> List.hd candidates

(* --- snapshot/restore round-trips engine state ---------------------------- *)

(* Walk each registry model's engine along a deterministic schedule,
   capturing a snapshot at every step; then restore each snapshot and
   re-run the recorded suffix, checking the replay lands on the same
   terminal signature, depth and schedule as the original walk.  This is
   the exact property the replay cache relies on: a restored snapshot is
   indistinguishable from the state it captured. *)
let snapshot_round_trip prog () =
  let module E = (val Icb.engine prog) in
  let capture =
    match E.snapshot with
    | Some c -> c
    | None ->
      Alcotest.fail "the machine engine must advertise the snapshot capability"
  in
  (* deterministic walk: at depth d, run the (d mod n)-th enabled thread *)
  let snaps = ref [] in
  let choices = ref [] in
  let rec walk st d =
    match E.enabled st with
    | [] -> st
    | en when d >= 60 -> ignore en; st
    | en ->
      let tid = List.nth en (d mod List.length en) in
      snaps := (capture st, List.length !choices) :: !snaps;
      choices := tid :: !choices;
      walk (E.step st tid) (d + 1)
  in
  let final = walk (E.initial ()) 0 in
  let choices = Array.of_list (List.rev !choices) in
  check Alcotest.bool "the walk took at least one step" true
    (Array.length choices > 0);
  List.iter
    (fun (snap, taken) ->
      let st = ref (E.restore snap) in
      for i = taken to Array.length choices - 1 do
        st := E.step !st choices.(i)
      done;
      check Alcotest.int64 "same terminal signature" (E.signature final)
        (E.signature !st);
      check Alcotest.int "same depth" (E.depth final) (E.depth !st);
      check (Alcotest.list Alcotest.int) "same schedule" (E.schedule final)
        (E.schedule !st);
      check (Alcotest.list Alcotest.int) "same enabled set" (E.enabled final)
        (E.enabled !st))
    !snaps

let registry_programs () =
  List.concat_map
    (fun (e : Icb_models.Registry.entry) ->
      let correct =
        match e.Icb_models.Registry.correct_program with
        | Some p -> [ (e.Icb_models.Registry.model_name, p ()) ]
        | None -> []
      in
      let bug =
        match e.Icb_models.Registry.bugs with
        | b :: _ ->
          [ ( e.Icb_models.Registry.model_name ^ ":"
              ^ b.Icb_models.Registry.bug_name,
              b.Icb_models.Registry.bug_program () )
          ]
        | [] -> []
      in
      correct @ bug)
    Icb_models.Registry.all

let snapshot_tests =
  List.map
    (fun (name, prog) ->
      Alcotest.test_case
        (Printf.sprintf "snapshot/restore round-trips (%s)" name)
        `Quick (snapshot_round_trip prog))
    (registry_programs ())
  @ [
      Alcotest.test_case "the stateless CHESS engine opts out" `Quick
        (fun () ->
          let module C = Icb_chess.Chess_engine.Make (struct
            let test () = ()
          end) in
          check Alcotest.bool "no snapshot capability" true
            (Option.is_none C.snapshot));
    ]

(* --- cached vs uncached equivalence across the strategy registry ---------- *)

(* One model rich enough to exercise every strategy (a real bug, several
   context bounds); the cache must not change a single observable.  The
   randomized strategies are deterministic given the registry's fixed
   seed, so even their equality is exact. *)
let equivalence_prog () =
  Icb_models.Peterson.program Icb_models.Peterson.Bug_check_before_set

let equivalence_case (reg : Explore.registered) () =
  let prog = equivalence_prog () in
  let options =
    if reg.Explore.reg_bounded then
      { Collector.default_options with Collector.max_executions = Some 200 }
    else Collector.default_options
  in
  let run ~cache ~domains =
    Icb.run ~options ~domains ~cache ~strategy:reg.Explore.reg_strategy prog
  in
  (* Bounded strategies only terminate via the execution cap, and
     parallel stopping is cooperative (workers finish their current item
     before honouring the flag), so two capped parallel runs — cache or
     no cache — can legitimately differ by a few executions.  Compare
     them serially only; naturally-terminating strategies are compared
     sharded too. *)
  let domains_to_try =
    if reg.Explore.reg_shardable && not reg.Explore.reg_bounded then [ 1; 2 ]
    else [ 1 ]
  in
  List.iter
    (fun domains ->
      let rc = run ~cache:true ~domains in
      let ru = run ~cache:false ~domains in
      let tag = Printf.sprintf "%s, domains=%d" reg.Explore.reg_name domains in
      check (Alcotest.list Alcotest.string)
        (tag ^ ": same bug set") (bug_keys ru) (bug_keys rc);
      check Alcotest.int (tag ^ ": same executions") ru.Sresult.executions
        rc.Sresult.executions;
      check Alcotest.int (tag ^ ": same states") ru.Sresult.distinct_states
        rc.Sresult.distinct_states;
      check Alcotest.int (tag ^ ": same expansion steps")
        ru.Sresult.total_steps rc.Sresult.total_steps;
      check Alcotest.bool (tag ^ ": same completion") ru.Sresult.complete
        rc.Sresult.complete)
    domains_to_try

let equivalence_tests =
  List.map
    (fun (reg : Explore.registered) ->
      Alcotest.test_case
        (Printf.sprintf "cached = uncached (%s)" reg.Explore.reg_name)
        `Quick (equivalence_case reg))
    (Explore.registry ())

(* --- the cache saves work without changing it ----------------------------- *)

let stats_tests =
  [
    Alcotest.test_case "a cached ICB run reports replay work saved" `Quick
      (fun () ->
        let prog = equivalence_prog () in
        let stats = ref (Replay_cache.zero ()) in
        let r =
          Icb.run ~cache:true
            ~on_cache_stats:(fun s -> stats := s)
            ~strategy:(Explore.Icb { max_bound = Some 3; cache = false })
            prog
        in
        check Alcotest.bool "explored something" true (r.Sresult.executions > 0);
        check Alcotest.bool "saved replay steps" true
          (!stats.Replay_cache.steps_saved > 0));
    Alcotest.test_case "an uncached run replays every prefix step" `Quick
      (fun () ->
        let prog = equivalence_prog () in
        let stats = ref (Replay_cache.zero ()) in
        ignore
          (Icb.run ~cache:false
             ~on_cache_stats:(fun s -> stats := s)
             ~strategy:(Explore.Icb { max_bound = Some 3; cache = false })
             prog);
        check Alcotest.int "no snapshot hits" 0 !stats.Replay_cache.hits;
        check Alcotest.bool "replayed prefixes from the root" true
          (!stats.Replay_cache.steps_replayed > 0));
  ]

(* --- checkpoints are identical modulo timing ------------------------------ *)

(* A cached run interrupted mid-search must checkpoint the very same
   frontier as the stateless run interrupted at the same point: the
   snapshot slot never serializes, and the timing params are the only
   permitted difference. *)
let normalized_params ps =
  List.filter
    (fun (k, _) ->
      k <> Checkpoint.elapsed_key && k <> Checkpoint.bound_times_key)
    ps

let checkpoint_tests =
  [
    Alcotest.test_case
      "cached and uncached runs write the same normalized checkpoint" `Quick
      (fun () ->
        let prog = equivalence_prog () in
        let write cache =
          let path = Filename.temp_file "icb-cache" ".ckpt" in
          let options =
            { Collector.default_options with
              Collector.max_executions = Some 5
            }
          in
          ignore
            (Icb.run ~options ~cache ~checkpoint_out:path
               ~strategy:(Explore.Icb { max_bound = Some 4; cache = false })
               prog);
          let ck = Checkpoint.load path in
          Sys.remove path;
          ck
        in
        let cc = write true and cu = write false in
        let vc = Checkpoint.to_v3 cc and vu = Checkpoint.to_v3 cu in
        check Alcotest.string "same tag" vu.Checkpoint.v3_tag
          vc.Checkpoint.v3_tag;
        check Alcotest.int "same round" vu.Checkpoint.v3_round
          vc.Checkpoint.v3_round;
        let prefixes =
          Alcotest.list (Alcotest.pair (Alcotest.list Alcotest.int) Alcotest.int)
        in
        check prefixes "same pending work" vu.Checkpoint.v3_work
          vc.Checkpoint.v3_work;
        check prefixes "same deferred work" vu.Checkpoint.v3_next
          vc.Checkpoint.v3_next;
        check
          (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
          "same normalized params"
          (normalized_params vu.Checkpoint.v3_params)
          (normalized_params vc.Checkpoint.v3_params))
    ;
  ]

(* --- resuming committed fixtures with caching ----------------------------- *)

(* The committed v2/v3 fixtures were written long before the cache
   existed; resuming them cached must re-explore exactly what the
   stateless resume explores — nothing extra, nothing missing. *)
let resume_case name ?options () =
  let prog = equivalence_prog () in
  let resume cache =
    Icb.resume ?options ~cache prog (Checkpoint.load (fixture name))
  in
  let rc = resume true and ru = resume false in
  check (Alcotest.list Alcotest.string) "same bug set" (bug_keys ru)
    (bug_keys rc);
  check Alcotest.int "same executions" ru.Sresult.executions
    rc.Sresult.executions;
  check Alcotest.int "same states" ru.Sresult.distinct_states
    rc.Sresult.distinct_states;
  check Alcotest.int "same expansion steps" ru.Sresult.total_steps
    rc.Sresult.total_steps;
  check Alcotest.bool "same completion" ru.Sresult.complete
    rc.Sresult.complete

let fixture_tests =
  [
    Alcotest.test_case "resuming the v2 ICB fixture cached explores no more"
      `Quick (resume_case "v2-icb.ckpt");
    Alcotest.test_case
      "resuming the v2 random-walk fixture cached explores no more" `Quick
      (resume_case "v2-random.ckpt"
         ~options:
           { Collector.default_options with
             Collector.max_executions = Some 60
           });
    Alcotest.test_case "resuming the v3 vb fixture cached explores no more"
      `Quick (resume_case "v3-vb.ckpt");
  ]

let () =
  Alcotest.run "cache"
    [
      ("snapshot", snapshot_tests);
      ("equivalence", equivalence_tests);
      ("stats", stats_tests);
      ("checkpoint", checkpoint_tests);
      ("fixtures", fixture_tests);
    ]
