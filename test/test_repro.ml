(* The repro subsystem: schedule minimization, bundle files, triage. *)

module Explore = Icb_search.Explore
module Collector = Icb_search.Collector
module Sresult = Icb_search.Sresult
module Engine = Icb_search.Engine
module Sched = Icb_repro.Sched
module Minimize = Icb_repro.Minimize
module Bundle = Icb_repro.Bundle
module Store = Icb_repro.Store
module Triage = Icb_repro.Triage
module Api = Icb_chess.Api
module CE = Icb_chess.Chess_engine

let check = Alcotest.check

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let ok what = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: %s" what msg

let first_bug_options =
  { Collector.default_options with stop_at_first_bug = true }

(* the minimized witness must stand on its own: replay it on a fresh
   engine and demand the same failure *)
let assert_replays (type s) (module E : Engine.S with type state = s) ~key
    (w : Sched.witness) =
  match
    Sched.probe (module E) ~deadlock_is_error:true ~key ~steps:(ref max_int)
      w.Sched.schedule
  with
  | Some w' ->
    check Alcotest.int "replayed preemptions" w.Sched.preemptions
      w'.Sched.preemptions;
    check Alcotest.int "replayed depth" w.Sched.depth w'.Sched.depth
  | None -> Alcotest.fail "minimized witness does not replay"

(* --- schedule surgery ------------------------------------------------------ *)

let sched_tests =
  [
    Alcotest.test_case "count_switches counts adjacent changes" `Quick
      (fun () ->
        check Alcotest.int "empty" 0 (Sched.count_switches []);
        check Alcotest.int "constant" 0 (Sched.count_switches [ 1; 1; 1 ]);
        check Alcotest.int "alternating" 3 (Sched.count_switches [ 0; 1; 0; 1 ]);
        check Alcotest.int "runs" 2 (Sched.count_switches [ 0; 0; 1; 1; 0 ]));
    Alcotest.test_case "delay-merge pulls the preempted run forward" `Quick
      (fun () ->
        check
          (Alcotest.option (Alcotest.list Alcotest.int))
          "[0;0;1;1;0] without the switch at 2"
          (Some [ 0; 0; 0; 1; 1 ])
          (Sched.remove_preemption [ 0; 0; 1; 1; 0 ] ~at:2);
        check
          (Alcotest.option (Alcotest.list Alcotest.int))
          "middle removal keeps the later runs"
          (Some [ 0; 0; 1; 2; 1 ])
          (Sched.remove_preemption [ 0; 1; 0; 2; 1 ] ~at:1));
    Alcotest.test_case "delay-merge refuses impossible removals" `Quick
      (fun () ->
        check
          (Alcotest.option (Alcotest.list Alcotest.int))
          "preempted thread never runs again" None
          (Sched.remove_preemption [ 0; 1; 1 ] ~at:1);
        check
          (Alcotest.option (Alcotest.list Alcotest.int))
          "index inside a run" None
          (Sched.remove_preemption [ 0; 0; 1 ] ~at:1));
    Alcotest.test_case "probe truncates trailing steps; replay_prefix returns \
                        them" `Quick (fun () ->
        let prog = Icb_models.Bluetooth.program ~bug:true in
        let bug =
          match Icb.check prog with
          | Some b -> b
          | None -> Alcotest.fail "expected the bluetooth bug"
        in
        let module E = (val Icb.engine prog) in
        let padded = bug.Sresult.schedule @ [ 9; 9; 9 ] in
        (match
           Sched.probe (module E) ~deadlock_is_error:true ~key:bug.key
             ~steps:(ref max_int) padded
         with
        | Some w ->
          check Alcotest.int "witness stops at the bug"
            (List.length bug.schedule)
            w.Sched.depth
        | None -> Alcotest.fail "padded schedule should still reproduce");
        let final, rest = Explore.replay_prefix (module E) padded in
        check
          (Alcotest.list Alcotest.int)
          "unconsumed suffix" [ 9; 9; 9 ] rest;
        match E.status final with
        | Engine.Failed { key; _ } ->
          check Alcotest.string "same failure" bug.key key
        | _ -> Alcotest.fail "replay_prefix did not stop at the failure");
  ]

(* --- minimization ---------------------------------------------------------- *)

(* Enumerate every execution of a (small) buggy model and return the
   buggy schedules with the fewest and the most preemptions — the worst
   one is a real, replayable, deliberately preemption-padded witness. *)
let extremes (type s) (module E : Engine.S with type state = s) =
  let key = ref None in
  let best = ref None and worst = ref None in
  let rec dfs st =
    match E.status st with
    | Engine.Running -> List.iter (fun t -> dfs (E.step st t)) (E.enabled st)
    | Engine.Failed { key = k; _ } ->
      if !key = None then key := Some k;
      if !key = Some k then begin
        let c = E.preemptions st and sched = E.schedule st in
        (match !best with
        | Some (c0, _) when c0 <= c -> ()
        | _ -> best := Some (c, sched));
        match !worst with
        | Some (c0, _) when c0 >= c -> ()
        | _ -> worst := Some (c, sched)
      end
    | Engine.Terminated | Engine.Deadlock _ -> ()
  in
  dfs (E.initial ());
  match (!key, !best, !worst) with
  | Some key, Some best, Some worst -> (key, best, worst)
  | _ -> Alcotest.fail "expected a buggy execution"

let minimize_tests =
  [
    Alcotest.test_case "a preemption-padded witness shrinks to the proven \
                        minimum" `Quick (fun () ->
        let prog = Icb_models.Bluetooth.program ~bug:true in
        let module E = (val Icb.engine prog) in
        let key, (min_c, _), (max_c, worst) = extremes (module E) in
        check Alcotest.bool
          (Printf.sprintf "the space has padded witnesses (%d > %d)" max_c
             min_c)
          true (max_c > min_c);
        (* pad the tail too: minimization must strip both *)
        let s =
          ok "minimize"
            (Minimize.run (module E) ~key (worst @ [ 0; 0; 0 ]))
        in
        check Alcotest.int "original is the truncated input"
          (List.length worst) s.Minimize.original.Sched.depth;
        check Alcotest.int "reached the true minimum" min_c
          s.Minimize.minimized.Sched.preemptions;
        check Alcotest.bool "minimality proven" true s.Minimize.proven_minimal;
        check Alcotest.bool "candidates were replayed" true
          (s.Minimize.candidates > 1);
        assert_replays (module E) ~key s.Minimize.minimized);
    Alcotest.test_case "canonicalization: different witnesses converge" `Quick
      (fun () ->
        let prog = Icb_models.Bluetooth.program ~bug:true in
        let module E = (val Icb.engine prog) in
        let key, (_, best), (_, worst) = extremes (module E) in
        let a = ok "minimize best" (Minimize.run (module E) ~key best) in
        let b = ok "minimize worst" (Minimize.run (module E) ~key worst) in
        check
          (Alcotest.list Alcotest.int)
          "same canonical schedule" a.Minimize.minimized.Sched.schedule
          b.Minimize.minimized.Sched.schedule);
    Alcotest.test_case "a schedule that does not reproduce is rejected" `Quick
      (fun () ->
        let prog = Icb_models.Bluetooth.program ~bug:true in
        let module E = (val Icb.engine prog) in
        match Minimize.run (module E) ~key:"no-such-bug" [ 0; 0 ] with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected rejection");
    Alcotest.test_case "random-found WSQ bug minimizes below the ICB witness"
      `Slow (fun () ->
        let prog =
          Icb_models.Workstealing.program
            Icb_models.Workstealing.Bug_unlocked_steal
        in
        let rw =
          Icb.run
            ~options:
              { first_bug_options with max_executions = Some 50_000 }
            ~strategy:(Explore.Random_walk { seed = 2007L })
            prog
        in
        let bug =
          match rw.Sresult.bugs with
          | b :: _ -> b
          | [] -> Alcotest.fail "random walk found no bug"
        in
        let module E = (val Icb.engine prog) in
        let s = ok "minimize" (Minimize.bug (module E) bug) in
        let m = s.Minimize.minimized in
        check Alcotest.bool
          (Printf.sprintf "no more preemptions than found (%d <= %d)"
             m.Sched.preemptions bug.preemptions)
          true
          (m.Sched.preemptions <= bug.preemptions);
        check Alcotest.bool "proven minimal" true s.Minimize.proven_minimal;
        (* ICB finds every bug within the minimized bound, including this
           key, and its witness cannot have fewer preemptions than a
           proven-minimal one *)
        let icb =
          Icb.run
            ~strategy:
              (Explore.Icb
                 { max_bound = Some m.Sched.preemptions; cache = false })
            prog
        in
        let same =
          List.find
            (fun (b : Sresult.bug) -> b.key = bug.key)
            icb.Sresult.bugs
        in
        check Alcotest.int "matches the ICB witness bound" same.preemptions
          m.Sched.preemptions;
        assert_replays (module E) ~key:bug.key m);
    Alcotest.test_case "chess engine: a lost update minimizes to one \
                        preemption" `Quick (fun () ->
        let body () =
          let d = Api.Shared.make 0 in
          let finished = Api.Semaphore.create 0 in
          for _ = 1 to 2 do
            Api.spawn (fun () ->
                let v = Api.Shared.get d in
                Api.Shared.set d (v + 1);
                Api.Semaphore.release finished)
          done;
          Api.Semaphore.acquire finished;
          Api.Semaphore.acquire finished;
          if Api.Shared.get d <> 2 then failwith "lost update"
        in
        let module E = (val CE.engine body) in
        let rw =
          Explore.run
            (module E)
            ~options:
              { first_bug_options with max_executions = Some 10_000 }
            (Explore.Random_walk { seed = 5L })
        in
        let bug =
          match rw.Sresult.bugs with
          | b :: _ -> b
          | [] -> Alcotest.fail "random walk found no lost update"
        in
        check Alcotest.bool "found with extra preemptions" true
          (bug.preemptions >= 1);
        let s = ok "minimize" (Minimize.bug (module E) bug) in
        check Alcotest.int "one preemption suffices" 1
          s.Minimize.minimized.Sched.preemptions;
        check Alcotest.bool "proven" true s.Minimize.proven_minimal;
        assert_replays (module E) ~key:bug.key s.Minimize.minimized);
  ]

(* --- telemetry ------------------------------------------------------------- *)

let telemetry_tests =
  [
    Alcotest.test_case "minimization is telemetry-neutral and emits the \
                        trajectory" `Quick (fun () ->
        let prog = Icb_models.Bluetooth.program ~bug:true in
        let module E = (val Icb.engine prog) in
        let key, _, (_, worst) = extremes (module E) in
        let silent = ok "silent" (Minimize.run (module E) ~key worst) in
        let events = ref [] in
        let emit =
          Icb_obs.Emit.live ~worker:0
            ~clock:(fun () -> 0.0)
            ~push:(fun env -> events := env :: !events)
        in
        let traced = ok "traced" (Minimize.run (module E) ~emit ~key worst) in
        check
          (Alcotest.list Alcotest.int)
          "byte-identical minimized schedule"
          silent.Minimize.minimized.Sched.schedule
          traced.Minimize.minimized.Sched.schedule;
        let events = List.rev_map (fun e -> e.Icb_obs.Event.ev) !events in
        let has p = List.exists p events in
        check Alcotest.bool "started event" true
          (has (function
            | Icb_obs.Event.Minimize_started { key = k; _ } -> k = key
            | _ -> false));
        check Alcotest.bool "improvement trajectory" true
          (has (function
            | Icb_obs.Event.Minimize_improved _ -> true
            | _ -> false));
        check Alcotest.bool "finished event agrees with the result" true
          (has (function
            | Icb_obs.Event.Minimize_finished { preemptions; length; _ } ->
              preemptions = traced.Minimize.minimized.Sched.preemptions
              && length = traced.Minimize.minimized.Sched.depth
            | _ -> false)));
  ]

(* --- bundles --------------------------------------------------------------- *)

let sample_bundle () =
  {
    Bundle.kind = "model";
    target = "bluetooth:bug";
    strategy = "random";
    seed = 2007L;
    bug_key = "assert:stopped";
    bug_msg = "assertion failed";
    schedule = [ 0; 0; 1; 2; 1 ];
    preemptions = 1;
    context_switches = 3;
    depth = 5;
    found_schedule = [ 0; 0; 1; 2; 1; 1 ];
    found_preemptions = 3;
    found_depth = 6;
    minimized = true;
    proven_minimal = true;
    deadlocks_are_errors = true;
    fingerprint = "assert:stopped@deadbeefdeadbeef";
    meta = [ ("granularity", "sync") ];
  }

let bundle_tests =
  [
    Alcotest.test_case "save/load round-trips" `Quick (fun () ->
        let dir = temp_dir "bundle" in
        let path = Filename.concat dir "x.repro" in
        let t = sample_bundle () in
        Bundle.save ~path t;
        let t' = Bundle.load path in
        check Alcotest.bool "equal" true (t = t'));
    Alcotest.test_case "corruption and truncation are rejected" `Quick
      (fun () ->
        let dir = temp_dir "bundle" in
        let path = Filename.concat dir "x.repro" in
        Bundle.save ~path (sample_bundle ());
        let bytes =
          let ic = open_in_bin path in
          let s = really_input_string ic (in_channel_length ic) in
          close_in ic;
          s
        in
        let write s =
          let oc = open_out_bin path in
          output_string oc s;
          close_out oc
        in
        let expect_corrupt what =
          match Bundle.load path with
          | exception Bundle.Corrupt _ -> ()
          | _ -> Alcotest.failf "%s accepted" what
        in
        (* flip one payload byte *)
        let flipped = Bytes.of_string bytes in
        Bytes.set flipped 40
          (Char.chr (Char.code (Bytes.get flipped 40) lxor 0xff));
        write (Bytes.to_string flipped);
        expect_corrupt "bit-rotted bundle";
        (* truncate *)
        write (String.sub bytes 0 (String.length bytes - 5));
        expect_corrupt "truncated bundle";
        (* wrong magic *)
        write ("XXXXXXXX" ^ String.sub bytes 8 (String.length bytes - 8));
        expect_corrupt "foreign file");
    Alcotest.test_case "verify replays and cross-checks the measurements"
      `Quick (fun () ->
        let prog = Icb_models.Bluetooth.program ~bug:true in
        let bug =
          match Icb.check prog with
          | Some b -> b
          | None -> Alcotest.fail "expected the bluetooth bug"
        in
        let module E = (val Icb.engine prog) in
        let t =
          {
            (sample_bundle ()) with
            Bundle.bug_key = bug.Sresult.key;
            schedule = bug.schedule;
            preemptions = bug.preemptions;
            context_switches = bug.context_switches;
            depth = bug.depth;
          }
        in
        (match Bundle.verify (module E) t with
        | Ok w ->
          check Alcotest.int "verified preemptions" bug.preemptions
            w.Sched.preemptions
        | Error msg -> Alcotest.failf "verify rejected a good bundle: %s" msg);
        (match
           Bundle.verify (module E)
             { t with Bundle.preemptions = t.Bundle.preemptions + 1 }
         with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "tampered stats accepted");
        match Bundle.verify (module E) { t with Bundle.bug_key = "other" } with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "wrong key accepted");
  ]

(* --- store + triage -------------------------------------------------------- *)

let triage_tests =
  [
    Alcotest.test_case "drop writes one bundle per bug and dedups" `Quick
      (fun () ->
        let prog = Icb_models.Bluetooth.program ~bug:true in
        let bug =
          match Icb.check prog with
          | Some b -> b
          | None -> Alcotest.fail "expected the bluetooth bug"
        in
        let module E = (val Icb.engine prog) in
        let dir = temp_dir "store" in
        let drop () =
          Store.drop
            (module E)
            ~dir ~deadlock_is_error:true ~kind:"model" ~target:"bluetooth:bug"
            ~strategy:"icb:3" ~seed:2007L [ bug ]
        in
        (match drop () with
        | Ok [ path ] ->
          check Alcotest.bool "file exists" true (Sys.file_exists path);
          let t = Bundle.load path in
          check Alcotest.string "key" bug.Sresult.key t.Bundle.bug_key;
          check Alcotest.bool "not minimized yet" false t.Bundle.minimized
        | Ok paths ->
          Alcotest.failf "expected one bundle, got %d" (List.length paths)
        | Error msg -> Alcotest.fail msg);
        match drop () with
        | Ok [] -> ()
        | Ok _ -> Alcotest.fail "re-drop should be a no-op"
        | Error msg -> Alcotest.fail msg);
    Alcotest.test_case "the same bug found by two strategies triages into one \
                        cluster" `Slow (fun () ->
        let prog =
          Icb_models.Workstealing.program
            Icb_models.Workstealing.Bug_unlocked_steal
        in
        let module E = (val Icb.engine prog) in
        let icb_bug =
          match
            (Icb.run ~options:first_bug_options
               ~strategy:(Explore.Icb { max_bound = Some 3; cache = false })
               prog)
              .Sresult.bugs
          with
          | b :: _ -> b
          | [] -> Alcotest.fail "icb found no bug"
        in
        let rw_bug =
          let r =
            Icb.run
              ~options:
                {
                  Collector.default_options with
                  max_executions = Some 50_000;
                }
              ~strategy:(Explore.Random_walk { seed = 2007L })
              prog
          in
          match
            List.find_opt
              (fun (b : Sresult.bug) -> b.key = icb_bug.Sresult.key)
              r.Sresult.bugs
          with
          | Some b -> b
          | None -> Alcotest.fail "random walk never hit the icb bug's key"
        in
        let s1 = ok "minimize icb" (Minimize.bug (module E) icb_bug) in
        let s2 = ok "minimize random" (Minimize.bug (module E) rw_bug) in
        let mk strategy (s : Minimize.stats) (bug : Sresult.bug) =
          {
            Bundle.kind = "model";
            target = "work-stealing-queue:bug";
            strategy;
            seed = 2007L;
            bug_key = bug.key;
            bug_msg = bug.msg;
            schedule = s.minimized.Sched.schedule;
            preemptions = s.minimized.Sched.preemptions;
            context_switches = s.minimized.Sched.context_switches;
            depth = s.minimized.Sched.depth;
            found_schedule = bug.schedule;
            found_preemptions = bug.preemptions;
            found_depth = bug.depth;
            minimized = true;
            proven_minimal = s.proven_minimal;
            deadlocks_are_errors = true;
            fingerprint =
              Triage.fingerprint (module E) ~key:bug.key
                s.minimized.Sched.schedule;
            meta = [];
          }
        in
        let dir = temp_dir "triage" in
        let b1 = mk "icb" s1 icb_bug and b2 = mk "random" s2 rw_bug in
        Bundle.save ~path:(Filename.concat dir (Store.bundle_filename b1)) b1;
        Bundle.save ~path:(Filename.concat dir (Store.bundle_filename b2)) b2;
        let r = Triage.scan dir in
        check Alcotest.int "bundles read" 2 r.Triage.total;
        check Alcotest.int "one cluster" 1 (List.length r.Triage.clusters);
        let c = List.hd r.Triage.clusters in
        check Alcotest.int
          "canonical minimization collapsed the fingerprints" 1
          (List.length c.Triage.cl_fingerprints);
        check
          (Alcotest.list Alcotest.string)
          "both strategies" [ "icb"; "random" ] c.Triage.cl_strategies;
        check Alcotest.int "min preemptions"
          s1.Minimize.minimized.Sched.preemptions c.Triage.cl_min_preemptions;
        check Alcotest.bool "new on first sight" true c.Triage.cl_new;
        (* a corrupt file is reported, never aborts the scan *)
        let oc = open_out_bin (Filename.concat dir "junk.repro") in
        output_string oc "not a bundle";
        close_out oc;
        let known = Triage.known_fingerprints (Triage.to_json r) in
        let r2 = Triage.scan ~known dir in
        check Alcotest.int "corrupt file noted" 1 (List.length r2.Triage.corrupt);
        check Alcotest.int "still one cluster" 1 (List.length r2.Triage.clusters);
        check Alcotest.bool "known on second sight" false
          (List.hd r2.Triage.clusters).Triage.cl_new);
  ]

let () =
  Alcotest.run "repro"
    [
      ("sched", sched_tests);
      ("minimize", minimize_tests);
      ("telemetry", telemetry_tests);
      ("bundle", bundle_tests);
      ("triage", triage_tests);
    ]
