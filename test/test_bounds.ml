(* Table-2-grade conformance for the bounding strategies: every one of
   the suite's 16 bugs must be exposed by at least one member of the
   bounding family — raw ICB, variable bounding (vb:N), thread bounding
   (tb:N) or ICB with variable sealing (icb-vb:N) — under a uniform
   execution budget, and ICB itself must expose each bug at exactly the
   preemption bound Table 2 documents.  (The complementary lower-bound
   half — "missed one bound lower" — is test_models' exhaustive check;
   here the bound conformance is the cheap stop-at-first-bug half, so
   the whole suite stays a fast tier-1 gate.) *)

module Registry = Icb_models.Registry
module Explore = Icb_search.Explore
module Collector = Icb_search.Collector
module Sresult = Icb_search.Sresult

let check = Alcotest.check

(* The family under test, in cheapest-first order.  n=1 and n=2 cover
   the "one or two hot variables suffice" claim; tb:2 is the two
   lowest-designated threads (main plus the first child). *)
let family =
  [
    ("vb:1", Explore.Variable_bound { n = 1; cache = false });
    ("vb:2", Explore.Variable_bound { n = 2; cache = false });
    ("tb:2", Explore.Thread_bound { n = 2; cache = false });
    ("icb-vb:2", Explore.Icb_vb { n = 2; max_bound = None; cache = false });
    ("icb", Explore.Icb { max_bound = None; cache = false });
  ]

let budget =
  {
    Collector.default_options with
    Collector.max_executions = Some 20_000;
    stop_at_first_bug = true;
  }

let finders prog =
  List.filter_map
    (fun (name, strategy) ->
      let r = Icb.run ~options:budget ~strategy prog in
      if r.Sresult.bugs <> [] then Some name else None)
    family

let all_bugs =
  List.concat_map
    (fun (e : Registry.entry) ->
      List.map (fun b -> (e.Registry.model_name, b)) e.Registry.bugs)
    Registry.all

(* --- every bug falls to some member of the family ------------------------- *)

let coverage_cases =
  List.map
    (fun (model, (bug : Registry.bug_spec)) ->
      Alcotest.test_case
        (Printf.sprintf "%s/%s found by the bounding family" model
           bug.Registry.bug_name)
        `Quick
        (fun () ->
          let found = finders (bug.Registry.bug_program ()) in
          check Alcotest.bool
            (Printf.sprintf "found by at least one of {%s}"
               (String.concat ", " (List.map fst family)))
            true (found <> [])))
    all_bugs

(* --- ICB exposes each bug at exactly its Table-2 bound -------------------- *)

let bound_cases =
  List.map
    (fun (model, (bug : Registry.bug_spec)) ->
      Alcotest.test_case
        (Printf.sprintf "%s/%s at ICB bound %d" model bug.Registry.bug_name
           bug.Registry.expected_bound)
        `Quick
        (fun () ->
          let prog = bug.Registry.bug_program () in
          match
            Icb.check prog ~max_bound:bug.Registry.expected_bound
          with
          | Some found ->
            check Alcotest.int "minimal preemption count"
              bug.Registry.expected_bound found.Sresult.preemptions
          | None ->
            Alcotest.failf "bug not found within bound %d"
              bug.Registry.expected_bound))
    all_bugs

(* --- suite-level invariants ----------------------------------------------- *)

let suite_cases =
  [
    Alcotest.test_case "the family covers all 16 Table-2 bugs" `Quick
      (fun () -> check Alcotest.int "bug count" 16 (List.length all_bugs));
    Alcotest.test_case "a sealed bound reports Bounded, never a false Complete"
      `Quick (fun () ->
        (* vb:1 on Peterson seals preemption points at every variable
           outside the hottest one, so exhausting its subspace without
           the bug at hand must come back complete=false — coverage
           claims from a bounded search would be unsound *)
        let prog =
          Icb_models.Peterson.program Icb_models.Peterson.Bug_check_before_set
        in
        let r =
          Icb.run
            ~strategy:(Explore.Variable_bound { n = 1; cache = false })
            prog
        in
        check Alcotest.bool "terminates naturally" true
          (r.Sresult.stop_reason = None);
        check Alcotest.bool "not claimed complete" false r.Sresult.complete);
    Alcotest.test_case "icb-vb explores no more than raw ICB per bound" `Quick
      (fun () ->
        (* sealing only ever drops branches: on any model, icb-vb:N run
           to completion performs at most ICB's executions *)
        let prog =
          Icb_models.Workstealing.program
            Icb_models.Workstealing.Bug_unlocked_steal
        in
        let opts =
          {
            Collector.default_options with
            Collector.max_executions = Some 20_000;
          }
        in
        let icb =
          Icb.run ~options:opts
            ~strategy:(Explore.Icb { max_bound = Some 2; cache = false })
            prog
        in
        let vb =
          Icb.run ~options:opts
            ~strategy:(Explore.Icb_vb { n = 2; max_bound = Some 2; cache = false })
            prog
        in
        check Alcotest.bool "icb-vb:2 <= icb executions" true
          (vb.Sresult.executions <= icb.Sresult.executions));
  ]

let () =
  Alcotest.run "bounds"
    [
      ("coverage", coverage_cases);
      ("table2-bound", bound_cases);
      ("suite", suite_cases);
    ]
