(* Command-line interface to the checker.

   icb check FILE            -- iterative context bounding, stop at first bug
   icb resume CHECKPOINT     -- continue an interrupted check
   icb explore FILE          -- run a strategy, print statistics
   icb report TRACE          -- summarize a JSONL trace (per-bound table)
   icb bench [MODEL]         -- serial vs parallel ICB, assert equivalence
   icb compile FILE          -- type-check and dump the compiled program
   icb models                -- list bundled benchmark models
   icb check-model NAME      -- check a bundled model (e.g. "bluetooth:bug")
   icb repro min BUNDLE      -- minimize a repro bundle's witness
   icb repro run BUNDLE      -- replay a bundle and print the bug report
   icb repro verify BUNDLE   -- replay a bundle, check the recorded outcome
   icb triage DIR            -- cluster a directory of repro bundles
   icb serve FILE            -- coordinate a distributed search over TCP
   icb worker HOST:PORT      -- run leased work batches for a coordinator

   check, check-model, resume and explore take --jobs N to shard the
   search across N OCaml domains; every strategy whose frontier shards
   (icb, dfs, db:N, idfs:N, random, pct:N) accepts it (docs/PARALLEL.md).
   The same four commands take --trace/--metrics/--metrics-every to
   stream structured telemetry and --quiet to silence the progress line
   (docs/OBSERVABILITY.md), and --repro-dir DIR to drop one repro bundle
   per deduplicated bug (docs/REPRO.md).  --no-cache disables the
   prefix-snapshot replay cache (docs/REPLAY_CACHE.md) without changing
   what is explored.  serve/worker stretch the same sharded search over
   processes and machines, with the coordinator also answering GET
   /metrics and GET /status on its port (docs/DISTRIBUTED.md).

   Exit codes: 0 ok / no bug, 1 bug found (or triage found new bugs
   against a --known baseline), 2 usage or input error, 3 interrupted
   with a partial result, 4 repro verification failure (a bundle that no
   longer reproduces its recorded bug). *)

open Cmdliner
module Obs = Icb_obs

let load_program path = Icb.compile_file path

(* Bundled models are addressed as "<model>" or "<model>:<variant>"; the
   registry guarantees the names are collision-free. *)
let resolve_model name =
  match List.assoc_opt name (Icb_models.Registry.addressable ()) with
  | Some p -> Ok (p ())
  | None ->
    Error
      (Printf.sprintf "unknown model %S; run `icb models` for the list" name)

(* --- common options --------------------------------------------------------- *)

let bound_arg =
  let doc = "Maximum number of preemptions to explore (default 3)." in
  Arg.(value & opt int 3 & info [ "b"; "bound" ] ~docv:"BOUND" ~doc)

let no_deadlock_arg =
  let doc = "Do not treat deadlocks as bugs." in
  Arg.(value & flag & info [ "no-deadlock" ] ~doc)

let granularity_arg =
  let doc =
    "Scheduling granularity: $(b,sync) (scheduling points at \
     synchronization accesses only, with race checking — the CHESS \
     reduction) or $(b,every) (every shared access — the ZING behaviour)."
  in
  Arg.(
    value
    & opt (enum [ ("sync", `Sync); ("every", `Every) ]) `Sync
    & info [ "granularity" ] ~docv:"MODE" ~doc)

let timeout_arg =
  let doc =
    "Wall-clock budget in seconds.  When it expires the search stops with \
     a partial result (and writes a final checkpoint if $(b,--checkpoint) \
     is set) instead of running unbounded; continue later with $(b,icb \
     resume).  See docs/RESILIENCE.md."
  in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECS" ~doc)

let checkpoint_arg =
  let doc =
    "Write the search frontier and coverage counters to $(docv) (atomic \
     write-rename, versioned format) periodically and whenever the search \
     stops, so an interrupted run can be continued with $(b,icb resume)."
  in
  Arg.(
    value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)

let checkpoint_every_arg =
  let doc = "Executions between periodic checkpoint writes (default 500)." in
  Arg.(
    value
    & opt int Icb_search.Explore.default_checkpoint_every
    & info [ "checkpoint-every" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the search (default 1 = serial).  With $(docv) > \
     1 each round's work queue is sharded across $(docv) OCaml domains \
     with work stealing; the result (bug set, per-round execution \
     counts) is deterministic and identical to a serial run.  Available \
     for every strategy whose frontier shards: $(b,icb), $(b,dfs), \
     $(b,db:N), $(b,idfs:N), $(b,random) and $(b,pct:N); $(b,sleep) and \
     $(b,most-enabled) are serial-only.  See docs/PARALLEL.md."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let seed_arg =
  let doc =
    "Seed for the randomized strategies ($(b,random), $(b,pct:N)); \
     deterministic strategies ignore it.  The default 2007 keeps \
     historical runs reproducible."
  in
  Arg.(value & opt int64 2007L & info [ "seed" ] ~docv:"N" ~doc)

let progress_arg =
  let doc =
    "Print a progress line (current bound, frontier, executions/sec, \
     bugs, ETA) on stderr about once a second, plus a final summary \
     line.  On by default when stderr is a terminal; $(b,--quiet) wins."
  in
  Arg.(value & flag & info [ "progress" ] ~doc)

let quiet_arg =
  let doc =
    "Suppress the stderr progress line and informational hints.  Results, \
     warnings and errors still print."
  in
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc)

let trace_arg =
  let doc =
    "Append-free JSONL event trace of the run: one timestamped, \
     worker-tagged event per line (run/bound/item/execution/bug/\
     checkpoint), written to $(docv) and replayable with $(b,icb \
     report).  See docs/OBSERVABILITY.md."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Periodically write a metrics snapshot (counters, gauges, latency \
     histograms) to $(docv) — Prometheus text format, or JSON when \
     $(docv) ends in $(b,.json) — plus a final snapshot when the run \
     ends.  See $(b,--metrics-every) and docs/OBSERVABILITY.md."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let metrics_every_arg =
  let doc =
    "Seconds between $(b,--metrics) snapshots (default 5; 0 means only \
     the final snapshot)."
  in
  Arg.(value & opt float 5.0 & info [ "metrics-every" ] ~docv:"SECS" ~doc)

let repro_dir_arg =
  let doc =
    "Write one repro bundle per deduplicated bug into $(docv) (created if \
     missing): a versioned, checksummed $(b,.repro) file recording the \
     program, strategy, seed and replayable witness schedule.  Filenames \
     are content-derived, so re-running drops nothing new for \
     already-recorded witnesses.  Minimize with $(b,icb repro min), \
     replay with $(b,icb repro run), cluster with $(b,icb triage).  See \
     docs/REPRO.md."
  in
  Arg.(value & opt (some string) None & info [ "repro-dir" ] ~docv:"DIR" ~doc)

let no_cache_arg =
  let doc =
    "Disable the prefix-snapshot replay cache: every work item replays \
     its full schedule prefix from the initial state instead of resuming \
     from a memoized snapshot.  The explored executions, bugs and \
     checkpoints are identical either way — this is the escape hatch for \
     ruling the cache out when debugging, at a (often large) replay \
     cost.  See docs/REPLAY_CACHE.md."
  in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let first_bug_arg =
  let doc =
    "Stop the search at the first bug instead of exploring the whole \
     space (what $(b,icb check) always does)."
  in
  Arg.(value & flag & info [ "first-bug" ] ~doc)

let config_of_granularity = function
  | `Sync -> Icb_search.Mach_engine.default_config
  | `Every -> Icb_search.Mach_engine.zing_config

let granularity_name = function `Sync -> "sync" | `Every -> "every"

(* Fail before the search starts, not hours into it when the first
   periodic write fires. *)
let validate_out_path what = function
  | None -> ()
  | Some path ->
    let dir = Filename.dirname path in
    if not (Sys.file_exists dir && Sys.is_directory dir) then begin
      Format.eprintf "cannot write %s to %s: %s is not an existing directory@."
        what path dir;
      exit 2
    end

let validate_checkpoint_path p = validate_out_path "checkpoints" p

(* The per-invocation observability state shared by check/check-model/
   resume/explore: the telemetry hub feeding --trace/--metrics sinks, the
   throttled stderr progress display, and the finisher that prints the
   unconditional final summary line and closes the sinks.  [rt_finish]
   must run before any [exit]. *)
type runtime = {
  rt_telemetry : Obs.Telemetry.t option;
  rt_on_progress : (Icb_search.Collector.progress -> unit) option;
  rt_quiet : bool;
  rt_finish : Icb_search.Sresult.t -> unit;
}

let make_runtime ?max_execs ~trace ~metrics ~metrics_every ~quiet ~progress
    ~timeout () =
  validate_out_path "the event trace" trace;
  validate_out_path "metrics" metrics;
  let telemetry =
    match (trace, metrics) with
    | None, None -> None
    | _ ->
      let t = Obs.Telemetry.create () in
      Option.iter (Obs.Telemetry.add_trace t) trace;
      Option.iter (Obs.Telemetry.add_metrics_dump t ~every:metrics_every)
        metrics;
      Some t
  in
  let started_at = Unix.gettimeofday () in
  let stat_of (p : Icb_search.Collector.progress) : Obs.Progress.stat =
    let rate =
      if p.p_elapsed > 0.0 then float_of_int p.p_executions /. p.p_elapsed
      else 0.0
    in
    let eta_timeout =
      Option.map
        (fun t -> t -. (Unix.gettimeofday () -. started_at))
        timeout
    in
    let eta_execs =
      match max_execs with
      | Some n when rate > 0.0 ->
        Some (float_of_int (n - p.p_executions) /. rate)
      | _ -> None
    in
    let eta =
      match (eta_timeout, eta_execs) with
      | Some a, Some b -> Some (Float.min a b)
      | (Some _ as e), None | None, (Some _ as e) -> e
      | None, None -> None
    in
    {
      Obs.Progress.executions = p.p_executions;
      states = p.p_states;
      bugs = p.p_bugs;
      elapsed = p.p_elapsed;
      bound = p.p_bound;
      frontier = p.p_frontier;
      eta = Option.map (fun e -> Float.max e 0.0) eta;
    }
  in
  let display =
    if (progress || Unix.isatty Unix.stderr) && not quiet then
      Some (Obs.Progress.create ())
    else None
  in
  let finish (r : Icb_search.Sresult.t) =
    (match display with
    | Some d ->
      Obs.Progress.finish d
        {
          Obs.Progress.executions = r.Icb_search.Sresult.executions;
          states = r.Icb_search.Sresult.distinct_states;
          bugs = List.length r.Icb_search.Sresult.bugs;
          elapsed = Unix.gettimeofday () -. started_at;
          bound = None;
          frontier = None;
          eta = None;
        }
    | None -> ());
    Option.iter Obs.Telemetry.close telemetry
  in
  {
    rt_telemetry = telemetry;
    rt_on_progress =
      Option.map (fun d p -> Obs.Progress.report d (stat_of p)) display;
    rt_quiet = quiet;
    rt_finish = finish;
  }

let options_of ~no_deadlock ~timeout rt =
  {
    Icb_search.Collector.default_options with
    deadlock_is_error = not no_deadlock;
    deadline = Option.map Icb_search.Collector.deadline_in timeout;
    on_progress = rt.rt_on_progress;
  }

(* One bundle per deduplicated bug, after the run; a failed write warns
   but never changes the search's own exit code. *)
let drop_bundles ~repro_dir ~prog ~config ~no_deadlock ~gran ~kind ~target
    ~strategy ~seed ~quiet (r : Icb_search.Sresult.t) =
  match repro_dir with
  | None -> ()
  | Some dir -> (
    if r.Icb_search.Sresult.bugs <> [] then
      let module E = (val Icb.engine ~config prog) in
      match
        Icb_repro.Store.drop
          (module E)
          ~dir ~deadlock_is_error:(not no_deadlock) ~kind ~target ~strategy
          ~seed
          ~meta:[ ("granularity", granularity_name gran) ]
          r.Icb_search.Sresult.bugs
      with
      | Ok [] ->
        if not quiet then
          Format.eprintf "[icb] repro bundles already present in %s@." dir
      | Ok paths ->
        if not quiet then
          Format.eprintf "[icb] wrote %d repro bundle%s to %s@."
            (List.length paths)
            (if List.length paths = 1 then "" else "s")
            dir
      | Error msg -> Format.eprintf "cannot write repro bundles: %s@." msg)

(* --- check / check-model / resume ------------------------------------------- *)

let report_bug prog (bug : Icb.bug) =
  Format.printf "BUG FOUND (%d preemption%s):@.  %a@.@.trace:@." bug.preemptions
    (if bug.preemptions = 1 then "" else "s")
    Icb.pp_bug bug;
  List.iter (fun l -> Format.printf "  %s@." l) (Icb.explain prog bug)

(* Shared driver behind check, check-model and resume: ICB stopping at the
   first bug, with optional deadline and checkpointing.  Exit codes:
   0 no bug, 1 bug found, 2 usage error, 3 interrupted (partial result). *)
let run_check ~prog ~meta ~bound ~rt ~options ~gran ~checkpoint
    ~checkpoint_every ~resume_from ~jobs ~repro_dir ~seed ~no_cache () =
  validate_checkpoint_path checkpoint;
  if jobs < 1 then begin
    Format.eprintf "--jobs must be at least 1@.";
    exit 2
  end;
  let config = config_of_granularity gran in
  let options =
    { options with Icb_search.Collector.stop_at_first_bug = true }
  in
  let telemetry = rt.rt_telemetry in
  let r =
    match resume_from with
    | Some ckpt ->
      Icb.resume ~config ~options ?checkpoint_out:checkpoint ~checkpoint_every
        ~checkpoint_meta:meta ?telemetry ~domains:jobs ~cache:(not no_cache)
        prog ckpt
    | None when jobs > 1 ->
      Icb.run_parallel ~config ~options ?checkpoint_out:checkpoint
        ~checkpoint_every ~checkpoint_meta:meta ?telemetry ~max_bound:bound
        ~cache:false ~replay_cache:(not no_cache) ~domains:jobs prog
    | None ->
      Icb.run ~config ~options ?checkpoint_out:checkpoint ~checkpoint_every
        ~checkpoint_meta:meta ?telemetry ~cache:(not no_cache)
        ~strategy:
          (Icb_search.Explore.Icb { max_bound = Some bound; cache = false })
        prog
  in
  rt.rt_finish r;
  drop_bundles ~repro_dir ~prog ~config
    ~no_deadlock:(not options.Icb_search.Collector.deadlock_is_error)
    ~gran
    ~kind:(Option.value (List.assoc_opt "kind" meta) ~default:"file")
    ~target:(Option.value (List.assoc_opt "target" meta) ~default:"?")
    ~strategy:(Printf.sprintf "icb:%d" bound)
    ~seed ~quiet:rt.rt_quiet r;
  match r.Icb_search.Sresult.bugs with
  | bug :: _ ->
    report_bug prog bug;
    exit 1
  | [] -> (
    match r.Icb_search.Sresult.stop_reason with
    | None ->
      Format.printf "no bug found in executions with at most %d preemptions@."
        bound
    | Some reason ->
      Format.eprintf
        "search interrupted (%s) after %d executions, %d states — no bug so \
         far%s@."
        (Icb_search.Sresult.stop_reason_string reason)
        r.executions r.distinct_states
        (match checkpoint with
        | Some f when not rt.rt_quiet ->
          Printf.sprintf "; continue with `icb resume %s`" f
        | _ -> "");
      exit 3)

let check_run path bound seed no_deadlock gran timeout checkpoint
    checkpoint_every jobs progress trace metrics metrics_every quiet repro_dir
    no_cache =
  match load_program path with
  | exception Icb.Compile_error msg ->
    Format.eprintf "%s@." msg;
    exit 2
  | prog ->
    let meta =
      [
        ("kind", "file");
        ("target", path);
        ("bound", string_of_int bound);
        ("seed", Int64.to_string seed);
        ("granularity", granularity_name gran);
        ("no-deadlock", string_of_bool no_deadlock);
      ]
    in
    let rt =
      make_runtime ~trace ~metrics ~metrics_every ~quiet ~progress ~timeout ()
    in
    run_check ~prog ~meta ~bound ~rt
      ~options:(options_of ~no_deadlock ~timeout rt)
      ~gran ~checkpoint ~checkpoint_every ~resume_from:None ~jobs ~repro_dir
      ~seed ~no_cache ()

let check_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Model source file.")
  in
  let doc = "systematically test a model with iterative context bounding" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Explores thread schedules in increasing order of preempting \
         context switches, stopping at the first bug.  With \
         $(b,--timeout) and $(b,--checkpoint) the search is interruptible \
         and resumable; see docs/RESILIENCE.md for the checkpoint format \
         and guarantees.";
    ]
  in
  Cmd.v
    (Cmd.info "check" ~doc ~man)
    Term.(
      const check_run $ path $ bound_arg $ seed_arg $ no_deadlock_arg
      $ granularity_arg $ timeout_arg $ checkpoint_arg $ checkpoint_every_arg
      $ jobs_arg $ progress_arg $ trace_arg $ metrics_arg $ metrics_every_arg
      $ quiet_arg $ repro_dir_arg $ no_cache_arg)

(* --- check-model -------------------------------------------------------------- *)

let check_model_run name bound seed no_deadlock gran timeout checkpoint
    checkpoint_every jobs progress trace metrics metrics_every quiet repro_dir
    no_cache =
  match resolve_model name with
  | Error msg ->
    Format.eprintf "%s@." msg;
    exit 2
  | Ok prog ->
    let meta =
      [
        ("kind", "model");
        ("target", name);
        ("bound", string_of_int bound);
        ("seed", Int64.to_string seed);
        ("granularity", granularity_name gran);
        ("no-deadlock", string_of_bool no_deadlock);
      ]
    in
    let rt =
      make_runtime ~trace ~metrics ~metrics_every ~quiet ~progress ~timeout ()
    in
    run_check ~prog ~meta ~bound ~rt
      ~options:(options_of ~no_deadlock ~timeout rt)
      ~gran ~checkpoint ~checkpoint_every ~resume_from:None ~jobs ~repro_dir
      ~seed ~no_cache ()

let check_model_cmd =
  let model_name =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"MODEL"
          ~doc:
            "Bundled model name as printed by $(b,icb models), e.g. \
             bluetooth:check-then-add-reference (or the single-bug alias \
             bluetooth:bug).")
  in
  let doc = "check one of the bundled benchmark models" in
  Cmd.v
    (Cmd.info "check-model" ~doc)
    Term.(
      const check_model_run $ model_name $ bound_arg $ seed_arg
      $ no_deadlock_arg $ granularity_arg $ timeout_arg $ checkpoint_arg
      $ checkpoint_every_arg $ jobs_arg $ progress_arg $ trace_arg
      $ metrics_arg $ metrics_every_arg $ quiet_arg $ repro_dir_arg
      $ no_cache_arg)

(* --- resume ------------------------------------------------------------------- *)

let resume_run file timeout checkpoint checkpoint_every jobs progress trace
    metrics metrics_every quiet repro_dir first_bug no_cache =
  match Icb_search.Checkpoint.load file with
  | exception Icb_search.Checkpoint.Corrupt msg ->
    Format.eprintf "%s@." msg;
    exit 2
  | ckpt -> (
    let meta k = Icb_search.Checkpoint.meta_find ckpt k in
    let missing what =
      Format.eprintf
        "checkpoint %s does not record %s (not written by `icb check`?)@."
        file what;
      exit 2
    in
    let prog =
      match (meta "kind", meta "target") with
      | Some "model", Some name -> (
        match resolve_model name with
        | Ok p -> p
        | Error msg ->
          Format.eprintf "%s@." msg;
          exit 2)
      | Some "file", Some path -> (
        match load_program path with
        | p -> p
        | exception Icb.Compile_error msg ->
          Format.eprintf "%s@." msg;
          exit 2
        | exception Sys_error msg ->
          Format.eprintf
            "cannot reload the checkpointed program: %s (the checkpoint \
             records the model by path; restore the file or rerun `icb \
             check`)@."
            msg;
          exit 2)
      | _ -> missing "how to rebuild the program"
    in
    let gran = if meta "granularity" = Some "every" then `Every else `Sync in
    let no_deadlock = meta "no-deadlock" = Some "true" in
    if not quiet then
      Format.eprintf "[icb] resuming %s@."
        (Icb_search.Checkpoint.describe ckpt);
    (* Checkpoints written by `icb explore --checkpoint` carry the
       strategy in the file itself, not a preemption bound; resume them
       with explore's reporting (full search, no first-bug stop). *)
    if meta "mode" = Some "explore" then begin
      if jobs < 1 then begin
        Format.eprintf "--jobs must be at least 1@.";
        exit 2
      end;
      let config = config_of_granularity gran in
      (* The original run's --max-executions is recorded in the file;
         without it a resumed randomized strategy would run to its hard
         walk cap rather than the horizon the user asked for. *)
      let max_execs = Option.bind (meta "max-executions") int_of_string_opt in
      let rt =
        make_runtime ?max_execs ~trace ~metrics ~metrics_every ~quiet
          ~progress ~timeout ()
      in
      (* --first-bug on the resume itself, or recorded by the original
         `icb explore --first-bug` in the checkpoint *)
      let first_bug = first_bug || meta "first-bug" = Some "true" in
      let options =
        {
          (options_of ~no_deadlock ~timeout rt) with
          Icb_search.Collector.max_executions = max_execs;
          stop_at_first_bug = first_bug;
        }
      in
      let r =
        try
          Icb.resume ~config ~options
            ~checkpoint_out:(Option.value checkpoint ~default:file)
            ~checkpoint_every ?telemetry:rt.rt_telemetry ~domains:jobs
            ~cache:(not no_cache) prog ckpt
        with Invalid_argument msg ->
          Format.eprintf "%s@." msg;
          exit 2
      in
      rt.rt_finish r;
      drop_bundles ~repro_dir ~prog ~config ~no_deadlock ~gran
        ~kind:(Option.value (meta "kind") ~default:"file")
        ~target:(Option.value (meta "target") ~default:"?")
        ~strategy:(Option.value (meta "strategy") ~default:"?")
        ~seed:
          (Option.value
             (Option.bind (meta "seed") Int64.of_string_opt)
             ~default:2007L)
        ~quiet r;
      Format.printf "%a@." Icb_search.Sresult.pp_summary r;
      List.iter
        (fun (bug : Icb.bug) -> Format.printf "@.%a@." Icb.pp_bug bug)
        r.Icb_search.Sresult.bugs;
      exit (if r.bugs <> [] then 1 else 0)
    end;
    let bound =
      match Option.bind (meta "bound") int_of_string_opt with
      | Some b -> b
      | None -> missing "the preemption bound"
    in
    let rt =
      make_runtime ~trace ~metrics ~metrics_every ~quiet ~progress ~timeout ()
    in
    run_check ~prog
      ~meta:
        (List.filter_map
           (fun k -> Option.map (fun v -> (k, v)) (meta k))
           [ "kind"; "target"; "bound"; "seed"; "granularity"; "no-deadlock" ])
      ~bound ~rt
      ~options:(options_of ~no_deadlock ~timeout rt)
      ~gran
      ~checkpoint:(Some (Option.value checkpoint ~default:file))
      ~checkpoint_every ~resume_from:(Some ckpt) ~jobs ~repro_dir
      ~seed:
        (Option.value
           (Option.bind (meta "seed") Int64.of_string_opt)
           ~default:2007L)
      ~no_cache ())

let resume_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"CHECKPOINT"
          ~doc:"Checkpoint file written by $(b,icb check --checkpoint).")
  in
  let doc = "continue an interrupted check from a checkpoint" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Loads a checkpoint written by $(b,icb check --checkpoint FILE) or \
         $(b,icb check-model --checkpoint FILE), rebuilds the program it \
         records, and continues the search exactly where it stopped: same \
         work queue, context bound, coverage counters and bug list.  By \
         default new checkpoints overwrite the same file, so a run can be \
         interrupted and resumed any number of times.  Truncated or \
         corrupted checkpoints are rejected with a clear error.  See \
         docs/RESILIENCE.md.";
    ]
  in
  Cmd.v
    (Cmd.info "resume" ~doc ~man)
    Term.(
      const resume_run $ file $ timeout_arg $ checkpoint_arg
      $ checkpoint_every_arg $ jobs_arg $ progress_arg $ trace_arg
      $ metrics_arg $ metrics_every_arg $ quiet_arg $ repro_dir_arg
      $ first_bug_arg $ no_cache_arg)

(* --- explore ------------------------------------------------------------------ *)

(* The one list every accepted --strategy spelling comes from
   ([Explore.strategy_forms]); the help text and the parse error both
   render it so they cannot drift apart. *)
let strategy_arg =
  let doc =
    "Search strategy: "
    ^ String.concat ", "
        (List.map
           (fun (form, what, range) ->
             match range with
             | None -> Printf.sprintf "$(b,%s) (%s)" form what
             | Some r -> Printf.sprintf "$(b,%s) (%s; %s)" form what r)
           Icb_search.Explore.strategy_forms)
    ^ "."
  in
  Arg.(value & opt string "icb" & info [ "s"; "strategy" ] ~docv:"STRATEGY" ~doc)

let max_execs_arg =
  let doc = "Stop after N executions." in
  Arg.(
    value & opt (some int) None & info [ "max-executions" ] ~docv:"N" ~doc)

let parse_strategy ~seed s = Icb_search.Explore.parse_strategy ~seed s

let explore_run path model strategy_str seed no_deadlock gran max_execs
    timeout checkpoint checkpoint_every jobs progress trace metrics
    metrics_every quiet repro_dir first_bug no_cache =
  let kind, target, prog =
    match (path, model) with
    | Some _, Some _ ->
      Format.eprintf "FILE and --model are mutually exclusive@.";
      exit 2
    | None, None ->
      Format.eprintf "one of FILE or --model NAME is required@.";
      exit 2
    | Some path, None -> (
      match load_program path with
      | prog -> ("file", path, prog)
      | exception Icb.Compile_error msg ->
        Format.eprintf "%s@." msg;
        exit 2)
    | None, Some name -> (
      match resolve_model name with
      | Ok prog -> ("model", name, prog)
      | Error msg ->
        Format.eprintf "%s@." msg;
        exit 2)
  in
  match parse_strategy ~seed strategy_str with
  | Error msg ->
    Format.eprintf "%s@." msg;
    exit 2
  | Ok strategy ->
    validate_checkpoint_path checkpoint;
    if jobs < 1 then begin
      Format.eprintf "--jobs must be at least 1@.";
      exit 2
    end;
    let config = config_of_granularity gran in
    let rt =
      make_runtime ?max_execs ~trace ~metrics ~metrics_every ~quiet ~progress
        ~timeout ()
    in
    let options =
      {
        (options_of ~no_deadlock ~timeout rt) with
        Icb_search.Collector.max_executions = max_execs;
        stop_at_first_bug = first_bug;
      }
    in
    let meta =
      [
        ("mode", "explore");
        ("kind", kind);
        ("target", target);
        ("strategy", strategy_str);
        ("seed", Int64.to_string seed);
        ("granularity", granularity_name gran);
        ("no-deadlock", string_of_bool no_deadlock);
      ]
      @ (if first_bug then [ ("first-bug", "true") ] else [])
      @
      match max_execs with
      | Some n -> [ ("max-executions", string_of_int n) ]
      | None -> []
    in
    (* Non-shardable strategies (sleep, most-enabled) reject --jobs > 1
       in the driver with a message naming the ones that do shard, and
       sleep rejects --checkpoint the same way. *)
    let r =
      try
        Icb.run ~config ~options ?checkpoint_out:checkpoint ~checkpoint_every
          ~checkpoint_meta:meta ?telemetry:rt.rt_telemetry ~domains:jobs
          ~cache:(not no_cache) ~strategy prog
      with Invalid_argument msg ->
        Format.eprintf "%s@." msg;
        exit 2
    in
    rt.rt_finish r;
    drop_bundles ~repro_dir ~prog ~config ~no_deadlock ~gran ~kind ~target
      ~strategy:strategy_str ~seed ~quiet r;
    Format.printf "%a@." Icb_search.Sresult.pp_summary r;
    List.iter
      (fun (bug : Icb.bug) ->
        Format.printf "@.%a@." Icb.pp_bug bug)
      r.Icb_search.Sresult.bugs;
    (match (r.Icb_search.Sresult.stop_reason, checkpoint) with
    | Some _, Some f when not quiet ->
      Format.eprintf "continue with `icb resume %s`@." f
    | _ -> ());
    if r.bugs <> [] then exit 1

let explore_cmd =
  let path =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"Model source file (or use $(b,--model) for a bundled one).")
  in
  let model =
    Arg.(
      value
      & opt (some string) None
      & info [ "model" ] ~docv:"MODEL"
          ~doc:
            "Explore a bundled model (a name printed by $(b,icb models)) \
             instead of a source FILE.")
  in
  let doc = "explore a model's state space with a chosen strategy" in
  Cmd.v
    (Cmd.info "explore" ~doc)
    Term.(
      const explore_run $ path $ model $ strategy_arg $ seed_arg
      $ no_deadlock_arg $ granularity_arg $ max_execs_arg $ timeout_arg
      $ checkpoint_arg $ checkpoint_every_arg $ jobs_arg $ progress_arg
      $ trace_arg $ metrics_arg $ metrics_every_arg $ quiet_arg
      $ repro_dir_arg $ first_bug_arg $ no_cache_arg)

(* --- serve / worker (distributed search) -------------------------------------- *)

let host_arg =
  let doc = "Interface to listen on (an IP or resolvable name)." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)

let port_arg =
  let doc = "TCP port to listen on (default 0 = ephemeral; the bound port \
             is printed at startup)." in
  Arg.(value & opt int 0 & info [ "port" ] ~docv:"PORT" ~doc)

let lease_timeout_arg =
  let doc =
    "Seconds a leased batch may stay unreported before it is re-issued to \
     another worker (default 30)."
  in
  Arg.(value & opt float 30.0 & info [ "lease-timeout" ] ~docv:"SECS" ~doc)

let batch_size_arg =
  let doc = "Maximum work items per leased batch (default 32)." in
  Arg.(value & opt int 32 & info [ "batch-size" ] ~docv:"N" ~doc)

let serve_resume_arg =
  let doc =
    "Resume a checkpoint written by a previous $(b,icb serve --checkpoint) \
     (or $(b,icb explore --checkpoint)) instead of starting fresh; FILE / \
     $(b,--model) / $(b,--strategy) are then taken from the checkpoint."
  in
  Arg.(
    value & opt (some file) None & info [ "resume" ] ~docv:"CHECKPOINT" ~doc)

let serve_run path model strategy_str seed no_deadlock gran max_execs timeout
    checkpoint checkpoint_every resume host port lease_timeout batch_size
    trace metrics metrics_every quiet first_bug no_cache =
  validate_checkpoint_path checkpoint;
  validate_out_path "the event trace" trace;
  validate_out_path "metrics" metrics;
  let telemetry = Obs.Telemetry.create () in
  Option.iter (Obs.Telemetry.add_trace telemetry) trace;
  Option.iter
    (Obs.Telemetry.add_metrics_dump telemetry ~every:metrics_every)
    metrics;
  (* Everything a worker needs to rebuild the engine travels in the
     checkpoint meta (= the job's provenance): kind/target like every
     checkpoint, plus granularity.  mode=explore keeps the file readable
     by plain `icb resume` too. *)
  let fresh () =
    let kind, target, prog =
      match (path, model) with
      | Some _, Some _ ->
        Format.eprintf "FILE and --model are mutually exclusive@.";
        exit 2
      | None, None ->
        Format.eprintf "one of FILE, --model NAME or --resume is required@.";
        exit 2
      | Some path, None -> (
        match load_program path with
        | prog -> ("file", path, prog)
        | exception Icb.Compile_error msg ->
          Format.eprintf "%s@." msg;
          exit 2)
      | None, Some name -> (
        match resolve_model name with
        | Ok prog -> ("model", name, prog)
        | Error msg ->
          Format.eprintf "%s@." msg;
          exit 2)
    in
    match parse_strategy ~seed strategy_str with
    | Error msg ->
      Format.eprintf "%s@." msg;
      exit 2
    | Ok strategy ->
      let meta =
        [
          ("mode", "explore");
          ("kind", kind);
          ("target", target);
          ("strategy", strategy_str);
          ("seed", Int64.to_string seed);
          ("granularity", granularity_name gran);
          ("no-deadlock", string_of_bool no_deadlock);
        ]
        @ (if first_bug then [ ("first-bug", "true") ] else [])
        @
        match max_execs with
        | Some n -> [ ("max-executions", string_of_int n) ]
        | None -> []
      in
      (prog, strategy, meta, gran, no_deadlock, max_execs, first_bug, None)
  in
  let resumed file =
    match Icb_search.Checkpoint.load file with
    | exception Icb_search.Checkpoint.Corrupt msg ->
      Format.eprintf "%s@." msg;
      exit 2
    | ckpt ->
      let meta k = Icb_search.Checkpoint.meta_find ckpt k in
      let prog =
        match (meta "kind", meta "target") with
        | Some "model", Some name -> (
          match resolve_model name with
          | Ok p -> p
          | Error msg ->
            Format.eprintf "%s@." msg;
            exit 2)
        | Some "file", Some path -> (
          match load_program path with
          | p -> p
          | exception Icb.Compile_error msg ->
            Format.eprintf "%s@." msg;
            exit 2
          | exception Sys_error msg ->
            Format.eprintf "cannot reload the checkpointed program: %s@." msg;
            exit 2)
        | _ ->
          Format.eprintf
            "checkpoint %s does not record how to rebuild the program@." file;
          exit 2
      in
      let gran =
        if meta "granularity" = Some "every" then `Every else `Sync
      in
      let no_deadlock = meta "no-deadlock" = Some "true" in
      (* the file's recorded cap, unless the user raises it explicitly:
         a run stopped by --max-executions would otherwise stop again
         immediately on resume *)
      let max_execs =
        match max_execs with
        | Some _ -> max_execs
        | None -> Option.bind (meta "max-executions") int_of_string_opt
      in
      let first_bug = first_bug || meta "first-bug" = Some "true" in
      if not quiet then
        Format.eprintf "[icb] resuming %s@."
          (Icb_search.Checkpoint.describe ckpt);
      ( prog,
        Icb_search.Explore.strategy_of_checkpoint ckpt,
        ckpt.Icb_search.Checkpoint.meta,
        gran,
        no_deadlock,
        max_execs,
        first_bug,
        Some (file, ckpt) )
  in
  let prog, strategy, meta, gran, no_deadlock, max_execs, first_bug, res =
    match resume with Some file -> resumed file | None -> fresh ()
  in
  let config = config_of_granularity gran in
  let options =
    {
      Icb_search.Collector.default_options with
      deadlock_is_error = not no_deadlock;
      deadline = Option.map Icb_search.Collector.deadline_in timeout;
      max_executions = max_execs;
      stop_at_first_bug = first_bug;
    }
  in
  let checkpoint_out =
    match (checkpoint, res) with
    | Some f, _ -> Some f
    | None, Some (file, _) -> Some file (* overwrite, like icb resume *)
    | None, None -> None
  in
  let r =
    try
      Icb.serve ~config ~options ?checkpoint_out ~checkpoint_every
        ~checkpoint_meta:meta
        ?resume_from:(Option.map snd res)
        ~host ~port ~lease_timeout ~batch_size ~telemetry
        ~cache:(not no_cache)
        ~on_coordinator:(fun c ->
          Format.printf "coordinator listening on %s:%d@." host
            (Icb.Dist.Coord.port c))
        ~strategy prog
    with Invalid_argument msg ->
      Format.eprintf "%s@." msg;
      exit 2
  in
  Obs.Telemetry.close telemetry;
  Format.printf "%a@." Icb_search.Sresult.pp_summary r;
  List.iter
    (fun (bug : Icb.bug) -> Format.printf "@.%a@." Icb.pp_bug bug)
    r.Icb_search.Sresult.bugs;
  (match (r.Icb_search.Sresult.stop_reason, checkpoint_out) with
  | Some _, Some f when not quiet ->
    Format.eprintf "continue with `icb serve --resume %s`@." f
  | _ -> ());
  if r.Icb_search.Sresult.bugs <> [] then exit 1

let serve_cmd =
  let path =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"Model source file (or use $(b,--model) for a bundled one).")
  in
  let model =
    Arg.(
      value
      & opt (some string) None
      & info [ "model" ] ~docv:"MODEL"
          ~doc:
            "Serve a bundled model (a name printed by $(b,icb models)) \
             instead of a source FILE.")
  in
  let doc = "coordinate a distributed search served to icb workers" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Listens on $(b,--host):$(b,--port) and hands lease-stamped \
         batches of the current round's work items to $(b,icb worker) \
         processes, merging their reports at the same deterministic \
         per-bound barrier the in-process parallel driver uses: the bug \
         set and per-bound execution counts equal a serial run of the \
         same search.  A killed worker loses nothing — its leases expire \
         and the batches are re-issued — and with $(b,--checkpoint) the \
         coordinator itself can be killed and continued with \
         $(b,--resume).  The same port serves $(b,GET /metrics) \
         (Prometheus text) and $(b,GET /status) (JSON) over plain HTTP.  \
         See docs/DISTRIBUTED.md.";
    ]
  in
  Cmd.v
    (Cmd.info "serve" ~doc ~man)
    Term.(
      const serve_run $ path $ model $ strategy_arg $ seed_arg
      $ no_deadlock_arg $ granularity_arg $ max_execs_arg $ timeout_arg
      $ checkpoint_arg $ checkpoint_every_arg $ serve_resume_arg $ host_arg
      $ port_arg $ lease_timeout_arg $ batch_size_arg $ trace_arg
      $ metrics_arg $ metrics_every_arg $ quiet_arg $ first_bug_arg
      $ no_cache_arg)

let worker_run addr connect_timeout quiet no_cache =
  let host, port =
    match String.rindex_opt addr ':' with
    | Some i -> (
      match int_of_string_opt (String.sub addr (i + 1) (String.length addr - i - 1)) with
      | Some p -> (String.sub addr 0 i, p)
      | None ->
        Format.eprintf "bad address %S (expected HOST:PORT)@." addr;
        exit 2)
    | None ->
      Format.eprintf "bad address %S (expected HOST:PORT)@." addr;
      exit 2
  in
  (* rebuild the engine from the job's provenance: bundled models by
     registry name, files by path, with the recorded granularity *)
  let resolve meta =
    let gran =
      if List.assoc_opt "granularity" meta = Some "every" then `Every
      else `Sync
    in
    let config = config_of_granularity gran in
    match (List.assoc_opt "kind" meta, List.assoc_opt "target" meta) with
    | Some "model", Some name ->
      Result.map
        (fun p -> Icb.Dist.Worker.Packed (Icb.engine ~config p))
        (resolve_model name)
    | Some "file", Some path -> (
      match load_program path with
      | p -> Ok (Icb.Dist.Worker.Packed (Icb.engine ~config p))
      | exception Icb.Compile_error msg -> Error msg
      | exception Sys_error msg -> Error msg)
    | _ -> Error "the job's provenance metadata names no model or file"
  in
  (* the coordinator may still be starting; retry connection refusals
     until --connect-timeout expires *)
  let deadline = Unix.gettimeofday () +. connect_timeout in
  let rec attempt () =
    match Icb.worker ~cache:(not no_cache) ~resolve ~host ~port () with
    | Ok batches ->
      if not quiet then
        Format.eprintf "[icb] worker done after %d batches@." batches
    | Error msg
      when String.length msg >= 14
           && String.sub msg 0 14 = "cannot connect"
           && Unix.gettimeofday () < deadline ->
      Unix.sleepf 0.2;
      attempt ()
    | Error msg ->
      Format.eprintf "%s@." msg;
      exit 2
  in
  attempt ()

let worker_cmd =
  let addr =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"HOST:PORT"
          ~doc:"Coordinator address, as printed by $(b,icb serve).")
  in
  let connect_timeout =
    let doc =
      "Seconds to keep retrying the initial connection while the \
       coordinator starts up (default 10)."
    in
    Arg.(value & opt float 10.0 & info [ "connect-timeout" ] ~docv:"SECS" ~doc)
  in
  let doc = "run leased work batches for an icb serve coordinator" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Connects to a coordinator started with $(b,icb serve), rebuilds \
         the program from the job's provenance (bundled model name or \
         source path — the file must exist on this machine too), then \
         leases work-item batches and streams back bugs, counters and \
         buffered telemetry until the coordinator reports the search \
         done.  Workers keep a local prefix-snapshot replay cache; \
         killing a worker at any point loses nothing.  See \
         docs/DISTRIBUTED.md.";
    ]
  in
  Cmd.v
    (Cmd.info "worker" ~doc ~man)
    Term.(
      const worker_run $ addr $ connect_timeout $ quiet_arg $ no_cache_arg)

(* --- report ------------------------------------------------------------------- *)

let report_run file json =
  match Obs.Trace.read file with
  | exception Sys_error msg ->
    Format.eprintf "%s@." msg;
    exit 2
  | exception Failure msg ->
    Format.eprintf "%s@." msg;
    exit 2
  | events ->
    let s = Obs.Trace.summarize events in
    if json then print_endline (Obs.Json.to_string (Obs.Trace.to_json s))
    else Format.printf "%a@." Obs.Trace.pp_report s

let report_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE"
          ~doc:"JSONL event trace written by $(b,--trace).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the summary as a JSON object instead of the table.")
  in
  let doc = "summarize a JSONL event trace" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Replays a trace written by $(b,icb check --trace) (or check-model/\
         resume/explore) into a per-bound coverage table — executions per \
         context bound, cumulative counts, and the bugs found at each \
         bound, the shape of the paper's Table 2 — plus run totals and \
         outcome.  The per-bound cumulative counts reproduce the \
         collector's own curve exactly, serial or parallel.  Corrupt or \
         truncated traces are rejected with the offending line.  See \
         docs/OBSERVABILITY.md.";
    ]
  in
  Cmd.v (Cmd.info "report" ~doc ~man) Term.(const report_run $ file $ json)

(* --- bench -------------------------------------------------------------------- *)

(* Serial-vs-parallel comparison on a bundled model: runs the full ICB
   search (no first-bug stop) both ways, prints the rates, and asserts
   the determinism contract — identical bug sets and per-bound cumulative
   execution counts.  Exit code 1 means the contract was violated. *)
let bench_run name bound no_deadlock gran jobs =
  match resolve_model name with
  | Error msg ->
    Format.eprintf "%s@." msg;
    exit 2
  | Ok prog ->
    if jobs < 1 then begin
      Format.eprintf "--jobs must be at least 1@.";
      exit 2
    end;
    let config = config_of_granularity gran in
    let options =
      {
        Icb_search.Collector.default_options with
        deadlock_is_error = not no_deadlock;
      }
    in
    let time f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. t0)
    in
    let serial, t_serial =
      time (fun () ->
          Icb.run ~config ~options
            ~strategy:
              (Icb_search.Explore.Icb { max_bound = Some bound; cache = false })
            prog)
    in
    let par, t_par =
      time (fun () ->
          Icb.run_parallel ~config ~options ~max_bound:bound ~domains:jobs
            prog)
    in
    let line what (r : Icb_search.Sresult.t) t =
      Format.printf
        "%-12s %8d executions %8d states %3d bugs  %6.2fs  %8.0f execs/s@."
        what r.executions r.distinct_states (List.length r.bugs) t
        (float_of_int r.executions /. max t 1e-9)
    in
    Format.printf "model %s, bound %d, %d core(s) available@." name bound
      (Domain.recommended_domain_count ());
    line "serial" serial t_serial;
    line (Printf.sprintf "%d domains" jobs) par t_par;
    let keys (r : Icb_search.Sresult.t) =
      List.sort compare
        (List.map (fun (b : Icb.bug) -> b.Icb_search.Sresult.key) r.bugs)
    in
    let ok =
      keys serial = keys par
      && serial.bound_executions = par.bound_executions
      && serial.executions = par.executions
    in
    if ok then Format.printf "equivalence: OK@."
    else begin
      Format.eprintf
        "equivalence FAILED: parallel run diverged from serial (bug sets or \
         per-bound execution counts differ)@.";
      exit 1
    end

let bench_cmd =
  let model_name =
    Arg.(
      value
      & pos 0 string "work-stealing-queue:pop-reads-head-first"
      & info [] ~docv:"MODEL"
          ~doc:
            "Bundled model to benchmark (a name printed by $(b,icb \
             models)).")
  in
  let doc = "compare serial and parallel ICB on a bundled model" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the full iterative-context-bounding search on a bundled \
         model twice — serially and on $(b,--jobs) OCaml domains — and \
         prints executions/second for both, then asserts that the two \
         runs found the same bug set and the same per-bound execution \
         counts (the determinism contract; see docs/PARALLEL.md).  The \
         wider equivalence suite lives in $(b,bench/main.exe parallel).";
    ]
  in
  Cmd.v
    (Cmd.info "bench" ~doc ~man)
    Term.(
      const bench_run $ model_name $ bound_arg $ no_deadlock_arg
      $ granularity_arg $ jobs_arg)

(* --- compile ------------------------------------------------------------------ *)

let compile_run path =
  match load_program path with
  | exception Icb.Compile_error msg ->
    Format.eprintf "%s@." msg;
    exit 2
  | prog -> Format.printf "%a@." Icb.Machine.Prog.pp prog

let compile_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Model source file.")
  in
  let doc = "type-check a model and dump the compiled instructions" in
  Cmd.v (Cmd.info "compile" ~doc) Term.(const compile_run $ path)

(* --- models ------------------------------------------------------------------- *)

let models_run () =
  Format.printf
    "bundled models (exact addressable names, use with check-model):@.";
  List.iter
    (fun (name, _) -> Format.printf "  %s@." name)
    (Icb_models.Registry.addressable ())

let models_cmd =
  let doc = "list the bundled benchmark models" in
  Cmd.v (Cmd.info "models" ~doc) Term.(const models_run $ const ())

(* --- repro -------------------------------------------------------------------- *)

let load_bundle path =
  match Icb_repro.Bundle.load path with
  | t -> t
  | exception Icb_repro.Bundle.Corrupt msg ->
    Format.eprintf "%s@." msg;
    exit 2
  | exception Sys_error msg ->
    Format.eprintf "%s@." msg;
    exit 2

(* Rebuild the program a bundle records (checkpoint provenance
   conventions) and its engine at the recorded granularity. *)
let engine_of_bundle (t : Icb_repro.Bundle.t) =
  let prog =
    match t.kind with
    | "model" -> (
      match resolve_model t.target with
      | Ok p -> p
      | Error msg ->
        Format.eprintf "%s@." msg;
        exit 2)
    | "file" -> (
      match load_program t.target with
      | p -> p
      | exception Icb.Compile_error msg ->
        Format.eprintf "%s@." msg;
        exit 2
      | exception Sys_error msg ->
        Format.eprintf
          "cannot reload the bundled program: %s (the bundle records the \
           model by path)@."
          msg;
        exit 2)
    | kind ->
      Format.eprintf "bundle records unknown program kind %S@." kind;
      exit 2
  in
  let gran =
    if List.assoc_opt "granularity" t.meta = Some "every" then `Every
    else `Sync
  in
  (Icb.engine ~config:(config_of_granularity gran) prog, prog)

let bundle_pos =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"BUNDLE"
        ~doc:"Repro bundle written by $(b,--repro-dir) or $(b,icb repro min).")

let repro_verify_run path quiet =
  let t = load_bundle path in
  let engine, _ = engine_of_bundle t in
  let module E = (val engine) in
  match Icb_repro.Bundle.verify (module E) t with
  | Ok w ->
    if not quiet then
      Format.printf "verified: %s (%d step%s, %d preemption%s)@."
        (Icb_repro.Bundle.describe t) w.Icb_repro.Sched.depth
        (if w.Icb_repro.Sched.depth = 1 then "" else "s")
        w.Icb_repro.Sched.preemptions
        (if w.Icb_repro.Sched.preemptions = 1 then "" else "s")
  | Error msg ->
    Format.eprintf "verification failed: %s@." msg;
    exit 4

let repro_verify_cmd =
  let doc = "replay a bundle and check it still reproduces its bug" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Rebuilds the bundle's program, replays the recorded schedule and \
         demands full agreement: the same bug key exactly at the end of \
         the schedule (not earlier, not later) and the recorded \
         preemption, context-switch and depth counts.  Exit code 4 on any \
         disagreement — the program changed, the wrong variant was \
         rebuilt, or the bundle predates a behavioural change.";
    ]
  in
  Cmd.v
    (Cmd.info "verify" ~doc ~man)
    Term.(const repro_verify_run $ bundle_pos $ quiet_arg)

let repro_run_run path =
  let t = load_bundle path in
  let engine, prog = engine_of_bundle t in
  let module E = (val engine) in
  match Icb_repro.Bundle.verify (module E) t with
  | Error msg ->
    Format.eprintf "bundle does not reproduce: %s@." msg;
    exit 4
  | Ok w ->
    report_bug prog
      {
        Icb_search.Sresult.key = t.bug_key;
        msg = t.bug_msg;
        schedule = t.schedule;
        preemptions = w.Icb_repro.Sched.preemptions;
        context_switches = w.Icb_repro.Sched.context_switches;
        depth = w.Icb_repro.Sched.depth;
        execution = 0;
      }

let repro_run_cmd =
  let doc = "replay a bundle and print the full bug report" in
  Cmd.v (Cmd.info "run" ~doc) Term.(const repro_run_run $ bundle_pos)

let repro_min_run path out max_steps trace quiet =
  validate_out_path "the event trace" trace;
  Option.iter (fun o -> validate_out_path "the minimized bundle" (Some o)) out;
  let t = load_bundle path in
  let engine, _ = engine_of_bundle t in
  let module E = (val engine) in
  let telemetry =
    Option.map
      (fun f ->
        let h = Obs.Telemetry.create () in
        Obs.Telemetry.add_trace h f;
        h)
      trace
  in
  let emit =
    match telemetry with
    | Some h -> Obs.Telemetry.emitter h ~worker:0
    | None -> Obs.Emit.null
  in
  let budget =
    {
      Icb_repro.Minimize.default_budget with
      max_engine_steps =
        Option.value max_steps
          ~default:Icb_repro.Minimize.default_budget.max_engine_steps;
    }
  in
  let result =
    Icb_repro.Minimize.run
      (module E)
      ~budget
      ~deadlock_is_error:t.deadlocks_are_errors ~emit ~key:t.bug_key
      t.schedule
  in
  Option.iter Obs.Telemetry.close telemetry;
  match result with
  | Error msg ->
    Format.eprintf "cannot minimize: %s@." msg;
    exit 4
  | Ok s ->
    let m = s.Icb_repro.Minimize.minimized in
    let t' =
      {
        t with
        Icb_repro.Bundle.schedule = m.Icb_repro.Sched.schedule;
        preemptions = m.Icb_repro.Sched.preemptions;
        context_switches = m.Icb_repro.Sched.context_switches;
        depth = m.Icb_repro.Sched.depth;
        minimized = true;
        proven_minimal = s.Icb_repro.Minimize.proven_minimal;
        fingerprint =
          Icb_repro.Triage.fingerprint
            (module E)
            ~key:t.bug_key m.Icb_repro.Sched.schedule;
      }
    in
    let dest = Option.value out ~default:path in
    Icb_repro.Bundle.save ~path:dest t';
    if not quiet then begin
      let o = s.Icb_repro.Minimize.original in
      Format.printf
        "minimized %s:@.  %d step%s, %d preemption%s  ->  %d step%s, %d \
         preemption%s (%s, %d candidate replays)@."
        t.bug_key o.Icb_repro.Sched.depth
        (if o.Icb_repro.Sched.depth = 1 then "" else "s")
        o.Icb_repro.Sched.preemptions
        (if o.Icb_repro.Sched.preemptions = 1 then "" else "s")
        m.Icb_repro.Sched.depth
        (if m.Icb_repro.Sched.depth = 1 then "" else "s")
        m.Icb_repro.Sched.preemptions
        (if m.Icb_repro.Sched.preemptions = 1 then "" else "s")
        (if s.Icb_repro.Minimize.proven_minimal then "proven minimal"
         else "budget exhausted, local minimum")
        s.Icb_repro.Minimize.candidates;
      Format.printf "wrote %s@." dest
    end

let repro_min_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "Write the minimized bundle to $(docv) instead of rewriting \
             BUNDLE in place.")
  in
  let max_steps =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-steps" ] ~docv:"N"
          ~doc:
            "Engine-step budget across all minimization phases; when it \
             runs out the best witness so far is kept with \
             proven_minimal = false.")
  in
  let doc = "shrink a bundle's witness to a locally-minimal schedule" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Minimizes the bundle's schedule in three replay-validated phases \
         — tail truncation, delta debugging over preemption points, and \
         an exhaustive bounded search one preemption below the current \
         witness — then canonicalizes, so the same bug minimized from \
         different findings yields the same schedule and $(b,icb triage) \
         clusters them under one fingerprint.  The bundle is rewritten \
         in place (atomic) unless $(b,--out) is given; the original \
         witness stays recorded in its found_* fields.  $(b,--trace) \
         streams minimize-started/improved/finished telemetry events.  \
         See docs/REPRO.md.";
    ]
  in
  Cmd.v
    (Cmd.info "min" ~doc ~man)
    Term.(
      const repro_min_run $ bundle_pos $ out $ max_steps $ trace_arg
      $ quiet_arg)

let repro_cmd =
  let doc = "minimize, replay and verify repro bundles" in
  Cmd.group (Cmd.info "repro" ~doc)
    [ repro_min_cmd; repro_run_cmd; repro_verify_cmd ]

(* --- triage ------------------------------------------------------------------- *)

let triage_run dir json known =
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Format.eprintf "%s is not a directory@." dir;
    exit 2
  end;
  let known_fps =
    match known with
    | None -> []
    | Some file -> (
      let read () =
        let ic = open_in file in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Icb_repro.Triage.known_fingerprints (Obs.Json.parse (read ())) with
      | fps -> fps
      | exception Sys_error msg ->
        Format.eprintf "%s@." msg;
        exit 2
      | exception Obs.Json.Parse_error msg ->
        Format.eprintf "%s: %s@." file msg;
        exit 2)
  in
  let r = Icb_repro.Triage.scan ~known:known_fps dir in
  if json then
    print_endline (Obs.Json.to_string (Icb_repro.Triage.to_json r))
  else Format.printf "%a@." Icb_repro.Triage.pp r;
  (* only a baseline makes "new" meaningful as a gate *)
  if
    known <> None
    && List.exists
         (fun c -> c.Icb_repro.Triage.cl_new)
         r.Icb_repro.Triage.clusters
  then exit 1

let triage_cmd =
  let dir =
    Arg.(
      required
      & pos 0 (some dir) None
      & info [] ~docv:"DIR"
          ~doc:"Directory of $(b,.repro) bundles (see $(b,--repro-dir)).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the report as a JSON object instead of the table.")
  in
  let known =
    Arg.(
      value
      & opt (some file) None
      & info [ "known" ] ~docv:"FILE"
          ~doc:
            "A previous $(b,icb triage --json) output; clusters whose \
             fingerprints all miss it are flagged new, and their presence \
             makes the exit code 1 (a CI gate for regressions).")
  in
  let doc = "cluster a directory of repro bundles by bug" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Reads every bundle in the directory and groups them by bug key: \
         per cluster the distinct witness fingerprints, the models and \
         strategies that found it, and the smallest witness seen.  \
         Minimized bundles ($(b,icb repro min)) carry canonical \
         witnesses, so the same bug found by different strategies lands \
         on one fingerprint.  Corrupt files are listed, never fatal.  \
         With $(b,--known BASELINE) the exit code is 1 iff a new \
         cluster appeared.  See docs/REPRO.md.";
    ]
  in
  Cmd.v
    (Cmd.info "triage" ~doc ~man)
    Term.(const triage_run $ dir $ json $ known)

let () =
  let doc =
    "systematic testing of multithreaded models with iterative context \
     bounding (Musuvathi & Qadeer, PLDI 2007)"
  in
  let info = Cmd.info "icb" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            check_cmd;
            check_model_cmd;
            resume_cmd;
            explore_cmd;
            serve_cmd;
            worker_cmd;
            report_cmd;
            bench_cmd;
            compile_cmd;
            models_cmd;
            repro_cmd;
            triage_cmd;
          ]))
