(* Command-line interface to the checker.

   icb check FILE            -- iterative context bounding, stop at first bug
   icb resume CHECKPOINT     -- continue an interrupted check
   icb explore FILE          -- run a strategy, print statistics
   icb report TRACE          -- summarize a JSONL trace (per-bound table)
   icb bench [MODEL]         -- serial vs parallel ICB, assert equivalence
   icb compile FILE          -- type-check and dump the compiled program
   icb models                -- list bundled benchmark models
   icb check-model NAME      -- check a bundled model (e.g. "bluetooth:bug")

   check, check-model, resume and explore take --jobs N to shard the
   search across N OCaml domains; every strategy whose frontier shards
   (icb, dfs, db:N, idfs:N, random, pct:N) accepts it (docs/PARALLEL.md).
   The same four commands take --trace/--metrics/--metrics-every to
   stream structured telemetry and --quiet to silence the progress line
   (docs/OBSERVABILITY.md). *)

open Cmdliner
module Obs = Icb_obs

let load_program path = Icb.compile_file path

(* Bundled models are addressed as "<model>" or "<model>:<variant>"; the
   registry guarantees the names are collision-free. *)
let resolve_model name =
  match List.assoc_opt name (Icb_models.Registry.addressable ()) with
  | Some p -> Ok (p ())
  | None ->
    Error
      (Printf.sprintf "unknown model %S; run `icb models` for the list" name)

(* --- common options --------------------------------------------------------- *)

let bound_arg =
  let doc = "Maximum number of preemptions to explore (default 3)." in
  Arg.(value & opt int 3 & info [ "b"; "bound" ] ~docv:"BOUND" ~doc)

let no_deadlock_arg =
  let doc = "Do not treat deadlocks as bugs." in
  Arg.(value & flag & info [ "no-deadlock" ] ~doc)

let granularity_arg =
  let doc =
    "Scheduling granularity: $(b,sync) (scheduling points at \
     synchronization accesses only, with race checking — the CHESS \
     reduction) or $(b,every) (every shared access — the ZING behaviour)."
  in
  Arg.(
    value
    & opt (enum [ ("sync", `Sync); ("every", `Every) ]) `Sync
    & info [ "granularity" ] ~docv:"MODE" ~doc)

let timeout_arg =
  let doc =
    "Wall-clock budget in seconds.  When it expires the search stops with \
     a partial result (and writes a final checkpoint if $(b,--checkpoint) \
     is set) instead of running unbounded; continue later with $(b,icb \
     resume).  See docs/RESILIENCE.md."
  in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECS" ~doc)

let checkpoint_arg =
  let doc =
    "Write the search frontier and coverage counters to $(docv) (atomic \
     write-rename, versioned format) periodically and whenever the search \
     stops, so an interrupted run can be continued with $(b,icb resume)."
  in
  Arg.(
    value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)

let checkpoint_every_arg =
  let doc = "Executions between periodic checkpoint writes (default 500)." in
  Arg.(
    value
    & opt int Icb_search.Explore.default_checkpoint_every
    & info [ "checkpoint-every" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the search (default 1 = serial).  With $(docv) > \
     1 each round's work queue is sharded across $(docv) OCaml domains \
     with work stealing; the result (bug set, per-round execution \
     counts) is deterministic and identical to a serial run.  Available \
     for every strategy whose frontier shards: $(b,icb), $(b,dfs), \
     $(b,db:N), $(b,idfs:N), $(b,random) and $(b,pct:N); $(b,sleep) and \
     $(b,most-enabled) are serial-only.  See docs/PARALLEL.md."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let seed_arg =
  let doc =
    "Seed for the randomized strategies ($(b,random), $(b,pct:N)); \
     deterministic strategies ignore it.  The default 2007 keeps \
     historical runs reproducible."
  in
  Arg.(value & opt int64 2007L & info [ "seed" ] ~docv:"N" ~doc)

let progress_arg =
  let doc =
    "Print a progress line (current bound, frontier, executions/sec, \
     bugs, ETA) on stderr about once a second, plus a final summary \
     line.  On by default when stderr is a terminal; $(b,--quiet) wins."
  in
  Arg.(value & flag & info [ "progress" ] ~doc)

let quiet_arg =
  let doc =
    "Suppress the stderr progress line and informational hints.  Results, \
     warnings and errors still print."
  in
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc)

let trace_arg =
  let doc =
    "Append-free JSONL event trace of the run: one timestamped, \
     worker-tagged event per line (run/bound/item/execution/bug/\
     checkpoint), written to $(docv) and replayable with $(b,icb \
     report).  See docs/OBSERVABILITY.md."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Periodically write a metrics snapshot (counters, gauges, latency \
     histograms) to $(docv) — Prometheus text format, or JSON when \
     $(docv) ends in $(b,.json) — plus a final snapshot when the run \
     ends.  See $(b,--metrics-every) and docs/OBSERVABILITY.md."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let metrics_every_arg =
  let doc =
    "Seconds between $(b,--metrics) snapshots (default 5; 0 means only \
     the final snapshot)."
  in
  Arg.(value & opt float 5.0 & info [ "metrics-every" ] ~docv:"SECS" ~doc)

let config_of_granularity = function
  | `Sync -> Icb_search.Mach_engine.default_config
  | `Every -> Icb_search.Mach_engine.zing_config

let granularity_name = function `Sync -> "sync" | `Every -> "every"

(* Fail before the search starts, not hours into it when the first
   periodic write fires. *)
let validate_out_path what = function
  | None -> ()
  | Some path ->
    let dir = Filename.dirname path in
    if not (Sys.file_exists dir && Sys.is_directory dir) then begin
      Format.eprintf "cannot write %s to %s: %s is not an existing directory@."
        what path dir;
      exit 2
    end

let validate_checkpoint_path p = validate_out_path "checkpoints" p

(* The per-invocation observability state shared by check/check-model/
   resume/explore: the telemetry hub feeding --trace/--metrics sinks, the
   throttled stderr progress display, and the finisher that prints the
   unconditional final summary line and closes the sinks.  [rt_finish]
   must run before any [exit]. *)
type runtime = {
  rt_telemetry : Obs.Telemetry.t option;
  rt_on_progress : (Icb_search.Collector.progress -> unit) option;
  rt_quiet : bool;
  rt_finish : Icb_search.Sresult.t -> unit;
}

let make_runtime ?max_execs ~trace ~metrics ~metrics_every ~quiet ~progress
    ~timeout () =
  validate_out_path "the event trace" trace;
  validate_out_path "metrics" metrics;
  let telemetry =
    match (trace, metrics) with
    | None, None -> None
    | _ ->
      let t = Obs.Telemetry.create () in
      Option.iter (Obs.Telemetry.add_trace t) trace;
      Option.iter (Obs.Telemetry.add_metrics_dump t ~every:metrics_every)
        metrics;
      Some t
  in
  let started_at = Unix.gettimeofday () in
  let stat_of (p : Icb_search.Collector.progress) : Obs.Progress.stat =
    let rate =
      if p.p_elapsed > 0.0 then float_of_int p.p_executions /. p.p_elapsed
      else 0.0
    in
    let eta_timeout =
      Option.map
        (fun t -> t -. (Unix.gettimeofday () -. started_at))
        timeout
    in
    let eta_execs =
      match max_execs with
      | Some n when rate > 0.0 ->
        Some (float_of_int (n - p.p_executions) /. rate)
      | _ -> None
    in
    let eta =
      match (eta_timeout, eta_execs) with
      | Some a, Some b -> Some (Float.min a b)
      | (Some _ as e), None | None, (Some _ as e) -> e
      | None, None -> None
    in
    {
      Obs.Progress.executions = p.p_executions;
      states = p.p_states;
      bugs = p.p_bugs;
      elapsed = p.p_elapsed;
      bound = p.p_bound;
      frontier = p.p_frontier;
      eta = Option.map (fun e -> Float.max e 0.0) eta;
    }
  in
  let display =
    if (progress || Unix.isatty Unix.stderr) && not quiet then
      Some (Obs.Progress.create ())
    else None
  in
  let finish (r : Icb_search.Sresult.t) =
    (match display with
    | Some d ->
      Obs.Progress.finish d
        {
          Obs.Progress.executions = r.Icb_search.Sresult.executions;
          states = r.Icb_search.Sresult.distinct_states;
          bugs = List.length r.Icb_search.Sresult.bugs;
          elapsed = Unix.gettimeofday () -. started_at;
          bound = None;
          frontier = None;
          eta = None;
        }
    | None -> ());
    Option.iter Obs.Telemetry.close telemetry
  in
  {
    rt_telemetry = telemetry;
    rt_on_progress =
      Option.map (fun d p -> Obs.Progress.report d (stat_of p)) display;
    rt_quiet = quiet;
    rt_finish = finish;
  }

let options_of ~no_deadlock ~timeout rt =
  {
    Icb_search.Collector.default_options with
    deadlock_is_error = not no_deadlock;
    deadline = Option.map Icb_search.Collector.deadline_in timeout;
    on_progress = rt.rt_on_progress;
  }

(* --- check / check-model / resume ------------------------------------------- *)

let report_bug prog (bug : Icb.bug) =
  Format.printf "BUG FOUND (%d preemption%s):@.  %a@.@.trace:@." bug.preemptions
    (if bug.preemptions = 1 then "" else "s")
    Icb.pp_bug bug;
  List.iter (fun l -> Format.printf "  %s@." l) (Icb.explain prog bug)

(* Shared driver behind check, check-model and resume: ICB stopping at the
   first bug, with optional deadline and checkpointing.  Exit codes:
   0 no bug, 1 bug found, 2 usage error, 3 interrupted (partial result). *)
let run_check ~prog ~meta ~bound ~rt ~options ~gran ~checkpoint
    ~checkpoint_every ~resume_from ~jobs () =
  validate_checkpoint_path checkpoint;
  if jobs < 1 then begin
    Format.eprintf "--jobs must be at least 1@.";
    exit 2
  end;
  let config = config_of_granularity gran in
  let options =
    { options with Icb_search.Collector.stop_at_first_bug = true }
  in
  let telemetry = rt.rt_telemetry in
  let r =
    match resume_from with
    | Some ckpt ->
      Icb.resume ~config ~options ?checkpoint_out:checkpoint ~checkpoint_every
        ~checkpoint_meta:meta ?telemetry ~domains:jobs prog ckpt
    | None when jobs > 1 ->
      Icb.run_parallel ~config ~options ?checkpoint_out:checkpoint
        ~checkpoint_every ~checkpoint_meta:meta ?telemetry ~max_bound:bound
        ~cache:false ~domains:jobs prog
    | None ->
      Icb.run ~config ~options ?checkpoint_out:checkpoint ~checkpoint_every
        ~checkpoint_meta:meta ?telemetry
        ~strategy:
          (Icb_search.Explore.Icb { max_bound = Some bound; cache = false })
        prog
  in
  rt.rt_finish r;
  match r.Icb_search.Sresult.bugs with
  | bug :: _ ->
    report_bug prog bug;
    exit 1
  | [] -> (
    match r.Icb_search.Sresult.stop_reason with
    | None ->
      Format.printf "no bug found in executions with at most %d preemptions@."
        bound
    | Some reason ->
      Format.eprintf
        "search interrupted (%s) after %d executions, %d states — no bug so \
         far%s@."
        (Icb_search.Sresult.stop_reason_string reason)
        r.executions r.distinct_states
        (match checkpoint with
        | Some f when not rt.rt_quiet ->
          Printf.sprintf "; continue with `icb resume %s`" f
        | _ -> "");
      exit 3)

let check_run path bound seed no_deadlock gran timeout checkpoint
    checkpoint_every jobs progress trace metrics metrics_every quiet =
  match load_program path with
  | exception Icb.Compile_error msg ->
    Format.eprintf "%s@." msg;
    exit 2
  | prog ->
    let meta =
      [
        ("kind", "file");
        ("target", path);
        ("bound", string_of_int bound);
        ("seed", Int64.to_string seed);
        ("granularity", granularity_name gran);
        ("no-deadlock", string_of_bool no_deadlock);
      ]
    in
    let rt =
      make_runtime ~trace ~metrics ~metrics_every ~quiet ~progress ~timeout ()
    in
    run_check ~prog ~meta ~bound ~rt
      ~options:(options_of ~no_deadlock ~timeout rt)
      ~gran ~checkpoint ~checkpoint_every ~resume_from:None ~jobs ()

let check_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Model source file.")
  in
  let doc = "systematically test a model with iterative context bounding" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Explores thread schedules in increasing order of preempting \
         context switches, stopping at the first bug.  With \
         $(b,--timeout) and $(b,--checkpoint) the search is interruptible \
         and resumable; see docs/RESILIENCE.md for the checkpoint format \
         and guarantees.";
    ]
  in
  Cmd.v
    (Cmd.info "check" ~doc ~man)
    Term.(
      const check_run $ path $ bound_arg $ seed_arg $ no_deadlock_arg
      $ granularity_arg $ timeout_arg $ checkpoint_arg $ checkpoint_every_arg
      $ jobs_arg $ progress_arg $ trace_arg $ metrics_arg $ metrics_every_arg
      $ quiet_arg)

(* --- check-model -------------------------------------------------------------- *)

let check_model_run name bound seed no_deadlock gran timeout checkpoint
    checkpoint_every jobs progress trace metrics metrics_every quiet =
  match resolve_model name with
  | Error msg ->
    Format.eprintf "%s@." msg;
    exit 2
  | Ok prog ->
    let meta =
      [
        ("kind", "model");
        ("target", name);
        ("bound", string_of_int bound);
        ("seed", Int64.to_string seed);
        ("granularity", granularity_name gran);
        ("no-deadlock", string_of_bool no_deadlock);
      ]
    in
    let rt =
      make_runtime ~trace ~metrics ~metrics_every ~quiet ~progress ~timeout ()
    in
    run_check ~prog ~meta ~bound ~rt
      ~options:(options_of ~no_deadlock ~timeout rt)
      ~gran ~checkpoint ~checkpoint_every ~resume_from:None ~jobs ()

let check_model_cmd =
  let model_name =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"MODEL"
          ~doc:
            "Bundled model name as printed by $(b,icb models), e.g. \
             bluetooth:check-then-add-reference (or the single-bug alias \
             bluetooth:bug).")
  in
  let doc = "check one of the bundled benchmark models" in
  Cmd.v
    (Cmd.info "check-model" ~doc)
    Term.(
      const check_model_run $ model_name $ bound_arg $ seed_arg
      $ no_deadlock_arg $ granularity_arg $ timeout_arg $ checkpoint_arg
      $ checkpoint_every_arg $ jobs_arg $ progress_arg $ trace_arg
      $ metrics_arg $ metrics_every_arg $ quiet_arg)

(* --- resume ------------------------------------------------------------------- *)

let resume_run file timeout checkpoint checkpoint_every jobs progress trace
    metrics metrics_every quiet =
  match Icb_search.Checkpoint.load file with
  | exception Icb_search.Checkpoint.Corrupt msg ->
    Format.eprintf "%s@." msg;
    exit 2
  | ckpt -> (
    let meta k = Icb_search.Checkpoint.meta_find ckpt k in
    let missing what =
      Format.eprintf
        "checkpoint %s does not record %s (not written by `icb check`?)@."
        file what;
      exit 2
    in
    let prog =
      match (meta "kind", meta "target") with
      | Some "model", Some name -> (
        match resolve_model name with
        | Ok p -> p
        | Error msg ->
          Format.eprintf "%s@." msg;
          exit 2)
      | Some "file", Some path -> (
        match load_program path with
        | p -> p
        | exception Icb.Compile_error msg ->
          Format.eprintf "%s@." msg;
          exit 2
        | exception Sys_error msg ->
          Format.eprintf
            "cannot reload the checkpointed program: %s (the checkpoint \
             records the model by path; restore the file or rerun `icb \
             check`)@."
            msg;
          exit 2)
      | _ -> missing "how to rebuild the program"
    in
    let gran = if meta "granularity" = Some "every" then `Every else `Sync in
    let no_deadlock = meta "no-deadlock" = Some "true" in
    if not quiet then
      Format.eprintf "[icb] resuming %s@."
        (Icb_search.Checkpoint.describe ckpt);
    (* Checkpoints written by `icb explore --checkpoint` carry the
       strategy in the file itself, not a preemption bound; resume them
       with explore's reporting (full search, no first-bug stop). *)
    if meta "mode" = Some "explore" then begin
      if jobs < 1 then begin
        Format.eprintf "--jobs must be at least 1@.";
        exit 2
      end;
      let config = config_of_granularity gran in
      (* The original run's --max-executions is recorded in the file;
         without it a resumed randomized strategy would run to its hard
         walk cap rather than the horizon the user asked for. *)
      let max_execs = Option.bind (meta "max-executions") int_of_string_opt in
      let rt =
        make_runtime ?max_execs ~trace ~metrics ~metrics_every ~quiet
          ~progress ~timeout ()
      in
      let options =
        {
          (options_of ~no_deadlock ~timeout rt) with
          Icb_search.Collector.max_executions = max_execs;
        }
      in
      let r =
        try
          Icb.resume ~config ~options
            ~checkpoint_out:(Option.value checkpoint ~default:file)
            ~checkpoint_every ?telemetry:rt.rt_telemetry ~domains:jobs prog
            ckpt
        with Invalid_argument msg ->
          Format.eprintf "%s@." msg;
          exit 2
      in
      rt.rt_finish r;
      Format.printf "%a@." Icb_search.Sresult.pp_summary r;
      List.iter
        (fun (bug : Icb.bug) -> Format.printf "@.%a@." Icb.pp_bug bug)
        r.Icb_search.Sresult.bugs;
      exit (if r.bugs <> [] then 1 else 0)
    end;
    let bound =
      match Option.bind (meta "bound") int_of_string_opt with
      | Some b -> b
      | None -> missing "the preemption bound"
    in
    let rt =
      make_runtime ~trace ~metrics ~metrics_every ~quiet ~progress ~timeout ()
    in
    run_check ~prog
      ~meta:
        (List.filter_map
           (fun k -> Option.map (fun v -> (k, v)) (meta k))
           [ "kind"; "target"; "bound"; "seed"; "granularity"; "no-deadlock" ])
      ~bound ~rt
      ~options:(options_of ~no_deadlock ~timeout rt)
      ~gran
      ~checkpoint:(Some (Option.value checkpoint ~default:file))
      ~checkpoint_every ~resume_from:(Some ckpt) ~jobs ())

let resume_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"CHECKPOINT"
          ~doc:"Checkpoint file written by $(b,icb check --checkpoint).")
  in
  let doc = "continue an interrupted check from a checkpoint" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Loads a checkpoint written by $(b,icb check --checkpoint FILE) or \
         $(b,icb check-model --checkpoint FILE), rebuilds the program it \
         records, and continues the search exactly where it stopped: same \
         work queue, context bound, coverage counters and bug list.  By \
         default new checkpoints overwrite the same file, so a run can be \
         interrupted and resumed any number of times.  Truncated or \
         corrupted checkpoints are rejected with a clear error.  See \
         docs/RESILIENCE.md.";
    ]
  in
  Cmd.v
    (Cmd.info "resume" ~doc ~man)
    Term.(
      const resume_run $ file $ timeout_arg $ checkpoint_arg
      $ checkpoint_every_arg $ jobs_arg $ progress_arg $ trace_arg
      $ metrics_arg $ metrics_every_arg $ quiet_arg)

(* --- explore ------------------------------------------------------------------ *)

(* The one list every accepted --strategy spelling comes from; the help
   text and the parse error both render it so they cannot drift apart. *)
let strategy_forms =
  [
    ("icb", "iterative context bounding, unbounded");
    ("icb:N", "iterative context bounding up to N preemptions");
    ("dfs", "plain depth-first search");
    ("db:N", "depth-bounded DFS");
    ("idfs:N", "iterative deepening DFS to depth N");
    ("random", "random walks (see --seed)");
    ("sleep", "DFS with sleep-set partial-order reduction");
    ("pct:N", "probabilistic concurrency testing, N change points");
    ("most-enabled", "best-first by enabled-thread count");
  ]

let strategy_arg =
  let doc =
    "Search strategy: "
    ^ String.concat ", "
        (List.map
           (fun (form, what) -> Printf.sprintf "$(b,%s) (%s)" form what)
           strategy_forms)
    ^ "."
  in
  Arg.(value & opt string "icb" & info [ "s"; "strategy" ] ~docv:"STRATEGY" ~doc)

let max_execs_arg =
  let doc = "Stop after N executions." in
  Arg.(
    value & opt (some int) None & info [ "max-executions" ] ~docv:"N" ~doc)

let parse_strategy ~seed s =
  let starts_with prefix =
    String.length s > String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  let suffix_int prefix =
    int_of_string_opt
      (String.sub s (String.length prefix) (String.length s - String.length prefix))
  in
  let bad () =
    Error
      (Printf.sprintf "bad strategy: %s (accepted: %s)" s
         (String.concat ", " (List.map fst strategy_forms)))
  in
  match s with
  | "icb" -> Ok (Icb_search.Explore.Icb { max_bound = None; cache = true })
  | "dfs" -> Ok (Icb_search.Explore.Dfs { cache = true })
  | "random" -> Ok (Icb_search.Explore.Random_walk { seed })
  | "sleep" -> Ok Icb_search.Explore.Sleep_dfs
  | "most-enabled" -> Ok (Icb_search.Explore.Most_enabled { cache = true })
  | _ when starts_with "icb:" -> (
    match suffix_int "icb:" with
    | Some b -> Ok (Icb_search.Explore.Icb { max_bound = Some b; cache = true })
    | None -> bad ())
  | _ when starts_with "db:" -> (
    match suffix_int "db:" with
    | Some d -> Ok (Icb_search.Explore.Bounded_dfs { depth = d; cache = true })
    | None -> bad ())
  | _ when starts_with "pct:" -> (
    match suffix_int "pct:" with
    | Some d -> Ok (Icb_search.Explore.Pct { change_points = d; seed })
    | None -> bad ())
  | _ when starts_with "idfs:" -> (
    match suffix_int "idfs:" with
    | Some d ->
      Ok
        (Icb_search.Explore.Iterative_dfs
           { start = 10; incr = 10; max_depth = d; cache = true })
    | None -> bad ())
  | _ -> bad ()

let explore_run path strategy_str seed no_deadlock gran max_execs timeout
    checkpoint checkpoint_every jobs progress trace metrics metrics_every
    quiet =
  match load_program path, parse_strategy ~seed strategy_str with
  | exception Icb.Compile_error msg ->
    Format.eprintf "%s@." msg;
    exit 2
  | _, Error msg ->
    Format.eprintf "%s@." msg;
    exit 2
  | prog, Ok strategy ->
    validate_checkpoint_path checkpoint;
    if jobs < 1 then begin
      Format.eprintf "--jobs must be at least 1@.";
      exit 2
    end;
    let config = config_of_granularity gran in
    let rt =
      make_runtime ?max_execs ~trace ~metrics ~metrics_every ~quiet ~progress
        ~timeout ()
    in
    let options =
      {
        (options_of ~no_deadlock ~timeout rt) with
        Icb_search.Collector.max_executions = max_execs;
      }
    in
    let meta =
      [
        ("mode", "explore");
        ("kind", "file");
        ("target", path);
        ("strategy", strategy_str);
        ("seed", Int64.to_string seed);
        ("granularity", granularity_name gran);
        ("no-deadlock", string_of_bool no_deadlock);
      ]
      @
      match max_execs with
      | Some n -> [ ("max-executions", string_of_int n) ]
      | None -> []
    in
    (* Non-shardable strategies (sleep, most-enabled) reject --jobs > 1
       in the driver with a message naming the ones that do shard, and
       sleep rejects --checkpoint the same way. *)
    let r =
      try
        Icb.run ~config ~options ?checkpoint_out:checkpoint ~checkpoint_every
          ~checkpoint_meta:meta ?telemetry:rt.rt_telemetry ~domains:jobs
          ~strategy prog
      with Invalid_argument msg ->
        Format.eprintf "%s@." msg;
        exit 2
    in
    rt.rt_finish r;
    Format.printf "%a@." Icb_search.Sresult.pp_summary r;
    List.iter
      (fun (bug : Icb.bug) ->
        Format.printf "@.%a@." Icb.pp_bug bug)
      r.Icb_search.Sresult.bugs;
    (match (r.Icb_search.Sresult.stop_reason, checkpoint) with
    | Some _, Some f when not quiet ->
      Format.eprintf "continue with `icb resume %s`@." f
    | _ -> ());
    if r.bugs <> [] then exit 1

let explore_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Model source file.")
  in
  let doc = "explore a model's state space with a chosen strategy" in
  Cmd.v
    (Cmd.info "explore" ~doc)
    Term.(
      const explore_run $ path $ strategy_arg $ seed_arg $ no_deadlock_arg
      $ granularity_arg $ max_execs_arg $ timeout_arg $ checkpoint_arg
      $ checkpoint_every_arg $ jobs_arg $ progress_arg $ trace_arg
      $ metrics_arg $ metrics_every_arg $ quiet_arg)

(* --- report ------------------------------------------------------------------- *)

let report_run file json =
  match Obs.Trace.read file with
  | exception Sys_error msg ->
    Format.eprintf "%s@." msg;
    exit 2
  | exception Failure msg ->
    Format.eprintf "%s@." msg;
    exit 2
  | events ->
    let s = Obs.Trace.summarize events in
    if json then print_endline (Obs.Json.to_string (Obs.Trace.to_json s))
    else Format.printf "%a@." Obs.Trace.pp_report s

let report_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE"
          ~doc:"JSONL event trace written by $(b,--trace).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the summary as a JSON object instead of the table.")
  in
  let doc = "summarize a JSONL event trace" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Replays a trace written by $(b,icb check --trace) (or check-model/\
         resume/explore) into a per-bound coverage table — executions per \
         context bound, cumulative counts, and the bugs found at each \
         bound, the shape of the paper's Table 2 — plus run totals and \
         outcome.  The per-bound cumulative counts reproduce the \
         collector's own curve exactly, serial or parallel.  Corrupt or \
         truncated traces are rejected with the offending line.  See \
         docs/OBSERVABILITY.md.";
    ]
  in
  Cmd.v (Cmd.info "report" ~doc ~man) Term.(const report_run $ file $ json)

(* --- bench -------------------------------------------------------------------- *)

(* Serial-vs-parallel comparison on a bundled model: runs the full ICB
   search (no first-bug stop) both ways, prints the rates, and asserts
   the determinism contract — identical bug sets and per-bound cumulative
   execution counts.  Exit code 1 means the contract was violated. *)
let bench_run name bound no_deadlock gran jobs =
  match resolve_model name with
  | Error msg ->
    Format.eprintf "%s@." msg;
    exit 2
  | Ok prog ->
    if jobs < 1 then begin
      Format.eprintf "--jobs must be at least 1@.";
      exit 2
    end;
    let config = config_of_granularity gran in
    let options =
      {
        Icb_search.Collector.default_options with
        deadlock_is_error = not no_deadlock;
      }
    in
    let time f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. t0)
    in
    let serial, t_serial =
      time (fun () ->
          Icb.run ~config ~options
            ~strategy:
              (Icb_search.Explore.Icb { max_bound = Some bound; cache = false })
            prog)
    in
    let par, t_par =
      time (fun () ->
          Icb.run_parallel ~config ~options ~max_bound:bound ~domains:jobs
            prog)
    in
    let line what (r : Icb_search.Sresult.t) t =
      Format.printf
        "%-12s %8d executions %8d states %3d bugs  %6.2fs  %8.0f execs/s@."
        what r.executions r.distinct_states (List.length r.bugs) t
        (float_of_int r.executions /. max t 1e-9)
    in
    Format.printf "model %s, bound %d, %d core(s) available@." name bound
      (Domain.recommended_domain_count ());
    line "serial" serial t_serial;
    line (Printf.sprintf "%d domains" jobs) par t_par;
    let keys (r : Icb_search.Sresult.t) =
      List.sort compare
        (List.map (fun (b : Icb.bug) -> b.Icb_search.Sresult.key) r.bugs)
    in
    let ok =
      keys serial = keys par
      && serial.bound_executions = par.bound_executions
      && serial.executions = par.executions
    in
    if ok then Format.printf "equivalence: OK@."
    else begin
      Format.eprintf
        "equivalence FAILED: parallel run diverged from serial (bug sets or \
         per-bound execution counts differ)@.";
      exit 1
    end

let bench_cmd =
  let model_name =
    Arg.(
      value
      & pos 0 string "work-stealing-queue:pop-reads-head-first"
      & info [] ~docv:"MODEL"
          ~doc:
            "Bundled model to benchmark (a name printed by $(b,icb \
             models)).")
  in
  let doc = "compare serial and parallel ICB on a bundled model" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the full iterative-context-bounding search on a bundled \
         model twice — serially and on $(b,--jobs) OCaml domains — and \
         prints executions/second for both, then asserts that the two \
         runs found the same bug set and the same per-bound execution \
         counts (the determinism contract; see docs/PARALLEL.md).  The \
         wider equivalence suite lives in $(b,bench/main.exe parallel).";
    ]
  in
  Cmd.v
    (Cmd.info "bench" ~doc ~man)
    Term.(
      const bench_run $ model_name $ bound_arg $ no_deadlock_arg
      $ granularity_arg $ jobs_arg)

(* --- compile ------------------------------------------------------------------ *)

let compile_run path =
  match load_program path with
  | exception Icb.Compile_error msg ->
    Format.eprintf "%s@." msg;
    exit 2
  | prog -> Format.printf "%a@." Icb.Machine.Prog.pp prog

let compile_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Model source file.")
  in
  let doc = "type-check a model and dump the compiled instructions" in
  Cmd.v (Cmd.info "compile" ~doc) Term.(const compile_run $ path)

(* --- models ------------------------------------------------------------------- *)

let models_run () =
  Format.printf
    "bundled models (exact addressable names, use with check-model):@.";
  List.iter
    (fun (name, _) -> Format.printf "  %s@." name)
    (Icb_models.Registry.addressable ())

let models_cmd =
  let doc = "list the bundled benchmark models" in
  Cmd.v (Cmd.info "models" ~doc) Term.(const models_run $ const ())

let () =
  let doc =
    "systematic testing of multithreaded models with iterative context \
     bounding (Musuvathi & Qadeer, PLDI 2007)"
  in
  let info = Cmd.info "icb" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            check_cmd;
            check_model_cmd;
            resume_cmd;
            explore_cmd;
            report_cmd;
            bench_cmd;
            compile_cmd;
            models_cmd;
          ]))
