(* Command-line interface to the checker.

   icb check FILE            -- iterative context bounding, stop at first bug
   icb explore FILE          -- run a strategy, print statistics
   icb compile FILE          -- type-check and dump the compiled program
   icb models                -- list bundled benchmark models
   icb check-model NAME      -- check a bundled model (e.g. "bluetooth:bug") *)

open Cmdliner

let load_program path = Icb.compile_file path

(* Bundled models are addressed as "<model>" or "<model>:<variant>". *)
let bundled_programs () =
  List.concat_map
    (fun (e : Icb_models.Registry.entry) ->
      let base = String.lowercase_ascii e.model_name in
      let base =
        String.map (fun c -> if c = ' ' then '-' else c) base
      in
      let correct =
        match e.correct_program with
        | Some p -> [ (base, p) ]
        | None -> []
      in
      correct
      @ List.map
          (fun (b : Icb_models.Registry.bug_spec) ->
            (* the registry's display names can contain spaces; address
               bugs by their first token *)
            let short =
              match String.index_opt b.bug_name ' ' with
              | Some i -> String.sub b.bug_name 0 i
              | None -> b.bug_name
            in
            (base ^ ":" ^ short, b.bug_program))
          e.bugs)
    Icb_models.Registry.all

let resolve_model name =
  match List.assoc_opt name (bundled_programs ()) with
  | Some p -> Ok (p ())
  | None ->
    Error
      (Printf.sprintf "unknown model %S; run `icb models` for the list" name)

(* --- common options --------------------------------------------------------- *)

let bound_arg =
  let doc = "Maximum number of preemptions to explore (default 3)." in
  Arg.(value & opt int 3 & info [ "b"; "bound" ] ~docv:"BOUND" ~doc)

let no_deadlock_arg =
  let doc = "Do not treat deadlocks as bugs." in
  Arg.(value & flag & info [ "no-deadlock" ] ~doc)

let granularity_arg =
  let doc =
    "Scheduling granularity: $(b,sync) (scheduling points at \
     synchronization accesses only, with race checking — the CHESS \
     reduction) or $(b,every) (every shared access — the ZING behaviour)."
  in
  Arg.(
    value
    & opt (enum [ ("sync", `Sync); ("every", `Every) ]) `Sync
    & info [ "granularity" ] ~docv:"MODE" ~doc)

let config_of_granularity = function
  | `Sync -> Icb_search.Mach_engine.default_config
  | `Every -> Icb_search.Mach_engine.zing_config

let options_of ~no_deadlock =
  { Icb_search.Collector.default_options with deadlock_is_error = not no_deadlock }

(* --- check ------------------------------------------------------------------ *)

let report_bug prog (bug : Icb.bug) =
  Format.printf "BUG FOUND (%d preemption%s):@.  %a@.@.trace:@." bug.preemptions
    (if bug.preemptions = 1 then "" else "s")
    Icb.pp_bug bug;
  List.iter (fun l -> Format.printf "  %s@." l) (Icb.explain prog bug)

let check_run path bound no_deadlock gran =
  match load_program path with
  | exception Icb.Compile_error msg ->
    Format.eprintf "%s@." msg;
    exit 2
  | prog -> (
    let config = config_of_granularity gran in
    let options = options_of ~no_deadlock in
    match Icb.check ~config ~options ~max_bound:bound prog with
    | Some bug ->
      report_bug prog bug;
      exit 1
    | None ->
      Format.printf "no bug found in executions with at most %d preemptions@."
        bound)

let check_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Model source file.")
  in
  let doc = "systematically test a model with iterative context bounding" in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(const check_run $ path $ bound_arg $ no_deadlock_arg $ granularity_arg)

(* --- check-model -------------------------------------------------------------- *)

let check_model_run name bound no_deadlock gran =
  match resolve_model name with
  | Error msg ->
    Format.eprintf "%s@." msg;
    exit 2
  | Ok prog -> (
    let config = config_of_granularity gran in
    let options = options_of ~no_deadlock in
    match Icb.check ~config ~options ~max_bound:bound prog with
    | Some bug ->
      report_bug prog bug;
      exit 1
    | None ->
      Format.printf "no bug found in executions with at most %d preemptions@."
        bound)

let check_model_cmd =
  let model_name =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"MODEL" ~doc:"Bundled model name, e.g. bluetooth:check-then-add-reference.")
  in
  let doc = "check one of the bundled benchmark models" in
  Cmd.v
    (Cmd.info "check-model" ~doc)
    Term.(
      const check_model_run $ model_name $ bound_arg $ no_deadlock_arg
      $ granularity_arg)

(* --- explore ------------------------------------------------------------------ *)

let strategy_arg =
  let doc =
    "Search strategy: $(b,icb), $(b,dfs), $(b,db:N) (depth-bounded), \
     $(b,idfs:N) (iterative deepening to N), $(b,random), $(b,sleep) \
     (DFS with sleep-set partial-order reduction), $(b,pct:D) \
     (probabilistic concurrency testing with D change points), or \
     $(b,most-enabled) (best-first by enabled-thread count)."
  in
  Arg.(value & opt string "icb" & info [ "s"; "strategy" ] ~docv:"STRATEGY" ~doc)

let max_execs_arg =
  let doc = "Stop after N executions." in
  Arg.(
    value & opt (some int) None & info [ "max-executions" ] ~docv:"N" ~doc)

let parse_strategy s =
  let starts_with prefix =
    String.length s > String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  let suffix_int prefix =
    int_of_string_opt
      (String.sub s (String.length prefix) (String.length s - String.length prefix))
  in
  match s with
  | "icb" -> Ok (Icb_search.Explore.Icb { max_bound = None; cache = true })
  | "dfs" -> Ok (Icb_search.Explore.Dfs { cache = true })
  | "random" -> Ok (Icb_search.Explore.Random_walk { seed = 2007L })
  | "sleep" -> Ok Icb_search.Explore.Sleep_dfs
  | "most-enabled" -> Ok (Icb_search.Explore.Most_enabled { cache = true })
  | _ when starts_with "icb:" -> (
    match suffix_int "icb:" with
    | Some b -> Ok (Icb_search.Explore.Icb { max_bound = Some b; cache = true })
    | None -> Error ("bad strategy: " ^ s))
  | _ when starts_with "db:" -> (
    match suffix_int "db:" with
    | Some d -> Ok (Icb_search.Explore.Bounded_dfs { depth = d; cache = true })
    | None -> Error ("bad strategy: " ^ s))
  | _ when starts_with "pct:" -> (
    match suffix_int "pct:" with
    | Some d ->
      Ok (Icb_search.Explore.Pct { change_points = d; seed = 2007L })
    | None -> Error ("bad strategy: " ^ s))
  | _ when starts_with "idfs:" -> (
    match suffix_int "idfs:" with
    | Some d ->
      Ok
        (Icb_search.Explore.Iterative_dfs
           { start = 10; incr = 10; max_depth = d; cache = true })
    | None -> Error ("bad strategy: " ^ s))
  | _ -> Error ("bad strategy: " ^ s)

let explore_run path strategy no_deadlock gran max_execs =
  match load_program path, parse_strategy strategy with
  | exception Icb.Compile_error msg ->
    Format.eprintf "%s@." msg;
    exit 2
  | _, Error msg ->
    Format.eprintf "%s@." msg;
    exit 2
  | prog, Ok strategy ->
    let config = config_of_granularity gran in
    let options =
      {
        (options_of ~no_deadlock) with
        Icb_search.Collector.max_executions = max_execs;
      }
    in
    let r = Icb.run ~config ~options ~strategy prog in
    Format.printf "%a@." Icb_search.Sresult.pp_summary r;
    List.iter
      (fun (bug : Icb.bug) ->
        Format.printf "@.%a@." Icb.pp_bug bug)
      r.Icb_search.Sresult.bugs;
    if r.bugs <> [] then exit 1

let explore_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Model source file.")
  in
  let doc = "explore a model's state space with a chosen strategy" in
  Cmd.v
    (Cmd.info "explore" ~doc)
    Term.(
      const explore_run $ path $ strategy_arg $ no_deadlock_arg
      $ granularity_arg $ max_execs_arg)

(* --- compile ------------------------------------------------------------------ *)

let compile_run path =
  match load_program path with
  | exception Icb.Compile_error msg ->
    Format.eprintf "%s@." msg;
    exit 2
  | prog -> Format.printf "%a@." Icb.Machine.Prog.pp prog

let compile_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Model source file.")
  in
  let doc = "type-check a model and dump the compiled instructions" in
  Cmd.v (Cmd.info "compile" ~doc) Term.(const compile_run $ path)

(* --- models ------------------------------------------------------------------- *)

let models_run () =
  Format.printf "bundled models (use with check-model):@.";
  List.iter
    (fun (name, _) -> Format.printf "  %s@." name)
    (bundled_programs ())

let models_cmd =
  let doc = "list the bundled benchmark models" in
  Cmd.v (Cmd.info "models" ~doc) Term.(const models_run $ const ())

let () =
  let doc =
    "systematic testing of multithreaded models with iterative context \
     bounding (Musuvathi & Qadeer, PLDI 2007)"
  in
  let info = Cmd.info "icb" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ check_cmd; check_model_cmd; explore_cmd; compile_cmd; models_cmd ]))
