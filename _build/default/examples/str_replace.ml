(* Minimal string substitution helper for the examples (no external deps). *)

let all s ~needle ~by =
  let nl = String.length needle in
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  while !i < String.length s do
    if !i + nl <= String.length s && String.sub s !i nl = needle then begin
      Buffer.add_string buf by;
      i := !i + nl
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf
