examples/explore_wsq.mli:
