examples/philosophers.ml: Format Icb Icb_search List Printf Str_replace String
