examples/explore_wsq.ml: Array Format Icb Icb_models Icb_search List
