examples/bank_account.ml: Format Icb Printf
