examples/philosophers.mli:
