examples/quickstart.mli:
