examples/effects_testing.ml: Format Icb_chess Icb_search List
