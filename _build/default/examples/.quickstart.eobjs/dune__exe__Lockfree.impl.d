examples/lockfree.ml: Format Icb_chess Icb_lockfree Icb_search List
