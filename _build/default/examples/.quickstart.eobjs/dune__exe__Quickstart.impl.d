examples/quickstart.ml: Format Icb List
