examples/effects_testing.mli:
