examples/lockfree.mli:
