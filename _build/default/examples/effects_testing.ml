(* Testing real OCaml code with the effects-based CHESS runtime.

     dune exec examples/effects_testing.exe

   The code under test is ordinary OCaml written against the shim
   primitives in [Icb_chess.Api]; the checker reruns it under every
   relevant schedule.  Here: a small producer/consumer queue whose
   condition signalling is wrong in an easy-to-write way. *)

module Api = Icb_chess.Api
module CE = Icb_chess.Chess_engine

(* A one-slot mailbox.  [buggy = true] guards the slot with a
   manual-reset event that the producer clears only after filling the
   slot: both producers can sail through [wait] before either resets, and
   the second overwrites the unconsumed message.  The correct variant
   uses an auto-reset event, whose wait consumes the permit atomically. *)
let mailbox_test ~buggy () =
  let slot = Api.Data.make None in
  let m = Api.Mutex.create () in
  let slot_free = Api.Event.create ~manual:buggy ~signaled:true () in
  let slot_full = Api.Semaphore.create 0 in
  let produced = Api.Semaphore.create 0 in
  let produce v =
    Api.Event.wait slot_free;
    Api.Mutex.with_lock m (fun () ->
        (match Api.Data.get slot with
        | None -> Api.Data.set slot (Some v)
        | Some _ -> failwith "overwrote an unconsumed message");
        (* the manual-reset variant clears the permit too late *)
        if buggy then Api.Event.reset slot_free);
    Api.Semaphore.release slot_full
  in
  let consume () =
    Api.Semaphore.acquire slot_full;
    Api.Mutex.with_lock m (fun () ->
        (match Api.Data.get slot with
        | Some _ -> Api.Data.set slot None
        | None -> failwith "consumed an empty slot");
        Api.Event.set slot_free)
  in
  for v = 1 to 2 do
    Api.spawn (fun () ->
        produce v;
        Api.Semaphore.release produced)
  done;
  Api.spawn (fun () ->
      consume ();
      consume ();
      Api.Semaphore.release produced);
  Api.Semaphore.acquire produced;
  Api.Semaphore.acquire produced;
  Api.Semaphore.acquire produced

let () =
  (match CE.check (mailbox_test ~buggy:true) with
  | Some bug ->
    Format.printf "buggy mailbox: %s (needs %d preemption(s))@."
      bug.Icb_search.Sresult.msg bug.preemptions
  | None -> Format.printf "buggy mailbox: no bug found?!@.");
  let r =
    CE.run
      ~strategy:(Icb_search.Explore.Icb { max_bound = Some 2; cache = false })
      (mailbox_test ~buggy:false)
  in
  Format.printf
    "fixed mailbox: %d executions with <= 2 preemptions, %d bugs \
     (stateless replays so far: %d)@."
    r.Icb_search.Sresult.executions
    (List.length r.bugs)
    (CE.replays ())
