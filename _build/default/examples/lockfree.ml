(* Verifying lock-free data structures.

     dune exec examples/lockfree.exe

   Treiber's stack and the Michael-Scott queue are implemented in
   [lib/lockfree] against the shim primitives; this driver explores their
   schedules with ICB and shows a seeded publication bug being caught at
   its minimal preemption count. *)

module Api = Icb_chess.Api
module CE = Icb_chess.Chess_engine
module Treiber = Icb_lockfree.Treiber
module Msqueue = Icb_lockfree.Msqueue

let stack_test ~push () =
  let s = Treiber.create () in
  let d = Api.Semaphore.create 0 in
  Api.spawn (fun () -> push s 1; Api.Semaphore.release d);
  Api.spawn (fun () -> push s 2; Api.Semaphore.release d);
  Api.Semaphore.acquire d;
  Api.Semaphore.acquire d;
  let a = Treiber.pop s in
  let b = Treiber.pop s in
  match List.sort compare [ a; b ] with
  | [ Some 1; Some 2 ] -> ()
  | _ -> failwith "a concurrent push was lost"

let queue_test ~enqueue () =
  let q = Msqueue.create () in
  let d = Api.Semaphore.create 0 in
  Api.spawn (fun () -> enqueue q 1; Api.Semaphore.release d);
  Api.spawn (fun () -> enqueue q 2; Api.Semaphore.release d);
  Api.Semaphore.acquire d;
  Api.Semaphore.acquire d;
  let a = Msqueue.dequeue q in
  let b = Msqueue.dequeue q in
  match List.sort compare [ a; b ] with
  | [ Some 1; Some 2 ] -> ()
  | _ -> failwith "a concurrent enqueue was lost"

let report name outcome =
  match outcome with
  | None -> Format.printf "%-28s verified (all schedules to bound 2)@." name
  | Some (b : Icb_search.Sresult.bug) ->
    Format.printf "%-28s BUG at %d preemption(s): %s@." name b.preemptions
      b.msg

let () =
  report "Treiber stack" (CE.check ~max_bound:2 (stack_test ~push:Treiber.push));
  report "Treiber stack (broken push)"
    (CE.check ~max_bound:2 (stack_test ~push:Treiber.Broken.push));
  report "Michael-Scott queue"
    (CE.check ~max_bound:2 (queue_test ~enqueue:Msqueue.enqueue));
  report "MS queue (broken enqueue)"
    (CE.check ~max_bound:2 (queue_test ~enqueue:Msqueue.Broken.enqueue))
