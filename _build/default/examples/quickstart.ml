(* Quickstart: write a model, check it, read the counterexample.

     dune exec examples/quickstart.exe

   The model is the paper's introductory scenario: a worker enters the
   driver while a stopper tears it down.  `Icb.check` explores schedules
   in increasing order of preempting context switches and reports the
   first failing one — which is therefore a simplest explanation of the
   bug. *)

let model =
  {|
// A device driver: stop() must wait until in-flight work drains.
var inFlight: int = 0;
volatile var stopping: bool = false;
volatile var stopped: bool = false;
mutex m;

proc worker() {
  // check-then-act: the flag read and the registration are not atomic
  if (!stopping) {
    lock(m);
    inFlight = inFlight + 1;
    unlock(m);
    assert(!stopped, "worked on a stopped driver");
    lock(m);
    inFlight = inFlight - 1;
    unlock(m);
  }
}

proc stopper() {
  stopping = true;
  var n: int;
  lock(m);
  n = inFlight;
  unlock(m);
  if (n == 0) {
    stopped = true;
  }
}

main {
  spawn worker();
  spawn stopper();
}
|}

let () =
  let prog = Icb.compile model in
  match Icb.check prog with
  | None -> print_endline "no bug found up to 3 preemptions"
  | Some bug ->
    Format.printf
      "Found a bug needing %d preemption(s) — the minimal number:@.@.  %a@.@.\
       How it happens:@."
      bug.preemptions Icb.pp_bug bug;
    List.iter (fun l -> Format.printf "  %s@." l) (Icb.explain prog bug)
