(* Exploring the work-stealing queue, the paper's running example.

     dune exec examples/explore_wsq.exe

   Compares how fast each search strategy covers the queue's state space,
   and shows ICB finding the three seeded bugs at their minimal preemption
   counts — the paper's Section 2.1 in miniature. *)

module WS = Icb_models.Workstealing
module Explore = Icb_search.Explore
module Collector = Icb_search.Collector

let () =
  let correct = WS.program WS.Correct in
  Format.printf "state-space coverage by context bound (correct variant):@.";
  let r =
    Icb.run correct ~strategy:(Explore.Icb { max_bound = None; cache = true })
  in
  let total = r.Icb_search.Sresult.distinct_states in
  Array.iter
    (fun (bound, states) ->
      Format.printf "  bound %d: %5d / %d states (%.0f%%)@." bound states total
        (100. *. float_of_int states /. float_of_int total))
    r.bound_coverage;
  Format.printf "@.strategies at a budget of 500 executions:@.";
  List.iter
    (fun strategy ->
      let r =
        Icb.run correct ~strategy
          ~options:
            { Collector.default_options with max_executions = Some 500 }
      in
      Format.printf "  %-8s %5d states@."
        (Explore.strategy_name strategy)
        r.Icb_search.Sresult.distinct_states)
    [
      Explore.Icb { max_bound = None; cache = false };
      Explore.Dfs { cache = false };
      Explore.Bounded_dfs { depth = 20; cache = false };
      Explore.Random_walk { seed = 42L };
    ];
  Format.printf "@.the three seeded bugs and their minimal preemption counts:@.";
  List.iter
    (fun variant ->
      match variant with
      | WS.Correct -> ()
      | _ -> (
        match Icb.check (WS.program variant) ~max_bound:3 with
        | Some bug ->
          Format.printf "  %-25s -> %d preemption(s): %s@."
            (WS.variant_name variant) bug.preemptions bug.msg
        | None ->
          Format.printf "  %-25s -> not found within 3 preemptions@."
            (WS.variant_name variant)))
    WS.variants
