(* Dining philosophers: deadlock detection and the lock-ordering fix.

     dune exec examples/philosophers.exe

   A deadlock is a terminal state where unfinished threads remain.  One
   preemption suffices: two philosophers must be interrupted right after
   their first fork, and the rest of the circular wait chains up through
   blocking (non-preempting) switches for free — ICB finds exactly that
   minimal trace.  The ordered
   variant (every philosopher takes the lower-numbered fork first) is
   verified deadlock-free over its entire state space. *)

let model ~ordered ~n =
  let pick_forks =
    if ordered then
      {|
  var first: int;
  var second: int;
  first = id;
  second = (id + 1) % NPHIL;
  if (second < first) {
    var tmp: int = first;
    first = second;
    second = tmp;
  }
  lock(forks[first]);
  lock(forks[second]);
|}
    else {|
  lock(forks[id]);
  lock(forks[(id + 1) % NPHIL]);
|}
  in
  let src =
    Printf.sprintf
      {|
var meals: int = 0;
mutex forks[NPHIL];
mutex table;
event manual done_[NPHIL];

proc philosopher(id: int) {
%s
  // eat
  lock(table);
  meals = meals + 1;
  unlock(table);
  unlock(forks[id]);
  unlock(forks[(id + 1) %% NPHIL]);
  signal(done_[id]);
}

main {
  var i: int = 0;
  while (i < NPHIL) {
    spawn philosopher(i);
    i = i + 1;
  }
  i = 0;
  while (i < NPHIL) {
    wait(done_[i]);
    i = i + 1;
  }
  var m: int;
  lock(table);
  m = meals;
  unlock(table);
  assert(m == NPHIL, "somebody did not eat");
}
|}
      pick_forks
  in
  (* a tiny preprocessor beats repeating the constant everywhere *)
  Str_replace.all src ~needle:"NPHIL" ~by:(string_of_int n)

let () =
  let n = 3 in
  let naive = Icb.compile (model ~ordered:false ~n) in
  (match Icb.check naive with
  | Some bug ->
    Format.printf
      "naive:   deadlock found with %d preemptions in %d steps@.  schedule: %s@."
      bug.preemptions bug.depth
      (String.concat " " (List.map string_of_int bug.schedule))
  | None -> Format.printf "naive:   unexpectedly clean@.");
  let ordered = Icb.compile (model ~ordered:true ~n) in
  let r =
    Icb.run ordered
      ~strategy:(Icb_search.Explore.Icb { max_bound = None; cache = true })
  in
  Format.printf "ordered: %d states explored, %d bugs%s@."
    r.Icb_search.Sresult.distinct_states
    (List.length r.bugs)
    (if r.complete then " (complete search: deadlock-free)" else "")
