(* A bank account written three ways: racy, torn, and correct.

     dune exec examples/bank_account.exe

   Shows the two distinct failure modes the checker separates cleanly:
   a data race (unsynchronized access, caught by the race detector on any
   execution containing the unordered accesses) versus a lost update
   (well-synchronized volatile accesses interleaved badly, caught by an
   assertion and needing a preemption at just the wrong place). *)

let template body =
  Printf.sprintf
    {|
%s
event manual d1;
event manual d2;

proc deposit1() {
%s
  signal(d1);
}

proc deposit2() {
%s
  signal(d2);
}

main {
  spawn deposit1();
  spawn deposit2();
  wait(d1);
  wait(d2);
  var b: int;
  b = balance;
  assert(b == 30, "money was lost");
}
|}
    body

let racy =
  (* plain global, no lock: the two read-modify-write pairs race *)
  template "var balance: int = 0;"
    "  var v: int;\n  v = balance;\n  balance = v + 10;"
    "  var v: int;\n  v = balance;\n  balance = v + 20;"

let torn =
  (* volatile global: no data race, but the read and the write can still
     be separated by a preemption — the classic lost update *)
  template "volatile var balance: int = 0;"
    "  var v: int;\n  v = balance;\n  balance = v + 10;"
    "  var v: int;\n  v = balance;\n  balance = v + 20;"

let correct =
  template "volatile var balance: int = 0;\nmutex m;"
    "  var v: int;\n  lock(m);\n  v = balance;\n  balance = v + 10;\n  unlock(m);"
    "  var v: int;\n  lock(m);\n  v = balance;\n  balance = v + 20;\n  unlock(m);"

let report name src =
  let prog = Icb.compile src in
  match Icb.check prog ~max_bound:4 with
  | Some bug ->
    Format.printf "%-8s BUG with %d preemption(s): %s@." name bug.preemptions
      bug.msg
  | None -> Format.printf "%-8s verified up to 4 preemptions@." name

let () =
  (* the main thread reads balance without the lock in all variants; that
     read is ordered by the events, so only the deposits themselves can
     race *)
  report "racy" racy;
  report "torn" torn;
  report "correct" correct
