(** The APE model — Asynchronous Processing Environment (paper
    Section 4.1).

    The paper checked a Windows component providing structure and
    debugging support to asynchronous multithreaded code: a main thread
    initializes the environment's data structures, creates two worker
    threads, and waits for them to finish, while the workers exercise the
    interface (claiming work items, touching the environment, reporting
    completion).  We rebuild that structure as a model: the environment is
    a heap object, work items are claimed from a free stack, completions
    are counted.

    The paper found 4 previously unknown bugs in APE: two in executions
    with zero preemptions, one with one, one with two (Table 2).  The
    seeded bugs here reproduce those classes: *)

type variant =
  | Correct
  | Bug_missing_join
      (** the main thread tears the environment down after waiting for
          only one of the two completion signals — the other worker uses
          the freed environment; needs no preemption at all *)
  | Bug_auto_reset_start
      (** the start event is auto-reset where manual-reset is needed: one
          worker consumes the only signal and the other waits forever —
          deadlock with zero preemptions *)
  | Bug_lost_completion
      (** the completion counter is updated by a non-atomic
          read-then-write; one preemption between them loses an update *)
  | Bug_unlocked_claim
      (** work items are claimed from the free stack without the claim
          lock; two preemptions overlap two claims of the same item while
          the first is still in use *)

val variants : variant list
val variant_name : variant -> string

val source : variant -> string
val program : variant -> Icb_machine.Prog.t
