type variant =
  | Correct
  | Bug_split_flush
  | Bug_stale_entry
  | Bug_deferred_flush

let variants = [ Correct; Bug_split_flush; Bug_stale_entry; Bug_deferred_flush ]

let variant_name = function
  | Correct -> "correct"
  | Bug_split_flush -> "split-flush"
  | Bug_stale_entry -> "stale-entry"
  | Bug_deferred_flush -> "deferred-flush"

(* Three transactions hash into two bucket slots (tx 0 and tx 2 share slot
   0).  Transaction 0 is created with an already-near deadline so the
   timer's first tick can flush it; the others never time out. *)
let header =
  {|
// Transaction manager: a bucketed table of in-flight transactions with
// per-bucket locks, a mutator thread and a timeout-flushing timer thread.
var bucket[2]: int;       // slot contents: tx id + 1; 0 = empty
var txState[3]: int;      // 0 absent, 1 in-flight, 2 committed, 3 flushed
var deadline[3]: int;
volatile var now: int = 1;
mutex lockb[2];
volatile var gen: int = 0;
event manual doneW;
|}

let create ~tx ~dl =
  let slot = tx mod 2 in
  Printf.sprintf
    {|
  // create transaction %d
  lock(lockb[%d]);
  assert(bucket[%d] == 0, "hash collision on create");
  deadline[%d] = %d;
  bucket[%d] = %d;
  txState[%d] = 1;
  unlock(lockb[%d]);
|}
    tx slot slot tx dl slot (tx + 1) tx slot

let commit ~tx =
  let slot = tx mod 2 in
  Printf.sprintf
    {|
  // commit transaction %d (skip if the timer flushed it first)
  lock(lockb[%d]);
  if (bucket[%d] == %d) {
    bucket[%d] = 0;
    assert(txState[%d] == 1, "committed a non-live transaction");
    txState[%d] = 2;
  }
  unlock(lockb[%d]);
|}
    tx slot slot (tx + 1) slot tx tx slot

let worker_standard =
  Printf.sprintf
    {|
proc worker() {
%s%s%s%s%s
  signal(doneW);
}
|}
    (create ~tx:0 ~dl:1)
    (create ~tx:1 ~dl:99)
    (commit ~tx:0)
    (create ~tx:2 ~dl:99)
    (commit ~tx:1)

(* The deferred-flush harness: the client creates a transaction with a
   near deadline, then refreshes the deadline and publishes the mutation
   batch (gen), and finally checks the refreshed transaction is still
   live. *)
let worker_deferred =
  Printf.sprintf
    {|
proc worker() {
%s
  // refresh: extend the deadline, then publish the batch
  lock(lockb[0]);
  deadline[0] = 99;
  unlock(lockb[0]);
  gen = 1;
  var s: int = 0;
  lock(lockb[0]);
  s = txState[0];
  unlock(lockb[0]);
  assert(s == 1, "refreshed transaction was flushed");
  signal(doneW);
}
|}
    (create ~tx:0 ~dl:1)

(* Correct timer: decision and flush in one critical section. *)
let timer_correct =
  {|
proc timer() {
  var tick: int = 0;
  while (tick < 2) {
    now = now + 1;
    var b: int = 0;
    while (b < 2) {
      lock(lockb[b]);
      if (bucket[b] != 0) {
        var t: int = bucket[b] - 1;
        if (deadline[t] < now) {
          bucket[b] = 0;
          assert(txState[t] == 1, "flushed a non-live transaction");
          txState[t] = 3;
        }
      }
      unlock(lockb[b]);
      b = b + 1;
    }
    tick = tick + 1;
  }
}
|}

(* Bug: the flush decision and the flush act are in separate critical
   sections; a commit between them leaves the act flushing a committed
   transaction. *)
let timer_split_flush =
  {|
proc timer() {
  var tick: int = 0;
  while (tick < 2) {
    now = now + 1;
    var b: int = 0;
    while (b < 2) {
      var cand: int = 0;
      lock(lockb[b]);
      if (bucket[b] != 0) {
        var t: int = bucket[b] - 1;
        if (deadline[t] < now) {
          cand = bucket[b];
        }
      }
      unlock(lockb[b]);
      if (cand != 0) {
        lock(lockb[b]);
        bucket[b] = 0;
        assert(txState[cand - 1] == 1, "flushed a non-live transaction");
        txState[cand - 1] = 3;
        unlock(lockb[b]);
      }
      b = b + 1;
    }
    tick = tick + 1;
  }
}
|}

(* Bug: the act re-checks that the slot is occupied, but judges the
   timeout with the deadline of the entry seen before the lock was
   released; a recycled slot gets a fresh transaction flushed. *)
let timer_stale_entry =
  {|
proc timer() {
  var tick: int = 0;
  while (tick < 2) {
    now = now + 1;
    var b: int = 0;
    while (b < 2) {
      var seen: int = 0;
      lock(lockb[b]);
      seen = bucket[b];
      unlock(lockb[b]);
      if (seen != 0) {
        lock(lockb[b]);
        var cur: int = bucket[b];
        if (cur != 0) {
          if (deadline[seen - 1] < now) {
            bucket[b] = 0;
            assert(deadline[cur - 1] < now,
                   "flushed a transaction before its timeout");
            txState[cur - 1] = 3;
          }
        }
        unlock(lockb[b]);
      }
      b = b + 1;
    }
    tick = tick + 1;
  }
}
|}

(* Bug: the timer defers acting on an expired candidate until the first
   mutation batch has been published (gen >= 1), and then re-validates only
   occupancy, not the deadline.  Refreshing the deadline between the
   decision and the gate check gets a live, refreshed transaction
   flushed — the narrowest interleaving of the three. *)
let timer_deferred_flush =
  {|
proc timer() {
  now = now + 1;
  var cand: int = 0;
  var candSlot: int = 0;
  var b: int = 0;
  while (b < 2) {
    lock(lockb[b]);
    if (bucket[b] != 0) {
      var t: int = bucket[b] - 1;
      if (deadline[t] < now) {
        cand = bucket[b];
        candSlot = b;
      }
    }
    unlock(lockb[b]);
    b = b + 1;
  }
  // deferred act, gated on the batch counter
  var g: int = 0;
  g = gen;
  if (cand != 0 && g >= 1) {
    lock(lockb[candSlot]);
    if (bucket[candSlot] == cand) {
      bucket[candSlot] = 0;
      txState[cand - 1] = 3;
    }
    unlock(lockb[candSlot]);
  }
}
|}

let main_driver =
  {|
main {
  spawn worker();
  spawn timer();
  wait(doneW);
}
|}

let source variant =
  let worker, timer, driver =
    match variant with
    | Correct -> (worker_standard, timer_correct, main_driver)
    | Bug_split_flush -> (worker_standard, timer_split_flush, main_driver)
    | Bug_stale_entry -> (worker_standard, timer_stale_entry, main_driver)
    | Bug_deferred_flush ->
      (worker_deferred, timer_deferred_flush, main_driver)
  in
  String.concat "" [ header; worker; timer; driver ]

let program variant = Icb.compile (source variant)
