(** The Dryad channel-library model (paper Section 4.1 and Figure 3).

    Dryad's shared-memory channel connects data-flow vertices; the test the
    paper ran (5 threads, provided by Dryad's lead developer) exercises the
    channel's send path, its close/drain protocol, and the worker threads'
    cleanup.  Our model: the channel is a heap object with a state flag, a
    processed-items counter and per-sender buffer slots, protected by the
    [baseCS] critical section; two sender threads send one item each; two
    worker threads receive a STOP broadcast, acknowledge it, and run their
    [AlertApplication] cleanup inside [baseCS]; the main thread closes and
    tears down the channel, with lifetime managed by an atomic reference
    count.

    The paper found 5 previously unknown bugs in the Dryad channels, one
    needing zero preemptions, four needing one (Table 2); Figure 3 details
    the use-after-free, which needs exactly one preemption — right before
    [EnterCriticalSection] in [AlertApplication] — plus six non-preempting
    context switches. *)

type variant =
  | Correct
  | Bug_auto_reset_stop
      (** STOP is broadcast through an auto-reset event: only one worker
          wakes; deadlock with zero preemptions *)
  | Bug_close_waits_ack
      (** [Close] returns once the workers acknowledge the STOP, wrongly
          assuming that means they are finished; deleting the channel then
          races with [AlertApplication] — the paper's Figure 3
          use-after-free *)
  | Bug_nonatomic_refcount
      (** workers release their channel reference with a non-atomic
          read-then-write; one preemption loses a decrement *)
  | Bug_double_release
      (** the main thread's teardown checks the reference count and frees
          in two separate steps; a worker's release can slip in between and
          free first *)
  | Bug_unlocked_send
      (** the send path checks the channel state without entering
          [baseCS]; the channel can be closed and drained between the
          check and the buffer write *)

val variants : variant list
val variant_name : variant -> string

val source : variant -> string
val program : variant -> Icb_machine.Prog.t
