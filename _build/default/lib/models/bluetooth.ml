let header =
  {|
// Bluetooth PnP driver model: a worker thread dispatches I/O requests
// while a stopper thread performs PnP stop.  pendingIo counts in-flight
// references (1 for the driver itself); the last reference out signals
// stopEv, after which the stopper marks the driver stopped.
var pendingIo: int = 1;
volatile var stoppingFlag: bool = false;
volatile var stopped: bool = false;
mutex m;
event manual stopEv;
|}

(* The shipped driver checks stoppingFlag before taking a reference, but
   takes the reference only afterwards — a classic check-then-act. *)
let buggy_adder =
  {|
proc adder() {
  var added: bool = false;
  if (!stoppingFlag) {
    // XXX a preemption here lets the stopper finish first
    lock(m);
    pendingIo = pendingIo + 1;
    unlock(m);
    added = true;
  }
  if (added) {
    // the driver is supposedly alive here: process the I/O request
    assert(!stopped, "I/O processed after the driver stopped");
    var p: int;
    lock(m);
    pendingIo = pendingIo - 1;
    p = pendingIo;
    unlock(m);
    if (p == 0) { signal(stopEv); }
  }
}
|}

(* The repaired driver takes the reference under the same lock that guards
   the flag check, so the stopper can only win before the check. *)
let fixed_adder =
  {|
proc adder() {
  var added: bool = false;
  lock(m);
  if (!stoppingFlag) {
    pendingIo = pendingIo + 1;
    added = true;
  }
  unlock(m);
  if (added) {
    assert(!stopped, "I/O processed after the driver stopped");
    var p: int;
    lock(m);
    pendingIo = pendingIo - 1;
    p = pendingIo;
    unlock(m);
    if (p == 0) { signal(stopEv); }
  }
}
|}

let rest =
  {|
proc stopper() {
  var p: int;
  stoppingFlag = true;
  lock(m);
  pendingIo = pendingIo - 1;
  p = pendingIo;
  unlock(m);
  if (p == 0) { signal(stopEv); }
  wait(stopEv);
  stopped = true;
}

main {
  spawn adder();
  spawn stopper();
}
|}

let source ~bug =
  String.concat "" [ header; (if bug then buggy_adder else fixed_adder); rest ]

let program ~bug = Icb.compile (source ~bug)
