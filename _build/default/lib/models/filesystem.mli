(** The file-system model (paper Section 4.1), derived from the model of
    Flanagan and Godefroid's dynamic partial-order-reduction paper (their
    Figure 7): threads create files, searching for a free inode and then a
    free block, each protected by its own lock.

    The model is race- and bug-free; the paper uses it (84 LOC, 4 threads)
    for the state-coverage experiment of Figure 4, where its full state
    space is covered by executions with at most 4 preemptions. *)

val source : threads:int -> string
(** [threads] worker threads (the paper's driver uses 3 workers plus the
    main thread). *)

val program : threads:int -> Icb_machine.Prog.t

val default_threads : int
