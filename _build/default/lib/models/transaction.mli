(** The transaction manager model (paper Section 4.1): in-flight
    transactions live in a small hash table with fine-grained per-bucket
    locks; a worker thread creates and commits transactions while a timer
    thread periodically flushes the ones whose deadline has passed —
    exactly the structure of the .NET web-services transaction manager the
    paper checked with ZING.

    The paper reports 3 (previously known, re-seeded) bugs, found at
    context bounds 2, 2 and 3. *)

type variant =
  | Correct
  | Bug_split_flush
      (** the timer decides to flush under the bucket lock but performs the
          flush after re-acquiring it; a commit can slip in between *)
  | Bug_stale_entry
      (** the timer re-checks occupancy after re-acquiring the lock but
          keeps using the deadline of the entry it saw first; the slot can
          have been recycled for a fresh transaction in between *)
  | Bug_deferred_flush
      (** the timer defers acting on an expired candidate until the first
          mutation batch has been published, then re-validates only
          occupancy, not the deadline; a deadline refresh between the
          decision and the gate check gets a live transaction flushed —
          needs three preemptions at exactly the wrong places *)

val variants : variant list
val variant_name : variant -> string

val source : variant -> string
val program : variant -> Icb_machine.Prog.t
