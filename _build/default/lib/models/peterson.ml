type variant =
  | Correct
  | Bug_check_before_set
  | Bug_turn_before_flag

let variants = [ Correct; Bug_check_before_set; Bug_turn_before_flag ]

let variant_name = function
  | Correct -> "correct"
  | Bug_check_before_set -> "check-before-set"
  | Bug_turn_before_flag -> "turn-before-flag"

let header =
  {|
// Peterson's algorithm for two threads, with a bounded contention spin.
volatile var flag[2]: bool;
volatile var turn: int = 0;
volatile var inCS: int = 0;
volatile var completed: int = 0;
event manual d0;
event manual d1;
|}

(* The critical section body: entry counter checked for overlap. *)
let critical_section =
  {|
    var old: int;
    old = fetch_add(inCS, 1);
    assert(old == 0, "mutual exclusion violated");
    old = fetch_add(inCS, -1);
    old = fetch_add(completed, 1);
|}

let enter = function
  | Correct ->
    {|
  flag[id] = true;
  turn = 1 - id;
  var tries: int = 0;
  var entered: bool = false;
  while (tries < 4 && !entered) {
    var f: bool = flag[1 - id];
    var t: int = turn;
    if (!f || t == id) {
      entered = true;
    } else {
      yield;
      tries = tries + 1;
    }
  }
|}
  | Bug_check_before_set ->
    {|
  var f: bool = flag[1 - id];
  var entered: bool = false;
  if (!f) {
    flag[id] = true;
    entered = true;
  }
|}
  | Bug_turn_before_flag ->
    (* giving the turn away before raising the flag looks equivalent but
       is not: the contender can cede the turn back and sail past a
       still-lowered flag *)
    {|
  turn = 1 - id;
  flag[id] = true;
  var tries: int = 0;
  var entered: bool = false;
  while (tries < 4 && !entered) {
    var f: bool = flag[1 - id];
    var t: int = turn;
    if (!f || t == id) {
      entered = true;
    } else {
      yield;
      tries = tries + 1;
    }
  }
|}

let source variant =
  Printf.sprintf
    {|
%s
proc worker(id: int) {
%s
  if (entered) {
%s
    flag[id] = false;
  }
  if (id == 0) { signal(d0); } else { signal(d1); }
}

main {
  spawn worker(0);
  spawn worker(1);
  wait(d0);
  wait(d1);
}
|}
    header (enter variant) critical_section

let program variant = Icb.compile (source variant)
