type variant =
  | Correct
  | Bug_missing_join
  | Bug_auto_reset_start
  | Bug_lost_completion
  | Bug_unlocked_claim

let variants =
  [ Correct; Bug_missing_join; Bug_auto_reset_start; Bug_lost_completion;
    Bug_unlocked_claim ]

let variant_name = function
  | Correct -> "correct"
  | Bug_missing_join -> "missing-join"
  | Bug_auto_reset_start -> "auto-reset-start"
  | Bug_lost_completion -> "lost-completion"
  | Bug_unlocked_claim -> "unlocked-claim"

let header ~auto_start =
  Printf.sprintf
    {|
// APE: the environment is a heap object; workers claim work items from a
// small free stack, touch the environment, and report completion.
var envH: handle;
volatile var completed: int = 0;
volatile var freeHead: int = 1;     // indices 1 down to 0 are free items
volatile var inUse[2]: int;
mutex claimLock;
event %sstartEv;
event manual flushEv;
event manual flushDoneEv;
sem doneSem = 0;
|}
    (if auto_start then "" else "manual ")

(* Claiming a work item: pop the top of the free stack.  The correct code
   holds the claim lock across the read-decrement pair. *)
let claim_correct =
  {|
  var i: int;
  lock(claimLock);
  i = freeHead;
  freeHead = i - 1;
  unlock(claimLock);
|}

let claim_unlocked =
  {|
  var i: int;
  i = freeHead;
  freeHead = i - 1;
|}

let completion_correct =
  {|
  var c: int;
  c = fetch_add(completed, 1);
|}

let completion_lost =
  {|
  var c: int;
  c = completed;
  completed = c + 1;
|}

let worker ~claim ~completion =
  Printf.sprintf
    {|
proc worker(id: int) {
  wait(startEv);
%s
  if (i >= 0) {
    var old: int;
    old = fetch_add(inUse[i], 1);
    assert(old == 0, "work item claimed twice concurrently");
    // process: read the environment magic, record our visit
    var h: handle = envH;
    var e: int = h[0];
    assert(e == 42, "environment not initialized");
    h[id] = e + id;
    old = fetch_add(inUse[i], -1);
  }
%s
  release(doneSem);
}
|}
    claim completion

(* The debug-log flusher: APE's debugging support runs a housekeeping
   thread that drains the log when the environment shuts down. *)
let flusher =
  {|
proc flusher() {
  wait(flushEv);
  var h: handle = envH;
  var e: int = h[0];
  assert(e == 42, "flushed a torn-down environment log");
  signal(flushDoneEv);
}
|}

let main_driver ~joins ~check_completions =
  Printf.sprintf
    {|
main {
  var h: handle;
  h = alloc(3);
  h[0] = 42;
  envH = h;
  spawn worker(1);
  spawn worker(2);
  spawn flusher();
  signal(startEv);
%s%s
  signal(flushEv);
  wait(flushDoneEv);
  free(h);
}
|}
    (String.concat "" (List.init joins (fun _ -> "  acquire(doneSem);\n")))
    (if check_completions then
       {|  var done_: int;
  done_ = completed;
  assert(done_ == 2, "a completion was lost");
|}
     else "")

let source variant =
  let auto_start = variant = Bug_auto_reset_start in
  let claim =
    match variant with
    | Bug_unlocked_claim -> claim_unlocked
    | Correct | Bug_missing_join | Bug_auto_reset_start | Bug_lost_completion
      -> claim_correct
  in
  let completion =
    match variant with
    | Bug_lost_completion -> completion_lost
    | Correct | Bug_missing_join | Bug_auto_reset_start | Bug_unlocked_claim
      -> completion_correct
  in
  let joins = if variant = Bug_missing_join then 1 else 2 in
  let check_completions = variant = Bug_lost_completion in
  String.concat ""
    [
      header ~auto_start;
      worker ~claim ~completion;
      flusher;
      main_driver ~joins ~check_completions;
    ]

let program variant = Icb.compile (source variant)
