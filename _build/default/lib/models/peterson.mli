(** Peterson's mutual-exclusion algorithm — an extra model beyond the
    paper's benchmark suite, exercising volatile variables, bounded
    contention spins and the checker's ability to verify (not just
    falsify) a lock-free protocol.

    The spin is bounded (a thread gives up after a few polls and reports
    starvation rather than looping), which keeps the state space acyclic
    so every strategy — including the stateless ones — terminates. *)

type variant =
  | Correct
  | Bug_check_before_set
      (** each thread polls the other's flag before raising its own: both
          can pass the check and enter together *)
  | Bug_turn_before_flag
      (** the turn is ceded before the flag is raised; the contender can
          cede it back and pass the still-lowered flag — both enter *)

val variants : variant list
val variant_name : variant -> string

val source : variant -> string
val program : variant -> Icb_machine.Prog.t
