(** The Bluetooth PnP driver model (paper Section 4.1).

    A worker thread tries to enter the driver while a stopper thread stops
    it.  The classic bug — the paper's single Bluetooth bug, exposed at
    preemption bound 1 — is the unsynchronized check of [stoppingFlag]
    before taking a fresh I/O reference: preempting the worker between the
    check and the increment lets the stopper complete and mark the driver
    stopped, after which the worker processes I/O on a stopped driver. *)

val source : bug:bool -> string
(** Model source; [bug:true] is the shipped (buggy) driver, [bug:false]
    the repaired one that takes the reference under the lock. *)

val program : bug:bool -> Icb_machine.Prog.t
