type variant =
  | Correct
  | Bug_unlocked_steal
  | Bug_pop_reads_head_first
  | Bug_steal_missing_wraparound

let variants =
  [ Correct; Bug_unlocked_steal; Bug_pop_reads_head_first;
    Bug_steal_missing_wraparound ]

let variant_name = function
  | Correct -> "correct"
  | Bug_unlocked_steal -> "unlocked-steal"
  | Bug_pop_reads_head_first -> "pop-reads-head-first"
  | Bug_steal_missing_wraparound -> "steal-missing-wraparound"

(* The queue holds SIZE = 2 slots; the victim pushes NPUSH = 3 values
   (phases: push 0, push 1, pop, push 2) while the thief makes three steal
   attempts.  The driver reconciles consumption at the end. *)

let header =
  {|
// Work-stealing queue (Cilk THE protocol) over a bounded circular buffer.
volatile var H: int = 0;        // head: the steal end
volatile var T: int = 0;        // tail: the push/pop end
var items[2]: int;
volatile var takenCount[3]: int;   // per-value consumption counters
volatile var consumedTotal: int = 0;
mutex m;
event manual doneV;
event manual doneT;
|}

(* THE pop.  Reserve the tail slot by publishing T = t, then read H; on
   conflict restore and retry under the lock. *)
let pop_correct =
  {|
      var t: int;
      var h: int;
      var got: int = -1;
      t = T - 1;
      T = t;
      h = H;
      if (t < h) {
        // conflict or empty: back off and retry under the lock
        T = t + 1;
        lock(m);
        h = H;
        t = T - 1;
        if (t >= h) {
          got = items[t % 2];
          T = t;
        }
        unlock(m);
      } else {
        got = items[t % 2];
      }
|}

(* Reading H before publishing the reserved tail breaks the handshake: on
   the last item both the victim (stale head) and the thief (stale tail)
   conclude they won. *)
let pop_bug_reads_head_first =
  {|
      var t: int;
      var h: int;
      var got: int = -1;
      t = T - 1;
      h = H;
      T = t;
      if (t < h) {
        T = t + 1;
        lock(m);
        h = H;
        t = T - 1;
        if (t >= h) {
          got = items[t % 2];
          T = t;
        }
        unlock(m);
      } else {
        got = items[t % 2];
      }
|}

let consume =
  {|
      if (got >= 0) {
        var old: int;
        old = fetch_add(takenCount[got], 1);
        assert(old == 0, "item consumed twice");
        old = fetch_add(consumedTotal, 1);
      }
|}

let push ~wraparound =
  let index = if wraparound then "t2 % 2" else "t2" in
  Printf.sprintf
    {|
      var t2: int;
      var h2: int;
      t2 = T;
      h2 = H;
      assert(t2 - h2 < 2, "push to a full queue");
      items[%s] = val;
      T = t2 + 1;
      val = val + 1;
|}
    index

let victim ~pop ~wraparound =
  Printf.sprintf
    {|
proc victim() {
  var phase: int = 0;
  var val: int = 0;
  while (phase < 4) {
    if (phase == 2) {
%s
%s
    } else {
%s
    }
    phase = phase + 1;
  }
  signal(doneV);
}
|}
    pop consume (push ~wraparound)

(* THE steal: reserve the head slot by publishing H = h + 1, then read T;
   restore on conflict.  The whole operation runs under the lock. *)
let thief_locked ~wraparound =
  let index = if wraparound then "h % 2" else "h" in
  Printf.sprintf
    {|
proc thief() {
  var attempt: int = 0;
  while (attempt < 3) {
    var h: int;
    var t: int;
    var got: int = -1;
    lock(m);
    h = H;
    H = h + 1;
    t = T;
    if (h < t) {
      got = items[%s];
    } else {
      H = h;
    }
    unlock(m);
%s
    attempt = attempt + 1;
  }
  signal(doneT);
}
|}
    index consume

let thief_correct = thief_locked ~wraparound:true

let thief_unlocked =
  Printf.sprintf
    {|
proc thief() {
  var attempt: int = 0;
  while (attempt < 3) {
    var h: int;
    var t: int;
    var got: int = -1;
    h = H;
    t = T;
    if (h < t) {
      got = items[h %% 2];
      H = h + 1;
    }
%s
    attempt = attempt + 1;
  }
  signal(doneT);
}
|}
    consume

let main_driver =
  {|
main {
  spawn victim();
  spawn thief();
  wait(doneV);
  wait(doneT);
  var h: int;
  var t: int;
  var c: int;
  h = H;
  t = T;
  c = consumedTotal;
  assert(c + (t - h) == 3, "items were lost");
}
|}

(* A scaled-up driver (3 buffer slots, 6 values, 5 steal attempts) for the
   growth-curve experiments: big enough that no strategy saturates its
   happens-before class space within a laptop-scale budget. *)
let scaled_source =
  {|
volatile var H: int = 0;
volatile var T: int = 0;
var items[3]: int;
volatile var takenCount[6]: int;
volatile var consumedTotal: int = 0;
mutex m;
event manual doneV;
event manual doneT;
proc victim() {
  var phase: int = 0;
  var val: int = 0;
  while (phase < 9) {
    if (phase == 2 || phase == 5 || phase == 8) {
      var t: int;
      var h: int;
      var got: int = -1;
      t = T - 1;
      T = t;
      h = H;
      if (t < h) {
        T = t + 1;
        lock(m);
        h = H;
        t = T - 1;
        if (t >= h) {
          got = items[t % 3];
          T = t;
        }
        unlock(m);
      } else {
        got = items[t % 3];
      }
      if (got >= 0) {
        var old: int;
        old = fetch_add(takenCount[got], 1);
        assert(old == 0, "item consumed twice");
        old = fetch_add(consumedTotal, 1);
      }
    } else {
      var t2: int;
      var h2: int;
      t2 = T;
      h2 = H;
      assert(t2 - h2 < 3, "push to a full queue");
      items[t2 % 3] = val;
      T = t2 + 1;
      val = val + 1;
    }
    phase = phase + 1;
  }
  signal(doneV);
}
proc thief() {
  var attempt: int = 0;
  while (attempt < 5) {
    var h: int;
    var t: int;
    var got: int = -1;
    lock(m);
    h = H;
    H = h + 1;
    t = T;
    if (h < t) {
      got = items[h % 3];
    } else {
      H = h;
    }
    unlock(m);
    if (got >= 0) {
      var old: int;
      old = fetch_add(takenCount[got], 1);
      assert(old == 0, "item consumed twice");
      old = fetch_add(consumedTotal, 1);
    }
    attempt = attempt + 1;
  }
  signal(doneT);
}
main {
  spawn victim();
  spawn thief();
  wait(doneV);
  wait(doneT);
  var h: int;
  var t: int;
  var c: int;
  h = H;
  t = T;
  c = consumedTotal;
  assert(c + (t - h) == 6, "items were lost");
}
|}

let scaled_program () = Icb.compile scaled_source

let source variant =
  let pop, thief =
    match variant with
    | Correct -> (pop_correct, thief_correct)
    | Bug_unlocked_steal -> (pop_correct, thief_unlocked)
    | Bug_pop_reads_head_first -> (pop_bug_reads_head_first, thief_correct)
    | Bug_steal_missing_wraparound ->
      (pop_correct, thief_locked ~wraparound:false)
  in
  String.concat ""
    [ header; victim ~pop ~wraparound:true; thief; main_driver ]

let program variant = Icb.compile (source variant)
