type variant =
  | Correct
  | Bug_auto_reset_stop
  | Bug_close_waits_ack
  | Bug_nonatomic_refcount
  | Bug_double_release
  | Bug_unlocked_send

let variants =
  [ Correct; Bug_auto_reset_stop; Bug_close_waits_ack; Bug_nonatomic_refcount;
    Bug_double_release; Bug_unlocked_send ]

let variant_name = function
  | Correct -> "correct"
  | Bug_auto_reset_stop -> "auto-reset-stop"
  | Bug_close_waits_ack -> "close-waits-ack"
  | Bug_nonatomic_refcount -> "nonatomic-refcount"
  | Bug_double_release -> "double-release"
  | Bug_unlocked_send -> "unlocked-send"

(* Channel heap layout: [0] processed-item counter (workers, under baseCS),
   [1] and [2] the per-sender buffer slots (senders and drain, under
   baseCS). *)
let header ~auto_stop ~refcount =
  Printf.sprintf
    {|
// Dryad shared-memory channel: two senders, two channel worker threads,
// and the main thread driving the close/teardown protocol.
var chanH: handle;
volatile var chanState: int = 0;   // 0 open, 1 closed
%smutex baseCS;
event %sstopEv;
event ackEv[2];
sem doneSem = 0;
|}
    (match refcount with
    | None -> ""
    | Some n -> Printf.sprintf "volatile var rc: int = %d;\n" n)
    (if auto_stop then "" else "manual ")

let sender ~locked_check ~decref =
  let body =
    if locked_check then
      {|  lock(baseCS);
  var s: int = chanState;
  if (s == 0) {
    h[1 + id] = 7 + id;
  }
  unlock(baseCS);|}
    else
      {|  var s: int = chanState;
  if (s == 0) {
    // XXX the channel can be closed and drained right here
    lock(baseCS);
    h[1 + id] = 7 + id;
    unlock(baseCS);
  }|}
  in
  let release_ref =
    if decref then "  var t0: int;\n  t0 = fetch_add(rc, -1);\n" else ""
  in
  Printf.sprintf
    {|
proc sender(id: int) {
  var h: handle = chanH;
%s
%s  release(doneSem);
}
|}
    body release_ref

(* decref: how a worker releases its channel reference at the end. *)
type worker_release =
  | Release_none
  | Release_nonatomic       (* t = rc; rc = t - 1 — before the done signal *)
  | Release_free_if_last    (* atomic; frees the channel — after the done signal *)

let worker ~release =
  let cleanup =
    match release with
    | Release_none -> "  release(doneSem);"
    | Release_nonatomic ->
      {|  var t: int;
  t = rc;
  rc = t - 1;
  release(doneSem);|}
    | Release_free_if_last ->
      {|  release(doneSem);
  var t: int;
  t = fetch_add(rc, -1);
  if (t == 1) {
    free(h);
  }|}
  in
  Printf.sprintf
    {|
proc worker(id: int) {
  var h: handle = chanH;
  wait(stopEv);
  signal(ackEv[id]);
  // AlertApplication: note the channel pointer is still in use here
  lock(baseCS);
  var x: int = h[0];
  h[0] = x + 1;
  unlock(baseCS);
%s
}
|}
    cleanup

type main_join =
  | Join_done_sem           (* wait for all four completions *)
  | Join_acks_only          (* the Figure 3 bug: acks are not completions *)

type main_teardown =
  | Teardown_free           (* plain free *)
  | Teardown_assert_rc      (* check the reference count settled, then free *)
  | Teardown_free_if_refs   (* check-then-act against worker self-release *)

let main_driver ~join ~teardown ~check_drain =
  let joins =
    match join with
    | Join_done_sem ->
      String.concat "" (List.init 4 (fun _ -> "  acquire(doneSem);\n"))
    | Join_acks_only -> "  wait(ackEv[0]);\n  wait(ackEv[1]);\n"
  in
  let drain_check =
    if check_drain then
      {|  var s1: int = h[1];
  var s2: int = h[2];
  assert(s1 == -999 && s2 == -999, "item sent to a closed channel");
|}
    else ""
  in
  let teardown_code =
    match teardown with
    | Teardown_free -> "  free(h);"
    | Teardown_assert_rc ->
      {|  var r: int;
  r = rc;
  assert(r == 1, "channel reference count corrupted");
  free(h);|}
    | Teardown_free_if_refs ->
      {|  var r: int;
  r = rc;
  if (r > 0) {
    free(h);
  }|}
  in
  Printf.sprintf
    {|
main {
  var h: handle;
  h = alloc(3);
  chanH = h;
  spawn sender(0);
  spawn sender(1);
  spawn worker(0);
  spawn worker(1);
  // Close(): mark closed and drain the buffer slots
  lock(baseCS);
  chanState = 1;
  h[1] = -999;
  h[2] = -999;
  unlock(baseCS);
  signal(stopEv);
%s%s%s
}
|}
    joins drain_check teardown_code

let source variant =
  let auto_stop = variant = Bug_auto_reset_stop in
  let refcount =
    match variant with
    | Bug_nonatomic_refcount -> Some 5
    | Bug_double_release -> Some 2
    | Correct | Bug_auto_reset_stop | Bug_close_waits_ack | Bug_unlocked_send
      -> None
  in
  let locked_check = variant <> Bug_unlocked_send in
  let release =
    match variant with
    | Bug_nonatomic_refcount -> Release_nonatomic
    | Bug_double_release -> Release_free_if_last
    | Correct | Bug_auto_reset_stop | Bug_close_waits_ack | Bug_unlocked_send
      -> Release_none
  in
  let join =
    match variant with
    | Bug_close_waits_ack -> Join_acks_only
    | Correct | Bug_auto_reset_stop | Bug_nonatomic_refcount
    | Bug_double_release | Bug_unlocked_send -> Join_done_sem
  in
  let teardown =
    match variant with
    | Bug_nonatomic_refcount -> Teardown_assert_rc
    | Bug_double_release -> Teardown_free_if_refs
    | Correct | Bug_auto_reset_stop | Bug_close_waits_ack | Bug_unlocked_send
      -> Teardown_free
  in
  let check_drain =
    match variant with
    | Correct | Bug_unlocked_send -> true
    | Bug_auto_reset_stop | Bug_close_waits_ack | Bug_nonatomic_refcount
    | Bug_double_release -> false
  in
  (* senders in the nonatomic-refcount variant also hold a reference *)
  let sender_decref = variant = Bug_nonatomic_refcount in
  String.concat ""
    [
      header ~auto_stop ~refcount;
      sender ~locked_check ~decref:sender_decref;
      worker ~release;
      main_driver ~join ~teardown ~check_drain;
    ]

let program variant = Icb.compile (source variant)
