lib/models/workstealing.mli: Icb_machine
