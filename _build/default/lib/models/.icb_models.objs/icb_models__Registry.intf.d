lib/models/registry.mli: Icb_machine
