lib/models/filesystem.mli: Icb_machine
