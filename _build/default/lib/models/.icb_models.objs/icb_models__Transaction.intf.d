lib/models/transaction.mli: Icb_machine
