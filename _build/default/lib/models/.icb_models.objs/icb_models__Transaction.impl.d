lib/models/transaction.ml: Icb Printf String
