lib/models/workstealing.ml: Icb Printf String
