lib/models/dryad.mli: Icb_machine
