lib/models/ape.ml: Icb List Printf String
