lib/models/peterson.ml: Icb Printf
