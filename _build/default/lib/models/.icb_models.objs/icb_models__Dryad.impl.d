lib/models/dryad.ml: Icb List Printf String
