lib/models/peterson.mli: Icb_machine
