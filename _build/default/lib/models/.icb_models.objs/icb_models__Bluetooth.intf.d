lib/models/bluetooth.mli: Icb_machine
