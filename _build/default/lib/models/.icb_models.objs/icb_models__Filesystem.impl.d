lib/models/filesystem.ml: Icb Printf
