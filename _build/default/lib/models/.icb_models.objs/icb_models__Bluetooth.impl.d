lib/models/bluetooth.ml: Icb String
