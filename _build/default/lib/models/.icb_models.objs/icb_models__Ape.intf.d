lib/models/ape.mli: Icb_machine
