lib/models/registry.ml: Ape Bluetooth Dryad Filesystem Icb_machine List String Transaction Workstealing
