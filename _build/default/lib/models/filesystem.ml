let default_threads = 3

(* NINODE inodes and NBLOCK blocks, each guarded by its own mutex.  A
   worker picks the inode [tid mod NINODE]; if it is unallocated, the
   worker scans for a free block starting at a deterministic position and
   allocates it.  Invariant checked: an inode's block is allocated to
   exactly one inode (no double allocation). *)
let source ~threads =
  Printf.sprintf
    {|
// File-system model: inode and block allocation under per-object locks.
var inode[2]: int;      // 0 = free, otherwise block index + 1
var busy[2]: bool;      // block allocation map
var owner[2]: int;      // which inode an allocated block belongs to
mutex locki[2];
mutex lockb[2];

proc creat(tid: int) {
  var i: int = tid %% 2;
  lock(locki[i]);
  if (inode[i] == 0) {
    var b: int = (i * 7) %% 2;
    var searching: bool = true;
    var tries: int = 0;
    while (searching && tries < 2) {
      lock(lockb[b]);
      if (!busy[b]) {
        busy[b] = true;
        assert(owner[b] == 0, "block allocated twice");
        owner[b] = i + 1;
        inode[i] = b + 1;
        searching = false;
      }
      unlock(lockb[b]);
      b = (b + 1) %% 2;
      tries = tries + 1;
    }
  }
  unlock(locki[i]);
}

main {
  var t: int = 0;
  while (t < %d) {
    spawn creat(t);
    t = t + 1;
  }
}
|}
    threads

let program ~threads = Icb.compile (source ~threads)
