(** The work-stealing queue model (paper Section 4.1): an implementation
    of the Cilk THE protocol over a bounded circular buffer, exercised by a
    victim thread (pushes and pops at the tail) and a thief thread (steals
    at the head), as in Leijen's futures library the paper tested.

    Consumption accounting is built into the model: every consumed value
    bumps a per-value atomic counter ([assert]ed to stay at one) and a
    global count that the driver reconciles against the number of pushes
    at the end, so both double consumption and lost items surface as
    assertion failures.

    The paper reports three variations, each with one subtle bug, all
    found within context bound 2: *)

type variant =
  | Correct
  | Bug_unlocked_steal
      (** the thief reads head/tail and takes the item without the lock *)
  | Bug_pop_reads_head_first
      (** the victim's pop reads the head before publishing the reserved
          tail, breaking the Dekker-style handshake on the last item *)
  | Bug_steal_missing_wraparound
      (** the thief indexes the buffer without the modulo, running off the
          end once the head has advanced past the buffer size *)

val variants : variant list
val variant_name : variant -> string

val source : variant -> string
val program : variant -> Icb_machine.Prog.t

val scaled_source : string
(** A scaled-up correct driver (3 slots, 6 values, 5 steals) whose
    happens-before class space no strategy saturates at laptop-scale
    budgets (even the standard driver's prefix space measures ~4x10^5
    classes); used by the growth-curve experiments. *)

val scaled_program : unit -> Icb_machine.Prog.t
