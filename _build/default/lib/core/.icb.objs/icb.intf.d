lib/core/icb.mli: Format Icb_machine Icb_race Icb_search Icb_util Icb_zlang
