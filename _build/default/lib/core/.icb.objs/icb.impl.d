lib/core/icb.ml: Array Engine_helpers Format Icb_machine Icb_race Icb_search Icb_util Icb_zlang List String
