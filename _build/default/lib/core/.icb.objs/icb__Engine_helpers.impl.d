lib/core/engine_helpers.ml: Icb_search
