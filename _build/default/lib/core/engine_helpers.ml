(* Small shared helpers for the facade. *)

let preempting_of_schedule ~enabled ~last ~chosen =
  Icb_search.Engine.preempting ~last_tid:last ~enabled ~chosen
