type t =
  | INT of int
  | STRING of string
  | IDENT of string
  | KW_var | KW_volatile | KW_mutex | KW_event | KW_manual | KW_signaled
  | KW_sem | KW_proc | KW_main | KW_atomic
  | KW_if | KW_else | KW_while | KW_break | KW_continue | KW_return
  | KW_lock | KW_unlock | KW_wait | KW_signal | KW_reset
  | KW_acquire | KW_release
  | KW_spawn | KW_yield | KW_skip | KW_assert | KW_free | KW_alloc
  | KW_cas | KW_fetch_add
  | KW_true | KW_false | KW_null
  | KW_int | KW_bool | KW_handle
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | COLON
  | ASSIGN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | EQ | NE | LT | LE | GT | GE
  | ANDAND | OROR | BANG
  | EOF

let keywords =
  [
    ("var", KW_var); ("volatile", KW_volatile); ("mutex", KW_mutex);
    ("event", KW_event); ("manual", KW_manual); ("signaled", KW_signaled);
    ("sem", KW_sem); ("proc", KW_proc); ("main", KW_main);
    ("atomic", KW_atomic);
    ("if", KW_if); ("else", KW_else); ("while", KW_while);
    ("break", KW_break); ("continue", KW_continue); ("return", KW_return);
    ("lock", KW_lock); ("unlock", KW_unlock); ("wait", KW_wait);
    ("signal", KW_signal); ("reset", KW_reset);
    ("acquire", KW_acquire); ("release", KW_release);
    ("spawn", KW_spawn); ("yield", KW_yield); ("skip", KW_skip);
    ("assert", KW_assert); ("free", KW_free); ("alloc", KW_alloc);
    ("cas", KW_cas); ("fetch_add", KW_fetch_add);
    ("true", KW_true); ("false", KW_false); ("null", KW_null);
    ("int", KW_int); ("bool", KW_bool); ("handle", KW_handle);
  ]

let keyword_of_string s = List.assoc_opt s keywords

let to_string = function
  | INT n -> string_of_int n
  | STRING s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | SEMI -> ";" | COMMA -> "," | COLON -> ":"
  | ASSIGN -> "="
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | EQ -> "==" | NE -> "!=" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | ANDAND -> "&&" | OROR -> "||" | BANG -> "!"
  | EOF -> "<eof>"
  | kw -> (
    match List.find_opt (fun (_, t) -> t = kw) keywords with
    | Some (s, _) -> s
    | None -> "<token>")
