(** Hand-written lexer for the modeling language.

    Comments are [//] to end of line and non-nesting [/* ... */].  String
    literals support backslash escapes for backslash, double quote,
    newline and tab. *)

type pos = { line : int; col : int }

exception Error of pos * string

val pp_pos : Format.formatter -> pos -> unit

val tokenize : string -> (Token.t * pos) list
(** Token stream of the whole input, ending with [EOF].
    Raises {!Error} on malformed input. *)
