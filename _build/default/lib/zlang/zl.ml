exception Error of string

let wrap f =
  try f () with
  | Lexer.Error (pos, msg) ->
    raise (Error (Typecheck.error_to_string pos ("lexical error: " ^ msg)))
  | Parser.Error (pos, msg) ->
    raise (Error (Typecheck.error_to_string pos ("syntax error: " ^ msg)))
  | Typecheck.Error (pos, msg) ->
    raise (Error (Typecheck.error_to_string pos ("type error: " ^ msg)))

let parse_source src = wrap (fun () -> Parser.parse src)

let compile_source src =
  wrap (fun () -> Compile.program (Typecheck.check (Parser.parse src)))

let compile_file path =
  let ic = open_in_bin path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  compile_source src
