(** Lexical tokens of the modeling language. *)

type t =
  | INT of int
  | STRING of string
  | IDENT of string
  (* keywords *)
  | KW_var | KW_volatile | KW_mutex | KW_event | KW_manual | KW_signaled
  | KW_sem | KW_proc | KW_main | KW_atomic
  | KW_if | KW_else | KW_while | KW_break | KW_continue | KW_return
  | KW_lock | KW_unlock | KW_wait | KW_signal | KW_reset
  | KW_acquire | KW_release
  | KW_spawn | KW_yield | KW_skip | KW_assert | KW_free | KW_alloc
  | KW_cas | KW_fetch_add
  | KW_true | KW_false | KW_null
  | KW_int | KW_bool | KW_handle
  (* punctuation and operators *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | COLON
  | ASSIGN                     (* = *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | EQ | NE | LT | LE | GT | GE
  | ANDAND | OROR | BANG
  | EOF

val keyword_of_string : string -> t option

val to_string : t -> string
(** Surface syntax of the token (for error messages and the
    pretty-printer). *)
