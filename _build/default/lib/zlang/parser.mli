(** Recursive-descent parser for the modeling language.

    Expression precedence, loosest first:
    [||] < [&&] < comparisons < [+ -] < [* / %] < unary [- !].
    Binary operators associate to the left. *)

exception Error of Lexer.pos * string

val parse : string -> Ast.program
(** Parse a whole program from source text.  Raises {!Error} or
    {!Lexer.Error}. *)

val parse_expr : string -> Ast.expr
(** Parse a single expression (for tests and the REPL-ish tooling). *)
