(* Typed, name-resolved AST: the typechecker's output and the compiler's
   input.  Locals are already assigned register slots; globals, sync
   objects and procedures are referred to by their final indices. *)

type typ = Ast.typ

type expr = {
  te : expr_node;
  tt : typ;
}

and expr_node =
  | Tint of int
  | Tbool of bool
  | Tnull
  | Tlocal of int
  | Tglobal of { gid : int; idx : expr option }  (* None: scalar *)
  | Theap of { h : expr; idx : expr }
  | Tunop of Ast.unop * expr
  | Tbinop of Ast.binop * expr * expr

type objref = {
  sid : int;
  sidx : expr option;
}

type stmt =
  | Tassign_local of { reg : int; rhs : expr }
  | Tassign_global of { gid : int; idx : expr option; rhs : expr }
  | Tassign_heap of { h : expr; idx : expr; rhs : expr }
  | Tcas of { reg : int; gid : int; idx : expr option; expect : expr; update : expr }
  | Tfetch_add of { reg : int; gid : int; idx : expr option; delta : expr }
  | Talloc of { reg : int; size : expr }
  | Tfree of { reg : int }
  | Tsync of Ast.sync_op * objref
  | Tspawn of { proc : int; args : expr list }
  | Tyield
  | Tskip
  | Tassert of expr * string
  | Tif of expr * stmt list * stmt list
  | Twhile of expr * stmt list
  | Tatomic of stmt list
  | Tbreak
  | Tcontinue
  | Treturn

type proc = {
  tp_name : string;
  tp_nparams : int;
  tp_nlocals : int;  (* includes parameters *)
  tp_body : stmt list;
}

type program = {
  tglobals : Icb_machine.Prog.global array;
  tsyncs : Icb_machine.Prog.sync_decl array;
  tprocs : proc array;
  tmain : int;
}
