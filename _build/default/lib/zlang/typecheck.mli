(** Type checking and name resolution.

    Checks, among others:
    - unique names (globals and sync objects share one namespace, since
      both are referenced bare in statements);
    - globals initialized with constant expressions of the declared type;
    - conditions and assertion bodies are [bool]; arithmetic is [int];
      equality requires both sides of one type;
    - [cas]/[fetch_add] only target volatile globals;
    - [lock]/[unlock] on mutexes, [wait]/[signal]/[reset] on events,
      [acquire]/[release] on semaphores; array objects are indexed, scalar
      objects are not;
    - heap cells hold [int]s; only [handle]-typed locals are dereferenced;
    - [break]/[continue] appear inside loops; [spawn] arities and types
      match; [main] exists, takes no parameters, and is not spawned.

    Local variables get block scope with shadowing disallowed — models are
    small and shadowing in them is invariably a bug. *)

exception Error of Ast.pos * string

val check : Ast.program -> Tast.program
(** Raises {!Error} with a position and message on ill-typed input. *)

val error_to_string : Ast.pos -> string -> string
