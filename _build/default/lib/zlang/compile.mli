(** Code generation: typed AST to the guest instruction set.

    The generated code maintains the machine's key invariant — at most one
    shared-variable access per instruction — by decomposing expressions:
    every global, array or heap read becomes its own [Load] into a
    temporary register, evaluated left to right.  [&&] and [||]
    short-circuit, so their right operands' shared accesses happen only
    when the left operand does not decide the result. *)

val program : Tast.program -> Icb_machine.Prog.t
(** The result always passes [Prog.validate]. *)
