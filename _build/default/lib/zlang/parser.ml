exception Error of Lexer.pos * string

type stream = {
  toks : (Token.t * Lexer.pos) array;
  mutable i : int;
}

let peek s = fst s.toks.(s.i)
let pos s = snd s.toks.(s.i)
let advance s = if s.i < Array.length s.toks - 1 then s.i <- s.i + 1

let fail s msg = raise (Error (pos s, msg))

let expect s tok =
  if peek s = tok then advance s
  else
    fail s
      (Printf.sprintf "expected %s but found %s" (Token.to_string tok)
         (Token.to_string (peek s)))

let accept s tok =
  if peek s = tok then begin
    advance s;
    true
  end
  else false

let ident s =
  match peek s with
  | Token.IDENT name ->
    advance s;
    name
  | t -> fail s (Printf.sprintf "expected identifier, found %s" (Token.to_string t))

let typ s =
  match peek s with
  | Token.KW_int -> advance s; Ast.Tint
  | Token.KW_bool -> advance s; Ast.Tbool
  | Token.KW_handle -> advance s; Ast.Thandle
  | t -> fail s (Printf.sprintf "expected a type, found %s" (Token.to_string t))

(* --- expressions ------------------------------------------------------- *)

let rec expr s = or_expr s

and or_expr s =
  let rec go lhs =
    let p = pos s in
    if accept s Token.OROR then
      go { Ast.e = Ast.Ebinop (Ast.Bor, lhs, and_expr s); epos = p }
    else lhs
  in
  go (and_expr s)

and and_expr s =
  let rec go lhs =
    let p = pos s in
    if accept s Token.ANDAND then
      go { Ast.e = Ast.Ebinop (Ast.Band, lhs, cmp_expr s); epos = p }
    else lhs
  in
  go (cmp_expr s)

and cmp_expr s =
  let op_of = function
    | Token.EQ -> Some Ast.Beq
    | Token.NE -> Some Ast.Bne
    | Token.LT -> Some Ast.Blt
    | Token.LE -> Some Ast.Ble
    | Token.GT -> Some Ast.Bgt
    | Token.GE -> Some Ast.Bge
    | _ -> None
  in
  let rec go lhs =
    match op_of (peek s) with
    | Some op ->
      let p = pos s in
      advance s;
      go { Ast.e = Ast.Ebinop (op, lhs, add_expr s); epos = p }
    | None -> lhs
  in
  go (add_expr s)

and add_expr s =
  let rec go lhs =
    let p = pos s in
    if accept s Token.PLUS then
      go { Ast.e = Ast.Ebinop (Ast.Badd, lhs, mul_expr s); epos = p }
    else if accept s Token.MINUS then
      go { Ast.e = Ast.Ebinop (Ast.Bsub, lhs, mul_expr s); epos = p }
    else lhs
  in
  go (mul_expr s)

and mul_expr s =
  let rec go lhs =
    let p = pos s in
    if accept s Token.STAR then
      go { Ast.e = Ast.Ebinop (Ast.Bmul, lhs, unary_expr s); epos = p }
    else if accept s Token.SLASH then
      go { Ast.e = Ast.Ebinop (Ast.Bdiv, lhs, unary_expr s); epos = p }
    else if accept s Token.PERCENT then
      go { Ast.e = Ast.Ebinop (Ast.Bmod, lhs, unary_expr s); epos = p }
    else lhs
  in
  go (unary_expr s)

and unary_expr s =
  let p = pos s in
  if accept s Token.MINUS then
    { Ast.e = Ast.Eunop (Ast.Uneg, unary_expr s); epos = p }
  else if accept s Token.BANG then
    { Ast.e = Ast.Eunop (Ast.Unot, unary_expr s); epos = p }
  else primary_expr s

and primary_expr s =
  let p = pos s in
  match peek s with
  | Token.INT n ->
    advance s;
    { Ast.e = Ast.Eint n; epos = p }
  | Token.KW_true ->
    advance s;
    { Ast.e = Ast.Ebool true; epos = p }
  | Token.KW_false ->
    advance s;
    { Ast.e = Ast.Ebool false; epos = p }
  | Token.KW_null ->
    advance s;
    { Ast.e = Ast.Enull; epos = p }
  | Token.IDENT name ->
    advance s;
    if accept s Token.LBRACKET then begin
      let idx = expr s in
      expect s Token.RBRACKET;
      { Ast.e = Ast.Eindex (name, idx); epos = p }
    end
    else { Ast.e = Ast.Evar name; epos = p }
  | Token.LPAREN ->
    advance s;
    let e = expr s in
    expect s Token.RPAREN;
    e
  | t -> fail s (Printf.sprintf "expected an expression, found %s" (Token.to_string t))

(* --- statements -------------------------------------------------------- *)

let objref s =
  let p = pos s in
  let name = ident s in
  let idx =
    if accept s Token.LBRACKET then begin
      let e = expr s in
      expect s Token.RBRACKET;
      Some e
    end
    else None
  in
  { Ast.oname = name; oindex = idx; opos = p }

let gtarget s =
  let p = pos s in
  let name = ident s in
  let idx =
    if accept s Token.LBRACKET then begin
      let e = expr s in
      expect s Token.RBRACKET;
      Some e
    end
    else None
  in
  { Ast.tname = name; tindex = idx; tpos = p }

let rec block s =
  expect s Token.LBRACE;
  let rec go acc =
    if accept s Token.RBRACE then List.rev acc else go (stmt s :: acc)
  in
  go []

and stmt s =
  let p = pos s in
  let mk node = { Ast.s = node; spos = p } in
  let sync_stmt op =
    advance s;
    expect s Token.LPAREN;
    let o = objref s in
    expect s Token.RPAREN;
    expect s Token.SEMI;
    mk (Ast.Ssync (op, o))
  in
  match peek s with
  | Token.KW_var ->
    advance s;
    let name = ident s in
    expect s Token.COLON;
    let t = typ s in
    let init = if accept s Token.ASSIGN then Some (expr s) else None in
    expect s Token.SEMI;
    mk (Ast.Sdecl { name; typ = t; init })
  | Token.KW_lock -> sync_stmt Ast.Olock
  | Token.KW_unlock -> sync_stmt Ast.Ounlock
  | Token.KW_wait -> sync_stmt Ast.Owait
  | Token.KW_signal -> sync_stmt Ast.Osignal
  | Token.KW_reset -> sync_stmt Ast.Oreset
  | Token.KW_acquire -> sync_stmt Ast.Oacquire
  | Token.KW_release -> sync_stmt Ast.Orelease
  | Token.KW_free ->
    advance s;
    expect s Token.LPAREN;
    let name = ident s in
    expect s Token.RPAREN;
    expect s Token.SEMI;
    mk (Ast.Sfree name)
  | Token.KW_spawn ->
    advance s;
    let proc = ident s in
    expect s Token.LPAREN;
    let args =
      if peek s = Token.RPAREN then []
      else
        let rec go acc =
          let e = expr s in
          if accept s Token.COMMA then go (e :: acc) else List.rev (e :: acc)
        in
        go []
    in
    expect s Token.RPAREN;
    expect s Token.SEMI;
    mk (Ast.Sspawn { proc; args })
  | Token.KW_yield ->
    advance s;
    expect s Token.SEMI;
    mk Ast.Syield
  | Token.KW_skip ->
    advance s;
    expect s Token.SEMI;
    mk Ast.Sskip
  | Token.KW_break ->
    advance s;
    expect s Token.SEMI;
    mk Ast.Sbreak
  | Token.KW_continue ->
    advance s;
    expect s Token.SEMI;
    mk Ast.Scontinue
  | Token.KW_return ->
    advance s;
    expect s Token.SEMI;
    mk Ast.Sreturn
  | Token.KW_assert ->
    advance s;
    expect s Token.LPAREN;
    let e = expr s in
    let msg =
      if accept s Token.COMMA then begin
        match peek s with
        | Token.STRING m ->
          advance s;
          m
        | t ->
          fail s
            (Printf.sprintf "expected a string message, found %s"
               (Token.to_string t))
      end
      else "assertion failed"
    in
    expect s Token.RPAREN;
    expect s Token.SEMI;
    mk (Ast.Sassert (e, msg))
  | Token.KW_if -> if_stmt s
  | Token.KW_while ->
    advance s;
    expect s Token.LPAREN;
    let cond = expr s in
    expect s Token.RPAREN;
    let body = block s in
    mk (Ast.Swhile (cond, body))
  | Token.KW_atomic ->
    advance s;
    mk (Ast.Satomic (block s))
  | Token.IDENT _ ->
    let name = ident s in
    let lv =
      if accept s Token.LBRACKET then begin
        let idx = expr s in
        expect s Token.RBRACKET;
        Ast.Lindex (name, idx)
      end
      else Ast.Lvar name
    in
    expect s Token.ASSIGN;
    let node =
      match peek s, lv with
      | Token.KW_cas, Ast.Lvar dst ->
        advance s;
        expect s Token.LPAREN;
        let glob = gtarget s in
        expect s Token.COMMA;
        let expect_v = expr s in
        expect s Token.COMMA;
        let update = expr s in
        expect s Token.RPAREN;
        Ast.Scas { dst; glob; expect = expect_v; update }
      | Token.KW_fetch_add, Ast.Lvar dst ->
        advance s;
        expect s Token.LPAREN;
        let glob = gtarget s in
        expect s Token.COMMA;
        let delta = expr s in
        expect s Token.RPAREN;
        Ast.Sfetch_add { dst; glob; delta }
      | Token.KW_alloc, Ast.Lvar dst ->
        advance s;
        expect s Token.LPAREN;
        let size = expr s in
        expect s Token.RPAREN;
        Ast.Salloc { dst; size }
      | (Token.KW_cas | Token.KW_fetch_add | Token.KW_alloc), Ast.Lindex _ ->
        fail s "cas/fetch_add/alloc results must be assigned to a local variable"
      | _ -> Ast.Sassign (lv, expr s)
    in
    expect s Token.SEMI;
    mk node
  | t -> fail s (Printf.sprintf "expected a statement, found %s" (Token.to_string t))

and if_stmt s =
  let p = pos s in
  expect s Token.KW_if;
  expect s Token.LPAREN;
  let cond = expr s in
  expect s Token.RPAREN;
  let then_b = block s in
  let else_b =
    if accept s Token.KW_else then
      if peek s = Token.KW_if then [ if_stmt s ] else block s
    else []
  in
  { Ast.s = Ast.Sif (cond, then_b, else_b); spos = p }

(* --- top-level declarations -------------------------------------------- *)

let array_suffix s =
  if accept s Token.LBRACKET then begin
    let e = expr s in
    expect s Token.RBRACKET;
    Some e
  end
  else None

let parse_program s =
  let globals = ref [] in
  let syncs = ref [] in
  let procs = ref [] in
  let global_decl ~volatile =
    let p = pos s in
    expect s Token.KW_var;
    let name = ident s in
    let size = array_suffix s in
    expect s Token.COLON;
    let t = typ s in
    let init = if accept s Token.ASSIGN then Some (expr s) else None in
    expect s Token.SEMI;
    globals :=
      {
        Ast.g_name = name;
        g_type = t;
        g_size = size;
        g_init = init;
        g_volatile = volatile;
        g_pos = p;
      }
      :: !globals
  in
  let rec go () =
    match peek s with
    | Token.EOF -> ()
    | Token.KW_volatile ->
      advance s;
      global_decl ~volatile:true;
      go ()
    | Token.KW_var ->
      global_decl ~volatile:false;
      go ()
    | Token.KW_mutex ->
      let p = pos s in
      advance s;
      let name = ident s in
      let size = array_suffix s in
      expect s Token.SEMI;
      syncs :=
        { Ast.s_name = name; s_kind = Ast.Dmutex; s_size = size; s_pos = p }
        :: !syncs;
      go ()
    | Token.KW_event ->
      let p = pos s in
      advance s;
      let manual = accept s Token.KW_manual in
      let signaled = accept s Token.KW_signaled in
      let name = ident s in
      let size = array_suffix s in
      expect s Token.SEMI;
      syncs :=
        {
          Ast.s_name = name;
          s_kind = Ast.Devent { manual; signaled };
          s_size = size;
          s_pos = p;
        }
        :: !syncs;
      go ()
    | Token.KW_sem ->
      let p = pos s in
      advance s;
      let name = ident s in
      let size = array_suffix s in
      let init = if accept s Token.ASSIGN then Some (expr s) else None in
      expect s Token.SEMI;
      syncs :=
        { Ast.s_name = name; s_kind = Ast.Dsem init; s_size = size; s_pos = p }
        :: !syncs;
      go ()
    | Token.KW_proc ->
      let p = pos s in
      advance s;
      let name = ident s in
      expect s Token.LPAREN;
      let params =
        if peek s = Token.RPAREN then []
        else
          let rec params_go acc =
            let pname = ident s in
            expect s Token.COLON;
            let t = typ s in
            if accept s Token.COMMA then params_go ((pname, t) :: acc)
            else List.rev ((pname, t) :: acc)
          in
          params_go []
      in
      expect s Token.RPAREN;
      let body = block s in
      procs :=
        { Ast.p_name = name; p_params = params; p_body = body; p_pos = p }
        :: !procs;
      go ()
    | Token.KW_main ->
      let p = pos s in
      advance s;
      let body = block s in
      procs :=
        { Ast.p_name = "main"; p_params = []; p_body = body; p_pos = p }
        :: !procs;
      go ()
    | t ->
      fail s
        (Printf.sprintf "expected a top-level declaration, found %s"
           (Token.to_string t))
  in
  go ();
  {
    Ast.globals = List.rev !globals;
    syncs = List.rev !syncs;
    procs = List.rev !procs;
  }

let stream_of_source src = { toks = Array.of_list (Lexer.tokenize src); i = 0 }

let parse src = parse_program (stream_of_source src)

let parse_expr src =
  let s = stream_of_source src in
  let e = expr s in
  expect s Token.EOF;
  e
