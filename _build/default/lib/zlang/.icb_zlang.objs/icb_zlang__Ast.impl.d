lib/zlang/ast.ml: Lexer
