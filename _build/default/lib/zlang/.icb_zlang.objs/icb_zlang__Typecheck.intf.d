lib/zlang/typecheck.mli: Ast Tast
