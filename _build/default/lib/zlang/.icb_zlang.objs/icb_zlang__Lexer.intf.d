lib/zlang/lexer.mli: Format Token
