lib/zlang/compile.mli: Icb_machine Tast
