lib/zlang/pretty.ml: Ast Format List
