lib/zlang/ast.mli: Lexer
