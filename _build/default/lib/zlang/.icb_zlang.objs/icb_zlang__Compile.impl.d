lib/zlang/compile.ml: Array Ast Buffer_array Icb_machine List Tast
