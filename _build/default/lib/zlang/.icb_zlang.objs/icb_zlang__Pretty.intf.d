lib/zlang/pretty.mli: Ast Format
