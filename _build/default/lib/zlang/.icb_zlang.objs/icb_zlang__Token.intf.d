lib/zlang/token.mli:
