lib/zlang/zl.ml: Compile Fun Lexer Parser Typecheck
