lib/zlang/parser.ml: Array Ast Lexer List Printf Token
