lib/zlang/buffer_array.mli:
