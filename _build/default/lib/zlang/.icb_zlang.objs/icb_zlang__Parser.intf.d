lib/zlang/parser.mli: Ast Lexer
