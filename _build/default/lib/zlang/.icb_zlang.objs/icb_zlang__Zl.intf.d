lib/zlang/zl.mli: Ast Icb_machine
