lib/zlang/typecheck.ml: Array Ast Format Hashtbl Icb_machine Lexer List Tast
