lib/zlang/tast.ml: Ast Icb_machine
