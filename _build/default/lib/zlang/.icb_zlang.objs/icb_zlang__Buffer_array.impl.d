lib/zlang/buffer_array.ml: Array
