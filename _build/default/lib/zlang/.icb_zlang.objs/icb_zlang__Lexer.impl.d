lib/zlang/lexer.ml: Buffer Format List Printf String Token
