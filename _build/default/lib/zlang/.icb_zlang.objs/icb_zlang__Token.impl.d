lib/zlang/token.ml: List Printf
