module Instr = Icb_machine.Instr
module Prog = Icb_machine.Prog
module Value = Icb_machine.Value

(* Per-procedure emission state.  Temporaries live above the named locals;
   the temp cursor resets at every statement (values never flow across
   statements except through named locals). *)
type emitter = {
  code : Instr.t Buffer_array.t;
  nlocals : int;
  mutable temp : int;
  mutable max_reg : int;
}

let fresh_temp em =
  let r = em.nlocals + em.temp in
  em.temp <- em.temp + 1;
  em.max_reg <- max em.max_reg (r + 1);
  r

let reset_temps em = em.temp <- 0

let emit em i = Buffer_array.push em.code i

let here em = Buffer_array.length em.code

(* Emit a jump with a to-be-patched target; returns the patch handle. *)
let emit_jump em =
  let at = here em in
  emit em (Instr.Jump (-1));
  at

let emit_jz em cond =
  let at = here em in
  emit em (Instr.Jump_if_zero { cond; target = -1 });
  at

let patch em at target =
  match Buffer_array.get em.code at with
  | Instr.Jump _ -> Buffer_array.set em.code at (Instr.Jump target)
  | Instr.Jump_if_zero { cond; _ } ->
    Buffer_array.set em.code at (Instr.Jump_if_zero { cond; target })
  | _ -> invalid_arg "Compile.patch: not a jump"

let prim_of_binop : Ast.binop -> Instr.prim = function
  | Ast.Badd -> Instr.Add
  | Ast.Bsub -> Instr.Sub
  | Ast.Bmul -> Instr.Mul
  | Ast.Bdiv -> Instr.Div
  | Ast.Bmod -> Instr.Mod
  | Ast.Beq -> Instr.Eq
  | Ast.Bne -> Instr.Ne
  | Ast.Blt -> Instr.Lt
  | Ast.Ble -> Instr.Le
  | Ast.Bgt -> Instr.Gt
  | Ast.Bge -> Instr.Ge
  | Ast.Band -> Instr.And
  | Ast.Bor -> Instr.Or

(* Compile an expression to an operand.  Constants become immediates;
   everything else lands in a register. *)
let rec expr em (e : Tast.expr) : Instr.operand =
  match e.te with
  | Tast.Tint n -> Instr.Imm (Value.Int n)
  | Tast.Tbool b -> Instr.Imm (Value.Bool b)
  | Tast.Tnull -> Instr.Imm Value.null
  | Tast.Tlocal r -> Instr.Reg r
  | Tast.Tglobal { gid; idx } ->
    let iop = index_operand em idx in
    let dst = fresh_temp em in
    emit em (Instr.Load { dst; gid; idx = iop });
    Instr.Reg dst
  | Tast.Theap { h; idx } ->
    let hop = expr em h in
    let iop = expr em idx in
    let dst = fresh_temp em in
    emit em (Instr.Load_heap { dst; h = hop; idx = iop });
    Instr.Reg dst
  | Tast.Tunop (op, a) ->
    let aop = expr em a in
    let dst = fresh_temp em in
    let prim = match op with Ast.Uneg -> Instr.Neg | Ast.Unot -> Instr.Not in
    emit em (Instr.Prim { dst; op = prim; args = [ aop ] });
    Instr.Reg dst
  | Tast.Tbinop (Ast.Band, a, b) ->
    (* dst := a; if dst then dst := b *)
    let dst = fresh_temp em in
    let aop = expr em a in
    emit em (Instr.Mov { dst; src = aop });
    let skip = emit_jz em (Instr.Reg dst) in
    let bop = expr em b in
    emit em (Instr.Mov { dst; src = bop });
    patch em skip (here em);
    Instr.Reg dst
  | Tast.Tbinop (Ast.Bor, a, b) ->
    (* dst := a; if !dst then dst := b *)
    let dst = fresh_temp em in
    let aop = expr em a in
    emit em (Instr.Mov { dst; src = aop });
    let neg = fresh_temp em in
    emit em (Instr.Prim { dst = neg; op = Instr.Not; args = [ Instr.Reg dst ] });
    let skip = emit_jz em (Instr.Reg neg) in
    let bop = expr em b in
    emit em (Instr.Mov { dst; src = bop });
    patch em skip (here em);
    Instr.Reg dst
  | Tast.Tbinop (op, a, b) ->
    let aop = expr em a in
    let bop = expr em b in
    let dst = fresh_temp em in
    emit em (Instr.Prim { dst; op = prim_of_binop op; args = [ aop; bop ] });
    Instr.Reg dst

and index_operand em = function
  | None -> Instr.Imm (Value.Int 0)
  | Some e -> expr em e

let objref em ({ sid; sidx } : Tast.objref) : Instr.objref =
  { Instr.sid; sidx = index_operand em sidx }

type loop_ctx = {
  break_patches : int list ref;
  continue_target : int;
}

let rec stmt em ~loop (st : Tast.stmt) =
  reset_temps em;
  match st with
  | Tast.Tassign_local { reg; rhs } ->
    let op = expr em rhs in
    emit em (Instr.Mov { dst = reg; src = op })
  | Tast.Tassign_global { gid; idx; rhs } ->
    let iop = index_operand em idx in
    let rop = expr em rhs in
    emit em (Instr.Store { gid; idx = iop; src = rop })
  | Tast.Tassign_heap { h; idx; rhs } ->
    let hop = expr em h in
    let iop = expr em idx in
    let rop = expr em rhs in
    emit em (Instr.Store_heap { h = hop; idx = iop; src = rop })
  | Tast.Tcas { reg; gid; idx; expect; update } ->
    let iop = index_operand em idx in
    let eop = expr em expect in
    let uop = expr em update in
    emit em (Instr.Cas { dst = reg; gid; idx = iop; expect = eop; update = uop })
  | Tast.Tfetch_add { reg; gid; idx; delta } ->
    let iop = index_operand em idx in
    let dop = expr em delta in
    emit em (Instr.Fetch_add { dst = reg; gid; idx = iop; delta = dop })
  | Tast.Talloc { reg; size } ->
    let sop = expr em size in
    emit em (Instr.Alloc { dst = reg; size = sop })
  | Tast.Tfree { reg } -> emit em (Instr.Free { h = Instr.Reg reg })
  | Tast.Tsync (op, o) ->
    let o = objref em o in
    emit em
      (match op with
      | Ast.Olock -> Instr.Lock o
      | Ast.Ounlock -> Instr.Unlock o
      | Ast.Owait -> Instr.Wait o
      | Ast.Osignal -> Instr.Signal o
      | Ast.Oreset -> Instr.Reset o
      | Ast.Oacquire -> Instr.Sem_acquire o
      | Ast.Orelease -> Instr.Sem_release o)
  | Tast.Tspawn { proc; args } ->
    let ops = List.map (expr em) args in
    emit em (Instr.Spawn { proc; args = ops })
  | Tast.Tyield -> emit em Instr.Yield
  | Tast.Tskip -> ()
  | Tast.Tassert (e, msg) ->
    let op = expr em e in
    emit em (Instr.Assert { cond = op; msg })
  | Tast.Tif (cond, then_b, else_b) ->
    let cop = expr em cond in
    let to_else = emit_jz em cop in
    List.iter (stmt em ~loop) then_b;
    if else_b = [] then patch em to_else (here em)
    else begin
      let to_end = emit_jump em in
      patch em to_else (here em);
      List.iter (stmt em ~loop) else_b;
      patch em to_end (here em)
    end
  | Tast.Tatomic body ->
    emit em Instr.Atomic_begin;
    List.iter (stmt em ~loop) body;
    emit em Instr.Atomic_end
  | Tast.Twhile (cond, body) ->
    let top = here em in
    let cop = expr em cond in
    let exit_jump = emit_jz em cop in
    let break_patches = ref [] in
    let ctx = { break_patches; continue_target = top } in
    List.iter (stmt em ~loop:(Some ctx)) body;
    emit em (Instr.Jump top);
    patch em exit_jump (here em);
    List.iter (fun at -> patch em at (here em)) !break_patches
  | Tast.Tbreak -> (
    match loop with
    | Some ctx -> ctx.break_patches := emit_jump em :: !(ctx.break_patches)
    | None -> invalid_arg "Compile: break outside loop")
  | Tast.Tcontinue -> (
    match loop with
    | Some ctx -> emit em (Instr.Jump ctx.continue_target)
    | None -> invalid_arg "Compile: continue outside loop")
  | Tast.Treturn -> emit em Instr.Halt

let proc (p : Tast.proc) : Prog.proc =
  let em =
    {
      code = Buffer_array.create ();
      nlocals = p.tp_nlocals;
      temp = 0;
      max_reg = p.tp_nlocals;
    }
  in
  List.iter (stmt em ~loop:None) p.tp_body;
  emit em Instr.Halt;
  {
    Prog.pname = p.tp_name;
    nparams = p.tp_nparams;
    nregs = max 1 em.max_reg;
    code = Buffer_array.to_array em.code;
  }

let program (tp : Tast.program) : Prog.t =
  let prog =
    {
      Prog.globals = tp.tglobals;
      syncs = tp.tsyncs;
      procs = Array.map proc tp.tprocs;
      main = tp.tmain;
    }
  in
  match Prog.validate prog with
  | Ok () -> prog
  | Error msg -> invalid_arg ("Compile.program: generated invalid code: " ^ msg)
