type pos = Lexer.pos

type typ =
  | Tint
  | Tbool
  | Thandle

type unop =
  | Uneg
  | Unot

type binop =
  | Badd | Bsub | Bmul | Bdiv | Bmod
  | Beq | Bne | Blt | Ble | Bgt | Bge
  | Band | Bor

type expr = {
  e : expr_node;
  epos : pos;
}

and expr_node =
  | Eint of int
  | Ebool of bool
  | Enull
  | Evar of string
  | Eindex of string * expr
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr

type objref = {
  oname : string;
  oindex : expr option;
  opos : pos;
}

type gtarget = {
  tname : string;
  tindex : expr option;
  tpos : pos;
}

type lvalue =
  | Lvar of string
  | Lindex of string * expr

type sync_op =
  | Olock | Ounlock
  | Owait | Osignal | Oreset
  | Oacquire | Orelease

type stmt = {
  s : stmt_node;
  spos : pos;
}

and stmt_node =
  | Sdecl of { name : string; typ : typ; init : expr option }
  | Sassign of lvalue * expr
  | Scas of { dst : string; glob : gtarget; expect : expr; update : expr }
  | Sfetch_add of { dst : string; glob : gtarget; delta : expr }
  | Salloc of { dst : string; size : expr }
  | Sfree of string
  | Ssync of sync_op * objref
  | Sspawn of { proc : string; args : expr list }
  | Syield
  | Sskip
  | Sassert of expr * string
  | Sif of expr * block * block
  | Swhile of expr * block
  | Satomic of block
  | Sbreak
  | Scontinue
  | Sreturn

and block = stmt list

type global_decl = {
  g_name : string;
  g_type : typ;
  g_size : expr option;
  g_init : expr option;
  g_volatile : bool;
  g_pos : pos;
}

type sync_kind_decl =
  | Dmutex
  | Devent of { manual : bool; signaled : bool }
  | Dsem of expr option

type sync_decl = {
  s_name : string;
  s_kind : sync_kind_decl;
  s_size : expr option;
  s_pos : pos;
}

type proc_decl = {
  p_name : string;
  p_params : (string * typ) list;
  p_body : block;
  p_pos : pos;
}

type program = {
  globals : global_decl list;
  syncs : sync_decl list;
  procs : proc_decl list;
}

let dummy_pos : pos = { line = 0; col = 0 }

let typ_to_string = function
  | Tint -> "int"
  | Tbool -> "bool"
  | Thandle -> "handle"
