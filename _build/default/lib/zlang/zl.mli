(** One-call front end: source text to an executable guest program. *)

exception Error of string
(** Raised with a formatted location + message for any lexical, syntactic
    or type error. *)

val compile_source : string -> Icb_machine.Prog.t
(** Lex, parse, type-check and compile.  Raises {!Error}. *)

val compile_file : string -> Icb_machine.Prog.t
(** Like {!compile_source}, reading the program from a file. *)

val parse_source : string -> Ast.program
(** Front half only, for tooling.  Raises {!Error}. *)
