(* Precedence levels, loosest first; used to parenthesize minimally. *)
let prec_of_binop = function
  | Ast.Bor -> 1
  | Ast.Band -> 2
  | Ast.Beq | Ast.Bne | Ast.Blt | Ast.Ble | Ast.Bgt | Ast.Bge -> 3
  | Ast.Badd | Ast.Bsub -> 4
  | Ast.Bmul | Ast.Bdiv | Ast.Bmod -> 5

let binop_symbol = function
  | Ast.Badd -> "+" | Ast.Bsub -> "-" | Ast.Bmul -> "*"
  | Ast.Bdiv -> "/" | Ast.Bmod -> "%"
  | Ast.Beq -> "==" | Ast.Bne -> "!=" | Ast.Blt -> "<" | Ast.Ble -> "<="
  | Ast.Bgt -> ">" | Ast.Bge -> ">="
  | Ast.Band -> "&&" | Ast.Bor -> "||"

let rec pp_expr_prec prec fmt (e : Ast.expr) =
  match e.e with
  | Ast.Eint n ->
    if n < 0 then Format.fprintf fmt "(%d)" n else Format.fprintf fmt "%d" n
  | Ast.Ebool b -> Format.fprintf fmt "%b" b
  | Ast.Enull -> Format.fprintf fmt "null"
  | Ast.Evar name -> Format.fprintf fmt "%s" name
  | Ast.Eindex (name, idx) ->
    Format.fprintf fmt "%s[%a]" name (pp_expr_prec 0) idx
  | Ast.Eunop (op, a) ->
    let sym = match op with Ast.Uneg -> "-" | Ast.Unot -> "!" in
    Format.fprintf fmt "%s%a" sym (pp_expr_prec 6) a
  | Ast.Ebinop (op, a, b) ->
    let p = prec_of_binop op in
    let open_paren = p < prec in
    if open_paren then Format.fprintf fmt "(";
    (* left-associative: the left child may share this level, the right
       child must bind tighter *)
    Format.fprintf fmt "%a %s %a" (pp_expr_prec p) a (binop_symbol op)
      (pp_expr_prec (p + 1)) b;
    if open_paren then Format.fprintf fmt ")"

let pp_expr fmt e = pp_expr_prec 0 fmt e

let pp_objref fmt (o : Ast.objref) =
  match o.oindex with
  | None -> Format.fprintf fmt "%s" o.oname
  | Some e -> Format.fprintf fmt "%s[%a]" o.oname pp_expr e

let pp_gtarget fmt (t : Ast.gtarget) =
  match t.tindex with
  | None -> Format.fprintf fmt "%s" t.tname
  | Some e -> Format.fprintf fmt "%s[%a]" t.tname pp_expr e

let sync_op_name = function
  | Ast.Olock -> "lock" | Ast.Ounlock -> "unlock"
  | Ast.Owait -> "wait" | Ast.Osignal -> "signal" | Ast.Oreset -> "reset"
  | Ast.Oacquire -> "acquire" | Ast.Orelease -> "release"

let rec pp_stmt fmt (st : Ast.stmt) =
  let f x = Format.fprintf fmt x in
  match st.s with
  | Ast.Sdecl { name; typ; init = None } ->
    f "var %s: %s;" name (Ast.typ_to_string typ)
  | Ast.Sdecl { name; typ; init = Some e } ->
    f "var %s: %s = %a;" name (Ast.typ_to_string typ) pp_expr e
  | Ast.Sassign (Ast.Lvar name, e) -> f "%s = %a;" name pp_expr e
  | Ast.Sassign (Ast.Lindex (name, idx), e) ->
    f "%s[%a] = %a;" name pp_expr idx pp_expr e
  | Ast.Scas { dst; glob; expect; update } ->
    f "%s = cas(%a, %a, %a);" dst pp_gtarget glob pp_expr expect pp_expr update
  | Ast.Sfetch_add { dst; glob; delta } ->
    f "%s = fetch_add(%a, %a);" dst pp_gtarget glob pp_expr delta
  | Ast.Salloc { dst; size } -> f "%s = alloc(%a);" dst pp_expr size
  | Ast.Sfree name -> f "free(%s);" name
  | Ast.Ssync (op, o) -> f "%s(%a);" (sync_op_name op) pp_objref o
  | Ast.Sspawn { proc; args } ->
    f "spawn %s(" proc;
    List.iteri
      (fun i a ->
        if i > 0 then f ", ";
        pp_expr fmt a)
      args;
    f ");"
  | Ast.Syield -> f "yield;"
  | Ast.Sskip -> f "skip;"
  | Ast.Sassert (e, msg) -> f "assert(%a, %S);" pp_expr e msg
  | Ast.Sif (cond, then_b, else_b) ->
    f "@[<v 2>if (%a) {%a@]@ }" pp_expr cond pp_block then_b;
    if else_b <> [] then f "@[<v 2> else {%a@]@ }" pp_block else_b
  | Ast.Swhile (cond, body) ->
    f "@[<v 2>while (%a) {%a@]@ }" pp_expr cond pp_block body
  | Ast.Satomic body -> f "@[<v 2>atomic {%a@]@ }" pp_block body
  | Ast.Sbreak -> f "break;"
  | Ast.Scontinue -> f "continue;"
  | Ast.Sreturn -> f "return;"

and pp_block fmt block =
  List.iter (fun st -> Format.fprintf fmt "@ %a" pp_stmt st) block

let pp_global fmt (g : Ast.global_decl) =
  let f x = Format.fprintf fmt x in
  if g.g_volatile then f "volatile ";
  f "var %s" g.g_name;
  (match g.g_size with Some e -> f "[%a]" pp_expr e | None -> ());
  f ": %s" (Ast.typ_to_string g.g_type);
  (match g.g_init with Some e -> f " = %a" pp_expr e | None -> ());
  f ";"

let pp_sync fmt (s : Ast.sync_decl) =
  let f x = Format.fprintf fmt x in
  (match s.s_kind with
  | Ast.Dmutex -> f "mutex"
  | Ast.Devent { manual; signaled } ->
    f "event";
    if manual then f " manual";
    if signaled then f " signaled"
  | Ast.Dsem _ -> f "sem");
  f " %s" s.s_name;
  (match s.s_size with Some e -> f "[%a]" pp_expr e | None -> ());
  (match s.s_kind with
  | Ast.Dsem (Some e) -> f " = %a" pp_expr e
  | Ast.Dsem None | Ast.Dmutex | Ast.Devent _ -> ());
  f ";"

let pp_proc fmt (p : Ast.proc_decl) =
  if p.p_name = "main" && p.p_params = [] then
    Format.fprintf fmt "@[<v 2>main {%a@]@ }" pp_block p.p_body
  else begin
    Format.fprintf fmt "@[<v 2>proc %s(" p.p_name;
    List.iteri
      (fun i (name, t) ->
        if i > 0 then Format.fprintf fmt ", ";
        Format.fprintf fmt "%s: %s" name (Ast.typ_to_string t))
      p.p_params;
    Format.fprintf fmt ") {%a@]@ }" pp_block p.p_body
  end

let pp_program fmt (p : Ast.program) =
  Format.fprintf fmt "@[<v>";
  List.iter (fun g -> Format.fprintf fmt "%a@ " pp_global g) p.globals;
  List.iter (fun s -> Format.fprintf fmt "%a@ " pp_sync s) p.syncs;
  List.iter (fun pr -> Format.fprintf fmt "%a@ " pp_proc pr) p.procs;
  Format.fprintf fmt "@]"

let expr_to_string e = Format.asprintf "%a" pp_expr e

let program_to_string p = Format.asprintf "%a" pp_program p
