(** A growable array, used by the code emitter (jump patching needs
    random-access writes, which rules out plain lists). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val to_array : 'a t -> 'a array
