(** Pretty-printer for the surface language.

    [Parser.parse (to_string p)] reconstructs [p] up to positions; the
    property tests rely on this round trip. *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_program : Format.formatter -> Ast.program -> unit

val expr_to_string : Ast.expr -> string
val program_to_string : Ast.program -> string
