module Prog = Icb_machine.Prog
module Value = Icb_machine.Value

exception Error of Ast.pos * string

let error_to_string (pos : Ast.pos) msg =
  Format.asprintf "%a: %s" Lexer.pp_pos pos msg

let err pos fmt = Format.kasprintf (fun s -> raise (Error (pos, s))) fmt

(* --- constant evaluation (global initializers, sizes) ------------------ *)

let rec const_eval (e : Ast.expr) : Value.t =
  match e.e with
  | Ast.Eint n -> Value.Int n
  | Ast.Ebool b -> Value.Bool b
  | Ast.Enull -> Value.null
  | Ast.Eunop (Ast.Uneg, e') -> (
    match const_eval e' with
    | Value.Int n -> Value.Int (-n)
    | _ -> err e.epos "constant expression: negation of a non-integer")
  | Ast.Eunop (Ast.Unot, e') -> (
    match const_eval e' with
    | Value.Bool b -> Value.Bool (not b)
    | _ -> err e.epos "constant expression: negation of a non-boolean")
  | Ast.Ebinop (op, a, b) -> (
    match op, const_eval a, const_eval b with
    | Ast.Badd, Value.Int x, Value.Int y -> Value.Int (x + y)
    | Ast.Bsub, Value.Int x, Value.Int y -> Value.Int (x - y)
    | Ast.Bmul, Value.Int x, Value.Int y -> Value.Int (x * y)
    | Ast.Bdiv, Value.Int x, Value.Int y when y <> 0 -> Value.Int (x / y)
    | Ast.Bmod, Value.Int x, Value.Int y when y <> 0 -> Value.Int (x mod y)
    | _ -> err e.epos "not a constant expression")
  | Ast.Evar _ | Ast.Eindex _ ->
    err e.epos "not a constant expression (variables are not allowed here)"

let const_int (e : Ast.expr) =
  match const_eval e with
  | Value.Int n -> n
  | _ -> err e.epos "expected a constant integer"

(* --- environments ------------------------------------------------------- *)

type global_info = {
  gi_id : int;
  gi_type : Ast.typ;
  gi_array : bool;
  gi_volatile : bool;
}

type sync_info = {
  si_id : int;
  si_kind : Ast.sync_kind_decl;
  si_array : bool;
}

type proc_info = {
  pi_id : int;
  pi_params : Ast.typ list;
}

type genv = {
  globals : (string, global_info) Hashtbl.t;
  syncs : (string, sync_info) Hashtbl.t;
  procs : (string, proc_info) Hashtbl.t;
}

(* Per-proc local scope: a stack of blocks, each mapping name -> (reg, typ). *)
type lenv = {
  mutable scopes : (string * (int * Ast.typ)) list list;
  mutable next_reg : int;
}

let lookup_local lenv name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
      match List.assoc_opt name scope with Some x -> Some x | None -> go rest)
  in
  go lenv.scopes

let declare_local lenv pos name typ =
  if lookup_local lenv name <> None then
    err pos "local variable %s shadows an existing variable" name;
  let reg = lenv.next_reg in
  lenv.next_reg <- reg + 1;
  (match lenv.scopes with
  | scope :: rest -> lenv.scopes <- ((name, (reg, typ)) :: scope) :: rest
  | [] -> assert false);
  reg

let push_scope lenv = lenv.scopes <- [] :: lenv.scopes

let pop_scope lenv =
  match lenv.scopes with
  | _ :: rest -> lenv.scopes <- rest
  | [] -> assert false

(* --- expression typing -------------------------------------------------- *)

let rec check_expr genv lenv (e : Ast.expr) : Tast.expr =
  match e.e with
  | Ast.Eint n -> { Tast.te = Tast.Tint n; tt = Ast.Tint }
  | Ast.Ebool b -> { te = Tast.Tbool b; tt = Ast.Tbool }
  | Ast.Enull -> { te = Tast.Tnull; tt = Ast.Thandle }
  | Ast.Evar name -> (
    match lookup_local lenv name with
    | Some (reg, typ) -> { te = Tast.Tlocal reg; tt = typ }
    | None -> (
      match Hashtbl.find_opt genv.globals name with
      | Some gi ->
        if gi.gi_array then
          err e.epos "%s is an array and must be indexed" name;
        { te = Tast.Tglobal { gid = gi.gi_id; idx = None }; tt = gi.gi_type }
      | None ->
        if Hashtbl.mem genv.syncs name then
          err e.epos "%s is a synchronization object, not a value" name
        else err e.epos "unknown variable %s" name))
  | Ast.Eindex (name, idx) -> (
    let tidx = check_expr genv lenv idx in
    if tidx.tt <> Ast.Tint then err idx.epos "index must be an int";
    match lookup_local lenv name with
    | Some (reg, Ast.Thandle) ->
      {
        te = Tast.Theap { h = { te = Tast.Tlocal reg; tt = Ast.Thandle }; idx = tidx };
        tt = Ast.Tint;
      }
    | Some (_, t) ->
      err e.epos "%s has type %s and cannot be indexed" name
        (Ast.typ_to_string t)
    | None -> (
      match Hashtbl.find_opt genv.globals name with
      | Some gi ->
        if not gi.gi_array then err e.epos "%s is not an array" name;
        {
          te = Tast.Tglobal { gid = gi.gi_id; idx = Some tidx };
          tt = gi.gi_type;
        }
      | None -> err e.epos "unknown array or handle %s" name))
  | Ast.Eunop (op, a) -> (
    let ta = check_expr genv lenv a in
    match op with
    | Ast.Uneg ->
      if ta.tt <> Ast.Tint then err a.epos "unary - needs an int";
      { te = Tast.Tunop (op, ta); tt = Ast.Tint }
    | Ast.Unot ->
      if ta.tt <> Ast.Tbool then err a.epos "! needs a bool";
      { te = Tast.Tunop (op, ta); tt = Ast.Tbool })
  | Ast.Ebinop (op, a, b) -> (
    let ta = check_expr genv lenv a in
    let tb = check_expr genv lenv b in
    let need t (x : Tast.expr) pos =
      if x.tt <> t then
        err pos "operand has type %s, expected %s" (Ast.typ_to_string x.tt)
          (Ast.typ_to_string t)
    in
    match op with
    | Ast.Badd | Ast.Bsub | Ast.Bmul | Ast.Bdiv | Ast.Bmod ->
      need Ast.Tint ta a.epos;
      need Ast.Tint tb b.epos;
      { te = Tast.Tbinop (op, ta, tb); tt = Ast.Tint }
    | Ast.Blt | Ast.Ble | Ast.Bgt | Ast.Bge ->
      need Ast.Tint ta a.epos;
      need Ast.Tint tb b.epos;
      { te = Tast.Tbinop (op, ta, tb); tt = Ast.Tbool }
    | Ast.Beq | Ast.Bne ->
      if ta.tt <> tb.tt then
        err e.epos "cannot compare %s with %s" (Ast.typ_to_string ta.tt)
          (Ast.typ_to_string tb.tt);
      { te = Tast.Tbinop (op, ta, tb); tt = Ast.Tbool }
    | Ast.Band | Ast.Bor ->
      need Ast.Tbool ta a.epos;
      need Ast.Tbool tb b.epos;
      { te = Tast.Tbinop (op, ta, tb); tt = Ast.Tbool })

(* --- statement checking -------------------------------------------------- *)

let default_init = function
  | Ast.Tint -> { Tast.te = Tast.Tint 0; tt = Ast.Tint }
  | Ast.Tbool -> { Tast.te = Tast.Tbool false; tt = Ast.Tbool }
  | Ast.Thandle -> { Tast.te = Tast.Tnull; tt = Ast.Thandle }

let resolve_gtarget genv lenv (t : Ast.gtarget) ~want_volatile =
  match Hashtbl.find_opt genv.globals t.tname with
  | None -> err t.tpos "unknown global %s" t.tname
  | Some gi ->
    if want_volatile && not gi.gi_volatile then
      err t.tpos "%s must be declared volatile for atomic operations" t.tname;
    let idx =
      match t.tindex, gi.gi_array with
      | Some e, true ->
        let te = check_expr genv lenv e in
        if te.tt <> Ast.Tint then err e.epos "index must be an int";
        Some te
      | None, false -> None
      | Some _, false -> err t.tpos "%s is not an array" t.tname
      | None, true -> err t.tpos "%s is an array and must be indexed" t.tname
    in
    (gi, idx)

let resolve_objref genv lenv (o : Ast.objref) =
  match Hashtbl.find_opt genv.syncs o.oname with
  | None -> err o.opos "unknown synchronization object %s" o.oname
  | Some si ->
    let idx =
      match o.oindex, si.si_array with
      | Some e, true ->
        let te = check_expr genv lenv e in
        if te.tt <> Ast.Tint then err e.epos "index must be an int";
        Some te
      | None, false -> None
      | Some _, false -> err o.opos "%s is not an array" o.oname
      | None, true -> err o.opos "%s is an array and must be indexed" o.oname
    in
    (si, idx)

let local_of genv lenv pos name ~expect =
  match lookup_local lenv name with
  | Some (reg, typ) ->
    (match expect with
    | Some t when t <> typ ->
      err pos "%s has type %s, expected %s" name (Ast.typ_to_string typ)
        (Ast.typ_to_string t)
    | Some _ | None -> ());
    (reg, typ)
  | None ->
    if Hashtbl.mem genv.globals name then
      err pos "%s is a global; this operation needs a local variable" name
    else err pos "unknown local variable %s" name

(* [in_loop] records, for the innermost enclosing loop, the atomic nesting
   depth at its entry (None outside loops); [atomic] is the current atomic
   nesting depth.  break/continue must not jump across an atomic boundary,
   and yield has no meaning inside an atomic section. *)
let rec check_stmt genv lenv ~in_loop ~atomic (st : Ast.stmt) : Tast.stmt =
  let pos = st.spos in
  match st.s with
  | Ast.Sdecl { name; typ; init } ->
    let tinit =
      match init with
      | None -> default_init typ
      | Some e ->
        let te = check_expr genv lenv e in
        if te.tt <> typ then
          err e.epos "initializer has type %s, expected %s"
            (Ast.typ_to_string te.tt) (Ast.typ_to_string typ);
        te
    in
    (* declare after checking the initializer, so `var x: int = x;` errors *)
    let reg = declare_local lenv pos name typ in
    Tast.Tassign_local { reg; rhs = tinit }
  | Ast.Sassign (Ast.Lvar name, rhs) -> (
    let trhs = check_expr genv lenv rhs in
    match lookup_local lenv name with
    | Some (reg, typ) ->
      if trhs.tt <> typ then
        err rhs.epos "assignment of %s to %s variable"
          (Ast.typ_to_string trhs.tt) (Ast.typ_to_string typ);
      Tast.Tassign_local { reg; rhs = trhs }
    | None -> (
      match Hashtbl.find_opt genv.globals name with
      | Some gi ->
        if gi.gi_array then err pos "%s is an array and must be indexed" name;
        if trhs.tt <> gi.gi_type then
          err rhs.epos "assignment of %s to %s global"
            (Ast.typ_to_string trhs.tt) (Ast.typ_to_string gi.gi_type);
        Tast.Tassign_global { gid = gi.gi_id; idx = None; rhs = trhs }
      | None -> err pos "unknown variable %s" name))
  | Ast.Sassign (Ast.Lindex (name, idx), rhs) -> (
    let tidx = check_expr genv lenv idx in
    if tidx.tt <> Ast.Tint then err idx.epos "index must be an int";
    let trhs = check_expr genv lenv rhs in
    match lookup_local lenv name with
    | Some (reg, Ast.Thandle) ->
      if trhs.tt <> Ast.Tint then
        err rhs.epos "heap cells hold ints; cannot store %s"
          (Ast.typ_to_string trhs.tt);
      Tast.Tassign_heap
        {
          h = { Tast.te = Tast.Tlocal reg; tt = Ast.Thandle };
          idx = tidx;
          rhs = trhs;
        }
    | Some (_, t) ->
      err pos "%s has type %s and cannot be indexed" name (Ast.typ_to_string t)
    | None -> (
      match Hashtbl.find_opt genv.globals name with
      | Some gi ->
        if not gi.gi_array then err pos "%s is not an array" name;
        if trhs.tt <> gi.gi_type then
          err rhs.epos "assignment of %s to %s array"
            (Ast.typ_to_string trhs.tt) (Ast.typ_to_string gi.gi_type);
        Tast.Tassign_global { gid = gi.gi_id; idx = Some tidx; rhs = trhs }
      | None -> err pos "unknown array or handle %s" name))
  | Ast.Scas { dst; glob; expect; update } ->
    let gi, idx = resolve_gtarget genv lenv glob ~want_volatile:true in
    let texpect = check_expr genv lenv expect in
    let tupdate = check_expr genv lenv update in
    if texpect.tt <> gi.gi_type || tupdate.tt <> gi.gi_type then
      err glob.tpos "cas operands must have the global's type (%s)"
        (Ast.typ_to_string gi.gi_type);
    let reg, _ = local_of genv lenv pos dst ~expect:(Some gi.gi_type) in
    Tast.Tcas { reg; gid = gi.gi_id; idx; expect = texpect; update = tupdate }
  | Ast.Sfetch_add { dst; glob; delta } ->
    let gi, idx = resolve_gtarget genv lenv glob ~want_volatile:true in
    if gi.gi_type <> Ast.Tint then
      err glob.tpos "fetch_add needs an int global";
    let tdelta = check_expr genv lenv delta in
    if tdelta.tt <> Ast.Tint then err delta.epos "fetch_add delta must be an int";
    let reg, _ = local_of genv lenv pos dst ~expect:(Some Ast.Tint) in
    Tast.Tfetch_add { reg; gid = gi.gi_id; idx; delta = tdelta }
  | Ast.Salloc { dst; size } ->
    let tsize = check_expr genv lenv size in
    if tsize.tt <> Ast.Tint then err size.epos "alloc size must be an int";
    let reg, _ = local_of genv lenv pos dst ~expect:(Some Ast.Thandle) in
    Tast.Talloc { reg; size = tsize }
  | Ast.Sfree name ->
    let reg, _ = local_of genv lenv pos name ~expect:(Some Ast.Thandle) in
    Tast.Tfree { reg }
  | Ast.Ssync (op, o) ->
    let si, idx = resolve_objref genv lenv o in
    let kind_name =
      match si.si_kind with
      | Ast.Dmutex -> "mutex"
      | Ast.Devent _ -> "event"
      | Ast.Dsem _ -> "semaphore"
    in
    let want =
      match op with
      | Ast.Olock | Ast.Ounlock -> "mutex"
      | Ast.Owait | Ast.Osignal | Ast.Oreset -> "event"
      | Ast.Oacquire | Ast.Orelease -> "semaphore"
    in
    if want <> kind_name then
      err o.opos "%s is a %s; this operation needs a %s" o.oname kind_name want;
    Tast.Tsync (op, { Tast.sid = si.si_id; sidx = idx })
  | Ast.Sspawn { proc; args } -> (
    match Hashtbl.find_opt genv.procs proc with
    | None -> err pos "unknown procedure %s" proc
    | Some pi ->
      if proc = "main" then err pos "main cannot be spawned";
      if List.length args <> List.length pi.pi_params then
        err pos "%s takes %d argument(s), %d given" proc
          (List.length pi.pi_params) (List.length args);
      let targs =
        List.map2
          (fun a t ->
            let ta = check_expr genv lenv a in
            if ta.tt <> t then
              err a.Ast.epos "argument has type %s, expected %s"
                (Ast.typ_to_string ta.tt) (Ast.typ_to_string t);
            ta)
          args pi.pi_params
      in
      Tast.Tspawn { proc = pi.pi_id; args = targs })
  | Ast.Syield ->
    if atomic > 0 then err pos "yield inside an atomic block";
    Tast.Tyield
  | Ast.Sskip -> Tast.Tskip
  | Ast.Sassert (e, msg) ->
    let te = check_expr genv lenv e in
    if te.tt <> Ast.Tbool then err e.epos "assert needs a bool";
    Tast.Tassert (te, msg)
  | Ast.Sif (cond, then_b, else_b) ->
    let tcond = check_expr genv lenv cond in
    if tcond.tt <> Ast.Tbool then err cond.epos "if condition must be a bool";
    let tthen = check_block genv lenv ~in_loop ~atomic then_b in
    let telse = check_block genv lenv ~in_loop ~atomic else_b in
    Tast.Tif (tcond, tthen, telse)
  | Ast.Swhile (cond, body) ->
    let tcond = check_expr genv lenv cond in
    if tcond.tt <> Ast.Tbool then err cond.epos "while condition must be a bool";
    let tbody = check_block genv lenv ~in_loop:(Some atomic) ~atomic body in
    Tast.Twhile (tcond, tbody)
  | Ast.Satomic body ->
    Tast.Tatomic (check_block genv lenv ~in_loop ~atomic:(atomic + 1) body)
  | Ast.Sbreak -> (
    match in_loop with
    | None -> err pos "break outside of a loop"
    | Some loop_atomic ->
      if atomic > loop_atomic then
        err pos "break would jump out of an atomic block";
      Tast.Tbreak)
  | Ast.Scontinue -> (
    match in_loop with
    | None -> err pos "continue outside of a loop"
    | Some loop_atomic ->
      if atomic > loop_atomic then
        err pos "continue would jump out of an atomic block";
      Tast.Tcontinue)
  | Ast.Sreturn -> Tast.Treturn

and check_block genv lenv ~in_loop ~atomic block =
  push_scope lenv;
  let r = List.map (check_stmt genv lenv ~in_loop ~atomic) block in
  pop_scope lenv;
  r

(* --- program checking ---------------------------------------------------- *)

let check (p : Ast.program) : Tast.program =
  let genv =
    {
      globals = Hashtbl.create 16;
      syncs = Hashtbl.create 16;
      procs = Hashtbl.create 16;
    }
  in
  let name_taken name =
    Hashtbl.mem genv.globals name || Hashtbl.mem genv.syncs name
  in
  (* globals *)
  let tglobals =
    List.mapi
      (fun i (g : Ast.global_decl) ->
        if name_taken g.g_name then err g.g_pos "duplicate name %s" g.g_name;
        let size =
          match g.g_size with
          | None -> 1
          | Some e ->
            let n = const_int e in
            if n < 1 then err e.epos "array size must be positive";
            n
        in
        let init =
          match g.g_init with
          | None -> (
            match g.g_type with
            | Ast.Tint -> Value.Int 0
            | Ast.Tbool -> Value.Bool false
            | Ast.Thandle -> Value.null)
          | Some e -> (
            let v = const_eval e in
            match v, g.g_type with
            | Value.Int _, Ast.Tint
            | Value.Bool _, Ast.Tbool
            | Value.Handle _, Ast.Thandle -> v
            | _ ->
              err e.epos "initializer does not match declared type %s"
                (Ast.typ_to_string g.g_type))
        in
        Hashtbl.add genv.globals g.g_name
          {
            gi_id = i;
            gi_type = g.g_type;
            gi_array = g.g_size <> None;
            gi_volatile = g.g_volatile;
          };
        {
          Prog.gname = g.g_name;
          gsize = size;
          ginit = init;
          gvolatile = g.g_volatile;
        })
      p.globals
  in
  (* sync objects *)
  let tsyncs =
    List.mapi
      (fun i (s : Ast.sync_decl) ->
        if name_taken s.s_name then err s.s_pos "duplicate name %s" s.s_name;
        let size =
          match s.s_size with
          | None -> 1
          | Some e ->
            let n = const_int e in
            if n < 1 then err e.epos "array size must be positive";
            n
        in
        let kind =
          match s.s_kind with
          | Ast.Dmutex -> Prog.Mutex
          | Ast.Devent { manual; signaled } ->
            Prog.Event { manual; initially_signaled = signaled }
          | Ast.Dsem init ->
            let n = match init with None -> 0 | Some e -> const_int e in
            if n < 0 then err s.s_pos "semaphore count must be non-negative";
            Prog.Semaphore { initial = n }
        in
        Hashtbl.add genv.syncs s.s_name
          { si_id = i; si_kind = s.s_kind; si_array = s.s_size <> None };
        { Prog.sname = s.s_name; ssize = size; skind = kind })
      p.syncs
  in
  (* procedure signatures first (so spawns can be forward references) *)
  List.iteri
    (fun i (pd : Ast.proc_decl) ->
      if Hashtbl.mem genv.procs pd.p_name then
        err pd.p_pos "duplicate procedure %s" pd.p_name;
      Hashtbl.add genv.procs pd.p_name
        { pi_id = i; pi_params = List.map snd pd.p_params })
    p.procs;
  (* bodies *)
  let tprocs =
    List.map
      (fun (pd : Ast.proc_decl) ->
        let lenv = { scopes = [ [] ]; next_reg = 0 } in
        List.iter
          (fun (name, t) ->
            if name_taken name then
              err pd.p_pos "parameter %s shadows a global" name;
            ignore (declare_local lenv pd.p_pos name t))
          pd.p_params;
        let body = check_block genv lenv ~in_loop:None ~atomic:0 pd.p_body in
        {
          Tast.tp_name = pd.p_name;
          tp_nparams = List.length pd.p_params;
          tp_nlocals = lenv.next_reg;
          tp_body = body;
        })
      p.procs
  in
  let tmain =
    match Hashtbl.find_opt genv.procs "main" with
    | Some pi ->
      if pi.pi_params <> [] then
        err Ast.dummy_pos "main must take no parameters";
      pi.pi_id
    | None -> err Ast.dummy_pos "program has no main"
  in
  {
    Tast.tglobals = Array.of_list tglobals;
    tsyncs = Array.of_list tsyncs;
    tprocs = Array.of_list tprocs;
    tmain;
  }
