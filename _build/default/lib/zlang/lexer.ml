type pos = { line : int; col : int }

exception Error of pos * string

let pp_pos fmt { line; col } = Format.fprintf fmt "line %d, column %d" line col

type cursor = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable col : int;
}

let peek c = if c.off < String.length c.src then Some c.src.[c.off] else None

let peek2 c =
  if c.off + 1 < String.length c.src then Some c.src.[c.off + 1] else None

let advance c =
  (match peek c with
  | Some '\n' ->
    c.line <- c.line + 1;
    c.col <- 1
  | Some _ -> c.col <- c.col + 1
  | None -> ());
  c.off <- c.off + 1

let pos_of c = { line = c.line; col = c.col }

let is_digit ch = ch >= '0' && ch <= '9'

let is_ident_start ch =
  (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || ch = '_'

let is_ident ch = is_ident_start ch || is_digit ch

let rec skip_trivia c =
  match peek c with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance c;
    skip_trivia c
  | Some '/' when peek2 c = Some '/' ->
    let rec to_eol () =
      match peek c with
      | Some '\n' | None -> ()
      | Some _ ->
        advance c;
        to_eol ()
    in
    to_eol ();
    skip_trivia c
  | Some '/' when peek2 c = Some '*' ->
    let start = pos_of c in
    advance c;
    advance c;
    let rec to_close () =
      match peek c with
      | None -> raise (Error (start, "unterminated comment"))
      | Some '*' when peek2 c = Some '/' ->
        advance c;
        advance c
      | Some _ ->
        advance c;
        to_close ()
    in
    to_close ();
    skip_trivia c
  | Some _ | None -> ()

let lex_number c =
  let start = c.off in
  while match peek c with Some ch -> is_digit ch | None -> false do
    advance c
  done;
  let text = String.sub c.src start (c.off - start) in
  match int_of_string_opt text with
  | Some n -> Token.INT n
  | None -> raise (Error (pos_of c, "integer literal out of range: " ^ text))

let lex_ident c =
  let start = c.off in
  while match peek c with Some ch -> is_ident ch | None -> false do
    advance c
  done;
  let text = String.sub c.src start (c.off - start) in
  match Token.keyword_of_string text with
  | Some kw -> kw
  | None -> Token.IDENT text

let lex_string c =
  let start = pos_of c in
  advance c (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> raise (Error (start, "unterminated string literal"))
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | Some '\\' -> Buffer.add_char buf '\\'; advance c; go ()
      | Some '"' -> Buffer.add_char buf '"'; advance c; go ()
      | Some 'n' -> Buffer.add_char buf '\n'; advance c; go ()
      | Some 't' -> Buffer.add_char buf '\t'; advance c; go ()
      | Some ch -> raise (Error (pos_of c, Printf.sprintf "bad escape \\%c" ch))
      | None -> raise (Error (start, "unterminated string literal")))
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ();
  Token.STRING (Buffer.contents buf)

let lex_symbol c =
  let p = pos_of c in
  let two tok = advance c; advance c; tok in
  let one tok = advance c; tok in
  match peek c, peek2 c with
  | Some '=', Some '=' -> two Token.EQ
  | Some '!', Some '=' -> two Token.NE
  | Some '<', Some '=' -> two Token.LE
  | Some '>', Some '=' -> two Token.GE
  | Some '&', Some '&' -> two Token.ANDAND
  | Some '|', Some '|' -> two Token.OROR
  | Some '=', _ -> one Token.ASSIGN
  | Some '<', _ -> one Token.LT
  | Some '>', _ -> one Token.GT
  | Some '!', _ -> one Token.BANG
  | Some '+', _ -> one Token.PLUS
  | Some '-', _ -> one Token.MINUS
  | Some '*', _ -> one Token.STAR
  | Some '/', _ -> one Token.SLASH
  | Some '%', _ -> one Token.PERCENT
  | Some '(', _ -> one Token.LPAREN
  | Some ')', _ -> one Token.RPAREN
  | Some '{', _ -> one Token.LBRACE
  | Some '}', _ -> one Token.RBRACE
  | Some '[', _ -> one Token.LBRACKET
  | Some ']', _ -> one Token.RBRACKET
  | Some ';', _ -> one Token.SEMI
  | Some ',', _ -> one Token.COMMA
  | Some ':', _ -> one Token.COLON
  | Some ch, _ -> raise (Error (p, Printf.sprintf "unexpected character %C" ch))
  | None, _ -> Token.EOF

let tokenize src =
  let c = { src; off = 0; line = 1; col = 1 } in
  let rec go acc =
    skip_trivia c;
    let p = pos_of c in
    match peek c with
    | None -> List.rev ((Token.EOF, p) :: acc)
    | Some ch ->
      let tok =
        if is_digit ch then lex_number c
        else if is_ident_start ch then lex_ident c
        else if ch = '"' then lex_string c
        else lex_symbol c
      in
      go ((tok, p) :: acc)
  in
  go []
