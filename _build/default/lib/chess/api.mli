(** Testing real OCaml code, CHESS-style.

    This is the stateless counterpart of the guest machine: the test body
    is ordinary OCaml code written against the shim primitives below, run
    under an effects-based cooperative scheduler.  Scheduling points are
    introduced exactly at synchronization operations ({!Mutex}, {!Event},
    {!Semaphore}, {!Shared}, {!spawn}, {!yield}); plain {!Data} cells are
    not scheduling points but every access is fed to the race detector, so
    the reduction stays sound (paper, Section 3.1).

    Requirements on the test body: it must be deterministic (the schedule
    must be its only source of nondeterminism — no timing, no [Random], no
    I/O dependence) and must create all its shims inside the body, since
    the checker re-executes it from scratch to replay schedules.  Any
    exception escaping a thread is reported as a bug, so plain [assert]
    and [failwith] express correctness conditions. *)

exception Chess_misuse of string
(** Raised when a primitive is used outside a running exploration, or on
    protocol violations the shims detect immediately (e.g. unlocking a
    mutex the calling thread does not hold). *)

val spawn : (unit -> unit) -> unit
(** Start a new thread.  The child is schedulable immediately; whether it
    runs before or after the parent's next operation is the scheduler's
    choice. *)

val yield : unit -> unit
(** Voluntarily offer the processor (a non-preempting scheduling point, as
    [Sleep(0)] in the paper's benchmarks). *)

val tid : unit -> int
(** The calling thread's identifier (main test body is 0). *)

module Mutex : sig
  type t

  val create : unit -> t

  val lock : t -> unit
  (** Blocks while held; not reentrant. *)

  val unlock : t -> unit
  (** Raises {!Chess_misuse} if not held by the caller. *)

  val with_lock : t -> (unit -> 'a) -> 'a
end

module Event : sig
  type t

  val create : ?manual:bool -> ?signaled:bool -> unit -> t
  (** Win32-style event; [manual = false] (the default) is auto-reset:
      one successful [wait] consumes the signal. *)

  val wait : t -> unit
  val set : t -> unit
  val reset : t -> unit
end

module Semaphore : sig
  type t

  val create : int -> t
  val acquire : t -> unit
  val release : t -> unit
end

module Shared : sig
  type 'a t
  (** A synchronization variable (volatile): every access is a scheduling
      point and accesses never race. *)

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit

  val cas : 'a t -> expect:'a -> update:'a -> bool
  (** Structural comparison; atomic. *)

  val cas_phys : 'a t -> expect:'a -> update:'a -> bool
  (** Physical (pointer) comparison — what lock-free algorithms over
      linked nodes need. *)

  val fetch_add : int t -> int -> int
end

module Data : sig
  type 'a t
  (** A plain data variable: accesses execute atomically inside the
      enclosing step but are checked for data races. *)

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
end

(** {1 Internal: the execution machinery used by the engine} *)

module Run : sig
  type t

  val create : (unit -> unit) -> t
  (** A fresh execution of the test body, nothing run yet. *)

  val enabled_raw : t -> int list
  val enabled : t -> int list  (** yield-adjusted, like the machine's *)

  type status =
    | Running
    | Terminated
    | Deadlock of int list
    | Failed of string

  val status : t -> status

  val step : t -> int -> Icb_machine.Interp.event list * bool
  (** Execute one scheduling step of the given enabled thread: its pending
      synchronization operation, then on through ordinary code and data
      accesses to its next scheduling point.  Returns the step's event log
      and whether the executed operation was potentially blocking. *)

  val thread_count : t -> int

  val yielded : t -> int -> bool
  (** Did the given thread's last executed operation yield?  (Such a step
      interferes with everyone's scheduling, which partial-order reduction
      must know.) *)
end
