(** The stateless CHESS engine: an {!Icb_search.Engine.S} whose states are
    schedule prefixes of a real OCaml test body.

    Stepping a state that still owns a live execution advances it in
    place; stepping a state whose execution has moved on (because the
    search branched) transparently replays the prefix from the start —
    the Verisoft/CHESS architecture.  Coverage signatures are
    happens-before signatures; every execution is race-checked. *)

type state

module Make (_ : sig
  val test : unit -> unit
end) : Icb_search.Engine.S with type state = state

val check :
  ?options:Icb_search.Collector.options ->
  ?max_bound:int ->
  (unit -> unit) ->
  Icb_search.Sresult.bug option
(** One-call ICB checking of a test body, stopping at the first bug
    (default bound 3, like [Icb.check]). *)

val run :
  ?options:Icb_search.Collector.options ->
  strategy:Icb_search.Explore.strategy ->
  (unit -> unit) ->
  Icb_search.Sresult.t

val replays : unit -> int
(** Number of from-scratch replays performed since the program started —
    exposed so tests and benchmarks can report the stateless exploration's
    replay overhead. *)
