module Interp = Icb_machine.Interp

exception Chess_misuse of string

let misuse fmt = Format.kasprintf (fun s -> raise (Chess_misuse s)) fmt

(* --- the scheduling effect ---------------------------------------------

   A thread performs [E_sched point] immediately BEFORE each of its
   synchronization operations; the handler parks the continuation.  The
   operation's mutation happens in the thread's own code right after the
   continuation is resumed, so it executes atomically with the code that
   follows, up to the next perform — exactly the machine's step shape. *)

type sched_point = {
  var : Interp.var_id;
  enabled : unit -> bool;
  blocking : bool;   (* a potentially-blocking operation (lock/wait/acquire) *)
  is_yield : bool;
}

type _ Effect.t += E_sched : sched_point -> unit Effect.t

type thread_state =
  | T_not_started of (unit -> unit)
  | T_parked of sched_point * (unit, unit) Effect.Deep.continuation
  | T_done

type thread_rec = {
  mutable st : thread_state;
  mutable yielded : bool;
}

type run_t = {
  mutable threads : thread_rec array;
  mutable nthreads : int;
  mutable current : int;
  mutable next_var : int;
  mutable events : Interp.event list;  (* current step's, reversed *)
  mutable failure : string option;
  mutable last_blocking : bool;
}

(* The runtime is single-threaded; the run being advanced is held here so
   the shim primitives can reach it. *)
let active : run_t option ref = ref None

let the_run () =
  match !active with
  | Some r -> r
  | None -> misuse "Chess primitives must run under Icb_chess exploration"

let tid () = (the_run ()).current

let fresh_var r =
  let v = r.next_var in
  r.next_var <- v + 1;
  v

let record r ev = r.events <- ev :: r.events

let always_enabled () = true

(* Park-before-op: returns once the scheduler picks this thread again. *)
let sched ?(blocking = false) ?(is_yield = false) ~var ~enabled () =
  Effect.perform (E_sched { var; enabled; blocking; is_yield })

(* --- shim primitives ---------------------------------------------------- *)

let spawn body =
  let r = the_run () in
  let parent = r.current in
  sched ~var:(Interp.Svar (-2, 0)) ~enabled:always_enabled ();
  let r = the_run () in
  if r.nthreads = Array.length r.threads then begin
    let bigger =
      Array.make (2 * max 4 r.nthreads) { st = T_done; yielded = false }
    in
    Array.blit r.threads 0 bigger 0 r.nthreads;
    r.threads <- bigger
  end;
  let child = r.nthreads in
  r.threads.(child) <- { st = T_not_started body; yielded = false };
  r.nthreads <- child + 1;
  record r (Interp.Ev_fork { parent; child })

let yield () =
  let r = the_run () in
  let me = r.current in
  sched ~is_yield:true ~var:(Interp.Svar (-3, me)) ~enabled:always_enabled ()

module Mutex = struct
  type t = {
    mid : int;
    mutable owner : int;
  }

  let create () = { mid = fresh_var (the_run ()); owner = -1 }

  let lock m =
    let var = Interp.Svar (m.mid, 0) in
    sched ~blocking:true ~var ~enabled:(fun () -> m.owner < 0) ();
    let r = the_run () in
    record r (Interp.Ev_sync { tid = r.current; var });
    m.owner <- r.current

  let unlock m =
    let var = Interp.Svar (m.mid, 0) in
    sched ~var ~enabled:always_enabled ();
    let r = the_run () in
    if m.owner <> r.current then
      misuse "unlock of a mutex not held by the calling thread";
    record r (Interp.Ev_sync { tid = r.current; var });
    m.owner <- -1

  let with_lock m f =
    lock m;
    match f () with
    | v ->
      unlock m;
      v
    | exception e ->
      unlock m;
      raise e
end

module Event = struct
  type t = {
    eid : int;
    manual : bool;
    mutable signaled : bool;
  }

  let create ?(manual = false) ?(signaled = false) () =
    { eid = fresh_var (the_run ()); manual; signaled }

  let wait e =
    let var = Interp.Svar (e.eid, 0) in
    sched ~blocking:true ~var ~enabled:(fun () -> e.signaled) ();
    let r = the_run () in
    record r (Interp.Ev_sync { tid = r.current; var });
    if not e.manual then e.signaled <- false

  let set e =
    let var = Interp.Svar (e.eid, 0) in
    sched ~var ~enabled:always_enabled ();
    let r = the_run () in
    record r (Interp.Ev_sync { tid = r.current; var });
    e.signaled <- true

  let reset e =
    let var = Interp.Svar (e.eid, 0) in
    sched ~var ~enabled:always_enabled ();
    let r = the_run () in
    record r (Interp.Ev_sync { tid = r.current; var });
    e.signaled <- false
end

module Semaphore = struct
  type t = {
    sid : int;
    mutable count : int;
  }

  let create count =
    if count < 0 then misuse "semaphore count must be non-negative";
    { sid = fresh_var (the_run ()); count }

  let acquire s =
    let var = Interp.Svar (s.sid, 0) in
    sched ~blocking:true ~var ~enabled:(fun () -> s.count > 0) ();
    let r = the_run () in
    record r (Interp.Ev_sync { tid = r.current; var });
    s.count <- s.count - 1

  let release s =
    let var = Interp.Svar (s.sid, 0) in
    sched ~var ~enabled:always_enabled ();
    let r = the_run () in
    record r (Interp.Ev_sync { tid = r.current; var });
    s.count <- s.count + 1
end

module Shared = struct
  type 'a t = {
    vid : int;
    mutable v : 'a;
  }

  let make v = { vid = fresh_var (the_run ()); v }

  let touch c =
    let var = Interp.Gvar (c.vid, 0) in
    sched ~var ~enabled:always_enabled ();
    let r = the_run () in
    record r (Interp.Ev_sync { tid = r.current; var })

  let get c =
    touch c;
    c.v

  let set c v =
    touch c;
    c.v <- v

  let cas c ~expect ~update =
    touch c;
    if c.v = expect then begin
      c.v <- update;
      true
    end
    else false

  let cas_phys c ~expect ~update =
    touch c;
    if c.v == expect then begin
      c.v <- update;
      true
    end
    else false

  let fetch_add c d =
    touch c;
    let old = c.v in
    c.v <- old + d;
    old
end

module Data = struct
  type 'a t = {
    did : int;
    mutable v : 'a;
  }

  let make v = { did = fresh_var (the_run ()); v }

  let get c =
    let r = the_run () in
    record r
      (Interp.Ev_data { tid = r.current; var = Interp.Gvar (c.did, 0); write = false });
    c.v

  let set c v =
    let r = the_run () in
    record r
      (Interp.Ev_data { tid = r.current; var = Interp.Gvar (c.did, 0); write = true });
    c.v <- v
end

(* --- the execution machinery -------------------------------------------- *)

module Run = struct
  type t = run_t

  let create body =
    {
      threads = [| { st = T_not_started body; yielded = false } |];
      nthreads = 1;
      current = -1;
      next_var = 0;
      events = [];
      failure = None;
      last_blocking = false;
    }

  let thread_enabled (th : thread_rec) =
    match th.st with
    | T_not_started _ -> true
    | T_parked (pt, _) -> pt.enabled ()
    | T_done -> false

  let enabled_raw r =
    if r.failure <> None then []
    else begin
      let res = ref [] in
      for i = r.nthreads - 1 downto 0 do
        if thread_enabled r.threads.(i) then res := i :: !res
      done;
      !res
    end

  let enabled r =
    let raw = enabled_raw r in
    let awake = List.filter (fun i -> not r.threads.(i).yielded) raw in
    if awake = [] then raw else awake

  type status =
    | Running
    | Terminated
    | Deadlock of int list
    | Failed of string

  let status r =
    match r.failure with
    | Some msg -> Failed msg
    | None -> (
      match enabled_raw r with
      | _ :: _ -> Running
      | [] ->
        let blocked = ref [] in
        for i = r.nthreads - 1 downto 0 do
          match r.threads.(i).st with
          | T_done -> ()
          | T_not_started _ | T_parked _ -> blocked := i :: !blocked
        done;
        if !blocked = [] then Terminated else Deadlock !blocked)

  (* Start thread [t]'s body under the scheduling handler.  The handler is
     installed once per thread; resuming a parked continuation re-enters
     it automatically (deep handlers), so parked threads are resumed with
     a bare [continue].  Control returns to the caller when the thread
     parks again, finishes, or raises. *)
  let start_thread r t body =
    let th = r.threads.(t) in
    let handler =
      {
        Effect.Deep.retc = (fun () -> th.st <- T_done);
        exnc =
          (fun e ->
            th.st <- T_done;
            if r.failure = None then
              r.failure <-
                Some
                  (match e with
                  | Failure msg -> msg
                  | Assert_failure (file, line, _) ->
                    Printf.sprintf "assertion failure at %s:%d" file line
                  | e -> Printexc.to_string e));
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | E_sched pt ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  th.st <- T_parked (pt, k))
            | _ -> None);
      }
    in
    Effect.Deep.match_with body () handler

  let step r t =
    (match status r with
    | Running -> ()
    | Terminated | Deadlock _ | Failed _ ->
      invalid_arg "Chess.Run.step: execution is not running");
    let th = r.threads.(t) in
    if not (thread_enabled th) then invalid_arg "Chess.Run.step: thread not enabled";
    (* yield flags last exactly one scheduling decision *)
    for i = 0 to r.nthreads - 1 do
      r.threads.(i).yielded <- false
    done;
    r.current <- t;
    r.events <- [];
    let saved = !active in
    active := Some r;
    let was_yield, blocking =
      match th.st with
      | T_not_started body ->
        r.last_blocking <- false;
        start_thread r t body;
        (false, false)
      | T_parked (pt, k) ->
        th.st <- T_done (* placeholder; the handler reparks or finishes *);
        Effect.Deep.continue k ();
        (pt.is_yield, pt.blocking)
      | T_done -> assert false
    in
    active := saved;
    if was_yield then th.yielded <- true;
    (List.rev r.events, blocking)

  let thread_count r = r.nthreads

  let yielded r tid = r.threads.(tid).yielded
end
