lib/chess/chess_engine.mli: Icb_search
