lib/chess/api.mli: Icb_machine
