lib/chess/chess_engine.ml: Api Icb_machine Icb_race Icb_search List Printf Result
