lib/chess/api.ml: Array Effect Format Icb_machine List Printexc Printf
