lib/search/mach_engine.ml: Engine Icb_machine Icb_race Icb_util List
