lib/search/collector.ml: Array Engine Format Hashtbl List Sresult String
