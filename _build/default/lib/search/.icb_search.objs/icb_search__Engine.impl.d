lib/search/engine.ml: Icb_machine List Set Stdlib
