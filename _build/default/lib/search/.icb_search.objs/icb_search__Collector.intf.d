lib/search/collector.mli: Engine Sresult
