lib/search/explore.ml: Collector Engine Hashtbl Icb_util List Option Printf Queue Sresult
