lib/search/sresult.ml: Format List
