lib/search/mach_engine.mli: Engine Icb_machine
