lib/search/explore.mli: Collector Engine Sresult
