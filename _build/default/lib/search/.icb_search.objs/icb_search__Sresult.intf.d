lib/search/sresult.mli: Format
