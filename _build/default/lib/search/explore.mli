(** The search strategies.

    {!Icb} is the paper's Algorithm 1; the others are the baselines its
    evaluation compares against (unbounded depth-first search,
    depth-bounded DFS, iterative depth-bounding, uniform random walk). *)

type strategy =
  | Icb of { max_bound : int option; cache : bool }
      (** iterative context bounding; [max_bound = Some c] stops after
          exploring every execution with at most [c] preemptions *)
  | Dfs of { cache : bool }
  | Bounded_dfs of { depth : int; cache : bool }
      (** the paper's db:N baseline *)
  | Iterative_dfs of { start : int; incr : int; max_depth : int; cache : bool }
      (** iterative deepening over depth bounds *)
  | Random_walk of { seed : int64 }
  | Sleep_dfs
      (** depth-first search with Godefroid-style sleep sets over dynamic
          step footprints — the partial-order reduction the paper names as
          the natural complement to context bounding.  Explores the same
          reachable states as {!Dfs} with (often far) fewer executions. *)
  | Pct of { change_points : int; seed : int64 }
      (** probabilistic concurrency testing (Burckhardt et al., ASPLOS
          2010): randomized priorities with [change_points - 1] random
          demotion points per execution; needs an execution limit *)
  | Most_enabled of { cache : bool }
      (** best-first search preferring states with more enabled threads
          (Groce & Visser's heuristic, cited by the paper) *)

val strategy_name : strategy -> string

val run :
  (module Engine.S with type state = 's) ->
  ?options:Collector.options ->
  strategy ->
  Sresult.t
(** Explore the engine's transition system with the given strategy.
    Never raises on limit exhaustion — limits simply yield a result with
    [complete = false]. *)

val check :
  (module Engine.S with type state = 's) ->
  ?options:Collector.options ->
  ?max_bound:int ->
  unit ->
  Sresult.bug option
(** Convenience one-call checker: ICB with [stop_at_first_bug]; returns the
    first bug (which ICB guarantees has the minimal number of preemptions
    among all bugs of its kind reachable within the bound). *)

val replay :
  (module Engine.S with type state = 's) -> int list -> 's
(** Run a recorded schedule from the initial state; used to reproduce a
    bug trace.  Raises [Invalid_argument] if the schedule names a thread
    that is not enabled at some point. *)
