(** Mutable accumulator shared by all search strategies: distinct-state
    accounting, execution counting, bug deduplication, growth curves and
    limit enforcement. *)

type options = {
  max_executions : int option;
  max_states : int option;
  max_total_steps : int option;
  deadlock_is_error : bool;
  stop_at_first_bug : bool;
  terminal_states_only : bool;
      (** count only the state at the end of each execution (the paper's
          Section 4.3 stateless-coverage convention for Figures 2, 5 and
          6) instead of every visited state *)
}

val default_options : options
(** No limits, deadlocks are errors, keep searching after a bug. *)

exception Stop
(** Raised when a limit fires or [stop_at_first_bug] triggers; strategies
    let it propagate to their driver, which converts it into a
    [complete = false] result. *)

type t

val create : options -> t

val touch : t -> int64 -> unit
(** Record a reached state by signature.  Raises {!Stop} when the state or
    step limit is hit. *)

val seen_states : t -> int

(** End-of-execution record: engine measurements of the finished (or
    truncated) execution. *)
type execution_end = {
  depth : int;
  blocks : int;
  preemptions : int;
  threads : int;
  schedule : int list;
  signature : int64;
  status : Engine.status;   (** [Running] means truncated by a depth bound *)
}

val end_execution : t -> execution_end -> unit

val record_bound : t -> int -> unit
(** ICB: snapshot coverage after completing the given context bound. *)

val set_complete : t -> unit

val result : t -> strategy:string -> Sresult.t
