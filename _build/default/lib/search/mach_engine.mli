(** The guest-machine engine: persistent states, optional per-execution
    race checking and either canonical-state or happens-before coverage
    signatures. *)

type signature_mode =
  | Canonical_state  (** ZING-style: fingerprint of the canonical state *)
  | Hb_signature     (** CHESS-style: happens-before signature of the run *)

type config = {
  granularity : Icb_machine.Interp.granularity;
  check_races : bool;
      (** detect data races along each execution and report them as
          errors; required for soundness under [Sync_only] *)
  detector : [ `Vclock | `Goldilocks ];
  signature_mode : signature_mode;
}

val default_config : config
(** [Sync_only], races checked with the vector-clock detector, canonical
    state signatures. *)

val zing_config : config
(** [Every_access], no race checking (unnecessary at full granularity),
    canonical state signatures. *)

val chess_config : config
(** [Sync_only], Goldilocks race checking, happens-before signatures — the
    paper's CHESS configuration. *)

type state

module Make (_ : sig
  val config : config
  val prog : Icb_machine.Prog.t
end) : Engine.S with type state = state

val machine_state : state -> Icb_machine.State.t
(** The underlying machine state, for model-specific inspection (final
    invariant checks in tests, trace printing in the harness). *)

val events_of_last_step : state -> Icb_machine.Interp.event list
(** Events produced by the step that created this state. *)
