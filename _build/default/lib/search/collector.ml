type options = {
  max_executions : int option;
  max_states : int option;
  max_total_steps : int option;
  deadlock_is_error : bool;
  stop_at_first_bug : bool;
  terminal_states_only : bool;
}

let default_options =
  {
    max_executions = None;
    max_states = None;
    max_total_steps = None;
    deadlock_is_error = true;
    stop_at_first_bug = false;
    terminal_states_only = false;
  }

exception Stop

type t = {
  opts : options;
  visited : (int64, unit) Hashtbl.t;
  bugs : (string, Sresult.bug) Hashtbl.t;
  mutable bug_order : string list;  (* reversed *)
  mutable executions : int;
  mutable total_steps : int;
  mutable max_steps : int;
  mutable max_blocks : int;
  mutable max_preemptions : int;
  mutable max_threads : int;
  mutable complete : bool;
  mutable growth : (int * int) list;          (* reversed *)
  mutable bound_coverage : (int * int) list;  (* reversed *)
}

let create opts =
  {
    opts;
    visited = Hashtbl.create 4096;
    bugs = Hashtbl.create 16;
    bug_order = [];
    executions = 0;
    total_steps = 0;
    max_steps = 0;
    max_blocks = 0;
    max_preemptions = 0;
    max_threads = 0;
    complete = false;
    growth = [];
    bound_coverage = [];
  }

let over limit n = match limit with Some l -> n >= l | None -> false

let touch t signature =
  t.total_steps <- t.total_steps + 1;
  if
    (not t.opts.terminal_states_only)
    && not (Hashtbl.mem t.visited signature)
  then Hashtbl.add t.visited signature ();
  if over t.opts.max_states (Hashtbl.length t.visited) then raise Stop;
  if over t.opts.max_total_steps t.total_steps then raise Stop

let seen_states t = Hashtbl.length t.visited

type execution_end = {
  depth : int;
  blocks : int;
  preemptions : int;
  threads : int;
  schedule : int list;
  signature : int64;
  status : Engine.status;
}

(* Context switches in a schedule: positions where the thread changes. *)
let count_switches schedule =
  match schedule with
  | [] -> 0
  | first :: rest ->
    let switches, _ =
      List.fold_left
        (fun (n, prev) tid -> ((n + if tid <> prev then 1 else 0), tid))
        (0, first) rest
    in
    switches

let end_execution t (e : execution_end) =
  t.executions <- t.executions + 1;
  if t.opts.terminal_states_only && not (Hashtbl.mem t.visited e.signature)
  then Hashtbl.add t.visited e.signature ();
  t.max_steps <- max t.max_steps e.depth;
  t.max_blocks <- max t.max_blocks e.blocks;
  t.max_preemptions <- max t.max_preemptions e.preemptions;
  t.max_threads <- max t.max_threads e.threads;
  t.growth <- (t.executions, Hashtbl.length t.visited) :: t.growth;
  let bug_of key msg =
    if not (Hashtbl.mem t.bugs key) then begin
      Hashtbl.add t.bugs key
        {
          Sresult.key;
          msg;
          schedule = e.schedule;
          preemptions = e.preemptions;
          context_switches = count_switches e.schedule;
          depth = e.depth;
          execution = t.executions;
        };
      t.bug_order <- key :: t.bug_order;
      if t.opts.stop_at_first_bug then raise Stop
    end
  in
  (match e.status with
  | Engine.Failed { key; msg } -> bug_of key msg
  | Engine.Deadlock blocked when t.opts.deadlock_is_error ->
    bug_of "deadlock"
      (Format.asprintf "deadlock; blocked threads: %s"
         (String.concat ", " (List.map string_of_int blocked)))
  | Engine.Deadlock _ | Engine.Terminated | Engine.Running -> ());
  if over t.opts.max_executions t.executions then raise Stop

let record_bound t bound =
  t.bound_coverage <- (bound, Hashtbl.length t.visited) :: t.bound_coverage

let set_complete t = t.complete <- true

let result t ~strategy =
  {
    Sresult.strategy;
    executions = t.executions;
    distinct_states = Hashtbl.length t.visited;
    bugs = List.rev_map (fun key -> Hashtbl.find t.bugs key) t.bug_order;
    max_steps = t.max_steps;
    max_blocks = t.max_blocks;
    max_preemptions = t.max_preemptions;
    max_threads = t.max_threads;
    complete = t.complete;
    growth = Array.of_list (List.rev t.growth);
    bound_coverage = Array.of_list (List.rev t.bound_coverage);
    total_steps = t.total_steps;
  }
