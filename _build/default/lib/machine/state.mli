(** Immutable machine states.

    A state is a persistent snapshot of the whole guest machine.  The
    interpreter produces a fresh state from each step; the search keeps as
    many states alive as its frontier needs.  Mutation is always
    copy-on-write, so retaining a state is free.

    The canonical fingerprint implements ZING-style heap-symmetry
    reduction: heap addresses are renamed in order of first reachability
    from the globals and thread registers, so states differing only in
    allocation history collapse. *)

module Heap_map : Map.S with type key = int

type thread = {
  proc : int;
  pc : int;
  regs : Value.t array;
  finished : bool;
  yielded : bool;  (** set by [Yield]; cleared after the next step *)
  atomic : int;    (** nesting depth of entered atomic sections *)
}

type sync_cell =
  | Mutex_cell of int          (** owner tid, or -1 when free *)
  | Event_cell of bool         (** signaled? *)
  | Sem_cell of int            (** available count *)

type heap_cell = {
  data : Value.t array;
  freed : bool;
}

type t = {
  prog : Prog.t;               (** static; shared by all states of a run *)
  goff : int array;            (** cached [Prog.global_offsets] *)
  soff : int array;            (** cached [Prog.sync_offsets] *)
  globals : Value.t array;
  syncs : sync_cell array;
  threads : thread array;
  heap : heap_cell Heap_map.t;
  next_addr : int;
  error : Merr.t option;
  last_tid : int;              (** thread that executed the last step; -1 at start *)
}

val initial : Prog.t -> t
(** The initial state: thread 0 runs [main]; no heap objects. *)

(* Accessors used by the interpreter; all perform bounds checks and raise
   [Invalid_argument] on violations that the compiler should have ruled
   out. *)

val global_get : t -> gid:int -> idx:int -> Value.t
val global_set : t -> gid:int -> idx:int -> Value.t -> t
val global_size : t -> gid:int -> int

val sync_get : t -> sid:int -> idx:int -> sync_cell
val sync_set : t -> sid:int -> idx:int -> sync_cell -> t
val sync_size : t -> sid:int -> int

val thread_get : t -> int -> thread
val thread_set : t -> int -> thread -> t
val thread_count : t -> int
val add_thread : t -> thread -> t * int

val all_finished : t -> bool

val signature : t -> int64
(** 64-bit FNV fingerprint of the canonical representation. *)

val canonical_repr : t -> string
(** The full canonical serialization (exact, collision-free); used by tests
    and available for exact state caching. *)

val pp : Format.formatter -> t -> unit
(** Human-readable dump for trace reports. *)
