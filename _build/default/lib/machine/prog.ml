type global = {
  gname : string;
  gsize : int;
  ginit : Value.t;
  gvolatile : bool;
}

type sync_kind =
  | Mutex
  | Event of { manual : bool; initially_signaled : bool }
  | Semaphore of { initial : int }

type sync_decl = {
  sname : string;
  ssize : int;
  skind : sync_kind;
}

type proc = {
  pname : string;
  nparams : int;
  nregs : int;
  code : Instr.t array;
}

type t = {
  globals : global array;
  syncs : sync_decl array;
  procs : proc array;
  main : int;
}

let offsets sizes =
  let n = Array.length sizes in
  let r = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    r.(i + 1) <- r.(i) + sizes.(i)
  done;
  r

let global_offsets t = offsets (Array.map (fun g -> g.gsize) t.globals)

let sync_offsets t = offsets (Array.map (fun s -> s.ssize) t.syncs)

let find_by name proj arr =
  let rec go i =
    if i >= Array.length arr then raise Not_found
    else if String.equal (proj arr.(i)) name then i
    else go (i + 1)
  in
  go 0

let find_global t name = find_by name (fun g -> g.gname) t.globals
let find_sync t name = find_by name (fun s -> s.sname) t.syncs
let find_proc t name = find_by name (fun p -> p.pname) t.procs

let validate t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let exception Bad of string in
  let bad fmt = Format.kasprintf (fun s -> raise (Bad s)) fmt in
  try
    if t.main < 0 || t.main >= Array.length t.procs then
      bad "main index %d out of range" t.main;
    if t.procs.(t.main).nparams <> 0 then bad "main must take no parameters";
    Array.iter
      (fun g ->
        if g.gsize < 1 then bad "global %s has size %d" g.gname g.gsize)
      t.globals;
    Array.iter
      (fun s -> if s.ssize < 1 then bad "sync %s has size %d" s.sname s.ssize)
      t.syncs;
    Array.iteri
      (fun pi p ->
        if p.nparams > p.nregs then
          bad "proc %s: %d params > %d regs" p.pname p.nparams p.nregs;
        let check_reg r =
          if r < 0 || r >= p.nregs then bad "proc %s: register %d" p.pname r
        in
        let check_op = function
          | Instr.Reg r -> check_reg r
          | Instr.Imm _ -> ()
        in
        let check_gid gid =
          if gid < 0 || gid >= Array.length t.globals then
            bad "proc %s: global %d" p.pname gid
        in
        let check_obj ({ sid; sidx } : Instr.objref) =
          if sid < 0 || sid >= Array.length t.syncs then
            bad "proc %s: sync %d" p.pname sid;
          check_op sidx
        in
        let check_label l =
          if l < 0 || l >= Array.length p.code then
            bad "proc %s: jump target %d" p.pname l
        in
        Array.iter
          (fun (i : Instr.t) ->
            match i with
            | Load { dst; gid; idx } ->
              check_reg dst; check_gid gid; check_op idx
            | Store { gid; idx; src } -> check_gid gid; check_op idx; check_op src
            | Cas { dst; gid; idx; expect; update } ->
              check_reg dst; check_gid gid; check_op idx; check_op expect;
              check_op update;
              if not t.globals.(gid).gvolatile then
                bad "proc %s: cas on non-volatile global %s" p.pname
                  t.globals.(gid).gname
            | Fetch_add { dst; gid; idx; delta } ->
              check_reg dst; check_gid gid; check_op idx; check_op delta;
              if not t.globals.(gid).gvolatile then
                bad "proc %s: fetch_add on non-volatile global %s" p.pname
                  t.globals.(gid).gname
            | Load_heap { dst; h; idx } -> check_reg dst; check_op h; check_op idx
            | Store_heap { h; idx; src } -> check_op h; check_op idx; check_op src
            | Alloc { dst; size } -> check_reg dst; check_op size
            | Free { h } -> check_op h
            | Prim { dst; op = _; args } -> check_reg dst; List.iter check_op args
            | Mov { dst; src } -> check_reg dst; check_op src
            | Jump l -> check_label l
            | Jump_if_zero { cond; target } -> check_op cond; check_label target
            | Assert { cond; msg = _ } -> check_op cond
            | Lock o | Unlock o | Wait o | Signal o | Reset o
            | Sem_acquire o | Sem_release o -> check_obj o
            | Spawn { proc; args } ->
              if proc < 0 || proc >= Array.length t.procs then
                bad "proc %s: spawn of proc %d" p.pname proc;
              if List.length args <> t.procs.(proc).nparams then
                bad "proc %s: spawn of %s with %d args (expected %d)" p.pname
                  t.procs.(proc).pname (List.length args)
                  t.procs.(proc).nparams;
              List.iter check_op args
            | Yield | Atomic_begin | Atomic_end | Halt -> ())
          p.code;
        ignore pi)
      t.procs;
    Ok ()
  with Bad msg -> err "%s" msg

let pp fmt t =
  let f x = Format.fprintf fmt x in
  Array.iter
    (fun g ->
      f "%svar %s[%d] = %a@." (if g.gvolatile then "volatile " else "")
        g.gname g.gsize Value.pp g.ginit)
    t.globals;
  Array.iter
    (fun s ->
      let kind =
        match s.skind with
        | Mutex -> "mutex"
        | Event { manual; initially_signaled } ->
          Printf.sprintf "event(manual=%b,signaled=%b)" manual initially_signaled
        | Semaphore { initial } -> Printf.sprintf "semaphore(%d)" initial
      in
      f "%s %s[%d]@." kind s.sname s.ssize)
    t.syncs;
  Array.iteri
    (fun pi p ->
      f "proc %s/%d (params=%d, regs=%d)%s@." p.pname pi p.nparams p.nregs
        (if pi = t.main then " <main>" else "");
      Array.iteri (fun i ins -> f "  %3d: %a@." i Instr.pp ins) p.code)
    t.procs
