(** The deterministic interpreter.

    A {e step} is the paper's unit of scheduling: the scheduler picks an
    enabled thread, which executes exactly one shared-variable access and
    then runs on through thread-local instructions until parked at its next
    shared access.  Two granularities are supported:

    - [Every_access]: every shared-variable access is a scheduling point
      (the ZING configuration);
    - [Sync_only]: only synchronization accesses are scheduling points, and
      plain data accesses execute atomically inside the enclosing step (the
      CHESS configuration, sound when combined with race detection —
      Section 3.1, Theorems 2 and 3 of the paper).

    Threads are always {e parked} at a scheduling instruction (or finished);
    [start] and [step] maintain this invariant, running freshly spawned
    threads forward to their first scheduling point. *)

type granularity =
  | Every_access
  | Sync_only

(** Identity of a shared variable, for race detection and happens-before
    signatures. *)
type var_id =
  | Gvar of int * int   (** global id, element index *)
  | Hcell of int * int  (** heap address, element index *)
  | Svar of int * int   (** sync object id, element index *)

type event =
  | Ev_data of { tid : int; var : var_id; write : bool }
      (** plain (non-synchronization) access *)
  | Ev_sync of { tid : int; var : var_id }
      (** synchronization access; per the paper, any two accesses to the
          same synchronization variable are dependent, so no read/write
          distinction is needed *)
  | Ev_fork of { parent : int; child : int }
  | Ev_lifetime of { tid : int; addr : int; freed : bool }
      (** allocation ([freed = false]) or deallocation of a heap object;
          invisible to the race detectors and coverage signatures, but a
          deallocation conflicts with every access to the object — the
          partial-order reduction needs that *)

type step_result = {
  state : State.t;
  events : event list;    (** in execution order *)
  blocking_op : bool;     (** the scheduling instruction was potentially blocking *)
}

val start : granularity -> Prog.t -> step_result
(** Initial state with thread 0 parked at its first scheduling point.
    [blocking_op] is always [false] here. *)

val enabled_raw : State.t -> int list
(** Threads whose parked instruction can execute now, ignoring yield
    flags. *)

val enabled : State.t -> int list
(** The scheduler-visible enabled set: [enabled_raw] minus threads that
    yielded since the last step — unless that leaves nothing, in which case
    yield flags are ignored (a yielding thread cannot disable the whole
    program). *)

type status =
  | Running               (** at least one thread is enabled *)
  | Terminated            (** every thread has finished *)
  | Deadlock of int list  (** nobody is enabled; the listed threads are blocked *)
  | Error of Merr.t

val status : State.t -> status

val step : granularity -> State.t -> int -> step_result
(** [step gran st tid] executes one scheduling step of [tid].  [tid] must be
    in [enabled_raw st] and [st] must not be an error state; violating this
    raises [Invalid_argument]. *)

val var_name : Prog.t -> var_id -> string
(** Human-readable name of a variable for error messages. *)
