type operand =
  | Reg of int
  | Imm of Value.t

type objref = { sid : int; sidx : operand }

type prim =
  | Add | Sub | Mul | Div | Mod | Neg
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or | Not
  | Min | Max

type t =
  | Load of { dst : int; gid : int; idx : operand }
  | Store of { gid : int; idx : operand; src : operand }
  | Cas of { dst : int; gid : int; idx : operand; expect : operand; update : operand }
  | Fetch_add of { dst : int; gid : int; idx : operand; delta : operand }
  | Load_heap of { dst : int; h : operand; idx : operand }
  | Store_heap of { h : operand; idx : operand; src : operand }
  | Alloc of { dst : int; size : operand }
  | Free of { h : operand }
  | Prim of { dst : int; op : prim; args : operand list }
  | Mov of { dst : int; src : operand }
  | Jump of int
  | Jump_if_zero of { cond : operand; target : int }
  | Assert of { cond : operand; msg : string }
  | Lock of objref
  | Unlock of objref
  | Wait of objref
  | Signal of objref
  | Reset of objref
  | Sem_acquire of objref
  | Sem_release of objref
  | Spawn of { proc : int; args : operand list }
  | Yield
  | Atomic_begin
  | Atomic_end
  | Halt

type access_class =
  | Class_local
  | Class_data
  | Class_sync

let classify ~volatile = function
  | Load { gid; _ } | Store { gid; _ } ->
    if volatile gid then Class_sync else Class_data
  | Cas _ | Fetch_add _ -> Class_sync
  | Load_heap _ | Store_heap _ | Alloc _ | Free _ -> Class_data
  | Prim _ | Mov _ | Jump _ | Jump_if_zero _ | Assert _ -> Class_local
  | Lock _ | Unlock _ | Wait _ | Signal _ | Reset _
  | Sem_acquire _ | Sem_release _ | Spawn _ | Yield -> Class_sync
  | Atomic_begin | Atomic_end | Halt -> Class_local

let is_potentially_blocking = function
  | Lock _ | Wait _ | Sem_acquire _ -> true
  | Load _ | Store _ | Cas _ | Fetch_add _ | Load_heap _ | Store_heap _
  | Alloc _ | Free _ | Prim _ | Mov _ | Jump _ | Jump_if_zero _ | Assert _
  | Unlock _ | Signal _ | Reset _ | Sem_release _ | Spawn _ | Yield
  | Atomic_begin | Atomic_end | Halt ->
    false

let pp_operand fmt = function
  | Reg r -> Format.fprintf fmt "r%d" r
  | Imm v -> Value.pp fmt v

let prim_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Mod -> "mod"
  | Neg -> "neg" | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le"
  | Gt -> "gt" | Ge -> "ge" | And -> "and" | Or -> "or" | Not -> "not"
  | Min -> "min" | Max -> "max"

let pp_objref fmt { sid; sidx } =
  Format.fprintf fmt "s%d[%a]" sid pp_operand sidx

let pp fmt i =
  let f x = Format.fprintf fmt x in
  match i with
  | Load { dst; gid; idx } -> f "r%d <- g%d[%a]" dst gid pp_operand idx
  | Store { gid; idx; src } -> f "g%d[%a] <- %a" gid pp_operand idx pp_operand src
  | Cas { dst; gid; idx; expect; update } ->
    f "r%d <- cas g%d[%a] %a %a" dst gid pp_operand idx pp_operand expect
      pp_operand update
  | Fetch_add { dst; gid; idx; delta } ->
    f "r%d <- fetch_add g%d[%a] %a" dst gid pp_operand idx pp_operand delta
  | Load_heap { dst; h; idx } -> f "r%d <- %a.[%a]" dst pp_operand h pp_operand idx
  | Store_heap { h; idx; src } ->
    f "%a.[%a] <- %a" pp_operand h pp_operand idx pp_operand src
  | Alloc { dst; size } -> f "r%d <- alloc %a" dst pp_operand size
  | Free { h } -> f "free %a" pp_operand h
  | Prim { dst; op; args } ->
    f "r%d <- %s" dst (prim_name op);
    List.iter (fun a -> f " %a" pp_operand a) args
  | Mov { dst; src } -> f "r%d <- %a" dst pp_operand src
  | Jump l -> f "jump %d" l
  | Jump_if_zero { cond; target } -> f "jz %a %d" pp_operand cond target
  | Assert { cond; msg } -> f "assert %a %S" pp_operand cond msg
  | Lock o -> f "lock %a" pp_objref o
  | Unlock o -> f "unlock %a" pp_objref o
  | Wait o -> f "wait %a" pp_objref o
  | Signal o -> f "signal %a" pp_objref o
  | Reset o -> f "reset %a" pp_objref o
  | Sem_acquire o -> f "sem_acquire %a" pp_objref o
  | Sem_release o -> f "sem_release %a" pp_objref o
  | Spawn { proc; args } ->
    f "spawn p%d" proc;
    List.iter (fun a -> f " %a" pp_operand a) args
  | Yield -> f "yield"
  | Atomic_begin -> f "atomic_begin"
  | Atomic_end -> f "atomic_end"
  | Halt -> f "halt"
