type t =
  | Assert_failure of { tid : int; msg : string }
  | Deadlock of { waiting : int list }
  | Use_after_free of { tid : int; addr : int }
  | Double_free of { tid : int; addr : int }
  | Invalid_handle of { tid : int; addr : int }
  | Out_of_bounds of { tid : int; what : string; idx : int; size : int }
  | Division_by_zero of { tid : int }
  | Unlock_not_held of { tid : int; sync : string }
  | Local_divergence of { tid : int }
  | Data_race of { var : string; tid1 : int; tid2 : int }

let pp fmt = function
  | Assert_failure { tid; msg } ->
    Format.fprintf fmt "assertion failure in thread %d: %s" tid msg
  | Deadlock { waiting } ->
    Format.fprintf fmt "deadlock; blocked threads: %s"
      (String.concat ", " (List.map string_of_int waiting))
  | Use_after_free { tid; addr } ->
    Format.fprintf fmt "use after free of &%d in thread %d" addr tid
  | Double_free { tid; addr } ->
    Format.fprintf fmt "double free of &%d in thread %d" addr tid
  | Invalid_handle { tid; addr } ->
    Format.fprintf fmt "invalid handle &%d in thread %d" addr tid
  | Out_of_bounds { tid; what; idx; size } ->
    Format.fprintf fmt "index %d out of bounds for %s (size %d) in thread %d"
      idx what size tid
  | Division_by_zero { tid } ->
    Format.fprintf fmt "division by zero in thread %d" tid
  | Unlock_not_held { tid; sync } ->
    Format.fprintf fmt "thread %d unlocked %s without holding it" tid sync
  | Local_divergence { tid } ->
    Format.fprintf fmt
      "thread %d executed too many local instructions without a shared access"
      tid
  | Data_race { var; tid1; tid2 } ->
    Format.fprintf fmt "data race on %s between threads %d and %d" var tid1 tid2

let to_string e = Format.asprintf "%a" pp e

(* Thread identifiers are left out of the key on purpose: the same program
   bug found under a different interleaving (hence with different tids in
   the report) must deduplicate to one bug. *)
let key = function
  | Assert_failure { msg; _ } -> "assert:" ^ msg
  | Deadlock _ -> "deadlock"
  | Use_after_free _ -> "use-after-free"
  | Double_free _ -> "double-free"
  | Invalid_handle _ -> "invalid-handle"
  | Out_of_bounds { what; _ } -> "out-of-bounds:" ^ what
  | Division_by_zero _ -> "div-by-zero"
  | Unlock_not_held { sync; _ } -> "unlock-not-held:" ^ sync
  | Local_divergence _ -> "local-divergence"
  | Data_race { var; _ } -> "race:" ^ var
