lib/machine/instr.mli: Format Value
