lib/machine/interp.ml: Array Instr List Merr Printf Prog State Value
