lib/machine/instr.ml: Format List Value
