lib/machine/interp.mli: Merr Prog State
