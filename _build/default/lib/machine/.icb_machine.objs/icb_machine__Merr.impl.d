lib/machine/merr.ml: Format List String
