lib/machine/value.mli: Format
