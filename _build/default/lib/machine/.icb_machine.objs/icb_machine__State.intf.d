lib/machine/state.mli: Format Map Merr Prog Value
