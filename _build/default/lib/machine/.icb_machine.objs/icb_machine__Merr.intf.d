lib/machine/merr.mli: Format
