lib/machine/state.ml: Array Buffer Format Hashtbl Icb_util Int Map Merr Printf Prog Queue Value
