lib/machine/prog.ml: Array Format Instr List Printf String Value
