lib/machine/prog.mli: Format Instr Value
