lib/machine/value.ml: Format Printf Stdlib
