type t =
  | Int of int
  | Bool of bool
  | Handle of int

let null = Handle (-1)

let zero = Int 0

let equal a b =
  match a, b with
  | Int x, Int y -> x = y
  | Bool x, Bool y -> x = y
  | Handle x, Handle y -> x = y
  | (Int _ | Bool _ | Handle _), _ -> false

let compare a b =
  let rank = function Int _ -> 0 | Bool _ -> 1 | Handle _ -> 2 in
  match a, b with
  | Int x, Int y -> Stdlib.compare x y
  | Bool x, Bool y -> Stdlib.compare x y
  | Handle x, Handle y -> Stdlib.compare x y
  | _ -> Stdlib.compare (rank a) (rank b)

let to_string = function
  | Int n -> string_of_int n
  | Bool b -> string_of_bool b
  | Handle h -> if h < 0 then "null" else Printf.sprintf "&%d" h

let pp fmt v = Format.pp_print_string fmt (to_string v)

let truthy = function
  | Bool b -> b
  | Int n -> n <> 0
  | Handle h -> h >= 0

let as_int = function
  | Int n -> n
  | v -> invalid_arg ("Value.as_int: " ^ to_string v)

let as_handle = function
  | Handle h -> h
  | v -> invalid_arg ("Value.as_handle: " ^ to_string v)
