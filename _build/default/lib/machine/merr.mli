(** Errors detectable by the machine during execution.

    Data races are not produced here — the interpreter reports the raw
    access log of each step and race checking lives in the [icb.race]
    library, layered above. *)

type t =
  | Assert_failure of { tid : int; msg : string }
  | Deadlock of { waiting : int list }
      (** no thread is enabled, yet some have not terminated *)
  | Use_after_free of { tid : int; addr : int }
  | Double_free of { tid : int; addr : int }
  | Invalid_handle of { tid : int; addr : int }
  | Out_of_bounds of { tid : int; what : string; idx : int; size : int }
  | Division_by_zero of { tid : int }
  | Unlock_not_held of { tid : int; sync : string }
  | Local_divergence of { tid : int }
      (** a step executed more thread-local instructions than the fuel
          bound; the thread loops without touching shared state *)
  | Data_race of { var : string; tid1 : int; tid2 : int }

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val key : t -> string
(** A stable, trace-independent identity for deduplicating bug reports:
    same constructor and same program location data yield the same key. *)
