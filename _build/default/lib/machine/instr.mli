(** The guest instruction set.

    The compiler from the modeling language guarantees the property the
    paper's semantics needs: every instruction performs at most one access
    to a shared variable.  Purely thread-local instructions ([Prim], [Mov],
    [Jump], [Jump_if_zero], [Assert]) are fused into the surrounding step by
    the interpreter; shared accesses define scheduling points. *)

(** An operand: a local register or an immediate. *)
type operand =
  | Reg of int
  | Imm of Value.t

(** A reference to one synchronization object: index [sidx] within the
    declared object array [sid] (scalars are arrays of size 1). *)
type objref = { sid : int; sidx : operand }

type prim =
  | Add | Sub | Mul | Div | Mod | Neg
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or | Not
  | Min | Max

type t =
  (* shared-variable accesses (data by default; sync when the global is
     declared volatile) *)
  | Load of { dst : int; gid : int; idx : operand }
  | Store of { gid : int; idx : operand; src : operand }
  | Cas of { dst : int; gid : int; idx : operand; expect : operand; update : operand }
      (** atomic compare-and-swap; [dst] receives the old value.  Always a
          synchronization access. *)
  | Fetch_add of { dst : int; gid : int; idx : operand; delta : operand }
      (** atomic fetch-and-add; [dst] receives the old value.  Always a
          synchronization access. *)
  (* model heap (data accesses) *)
  | Load_heap of { dst : int; h : operand; idx : operand }
  | Store_heap of { h : operand; idx : operand; src : operand }
  | Alloc of { dst : int; size : operand }
  | Free of { h : operand }
  (* thread-local *)
  | Prim of { dst : int; op : prim; args : operand list }
  | Mov of { dst : int; src : operand }
  | Jump of int
  | Jump_if_zero of { cond : operand; target : int }
  | Assert of { cond : operand; msg : string }
  (* synchronization objects (sync accesses; Lock, Wait and Sem_acquire are
     the potentially-blocking instructions) *)
  | Lock of objref
  | Unlock of objref
  | Wait of objref
  | Signal of objref
  | Reset of objref
  | Sem_acquire of objref
  | Sem_release of objref
  (* control *)
  | Spawn of { proc : int; args : operand list }
  | Yield
  | Atomic_begin
      (** enter a ZING-style atomic section: no scheduling points until the
          matching [Atomic_end], except where the thread blocks *)
  | Atomic_end
  | Halt

(** Classification used to place scheduling points. *)
type access_class =
  | Class_local          (** never a scheduling point *)
  | Class_data           (** scheduling point only in [Every_access] mode *)
  | Class_sync           (** always a scheduling point *)

val classify : volatile:(int -> bool) -> t -> access_class
(** [classify ~volatile i] classifies [i]; [volatile gid] reports whether
    global [gid] was declared volatile (making its plain loads/stores
    synchronization accesses). *)

val is_potentially_blocking : t -> bool
(** [Lock], [Wait] and [Sem_acquire] — the instructions counted by the
    paper's parameter B. *)

val pp : Format.formatter -> t -> unit
val pp_operand : Format.formatter -> operand -> unit
