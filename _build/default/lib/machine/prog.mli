(** A compiled guest program: the static part of a model.

    States refer to globals, synchronization objects and procedures by the
    indices assigned here.  Scalars are represented as arrays of size 1 so
    the interpreter has a single addressing path. *)

type global = {
  gname : string;
  gsize : int;            (** 1 for scalars *)
  ginit : Value.t;        (** every element starts at this value *)
  gvolatile : bool;       (** volatile globals are synchronization variables *)
}

type sync_kind =
  | Mutex
  | Event of { manual : bool; initially_signaled : bool }
  | Semaphore of { initial : int }

type sync_decl = {
  sname : string;
  ssize : int;            (** 1 for scalars *)
  skind : sync_kind;
}

type proc = {
  pname : string;
  nparams : int;
  nregs : int;            (** total register count, parameters first *)
  code : Instr.t array;
}

type t = {
  globals : global array;
  syncs : sync_decl array;
  procs : proc array;
  main : int;             (** index of the procedure run as thread 0 *)
}

val global_offsets : t -> int array
(** Flat-layout offset of each global in a state's value array; the extra
    final element is the total size. *)

val sync_offsets : t -> int array
(** Same for synchronization objects. *)

val find_global : t -> string -> int
(** Index of the named global.  Raises [Not_found]. *)

val find_sync : t -> string -> int
val find_proc : t -> string -> int

val validate : t -> (unit, string) result
(** Structural sanity checks: register/jump/global/proc indices in range,
    main exists, CAS only on volatile globals.  Programs produced by the
    [zlang] compiler always validate; the check guards hand-built
    programs. *)

val pp : Format.formatter -> t -> unit
