(** Runtime values of the guest machine.

    The modeling language is typed, so the interpreter could in principle
    work on raw integers; values stay tagged anyway so that type confusion
    inside the interpreter (or in hand-built programs that bypass the type
    checker) is caught immediately rather than silently exploring a
    meaningless state space. *)

type t =
  | Int of int
  | Bool of bool
  | Handle of int  (** heap address; [null] is [Handle (-1)] *)

val null : t
(** The null heap handle. *)

val zero : t

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val truthy : t -> bool
(** [Bool b] is [b]; [Int n] is [n <> 0]; handles are truthy iff non-null.
    Conditional jumps use this. *)

val as_int : t -> int
(** Raises [Invalid_argument] on non-[Int]. *)

val as_handle : t -> int
(** Raises [Invalid_argument] on non-[Handle]. *)
