module Heap_map = Map.Make (Int)

type thread = {
  proc : int;
  pc : int;
  regs : Value.t array;
  finished : bool;
  yielded : bool;
  atomic : int;
}

type sync_cell =
  | Mutex_cell of int
  | Event_cell of bool
  | Sem_cell of int

type heap_cell = {
  data : Value.t array;
  freed : bool;
}

type t = {
  prog : Prog.t;
  goff : int array;
  soff : int array;
  globals : Value.t array;
  syncs : sync_cell array;
  threads : thread array;
  heap : heap_cell Heap_map.t;
  next_addr : int;
  error : Merr.t option;
  last_tid : int;
}

let initial_sync (decl : Prog.sync_decl) =
  match decl.skind with
  | Prog.Mutex -> Mutex_cell (-1)
  | Prog.Event { initially_signaled; _ } -> Event_cell initially_signaled
  | Prog.Semaphore { initial } -> Sem_cell initial

let initial (prog : Prog.t) =
  let goff = Prog.global_offsets prog in
  let soff = Prog.sync_offsets prog in
  let globals = Array.make goff.(Array.length prog.globals) Value.zero in
  Array.iteri
    (fun gi (g : Prog.global) ->
      for j = 0 to g.gsize - 1 do
        globals.(goff.(gi) + j) <- g.ginit
      done)
    prog.globals;
  let syncs = Array.make soff.(Array.length prog.syncs) (Mutex_cell (-1)) in
  Array.iteri
    (fun si (s : Prog.sync_decl) ->
      for j = 0 to s.ssize - 1 do
        syncs.(soff.(si) + j) <- initial_sync s
      done)
    prog.syncs;
  let main_proc = prog.procs.(prog.main) in
  let thread0 =
    {
      proc = prog.main;
      pc = 0;
      regs = Array.make main_proc.nregs Value.zero;
      finished = Array.length main_proc.code = 0;
      yielded = false;
      atomic = 0;
    }
  in
  {
    prog;
    goff;
    soff;
    globals;
    syncs;
    threads = [| thread0 |];
    heap = Heap_map.empty;
    next_addr = 0;
    error = None;
    last_tid = -1;
  }

let array_set arr i v =
  let arr' = Array.copy arr in
  arr'.(i) <- v;
  arr'

let global_size t ~gid = t.goff.(gid + 1) - t.goff.(gid)

let check_idx what idx size =
  if idx < 0 || idx >= size then
    invalid_arg (Printf.sprintf "State: %s index %d out of %d" what idx size)

let global_get t ~gid ~idx =
  check_idx "global" idx (global_size t ~gid);
  t.globals.(t.goff.(gid) + idx)

let global_set t ~gid ~idx v =
  check_idx "global" idx (global_size t ~gid);
  { t with globals = array_set t.globals (t.goff.(gid) + idx) v }

let sync_size t ~sid = t.soff.(sid + 1) - t.soff.(sid)

let sync_get t ~sid ~idx =
  check_idx "sync" idx (sync_size t ~sid);
  t.syncs.(t.soff.(sid) + idx)

let sync_set t ~sid ~idx c =
  check_idx "sync" idx (sync_size t ~sid);
  { t with syncs = array_set t.syncs (t.soff.(sid) + idx) c }

let thread_get t tid = t.threads.(tid)

let thread_set t tid th = { t with threads = array_set t.threads tid th }

let thread_count t = Array.length t.threads

let add_thread t th =
  let n = Array.length t.threads in
  let threads = Array.make (n + 1) th in
  Array.blit t.threads 0 threads 0 n;
  ({ t with threads }, n)

let all_finished t = Array.for_all (fun th -> th.finished) t.threads

(* --- canonical serialization ---------------------------------------- *)

(* Heap addresses are renamed by order of first reachability: first the
   globals in declaration order, then each thread's registers in tid order,
   then a breadth-first walk through the cells discovered so far.  Values in
   freed cells are not traversed (dangling handles serialize as the special
   marker below).  Unreachable live cells are leaked memory; they are
   appended in address order so that a leak still distinguishes states. *)

let canonical_buf t buf =
  let rename = Hashtbl.create 16 in
  let queue = Queue.create () in
  let canon_of addr =
    if addr < 0 then -1
    else
      match Hashtbl.find_opt rename addr with
      | Some c -> c
      | None ->
        let c = Hashtbl.length rename in
        Hashtbl.add rename addr c;
        Queue.push addr queue;
        c
  in
  let add_value v =
    match v with
    | Value.Int n ->
      Buffer.add_char buf 'i';
      Buffer.add_string buf (string_of_int n)
    | Value.Bool b -> Buffer.add_char buf (if b then 'T' else 'F')
    | Value.Handle h ->
      Buffer.add_char buf 'h';
      Buffer.add_string buf (string_of_int (canon_of h))
  in
  let add_sep () = Buffer.add_char buf ';' in
  Array.iter (fun v -> add_value v; add_sep ()) t.globals;
  Buffer.add_char buf '|';
  Array.iter
    (fun c ->
      (match c with
      | Mutex_cell owner ->
        Buffer.add_char buf 'm';
        Buffer.add_string buf (string_of_int owner)
      | Event_cell s -> Buffer.add_char buf (if s then 'E' else 'e')
      | Sem_cell n ->
        Buffer.add_char buf 's';
        Buffer.add_string buf (string_of_int n));
      add_sep ())
    t.syncs;
  Buffer.add_char buf '|';
  Array.iter
    (fun th ->
      Buffer.add_string buf (string_of_int th.proc);
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int th.pc);
      Buffer.add_char buf (if th.finished then 'X' else 'R');
      Buffer.add_char buf (if th.yielded then 'Y' else 'N');
      Buffer.add_string buf (string_of_int th.atomic);
      Buffer.add_char buf ',';
      Array.iter (fun v -> add_value v; add_sep ()) th.regs;
      Buffer.add_char buf '/')
    t.threads;
  Buffer.add_char buf '|';
  (* walk the heap in canonical discovery order *)
  let emitted = ref 0 in
  let emit_cell addr =
    incr emitted;
    match Heap_map.find_opt addr t.heap with
    | None | Some { freed = true; _ } -> Buffer.add_char buf '!'
    | Some { data; freed = false } ->
      Buffer.add_char buf '[';
      Array.iter (fun v -> add_value v; add_sep ()) data;
      Buffer.add_char buf ']'
  in
  let rec drain () =
    if not (Queue.is_empty queue) then begin
      emit_cell (Queue.pop queue);
      drain ()
    end
  in
  drain ();
  (* leaked live cells, in address order, each traversed too *)
  Heap_map.iter
    (fun addr cell ->
      if (not cell.freed) && not (Hashtbl.mem rename addr) then begin
        Buffer.add_char buf 'L';
        ignore (canon_of addr);
        drain ()
      end)
    t.heap;
  Buffer.add_char buf '|';
  (match t.error with
  | None -> ()
  | Some e -> Buffer.add_string buf (Merr.key e));
  ignore !emitted

let canonical_repr t =
  let buf = Buffer.create 256 in
  canonical_buf t buf;
  Buffer.contents buf

let signature t = Icb_util.Fnv.hash_string (canonical_repr t)

let pp fmt t =
  let f x = Format.fprintf fmt x in
  Array.iteri
    (fun gi (g : Prog.global) ->
      f "%s = " g.gname;
      if g.gsize = 1 then f "%a" Value.pp t.globals.(t.goff.(gi))
      else begin
        f "[";
        for j = 0 to g.gsize - 1 do
          if j > 0 then f ", ";
          f "%a" Value.pp t.globals.(t.goff.(gi) + j)
        done;
        f "]"
      end;
      f "@.")
    t.prog.globals;
  Array.iteri
    (fun si (s : Prog.sync_decl) ->
      for j = 0 to s.ssize - 1 do
        let cell = t.syncs.(t.soff.(si) + j) in
        let suffix = if s.ssize = 1 then "" else Printf.sprintf "[%d]" j in
        match cell with
        | Mutex_cell owner when owner >= 0 ->
          f "%s%s held by thread %d@." s.sname suffix owner
        | Mutex_cell _ -> f "%s%s free@." s.sname suffix
        | Event_cell signaled ->
          f "%s%s %s@." s.sname suffix
            (if signaled then "signaled" else "unsignaled")
        | Sem_cell n -> f "%s%s count=%d@." s.sname suffix n
      done)
    t.prog.syncs;
  Array.iteri
    (fun tid th ->
      f "thread %d: %s pc=%d%s%s%s@." tid t.prog.procs.(th.proc).pname th.pc
        (if th.finished then " finished" else "")
        (if th.yielded then " yielded" else "")
        (if th.atomic > 0 then Printf.sprintf " atomic(%d)" th.atomic else ""))
    t.threads;
  Heap_map.iter
    (fun addr cell ->
      if cell.freed then f "&%d: freed@." addr
      else begin
        f "&%d: [" addr;
        Array.iteri
          (fun j v -> if j > 0 then f ", " else (); f "%a" Value.pp v)
          cell.data;
        f "]@."
      end)
    t.heap;
  match t.error with
  | None -> ()
  | Some e -> f "ERROR: %a@." Merr.pp e
