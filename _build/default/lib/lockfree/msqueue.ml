module Api = Icb_chess.Api

type 'a node = {
  value : 'a option;                    (* None only for the dummy *)
  next : 'a node option Api.Shared.t;
}

type 'a t = {
  head : 'a node Api.Shared.t;          (* points at the dummy *)
  tail : 'a node Api.Shared.t;          (* lags at most one node behind *)
}

let create () =
  let dummy = { value = None; next = Api.Shared.make None } in
  { head = Api.Shared.make dummy; tail = Api.Shared.make dummy }

let enqueue t v =
  let n = { value = Some v; next = Api.Shared.make None } in
  let rec attempt () =
    let last = Api.Shared.get t.tail in
    match Api.Shared.get last.next with
    | None ->
      if Api.Shared.cas_phys last.next ~expect:None ~update:(Some n) then
        (* linked; swinging the tail is cooperative and may fail *)
        ignore (Api.Shared.cas_phys t.tail ~expect:last ~update:n)
      else attempt ()
    | Some nn ->
      (* help the lagging tail forward, then retry *)
      ignore (Api.Shared.cas_phys t.tail ~expect:last ~update:nn);
      attempt ()
  in
  attempt ()

let rec dequeue t =
  let first = Api.Shared.get t.head in
  let last = Api.Shared.get t.tail in
  match Api.Shared.get first.next with
  | None -> None
  | Some n ->
    if first == last then begin
      (* tail lags behind a non-empty list: help and retry *)
      ignore (Api.Shared.cas_phys t.tail ~expect:last ~update:n);
      dequeue t
    end
    else if Api.Shared.cas_phys t.head ~expect:first ~update:n then n.value
    else dequeue t

module Broken = struct
  (* the link is published with a plain store: two concurrent enqueuers
     can both hang their node off the same predecessor, losing one *)
  let enqueue t v =
    let n = { value = Some v; next = Api.Shared.make None } in
    let last = Api.Shared.get t.tail in
    Api.Shared.set last.next (Some n);
    ignore (Api.Shared.cas_phys t.tail ~expect:last ~update:n)
end
