lib/lockfree/msqueue.mli:
