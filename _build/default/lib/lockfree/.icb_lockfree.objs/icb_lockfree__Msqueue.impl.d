lib/lockfree/msqueue.ml: Icb_chess
