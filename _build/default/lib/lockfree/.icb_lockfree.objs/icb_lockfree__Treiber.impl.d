lib/lockfree/treiber.ml: Icb_chess
