lib/lockfree/treiber.mli:
