(** Treiber's lock-free stack, written against the checker's shim
    primitives — a worked example of using the library to verify a
    non-blocking data structure (the style of code the paper's
    work-stealing-queue benchmark exercises).

    Must be created and used inside a checker exploration
    ([Icb_chess.Chess_engine.check] or [run]); see [test/test_lockfree.ml]
    for the verification harness. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Lock-free: retries its CAS until it wins.  Every retry means another
    thread made progress, so all explored executions terminate. *)

val pop : 'a t -> 'a option

(** A deliberately broken variant for the tests: the push publishes with a
    plain write instead of a CAS, losing concurrent pushes. *)
module Broken : sig
  val push : 'a t -> 'a -> unit
end
