module Api = Icb_chess.Api

type 'a node = {
  value : 'a;
  next : 'a node option;
}

type 'a t = { head : 'a node option Api.Shared.t }

let create () = { head = Api.Shared.make None }

let rec push t v =
  let h = Api.Shared.get t.head in
  let n = { value = v; next = h } in
  if not (Api.Shared.cas_phys t.head ~expect:h ~update:(Some n)) then push t v

let rec pop t =
  match Api.Shared.get t.head with
  | None -> None
  | Some n as h ->
    if Api.Shared.cas_phys t.head ~expect:h ~update:n.next then Some n.value
    else pop t

module Broken = struct
  (* read-then-write publication: a concurrent push between the read and
     the write is lost *)
  let push t v =
    let h = Api.Shared.get t.head in
    Api.Shared.set t.head (Some { value = v; next = h })
end
