(** The Michael–Scott lock-free queue (PODC 1996) over the checker's shim
    primitives: a linked list with a dummy head, a lagging tail pointer
    that helpers swing forward, and CAS-published links.

    Like {!Treiber}, only usable inside a checker exploration. *)

type 'a t

val create : unit -> 'a t

val enqueue : 'a t -> 'a -> unit

val dequeue : 'a t -> 'a option

(** Broken variant: the enqueue swings the tail before linking the node,
    so a concurrent enqueuer can hang its node off an unlinked tail and
    lose messages. *)
module Broken : sig
  val enqueue : 'a t -> 'a -> unit
end
