let theorem1_bound ~n ~k ~b ~c =
  Bignat.mul (Bignat.binomial (n * k) c) (Bignat.factorial ((n * b) + c))

let simplified_bound ~n ~k ~b ~c =
  Bignat.mul
    (Bignat.pow (Bignat.of_int (n * n * k * b)) c)
    (Bignat.factorial (n * b))

let nonblocking_bound ~n ~k ~c =
  Bignat.mul (Bignat.pow (Bignat.of_int (n * n * k)) c) (Bignat.factorial n)

(* (nk)! / (k!)^n computed without bignum division, as the telescoping
   product of multichoose factors prod_{i=1..n} C(i*k, k). *)
let total_executions_upper ~n ~k =
  let r = ref Bignat.one in
  for i = 1 to n do
    r := Bignat.mul !r (Bignat.binomial (i * k) k)
  done;
  !r
