lib/util/bignat.ml: Array Buffer Format Printf Stdlib
