lib/util/bignat.mli: Format
