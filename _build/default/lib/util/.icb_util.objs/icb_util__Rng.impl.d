lib/util/rng.ml: Int64 List
