lib/util/fnv.mli:
