lib/util/combin.mli: Bignat
