lib/util/rng.mli:
