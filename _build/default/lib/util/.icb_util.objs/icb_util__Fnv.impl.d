lib/util/fnv.ml: Char Int64 Printf String
