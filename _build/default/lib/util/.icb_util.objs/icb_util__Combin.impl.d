lib/util/combin.ml: Bignat
