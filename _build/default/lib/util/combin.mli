(** Executable form of the paper's combinatorial bounds (Section 2).

    Theorem 1: a terminating program with [n] threads, each executing at most
    [k] steps of which at most [b] are potentially blocking, has at most
    [C(nk, c) * (nb + c)!] executions with exactly [c] preemptions. *)

val theorem1_bound : n:int -> k:int -> b:int -> c:int -> Bignat.t
(** The exact bound [C(nk,c) * (nb+c)!]. *)

val simplified_bound : n:int -> k:int -> b:int -> c:int -> Bignat.t
(** The paper's simplification [(n^2 k b)^c * (nb)!], valid when [c] is much
    smaller than both [k] and [nb]. *)

val nonblocking_bound : n:int -> k:int -> c:int -> Bignat.t
(** The non-blocking specialization [(n^2 k)^c * n!] obtained with [b = 1]. *)

val total_executions_upper : n:int -> k:int -> Bignat.t
(** The unbounded-search explosion the paper opens with: [(nk)! / (k!)^n],
    the number of interleavings of [n] threads of [k] steps each. *)
