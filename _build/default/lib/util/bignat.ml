(* Little-endian limbs in base 10^9.  The empty array represents zero and is
   the unique representation of zero (no trailing zero limbs ever stored),
   which makes structural comparison meaningful. *)

let base = 1_000_000_000

type t = int array

let zero = [||]

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Bignat.of_int: negative";
  let rec limbs n = if n = 0 then [] else (n mod base) :: limbs (n / base) in
  Array.of_list (limbs n)

let one = of_int 1

let to_int_opt a =
  let rec go i acc =
    if i < 0 then Some acc
    else if acc > (max_int - a.(i)) / base then None
    else go (i - 1) ((acc * base) + a.(i))
  in
  go (Array.length a - 1) 0

let add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let r = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s mod base;
    carry := s / base
  done;
  r.(n) <- !carry;
  normalize r

let sub a b =
  let la = Array.length a and lb = Array.length b in
  if lb > la then invalid_arg "Bignat.sub: negative result";
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  if !borrow <> 0 then invalid_arg "Bignat.sub: negative result";
  normalize r

let rec mul_int a m =
  if m < 0 then invalid_arg "Bignat.mul_int: negative"
  else if m = 0 || Array.length a = 0 then zero
  else begin
    let la = Array.length a in
    (* m may exceed one limb; split it so limb products stay below 2^62 *)
    if m < base then begin
      let r = Array.make (la + 1) 0 in
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let p = (a.(i) * m) + !carry in
        r.(i) <- p mod base;
        carry := p / base
      done;
      r.(la) <- !carry;
      normalize r
    end else begin
      (* recurse on the limb decomposition of m *)
      let low = mul_int a (m mod base) in
      let high = mul_int a (m / base) in
      (* shift high by one limb *)
      let shifted = Array.make (Array.length high + 1) 0 in
      Array.blit high 0 shifted 1 (Array.length high);
      add low (normalize shifted)
    end
  end

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let p = (a.(i) * b.(j)) + r.(i + j) + !carry in
        r.(i + j) <- p mod base;
        carry := p / base
      done;
      let k = ref (i + lb) in
      while !carry > 0 do
        let p = r.(!k) + !carry in
        r.(!k) <- p mod base;
        carry := p / base;
        incr k
      done
    done;
    normalize r
  end

let div_int_exact a d =
  if d <= 0 then invalid_arg "Bignat.div_int_exact: non-positive divisor";
  if d >= base then invalid_arg "Bignat.div_int_exact: divisor too large";
  let la = Array.length a in
  let r = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem * base) + a.(i) in
    r.(i) <- cur / d;
    rem := cur mod d
  done;
  if !rem <> 0 then invalid_arg "Bignat.div_int_exact: inexact";
  normalize r

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let equal a b = compare a b = 0

let to_string a =
  let la = Array.length a in
  if la = 0 then "0"
  else begin
    let buf = Buffer.create (la * 9) in
    Buffer.add_string buf (string_of_int a.(la - 1));
    for i = la - 2 downto 0 do
      Buffer.add_string buf (Printf.sprintf "%09d" a.(i))
    done;
    Buffer.contents buf
  end

let pp fmt a = Format.pp_print_string fmt (to_string a)

let factorial n =
  if n < 0 then invalid_arg "Bignat.factorial: negative";
  let r = ref one in
  for i = 2 to n do
    r := mul_int !r i
  done;
  !r

let binomial n k =
  if k < 0 || k > n then zero
  else begin
    (* C(n,k) = prod_{i=1..k} (n-k+i)/i; each division is exact because the
       running product after step i is C(n-k+i, i). *)
    let k = min k (n - k) in
    let r = ref one in
    for i = 1 to k do
      r := div_int_exact (mul_int !r (n - k + i)) i
    done;
    !r
  end

let pow a e =
  if e < 0 then invalid_arg "Bignat.pow: negative exponent";
  let rec go acc a e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul acc a) (mul a a) (e lsr 1)
    else go acc (mul a a) (e lsr 1)
  in
  go one a e
