(** Arbitrary-precision natural numbers.

    The Theorem 1 bound [C(nk,c) * (nb+c)!] overflows native integers for
    every interesting benchmark, and the sealed environment provides no
    [zarith]; this module implements the small amount of bignum arithmetic
    the combinatorics need.  Numbers are non-negative only — subtraction
    below zero is a programming error and raises. *)

type t

val zero : t
val one : t

val of_int : int -> t
(** Raises [Invalid_argument] on negative input. *)

val to_int_opt : t -> int option
(** [Some n] when the value fits in a native [int]. *)

val add : t -> t -> t
val sub : t -> t -> t
(** Raises [Invalid_argument] if the result would be negative. *)

val mul : t -> t -> t
val mul_int : t -> int -> t

val div_int_exact : t -> int -> t
(** [div_int_exact a d] divides [a] by the positive native [d], raising
    [Invalid_argument] if the division is not exact.  Sufficient for
    binomial coefficients computed as products of exact fractions. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val factorial : int -> t
val binomial : int -> int -> t
(** [binomial n k] is [C(n,k)]; 0 when [k < 0] or [k > n]. *)

val pow : t -> int -> t
