(** 64-bit FNV-1a hashing.

    Used throughout the checker to fingerprint program states and
    happens-before signatures.  FNV-1a is chosen because it is trivially
    incremental: a hash value can be extended byte by byte, which lets the
    interpreter maintain running state signatures without serializing whole
    states. *)

type t = int64

val basis : t
(** The FNV-1a 64-bit offset basis. *)

val string : t -> string -> t
(** [string h s] extends [h] with the bytes of [s]. *)

val int : t -> int -> t
(** [int h n] extends [h] with the 8 little-endian bytes of [n]. *)

val int64 : t -> int64 -> t
(** [int64 h n] extends [h] with the 8 little-endian bytes of [n]. *)

val char : t -> char -> t
(** [char h c] extends [h] with the single byte [c]. *)

val hash_string : string -> t
(** [hash_string s] is [string basis s]. *)

val combine_commutative : t -> t -> t
(** Order-insensitive combination of two hashes (wrapping addition).
    Used where a set of sub-hashes must hash identically regardless of the
    order in which its elements were encountered. *)

val to_hex : t -> string
(** Render as a 16-character lowercase hex string. *)
