type t = int64

let basis = 0xcbf29ce484222325L

let prime = 0x100000001b3L

let char h c =
  Int64.mul (Int64.logxor h (Int64.of_int (Char.code c))) prime

let byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime

let string h s =
  let h = ref h in
  String.iter (fun c -> h := char !h c) s;
  !h

let int h n =
  let h = ref h in
  for i = 0 to 7 do
    h := byte !h ((n lsr (8 * i)) land 0xff)
  done;
  !h

let int64 h n =
  let h = ref h in
  for i = 0 to 7 do
    h := byte !h (Int64.to_int (Int64.shift_right_logical n (8 * i)))
  done;
  !h

let hash_string s = string basis s

let combine_commutative = Int64.add

let to_hex h = Printf.sprintf "%016Lx" h
