(** Race reports shared by the detectors. *)

type race = {
  var : Icb_machine.Interp.var_id;  (** the data variable raced on *)
  tid1 : int;                       (** earlier access *)
  tid2 : int;                       (** later access *)
}

val to_merr : Icb_machine.Prog.t -> race -> Icb_machine.Merr.t

val pp : Icb_machine.Prog.t -> Format.formatter -> race -> unit
