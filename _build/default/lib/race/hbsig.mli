(** Happens-before execution signatures.

    The paper's Section 4.3 uses the happens-before relation of an
    execution as the representation of the state it reaches, for programs
    whose concrete states a stateless checker cannot capture.  Two
    executions that differ only in the order of independent steps have
    equal happens-before relations and therefore equal signatures here.

    The signature combines, commutatively across variables, a hash of the
    per-synchronization-variable access sequence (each entry being the
    accessing thread and that thread's operation index), together with each
    thread's operation count.  Within a variable the sequence order
    matters; across variables it must not — reordering independent steps
    permutes events of different variables but preserves each variable's
    sequence. *)

type t

val empty : t

val observe : t -> Icb_machine.Interp.event list -> t
(** Fold the events of one step into the signature state. *)

val signature : t -> int64
(** The current signature. *)
