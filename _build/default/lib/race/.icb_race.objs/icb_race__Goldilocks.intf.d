lib/race/goldilocks.mli: Icb_machine Report
