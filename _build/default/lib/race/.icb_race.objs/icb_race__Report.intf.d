lib/race/report.mli: Format Icb_machine
