lib/race/vcdetect.ml: Icb_machine Int List Map Report Stdlib Vclock
