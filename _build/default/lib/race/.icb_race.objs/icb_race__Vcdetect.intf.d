lib/race/vcdetect.mli: Icb_machine Report
