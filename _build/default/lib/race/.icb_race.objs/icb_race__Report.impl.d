lib/race/report.ml: Icb_machine
