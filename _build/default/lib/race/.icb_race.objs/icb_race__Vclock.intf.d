lib/race/vclock.mli: Format
