lib/race/hbsig.ml: Icb_machine Icb_util Int List Map Stdlib
