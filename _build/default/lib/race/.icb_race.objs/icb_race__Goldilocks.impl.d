lib/race/goldilocks.ml: Icb_machine Int List Map Option Report Set Stdlib
