lib/race/vclock.ml: Format Int Map
