lib/race/hbsig.mli: Icb_machine
