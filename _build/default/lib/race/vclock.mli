(** Persistent vector clocks.

    Components default to 0 for absent threads, so clocks over a growing
    thread population need no resizing. *)

type t

val empty : t

val get : t -> int -> int
(** [get c tid] is the component for [tid] (0 when absent). *)

val inc : t -> int -> t
(** Increment one component. *)

val set : t -> int -> int -> t

val join : t -> t -> t
(** Pointwise maximum. *)

val leq : t -> t -> bool
(** Pointwise ordering: [leq a b] iff every component of [a] is [<=] the
    corresponding component of [b]. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** A total order extending structural equality (not the happens-before
    partial order); for use as a map key. *)

val pp : Format.formatter -> t -> unit
