(** Vector-clock data-race detector (DJIT+/FastTrack style).

    Consumes the interpreter's event stream.  Synchronization accesses act
    as combined acquire-release on the variable (matching the paper's
    dependence relation, under which any two accesses to the same sync
    variable are ordered); data accesses are checked against the last write
    epoch and the read epochs since that write.

    The state is persistent: the search can branch an execution and carry
    the detector along each branch. *)

type t

val empty : t

val observe : t -> Icb_machine.Interp.event list -> (t, Report.race) result
(** Process the events of one step, in order.  Returns the first race
    found, if any; otherwise the advanced detector state. *)
