type race = {
  var : Icb_machine.Interp.var_id;
  tid1 : int;
  tid2 : int;
}

let to_merr prog { var; tid1; tid2 } =
  Icb_machine.Merr.Data_race
    { var = Icb_machine.Interp.var_name prog var; tid1; tid2 }

let pp prog fmt r = Icb_machine.Merr.pp fmt (to_merr prog r)
