(** The Goldilocks race detector (Elmas, Qadeer, Tasiran, FATES/RV 2006) —
    the algorithm the CHESS implementation uses to check each execution for
    data races.

    Goldilocks maintains, for every data variable, a {e lockset}: the set
    of threads and synchronization variables through which the last
    accesses to it have been "published".  A thread may access the variable
    race-free iff it belongs to the lockset.  Synchronization accesses grow
    locksets by the transfer rules; data accesses check membership and
    reset.

    This is an eager (non-lazy) implementation extended with read sharing:
    each variable carries the lockset of its last write plus one lockset
    per reading thread since that write, so read-read sharing is not
    reported while read-write and write-write races are.  The detector is
    persistent, like {!Vcdetect}, and the two are property-tested to agree
    on every execution. *)

type t

val empty : t

val observe : t -> Icb_machine.Interp.event list -> (t, Report.race) result
