module Interp = Icb_machine.Interp
module Imap = Map.Make (Int)

module Elem = struct
  type t =
    | Thread of int
    | Sync of Interp.var_id

  let compare = Stdlib.compare
end

module Lockset = Set.Make (Elem)

module Var_map = Map.Make (struct
  type t = Interp.var_id

  let compare = Stdlib.compare
end)

type data_state = {
  wls : (Lockset.t * int) option;  (* write lockset and the writer tid *)
  rls : (Lockset.t * int) Imap.t;  (* per reader thread: lockset, reader tid *)
}

type t = { data : data_state Var_map.t }

let empty = { data = Var_map.empty }

let data_of t var =
  match Var_map.find_opt var t.data with
  | Some d -> d
  | None -> { wls = None; rls = Imap.empty }

(* Transfer rule for a combined acquire-release of sync element [v] by
   thread [tid]: acquiring first (v in LS adds the thread), then releasing
   (thread in LS adds v). *)
let transfer_sync tid v (ls : Lockset.t) =
  let ls = if Lockset.mem (Elem.Sync v) ls then Lockset.add (Elem.Thread tid) ls else ls in
  if Lockset.mem (Elem.Thread tid) ls then Lockset.add (Elem.Sync v) ls else ls

let transfer_fork parent child ls =
  if Lockset.mem (Elem.Thread parent) ls then Lockset.add (Elem.Thread child) ls
  else ls

let map_locksets f t =
  {
    data =
      Var_map.map
        (fun d ->
          {
            wls = Option.map (fun (ls, w) -> (f ls, w)) d.wls;
            rls = Imap.map (fun (ls, r) -> (f ls, r)) d.rls;
          })
        t.data;
  }

exception Race of Report.race

let on_read t tid var =
  let d = data_of t var in
  (match d.wls with
  | Some (ls, writer) when writer <> tid && not (Lockset.mem (Elem.Thread tid) ls)
    -> raise (Race { Report.var; tid1 = writer; tid2 = tid })
  | Some _ | None -> ());
  let d =
    { d with rls = Imap.add tid (Lockset.singleton (Elem.Thread tid), tid) d.rls }
  in
  { data = Var_map.add var d t.data }

let on_write t tid var =
  let d = data_of t var in
  (match d.wls with
  | Some (ls, writer) when writer <> tid && not (Lockset.mem (Elem.Thread tid) ls)
    -> raise (Race { Report.var; tid1 = writer; tid2 = tid })
  | Some _ | None -> ());
  Imap.iter
    (fun reader (ls, _) ->
      if reader <> tid && not (Lockset.mem (Elem.Thread tid) ls) then
        raise (Race { Report.var; tid1 = reader; tid2 = tid }))
    d.rls;
  let d =
    { wls = Some (Lockset.singleton (Elem.Thread tid), tid); rls = Imap.empty }
  in
  { data = Var_map.add var d t.data }

let observe t events =
  try
    Ok
      (List.fold_left
         (fun t ev ->
           match (ev : Interp.event) with
           | Ev_sync { tid; var } -> map_locksets (transfer_sync tid var) t
           | Ev_fork { parent; child } ->
             map_locksets (transfer_fork parent child) t
           | Ev_data { tid; var; write } ->
             if write then on_write t tid var else on_read t tid var
           | Ev_lifetime _ -> t)
         t events)
  with Race r -> Error r
