module Imap = Map.Make (Int)

(* Invariant: no bindings to 0 are stored, so structural map equality
   coincides with clock equality. *)
type t = int Imap.t

let empty = Imap.empty

let get c tid = match Imap.find_opt tid c with Some n -> n | None -> 0

let set c tid n = if n = 0 then Imap.remove tid c else Imap.add tid n c

let inc c tid = Imap.add tid (get c tid + 1) c

let join a b = Imap.union (fun _ x y -> Some (max x y)) a b

let leq a b = Imap.for_all (fun tid n -> n <= get b tid) a

let equal = Imap.equal Int.equal

let compare = Imap.compare Int.compare

let pp fmt c =
  Format.fprintf fmt "{";
  let first = ref true in
  Imap.iter
    (fun tid n ->
      if not !first then Format.fprintf fmt ", ";
      first := false;
      Format.fprintf fmt "%d:%d" tid n)
    c;
  Format.fprintf fmt "}"
