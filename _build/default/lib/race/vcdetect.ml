module Interp = Icb_machine.Interp
module Imap = Map.Make (Int)

module Var_map = Map.Make (struct
  type t = Interp.var_id

  let compare = Stdlib.compare
end)

type data_state = {
  write : (int * int) option;  (* last-write epoch: (tid, clock) *)
  reads : int Imap.t;          (* per-thread read epochs since the last write *)
}

type t = {
  clocks : Vclock.t Imap.t;    (* per-thread clocks *)
  sync_vc : Vclock.t Var_map.t;
  data : data_state Var_map.t;
}

let empty = { clocks = Imap.empty; sync_vc = Var_map.empty; data = Var_map.empty }

(* A thread's clock starts at {t:1} so its first operation has a non-zero
   epoch. *)
let clock_of t tid =
  match Imap.find_opt tid t.clocks with
  | Some c -> c
  | None -> Vclock.inc Vclock.empty tid

let data_of t var =
  match Var_map.find_opt var t.data with
  | Some d -> d
  | None -> { write = None; reads = Imap.empty }

exception Race of Report.race

let on_sync t tid var =
  let c = clock_of t tid in
  let vvc =
    match Var_map.find_opt var t.sync_vc with
    | Some vc -> vc
    | None -> Vclock.empty
  in
  (* combined acquire-release: pull the variable's knowledge in, publish the
     joined clock, then advance the thread *)
  let c = Vclock.join c vvc in
  let sync_vc = Var_map.add var c t.sync_vc in
  let c = Vclock.inc c tid in
  { t with clocks = Imap.add tid c t.clocks; sync_vc }

let on_fork t parent child =
  let cp = clock_of t parent in
  let cc = Vclock.join (clock_of t child) cp in
  let cp = Vclock.inc cp parent in
  { t with clocks = Imap.add parent cp (Imap.add child cc t.clocks) }

let on_read t tid var =
  let c = clock_of t tid in
  let d = data_of t var in
  (match d.write with
  | Some (u, k) when u <> tid && k > Vclock.get c u ->
    raise (Race { Report.var; tid1 = u; tid2 = tid })
  | Some _ | None -> ());
  let d = { d with reads = Imap.add tid (Vclock.get c tid) d.reads } in
  { t with data = Var_map.add var d t.data }

let on_write t tid var =
  let c = clock_of t tid in
  let d = data_of t var in
  (match d.write with
  | Some (u, k) when u <> tid && k > Vclock.get c u ->
    raise (Race { Report.var; tid1 = u; tid2 = tid })
  | Some _ | None -> ());
  Imap.iter
    (fun u k ->
      if u <> tid && k > Vclock.get c u then
        raise (Race { Report.var; tid1 = u; tid2 = tid }))
    d.reads;
  let d = { write = Some (tid, Vclock.get c tid); reads = Imap.empty } in
  { t with data = Var_map.add var d t.data }

let observe t events =
  try
    Ok
      (List.fold_left
         (fun t ev ->
           match (ev : Interp.event) with
           | Ev_sync { tid; var } -> on_sync t tid var
           | Ev_fork { parent; child } -> on_fork t parent child
           | Ev_data { tid; var; write } ->
             if write then on_write t tid var else on_read t tid var
           | Ev_lifetime _ -> t)
         t events)
  with Race r -> Error r
