(* Empirical validation of the paper's Section 3.1 / Appendix A theory.

   Theorem 2: every terminating race-free execution is equivalent to an
   observable one (preemptions only at synchronization accesses) with no
   more preemptions.  Theorem 3: likewise for races.  Together they make
   the sync-only reduction sound: exploring only observable executions
   (while checking each for races) misses neither reachable terminal
   states nor bugs, and preserves minimal preemption counts.

   We test this differentially on generated programs: enumerate the full
   state space at both granularities and compare (a) terminal
   canonical-state sets, (b) bug-key sets, (c) the minimal preemption
   count per bug key — whenever the program is race-free.  When the
   sync-only checker reports a race, the comparison is skipped: the
   reduction promises nothing beyond the race report. *)

module Engine = Icb_search.Engine
module Mach_engine = Icb_search.Mach_engine

let qtest = QCheck_alcotest.to_alcotest

(* --- a generator of small two-worker programs ---------------------------- *)

module Gen = struct
  open QCheck.Gen

  (* Actions over a fixed vocabulary: two data globals, one volatile, two
     mutexes, one manual event.  Locked blocks keep lock usage
     well-formed; bare data ops make races (and hence skipped comparisons)
     possible but not dominant. *)
  (* each generated temporary gets a fresh name: locals are block-scoped
     with shadowing disallowed *)
  let temp_counter = ref 0

  let fresh_temp () =
    incr temp_counter;
    Printf.sprintf "t%d" !temp_counter

  let action =
    frequency
      [
        ( 4,
          map2
            (fun m d ->
              Printf.sprintf
                "  lock(m%d);\n  d%d = d%d + 1;\n  unlock(m%d);\n" m d d m)
            (int_range 0 1) (int_range 0 1) );
        ( 2,
          map
            (fun d -> Printf.sprintf "  d%d = d%d + 2;\n" d d)
            (int_range 0 1) );
        ( 2,
          map
            (fun () ->
              let t = fresh_temp () in
              Printf.sprintf "  var %s: int;\n  %s = fetch_add(v, 1);\n" t t)
            unit );
        (1, return "  signal(ev);\n");
        (1, return "  wait(ev);\n");
        (1, return "  yield;\n");
        ( 1,
          map
            (fun d ->
              let a = fresh_temp () in
              Printf.sprintf
                "  atomic {\n    var %s: int = d%d;\n    d%d = %s + 3;\n  }\n" a
                d d a)
            (int_range 0 1) );
        ( 1,
          map
            (fun d ->
              let c = fresh_temp () in
              Printf.sprintf
                "  var %s: int;\n  lock(m0);\n  %s = d%d;\n  unlock(m0);\n\
                 \  assert(%s < 9, \"counter overflow\");\n"
                c c d c)
            (int_range 0 1) );
      ]

  let body = map (String.concat "") (list_size (int_range 1 3) action)

  let program =
    map2
      (fun b1 b2 ->
        Printf.sprintf
          {|
var d0: int;
var d1: int;
volatile var v: int = 0;
mutex m0;
mutex m1;
event manual ev;

proc w1() {
%s}

proc w2() {
%s}

main {
  spawn w1();
  spawn w2();
}
|}
          b1 b2)
      body body
end

(* --- exhaustive exploration at a given granularity ------------------------ *)

type summary = {
  terminals : (int64, unit) Hashtbl.t;       (* canonical terminal states *)
  bug_bounds : (string, int) Hashtbl.t;      (* bug key -> min preemptions *)
  mutable raced : bool;
}

let explore config prog =
  let module E = (val Icb.engine ~config prog) in
  let s =
    { terminals = Hashtbl.create 64; bug_bounds = Hashtbl.create 4; raced = false }
  in
  let record_bug key preempt =
    match Hashtbl.find_opt s.bug_bounds key with
    | Some old -> if preempt < old then Hashtbl.replace s.bug_bounds key preempt
    | None -> Hashtbl.add s.bug_bounds key preempt
  in
  let rec dfs st =
    match E.status st with
    | Engine.Running -> List.iter (fun t -> dfs (E.step st t)) (E.enabled st)
    | Engine.Terminated ->
      Hashtbl.replace s.terminals
        (Icb_machine.State.signature (Mach_engine.machine_state st))
        ()
    | Engine.Deadlock _ ->
      Hashtbl.replace s.terminals
        (Icb_machine.State.signature (Mach_engine.machine_state st))
        ();
      record_bug "deadlock" (E.preemptions st)
    | Engine.Failed { key; _ } ->
      if String.length key >= 5 && String.sub key 0 5 = "race:" then
        s.raced <- true
      else record_bug key (E.preemptions st)
  in
  dfs (E.initial ());
  s

let sets_equal a b =
  Hashtbl.length a = Hashtbl.length b
  && Hashtbl.fold (fun k () acc -> acc && Hashtbl.mem b k) a true

let tables_equal a b =
  Hashtbl.length a = Hashtbl.length b
  && Hashtbl.fold
       (fun k v acc -> acc && Hashtbl.find_opt b k = Some v)
       a true

let fine_config =
  (* every shared access a scheduling point; race checking on so raced
     programs are identified and skipped symmetrically *)
  { Mach_engine.zing_config with check_races = true; detector = `Vclock }

let coarse_config = Mach_engine.default_config

let pp_table fmt t =
  Hashtbl.iter (fun k v -> Format.fprintf fmt "%s->%d " k v) t

let reduction_tests =
  [
    qtest
      (QCheck.Test.make
         ~name:"sync-only reduction preserves terminal states and bug bounds"
         ~count:120
         (QCheck.make ~print:(fun s -> s) Gen.program)
         (fun src ->
           let prog = Icb.compile src in
           let fine = explore fine_config prog in
           let coarse = explore coarse_config prog in
           (* a race voids the comparison — but both granularities must
              agree that there is one (race detection is about the
              happens-before relation, not the schedule granularity) *)
           if fine.raced || coarse.raced then fine.raced = coarse.raced
           else if not (sets_equal fine.terminals coarse.terminals) then
             QCheck.Test.fail_reportf
               "terminal sets differ (%d fine vs %d coarse) on:%s"
               (Hashtbl.length fine.terminals)
               (Hashtbl.length coarse.terminals)
               src
           else if not (tables_equal fine.bug_bounds coarse.bug_bounds) then
             QCheck.Test.fail_reportf
               "bug bounds differ (fine: %a; coarse: %a) on:%s"
               pp_table fine.bug_bounds pp_table coarse.bug_bounds src
           else true));
    qtest
      (QCheck.Test.make
         ~name:"sync-only explores no more states than every-access"
         ~count:60
         (QCheck.make ~print:(fun s -> s) Gen.program)
         (fun src ->
           let prog = Icb.compile src in
           let states config =
             (Icb.run ~config
                ~strategy:(Icb_search.Explore.Dfs { cache = true })
                prog)
               .Icb_search.Sresult.distinct_states
           in
           states coarse_config <= states fine_config));
    qtest
      (QCheck.Test.make
         ~name:"sleep sets preserve reachable states on generated programs"
         ~count:60
         (QCheck.make ~print:(fun s -> s) Gen.program)
         (fun src ->
           let prog = Icb.compile src in
           let dfs =
             Icb.run prog ~strategy:(Icb_search.Explore.Dfs { cache = false })
           in
           let sleep = Icb.run prog ~strategy:Icb_search.Explore.Sleep_dfs in
           dfs.Icb_search.Sresult.distinct_states
           = sleep.Icb_search.Sresult.distinct_states
           && sleep.executions <= dfs.executions));
    qtest
      (QCheck.Test.make
         ~name:"icb enumerates the same terminal states as dfs" ~count:60
         (QCheck.make ~print:(fun s -> s) Gen.program)
         (fun src ->
           let prog = Icb.compile src in
           let run strategy =
             (Icb.run prog ~strategy).Icb_search.Sresult.distinct_states
           in
           run (Icb_search.Explore.Icb { max_bound = None; cache = false })
           = run (Icb_search.Explore.Dfs { cache = false })));
  ]

let () = Alcotest.run "reduction" [ ("theorems-2-3", reduction_tests) ]
